GO ?= go

.PHONY: build vet test race check bench bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: compile everything, vet, and run the full test
# suite under the race detector.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json regenerates the three-way migration comparison (vanilla vs
# lazy vs pre-copy) and archives it as machine-readable JSON.
bench-json:
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_fig7x.json fig7x
