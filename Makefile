GO ?= go

.PHONY: build vet lint test race check updatecheck bench bench-json bench-obs bench-quick fleet-smoke registry-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzers (internal/analysis, docs/analysis.md)
# over every package, commands and tests included. The repo must stay
# clean under its own rules; suppress case by case with //lint:ignore.
lint:
	$(GO) run ./cmd/dapperlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# updatecheck runs the static cross-version verifier's selftest: every
# workload binary on both ISAs must pass the stack-map soundness pass,
# and an identical recompile must classify every function safe (see
# docs/updatecheck.md). The deliberately-broken-binary corpus is covered
# by `go test ./internal/updatecheck/`.
updatecheck:
	$(GO) run ./cmd/dapper-updatecheck -selftest

# check is the CI gate: compile everything, vet, run the repo's own
# analyzers, verify every compiled binary's stack maps, run the full test
# suite under the race detector, and measure the disabled-telemetry
# overhead (which must stay cheap enough to leave instrumented code
# unconditional).
check:
	$(GO) build ./... && $(GO) vet ./... && $(MAKE) lint && $(MAKE) updatecheck && $(GO) test -race ./... && $(MAKE) bench-obs

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json regenerates the three-way migration comparison (vanilla vs
# lazy vs pre-copy), with each row's full obs telemetry report embedded,
# and archives it as machine-readable JSON.
bench-json:
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_fig7x.json fig7x

# bench-quick exercises the parallel-pipeline benchmarks one iteration
# each under the race detector (Workers=NumCPU fans out on CI's
# multicore runners) and regenerates the parpipe table — serial vs
# parallel host time per stage plus dedup savings — the wirecodec
# table — bytes-on-wire for raw vs batched vs flate vs delta+flate on a
# live pre-copy; the run itself fails if the codec stack saves nothing —
# and the restore table — serial vs streamed vs streamed+workers
# downtime on rediska; it hard-fails if the overlap never engages or any
# worker count changes the restored bytes — as JSON for the CI artifacts.
bench-quick:
	$(GO) test -race -run=^$$ -bench='DumpParallel|RewriteThreads|ImgcheckVerify' -benchtime=1x .
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_parpipe.json parpipe
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_wirecodec.json wirecodec
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_fleet.json fleet
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_restore.json restore

# fleet-smoke gates the control plane: the fleet package's deterministic
# fault-injection tests (retry, rollback, journal resume, drain,
# heartbeat mark-down) and the shared-node concurrency tests under the
# race detector, then the fleet throughput table — migs/sec and retry
# rate at fleet-wide concurrency 1/4/8 — which itself hard-fails if any
# job fails, any restored output is corrupt, or the retry path never
# fires.
fleet-smoke:
	$(GO) test -race ./internal/fleet/
	$(GO) test -race -run TestConcurrent ./internal/cluster/
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_fleet.json fleet

# registry-smoke gates the persistent checkpoint store: the registry
# package's crash-replay and GC tests plus the COW clone path under the
# race detector, then the registry table — cross-dump dedup hit-rate on
# an evolving rediska server and clone fan-out latency at N=1/4/16 —
# which itself hard-fails on a zero hit-rate, zero shared frames, or any
# clone answering queries differently from its siblings.
registry-smoke:
	$(GO) test -race ./internal/registry/ ./internal/kernel/
	$(GO) test -race -run 'TestClone|TestMigrateViaRegistry' ./internal/cluster/ ./internal/fleet/
	$(GO) run ./cmd/dapper-bench -jsonout BENCH_registry.json registry

# bench-obs measures the telemetry fast paths: the Disabled* benchmarks
# are the nil-registry no-ops every migration pays even with telemetry
# off (target: low single-digit ns/op).
bench-obs:
	$(GO) test -bench=BenchmarkObsOverhead -run=^$$ ./internal/obs/
