// Ablation benchmarks for the design choices DESIGN.md calls out: how the
// migration cost responds to the checkpoint position, how lazy migration's
// advantage depends on footprint, how the gadget measurement responds to
// the scanner's length bound, and how the scheduler quantum affects the
// monitor's time-to-quiescence.
package dapper

import (
	"fmt"
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/experiments"
	"github.com/dapper-sim/dapper/internal/gadget"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// BenchmarkAblation_CheckpointPosition sweeps the migration point: image
// size (and thus copy cost) is position-dependent only insofar as the
// footprint grows, which the metrics expose per fraction.
func BenchmarkAblation_CheckpointPosition(b *testing.B) {
	w, err := workloads.Get("kmeans")
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		frac := frac
		b.Run(fmt.Sprintf("at-%.0f%%", frac*100), func(b *testing.B) {
			var last *cluster.Breakdown
			for i := 0; i < b.N; i++ {
				bd, err := experiments.MigrateOnce(w, workloads.ClassS, frac, false)
				if err != nil {
					b.Fatal(err)
				}
				last = bd
			}
			b.ReportMetric(float64(last.ImageBytes), "image-B")
			b.ReportMetric(last.Total().Seconds()*1000, "modeled-total-ms")
		})
	}
}

// BenchmarkAblation_GadgetScannerLength sweeps the gadget length bound:
// the *reduction* conclusion must be robust to the scanner configuration.
func BenchmarkAblation_GadgetScannerLength(b *testing.B) {
	w, err := workloads.Get("nginz")
	if err != nil {
		b.Fatal(err)
	}
	dapperPair, err := workloads.CompilePair(w, workloads.ClassS)
	if err != nil {
		b.Fatal(err)
	}
	popcornPair, err := gadget.PopcornPair(w.Source(workloads.ClassS))
	if err != nil {
		b.Fatal(err)
	}
	for _, maxLen := range []int{3, 5, 8} {
		maxLen := maxLen
		b.Run(fmt.Sprintf("len-%d", maxLen), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				d := gadget.CountMax(dapperPair.X86.Text, isa.TextBase, isa.SX86, maxLen)
				p := gadget.CountMax(popcornPair.X86.Text, isa.TextBase, isa.SX86, maxLen)
				red = gadget.Reduction(p, d)
			}
			b.ReportMetric(red, "reduction-%")
			if red < 40 {
				b.Fatalf("reduction conclusion not robust at len %d: %.1f%%", maxLen, red)
			}
		})
	}
}

// BenchmarkAblation_MonitorQuantum sweeps the scheduler quantum: a larger
// quantum means fewer scheduler passes until quiescence but coarser pause
// granularity. The metric is passes-to-quiescence.
func BenchmarkAblation_MonitorQuantum(b *testing.B) {
	w, err := workloads.Get("streamcluster")
	if err != nil {
		b.Fatal(err)
	}
	pair, err := workloads.CompilePair(w, workloads.ClassS)
	if err != nil {
		b.Fatal(err)
	}
	for _, quantum := range []int{64, 1024, 16384} {
		quantum := quantum
		b.Run(fmt.Sprintf("q-%d", quantum), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := kernel.New(kernel.Config{Cores: 2, Quantum: quantum})
				p, err := k.StartProcess(pair.X86.LoadSpec("/bin/sc.sx86"))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := k.RunBudget(p, 50_000); err != nil {
					b.Fatal(err)
				}
				mon := monitor.New(k, p, pair.Meta)
				if err := mon.Pause(1 << 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_LazyFootprint sweeps the rediska database size to show
// where post-copy starts winning on bytes moved eagerly.
func BenchmarkAblation_LazyFootprint(b *testing.B) {
	w, err := workloads.Get("rediska")
	if err != nil {
		b.Fatal(err)
	}
	pair, err := workloads.CompilePair(w, workloads.ClassS)
	if err != nil {
		b.Fatal(err)
	}
	for _, keys := range []uint64{100, 500} {
		keys := keys
		b.Run(fmt.Sprintf("keys-%d", keys), func(b *testing.B) {
			var vanilla, lazy uint64
			for i := 0; i < b.N; i++ {
				for _, isLazy := range []bool{false, true} {
					xeon := cluster.NewNode(cluster.XeonSpec)
					pi := cluster.NewNode(cluster.PiSpec)
					xeon.Install(w.Name, pair)
					pi.Install(w.Name, pair)
					p, err := xeon.Start(w.Name)
					if err != nil {
						b.Fatal(err)
					}
					p.PushInput(workloads.RediskaLoad(keys))
					for j := 0; j < 5_000_000; j++ {
						st, err := xeon.K.Step(p)
						if err != nil {
							b.Fatal(err)
						}
						if st.Blocked == 1 && p.PendingInput() == 0 {
							break
						}
					}
					res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{Lazy: isLazy})
					if err != nil {
						b.Fatal(err)
					}
					if isLazy {
						lazy = res.Breakdown.ImageBytes
					} else {
						vanilla = res.Breakdown.ImageBytes
					}
				}
			}
			b.ReportMetric(float64(vanilla), "vanilla-B")
			b.ReportMetric(float64(lazy), "lazy-B")
		})
	}
}
