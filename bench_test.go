// Package dapper's root benchmarks regenerate the measurements behind
// every figure of the paper's evaluation (one benchmark family per
// table/figure). Custom metrics carry the figure's quantities: modeled
// phase times (the calibrated virtual-time model), entropy bits, gadget
// reductions, and energy improvements. Run with:
//
//	go test -bench=. -benchmem
package dapper

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/energy"
	"github.com/dapper-sim/dapper/internal/experiments"
	"github.com/dapper-sim/dapper/internal/gadget"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// benchClass keeps benchmark iterations fast while exercising every code
// path; the committed EXPERIMENTS.md uses the same harness via
// cmd/dapper-bench.
const benchClass = workloads.ClassS

// BenchmarkFig5_CrossISAMigration measures one full cross-ISA migration
// (pause + dump + rewrite + transfer + restore) per iteration for each
// Fig. 5 benchmark; the modeled phase times are attached as metrics.
func BenchmarkFig5_CrossISAMigration(b *testing.B) {
	for _, name := range []string{"cg", "mg", "ep", "ft", "is", "linpack", "dhrystone", "kmeans"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := workloads.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			var last *cluster.Breakdown
			for i := 0; i < b.N; i++ {
				bd, err := experiments.MigrateOnce(w, benchClass, 0.5, false)
				if err != nil {
					b.Fatal(err)
				}
				last = bd
			}
			b.ReportMetric(last.Checkpoint.Seconds()*1000, "ckpt-ms")
			b.ReportMetric(last.Recode.Seconds()*1000, "recode-ms")
			b.ReportMetric(last.Copy.Seconds()*1000, "scp-ms")
			b.ReportMetric(last.Restore.Seconds()*1000, "restore-ms")
			b.ReportMetric(float64(last.ImageBytes), "image-B")
		})
	}
}

// BenchmarkFig6_PARSECMigration measures the end-to-end migrated run of
// each multithreaded PARSEC workload.
func BenchmarkFig6_PARSECMigration(b *testing.B) {
	for _, name := range []string{"blackscholes", "swaptions", "streamcluster"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := workloads.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			pair, err := workloads.CompilePair(w, benchClass)
			if err != nil {
				b.Fatal(err)
			}
			// Measure the total so the checkpoint lands mid-run.
			refNode := cluster.NewNode(cluster.XeonSpec)
			refNode.Install(name, pair)
			ref, err := refNode.Start(name)
			if err != nil {
				b.Fatal(err)
			}
			if err := refNode.K.Run(ref); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xeon := cluster.NewNode(cluster.XeonSpec)
				pi := cluster.NewNode(cluster.PiSpec)
				xeon.Install(name, pair)
				pi.Install(name, pair)
				p, err := xeon.Start(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := xeon.K.RunBudget(p, ref.VCycles/2); err != nil {
					b.Fatal(err)
				}
				res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{})
				if err != nil {
					b.Fatal(err)
				}
				if err := pi.K.Run(res.Proc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_LazyVsVanilla compares the two restoration modes on the
// heap-heavy rediska store.
func BenchmarkFig7_LazyVsVanilla(b *testing.B) {
	for _, mode := range []struct {
		name string
		lazy bool
	}{{"vanilla", false}, {"lazy", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			w, err := workloads.Get("cg")
			if err != nil {
				b.Fatal(err)
			}
			var last *cluster.Breakdown
			for i := 0; i < b.N; i++ {
				bd, err := experiments.MigrateOnce(w, benchClass, 0.5, mode.lazy)
				if err != nil {
					b.Fatal(err)
				}
				last = bd
			}
			b.ReportMetric(float64(last.ImageBytes), "image-B")
			b.ReportMetric(last.Restore.Seconds()*1000, "restore-ms")
			b.ReportMetric(float64(last.LazyFetches), "postcopy-pages")
		})
	}
}

// BenchmarkFig8_EnergySim runs the heterogeneous-cluster scheduling
// simulation and reports the improvement percentages.
func BenchmarkFig8_EnergySim(b *testing.B) {
	job := energy.JobClass{Name: "cg.B", Cycles: 130_000_000_000}
	var imp energy.Improvement
	for i := 0; i < b.N; i++ {
		var err error
		imp, err = energy.Compare(job, 3, 1.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(imp.EfficiencyPct, "eff-gain-%")
	b.ReportMetric(imp.ThroughputPct, "tput-gain-%")
}

// BenchmarkFig9_StackShuffle measures the shuffler (disassembly, SBI
// re-encode, stack-map update) per architecture.
func BenchmarkFig9_StackShuffle(b *testing.B) {
	w, err := workloads.Get("rediska")
	if err != nil {
		b.Fatal(err)
	}
	pair, err := workloads.CompilePair(w, benchClass)
	if err != nil {
		b.Fatal(err)
	}
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		arch := arch
		b.Run(arch.String(), func(b *testing.B) {
			bin := pair.ByArch(arch)
			var patched int
			for i := 0; i < b.N; i++ {
				_, report, err := core.ShuffleBinary(bin, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				patched = report.Patched
			}
			b.SetBytes(int64(len(bin.Text)))
			b.ReportMetric(float64(patched), "patched-B")
		})
	}
}

// BenchmarkFig10_Entropy reports the entropy bits per architecture.
func BenchmarkFig10_Entropy(b *testing.B) {
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		arch := arch
		b.Run(arch.String(), func(b *testing.B) {
			var sum float64
			var n int
			for i := 0; i < b.N; i++ {
				sum, n = 0, 0
				for _, name := range []string{"cg", "linpack", "kmeans", "rediska", "nginz"} {
					w, err := workloads.Get(name)
					if err != nil {
						b.Fatal(err)
					}
					pair, err := workloads.CompilePair(w, benchClass)
					if err != nil {
						b.Fatal(err)
					}
					_, report, err := core.ShuffleBinary(pair.ByArch(arch), 11)
					if err != nil {
						b.Fatal(err)
					}
					sum += report.AvgBitsApp
					n++
				}
			}
			b.ReportMetric(sum/float64(n), "avg-bits")
		})
	}
}

// BenchmarkFig11_GadgetScan measures the gadget scanner and reports the
// reduction versus the Popcorn-style baseline.
func BenchmarkFig11_GadgetScan(b *testing.B) {
	w, err := workloads.Get("nginz")
	if err != nil {
		b.Fatal(err)
	}
	dapperPair, err := workloads.CompilePair(w, benchClass)
	if err != nil {
		b.Fatal(err)
	}
	popcornPair, err := gadget.PopcornPair(w.Source(benchClass))
	if err != nil {
		b.Fatal(err)
	}
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		arch := arch
		b.Run(arch.String(), func(b *testing.B) {
			var cmp gadget.Comparison
			for i := 0; i < b.N; i++ {
				cmp = gadget.CompareBinaries(dapperPair.ByArch(arch), popcornPair.ByArch(arch))
			}
			b.SetBytes(int64(len(popcornPair.ByArch(arch).Text)))
			b.ReportMetric(cmp.ReductionPct, "reduction-%")
		})
	}
}

// BenchmarkPipeline_Compile measures the full dual-ISA compilation of a
// mid-size workload (the toolchain's own cost).
func BenchmarkPipeline_Compile(b *testing.B) {
	w, err := workloads.Get("linpack")
	if err != nil {
		b.Fatal(err)
	}
	src := w.Source(benchClass)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline_PauseDumpRestore isolates the checkpoint/restore path
// without the cross-ISA rewrite (the CRIU substrate's cost).
func BenchmarkPipeline_PauseDumpRestore(b *testing.B) {
	w, err := workloads.Get("cg")
	if err != nil {
		b.Fatal(err)
	}
	pair, err := workloads.CompilePair(w, benchClass)
	if err != nil {
		b.Fatal(err)
	}
	provider := criu.MapProvider{"/bin/cg.sx86": pair.X86, "/bin/cg.sarm": pair.ARM}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := kernel.New(kernel.Config{})
		p, err := k.StartProcess(pair.X86.LoadSpec("/bin/cg.sx86"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := k.RunBudget(p, 100_000); err != nil {
			b.Fatal(err)
		}
		mon := monitor.New(k, p, pair.Meta)
		if err := mon.Pause(1 << 20); err != nil {
			b.Fatal(err)
		}
		dir, err := criu.Dump(p, criu.DumpOpts{})
		if err != nil {
			b.Fatal(err)
		}
		k2 := kernel.New(kernel.Config{})
		if _, err := criu.Restore(k2, dir, provider); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter_Throughput measures raw guest instruction
// throughput per architecture (the simulator substrate itself).
func BenchmarkInterpreter_Throughput(b *testing.B) {
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		arch := arch
		b.Run(arch.String(), func(b *testing.B) {
			w, err := workloads.Get("dhrystone")
			if err != nil {
				b.Fatal(err)
			}
			pair, err := workloads.CompilePair(w, benchClass)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				k := kernel.New(kernel.Config{})
				p, err := k.StartProcess(pair.ByArch(arch).LoadSpec("/bin/d"))
				if err != nil {
					b.Fatal(err)
				}
				if err := k.Run(p); err != nil {
					b.Fatal(err)
				}
				cycles = p.VCycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles/op")
		})
	}
}

// pausedBench compiles the named workload, loads rediska-style input if
// requested, runs to mid-execution, and pauses at an equivalence point,
// returning the still-paused process and its nodes.
func pausedBench(b *testing.B, name string, rediskaKeys uint64) (*cluster.Node, *kernel.Process, *compiler.Pair) {
	b.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := workloads.CompilePair(w, benchClass)
	if err != nil {
		b.Fatal(err)
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	xeon.Install(name, pair)
	p, err := xeon.Start(name)
	if err != nil {
		b.Fatal(err)
	}
	if rediskaKeys > 0 {
		p.PushInput(workloads.RediskaLoad(rediskaKeys))
		for i := 0; i < 5_000_000; i++ {
			st, err := xeon.K.Step(p)
			if err != nil {
				b.Fatal(err)
			}
			if st.Blocked == 1 && p.PendingInput() == 0 {
				break
			}
		}
		p.TakeOutput()
	} else {
		// Measure a reference run so the pause lands mid-execution.
		refNode := cluster.NewNode(cluster.XeonSpec)
		refNode.Install(name, pair)
		ref, err := refNode.Start(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := refNode.K.Run(ref); err != nil {
			b.Fatal(err)
		}
		if _, err := xeon.K.RunBudget(p, ref.VCycles/2); err != nil {
			b.Fatal(err)
		}
	}
	mon := monitor.New(xeon.K, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		b.Fatal(err)
	}
	return xeon, p, pair
}

// BenchmarkDumpParallel measures the sharded page-collection dump at
// Workers=1 (the historical serial path) versus Workers=NumCPU, plus the
// dedup-aware dump with its elision metrics. All configurations produce
// byte-identical pagemap ordering; only host time differs.
func BenchmarkDumpParallel(b *testing.B) {
	_, p, _ := pausedBench(b, "rediska", 2000)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := criu.Dump(p, criu.DumpOpts{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("dedup", func(b *testing.B) {
		reg := obs.New()
		for i := 0; i < b.N; i++ {
			if _, err := criu.Dump(p, criu.DumpOpts{Workers: runtime.NumCPU(), Dedup: true, Obs: reg}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(reg.Counter("dedup.pages_elided").Value())/float64(b.N), "pages-elided/op")
		b.ReportMetric(float64(reg.Counter("dedup.bytes_saved").Value())/float64(b.N), "B-saved/op")
	})
}

// BenchmarkRewriteThreads measures the cross-ISA rewrite — per-thread
// core translation plus stack rebuild — at Workers=1 versus NumCPU on a
// multithreaded PARSEC workload.
func BenchmarkRewriteThreads(b *testing.B) {
	xeon, p, _ := pausedBench(b, "streamcluster", 0)
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		b.Fatal(err)
	}
	blob := dir.Marshal()
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d2, err := criu.UnmarshalImageDir(blob)
				if err != nil {
					b.Fatal(err)
				}
				ctx := &core.Context{Binaries: xeon.Binaries, Workers: workers}
				if err := (core.CrossISAPolicy{Target: isa.SARM}).Rewrite(d2, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkImgcheckVerify measures the static image verifier's sharded
// sweeps at Workers=1 versus NumCPU over a heap-heavy image set.
func BenchmarkImgcheckVerify(b *testing.B) {
	_, p, _ := pausedBench(b, "rediska", 2000)
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := imgcheck.VerifyWith(dir, imgcheck.Opts{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
