// Command dapper-bench regenerates every table and figure of the paper's
// evaluation section and prints them as text tables.
//
// Usage:
//
//	dapper-bench [-class S|A|B] [-out EXPERIMENTS-data.md] [fig5 fig6 ... attacks | all]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dapper-sim/dapper/internal/experiments"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dapper-bench:", err)
		os.Exit(1)
	}
}

type genFunc func(workloads.Class) (*experiments.Table, error)

func run(args []string) error {
	fs := flag.NewFlagSet("dapper-bench", flag.ContinueOnError)
	class := fs.String("class", "S", "problem class: S, A, or B")
	out := fs.String("out", "", "also append markdown tables to this file")
	jsonOut := fs.String("jsonout", "", "also write the generated tables as a JSON array to this file")
	lazyTCP := fs.Bool("lazytcp", false, "serve post-copy pages over a real TCP page server (fig7)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.LazyTCP = *lazyTCP
	c := workloads.Class(strings.ToUpper(*class))
	gens := map[string]genFunc{
		"fig1":      experiments.Fig1,
		"fig5":      experiments.Fig5,
		"fig6":      experiments.Fig6,
		"fig7":      experiments.Fig7,
		"fig8":      experiments.Fig8,
		"fig9":      experiments.Fig9,
		"fig7x":     experiments.Fig7x,
		"fig10":     experiments.Fig10,
		"fig11":     experiments.Fig11,
		"parpipe":   experiments.Parpipe,
		"wirecodec": experiments.Wirecodec,
		"fleet":     experiments.Fleet,
		"registry":  experiments.Registry,
		"restore":   experiments.Restore,
		"attacks": func(workloads.Class) (*experiments.Table, error) {
			return experiments.Attacks()
		},
	}
	order := []string{"fig1", "fig5", "fig6", "fig7", "fig7x", "fig8", "fig9", "fig10", "fig11", "parpipe", "wirecodec", "fleet", "registry", "restore", "attacks"}

	want := fs.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = order
	}
	var md strings.Builder
	var tables []*experiments.Table
	for _, id := range want {
		gen, ok := gens[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(order, " "))
		}
		tbl, err := gen(c)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tbl.String())
		md.WriteString(tbl.Markdown())
		tables = append(tables, tbl)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		_, werr := f.WriteString(md.String())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}
