// Command dapper-cc is the DAPPER compiler driver: it compiles a DapC
// source file into the aligned dual-architecture binary pair (the paper's
// modified LLVM + gold toolchain), writing <stem>.sx86.delf and
// <stem>.sarm.delf.
//
// Usage:
//
//	dapper-cc [-o stem] [-symbols] [-stackmaps] prog.dapc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dapper-cc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dapper-cc", flag.ContinueOnError)
	out := fs.String("o", "", "output stem (default: source file without extension)")
	showSyms := fs.Bool("symbols", false, "print the (shared) symbol table")
	showMaps := fs.Bool("stackmaps", false, "print stack-map records")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dapper-cc [-o stem] prog.dapc")
	}
	srcPath := fs.Arg(0)
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return err
	}
	stem := *out
	if stem == "" {
		stem = strings.TrimSuffix(srcPath, ".dapc")
	}
	pair, err := compiler.Compile(string(src))
	if err != nil {
		return err
	}
	for _, bin := range []*compiler.Binary{pair.X86, pair.ARM} {
		name := fmt.Sprintf("%s.%s.delf", stem, bin.Arch)
		if err := os.WriteFile(name, bin.Marshal(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (text %d B, data %d B, %d functions)\n",
			name, len(bin.Text), len(bin.Data), len(bin.Meta.Funcs))
	}
	if *showSyms {
		printSymbols(pair.X86)
	}
	if *showMaps {
		printStackmaps(pair.Meta)
	}
	return nil
}

func printSymbols(b *compiler.Binary) {
	names := make([]string, 0, len(b.Symbols))
	for n := range b.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return b.Symbols[names[i]] < b.Symbols[names[j]] })
	fmt.Println("symbols (identical across both architectures):")
	for _, n := range names {
		fmt.Printf("  0x%08x  %s\n", b.Symbols[n], n)
	}
}

func printStackmaps(meta *stackmap.Metadata) {
	fmt.Println("stack maps:")
	for _, fn := range meta.Funcs {
		fmt.Printf("  func %s @0x%x (+%d B), %d slots, blocking=%v\n",
			fn.Name, fn.Addr, fn.Size, len(fn.Slots), fn.Blocking)
		e := fn.EntrySite
		fmt.Printf("    entry site %d: trap sx86=0x%x sarm=0x%x\n",
			e.ID, e.PCs[0].TrapPC, e.PCs[1].TrapPC)
		for _, lv := range e.Live {
			fmt.Printf("      param %d: %s | %s (ptr=%v)\n",
				lv.SlotID, lv.Loc[stackmap.ArchIdx(isa.SX86)], lv.Loc[stackmap.ArchIdx(isa.SARM)], lv.Ptr)
		}
		for _, cs := range fn.CallSites {
			fmt.Printf("    call site %d: ret sx86=0x%x sarm=0x%x, %d live\n",
				cs.ID, cs.PCs[0].RetAddr, cs.PCs[1].RetAddr, len(cs.Live))
		}
	}
}
