package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
)

func TestCompileDriver(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.dapc")
	if err := os.WriteFile(src, []byte(`
func main() { printi(7); }`), 0o644); err != nil {
		t.Fatal(err)
	}
	stem := filepath.Join(dir, "p")
	if err := run([]string{"-o", stem, "-symbols", "-stackmaps", src}); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".sx86.delf", ".sarm.delf"} {
		blob, err := os.ReadFile(stem + suffix)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := compiler.UnmarshalBinary(blob)
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		if _, ok := bin.Meta.FuncByName("main"); !ok {
			t.Errorf("%s: missing main metadata", suffix)
		}
	}
}

func TestCompileDriverErrors(t *testing.T) {
	if err := run([]string{"/nonexistent/x.dapc"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dapc")
	if err := os.WriteFile(bad, []byte("not a program"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("bad program accepted")
	}
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
}
