// Command dapper-crit is the CRIT image tool: it decodes a checkpoint
// image directory (one .img blob as produced by dapperctl) to JSON and
// encodes JSON back, exactly mirroring CRIU's crit decode/encode workflow
// the paper extends.
//
// Usage:
//
//	dapper-crit decode checkpoint.imgdir > checkpoint.json
//	dapper-crit encode checkpoint.json > checkpoint.imgdir
//	dapper-crit ls checkpoint.imgdir
package main

import (
	"fmt"
	"os"

	"github.com/dapper-sim/dapper/internal/criu"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dapper-crit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: dapper-crit decode|encode|ls FILE")
	}
	verb, path := args[0], args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch verb {
	case "decode":
		dir, err := criu.UnmarshalImageDir(data)
		if err != nil {
			return err
		}
		out, err := criu.DecodeJSON(dir)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(out, '\n'))
		return err
	case "encode":
		dir, err := criu.EncodeJSON(data)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(dir.Marshal())
		return err
	case "ls":
		dir, err := criu.UnmarshalImageDir(data)
		if err != nil {
			return err
		}
		for _, name := range dir.Names() {
			b, _ := dir.Get(name)
			fmt.Printf("%10d  %s\n", len(b), name)
		}
		return nil
	default:
		return fmt.Errorf("unknown verb %q (want decode, encode, or ls)", verb)
	}
}
