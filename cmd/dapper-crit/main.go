// Command dapper-crit is the CRIT image tool: it decodes a checkpoint
// image directory (one .img blob as produced by dapperctl) to JSON and
// encodes JSON back, exactly mirroring CRIU's crit decode/encode workflow
// the paper extends, and statically verifies image sets against the
// invariants in internal/imgcheck.
//
// Usage:
//
//	dapper-crit decode checkpoint.imgdir > checkpoint.json
//	dapper-crit encode checkpoint.json > checkpoint.imgdir
//	dapper-crit ls checkpoint.imgdir
//	dapper-crit verify checkpoint.imgdir
//	dapper-crit verify base.imgdir delta1.imgdir delta2.imgdir
//
// verify checks a self-contained image set — pagemap sorted and
// non-overlapping, flagged entries carrying no bytes, cores decodable and
// within their ISA's register file, PCs and stacks mapped — and, given
// several blobs ordered oldest to newest, an incremental chain's
// in_parent resolvability and acyclicity. It exits non-zero naming the
// violated invariant.
package main

import (
	"fmt"
	"os"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/imgcheck"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dapper-crit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	usage := fmt.Errorf("usage: dapper-crit decode|encode|ls FILE  or  dapper-crit verify FILE...")
	if len(args) < 2 {
		return usage
	}
	verb := args[0]
	if verb == "verify" {
		return runVerify(args[1:])
	}
	if len(args) != 2 {
		return usage
	}
	path := args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch verb {
	case "decode":
		dir, err := criu.UnmarshalImageDir(data)
		if err != nil {
			return err
		}
		out, err := criu.DecodeJSON(dir)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(out, '\n'))
		return err
	case "encode":
		dir, err := criu.EncodeJSON(data)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(dir.Marshal())
		return err
	case "ls":
		dir, err := criu.UnmarshalImageDir(data)
		if err != nil {
			return err
		}
		for _, name := range dir.Names() {
			b, _ := dir.Get(name)
			fmt.Printf("%10d  %s\n", len(b), name)
		}
		return nil
	default:
		return fmt.Errorf("unknown verb %q (want decode, encode, ls, or verify)", verb)
	}
}

// runVerify statically checks one self-contained image blob, or several
// forming an incremental chain ordered oldest to newest.
func runVerify(paths []string) error {
	dirs := make([]*criu.ImageDir, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		dir, err := criu.UnmarshalImageDir(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dirs = append(dirs, dir)
	}
	var err error
	if len(dirs) == 1 {
		err = imgcheck.Verify(dirs[0])
	} else {
		err = imgcheck.VerifyChain(dirs)
	}
	if err != nil {
		return err
	}
	fmt.Printf("verify: ok (%d image set(s))\n", len(dirs))
	return nil
}
