package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
)

func TestCritDriver(t *testing.T) {
	dir := t.TempDir()
	img := criu.NewImageDir()
	img.Put("inventory.img", (&criu.InventoryImage{Arch: isa.SX86, TIDs: []int{1}}).Marshal())
	img.Put("files.img", (&criu.FilesImage{ExePath: "/bin/x.sx86"}).Marshal())
	img.Put("pages.img", nil)
	img.Put("pagemap.img", (&criu.PagemapImage{}).Marshal())
	path := filepath.Join(dir, "c.imgdir")
	if err := os.WriteFile(path, img.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"ls", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"decode", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bogus", path}); err == nil {
		t.Error("unknown verb accepted")
	}
	if err := run([]string{"decode", "/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"decode"}); err == nil {
		t.Error("missing operand accepted")
	}
}
