// Command dapper-updatecheck is the static cross-version update verifier:
// it analyzes compiled DapC binaries (DELF, as written by dapper-cc) and
// their stack-map metadata without executing anything, answering "can a
// live process safely cross from this binary to that one?" before any
// rewrite is attempted.
//
// Usage:
//
//	dapper-updatecheck [-json] BINARY.delf
//	dapper-updatecheck [-json] OLD.delf NEW.delf
//	dapper-updatecheck [-json] -image CHECKPOINT.imgdir BINARY.delf
//	dapper-updatecheck -selftest
//
// With one binary it runs the soundness pass (pass 1): every recorded
// equivalence-point site must exist, decode, and be reachable; every live
// value must agree with the slot table and the instruction stream; every
// loop must cross an equivalence point (quiescence). With two binaries it
// additionally diffs old against new (pass 2) and classifies every
// function safe / mappable / blocking, printing the slot-mapping table a
// state-transfer executor would need. With -image it checks a checkpoint
// against the binary it would restore into (pass 3): thread PCs and stack
// return addresses must resolve in the target's stack maps.
//
// -selftest compiles every registered workload for both ISAs and requires
// the soundness pass to verify each binary clean, then recompiles a
// sample and requires the diff pass to classify every function safe —
// the property `make updatecheck` pins in CI.
//
// The exit status is 0 only when every pass ran clean; diagnostics name
// the violated invariant (see docs/updatecheck.md for the taxonomy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/updatecheck"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	imagePath := flag.String("image", "", "checkpoint image blob to verify against the binary (pass 3)")
	selftest := flag.Bool("selftest", false, "verify every compiled workload and a recompile diff")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dapper-updatecheck [-json] BINARY.delf\n"+
			"       dapper-updatecheck [-json] OLD.delf NEW.delf\n"+
			"       dapper-updatecheck [-json] -image CHECKPOINT.imgdir BINARY.delf\n"+
			"       dapper-updatecheck -selftest\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), *jsonOut, *imagePath, *selftest); err != nil {
		fmt.Fprintln(os.Stderr, "dapper-updatecheck:", err)
		os.Exit(1)
	}
}

func run(args []string, jsonOut bool, imagePath string, selftest bool) error {
	switch {
	case selftest:
		return runSelftest()
	case imagePath != "":
		if len(args) != 1 {
			return fmt.Errorf("-image takes exactly one binary argument")
		}
		return runImage(imagePath, args[0], jsonOut)
	case len(args) == 1:
		return runVerify(args[0], jsonOut)
	case len(args) == 2:
		return runDiff(args[0], args[1], jsonOut)
	default:
		flag.Usage()
		return fmt.Errorf("expected 1 or 2 binary arguments, got %d", len(args))
	}
}

func loadBinary(path string) (*updatecheck.Binary, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := compiler.UnmarshalBinary(blob)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &updatecheck.Binary{Arch: b.Arch, Text: b.Text, Symbols: b.Symbols, Meta: b.Meta}, nil
}

// runVerify is the one-binary mode: pass 1 only.
func runVerify(path string, jsonOut bool) error {
	b, err := loadBinary(path)
	if err != nil {
		return err
	}
	r := updatecheck.CheckBinary(b)
	if jsonOut {
		return emitJSON(map[string]any{
			"binary":     path,
			"arch":       b.Arch.String(),
			"violations": r.Violations,
			"sound":      len(r.Violations) == 0,
		}, len(r.Violations) == 0)
	}
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Println(v.Error())
		}
		return fmt.Errorf("%s: %d soundness violation(s)", path, len(r.Violations))
	}
	fmt.Printf("%s: sound (%s, %d functions)\n", path, b.Arch, len(b.Meta.Funcs))
	return nil
}

// runDiff is the two-binary mode: pass 1 on both sides, then the
// cross-version classification.
func runDiff(oldPath, newPath string, jsonOut bool) error {
	oldB, err := loadBinary(oldPath)
	if err != nil {
		return err
	}
	newB, err := loadBinary(newPath)
	if err != nil {
		return err
	}
	oldR := updatecheck.CheckBinary(oldB)
	newR := updatecheck.CheckBinary(newB)
	d := updatecheck.Diff(oldB, newB)
	compatible := len(newR.Violations) == 0 && updatecheck.Compatible(oldB, newB) == nil

	if jsonOut {
		return emitJSON(map[string]any{
			"old":            oldPath,
			"new":            newPath,
			"oldViolations":  oldR.Violations,
			"newViolations":  newR.Violations,
			"functions":      diffJSON(d),
			"globals":        d.Globals,
			"updateAccepted": compatible,
		}, compatible)
	}
	for _, v := range oldR.Violations {
		fmt.Printf("old %s\n", v.Error())
	}
	for _, v := range newR.Violations {
		fmt.Printf("new %s\n", v.Error())
	}
	fmt.Printf("%-24s %-9s %-8s %s\n", "FUNCTION", "CLASS", "IDENTITY", "SLOTS MAPPED")
	for _, fd := range d.Funcs {
		fmt.Printf("%-24s %-9s %-8v %d\n", fd.Name, fd.Class, fd.Identity, len(fd.SlotMap))
		for _, v := range fd.Violations {
			fmt.Printf("    %s\n", v.Error())
		}
	}
	for _, v := range d.Globals {
		fmt.Println(v.Error())
	}
	if !compatible {
		return fmt.Errorf("update %s -> %s rejected", oldPath, newPath)
	}
	fmt.Printf("update %s -> %s accepted (%d functions classified)\n", oldPath, newPath, len(d.Funcs))
	return nil
}

// runImage is pass 3: the checkpoint blob against its restore target.
func runImage(imagePath, binPath string, jsonOut bool) error {
	b, err := loadBinary(binPath)
	if err != nil {
		return err
	}
	blob, err := os.ReadFile(imagePath)
	if err != nil {
		return err
	}
	dir, err := criu.UnmarshalImageDir(blob)
	if err != nil {
		return fmt.Errorf("%s: %w", imagePath, err)
	}
	r := updatecheck.CheckImage(dir, b)
	if jsonOut {
		return emitJSON(map[string]any{
			"image":      imagePath,
			"binary":     binPath,
			"violations": r.Violations,
			"consistent": len(r.Violations) == 0,
		}, len(r.Violations) == 0)
	}
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Println(v.Error())
		}
		return fmt.Errorf("%s does not belong to %s: %d violation(s)", imagePath, binPath, len(r.Violations))
	}
	fmt.Printf("%s: consistent with %s\n", imagePath, binPath)
	return nil
}

// diffJSON flattens the report for machine consumption: the classifier's
// verdict plus the full slot-mapping table per function.
func diffJSON(d *updatecheck.DiffReport) []map[string]any {
	out := make([]map[string]any, 0, len(d.Funcs))
	for _, fd := range d.Funcs {
		out = append(out, map[string]any{
			"name":       fd.Name,
			"class":      fd.Class.String(),
			"identity":   fd.Identity,
			"slotMap":    fd.SlotMap,
			"violations": fd.Violations,
		})
	}
	return out
}

func emitJSON(v any, ok bool) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("verification failed")
	}
	return nil
}

// runSelftest is the `make updatecheck` body: every workload binary on
// both ISAs must pass the soundness pass, and an identical recompile must
// classify every function safe.
func runSelftest() error {
	checked := 0
	for _, w := range workloads.All() {
		pair, err := workloads.CompilePair(w, workloads.ClassS)
		if err != nil {
			return fmt.Errorf("compile %s: %w", w.Name, err)
		}
		for _, b := range []*compiler.Binary{pair.X86, pair.ARM} {
			ub := &updatecheck.Binary{Arch: b.Arch, Text: b.Text, Symbols: b.Symbols, Meta: b.Meta}
			if r := updatecheck.CheckBinary(ub); len(r.Violations) > 0 {
				return fmt.Errorf("%s/%v: %w", w.Name, b.Arch, r.Err())
			}
			checked++
		}
	}
	// A recompile of identical source is the diff pass's fixed point.
	w, err := workloads.Get("cg")
	if err != nil {
		return err
	}
	src := w.Source(workloads.ClassS)
	p1, err := compiler.Compile(src)
	if err != nil {
		return err
	}
	p2, err := compiler.Compile(src)
	if err != nil {
		return err
	}
	oldB := &updatecheck.Binary{Arch: p1.X86.Arch, Text: p1.X86.Text, Symbols: p1.X86.Symbols, Meta: p1.X86.Meta}
	newB := &updatecheck.Binary{Arch: p2.X86.Arch, Text: p2.X86.Text, Symbols: p2.X86.Symbols, Meta: p2.X86.Meta}
	for _, fd := range updatecheck.Diff(oldB, newB).Funcs {
		if fd.Class != updatecheck.ClassSafe {
			return fmt.Errorf("recompile diff: func %s classifies %v, want safe", fd.Name, fd.Class)
		}
	}
	if err := updatecheck.Compatible(oldB, newB); err != nil {
		return fmt.Errorf("recompile diff: %w", err)
	}
	fmt.Printf("updatecheck selftest: %d workload binaries sound, recompile diff safe\n", checked)
	return nil
}
