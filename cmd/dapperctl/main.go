// Command dapperctl is the DAPPER runtime controller: it runs compiled
// DELF binaries on the simulated kernels and drives checkpoint, rewrite,
// restore, and cross-ISA migration — the paper's end-to-end workflow in
// one tool.
//
// Usage:
//
//	dapperctl run prog.sx86.delf
//	    Run to completion on the matching architecture's node.
//
//	dapperctl checkpoint -at 0.5 -out ckpt.imgdir prog.sx86.delf
//	    Run to 50% of the program's cycles, pause at equivalence points,
//	    dump, and write the image directory.
//
//	dapperctl restore ckpt.imgdir prog.sx86.delf [prog.sarm.delf]
//	    Restore an image directory (binaries resolve the files image).
//
//	dapperctl migrate -at 0.5 [-lazy|-precopy] [-shuffle] [-codec raw|none|flate] [-delta] prog.sx86.delf prog.sarm.delf
//	    Full live migration x86 -> arm with the phase breakdown. -codec
//	    selects the wire codec (raw keeps the legacy framing, none
//	    batches, flate batches and compresses); -delta XOR-delta-encodes
//	    re-dirtied pre-copy pages and requires -precopy.
//
//	dapperctl stats -at 0.5 [-lazy|-precopy] [-codec raw|none|flate] [-delta] [-json] prog.sx86.delf prog.sarm.delf
//	    Run a migration with telemetry attached and print the full obs
//	    report: counters, latency histograms, and the phase span tree
//	    (see docs/observability.md). -json emits machine-readable output.
//	    The -codec/-delta knobs match migrate, so their wire effects
//	    ("proto.bytes_saved", delta counters) land in the report.
//
//	dapperctl clone -n 4 [-at 0.5] [-registry DIR] [-manifest ID] prog.delf
//	    Checkpoint the program mid-run, push the image into a persistent
//	    content-addressed registry (docs/registry.md), and restore it
//	    onto N fresh nodes at once. The clones share resident page
//	    frames copy-on-write until first write; outputs are verified
//	    byte-identical. -manifest skips the checkpoint and clones an
//	    existing manifest out of -registry.
//
// Fleet subcommands (clients of the dapperd control plane; see
// docs/fleet.md — start the daemon first):
//
//	dapperctl submit -socket dapperd.sock -program cg [-lazy|-precopy] [-codec C] [-delta] [-dedup] [-workers N] [-at F] [-target sx86|sarm] [-retries N] [-manifest ID -clone N]
//	    Queue a migration job; prints the job id. With -manifest the job
//	    becomes a clone job: the daemon (started with -registry) restores
//	    the stored checkpoint onto the placed node -clone times instead
//	    of migrating a live process.
//
//	dapperctl jobs -socket dapperd.sock [-json]
//	    List every job the daemon knows with state and attempt counts.
//
//	dapperctl status -socket dapperd.sock [-json] [-full]
//	    Fleet summary: per-node utilization and queue depths. -full
//	    prints the whole report including migration latency percentiles
//	    and the obs payload.
//
//	dapperctl drain-node -socket dapperd.sock [-undrain] NODE
//	    Stop placing new migrations on NODE (in-flight ones finish);
//	    -undrain reverses it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/fleet"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/registry"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dapperctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dapperctl run|checkpoint|restore|migrate|stats|clone|submit|jobs|status|drain-node ...")
	}
	switch args[0] {
	case "clone":
		return cmdClone(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "checkpoint":
		return cmdCheckpoint(args[1:])
	case "restore":
		return cmdRestore(args[1:])
	case "migrate":
		return cmdMigrate(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "submit":
		return cmdSubmit(args[1:])
	case "jobs":
		return cmdJobs(args[1:])
	case "status":
		return cmdStatus(args[1:])
	case "drain-node":
		return cmdDrain(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func loadBinary(path string) (*compiler.Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return compiler.UnmarshalBinary(data)
}

func nodeFor(arch isa.Arch) *cluster.Node {
	if arch == isa.SX86 {
		return cluster.NewNode(cluster.XeonSpec)
	}
	return cluster.NewNode(cluster.PiSpec)
}

// exePathOf derives the files-image path from a DELF filename: the stem
// with the architecture suffix (prog.sx86.delf -> /bin/prog.sx86).
func exePathOf(path string, arch isa.Arch) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".delf")
	base = strings.TrimSuffix(base, "."+isa.SX86.String())
	base = strings.TrimSuffix(base, "."+isa.SARM.String())
	return "/bin/" + base + "." + arch.String()
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dapperctl run prog.delf")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	node := nodeFor(bin.Arch)
	p, err := node.K.StartProcess(bin.LoadSpec(exePathOf(fs.Arg(0), bin.Arch)))
	if err != nil {
		return err
	}
	if err := node.K.Run(p); err != nil {
		return err
	}
	fmt.Print(p.ConsoleString())
	fmt.Printf("[exit %d, %d guest cycles = %.3f ms on %s]\n",
		p.ExitCode, p.VCycles, node.SecondsFor(p.VCycles)*1000, node.Spec.Name)
	return nil
}

// startAndRunTo loads a binary and runs it to a fraction of its total
// cycles, returning the node and paused-point process.
func startAndRunTo(path string, frac float64) (*cluster.Node, *kernel.Process, *compiler.Binary, error) {
	bin, err := loadBinary(path)
	if err != nil {
		return nil, nil, nil, err
	}
	node := nodeFor(bin.Arch)
	// Measure the total first.
	ref, err := node.K.StartProcess(bin.LoadSpec(exePathOf(path, bin.Arch)))
	if err != nil {
		return nil, nil, nil, err
	}
	if err := node.K.Run(ref); err != nil {
		return nil, nil, nil, fmt.Errorf("reference run: %w", err)
	}
	p, err := node.K.StartProcess(bin.LoadSpec(exePathOf(path, bin.Arch)))
	if err != nil {
		return nil, nil, nil, err
	}
	alive, err := node.K.RunBudget(p, uint64(float64(ref.VCycles)*frac))
	if err != nil {
		return nil, nil, nil, err
	}
	if !alive {
		return nil, nil, nil, fmt.Errorf("program finished before the %.0f%% point", frac*100)
	}
	return node, p, bin, nil
}

func cmdCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ContinueOnError)
	at := fs.Float64("at", 0.5, "checkpoint position as a fraction of total cycles")
	out := fs.String("out", "ckpt.imgdir", "output image-directory file")
	lazy := fs.Bool("lazy", false, "post-copy dump (stack/TLS only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dapperctl checkpoint [-at F] [-out FILE] prog.delf")
	}
	node, p, bin, err := startAndRunTo(fs.Arg(0), *at)
	if err != nil {
		return err
	}
	mon := monitor.New(node.K, p, bin.Meta)
	if err := mon.Pause(1 << 22); err != nil {
		return err
	}
	dir, err := criu.Dump(p, criu.DumpOpts{Lazy: *lazy})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, dir.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("checkpointed %d threads at %.0f%% into %s (%d bytes)\n",
		len(p.Threads), *at*100, *out, dir.Size())
	fmt.Printf("console so far: %q\n", p.ConsoleString())
	return nil
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: dapperctl restore ckpt.imgdir prog.delf...")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	dir, err := criu.UnmarshalImageDir(data)
	if err != nil {
		return err
	}
	provider := criu.MapProvider{}
	var arch isa.Arch
	for _, path := range fs.Args()[1:] {
		bin, err := loadBinary(path)
		if err != nil {
			return err
		}
		provider[exePathOf(path, bin.Arch)] = bin
		arch = bin.Arch
	}
	node := nodeFor(arch)
	p, err := criu.Restore(node.K, dir, provider)
	if err != nil {
		return err
	}
	if err := node.K.Run(p); err != nil {
		return err
	}
	fmt.Print(p.ConsoleString())
	fmt.Printf("[exit %d]\n", p.ExitCode)
	return nil
}

func cmdMigrate(args []string) error {
	fs := flag.NewFlagSet("migrate", flag.ContinueOnError)
	at := fs.Float64("at", 0.5, "migration position as a fraction of total cycles")
	lazy := fs.Bool("lazy", false, "post-copy migration")
	precopy := fs.Bool("precopy", false, "iterative pre-copy migration")
	shuffle := fs.Bool("shuffle", false, "also re-randomize the stack layout during the rewrite")
	codec := fs.String("codec", "raw", "wire codec: raw (legacy framing), none (batched), flate (batched+compressed)")
	delta := fs.Bool("delta", false, "XOR-delta encode re-dirtied pre-copy pages (requires -precopy)")
	stream := fs.Bool("stream", false, "streamed restore: decode/verify/install while the image is still arriving (requires a batched -codec)")
	workers := fs.Int("workers", 0, "worker bound for the parallel pipeline stages (0 = NumCPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: dapperctl migrate [-at F] [-lazy|-precopy] [-codec C] [-delta] [-stream] src.delf dst.delf")
	}
	if *lazy && *precopy {
		return fmt.Errorf("-lazy and -precopy are mutually exclusive")
	}
	if *delta && !*precopy {
		return fmt.Errorf("-delta requires -precopy (delta encoding applies to pre-copy rounds)")
	}
	wireCodec, err := fleet.ParseCodec(*codec)
	if err != nil {
		return err
	}
	if *stream {
		if *lazy || *precopy {
			return fmt.Errorf("-stream applies to vanilla migrations only")
		}
		if !wireCodec.Batched() {
			return fmt.Errorf("-stream requires a batched -codec (none or flate)")
		}
	}
	srcNode, p, srcBin, err := startAndRunTo(fs.Arg(0), *at)
	if err != nil {
		return err
	}
	dstBin, err := loadBinary(fs.Arg(1))
	if err != nil {
		return err
	}
	dstNode := nodeFor(dstBin.Arch)
	srcNode.Binaries[exePathOf(fs.Arg(0), srcBin.Arch)] = srcBin
	srcNode.Binaries[exePathOf(fs.Arg(1), dstBin.Arch)] = dstBin
	dstNode.Binaries[exePathOf(fs.Arg(0), srcBin.Arch)] = srcBin
	dstNode.Binaries[exePathOf(fs.Arg(1), dstBin.Arch)] = dstBin
	opts := cluster.MigrateOpts{
		Lazy: *lazy, Shuffle: *shuffle, ShuffleSeed: 1,
		Codec: wireCodec, Delta: *delta,
		StreamRestore: *stream, Workers: *workers,
	}
	if *precopy {
		opts.PreCopy = &cluster.PreCopyOpts{}
	}
	res, err := cluster.Migrate(srcNode, dstNode, p, srcBin.Meta, opts)
	if err != nil {
		return err
	}
	out1 := p.ConsoleString()
	proc := res.Proc
	if *shuffle {
		fmt.Println("(stack layout re-randomized during the rewrite)")
	}
	if err := dstNode.K.Run(proc); err != nil {
		return err
	}
	bd := res.Breakdown
	fmt.Printf("output: %s", out1+proc.ConsoleString())
	fmt.Printf("breakdown: checkpoint=%v recode=%v copy=%v restore=%v total=%v images=%dB wire=%dB\n",
		bd.Checkpoint, bd.Recode, bd.Copy, bd.Restore, bd.Total(), bd.ImageBytes, bd.WireBytes)
	return nil
}

// cmdStats runs a full migration with a telemetry registry attached and
// prints the obs report.
func cmdStats(args []string) (err error) {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	at := fs.Float64("at", 0.5, "migration position as a fraction of total cycles")
	lazy := fs.Bool("lazy", false, "post-copy migration (over a real TCP page server)")
	precopy := fs.Bool("precopy", false, "iterative pre-copy migration")
	codec := fs.String("codec", "raw", "wire codec: raw (legacy framing), none (batched), flate (batched+compressed)")
	delta := fs.Bool("delta", false, "XOR-delta encode re-dirtied pre-copy pages (requires -precopy)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: dapperctl stats [-at F] [-lazy|-precopy] [-codec C] [-delta] [-json] src.delf dst.delf")
	}
	if *lazy && *precopy {
		return fmt.Errorf("-lazy and -precopy are mutually exclusive")
	}
	if *delta && !*precopy {
		return fmt.Errorf("-delta requires -precopy (delta encoding applies to pre-copy rounds)")
	}
	wireCodec, err := fleet.ParseCodec(*codec)
	if err != nil {
		return err
	}
	srcNode, p, srcBin, err := startAndRunTo(fs.Arg(0), *at)
	if err != nil {
		return err
	}
	dstBin, err := loadBinary(fs.Arg(1))
	if err != nil {
		return err
	}
	dstNode := nodeFor(dstBin.Arch)
	srcNode.Binaries[exePathOf(fs.Arg(0), srcBin.Arch)] = srcBin
	srcNode.Binaries[exePathOf(fs.Arg(1), dstBin.Arch)] = dstBin
	dstNode.Binaries[exePathOf(fs.Arg(0), srcBin.Arch)] = srcBin
	dstNode.Binaries[exePathOf(fs.Arg(1), dstBin.Arch)] = dstBin
	reg := obs.New()
	opts := cluster.MigrateOpts{
		Obs: reg, Lazy: *lazy, LazyTCP: *lazy,
		Codec: wireCodec, Delta: *delta,
	}
	if *precopy {
		opts.PreCopy = &cluster.PreCopyOpts{}
	}
	res, err := cluster.Migrate(srcNode, dstNode, p, srcBin.Meta, opts)
	if err != nil {
		return err
	}
	// A close failure (leaked page server, wedged client) should fail the
	// command, but never mask an earlier error.
	defer func() {
		if cerr := res.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// Run to completion so post-copy faults are realized in the report.
	if err := dstNode.K.Run(res.Proc); err != nil {
		return err
	}
	res.FinalizeLazyStats()
	rep := reg.Report()
	if *jsonOut {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	bd := res.Breakdown
	fmt.Printf("migration: downtime=%v total=%v rounds=%d images=%dB wire=%dB\n",
		bd.Downtime, bd.MigrationTime(), bd.Rounds, bd.ImageBytes, bd.WireBytes)
	fmt.Print(rep.Text())
	return nil
}

// cmdClone checkpoints a program mid-run into a content-addressed
// registry store and restores it onto N fresh nodes at once: the
// serverless-style warm-start fan-out. All clones share resident page
// frames copy-on-write until first write, and their outputs are
// verified byte-identical against clone 0.
func cmdClone(args []string) (err error) {
	fs := flag.NewFlagSet("clone", flag.ContinueOnError)
	n := fs.Int("n", 2, "clone fan-out: how many nodes to restore onto")
	at := fs.Float64("at", 0.5, "checkpoint position as a fraction of total cycles")
	regDir := fs.String("registry", "dapper.registry", "persistent chunk store directory")
	manifestID := fs.String("manifest", "", "clone this stored manifest instead of checkpointing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *n < 1 {
		return fmt.Errorf("usage: dapperctl clone -n N [-at F] [-registry DIR] [-manifest ID] prog.delf")
	}
	reg := obs.New()
	store, err := registry.Open(*regDir, registry.Opts{Obs: reg})
	if err != nil {
		return err
	}
	// A close failure means the manifest journal may not be durable.
	defer func() {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	exe := exePathOf(fs.Arg(0), bin.Arch)

	id := *manifestID
	if id == "" {
		node, p, srcBin, err := startAndRunTo(fs.Arg(0), *at)
		if err != nil {
			return err
		}
		mon := monitor.New(node.K, p, srcBin.Meta)
		if err := mon.Pause(1 << 22); err != nil {
			return err
		}
		dir, err := criu.Dump(p, criu.DumpOpts{})
		if err != nil {
			return err
		}
		m, pst, err := store.Push(dir, registry.PushOpts{})
		if err != nil {
			return err
		}
		id = m.ID
		fmt.Printf("pushed manifest %s: %d new chunks (%dB stored), %d hit (%dB elided)\n",
			id, pst.ChunksNew, pst.BytesStored, pst.ChunksHit, pst.BytesElided)
	} else if id, err = resolveManifest(store, id); err != nil {
		return fmt.Errorf("%w (store %s)", err, *regDir)
	}

	targets := make([]*cluster.Node, *n)
	for i := range targets {
		targets[i] = nodeFor(bin.Arch)
		targets[i].Binaries[exe] = bin
	}
	res, err := cluster.CloneFromRegistry(store, id, targets, cluster.CloneOpts{Obs: reg})
	if err != nil {
		return err
	}
	fmt.Printf("cloned %.12s onto %d nodes: %d shared frames, %d resident pages/clone shared, pull=%v restore=%v\n",
		id, *n, res.Frames.Len(), res.Procs[0].AS.SharedResidentPages(), res.PullHost, res.RestoreHost)
	var out string
	var breaks uint64
	for i, p := range res.Procs {
		if err := targets[i].K.Run(p); err != nil {
			return fmt.Errorf("run clone %d: %w", i, err)
		}
		breaks += p.AS.CowBreaks()
		if i == 0 {
			out = p.ConsoleString()
			continue
		}
		if got := p.ConsoleString(); got != out {
			return fmt.Errorf("clone %d output diverged from clone 0", i)
		}
	}
	fmt.Printf("all %d clones byte-identical; %d COW page breaks total\n", *n, breaks)
	fmt.Print(out)
	return nil
}

// resolveManifest expands a possibly-truncated manifest ID (like the
// %.12s forms the CLI prints) to the unique stored manifest it
// prefixes.
func resolveManifest(store *registry.Store, id string) (string, error) {
	if store.Manifest(id) != nil {
		return id, nil
	}
	var matches []string
	for _, m := range store.Manifests() {
		if strings.HasPrefix(m, id) {
			matches = append(matches, m)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("manifest %q not in the store", id)
	default:
		return "", fmt.Errorf("manifest prefix %q is ambiguous (%d matches)", id, len(matches))
	}
}

// ---- fleet subcommands: thin clients of the dapperd control socket ----

// fleetSocket adds the shared -socket flag.
func fleetSocket(fs *flag.FlagSet) *string {
	return fs.String("socket", "dapperd.sock", "dapperd control socket")
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	socket := fleetSocket(fs)
	program := fs.String("program", "", "registered program to migrate (required)")
	class := fs.String("class", "", "problem class override for registry workloads")
	at := fs.Float64("at", 0.5, "migration position as a fraction of total cycles")
	lazy := fs.Bool("lazy", false, "post-copy migration")
	precopy := fs.Bool("precopy", false, "iterative pre-copy migration")
	codec := fs.String("codec", "raw", "wire codec: raw, none, or flate")
	delta := fs.Bool("delta", false, "XOR-delta pre-copy rounds (requires -precopy)")
	dedup := fs.Bool("dedup", false, "content-addressed page dedup in the dump")
	workers := fs.Int("workers", 0, "parallel pipeline workers (0 = NumCPU)")
	src := fs.String("src", "", "pin the source node by name")
	dst := fs.String("dst", "", "pin the destination node by name")
	target := fs.String("target", "", "constrain destination ISA: sx86 or sarm")
	retries := fs.Int("retries", 0, "retry budget (0 = default, negative = none)")
	manifest := fs.String("manifest", "", "submit a clone job for this registry manifest (daemon needs -registry)")
	clones := fs.Int("clone", 0, "clone fan-out on the placed node (requires -manifest; default 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 || *program == "" {
		return fmt.Errorf("usage: dapperctl submit -program NAME [flags] (see dapperctl help)")
	}
	spec := fleet.JobSpec{
		Program:    *program,
		RunFrac:    *at,
		SrcNode:    *src,
		DstNode:    *dst,
		TargetArch: *target,
		MaxRetries: *retries,
		Manifest:   *manifest,
		Clone:      *clones,
		Class:      workloads.Class(strings.ToUpper(*class)),
		Opts: fleet.JobOpts{
			Workers: *workers,
			Dedup:   *dedup,
			Codec:   *codec,
			Delta:   *delta,
			Lazy:    *lazy,
			PreCopy: *precopy,
		},
	}
	resp, err := fleet.Call(*socket, fleet.Request{Op: fleet.OpSubmit, Spec: &spec})
	if err != nil {
		return err
	}
	fmt.Printf("job %d submitted\n", resp.JobID)
	return nil
}

func cmdJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	socket := fleetSocket(fs)
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: dapperctl jobs [-socket S] [-json]")
	}
	resp, err := fleet.Call(*socket, fleet.Request{Op: fleet.OpJobs})
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := json.MarshalIndent(resp.Jobs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if len(resp.Jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	for _, j := range resp.Jobs {
		line := fmt.Sprintf("job %-4d %-10s %-8s mode=%-7s attempts=%d retries=%d",
			j.ID, j.Program, j.State, j.Mode, j.Attempts, j.Retries)
		if j.Src != "" {
			line += fmt.Sprintf(" %s->%s", j.Src, j.Dst)
		} else if j.Manifest != "" && j.Dst != "" {
			line += fmt.Sprintf(" %.12s->%s x%d", j.Manifest, j.Dst, j.Clones)
		}
		if j.State == "done" {
			line += fmt.Sprintf(" migration=%v downtime=%v", j.Migration, j.Downtime)
		}
		if j.Err != "" {
			line += " err=" + j.Err
		}
		fmt.Println(line)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	socket := fleetSocket(fs)
	jsonOut := fs.Bool("json", false, "emit JSON")
	full := fs.Bool("full", false, "full report including latency percentiles and obs payload")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: dapperctl status [-socket S] [-json] [-full]")
	}
	if *full {
		resp, err := fleet.Call(*socket, fleet.Request{Op: fleet.OpReport})
		if err != nil {
			return err
		}
		if *jsonOut {
			data, err := resp.Report.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		fmt.Print(resp.Report.Text())
		return nil
	}
	resp, err := fleet.Call(*socket, fleet.Request{Op: fleet.OpStatus})
	if err != nil {
		return err
	}
	st := resp.Status
	if *jsonOut {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("fleet: policy=%s jobs %d submitted / %d done / %d failed / %d pending / %d running retries=%d rollbacks=%d\n",
		st.Policy, st.Submitted, st.Done, st.Failed, st.Pending, st.Running, st.Retries, st.Rollbacks)
	for _, n := range st.Nodes {
		status := ""
		if n.Drained {
			status += " DRAINED"
		}
		if n.Down {
			status += " DOWN"
		}
		fmt.Printf("node %-10s %s cap=%d running=%d peak=%d done=%d failed=%d util=%.2f%s\n",
			n.Name, n.Arch, n.Capacity, n.Running, n.HighWater, n.Done, n.Failed, n.Utilization, status)
	}
	return nil
}

func cmdDrain(args []string) error {
	fs := flag.NewFlagSet("drain-node", flag.ContinueOnError)
	socket := fleetSocket(fs)
	undrain := fs.Bool("undrain", false, "re-enable placement on the node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dapperctl drain-node [-socket S] [-undrain] NODE")
	}
	if _, err := fleet.Call(*socket, fleet.Request{
		Op: fleet.OpDrain, Node: fs.Arg(0), Undrain: *undrain,
	}); err != nil {
		return err
	}
	if *undrain {
		fmt.Printf("node %s undrained\n", fs.Arg(0))
	} else {
		fmt.Printf("node %s drained (in-flight migrations finish; no new placements)\n", fs.Arg(0))
	}
	return nil
}
