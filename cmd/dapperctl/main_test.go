package main

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/isa"
)

func TestExePathOf(t *testing.T) {
	cases := []struct {
		path string
		arch isa.Arch
		want string
	}{
		{"prog.sx86.delf", isa.SX86, "/bin/prog.sx86"},
		{"prog.sx86.delf", isa.SARM, "/bin/prog.sarm"},
		{"dir/sub/app.sarm.delf", isa.SX86, "/bin/app.sx86"},
		{"plain.delf", isa.SARM, "/bin/plain.sarm"},
		{"noext", isa.SX86, "/bin/noext.sx86"},
	}
	for _, tc := range cases {
		if got := exePathOf(tc.path, tc.arch); got != tc.want {
			t.Errorf("exePathOf(%q, %v) = %q, want %q", tc.path, tc.arch, got, tc.want)
		}
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(nil); err == nil {
		t.Error("empty args accepted")
	}
}
