// Command dapperd is the fleet-level migration control plane daemon: it
// owns a set of simulated nodes (mixed SX86 Xeon-class and SARM Pi-class
// machines), a journaled queue of migration jobs, a placement policy,
// per-node concurrency bounds, node heartbeats, and the retry/rollback
// machinery — everything in internal/fleet — and exposes it over a local
// unix socket that dapperctl's submit/status/jobs/drain-node subcommands
// speak to.
//
// Usage:
//
//	dapperd -socket dapperd.sock -journal dapperd.journal \
//	        -xeons 2 -pis 2 -cap 2 -policy least-loaded \
//	        -programs cg,mg -class S [-registry dapper.registry]
//
// The journal makes the queue durable: killing the daemon mid-queue and
// restarting it with the same -journal resumes the remaining jobs
// without loss or duplication (programs re-register from the journal;
// nodes come from the flags). See docs/fleet.md.
//
// -registry opens a persistent content-addressed checkpoint store
// (docs/registry.md) and enables clone jobs: dapperctl submit -manifest
// ID -clone N restores a stored checkpoint onto a placed node N times
// with copy-on-write page sharing. The daemon pins each clone job's
// manifest against registry GC until the job is terminal, across
// restarts.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/fleet"
	"github.com/dapper-sim/dapper/internal/registry"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dapperd:", err)
		os.Exit(1)
	}
}

// options is the parsed daemon configuration.
type options struct {
	socket   string
	journal  string
	registry string
	xeons    int
	pis      int
	cap      int
	policy   string
	programs []string
	class    workloads.Class
	hbEvery  time.Duration
	hbMissed int
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("dapperd", flag.ContinueOnError)
	socket := fs.String("socket", "dapperd.sock", "unix socket path for the control API")
	journalPath := fs.String("journal", "dapperd.journal", "append-only job journal (empty disables durability)")
	registryDir := fs.String("registry", "", "content-addressed checkpoint store directory (enables clone jobs)")
	xeons := fs.Int("xeons", 2, "number of SX86 Xeon-class nodes")
	pis := fs.Int("pis", 2, "number of SARM Pi-class nodes")
	capacity := fs.Int("cap", 2, "concurrent migration slots per node")
	policy := fs.String("policy", "least-loaded", "placement policy: least-loaded, isa-affinity, or round-robin")
	programs := fs.String("programs", "", "comma-separated workloads to pre-register (e.g. cg,mg,rediska)")
	class := fs.String("class", "S", "problem class for pre-registered workloads")
	hbEvery := fs.Duration("hb-interval", 50*time.Millisecond, "heartbeat probe interval")
	hbMissed := fs.Int("hb-max-missed", 3, "consecutive missed heartbeats before a node is marked down")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() != 0 {
		return options{}, fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	o := options{
		socket:   *socket,
		journal:  *journalPath,
		registry: *registryDir,
		xeons:    *xeons,
		pis:      *pis,
		cap:      *capacity,
		policy:   *policy,
		class:    workloads.Class(strings.ToUpper(*class)),
		hbEvery:  *hbEvery,
		hbMissed: *hbMissed,
	}
	if *programs != "" {
		o.programs = strings.Split(*programs, ",")
	}
	if o.xeons+o.pis < 2 {
		return options{}, fmt.Errorf("need at least two nodes to migrate between (-xeons %d -pis %d)", o.xeons, o.pis)
	}
	return o, nil
}

// buildManager assembles the fleet from parsed options: xeonN/piN nodes,
// pre-registered programs, policy, journal, and (when -registry is set)
// the persistent checkpoint store behind clone jobs. The returned store
// is nil without -registry; the caller owns closing it after the
// manager stops.
func buildManager(o options) (*fleet.Manager, *registry.Store, error) {
	var store *registry.Store
	if o.registry != "" {
		var err error
		if store, err = registry.Open(o.registry, registry.Opts{}); err != nil {
			return nil, nil, err
		}
	}
	m, err := fleet.NewManager(fleet.Config{
		Journal:  o.journal,
		Policy:   o.policy,
		Registry: store,
		Heartbeat: fleet.HeartbeatConfig{
			Interval:  o.hbEvery,
			MaxMissed: o.hbMissed,
		},
	})
	if err != nil {
		if store != nil {
			_ = store.Close() // surfacing the NewManager error matters more
		}
		return nil, nil, err
	}
	fail := func(err error) (*fleet.Manager, *registry.Store, error) {
		if serr := m.Stop(); serr != nil {
			err = fmt.Errorf("%w (stop: %v)", err, serr)
		}
		if store != nil {
			_ = store.Close() // the original build error matters more
		}
		return nil, nil, err
	}
	for i := 0; i < o.xeons; i++ {
		if err := m.AddNode(fmt.Sprintf("xeon%d", i), cluster.XeonSpec, o.cap); err != nil {
			return fail(err)
		}
	}
	for i := 0; i < o.pis; i++ {
		if err := m.AddNode(fmt.Sprintf("pi%d", i), cluster.PiSpec, o.cap); err != nil {
			return fail(err)
		}
	}
	for _, prog := range o.programs {
		prog = strings.TrimSpace(prog)
		if prog == "" {
			continue
		}
		// Journal replay may have re-registered it already.
		if err := m.RegisterWorkload(prog, o.class); err != nil && !strings.Contains(err.Error(), "duplicate program") {
			return fail(err)
		}
	}
	return m, store, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	m, store, err := buildManager(o)
	if err != nil {
		return err
	}
	closeStore := func(err error) error {
		if store == nil {
			return err
		}
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}
	if err := m.Start(); err != nil {
		return closeStore(err)
	}
	srv, err := fleet.Serve(m, o.socket)
	if err != nil {
		if serr := m.Stop(); serr != nil {
			err = fmt.Errorf("%w (stop: %v)", err, serr)
		}
		return closeStore(err)
	}
	fmt.Printf("dapperd: %d nodes, policy %s, socket %s, journal %s\n",
		o.xeons+o.pis, o.policy, o.socket, o.journal)
	if store != nil {
		st := store.Stat()
		fmt.Printf("dapperd: registry %s (%d manifests, %d chunks; clone jobs enabled)\n",
			o.registry, st.Manifests, st.Chunks)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dapperd: shutting down (in-flight attempts drain; pending jobs stay journaled)")
	err = srv.Close()
	if serr := m.Stop(); serr != nil && err == nil {
		err = serr
	}
	err = closeStore(err)
	rep := m.Report()
	fmt.Print(rep.Text())
	return err
}
