// Command dapperd is the fleet-level migration control plane daemon: it
// owns a set of simulated nodes (mixed SX86 Xeon-class and SARM Pi-class
// machines), a journaled queue of migration jobs, a placement policy,
// per-node concurrency bounds, node heartbeats, and the retry/rollback
// machinery — everything in internal/fleet — and exposes it over a local
// unix socket that dapperctl's submit/status/jobs/drain-node subcommands
// speak to.
//
// Usage:
//
//	dapperd -socket dapperd.sock -journal dapperd.journal \
//	        -xeons 2 -pis 2 -cap 2 -policy least-loaded \
//	        -programs cg,mg -class S
//
// The journal makes the queue durable: killing the daemon mid-queue and
// restarting it with the same -journal resumes the remaining jobs
// without loss or duplication (programs re-register from the journal;
// nodes come from the flags). See docs/fleet.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/fleet"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dapperd:", err)
		os.Exit(1)
	}
}

// options is the parsed daemon configuration.
type options struct {
	socket   string
	journal  string
	xeons    int
	pis      int
	cap      int
	policy   string
	programs []string
	class    workloads.Class
	hbEvery  time.Duration
	hbMissed int
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("dapperd", flag.ContinueOnError)
	socket := fs.String("socket", "dapperd.sock", "unix socket path for the control API")
	journalPath := fs.String("journal", "dapperd.journal", "append-only job journal (empty disables durability)")
	xeons := fs.Int("xeons", 2, "number of SX86 Xeon-class nodes")
	pis := fs.Int("pis", 2, "number of SARM Pi-class nodes")
	capacity := fs.Int("cap", 2, "concurrent migration slots per node")
	policy := fs.String("policy", "least-loaded", "placement policy: least-loaded, isa-affinity, or round-robin")
	programs := fs.String("programs", "", "comma-separated workloads to pre-register (e.g. cg,mg,rediska)")
	class := fs.String("class", "S", "problem class for pre-registered workloads")
	hbEvery := fs.Duration("hb-interval", 50*time.Millisecond, "heartbeat probe interval")
	hbMissed := fs.Int("hb-max-missed", 3, "consecutive missed heartbeats before a node is marked down")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() != 0 {
		return options{}, fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	o := options{
		socket:   *socket,
		journal:  *journalPath,
		xeons:    *xeons,
		pis:      *pis,
		cap:      *capacity,
		policy:   *policy,
		class:    workloads.Class(strings.ToUpper(*class)),
		hbEvery:  *hbEvery,
		hbMissed: *hbMissed,
	}
	if *programs != "" {
		o.programs = strings.Split(*programs, ",")
	}
	if o.xeons+o.pis < 2 {
		return options{}, fmt.Errorf("need at least two nodes to migrate between (-xeons %d -pis %d)", o.xeons, o.pis)
	}
	return o, nil
}

// buildManager assembles the fleet from parsed options: xeonN/piN nodes,
// pre-registered programs, policy, journal.
func buildManager(o options) (*fleet.Manager, error) {
	m, err := fleet.NewManager(fleet.Config{
		Journal: o.journal,
		Policy:  o.policy,
		Heartbeat: fleet.HeartbeatConfig{
			Interval:  o.hbEvery,
			MaxMissed: o.hbMissed,
		},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < o.xeons; i++ {
		if err := m.AddNode(fmt.Sprintf("xeon%d", i), cluster.XeonSpec, o.cap); err != nil {
			return nil, err
		}
	}
	for i := 0; i < o.pis; i++ {
		if err := m.AddNode(fmt.Sprintf("pi%d", i), cluster.PiSpec, o.cap); err != nil {
			return nil, err
		}
	}
	for _, prog := range o.programs {
		prog = strings.TrimSpace(prog)
		if prog == "" {
			continue
		}
		// Journal replay may have re-registered it already.
		if err := m.RegisterWorkload(prog, o.class); err != nil && !strings.Contains(err.Error(), "duplicate program") {
			return nil, err
		}
	}
	return m, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	m, err := buildManager(o)
	if err != nil {
		return err
	}
	if err := m.Start(); err != nil {
		return err
	}
	srv, err := fleet.Serve(m, o.socket)
	if err != nil {
		if serr := m.Stop(); serr != nil {
			err = fmt.Errorf("%w (stop: %v)", err, serr)
		}
		return err
	}
	fmt.Printf("dapperd: %d nodes, policy %s, socket %s, journal %s\n",
		o.xeons+o.pis, o.policy, o.socket, o.journal)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dapperd: shutting down (in-flight attempts drain; pending jobs stay journaled)")
	err = srv.Close()
	if serr := m.Stop(); serr != nil && err == nil {
		err = serr
	}
	rep := m.Report()
	fmt.Print(rep.Text())
	return err
}
