package main

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/fleet"
	"github.com/dapper-sim/dapper/internal/registry"
)

const counterSrc = `
var data[4096] int;
var acc int;
func fill() {
	var i int;
	for i = 0; i < 4096; i = i + 1 {
		data[i] = (i % 251) + 1;
	}
}
func bump(i int) {
	acc = acc + data[(i * 7) % 4096];
}
func main() {
	var i int;
	fill();
	for i = 0; i < 6000; i = i + 1 {
		bump(i);
	}
	printi(acc);
}`

// pushCheckpoint stores a mid-run checkpoint of counterSrc (installed as
// "counter") into the store by routing a migration through it, and
// returns the manifest ID.
func pushCheckpoint(t *testing.T, store *registry.Store) string {
	t.Helper()
	pair, err := compiler.Compile(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	src := cluster.NewNode(cluster.XeonSpec)
	src.Install("counter", pair)
	dst := cluster.NewNode(cluster.PiSpec)
	dst.Install("counter", pair)

	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("counter", pair)
	rp, err := ref.Start("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(rp); err != nil {
		t.Fatal(err)
	}

	p, err := src.Start("counter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.K.RunBudget(p, rp.VCycles/2); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(src, dst, p, pair.Meta, cluster.MigrateOpts{Registry: store})
	if err != nil {
		t.Fatal(err)
	}
	dst.K.Reap(res.Proc)
	return res.Manifest
}

// TestDaemonRegistryCloneJob is the daemon-level end-to-end path of the
// registry clone feature: dapperd flags open the store, the manager gets
// it via Config.Registry, and a clone job submitted over the control
// socket (what dapperctl submit -manifest -clone sends) restores the
// stored checkpoint and completes.
func TestDaemonRegistryCloneJob(t *testing.T) {
	dir := t.TempDir()
	o, err := parseFlags([]string{
		"-socket", filepath.Join(dir, "d.sock"),
		"-journal", filepath.Join(dir, "d.journal"),
		"-registry", filepath.Join(dir, "reg"),
		"-xeons", "1", "-pis", "1", "-cap", "2",
		"-hb-interval", "10ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, store, err := buildManager(o)
	if err != nil {
		t.Fatal(err)
	}
	if store == nil {
		t.Fatal("buildManager with -registry returned a nil store")
	}
	defer func() { _ = store.Close() }() // plain teardown
	if err := m.RegisterProgram("counter", counterSrc); err != nil {
		t.Fatal(err)
	}
	manifest := pushCheckpoint(t, store)

	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := m.Stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	srv, err := fleet.Serve(m, o.socket)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }() // plain teardown

	resp, err := fleet.Call(o.socket, fleet.Request{Op: fleet.OpSubmit, Spec: &fleet.JobSpec{
		Program: "counter", Manifest: manifest, Clone: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	jobs, err := fleet.Call(o.socket, fleet.Request{Op: fleet.OpJobs})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, j := range jobs.Jobs {
		if j.ID != resp.JobID {
			continue
		}
		found = true
		if j.State != "done" {
			t.Fatalf("clone job state %s (err %q), want done", j.State, j.Err)
		}
		if j.Mode != "clone" || j.Clones != 3 || j.Manifest != manifest {
			t.Fatalf("clone job view: mode=%s clones=%d manifest=%.12s", j.Mode, j.Clones, j.Manifest)
		}
	}
	if !found {
		t.Fatalf("job %d missing from jobs listing", resp.JobID)
	}
}
