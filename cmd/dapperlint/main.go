// Command dapperlint runs the repo's own static analyzers (see
// internal/analysis and docs/analysis.md) over the given packages and
// exits non-zero on findings.
//
// Usage:
//
//	dapperlint [patterns...]      # default ./...
//
// Output is one finding per line, position-sorted:
//
//	path/file.go:12:3: closecheck: result of conn.Close() is dropped; ...
//
// Findings are suppressed case by case with a //lint:ignore directive on
// the finding's line or the line above:
//
//	//lint:ignore closecheck double-close during shutdown carries no signal
//
// The reason is mandatory; unknown check names and stale directives are
// findings themselves (stale ones as warnings, which do not affect the
// exit code).
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/dapper-sim/dapper/internal/analysis"
	"github.com/dapper-sim/dapper/internal/analysis/checks"
)

func main() {
	diags, err := run(".", os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dapperlint:", err)
		os.Exit(2)
	}
	if analysis.HasErrors(diags) {
		os.Exit(1)
	}
}

func run(root string, patterns []string, out io.Writer) ([]analysis.Diagnostic, error) {
	diags, err := analysis.Run(root, patterns, checks.All())
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	return diags, nil
}
