package main

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// TestRunFixtureModule drives the full pipeline — loader, analyzers,
// suppression, printing — over the toy module in testdata/src: one real
// closecheck finding, one suppressed, one stale directive.
func TestRunFixtureModule(t *testing.T) {
	var out strings.Builder
	diags, err := run("testdata/src", []string{"./..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (one real, one stale):\n%s", len(diags), out.String())
	}
	if !analysis.HasErrors(diags) {
		t.Error("the unsuppressed Close() must make the run fail")
	}
	text := out.String()
	for _, want := range []string{
		"leak/leak.go:8:2: closecheck: result of c.Close() is dropped",
		"stale lint:ignore closecheck",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Exactly one error: the suppressed Close() must not be printed.
	var errs int
	for _, d := range diags {
		if d.Severity == analysis.SeverityError {
			errs++
		}
	}
	if errs != 1 {
		t.Errorf("got %d errors, want 1:\n%s", errs, text)
	}
}

// TestRunBadRoot: a root without a go.mod is a load error, not findings.
func TestRunBadRoot(t *testing.T) {
	var out strings.Builder
	if _, err := run("testdata", nil, &out); err == nil {
		t.Fatal("want a load error for a root without go.mod")
	}
}
