module example.com/toy

go 1.22
