// Package leak is a dapperlint end-to-end fixture: one real closecheck
// finding, one suppressed one, and one stale directive.
package leak

type conn interface{ Close() error }

func drop(c conn) {
	c.Close()
}

func sanctioned(c conn) {
	//lint:ignore closecheck fixture demonstrates a reasoned discard
	c.Close()
}

//lint:ignore closecheck nothing on the next line to suppress
func clean() {}
