// Heterocluster: the paper's Fig. 8 scenario as a runnable demo — an
// infinite NPB job queue on a Xeon-like server, with DAPPER evicting
// excess jobs to Raspberry-Pi-like boards, reporting energy efficiency
// (jobs/kJ) and throughput (jobs/hour) improvements.
package main

import (
	"fmt"
	"log"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/energy"
	"github.com/dapper-sim/dapper/internal/experiments"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Price one eviction with a real migration of the CG kernel.
	w, err := workloads.Get("cg")
	if err != nil {
		return err
	}
	bd, err := experiments.MigrateOnce(w, workloads.ClassS, 0.3, false)
	if err != nil {
		return err
	}
	evict := bd.Total().Seconds()
	fmt.Printf("measured eviction cost (checkpoint+recode+copy+restore): %.0f ms\n\n", evict*1000)

	fmt.Printf("cluster: 1x %s (%d cores, %.0f W @7 jobs) + N x %s (%d cores, %.1f W @3 jobs)\n\n",
		cluster.XeonSpec.Name, cluster.XeonSpec.Cores, cluster.XeonSpec.PowerW(7),
		cluster.PiSpec.Name, cluster.PiSpec.Cores, cluster.PiSpec.PowerW(3))

	job := energy.JobClass{Name: "cg.B", Cycles: 130_000_000_000} // ~62 s on the Xeon
	fmt.Printf("%-8s %-5s %-12s %-12s %-8s %-10s %-10s %-8s\n",
		"job", "pis", "base j/kJ", "dapper j/kJ", "eff+%", "base j/h", "dapper j/h", "tput+%")
	for _, pis := range []int{1, 2, 3} {
		imp, err := energy.Compare(job, pis, evict)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-5d %-12.3f %-12.3f %-8.1f %-10.0f %-10.0f %-8.1f\n",
			job.Name, pis, imp.BaselineEff, imp.DapperEff, imp.EfficiencyPct,
			imp.BaselineTput, imp.DapperTput, imp.ThroughputPct)
	}
	fmt.Println("\npaper reference: +15-39% energy efficiency, +37-52% throughput with 1-3 Pis")
	return nil
}
