// Lazymigration: post-copy migration of a live key/value store, with the
// page server running over a real TCP socket — the paper's Redis
// lazy-migration experiment end to end.
//
// The rediska server is bulk-loaded, then migrated x86 -> arm while
// blocked in recv. Only the stack/TLS/flag pages travel eagerly; the
// database pages are fetched on demand from the source node's page server
// as the restored process touches them.
package main

import (
	"fmt"
	"log"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	w, err := workloads.Get("rediska")
	if err != nil {
		return err
	}
	pair, err := workloads.CompilePair(w, workloads.ClassA)
	if err != nil {
		return err
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install(w.Name, pair)
	pi.Install(w.Name, pair)

	p, err := xeon.Start(w.Name)
	if err != nil {
		return err
	}
	const dbKeys = 5000
	p.PushInput(workloads.RediskaLoad(dbKeys))
	for i := 0; i < 10_000_000; i++ {
		st, err := xeon.K.Step(p)
		if err != nil {
			return err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	p.TakeOutput()
	fmt.Printf("rediska loaded with %d keys (%d KiB resident) on %s\n",
		dbKeys, p.AS.ResidentBytes()/1024, xeon.Spec.Name)

	// LazyTCP serves the post-copy pages over a REAL TCP page server, as
	// the cross-node deployment would: a pooled, pipelined client with
	// per-fetch deadlines and retry, prefetching a small window around
	// each fault.
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{
		Lazy:       true,
		LazyTCP:    true,
		PageClient: &criu.PageClientOpts{Prefetch: 4},
	})
	if err != nil {
		return err
	}
	// Close tears down the page server and client; a failure there means
	// leaked plumbing and should fail the example (without masking an
	// earlier error).
	defer func() {
		if cerr := res.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	bd := res.Breakdown
	fmt.Printf("post-copy migration to %s: images %d B, checkpoint=%v recode=%v copy=%v restore=%v\n",
		pi.Spec.Name, bd.ImageBytes, bd.Checkpoint, bd.Recode, bd.Copy, bd.Restore)
	fmt.Printf("page server up; destination faults pages over TCP\n\n")

	// Query the migrated store: every page it touches is pulled over the
	// socket on first access.
	p2 := res.Proc
	query := func(key uint64) ([]uint64, error) {
		p2.PushInput(workloads.RediskaGet(key))
		for i := 0; i < 10_000_000; i++ {
			if _, err := pi.K.Step(p2); err != nil {
				return nil, err
			}
			if out := p2.TakeOutput(); len(out) > 0 {
				return workloads.ParseWords(out), nil
			}
		}
		return nil, fmt.Errorf("no response")
	}
	for _, k := range []uint64{0, 123, 4999} {
		key := uint64(1000000 + 7*k)
		r, err := query(key)
		if err != nil {
			return err
		}
		want := k*k + 3
		status := "OK"
		if r[0] != 1 || r[1] != want {
			status = fmt.Sprintf("WRONG (want %d)", want)
		}
		fmt.Printf("GET key[%d] -> %v  %s\n", k, r, status)
	}
	p2.CloseInput()
	if err := pi.K.Run(p2); err != nil {
		return err
	}
	res.FinalizeLazyStats()
	cst := res.PageClientStats()
	fmt.Printf("\nserved all queries after post-copy migration; %d KiB now resident on the destination\n",
		p2.AS.ResidentBytes()/1024)
	fmt.Printf("page server served %d requests (%d KiB); client: %d fetches, %d retries, %d prefetch hits\n",
		res.Breakdown.LazyFetches, res.Breakdown.LazyBytes/1024, cst.Fetches, cst.Retries, cst.PrefetchHits)
	return nil
}
