// Quickstart: compile a DapC program for both architectures, run it
// natively, then run it again with a live cross-ISA migration at the
// half-way point and check the outputs match — DAPPER's headline
// capability in ~80 lines.
package main

import (
	"fmt"
	"log"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
)

const program = `
// Estimate pi with a deterministic grid sample, chatting along the way.
func inside(x int, y int) int {
	if x * x + y * y <= 1000000 { return 1; }
	return 0;
}

func main() {
	var hits int;
	var x int;
	var y int;
	for x = 0; x < 1000; x = x + 10 {
		for y = 0; y < 1000; y = y + 1 {
			hits = hits + inside(x, y);
		}
		if x % 250 == 0 {
			print("progress ");
			printi(x / 10);
			print("%\n");
		}
	}
	print("pi ~ ");
	printf(4.0 * float(hits) / 100000.0);
	print("\n");
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. One compilation, two aligned binaries (x86-like and ARM-like).
	pair, err := compiler.Compile(program)
	if err != nil {
		return err
	}
	fmt.Printf("compiled: %d B of sx86 text, %d B of sarm text, symbols aligned\n\n",
		len(pair.X86.Text), len(pair.ARM.Text))

	// 2. Native run on the Xeon-like node.
	xeon := cluster.NewNode(cluster.XeonSpec)
	xeon.Install("pi", pair)
	p, err := xeon.Start("pi")
	if err != nil {
		return err
	}
	if err := xeon.K.Run(p); err != nil {
		return err
	}
	native := p.ConsoleString()
	total := p.VCycles
	fmt.Printf("native output on %s:\n%s\n", xeon.Spec.Name, native)

	// 3. Run again, but live-migrate to the Pi-like node at 50%.
	srcNode := cluster.NewNode(cluster.XeonSpec)
	dstNode := cluster.NewNode(cluster.PiSpec)
	srcNode.Install("pi", pair)
	dstNode.Install("pi", pair)
	p2, err := srcNode.Start("pi")
	if err != nil {
		return err
	}
	if _, err := srcNode.K.RunBudget(p2, total/2); err != nil {
		return err
	}
	res, err := cluster.Migrate(srcNode, dstNode, p2, pair.Meta, cluster.MigrateOpts{})
	if err != nil {
		return err
	}
	if err := dstNode.K.Run(res.Proc); err != nil {
		return err
	}
	migrated := p2.ConsoleString() + res.Proc.ConsoleString()
	fmt.Printf("migrated output (first half on %s, second half on %s):\n%s\n",
		srcNode.Spec.Name, dstNode.Spec.Name, migrated)
	bd := res.Breakdown
	fmt.Printf("migration breakdown: checkpoint=%v recode=%v copy=%v restore=%v (images %d B)\n",
		bd.Checkpoint, bd.Recode, bd.Copy, bd.Restore, bd.ImageBytes)

	if native == migrated {
		fmt.Println("\nSUCCESS: outputs are bit-identical across the live cross-ISA migration")
		return nil
	}
	return fmt.Errorf("outputs differ!\nnative: %q\nmigrated: %q", native, migrated)
}
