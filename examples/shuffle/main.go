// Shuffle: DAPPER's stack re-randomization as a security demo. A
// vulnerable server (stack buffer overflow, as in the paper's Min-DOP case
// study) is attacked with a payload crafted from its binary's frame
// layout; the attack succeeds. The server is then re-randomized — both
// offline (shuffled binary) and live (checkpoint + shuffle policy +
// restore) — and the stale payload misses.
package main

import (
	"fmt"
	"log"

	"github.com/dapper-sim/dapper/internal/attack"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func fire(bin *compiler.Binary, payload []byte) attack.Result {
	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(bin.LoadSpec("/bin/vuln." + bin.Arch.String()))
	if err != nil {
		return attack.Result{Crashed: true}
	}
	return attack.Fire(k, p, payload)
}

func verdict(r attack.Result) string {
	switch {
	case r.Pwned:
		return "PWNED (full chain)"
	case r.Escalated:
		return "ESCALATED"
	case r.Crashed:
		return "crashed (attack failed)"
	case r.Hung:
		return "hung (attack failed)"
	default:
		return "no effect (attack failed)"
	}
}

func run() error {
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		return err
	}
	payload, err := attack.BuildPayload(pair.Meta, "handle", "buf", isa.SX86,
		attack.MinDOPTargets(isa.SX86), attack.Counters())
	if err != nil {
		return err
	}
	fmt.Printf("crafted a %d-byte DOP payload from the binary's stack maps\n\n", len(payload))

	fmt.Println("1) unprotected server:")
	fmt.Println("   ->", verdict(fire(pair.X86, payload)))

	fmt.Println("\n2) offline-shuffled variants (5 seeds):")
	for seed := int64(1); seed <= 5; seed++ {
		shuffled, report, err := core.ShuffleBinary(pair.X86, seed)
		if err != nil {
			return err
		}
		fmt.Printf("   seed %d (%.1f bits of entropy) -> %s\n",
			seed, report.AvgBitsApp, verdict(fire(shuffled, payload)))
	}

	// 3) Live re-randomization: checkpoint the RUNNING server, apply the
	// shuffle policy to the image, restore, then attack.
	fmt.Println("\n3) live re-randomization of a running server:")
	provider := criu.MapProvider{"/bin/vuln.sx86": pair.X86, "/bin/vuln.sarm": pair.ARM}
	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/vuln.sx86"))
	if err != nil {
		return err
	}
	// Serve one benign request so the server has warm state.
	p.PushInput(make([]byte, 16))
	for i := 0; i < 100000; i++ {
		st, err := k.Step(p)
		if err != nil {
			return err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		return err
	}
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		return err
	}
	var report core.ShuffleReport
	pol := core.StackShufflePolicy{Seed: 99, Report: &report}
	if err := pol.Rewrite(dir, &core.Context{Binaries: provider}); err != nil {
		return err
	}
	k2 := kernel.New(kernel.Config{})
	p2, err := criu.Restore(k2, dir, provider)
	if err != nil {
		return err
	}
	fmt.Printf("   checkpointed, shuffled (%.1f bits), restored; firing stale payload...\n", report.AvgBitsApp)
	res := attack.Fire(k2, p2, payload)
	fmt.Println("   ->", verdict(res))
	fmt.Printf("   server console: %q\n", res.Output)
	return nil
}
