module github.com/dapper-sim/dapper

go 1.22
