// Package analysis is a stdlib-only static-analysis framework (go/ast +
// go/parser + go/types; no golang.org/x/tools) purpose-built for this
// repo's migration invariants. It provides a shared driver that loads
// packages once and runs every registered analyzer over them, a
// //lint:ignore suppression mechanism with mandatory reasons, and
// position-sorted diagnostics. cmd/dapperlint is the command-line front
// end; the analyzers themselves live in internal/analysis/checks.
//
// The framework exists because the repo's hardest bugs were not crashes
// but quiet invariant violations — a deadline left armed on a pooled
// connection, a dropped Close error masking a half-shipped image, host
// wall-clock time leaking into modeled downtime. Each analyzer encodes
// one such invariant; docs/analysis.md records the motivating incidents.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Severity classifies a diagnostic. Errors fail the build (dapperlint
// exits non-zero); warnings — stale suppressions — are advisory.
type Severity int

// Severity levels.
const (
	SeverityError Severity = iota
	SeverityWarning
)

func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Check    string
	Message  string
	Severity Severity
}

func (d Diagnostic) String() string {
	msg := d.Message
	if d.Severity == SeverityWarning {
		msg = "warning: " + msg
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, msg)
}

// Analyzer is one check. Analyzers are primarily syntactic: Pass.Info is
// available but may be incomplete (the loader type-checks tolerantly with
// stub imports), so no analyzer may hard-depend on it.
type Analyzer struct {
	// Name is the check identifier used in output and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// SkipTests excludes _test.go files from the analyzer's view.
	SkipTests bool
	// Packages restricts the analyzer to packages whose module-relative
	// import path equals an entry or lives below it ("internal/cluster"
	// matches internal/cluster and internal/cluster/sub). Empty = all.
	Packages []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer covers the package with the
// given module-relative path (e.g. "internal/cluster").
func (a *Analyzer) AppliesTo(relPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if relPath == p || (len(relPath) > len(p) && relPath[:len(p)] == p && relPath[len(p)] == '/') {
			return true
		}
	}
	return false
}

// Pass hands one analyzer one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, already filtered by SkipTests.
	Files []*ast.File
	// PkgPath is the module-relative import path ("internal/criu").
	PkgPath string
	// Info holds whatever type information the tolerant checker could
	// recover; nil for packages that failed to parse cleanly.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records an error-severity finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, SeverityError, format, args...)
}

// Warnf records a warning-severity finding at pos.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.report(pos, SeverityWarning, format, args...)
}

func (p *Pass) report(pos token.Pos, sev Severity, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Check:    p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Severity: sev,
	})
}
