// Package checks holds the repo's analyzers: one per migration invariant
// that a past incident showed the type system cannot protect. See
// docs/analysis.md for the invariant each encodes and the bug that
// motivated it.
package checks

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// All returns every analyzer, the set cmd/dapperlint runs.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Deadlinehygiene,
		Closecheck,
		Wallclock,
		Goreap,
		Eqpointlock,
		Journalfsync,
	}
}

// exprText renders an expression compactly for messages ("cs.conn").
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// methodCall matches a no-receiver-ambiguity method call x.Name(...) and
// returns the selector, or nil.
func methodCall(e ast.Expr, names ...string) *ast.SelectorExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return sel
		}
	}
	return nil
}

// eachFuncBody visits every function body in the file — declarations and
// literals — exactly once, giving analyzers a per-function scope.
func eachFuncBody(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Body)
			}
		case *ast.FuncLit:
			visit(fn.Body)
		}
		return true
	})
}

// scopeInspect walks one function body without descending into nested
// function literals, which eachFuncBody hands out as their own scopes.
func scopeInspect(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}
