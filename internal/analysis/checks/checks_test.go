package checks_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/analysis"
	"github.com/dapper-sim/dapper/internal/analysis/checks"
)

// lint parses src as a single file of a package at relPath and runs the
// given analyzers over it.
func lint(t *testing.T, relPath, src string, azs ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, relPath+"/src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.TestPackage(fset, relPath, []*ast.File{f}, azs)
}

// expect asserts the diagnostics' messages contain the given substrings,
// in order, and nothing else.
func expect(t *testing.T, diags []analysis.Diagnostic, wants ...string) {
	t.Helper()
	if len(diags) != len(wants) {
		t.Fatalf("got %d findings, want %d: %v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) && !strings.Contains(diags[i].Check, w) {
			t.Errorf("finding %d = %v, want substring %q", i, diags[i], w)
		}
	}
}

func TestDeadlinehygiene(t *testing.T) {
	// Seeded: result dropped AND never cleared.
	diags := lint(t, "internal/criu", `package p
func f(c conn) {
	c.SetWriteDeadline(now())
}`, checks.Deadlinehygiene)
	expect(t, diags, "dropped", "never clears")

	// Seeded: checked but never cleared.
	diags = lint(t, "internal/criu", `package p
func f(c conn) error {
	if err := c.SetReadDeadline(now()); err != nil {
		return err
	}
	return nil
}`, checks.Deadlinehygiene)
	expect(t, diags, "never clears")

	// Compliant: checked arm, zero-time clear on the same receiver.
	diags = lint(t, "internal/criu", `package p
import "time"
func f(c conn) error {
	if err := c.SetWriteDeadline(now()); err != nil {
		return err
	}
	defer func() {
		_ = c.SetWriteDeadline(time.Time{})
	}()
	return nil
}`, checks.Deadlinehygiene)
	expect(t, diags)
}

func TestClosecheck(t *testing.T) {
	// Seeded: all three dropped forms.
	diags := lint(t, "internal/criu", `package p
func f(c conn) {
	c.Close()
	defer c.Close()
	go c.Close()
}`, checks.Closecheck)
	expect(t, diags, "dropped", "deferred", "races shutdown")

	// Compliant: checked and explicitly discarded.
	diags = lint(t, "internal/criu", `package p
func f(c conn) error {
	_ = c.Close()
	return c.Close()
}
func g(c conn) error {
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}`, checks.Closecheck)
	expect(t, diags)
}

func TestClosecheckSkipsTests(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/criu/x_test.go", `package p
func f(c conn) { c.Close() }`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.TestPackage(fset, "internal/criu", []*ast.File{f}, []*analysis.Analyzer{checks.Closecheck})
	expect(t, diags)
}

func TestWallclock(t *testing.T) {
	src := `package p
import "time"
var t0 = time.Now()
func f() time.Duration { return time.Since(t0) }`

	// Seeded, inside a modeled-timing package (two findings).
	diags := lint(t, "internal/cluster", src, checks.Wallclock)
	expect(t, diags, "time.Now", "time.Since")

	// Identical code outside the scoped packages is fine.
	diags = lint(t, "internal/workloads", src, checks.Wallclock)
	expect(t, diags)

	// Aliased import is still caught; time.Sleep is not Now/Since.
	diags = lint(t, "internal/vm", `package p
import clock "time"
func f() { _ = clock.Now(); clock.Sleep(0) }`, checks.Wallclock)
	expect(t, diags, "time.Now")

	// The control-plane packages are in scope too (their reports embed
	// modeled breakdowns).
	diags = lint(t, "internal/fleet", src, checks.Wallclock)
	expect(t, diags, "time.Now", "time.Since")
	diags = lint(t, "internal/registry", src, checks.Wallclock)
	expect(t, diags, "time.Now", "time.Since")
}

func TestJournalfsync(t *testing.T) {
	// Seeded: temp-file write renamed into place with no Sync — the bytes
	// were never made durable.
	diags := lint(t, "internal/registry", `package p
import "os"
func writeThing(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "x-*")
	if err != nil { return err }
	if _, err := tmp.Write(data); err != nil { return err }
	if err := tmp.Close(); err != nil { return err }
	return os.Rename(tmp.Name(), path)
}`, checks.Journalfsync)
	expect(t, diags, "never Synced")

	// Compliant: same shape with a Sync before the close.
	diags = lint(t, "internal/registry", `package p
import "os"
func writeThing(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "x-*")
	if err != nil { return err }
	if _, err := tmp.Write(data); err != nil { return err }
	if err := tmp.Sync(); err != nil { return err }
	if err := tmp.Close(); err != nil { return err }
	return os.Rename(tmp.Name(), path)
}`, checks.Journalfsync)
	expect(t, diags)

	// Seeded: a journal-handle append (the x.f convention) without a Sync
	// in the same function.
	diags = lint(t, "internal/fleet", `package p
func (j *journal) Append(data []byte) error {
	_, err := j.f.Write(data)
	return err
}`, checks.Journalfsync)
	expect(t, diags, "journal append")

	// Compliant: append then sync.
	diags = lint(t, "internal/fleet", `package p
func (j *journal) Append(data []byte) error {
	if _, err := j.f.Write(data); err != nil { return err }
	return j.f.Sync()
}`, checks.Journalfsync)
	expect(t, diags)

	// Hash and buffer writes never match either pattern.
	diags = lint(t, "internal/registry", `package p
func digest(h hasher, parts [][]byte) {
	for _, p := range parts { h.Write(p) }
}`, checks.Journalfsync)
	expect(t, diags)

	// Out-of-scope packages are untouched even for the seeded shape.
	diags = lint(t, "internal/criu", `package p
func (j *journal) Append(data []byte) error {
	_, err := j.f.Write(data)
	return err
}`, checks.Journalfsync)
	expect(t, diags)
}

func TestGoreap(t *testing.T) {
	// Seeded: fire-and-forget named call, no Add, no Done.
	diags := lint(t, "internal/criu", `package p
func f(s *srv) {
	go s.loop()
}`, checks.Goreap)
	expect(t, diags, "no join/reap path")

	// Compliant: Add before launch, and a Done-carrying literal.
	diags = lint(t, "internal/cluster", `package p
func f(s *srv) {
	s.wg.Add(1)
	go s.loop()
	go func() {
		defer s.wg.Done()
		s.serve()
	}()
}`, checks.Goreap)
	expect(t, diags)

	// Compliant: a semaphore-bounded literal — the held slot is the reap
	// (the page client's prefetch pattern).
	diags = lint(t, "internal/criu", `package p
func f(c *client) {
	if !c.sem.TryAcquire() {
		return
	}
	go func() {
		defer c.sem.Release()
		c.fetch()
	}()
}`, checks.Goreap)
	expect(t, diags)

	// The worker-pool substrate is in scope: a pool that forgot its
	// WaitGroup arm is seeded...
	diags = lint(t, "internal/parallel", `package p
func f(pool *Pool) {
	go pool.body()
}`, checks.Goreap)
	expect(t, diags, "no join/reap path")

	// ...and the real Pool shape (Add before launch) is compliant.
	diags = lint(t, "internal/parallel", `package p
func f(pool *Pool, workers int) {
	pool.wg.Add(workers)
	for w := 0; w < workers; w = w + 1 {
		go pool.body()
	}
	pool.wg.Wait()
}`, checks.Goreap)
	expect(t, diags)

	// Out of scope: other packages may fire and forget.
	diags = lint(t, "internal/kernel", `package p
func f(s *srv) { go s.loop() }`, checks.Goreap)
	expect(t, diags)
}

func TestEqpointlock(t *testing.T) {
	// Seeded: Pause under a held lock (deferred unlock holds to exit).
	diags := lint(t, "internal/monitor", `package p
func f(m *mon) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Pause(1)
}`, checks.Eqpointlock)
	expect(t, diags, "while a lock is held")

	// Compliant: lock released before the equivalence-point call.
	diags = lint(t, "internal/monitor", `package p
func f(m *mon) error {
	m.mu.Lock()
	n := m.passes
	m.mu.Unlock()
	_ = n
	return m.Pause(1)
}`, checks.Eqpointlock)
	expect(t, diags)

	// Out of scope package.
	diags = lint(t, "internal/cluster", `package p
func f(m *mon) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Pause(1)
}`, checks.Eqpointlock)
	expect(t, diags)
}
