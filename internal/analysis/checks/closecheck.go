package checks

import (
	"go/ast"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// Closecheck flags Close() calls whose error is silently dropped: a bare
// `x.Close()` statement, `defer x.Close()`, or `go x.Close()`. The repo's
// Close implementations carry real failures (a page server that could not
// release its listener, an image transfer whose FIN raced a write), so
// the error must be checked, propagated, or explicitly discarded with
// `_ = x.Close()` plus a comment saying why the error carries no signal.
var Closecheck = &analysis.Analyzer{
	Name:      "closecheck",
	Doc:       "error-carrying Close() must be checked, propagated, or explicitly discarded",
	SkipTests: true,
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if sel := methodCall(st.X, "Close"); sel != nil {
						p.Reportf(st.Pos(), "result of %s.Close() is dropped; check it, or write `_ = %s.Close()` with a reason",
							exprText(p.Fset, sel.X), exprText(p.Fset, sel.X))
					}
				case *ast.DeferStmt:
					if sel := methodCall(st.Call, "Close"); sel != nil {
						p.Reportf(st.Pos(), "deferred %s.Close() discards its error; close explicitly and check, or capture the error in a deferred func",
							exprText(p.Fset, sel.X))
					}
				case *ast.GoStmt:
					if sel := methodCall(st.Call, "Close"); sel != nil {
						p.Reportf(st.Pos(), "go %s.Close() discards its error and races shutdown; close synchronously",
							exprText(p.Fset, sel.X))
					}
				}
				return true
			})
		}
	},
}
