package checks

import (
	"go/ast"

	"github.com/dapper-sim/dapper/internal/analysis"
)

var deadlineMethods = []string{"SetDeadline", "SetReadDeadline", "SetWriteDeadline"}

// Deadlinehygiene enforces the two rules the post-copy transport
// hardening established for connection deadlines:
//
//  1. Set{,Read,Write}Deadline returns an error and it must be looked at —
//     a deadline that silently failed to arm turns a bounded fetch into an
//     unbounded hang.
//  2. A deadline armed on a connection must be cleared (re-armed with the
//     zero time.Time{}) somewhere in the same function. Pooled connections
//     outlive the call that armed them; a leftover deadline fires during a
//     later, unrelated request and poisons the pool.
//
// Rule 2 is per-function and syntactic: a function that arms on purpose
// for the connection's whole life carries a //lint:ignore with the reason.
var Deadlinehygiene = &analysis.Analyzer{
	Name: "deadlinehygiene",
	Doc:  "deadline results must be checked and armed deadlines cleared before the conn is reused",
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			// Rule 1: a deadline call as a bare statement drops the error.
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				if sel := methodCall(st.X, deadlineMethods...); sel != nil {
					p.Reportf(st.Pos(), "result of %s.%s is dropped; a deadline that failed to arm hangs the transport — check it",
						exprText(p.Fset, sel.X), sel.Sel.Name)
				}
				return true
			})
			// Rule 2: per function, every receiver armed with a non-zero
			// deadline needs a zero-time clear on the same receiver.
			eachFuncBody(f, func(body *ast.BlockStmt) {
				type site struct {
					pos    ast.Node
					method string
				}
				armed := make(map[string]site)
				cleared := make(map[string]bool)
				// Arms count only in this scope (a nested literal is its
				// own scope); clears count anywhere in the body, because
				// `defer func() { _ = c.SetWriteDeadline(time.Time{}) }()`
				// is the idiomatic disarm.
				scopeInspect(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel := methodCall(call, deadlineMethods...)
					if sel == nil || len(call.Args) != 1 || isZeroTime(call.Args[0]) {
						return true
					}
					recv := exprText(p.Fset, sel.X)
					if _, dup := armed[recv]; !dup {
						armed[recv] = site{pos: call, method: sel.Sel.Name}
					}
					return true
				})
				ast.Inspect(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel := methodCall(call, deadlineMethods...)
					if sel != nil && len(call.Args) == 1 && isZeroTime(call.Args[0]) {
						cleared[exprText(p.Fset, sel.X)] = true
					}
					return true
				})
				for recv, s := range armed {
					if !cleared[recv] {
						p.Reportf(s.pos.Pos(), "%s.%s arms a deadline that this function never clears; re-arm with time.Time{} before the conn is reused",
							recv, s.method)
					}
				}
			})
		}
	},
}

// isZeroTime matches the composite literal time.Time{} (or any T{} — the
// only idiomatic way to clear a deadline).
func isZeroTime(e ast.Expr) bool {
	cl, ok := e.(*ast.CompositeLit)
	return ok && len(cl.Elts) == 0
}
