package checks

import (
	"go/ast"
	"go/token"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// eqPointCalls are the equivalence-point machinery entry points: calls
// that run (or wait for) guest code reaching an equivalence point.
var eqPointCalls = map[string]bool{
	"Pause":       true,
	"ResumeLocal": true,
	"Resume":      true,
	"rollback":    true,
	"Rollback":    true,
}

// Eqpointlock forbids calling the equivalence-point machinery while a
// mutex is held, in internal/vm and internal/monitor. Pause waits for
// every guest thread to park at an equivalence point; a guest thread may
// in turn be blocked on host-side state guarded by the same lock — the
// classic lost-wakeup deadlock shape. The check is positional within one
// function: after x.Lock()/x.RLock() and before the matching Unlock, the
// calls above are findings.
var Eqpointlock = &analysis.Analyzer{
	Name:      "eqpointlock",
	Doc:       "no equivalence-point call (Pause/Resume/rollback) while a lock is held",
	SkipTests: true,
	Packages:  []string{"internal/vm", "internal/monitor"},
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			eachFuncBody(f, func(body *ast.BlockStmt) {
				type lockEvent struct {
					pos  token.Pos
					lock bool // true = Lock/RLock, false = Unlock/RUnlock
				}
				var events []lockEvent
				scopeInspect(body, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.DeferStmt:
						// defer x.Unlock() releases at function exit: record
						// no event, so the lock reads as held to the end.
						return false
					case *ast.CallExpr:
						if methodCall(st, "Lock", "RLock") != nil {
							events = append(events, lockEvent{pos: st.Pos(), lock: true})
						} else if methodCall(st, "Unlock", "RUnlock") != nil {
							events = append(events, lockEvent{pos: st.Pos(), lock: false})
						}
					}
					return true
				})
				if len(events) == 0 {
					return
				}
				held := func(pos token.Pos) bool {
					h := false
					for _, e := range events {
						if e.pos >= pos {
							break
						}
						h = e.lock
					}
					return h
				}
				scopeInspect(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					name := ""
					switch fun := call.Fun.(type) {
					case *ast.SelectorExpr:
						name = fun.Sel.Name
					case *ast.Ident:
						name = fun.Name
					}
					if !eqPointCalls[name] {
						return true
					}
					if held(call.Pos()) {
						p.Reportf(call.Pos(), "%s is called while a lock is held; Pause/Resume wait on guest threads that may need this lock — release it first",
							name)
					}
					return true
				})
			})
		}
	},
}
