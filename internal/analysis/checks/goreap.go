package checks

import (
	"go/ast"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// Goreap requires every goroutine launched in the transport packages
// (internal/criu, internal/cluster), in the worker-pool substrate
// (internal/parallel), in the fleet control plane (internal/fleet —
// scheduler/heartbeat loops, per-job executors, and the control socket's
// accept/serve goroutines), and in the persistent checkpoint store
// (internal/registry — its journal and GC must never leave background
// writers unjoined past Close) to have a visible join/reap path. A leaked
// serving goroutine outlives its migration, holds its connection, and
// makes "Close waits for the serving goroutines" a lie — the exact leak
// class the post-copy hardening fixed; in the daemon it also makes
// Manager.Stop return while executors still mutate nodes.
//
// A `go` statement passes if either
//   - the enclosing function calls .Add(...) (a WaitGroup arm) somewhere
//     before the launch, or
//   - the launched function literal itself calls .Done() (WaitGroup
//     join) or .Release() (semaphore-bounded fire-and-forget, the page
//     client's prefetch pattern: the slot is held for the goroutine's
//     whole lifetime, so draining the semaphore IS the reap).
//
// Fire-and-forget goroutines whose lifetime is genuinely bounded another
// way (reader loops reaped by closing their connection) carry a
// //lint:ignore naming that mechanism.
var Goreap = &analysis.Analyzer{
	Name:      "goreap",
	Doc:       "goroutines in transport packages need a join/reap path",
	SkipTests: true,
	Packages:  []string{"internal/criu", "internal/cluster", "internal/parallel", "internal/fleet", "internal/registry", "internal/image"},
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			eachFuncBody(f, func(body *ast.BlockStmt) {
				// Positions of .Add(...) calls in this scope.
				var addPos []ast.Node
				scopeInspect(body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && methodCall(call, "Add") != nil {
						addPos = append(addPos, n)
					}
					return true
				})
				scopeInspect(body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					armed := false
					for _, a := range addPos {
						if a.Pos() < g.Pos() {
							armed = true
							break
						}
					}
					if !armed {
						if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && callsReap(lit) {
							armed = true
						}
					}
					if !armed {
						p.Reportf(g.Pos(), "goroutine has no join/reap path: no WaitGroup.Add before launch and no .Done() or .Release() in its body; a leaked goroutine outlives the migration")
					}
					return true
				})
			})
		}
	},
}

// callsReap reports whether the function literal's body calls .Done()
// (WaitGroup join) or .Release() (semaphore slot held for the
// goroutine's lifetime).
func callsReap(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if methodCall(call, "Done") != nil || methodCall(call, "Release") != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
