package checks

import (
	"go/ast"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// Journalfsync guards the durability contract of the control plane's
// persistent state (internal/fleet's job journal, internal/registry's
// event journal and chunk store): a write that a caller will observe as
// success — a journal append acknowledged, a chunk file renamed into
// place — must reach Sync first. Both packages replay these files after a
// crash to reconstruct in-flight jobs and manifest contents; a write that
// made it to the page cache but not the platter is exactly the torn state
// the replay logic cannot distinguish from corruption.
//
// The check is syntactic, keyed to the two conventions these packages
// use:
//
//   - a file handle opened in the same function (os.Create, os.CreateTemp,
//     os.OpenFile) and then written must be Synced in that function — the
//     temp-then-rename idiom makes the *name* durable, never the bytes;
//   - a write through a field named f (the journal-handle convention in
//     both packages) must be Synced in the same function, keeping every
//     append durable before its caller sees nil.
//
// Hashes, buffers, and network writers don't match either pattern and are
// never flagged. A deliberate unsynced write carries //lint:ignore
// journalfsync with the reason.
var Journalfsync = &analysis.Analyzer{
	Name:      "journalfsync",
	Doc:       "journal appends and freshly-created files must fsync before success is observable",
	SkipTests: true,
	Packages:  []string{"internal/fleet", "internal/registry"},
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			osName := importName(f, "os")
			eachFuncBody(f, func(body *ast.BlockStmt) {
				checkJournalfsync(p, body, osName)
			})
		}
	},
}

func checkJournalfsync(p *analysis.Pass, body *ast.BlockStmt, osName string) {
	// opened maps identifiers assigned from os.Create/os.CreateTemp/
	// os.OpenFile in this body to their declaration site.
	opened := map[string]bool{}
	synced := map[string]bool{}
	type write struct {
		expr string
		pos  ast.Node
	}
	var writes []write

	scopeInspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || osName == "" || id.Name != osName {
					continue
				}
				switch sel.Sel.Name {
				case "Create", "CreateTemp", "OpenFile":
					// The handle is the first value on the left (f, err := ...).
					if i < len(st.Lhs) {
						if lhs, ok := st.Lhs[i].(*ast.Ident); ok {
							opened[lhs.Name] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := exprText(p.Fset, sel.X)
			switch sel.Sel.Name {
			case "Write", "WriteString":
				writes = append(writes, write{expr: recv, pos: st})
			case "Sync":
				synced[recv] = true
			}
		}
		return true
	})

	for _, w := range writes {
		if synced[w.expr] {
			continue
		}
		switch {
		case opened[w.expr]:
			p.Reportf(w.pos.Pos(), "%s is written but never Synced in this function; a rename or close makes the name durable, not the bytes — fsync before success is observable",
				w.expr)
		case isJournalHandle(w.expr):
			p.Reportf(w.pos.Pos(), "journal append writes %s without a Sync in the same function; a crash after the caller sees success would lose the event on replay",
				w.expr)
		}
	}
}

// isJournalHandle matches the x.f convention both journals use for their
// *os.File.
func isJournalHandle(expr string) bool {
	return len(expr) > 2 && expr[len(expr)-2:] == ".f"
}
