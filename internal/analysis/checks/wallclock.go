package checks

import (
	"go/ast"
	"strconv"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// Wallclock forbids time.Now / time.Since in the packages whose timing is
// MODELED: internal/cluster's downtime accounting and the VM. Migration
// downtime is composed of modeled phases only — the determinism
// regression test replays a migration twice and requires identical
// breakdowns — so host wall-clock reads in these packages are either a
// bug or a deliberately-separated host-side measurement (RecodeHost),
// which carries a //lint:ignore with that reason.
//
// internal/fleet and internal/registry are in scope too: their *results*
// (reports, journals) embed migration breakdowns that must stay modeled,
// while their *control plane* (backoff timers, heartbeat ages, uptime)
// legitimately runs on host time — each such site carries a //lint:ignore
// stating why the read cannot leak into a modeled figure.
var Wallclock = &analysis.Analyzer{
	Name:      "wallclock",
	Doc:       "no time.Now/time.Since in modeled-timing packages",
	SkipTests: true,
	Packages:  []string{"internal/cluster", "internal/vm", "internal/fleet", "internal/registry"},
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			timeName := importName(f, "time")
			if timeName == "" {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != timeName {
					return true
				}
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					p.Reportf(sel.Pos(), "time.%s is host wall-clock; modeled timing must stay deterministic — use the modeled cost functions, or annotate why host time cannot leak into a modeled result",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}

// importName returns the name the file refers to the given import path by
// ("" if not imported, or imported blank/dot).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name == nil {
			// Default name: last path element.
			name := p
			for i := len(p) - 1; i >= 0; i-- {
				if p[i] == '/' {
					name = p[i+1:]
					break
				}
			}
			return name
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}
