package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// Run loads the packages selected by patterns under root, applies every
// analyzer, resolves //lint:ignore directives, and returns the surviving
// diagnostics sorted by position. HasErrors on the result decides the
// exit code.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, root, patterns)
	if err != nil {
		return nil, err
	}
	return runOn(fset, pkgs, analyzers), nil
}

// runOn is the load-free core, shared with tests that build packages from
// source strings.
func runOn(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	var dirs []*directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			dirs = append(dirs, collectDirectives(fset, f, &diags)...)
		}
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.RelPath) {
				continue
			}
			files := pkg.Files
			if a.SkipTests {
				files = nonTestFiles(fset, files)
			}
			if len(files) == 0 {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    files,
				PkgPath:  pkg.RelPath,
				Info:     pkg.Info,
				diags:    &diags,
			})
		}
	}
	out := applyDirectives(diags, dirs, known)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Pos.IsValid() || !out[j].Pos.IsValid() {
			return out[j].Pos.IsValid()
		}
		if out[i].Pos.Filename != out[j].Pos.Filename || out[i].Pos.Line != out[j].Pos.Line || out[i].Pos.Column != out[j].Pos.Column {
			return posLess(out[i].Pos, out[j].Pos)
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// HasErrors reports whether any diagnostic is error-severity (warnings —
// stale suppressions — do not fail the build).
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// TestPackage wraps already-parsed files as a Package and runs analyzers
// over it — the harness the analyzer unit tests use to feed seeded
// violations from source strings. relPath chooses which package-scoped
// analyzers apply.
func TestPackage(fset *token.FileSet, relPath string, files []*ast.File, analyzers []*Analyzer) []Diagnostic {
	pkg := &Package{Dir: relPath, RelPath: relPath, Files: files}
	return runOn(fset, []*Package{pkg}, analyzers)
}
