package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppression directives:
//
//	//lint:ignore <check> <reason>
//
// A directive silences exactly ONE finding of <check>: the first one (in
// position order) on the directive's own line or the line below it, so it
// works both trailing a statement and on its own line above one. The
// reason is mandatory — a suppression without a rationale is itself a
// finding — and a directive naming an unknown check is a finding too (it
// would otherwise rot silently when a check is renamed). A directive that
// matches nothing is reported as a stale-suppression warning.

type directive struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

const ignorePrefix = "lint:ignore"

// collectDirectives scans a file's comments for lint:ignore directives.
// Malformed ones (no check name, no reason) are reported immediately as
// error diagnostics under the synthetic check name "lint".
func collectDirectives(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) []*directive {
	var out []*directive
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(strings.TrimLeft(text, " \t"), ignorePrefix) {
				continue
			}
			rest := strings.TrimLeft(text, " \t")[len(ignorePrefix):]
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) == 0 {
				*diags = append(*diags, Diagnostic{
					Pos: pos, Check: "lint", Severity: SeverityError,
					Message: "lint:ignore needs a check name and a reason",
				})
				continue
			}
			check := fields[0]
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), check))
			if reason == "" {
				*diags = append(*diags, Diagnostic{
					Pos: pos, Check: "lint", Severity: SeverityError,
					Message: "lint:ignore " + check + " needs a reason: //lint:ignore " + check + " <why this is safe>",
				})
				continue
			}
			out = append(out, &directive{pos: pos, check: check, reason: reason})
		}
	}
	return out
}

// applyDirectives filters diags through the directives: each valid
// directive removes the first matching finding at its line or the next;
// unknown check names and stale directives become findings themselves.
// known maps check names recognized by the current analyzer set.
func applyDirectives(diags []Diagnostic, dirs []*directive, known map[string]bool) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool { return posLess(diags[i].Pos, diags[j].Pos) })
	sort.Slice(dirs, func(i, j int) bool { return posLess(dirs[i].pos, dirs[j].pos) })

	suppressed := make(map[int]bool)
	var extra []Diagnostic
	for _, d := range dirs {
		if !known[d.check] {
			extra = append(extra, Diagnostic{
				Pos: d.pos, Check: "lint", Severity: SeverityError,
				Message: "lint:ignore names unknown check " + quote(d.check),
			})
			continue
		}
		for i, diag := range diags {
			if suppressed[i] || diag.Check != d.check || diag.Pos.Filename != d.pos.Filename {
				continue
			}
			if diag.Pos.Line == d.pos.Line || diag.Pos.Line == d.pos.Line+1 {
				suppressed[i] = true
				d.used = true
				break // exactly one finding per directive
			}
		}
		if !d.used {
			extra = append(extra, Diagnostic{
				Pos: d.pos, Check: "lint", Severity: SeverityWarning,
				Message: "stale lint:ignore " + d.check + ": no matching finding here; delete the directive",
			})
		}
	}

	out := make([]Diagnostic, 0, len(diags)+len(extra))
	for i, diag := range diags {
		if !suppressed[i] {
			out = append(out, diag)
		}
	}
	return append(out, extra...)
}

func quote(s string) string { return `"` + s + `"` }

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
