package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/analysis"
)

// toy flags every call to a function literally named banned().
var toy = &analysis.Analyzer{
	Name: "toy",
	Doc:  "flags banned() calls",
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "banned" {
					p.Reportf(call.Pos(), "banned() is banned")
				}
				return true
			})
		}
	},
}

func runToy(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p/src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.TestPackage(fset, "p", []*ast.File{f}, []*analysis.Analyzer{toy})
}

// TestIgnoreSilencesExactlyOne: one directive suppresses only the first
// matching finding in its two-line window, never a second one.
func TestIgnoreSilencesExactlyOne(t *testing.T) {
	diags := runToy(t, `package p
func f() {
	//lint:ignore toy the first call is part of the protocol
	banned()
	banned()
}`)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 (only the first suppressed): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 5 {
		t.Errorf("surviving finding at line %d, want 5", diags[0].Pos.Line)
	}
}

// TestIgnoreTrailing: a directive trailing the statement's own line works.
func TestIgnoreTrailing(t *testing.T) {
	diags := runToy(t, `package p
func f() {
	banned() //lint:ignore toy sanctioned here
}`)
	if len(diags) != 0 {
		t.Fatalf("trailing directive did not suppress: %v", diags)
	}
}

// TestIgnoreUnknownCheck: naming a check no analyzer provides is itself
// an error finding — renames must not rot suppressions silently.
func TestIgnoreUnknownCheck(t *testing.T) {
	diags := runToy(t, `package p
func f() {
	//lint:ignore nosuchcheck reasons abound
	banned()
}`)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (unsuppressed + unknown check): %v", len(diags), diags)
	}
	var sawUnknown bool
	for _, d := range diags {
		if d.Check == "lint" && strings.Contains(d.Message, `unknown check "nosuchcheck"`) {
			sawUnknown = true
			if d.Severity != analysis.SeverityError {
				t.Error("unknown-check finding should be error severity")
			}
		}
	}
	if !sawUnknown {
		t.Errorf("no unknown-check finding in %v", diags)
	}
	if !analysis.HasErrors(diags) {
		t.Error("unknown check must fail the build")
	}
}

// TestIgnoreNeedsReason: a bare directive is an error finding.
func TestIgnoreNeedsReason(t *testing.T) {
	diags := runToy(t, `package p
func f() {
	//lint:ignore toy
	banned()
}`)
	var sawReason bool
	for _, d := range diags {
		if d.Check == "lint" && strings.Contains(d.Message, "needs a reason") {
			sawReason = true
		}
	}
	if !sawReason {
		t.Fatalf("no needs-a-reason finding in %v", diags)
	}
	if !analysis.HasErrors(diags) {
		t.Error("reasonless directive must fail the build")
	}
}

// TestIgnoreStaleWarns: a directive matching nothing is a warning — it
// flags dead suppressions without failing the build.
func TestIgnoreStaleWarns(t *testing.T) {
	diags := runToy(t, `package p
//lint:ignore toy there used to be a banned() here
func f() {}`)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 stale warning: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Severity != analysis.SeverityWarning || !strings.Contains(d.Message, "stale") {
		t.Errorf("want stale warning, got %v", d)
	}
	if analysis.HasErrors(diags) {
		t.Error("a stale directive alone must not fail the build")
	}
}

// TestDiagnosticsSorted: output is position-ordered regardless of the
// order analyzers reported in.
func TestDiagnosticsSorted(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	fb := parse("p/b.go", "package p\nfunc b() { banned() }\n")
	fa := parse("p/a.go", "package p\nfunc a() { banned(); banned() }\n")
	diags := analysis.TestPackage(fset, "p", []*ast.File{fb, fa}, []*analysis.Analyzer{toy})
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3", len(diags))
	}
	if diags[0].Pos.Filename != "p/a.go" || diags[2].Pos.Filename != "p/b.go" {
		t.Errorf("not sorted by position: %v", diags)
	}
	if diags[0].Pos.Column >= diags[1].Pos.Column {
		t.Errorf("same-line findings not sorted by column: %v", diags)
	}
}
