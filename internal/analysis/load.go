package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded directory of Go source.
type Package struct {
	// Dir is the directory relative to the load root.
	Dir string
	// RelPath is the module-relative import path (equals Dir with forward
	// slashes).
	RelPath string
	// Files is every parsed .go file, tests included, in name order.
	Files []*ast.File
	// Info is the (possibly incomplete) result of tolerant type-checking
	// of the non-test files; nil when the package did not type-check at
	// all.
	Info *types.Info
}

// Load parses and tolerantly type-checks the packages selected by
// patterns under root. Patterns follow the go tool's shape: "./..." for
// everything, "./dir/..." for a subtree, "./dir" for one package.
// testdata, vendor, and dot-directories are never descended into.
//
// The loader is deliberately self-contained: no go/packages, no export
// data, no GOPATH. Imports outside the module resolve to empty stub
// packages and type errors are collected rather than fatal, so analyzers
// get full syntax plus best-effort type information in any environment
// that has only the standard library.
func Load(fset *token.FileSet, root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	typeCheck(fset, modPath, pkgs)
	return pkgs, nil
}

// modulePath reads the module line of root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w (the loader needs the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// expandPatterns resolves go-tool-style patterns to a sorted list of
// package directories (relative to root) that contain .go files.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	set := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		if !recursive {
			ok, err := hasGoFiles(base)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			set[pat] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if ok {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				set[filepath.ToSlash(rel)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// parseDir parses every .go file in root/dir. Returns nil if the
// directory holds no Go files after all (races with the walk).
func parseDir(fset *token.FileSet, root, dir string) (*Package, error) {
	abs := filepath.Join(root, filepath.FromSlash(dir))
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, RelPath: filepath.ToSlash(dir)}
	if pkg.RelPath == "." {
		pkg.RelPath = ""
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(abs, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// stubImporter satisfies imports the loader cannot resolve locally with
// empty placeholder packages, letting the tolerant checker proceed.
type stubImporter struct {
	local map[string]*types.Package // module import path -> checked package
	stubs map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.local[path]; ok {
		return p, nil
	}
	if p, ok := si.stubs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	si.stubs[path] = p
	return p, nil
}

// typeCheck runs a tolerant go/types pass over each package's non-test
// files in local-dependency order, filling Package.Info. All type errors
// are swallowed: with stub imports they are expected, and the analyzers
// treat Info as best-effort.
func typeCheck(fset *token.FileSet, modPath string, pkgs []*Package) {
	byImport := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byImport[importPathOf(modPath, p)] = p
	}
	si := &stubImporter{local: make(map[string]*types.Package), stubs: make(map[string]*types.Package)}
	for _, p := range topoOrder(modPath, pkgs, byImport) {
		files := nonTestFiles(fset, p.Files)
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer:                 si,
			Error:                    func(error) {}, // tolerant: stub imports guarantee errors
			DisableUnusedImportCheck: true,
		}
		tp, _ := conf.Check(importPathOf(modPath, p), fset, files, info)
		if tp != nil {
			si.local[importPathOf(modPath, p)] = tp
		}
		p.Info = info
	}
}

func importPathOf(modPath string, p *Package) string {
	if p.RelPath == "" {
		return modPath
	}
	return modPath + "/" + p.RelPath
}

// topoOrder sorts packages so local dependencies are checked before their
// importers; cycles (which the go tool would reject anyway) fall back to
// input order.
func topoOrder(modPath string, pkgs []*Package, byImport map[string]*Package) []*Package {
	state := make(map[*Package]int) // 0 new, 1 visiting, 2 done
	var out []*Package
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byImport[path]; ok && state[dep] == 0 {
					visit(dep)
				}
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// nonTestFiles filters out _test.go files by their position filename.
func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	var out []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}
