// Package asm provides a small two-pass assembler over the architecture
// coders: instructions are emitted with symbolic labels and external symbol
// references, sized (instruction sizes on both ISAs are value-independent),
// and then encoded at a concrete base address.
//
// The compiler backends use it to emit function bodies, and the linker uses
// the size pass to lay out the unified (cross-ISA aligned) address space
// before resolving call targets.
package asm

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/isa"
)

// Label is a position in a fragment, usable as a branch target before its
// address is known.
type Label int

// Resolver maps an external symbol name to its absolute address.
type Resolver func(name string) (uint64, error)

type itemKind uint8

const (
	itemInst   itemKind = iota + 1 // plain instruction
	itemBranch                     // Imm patched from a label
	itemSym                        // Imm patched from an external symbol (+addend)
)

type item struct {
	kind   itemKind
	inst   isa.Inst
	label  Label
	sym    string
	addend int64
}

// Fragment is a sequence of instructions under construction.
type Fragment struct {
	coder  isa.Coder
	items  []item
	labels map[Label]int // label -> item index it precedes
	nextLb Label
}

// New returns an empty fragment for the coder's architecture.
func New(coder isa.Coder) *Fragment {
	return &Fragment{coder: coder, labels: make(map[Label]int)}
}

// Coder returns the fragment's coder.
func (f *Fragment) Coder() isa.Coder { return f.coder }

// NewLabel allocates an unbound label.
func (f *Fragment) NewLabel() Label {
	f.nextLb++
	return f.nextLb
}

// Define binds l to the current position.
func (f *Fragment) Define(l Label) {
	f.labels[l] = len(f.items)
}

// Here allocates and binds a label at the current position.
func (f *Fragment) Here() Label {
	l := f.NewLabel()
	f.Define(l)
	return l
}

// Emit appends a plain instruction.
func (f *Fragment) Emit(inst isa.Inst) {
	f.items = append(f.items, item{kind: itemInst, inst: inst})
}

// EmitBranch appends an instruction whose Imm will be the address of l.
func (f *Fragment) EmitBranch(inst isa.Inst, l Label) {
	f.items = append(f.items, item{kind: itemBranch, inst: inst, label: l})
}

// EmitSym appends an instruction whose Imm will be the address of the
// external symbol plus addend (e.g. CALL targets and global-address
// materialization).
func (f *Fragment) EmitSym(inst isa.Inst, sym string, addend int64) {
	f.items = append(f.items, item{kind: itemSym, inst: inst, sym: sym, addend: addend})
}

var commutative = map[isa.Op]bool{
	isa.OpAdd: true, isa.OpMul: true, isa.OpAnd: true, isa.OpOr: true,
	isa.OpXor: true, isa.OpFAdd: true, isa.OpFMul: true,
	isa.OpCmpEq: true, isa.OpCmpNe: true, isa.OpFCmpEq: true,
}

// EmitALU3 emits rd = rn OP rm, lowering to the two-operand form on SX86.
// tmp must be a register distinct from rn and rm that may be clobbered; it
// is only used when rd aliases rm for a non-commutative operation.
func (f *Fragment) EmitALU3(op isa.Op, rd, rn, rm, tmp isa.Reg) {
	if f.coder.Arch() != isa.SX86 {
		f.Emit(isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: rm})
		return
	}
	switch {
	case rd == rn:
		f.Emit(isa.Inst{Op: op, Rd: rd, Rn: rd, Rm: rm})
	case rd == rm && commutative[op]:
		f.Emit(isa.Inst{Op: op, Rd: rd, Rn: rd, Rm: rn})
	case rd == rm:
		f.Emit(isa.Inst{Op: isa.OpMov, Rd: tmp, Rn: rn})
		f.Emit(isa.Inst{Op: op, Rd: tmp, Rn: tmp, Rm: rm})
		f.Emit(isa.Inst{Op: isa.OpMov, Rd: rd, Rn: tmp})
	default:
		f.Emit(isa.Inst{Op: isa.OpMov, Rd: rd, Rn: rn})
		f.Emit(isa.Inst{Op: op, Rd: rd, Rn: rd, Rm: rm})
	}
}

// Size returns the encoded size in bytes. Sizes are value-independent on
// both ISAs, so this is exact before symbol resolution.
func (f *Fragment) Size() int {
	var n int
	for _, it := range f.items {
		n += f.coder.Size(it.inst)
	}
	return n
}

// Pad appends NOPs until the fragment reaches size bytes. It returns an
// error if the fragment is already larger or the difference is not a
// multiple of the NOP size.
func (f *Fragment) Pad(size int) error {
	cur := f.Size()
	nop := f.coder.Size(isa.Inst{Op: isa.OpNop})
	if cur > size || (size-cur)%nop != 0 {
		return fmt.Errorf("asm: cannot pad fragment of %d bytes to %d (nop=%d)", cur, size, nop)
	}
	for cur < size {
		f.Emit(isa.Inst{Op: isa.OpNop})
		cur += nop
	}
	return nil
}

// Assemble encodes the fragment at base. resolve may be nil when the
// fragment has no external references. It returns the machine code and the
// absolute address of every bound label.
func (f *Fragment) Assemble(base uint64, resolve Resolver) ([]byte, map[Label]uint64, error) {
	// Pass 1: compute instruction offsets.
	offsets := make([]uint64, len(f.items)+1)
	var off uint64
	for i, it := range f.items {
		offsets[i] = off
		sz := f.coder.Size(it.inst)
		if sz == 0 {
			return nil, nil, fmt.Errorf("asm: item %d: cannot size %v", i, it.inst)
		}
		off += uint64(sz)
	}
	offsets[len(f.items)] = off

	labelAddrs := make(map[Label]uint64, len(f.labels))
	for l, idx := range f.labels {
		labelAddrs[l] = base + offsets[idx]
	}

	// Pass 2: patch and encode.
	out := make([]byte, 0, off)
	for i, it := range f.items {
		inst := it.inst
		switch it.kind {
		case itemBranch:
			addr, ok := labelAddrs[it.label]
			if !ok {
				return nil, nil, fmt.Errorf("asm: item %d: undefined label %d", i, it.label)
			}
			inst.Imm = int64(addr)
		case itemSym:
			if resolve == nil {
				return nil, nil, fmt.Errorf("asm: item %d: symbol %q but no resolver", i, it.sym)
			}
			addr, err := resolve(it.sym)
			if err != nil {
				return nil, nil, fmt.Errorf("asm: item %d: %w", i, err)
			}
			inst.Imm = int64(addr) + it.addend
		}
		pc := base + offsets[i]
		var err error
		out, err = f.coder.Encode(out, inst, pc)
		if err != nil {
			return nil, nil, fmt.Errorf("asm: item %d at 0x%x: %w", i, pc, err)
		}
	}
	return out, labelAddrs, nil
}
