package asm_test

import (
	"errors"
	"testing"

	"github.com/dapper-sim/dapper/internal/asm"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/isa/sarm"
	"github.com/dapper-sim/dapper/internal/isa/sx86"
)

func coders() map[isa.Arch]isa.Coder {
	return map[isa.Arch]isa.Coder{isa.SX86: sx86.Coder{}, isa.SARM: sarm.Coder{}}
}

func TestLabelPatching(t *testing.T) {
	for arch, coder := range coders() {
		t.Run(arch.String(), func(t *testing.T) {
			f := asm.New(coder)
			back := f.Here() // label at offset 0
			f.Emit(isa.Inst{Op: isa.OpNop})
			fwd := f.NewLabel()
			f.EmitBranch(isa.Inst{Op: isa.OpJmp}, fwd)
			f.Emit(isa.Inst{Op: isa.OpNop})
			f.Define(fwd)
			f.EmitBranch(isa.Inst{Op: isa.OpJmp}, back)

			code, labels, err := f.Assemble(0x400000, nil)
			if err != nil {
				t.Fatal(err)
			}
			if labels[back] != 0x400000 {
				t.Errorf("back label = 0x%x", labels[back])
			}
			// Decode the final JMP and check it targets offset 0.
			c := coder
			off := labels[fwd] - 0x400000
			inst, err := c.Decode(code[off:], labels[fwd])
			if err != nil {
				t.Fatal(err)
			}
			if uint64(inst.Imm) != 0x400000 {
				t.Errorf("backward jump target = 0x%x", inst.Imm)
			}
		})
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	f := asm.New(sx86.Coder{})
	f.EmitBranch(isa.Inst{Op: isa.OpJmp}, f.NewLabel())
	if _, _, err := f.Assemble(0x400000, nil); err == nil {
		t.Error("undefined label assembled")
	}
}

func TestSymbolResolution(t *testing.T) {
	f := asm.New(sarm.Coder{})
	f.EmitSym(isa.Inst{Op: isa.OpCall}, "callee", 0)
	f.EmitSym(isa.Inst{Op: isa.OpMovImm, Rd: 1}, "global", 24)
	code, _, err := f.Assemble(0x400000, func(name string) (uint64, error) {
		switch name {
		case "callee":
			return 0x400100, nil
		case "global":
			return 0x10000000, nil
		}
		return 0, errors.New("unknown symbol")
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sarm.Coder{}.Decode(code, 0x400000)
	if err != nil || inst.Op != isa.OpCall || inst.Imm != 0x400100 {
		t.Errorf("call = %+v (err %v)", inst, err)
	}
	// Missing resolver/symbol paths.
	g := asm.New(sarm.Coder{})
	g.EmitSym(isa.Inst{Op: isa.OpCall}, "nope", 0)
	if _, _, err := g.Assemble(0x400000, nil); err == nil {
		t.Error("missing resolver accepted")
	}
	if _, _, err := g.Assemble(0x400000, func(string) (uint64, error) {
		return 0, errors.New("unknown symbol")
	}); err == nil {
		t.Error("unresolved symbol accepted")
	}
}

func TestPad(t *testing.T) {
	for arch, coder := range coders() {
		t.Run(arch.String(), func(t *testing.T) {
			f := asm.New(coder)
			f.Emit(isa.Inst{Op: isa.OpRet})
			if err := f.Pad(32); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 32 {
				t.Errorf("padded size = %d", f.Size())
			}
			if err := f.Pad(16); err == nil {
				t.Error("shrinking pad accepted")
			}
		})
	}
	// SARM NOPs are 4 bytes: padding to a non-multiple must fail.
	f := asm.New(sarm.Coder{})
	f.Emit(isa.Inst{Op: isa.OpRet})
	if err := f.Pad(10); err == nil {
		t.Error("unaligned pad accepted on sarm")
	}
}

// TestEmitALU3Lowering executes every aliasing case of the two-operand
// lowering on the SX86 interpreter-free path by decoding the emitted
// sequence.
func TestEmitALU3Lowering(t *testing.T) {
	cases := []struct {
		name       string
		rd, rn, rm isa.Reg
		op         isa.Op
		maxInsts   int
	}{
		{"rd==rn", 1, 1, 2, isa.OpSub, 1},
		{"rd==rm commutative", 2, 1, 2, isa.OpAdd, 1},
		{"rd==rm noncommutative", 2, 1, 2, isa.OpSub, 3},
		{"disjoint", 3, 1, 2, isa.OpSub, 2},
		{"tmp==rn noncommutative", 2, 5, 2, isa.OpSub, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := asm.New(sx86.Coder{})
			f.EmitALU3(tc.op, tc.rd, tc.rn, tc.rm, 5)
			code, _, err := f.Assemble(0x400000, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for off := 0; off < len(code); n++ {
				inst, err := sx86.Coder{}.Decode(code[off:], 0)
				if err != nil {
					t.Fatal(err)
				}
				off += inst.Len
			}
			if n > tc.maxInsts {
				t.Errorf("lowered to %d insts, want <= %d", n, tc.maxInsts)
			}
		})
	}
	// On SARM the three-operand form is always one instruction.
	f := asm.New(sarm.Coder{})
	f.EmitALU3(isa.OpSub, 2, 1, 2, 5)
	if f.Size() != 4 {
		t.Errorf("sarm ALU3 size = %d, want 4", f.Size())
	}
}
