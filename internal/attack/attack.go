// Package attack implements the synthetic data-oriented attacks used to
// evaluate DAPPER's stack shuffling (paper §IV-B): Min-DOP-style single
// -target corruption (privilege escalation through a stack buffer
// overflow) and BOPC-style multi-target payloads (gadget chains that must
// corrupt several allocations at known offsets). An attacker crafts a
// payload from the *unprotected* binary's frame layout; DAPPER's shuffling
// (or a cross-ISA rewrite) relocates the targets and the payload misses.
package attack

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// VulnServerSrc is the vulnerable DapC service: handle() copies a
// request into an 8-word stack buffer without a bounds check (the overflow
// reaches earlier-declared slots, including the admin flag and the BOPC
// key). It stands in for the paper's min-dop vulnerable server / CVE-laden
// Redis and Nginx builds.
const VulnServerSrc = `
var secret int;

func handle() int {
	var admin int;
	var key int;
	var i int;
	var reqlen int;
	var buf[8] int;
	var admin2 int;
	var req[64] int;
	var n int;
	var hit int;
	admin = 0;
	admin2 = 0;
	key = 0;
	hit = 0;
	n = recv(&req[0], 520);
	if n < 0 { return 0 - 1; }
	reqlen = req[0];
	// Vulnerable copy: reqlen is attacker-controlled and unchecked.
	for i = 0; i < reqlen; i = i + 1 {
		buf[i] = req[i + 1];
	}
	// Escalation requires the exact magic value a real DOP payload would
	// plant (a pointer or token), not merely a nonzero byte.
	if admin == 41 {
		hit = 1;
		if key == 3735928559 {
			print("PWNED ");
			printi(secret);
			print("\n");
		} else {
			print("ADMIN\n");
		}
	}
	if admin2 == 41 {
		hit = 1;
		print("ADMIN\n");
	}
	if hit == 0 {
		print("ok\n");
	}
	return buf[0];
}

func main() {
	secret = 424242;
	while 1 {
		if handle() < 0 { break; }
	}
	exit(0);
}
`

// Target is one slot the payload must corrupt.
type Target struct {
	Slot  string
	Value uint64
}

// BuildPayload crafts an overflow request against fn's frame layout on the
// given architecture: word 0 is the (oversized) length, the remaining
// words overwrite buf[0..maxIdx]. Slots listed in counters receive their
// loop-consistent index so the vulnerable copy itself keeps running
// (classic DOP payload engineering). It fails if a target is not reachable
// by a forward overflow — which is itself a security result (e.g. after a
// cross-ISA rewrite the layout direction changed).
func BuildPayload(meta *stackmap.Metadata, fnName, bufSlot string, arch isa.Arch, targets []Target, counters map[string]bool) ([]byte, error) {
	fn, ok := meta.FuncByName(fnName)
	if !ok {
		return nil, fmt.Errorf("attack: no metadata for %q", fnName)
	}
	ai := stackmap.ArchIdx(arch)
	offs := map[string]int64{}
	for _, s := range fn.Slots {
		offs[s.Name] = s.Off[ai]
	}
	bufOff, ok := offs[bufSlot]
	if !ok {
		return nil, fmt.Errorf("attack: no slot %q", bufSlot)
	}
	idxOf := func(name string) (int64, error) {
		off, ok := offs[name]
		if !ok {
			return 0, fmt.Errorf("attack: no slot %q", name)
		}
		delta := bufOff - off
		if delta <= 0 || delta%8 != 0 {
			return 0, fmt.Errorf("attack: slot %q not reachable by forward overflow (delta %d)", name, delta)
		}
		return delta / 8, nil
	}
	maxIdx := int64(0)
	values := map[int64]uint64{}
	for _, t := range targets {
		j, err := idxOf(t.Slot)
		if err != nil {
			return nil, err
		}
		values[j] = t.Value
		if j > maxIdx {
			maxIdx = j
		}
	}
	// Fill intermediates: loop counters get their own index; everything
	// else zero.
	counterIdx := map[int64]bool{}
	for name := range counters {
		if j, err := idxOf(name); err == nil {
			counterIdx[j] = true
		}
	}
	words := make([]uint64, maxIdx+2)
	words[0] = uint64(maxIdx + 1) // reqlen
	for j := int64(0); j <= maxIdx; j++ {
		if v, isTarget := values[j]; isTarget {
			words[j+1] = v
		} else if counterIdx[j] {
			words[j+1] = uint64(j)
		}
	}
	// The reqlen slot, if crossed, must retain its value or the copy
	// stops early.
	if j, err := idxOf("reqlen"); err == nil && j <= maxIdx {
		words[j+1] = uint64(maxIdx + 1)
	}
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out, nil
}

// Result is the outcome of firing a payload at a server process.
type Result struct {
	Escalated bool // "ADMIN" printed (single-target DOP success)
	Pwned     bool // "PWNED" printed (multi-target BOPC success)
	Crashed   bool // the process faulted
	Hung      bool // a corrupted loop variable made the server spin
	Output    string
}

// fireBudget bounds a fired request's guest execution: a payload that
// corrupts the copy loop's control state can spin the server forever,
// which classifies as a failed (denial-of-service) attack, not a hang of
// the evaluation harness.
const fireBudget = 50_000_000

// Fire sends the payload to a running server process and runs it to
// completion (or the cycle budget), classifying the outcome.
func Fire(k *kernel.Kernel, p *kernel.Process, payload []byte) Result {
	p.PushInput(payload)
	p.CloseInput()
	alive, err := k.RunBudget(p, fireBudget)
	out := p.ConsoleString()
	return Result{
		Escalated: strings.Contains(out, "ADMIN"),
		Pwned:     strings.Contains(out, "PWNED"),
		Crashed:   err != nil,
		Hung:      alive && err == nil,
		Output:    out,
	}
}

// MinDOPTargets is the single-target privilege escalation payload. The
// reachable escalation flag differs per architecture: the SX86 layout
// places admin above the buffer, the reversed SARM layout places admin2
// there (both checked by the server, as a real program would have
// exploitable state on either side).
func MinDOPTargets(arch isa.Arch) []Target {
	if arch == isa.SX86 {
		return []Target{{Slot: "admin", Value: 41}}
	}
	return []Target{{Slot: "admin2", Value: 41}}
}

// BOPCTargets is the two-target payload: escalate AND load the magic key
// the synthesized gadget chain dispatches on.
func BOPCTargets() []Target {
	return []Target{
		{Slot: "admin", Value: 41},
		{Slot: "key", Value: 0xDEADBEEF},
	}
}

// Counters names the loop-variable slots the payload must preserve.
func Counters() map[string]bool { return map[string]bool{"i": true} }
