package attack_test

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/attack"
	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
)

func startServer(t *testing.T, bin *compiler.Binary) (*kernel.Kernel, *kernel.Process) {
	t.Helper()
	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(bin.LoadSpec("/bin/vuln." + bin.Arch.String()))
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestMinDOPSucceedsUnprotected(t *testing.T) {
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		bin := pair.ByArch(arch)
		payload, err := attack.BuildPayload(bin.Meta, "handle", "buf", arch, attack.MinDOPTargets(arch), attack.Counters())
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		k, p := startServer(t, bin)
		res := attack.Fire(k, p, payload)
		if !res.Escalated {
			t.Errorf("%v: DOP attack failed on unprotected binary: %+v", arch, res)
		}
	}
}

func TestBOPCSucceedsUnprotected(t *testing.T) {
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildPayload(pair.X86.Meta, "handle", "buf", isa.SX86, attack.BOPCTargets(), attack.Counters())
	if err != nil {
		t.Fatal(err)
	}
	k, p := startServer(t, pair.X86)
	res := attack.Fire(k, p, payload)
	if !res.Pwned || !strings.Contains(res.Output, "424242") {
		t.Errorf("BOPC attack failed on unprotected binary: %+v", res)
	}
}

func TestBenignRequestStillWorks(t *testing.T) {
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	k, p := startServer(t, pair.X86)
	benign := make([]byte, 16)
	benign[0] = 2 // reqlen=2, in bounds
	res := attack.Fire(k, p, benign)
	if res.Escalated || res.Pwned || res.Crashed {
		t.Errorf("benign request misbehaved: %+v", res)
	}
	if !strings.Contains(res.Output, "ok") {
		t.Errorf("no ok response: %q", res.Output)
	}
}

// TestShufflingDefeatsDOP measures the attack success rate against many
// shuffled variants: stale payloads must miss in (nearly) all of them,
// consistent with the 1/(2n) model.
func TestShufflingDefeatsDOP(t *testing.T) {
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 40
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		bin := pair.ByArch(arch)
		stale, err := attack.BuildPayload(bin.Meta, "handle", "buf", arch, attack.MinDOPTargets(arch), attack.Counters())
		if err != nil {
			t.Fatal(err)
		}
		wins, pwns := 0, 0
		for seed := int64(1); seed <= trials; seed++ {
			shuffled, _, err := core.ShuffleBinary(bin, seed)
			if err != nil {
				t.Fatal(err)
			}
			k, p := startServer(t, shuffled)
			res := attack.Fire(k, p, stale)
			if res.Escalated {
				wins++
			}
			if res.Pwned {
				pwns++
			}
		}
		// A handful of lucky layouts may still work; a majority must not.
		if wins > trials/4 {
			t.Errorf("%v: DOP still succeeds in %d/%d shuffled variants", arch, wins, trials)
		}
		t.Logf("%v: DOP success %d/%d after shuffling", arch, wins, trials)
	}
}

// TestShufflingDefeatsBOPC: the two-target payload should essentially
// never survive (probability squared).
func TestShufflingDefeatsBOPC(t *testing.T) {
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := attack.BuildPayload(pair.X86.Meta, "handle", "buf", isa.SX86, attack.BOPCTargets(), attack.Counters())
	if err != nil {
		t.Fatal(err)
	}
	const trials = 40
	pwns := 0
	for seed := int64(100); seed < 100+trials; seed++ {
		shuffled, _, err := core.ShuffleBinary(pair.X86, seed)
		if err != nil {
			t.Fatal(err)
		}
		k, p := startServer(t, shuffled)
		if attack.Fire(k, p, stale).Pwned {
			pwns++
		}
	}
	if pwns > trials/10 {
		t.Errorf("BOPC still succeeds in %d/%d shuffled variants", pwns, trials)
	}
}

// TestCrossISAMigrationDefeatsAttack: a payload primed for the x86 layout
// is fired after the live server migrates to the ARM node; the relocated
// state breaks the exploit (paper §IV-B, "by transparently transforming
// the architecture state, DAPPER prevents the payload from succeeding").
func TestCrossISAMigrationDefeatsAttack(t *testing.T) {
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("vuln", pair)
	pi.Install("vuln", pair)
	p, err := xeon.Start("vuln")
	if err != nil {
		t.Fatal(err)
	}
	// Serve one benign request, then migrate while blocked in recv.
	benign := make([]byte, 16)
	benign[0] = 1
	p.PushInput(benign)
	for i := 0; i < 1000; i++ {
		st, err := xeon.K.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := attack.BuildPayload(pair.Meta, "handle", "buf", isa.SX86, attack.MinDOPTargets(isa.SX86), attack.Counters())
	if err != nil {
		t.Fatal(err)
	}
	outcome := attack.Fire(pi.K, res.Proc, stale)
	if outcome.Escalated || outcome.Pwned {
		t.Errorf("x86-crafted payload still works after migration to ARM: %+v", outcome)
	}
	// A payload built for the *current* (ARM) layout must still work —
	// the defense comes from relocation, not from breaking the server.
	if _, err := attack.BuildPayload(pair.Meta, "handle", "buf", isa.SARM, attack.MinDOPTargets(isa.SARM), attack.Counters()); err != nil {
		t.Logf("ARM-layout payload unbuildable (%v): overflow direction changed — even stronger", err)
	}
}
