package cluster

import (
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/parallel"
	"github.com/dapper-sim/dapper/internal/registry"
)

// CloneOpts controls a clone fan-out.
type CloneOpts struct {
	// Workers bounds the parallel restore fan-out and the imgcheck
	// pre-flight sweeps. Values <= 0 select runtime.NumCPU().
	Workers int
	// Obs, if set, receives clone telemetry (clone.count,
	// clone.shared_frames, clone.restore_host_ns).
	Obs *obs.Registry
}

// CloneResult is one fan-out's outcome.
type CloneResult struct {
	// Procs holds one restored process per target node, in target order.
	Procs []*kernel.Process
	// Frames is the shared frame cache every clone reads through; its
	// Len is the number of distinct resident page frames the clones
	// share until first write.
	Frames *kernel.FrameCache
	// PullHost and RestoreHost are real host wall times for
	// materializing the image and restoring all clones.
	PullHost    time.Duration
	RestoreHost time.Duration
}

// CloneFromRegistry restores one stored checkpoint onto every target
// node — the serverless-style warm-start fan-out. The manifest chain is
// pulled and flattened once, pre-flighted once with imgcheck, and then
// restored N times with copy-on-write page installation: all clones
// share one set of resident page frames (kernel.FrameCache) until a
// clone's first write to a page privatizes its copy.
//
// Targets may repeat a node: each entry restores one clone onto that
// node's kernel. Every target must have the checkpoint's binary
// installed.
func CloneFromRegistry(store *registry.Store, manifest string, targets []*Node, opts CloneOpts) (*CloneResult, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("cluster: clone: no target nodes")
	}
	//lint:ignore wallclock clone latency is real host time by definition, reported separately from modeled migration time
	pullStart := time.Now()
	chain, err := store.PullChain(manifest)
	if err != nil {
		return nil, fmt.Errorf("cluster: clone: %w", err)
	}
	dir := chain[len(chain)-1]
	if len(chain) > 1 {
		if dir, err = criu.FlattenChain(chain); err != nil {
			return nil, fmt.Errorf("cluster: clone flatten: %w", err)
		}
	}
	// Pre-flight once for the whole fan-out: every chunk was re-hashed
	// inside Pull, and the materialized image must satisfy every static
	// invariant before it is installed anywhere.
	if err := imgcheck.VerifyWith(dir, imgcheck.Opts{Workers: opts.Workers}); err != nil {
		return nil, fmt.Errorf("cluster: clone pre-flight: %w", err)
	}
	res := &CloneResult{
		Procs:  make([]*kernel.Process, len(targets)),
		Frames: kernel.NewFrameCache(),
	}
	//lint:ignore wallclock clone latency is real host time by definition, reported separately from modeled migration time
	res.PullHost = time.Since(pullStart)

	//lint:ignore wallclock clone latency is real host time by definition, reported separately from modeled migration time
	restoreStart := time.Now()
	pool := parallel.New(opts.Workers)
	if err := pool.ForEach(len(targets), func(i int) error {
		p, err := criu.RestoreWith(targets[i].K, dir, targets[i].Binaries, criu.RestoreOpts{Frames: res.Frames, Workers: opts.Workers, Obs: opts.Obs})
		if err != nil {
			return fmt.Errorf("cluster: clone %d on %s: %w", i, targets[i].Spec.Name, err)
		}
		res.Procs[i] = p
		return nil
	}); err != nil {
		// Reap any clones that did land so a partial fan-out leaks nothing.
		for i, p := range res.Procs {
			if p != nil {
				targets[i].K.Reap(p)
			}
		}
		return nil, err
	}
	//lint:ignore wallclock clone latency is real host time by definition, reported separately from modeled migration time
	res.RestoreHost = time.Since(restoreStart)

	opts.Obs.Counter("clone.count").Add(uint64(len(targets)))
	opts.Obs.Counter("clone.shared_frames").Add(uint64(res.Frames.Len()))
	opts.Obs.Histogram("clone.restore_host_ns").Observe(res.RestoreHost)
	return res, nil
}
