package cluster_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/registry"
)

// TestMigrateViaRegistry pins the registry transfer path: a vanilla
// migration routed through the content-addressed store must produce the
// same output as a direct one, record a manifest, and — on a second
// migration of an identical checkpoint — elide every page chunk the
// store already holds.
func TestMigrateViaRegistry(t *testing.T) {
	xeon, pi, pair := setup(t)
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("work", pair)
	want := nativeOut(t, ref)

	reg := obs.New()
	store, err := registry.Open(t.TempDir(), registry.Opts{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = store.Close() }() // read-side close; nothing to flush

	migrateOnce := func(src, dst *cluster.Node) string {
		t.Helper()
		p, err := src.Start("work")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := src.K.RunBudget(p, 200_000); err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Migrate(src, dst, p, pair.Meta, cluster.MigrateOpts{
			Registry: store, RegistryOwner: "test",
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Manifest == "" {
			t.Fatal("registry migration recorded no manifest")
		}
		if res.Breakdown.WireBytes == 0 {
			t.Fatal("registry migration recorded no wire bytes")
		}
		if err := dst.K.Run(res.Proc); err != nil {
			t.Fatal(err)
		}
		return p.ConsoleString() + res.Proc.ConsoleString()
	}

	if got := migrateOnce(xeon, pi); got != want {
		t.Errorf("first registry migration output %q, want %q", got, want)
	}
	hitsBefore := reg.Counter("registry.chunks_hit").Value()

	// Same program, same budget, fresh nodes: the second dump is
	// byte-identical, so every page chunk is already in the store.
	xeon2 := cluster.NewNode(cluster.XeonSpec)
	pi2 := cluster.NewNode(cluster.PiSpec)
	xeon2.Install("work", pair)
	pi2.Install("work", pair)
	if got := migrateOnce(xeon2, pi2); got != want {
		t.Errorf("second registry migration output %q, want %q", got, want)
	}
	if hits := reg.Counter("registry.chunks_hit").Value(); hits <= hitsBefore {
		t.Errorf("second migration elided no chunks (hits %d -> %d)", hitsBefore, hits)
	}
}

// TestCloneFanOut restores one stored checkpoint onto N nodes at once:
// every clone must finish with byte-identical output, and the clones
// must share resident page frames until their first writes.
func TestCloneFanOut(t *testing.T) {
	xeon, pi, pair := setup(t)
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("work", pair)
	want := nativeOut(t, ref)

	store, err := registry.Open(t.TempDir(), registry.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = store.Close() }() // read-side close; nothing to flush

	// Produce a checkpoint manifest by migrating through the store.
	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{
		Registry: store, RegistryOwner: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	prefix := p.ConsoleString()
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
	if got := prefix + res.Proc.ConsoleString(); got != want {
		t.Fatalf("migrated output %q, want %q", got, want)
	}

	const n = 4
	targets := make([]*cluster.Node, n)
	for i := range targets {
		node := cluster.NewNode(cluster.PiSpec)
		node.Install("work", pair)
		targets[i] = node
	}
	reg := obs.New()
	cres, err := cluster.CloneFromRegistry(store, res.Manifest, targets, cluster.CloneOpts{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Procs) != n {
		t.Fatalf("clone produced %d procs, want %d", len(cres.Procs), n)
	}
	if cres.Frames.Len() == 0 {
		t.Fatal("clone fan-out shares no frames")
	}
	// Before running, each clone holds shared copy-on-write pages (the
	// restore itself breaks at most a couple: the DAPPER flag clear and
	// any page it shares).
	for i, cp := range cres.Procs {
		if cp.AS.SharedResidentPages() == 0 {
			t.Fatalf("clone %d shares no resident pages before first write", i)
		}
	}
	for i, cp := range cres.Procs {
		if err := targets[i].K.Run(cp); err != nil {
			t.Fatalf("clone %d: %v", i, err)
		}
		if got := prefix + cp.ConsoleString(); got != want {
			t.Errorf("clone %d output %q, want %q", i, got, want)
		}
		if cp.AS.CowBreaks() == 0 {
			t.Errorf("clone %d ran to completion without a single cow break", i)
		}
	}
	if got := reg.Counter("clone.count").Value(); got != n {
		t.Errorf("clone.count = %d, want %d", got, n)
	}
}
