// Package cluster models the multi-ISA, multi-node environment of the
// paper's evaluation: an x86-like server and ARM-like boards connected by
// a network, with end-to-end migration (vanilla and post-copy) and the
// virtual-time cost model that reproduces the shape of Figs. 5–7.
//
// Two time scales coexist:
//
//   - guest virtual time: instruction cycles executed by the simulated
//     kernels, converted to seconds through each node's clock model;
//   - transformation time: checkpoint/recode/copy/restore costs modeled
//     from image sizes, node speeds, and link bandwidth, calibrated (see
//     timing.go) to land in the ranges the paper reports.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/registry"
	"github.com/dapper-sim/dapper/internal/stackmap"
	"github.com/dapper-sim/dapper/internal/updatecheck"
)

// NodeSpec describes one machine.
type NodeSpec struct {
	Name  string
	Arch  isa.Arch
	Cores int
	// ClockHz and IPC convert guest cycles to seconds: t = cycles /
	// (ClockHz * IPC).
	ClockHz float64
	IPC     float64
	// IdleW and PerCoreW form the linear power model used by the energy
	// experiments (Fig. 8).
	IdleW    float64
	PerCoreW float64
}

// Predefined node models, calibrated to the paper's testbed: an Intel Xeon
// E5-2620 v4 (8 cores @ 2.1 GHz, 108 W observed under 7 worker threads)
// and Raspberry Pi 4 boards (4×Cortex-A72 @ 1.5 GHz, 5.1 W under 3
// threads).
var (
	XeonSpec = NodeSpec{
		Name: "xeon", Arch: isa.SX86, Cores: 8,
		ClockHz: 2.1e9, IPC: 1.0,
		IdleW: 43, PerCoreW: 9.3, // 43 + 7*9.3 ≈ 108 W at 7 threads
	}
	PiSpec = NodeSpec{
		Name: "pi", Arch: isa.SARM, Cores: 4,
		ClockHz: 1.5e9, IPC: 0.55,
		IdleW: 2.4, PerCoreW: 0.9, // 2.4 + 3*0.9 = 5.1 W at 3 threads
	}
)

// Node is one machine: a kernel plus its spec and executable store.
type Node struct {
	Spec     NodeSpec
	K        *kernel.Kernel
	Binaries criu.MapProvider
}

// NewNode boots a node.
func NewNode(spec NodeSpec) *Node {
	return &Node{
		Spec:     spec,
		K:        kernel.New(kernel.Config{Cores: spec.Cores}),
		Binaries: criu.MapProvider{},
	}
}

// Install registers a compiled pair's binary for this node's architecture
// (and the other architecture too, so the rewriter can read both sides).
func (n *Node) Install(name string, pair *compiler.Pair) {
	n.Binaries[compiler.ExePath(name, isa.SX86)] = pair.X86
	n.Binaries[compiler.ExePath(name, isa.SARM)] = pair.ARM
}

// Start launches a program (installed under name) on this node.
func (n *Node) Start(name string) (*kernel.Process, error) {
	path := compiler.ExePath(name, n.Spec.Arch)
	bin, err := n.Binaries.Open(path)
	if err != nil {
		return nil, err
	}
	return n.K.StartProcess(bin.LoadSpec(path))
}

// SecondsFor converts guest cycles to wall seconds on this node.
func (n *Node) SecondsFor(cycles uint64) float64 {
	return float64(cycles) / (n.Spec.ClockHz * n.Spec.IPC)
}

// Duration converts guest cycles to a time.Duration on this node.
func (n *Node) Duration(cycles uint64) time.Duration {
	return time.Duration(n.SecondsFor(cycles) * float64(time.Second))
}

// Breakdown is the per-phase cost of one migration (the bars of Figs. 5
// and 7).
type Breakdown struct {
	Checkpoint time.Duration
	Recode     time.Duration
	Copy       time.Duration
	Restore    time.Duration
	// RecodeHost is the real wall time the Go rewriter took (reported by
	// the benchmarks alongside the modeled time).
	RecodeHost time.Duration
	// ImageBytes is the marshaled image size before any wire codec.
	ImageBytes uint64
	// WireBytes is what actually crossed the link after batching and
	// compression; equal to ImageBytes when no codec is in play. Copy is
	// modeled from this figure.
	WireBytes uint64
	// LazyBytes counts bytes later served by the page server (post-copy).
	LazyBytes uint64
	// LazyFetches counts page-server round trips after restore.
	LazyFetches uint64
	// Downtime is the service interruption proper, pause to resume. For
	// vanilla and lazy migrations it equals Total(); for pre-copy it
	// covers only the final stop-and-copy delta.
	Downtime time.Duration
	// PreCopyTime is time spent on pre-copy rounds while the source keeps
	// running — part of the migration, not of the interruption.
	PreCopyTime time.Duration
	// Rounds counts checkpoints taken: 1 for vanilla/lazy, iterative
	// rounds plus the final delta for pre-copy.
	Rounds int
	// StreamSegments and StreamBatches describe the realized restore
	// pipeline of a StreamRestore migration (zero otherwise): wire
	// segments delivered to the streaming decoder, and page batches the
	// background installer consumed. Batches >= 2 with Segments >= 2
	// proves pages were installing while later segments were still on
	// the wire — the overlap the downtime model credits.
	StreamSegments int
	StreamBatches  int
	// RoundBytes records each pre-copy round's transferred bytes
	// (including the final delta).
	RoundBytes []uint64
	// PreCopyBytes is the total shipped before the final pause.
	PreCopyBytes uint64
}

// Total is the service interruption excluding post-copy paging.
func (b *Breakdown) Total() time.Duration {
	return b.Checkpoint + b.Recode + b.Copy + b.Restore
}

// MigrationTime is the end-to-end migration cost: pre-copy rounds (zero
// for vanilla/lazy) plus the interruption phases.
func (b *Breakdown) MigrationTime() time.Duration {
	return b.PreCopyTime + b.Total()
}

// MigrateOpts controls a migration.
type MigrateOpts struct {
	Lazy bool
	// LazyTCP serves post-copy pages over a real TCP page server (the
	// cross-node deployment path) instead of in-process FetchPage calls.
	// Requires Lazy. The server and client live inside the
	// MigrationResult; call Close when paging is done.
	LazyTCP bool
	// PageClient tunes the TCP page client (pool size, deadlines,
	// retries, prefetch); nil selects criu's defaults.
	PageClient *criu.PageClientOpts
	// WrapPageSource, if set, wraps the page source serving lazy faults —
	// tests interpose criu.FlakySource here to inject fetch failures.
	WrapPageSource func(criu.PageSource) criu.PageSource
	// WrapListener, if set, wraps the TCP page server's listener — tests
	// interpose criu.FlakyListener here to inject connection drops.
	WrapListener func(net.Listener) net.Listener
	// Shuffle additionally re-randomizes the stack layout during the
	// rewrite (policy chaining); ShuffleSeed selects the permutation.
	Shuffle     bool
	ShuffleSeed int64
	// RecodeOn selects where the rewrite runs; nil means the faster node
	// (the paper notes the transformation can always run on the most
	// powerful machine).
	RecodeOn *Node
	// Link models the connection (defaults to InfiniBand).
	Link *Link
	// MaxPauses bounds the monitor's wait for equivalence points.
	MaxPauses int
	// PreCopy selects iterative pre-copy migration (see precopy.go): the
	// process keeps running while dirty pages are shipped in rounds, and
	// pauses only for the final delta. Incompatible with Lazy.
	PreCopy *PreCopyOpts
	// Obs, if set, collects the migration's telemetry into one registry:
	// the monitor's pause protocol, CRIU dump counters, page-transport
	// counters and fault-service latency, and a span tree covering every
	// modeled phase end-to-end (see internal/obs and
	// docs/observability.md). Nil disables recording at ~1 ns per site.
	Obs *obs.Registry
	// Workers bounds every parallel stage of the migration pipeline:
	// dump page-shard collection, per-thread core rewrites, the imgcheck
	// pre-flight sweeps, and transfer framing (see internal/parallel and
	// docs/perf.md). Values <= 0 select runtime.NumCPU(); 1 reproduces
	// the historical serial pipeline. Images are byte-identical for
	// every worker count.
	Workers int
	// Dedup content-addresses page payloads in the dump: duplicate 4K
	// pages become pagemap-only references, shrinking pages.img and the
	// bytes on the wire ("dedup.pages_elided"/"dedup.bytes_saved" in the
	// Obs registry). Restore resolves the references transparently.
	Dedup bool
	// Codec selects the wire codec for image transfers (and, for LazyTCP,
	// the page client's batch framing): CodecRaw (the zero value) keeps
	// the legacy framing; CodecNone batches; CodecFlate batches and
	// compresses. Negotiated/self-describing on the wire, so mixed-version
	// peers interoperate. Restored images are byte-identical across all
	// settings; only Breakdown.WireBytes changes.
	Codec criu.Codec
	// StreamRestore overlaps the copy and restore phases: the image
	// streams through the v3 wire framing straight into a
	// criu.StreamRestorer, which verifies metadata, maps the address
	// space, and installs page batches on a background worker while later
	// segments are still in flight (see docs/perf.md, "restore
	// pipeline"). Downtime is then modeled as checkpoint + recode +
	// max(copy, restore) instead of their sum. Restored state is
	// byte-identical to a non-streamed migration. Requires a batched
	// Codec; incompatible with Lazy, PreCopy, and Registry.
	StreamRestore bool
	// Delta enables XOR-delta encoding of re-dirtied pages in pre-copy
	// rounds (requires PreCopy): a page the chain already holds ships as
	// the XOR against the chain's content — mostly zeros for small
	// mutations, which CodecFlate then collapses — and soft-dirty false
	// positives are elided entirely. See criu.DumpOpts.DeltaBase.
	Delta bool
	// Registry routes the vanilla transfer through a persistent
	// content-addressed store instead of the wire: the rewritten image is
	// pushed (chunks the store already holds are elided), and the
	// destination pulls and imgcheck-pre-flights the materialized
	// directory. WireBytes then counts only the bytes the push actually
	// stored — the cross-dump dedup saving is (ImageBytes - WireBytes).
	// Incompatible with Lazy and PreCopy.
	Registry *registry.Store
	// RegistryOwner, when non-empty with Registry, pins the pushed
	// manifest under this owner tag so GC cannot sweep it while the
	// caller still wants it (see registry.Store.Unref).
	RegistryOwner string
}

// MigrationResult couples the restored process with its costs and any
// page-server plumbing the caller must keep alive.
type MigrationResult struct {
	Proc      *kernel.Process
	Breakdown Breakdown
	// Manifest is the registry manifest ID of the shipped image when the
	// migration ran through MigrateOpts.Registry, empty otherwise.
	Manifest string
	// Source is the paused source process's page source. It is non-nil
	// only for lazy migrations, where the source process must stay alive
	// to serve post-copy faults: run the restored process to completion
	// (or until its working set is resident), call FinalizeLazyStats if
	// you want the realized paging traffic in the Breakdown, then Close.
	// For non-lazy migrations Migrate reaps the source immediately — its
	// console output stays readable, but it never runs again — and Source
	// is nil.
	Source *criu.ProcessPageSource

	srcKernel  *kernel.Kernel
	srcProc    *kernel.Process
	dstKernel  *kernel.Kernel
	pageServer *criu.PageServer
	pageClient *criu.RemotePageSource
	closeOnce  sync.Once
	closeErr   error
}

// Close releases the migration's lazy-paging plumbing: it closes the TCP
// page client and server (if LazyTCP) and reaps the paused source process.
// After Close the restored process must not fault any page that was left
// behind on the source — run it to completion first, or accept that such a
// fault fails with a transport error (see kernel.IsLazyFaultError). Close
// is idempotent; for non-lazy migrations it is a no-op.
func (r *MigrationResult) Close() error {
	return r.finish(true, false)
}

// Rollback abandons a migration whose restored process failed mid-flight
// (typically a post-copy fetch that exhausted its retries, see
// kernel.IsLazyFaultError): it tears down the page-transport plumbing like
// Close and reaps the dead restored process on the destination, but —
// unlike Close — leaves the paused source process alive. The caller can
// then resume the source at its equivalence points (monitor.ResumeLocal)
// and retry the migration later; the fleet control plane's
// retry-with-backoff path is built on exactly this. Rollback and Close
// share one idempotency guard: whichever runs first wins.
func (r *MigrationResult) Rollback() error {
	return r.finish(false, true)
}

func (r *MigrationResult) finish(reapSource, reapRestored bool) error {
	r.closeOnce.Do(func() {
		if r.pageClient != nil {
			if err := r.pageClient.Close(); err != nil {
				r.closeErr = fmt.Errorf("cluster: page client close: %w", err)
			}
		}
		if r.pageServer != nil {
			if err := r.pageServer.Close(); err != nil {
				r.closeErr = errors.Join(r.closeErr, fmt.Errorf("cluster: page server close: %w", err))
			}
		}
		if reapSource && r.srcKernel != nil && r.srcProc != nil {
			r.srcKernel.Reap(r.srcProc)
		}
		if reapRestored && r.dstKernel != nil && r.Proc != nil {
			r.dstKernel.Reap(r.Proc)
		}
	})
	return r.closeErr
}

// FinalizeLazyStats copies the realized post-copy paging traffic into the
// Breakdown: LazyFetches/LazyBytes become the page server's actual request
// and byte counters (including requests that were retried or failed),
// rather than an estimate. Call it after the restored process has run.
func (r *MigrationResult) FinalizeLazyStats() {
	switch {
	case r.pageServer != nil:
		st := r.pageServer.Stats()
		r.Breakdown.LazyFetches = st.Requests
		r.Breakdown.LazyBytes = st.BytesSent
	case r.Source != nil:
		st := r.Source.Stats()
		r.Breakdown.LazyFetches = st.Requests
		r.Breakdown.LazyBytes = st.BytesSent
	}
}

// PageStats returns the page-serving counters for a lazy migration: the
// TCP server's view when LazyTCP, else the in-process source's.
func (r *MigrationResult) PageStats() criu.PageServerStats {
	if r.pageServer != nil {
		return r.pageServer.Stats()
	}
	if r.Source != nil {
		return r.Source.Stats()
	}
	return criu.PageServerStats{}
}

// PageClientStats returns the TCP page client's transport counters
// (retries, reconnects, timeouts, prefetch activity); zero when the
// migration did not use LazyTCP.
func (r *MigrationResult) PageClientStats() criu.PageClientStats {
	if r.pageClient == nil {
		return criu.PageClientStats{}
	}
	return r.pageClient.Stats()
}

// Migrate checkpoints p on src, rewrites it for dst's architecture, copies
// the images, and restores it on dst. The returned process is ready to
// run. meta must be the program's stack-map metadata.
func Migrate(src, dst *Node, p *kernel.Process, meta *stackmap.Metadata, opts MigrateOpts) (*MigrationResult, error) {
	if opts.MaxPauses == 0 {
		opts.MaxPauses = 1 << 20
	}
	link := opts.Link
	if link == nil {
		link = &InfiniBand
	}
	recodeNode := opts.RecodeOn
	if recodeNode == nil {
		recodeNode = fasterNode(src, dst)
	}
	if opts.Delta && opts.PreCopy == nil {
		return nil, fmt.Errorf("cluster: delta encoding requires pre-copy migration")
	}
	if opts.Registry != nil && (opts.Lazy || opts.PreCopy != nil) {
		return nil, fmt.Errorf("cluster: registry transfer supports vanilla migrations only")
	}
	if opts.StreamRestore {
		if opts.Lazy || opts.PreCopy != nil || opts.Registry != nil {
			return nil, fmt.Errorf("cluster: streamed restore supports vanilla wire migrations only")
		}
		if !opts.Codec.Batched() {
			return nil, fmt.Errorf("cluster: streamed restore requires a batched wire codec (CodecNone or CodecFlate)")
		}
	}
	if opts.PreCopy != nil {
		if opts.Lazy {
			return nil, fmt.Errorf("cluster: pre-copy is incompatible with lazy migration")
		}
		return migratePreCopy(src, dst, p, meta, opts, link, recodeNode)
	}

	var bd Breakdown

	// 1. Pause at equivalence points and dump (checkpoint).
	mon := monitor.New(src.K, p, meta).WithObs(opts.Obs)
	if err := mon.Pause(opts.MaxPauses); err != nil {
		return nil, fmt.Errorf("cluster: pause: %w", err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{Lazy: opts.Lazy, Obs: opts.Obs, Workers: opts.Workers, Dedup: opts.Dedup})
	if err != nil {
		return nil, fmt.Errorf("cluster: dump: %w", err)
	}
	// Fail fast on the source side: a dump that violates an image
	// invariant must not be rewritten or shipped.
	if err := imgcheck.VerifyWith(dir, imgcheck.Opts{Workers: opts.Workers}); err != nil {
		return nil, fmt.Errorf("cluster: dump pre-flight: %w", err)
	}
	bd.Checkpoint = CheckpointTime(dir.Size())

	// 2. Rewrite (recode) for the destination architecture, optionally
	// chaining a stack shuffle (the destination starts with a fresh
	// layout). The shipper pre-frames core images as rewrite workers
	// finish them, overlapping transfer framing with the rewrite stage.
	sh := newShipper()
	//lint:ignore wallclock RecodeHost is real host time by definition, reported separately and never part of modeled downtime
	hostStart := time.Now()
	if err := rewriteForDest(dir, src, dst, opts, sh.OnFile); err != nil {
		return nil, err
	}
	//lint:ignore wallclock RecodeHost is real host time by definition, reported separately and never part of modeled downtime
	bd.RecodeHost = time.Since(hostStart)
	bd.Recode = RecodeTime(recodeNode, dir.Size())
	// Source-side version-skew pre-flight: the rewritten image must resolve
	// against the exact binary the destination restores into (thread PCs at
	// known sites, return addresses at known call sites). Catching skew here
	// refuses the migration before any bytes ship.
	if err := verifyShipTarget(dir, src.Binaries); err != nil {
		return nil, fmt.Errorf("cluster: recode pre-flight: %w", err)
	}

	// 3. Copy images over the link (scp). With a batch codec the blob
	// round-trips the real v3 stream encoder — the exact bytes a TCP
	// transfer would carry — so WireBytes is measured, not estimated.
	// With a registry the image is pushed instead: only chunks the store
	// does not already hold cross the wire, and the destination pulls
	// and pre-flights the materialized directory.
	var dir2 *criu.ImageDir
	var manifest string
	var p2 *kernel.Process
	if opts.Registry != nil {
		m, pst, err := opts.Registry.Push(dir, registry.PushOpts{Owner: opts.RegistryOwner})
		if err != nil {
			return nil, fmt.Errorf("cluster: registry push: %w", err)
		}
		manifest = m.ID
		pagesRaw, _ := dir.Get("pages.img")
		metaBytes := dir.Size() - uint64(len(pagesRaw))
		bd.ImageBytes = dir.Size()
		bd.WireBytes = pst.BytesStored + metaBytes
		if dir2, err = opts.Registry.Pull(manifest); err != nil {
			return nil, fmt.Errorf("cluster: registry pull: %w", err)
		}
		// Pull-path pre-flight: the materialized image re-verifies every
		// invariant (and every chunk re-hashed inside Pull), so a corrupt
		// store entry fails here with a named invariant, never mid-restore.
		if err := imgcheck.VerifyWith(dir2, imgcheck.Opts{Workers: opts.Workers}); err != nil {
			return nil, fmt.Errorf("cluster: registry pull pre-flight: %w", err)
		}
	} else if blob := sh.marshal(dir, opts.Workers); opts.StreamRestore {
		// Streamed pipeline: the sender's v3 stream feeds the restorer
		// through a pipe, so receive/decode, incremental verify, and
		// parallel page install all overlap. The restore is complete when
		// Finish returns; step 4 below only attributes modeled time.
		bd.ImageBytes = uint64(len(blob))
		sr := criu.NewStreamRestorer(dst.K, dst.Binaries, criu.RestoreOpts{Workers: opts.Workers, Obs: opts.Obs})
		pr, pw := io.Pipe()
		var wire uint64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, werr := writeImageStream(pw, blob, opts.Codec, 0, opts.Obs)
			wire = w
			pw.CloseWithError(werr)
		}()
		segs, rerr := readImageStreamInto(pr, sr)
		// Unblock the writer if the reader bailed early, then join it so
		// wire is settled before we read it.
		pr.CloseWithError(rerr)
		wg.Wait()
		p2, err = sr.Finish()
		if rerr != nil {
			return nil, fmt.Errorf("cluster: transfer: %w", rerr)
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: restore: %w", err)
		}
		bd.WireBytes = wire
		bd.StreamSegments = segs
		bd.StreamBatches = sr.Stats().Batches
		dir2 = sr.Dir()
	} else if opts.Codec.Batched() {
		bd.ImageBytes = uint64(len(blob))
		var buf bytes.Buffer
		wire, err := writeImageStream(&buf, blob, opts.Codec, 0, opts.Obs)
		if err != nil {
			return nil, fmt.Errorf("cluster: transfer: %w", err)
		}
		bd.WireBytes = wire
		if dir2, err = readImageDirFrom(&buf); err != nil {
			return nil, fmt.Errorf("cluster: transfer: %w", err)
		}
	} else {
		bd.ImageBytes = uint64(len(blob))
		bd.WireBytes = bd.ImageBytes
		var err error
		if dir2, err = criu.UnmarshalImageDir(blob); err != nil {
			return nil, fmt.Errorf("cluster: transfer: %w", err)
		}
	}
	bd.Copy = link.TransferTime(bd.WireBytes)

	// 4. Restore on the destination node. The streamed pipeline already
	// restored while receiving; non-streamed paths restore here from the
	// materialized directory.
	if p2 == nil {
		p2, err = criu.RestoreWith(dst.K, dir2, dst.Binaries, criu.RestoreOpts{Workers: opts.Workers, Obs: opts.Obs})
		if err != nil {
			return nil, fmt.Errorf("cluster: restore: %w", err)
		}
	}
	bd.Restore = RestoreTime(dir2.Size(), opts.Lazy)
	// Vanilla and lazy pause the process for the whole pipeline. Like the
	// pre-copy path, downtime sums the modeled phases only — host wall
	// clock never leaks in, so replays report identical downtime. The
	// streamed pipeline overlaps copy with restore, so its downtime
	// charges only the longer of the two.
	if opts.StreamRestore {
		bd.Downtime = bd.Checkpoint + bd.Recode + OverlappedCopyRestore(bd.Copy, bd.Restore)
	} else {
		bd.Downtime = bd.Total()
	}
	bd.Rounds = 1

	// Span tree: vanilla/lazy migrations are all downtime, so the root's
	// single child covers it exactly. A streamed restore groups copy and
	// restore under one overlapped stage whose duration is their max, so
	// the downtime span's children still sum exactly to its duration.
	reg := opts.Obs
	root := reg.NewSpan("migration")
	dt := root.Child("downtime")
	dt.Child("checkpoint").Finish(bd.Checkpoint)
	dt.Child("recode").Finish(bd.Recode)
	if opts.StreamRestore {
		xfer := dt.Child("xfer_restore")
		xfer.Child("copy").Finish(bd.Copy)
		xfer.Child("restore").Finish(bd.Restore)
		xfer.Finish(OverlappedCopyRestore(bd.Copy, bd.Restore))
	} else {
		dt.Child("copy").Finish(bd.Copy)
		dt.Child("restore").Finish(bd.Restore)
	}
	dt.Finish(bd.Downtime)
	root.Finish(bd.MigrationTime())
	reg.Counter("migrate.count").Inc()
	reg.Counter("migrate.image_bytes").Add(bd.ImageBytes)
	reg.Histogram("recode.host_ns").Observe(bd.RecodeHost)

	res := &MigrationResult{Proc: p2, Breakdown: bd, Manifest: manifest, srcKernel: src.K, srcProc: p, dstKernel: dst.K}
	if !opts.Lazy {
		// Nothing will ever fault back to the source: reap it now instead
		// of leaking it SIGSTOPed forever. Its console stays readable.
		src.K.Reap(p)
		return res, nil
	}

	// Post-copy: the paused source process becomes the page server. The
	// migration registry observes the fault path at the destination side
	// (ObsSource) and the transport counters on both ends.
	srcPages := criu.NewProcessPageSourceObs(p, opts.Obs)
	res.Source = srcPages
	var pageSrc criu.PageSource = srcPages
	if opts.WrapPageSource != nil {
		pageSrc = opts.WrapPageSource(pageSrc)
	}
	if !opts.LazyTCP {
		criu.InstallLazyHandler(p2, criu.ObsSource(pageSrc, opts.Obs))
		return res, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: page server: %w", err)
	}
	if opts.WrapListener != nil {
		ln = opts.WrapListener(ln)
	}
	srv := criu.ServePagesObs(ln, pageSrc, opts.Obs)
	var copts criu.PageClientOpts
	if opts.PageClient != nil {
		copts = *opts.PageClient
	}
	if copts.Obs == nil {
		copts.Obs = opts.Obs
	}
	if !copts.Codec.Batched() && opts.Codec.Batched() {
		// The migration-level codec extends to the post-copy page stream
		// unless the client options pin their own.
		copts.Codec = opts.Codec
	}
	client, err := criu.DialPageServerOpts(srv.Addr(), copts)
	if err != nil {
		err = fmt.Errorf("cluster: page client: %w", err)
		if cerr := srv.Close(); cerr != nil {
			err = errors.Join(err, fmt.Errorf("cluster: page server close: %w", cerr))
		}
		return nil, err
	}
	criu.InstallLazyHandler(p2, criu.ObsSource(client, opts.Obs))
	res.pageServer, res.pageClient = srv, client
	return res, nil
}

// rewriteForDest runs the recode pipeline on an image directory: the
// cross-ISA rewrite when the architectures differ, then the optional
// stack shuffle. Shared by the vanilla/lazy and pre-copy paths. onFile,
// when non-nil, observes each finalized core image from the rewrite
// workers (see core.Context.OnFile) so shipping can overlap rewriting.
func rewriteForDest(dir *criu.ImageDir, src, dst *Node, opts MigrateOpts, onFile func(name string, data []byte)) error {
	ctx := &core.Context{Binaries: src.Binaries, Workers: opts.Workers, Obs: opts.Obs, OnFile: onFile}
	if src.Spec.Arch != dst.Spec.Arch {
		policy := core.CrossISAPolicy{Target: dst.Spec.Arch}
		if err := policy.Rewrite(dir, ctx); err != nil {
			return fmt.Errorf("cluster: rewrite: %w", err)
		}
	}
	if opts.Shuffle {
		// The shuffled binary must be visible on BOTH nodes: register it
		// into the destination's provider too.
		pol := core.StackShufflePolicy{Seed: opts.ShuffleSeed}
		if err := pol.Rewrite(dir, ctx); err != nil {
			return fmt.Errorf("cluster: shuffle: %w", err)
		}
		filesRaw, ok := dir.Get("files.img")
		if !ok {
			return fmt.Errorf("cluster: shuffle: image directory missing files.img")
		}
		files, err := criu.UnmarshalFiles(filesRaw)
		if err != nil {
			return err
		}
		bin, err := src.Binaries.Open(files.ExePath)
		if err != nil {
			return err
		}
		dst.Binaries.Register(files.ExePath, bin)
	}
	return nil
}

// verifyShipTarget runs updatecheck's image-vs-binary pass (via imgcheck)
// against the binary the image's files entry names — the one the
// destination will open at restore.
func verifyShipTarget(dir *criu.ImageDir, bins criu.BinaryProvider) error {
	filesRaw, ok := dir.Get("files.img")
	if !ok {
		return fmt.Errorf("image directory missing files.img")
	}
	files, err := criu.UnmarshalFiles(filesRaw)
	if err != nil {
		return err
	}
	bin, err := bins.Open(files.ExePath)
	if err != nil {
		return err
	}
	if bin.Meta == nil {
		return nil
	}
	if err := imgcheck.VerifyTargetBinary(dir, &updatecheck.Binary{
		Arch: bin.Arch, Text: bin.Text, Symbols: bin.Symbols, Meta: bin.Meta,
	}); err != nil {
		return fmt.Errorf("image/binary version skew for %q: %w", files.ExePath, err)
	}
	return nil
}

func fasterNode(a, b *Node) *Node {
	if a.Spec.ClockHz*a.Spec.IPC >= b.Spec.ClockHz*b.Spec.IPC {
		return a
	}
	return b
}
