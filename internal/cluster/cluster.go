// Package cluster models the multi-ISA, multi-node environment of the
// paper's evaluation: an x86-like server and ARM-like boards connected by
// a network, with end-to-end migration (vanilla and post-copy) and the
// virtual-time cost model that reproduces the shape of Figs. 5–7.
//
// Two time scales coexist:
//
//   - guest virtual time: instruction cycles executed by the simulated
//     kernels, converted to seconds through each node's clock model;
//   - transformation time: checkpoint/recode/copy/restore costs modeled
//     from image sizes, node speeds, and link bandwidth, calibrated (see
//     timing.go) to land in the ranges the paper reports.
package cluster

import (
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// NodeSpec describes one machine.
type NodeSpec struct {
	Name  string
	Arch  isa.Arch
	Cores int
	// ClockHz and IPC convert guest cycles to seconds: t = cycles /
	// (ClockHz * IPC).
	ClockHz float64
	IPC     float64
	// IdleW and PerCoreW form the linear power model used by the energy
	// experiments (Fig. 8).
	IdleW    float64
	PerCoreW float64
}

// Predefined node models, calibrated to the paper's testbed: an Intel Xeon
// E5-2620 v4 (8 cores @ 2.1 GHz, 108 W observed under 7 worker threads)
// and Raspberry Pi 4 boards (4×Cortex-A72 @ 1.5 GHz, 5.1 W under 3
// threads).
var (
	XeonSpec = NodeSpec{
		Name: "xeon", Arch: isa.SX86, Cores: 8,
		ClockHz: 2.1e9, IPC: 1.0,
		IdleW: 43, PerCoreW: 9.3, // 43 + 7*9.3 ≈ 108 W at 7 threads
	}
	PiSpec = NodeSpec{
		Name: "pi", Arch: isa.SARM, Cores: 4,
		ClockHz: 1.5e9, IPC: 0.55,
		IdleW: 2.4, PerCoreW: 0.9, // 2.4 + 3*0.9 = 5.1 W at 3 threads
	}
)

// Node is one machine: a kernel plus its spec and executable store.
type Node struct {
	Spec     NodeSpec
	K        *kernel.Kernel
	Binaries criu.MapProvider
}

// NewNode boots a node.
func NewNode(spec NodeSpec) *Node {
	return &Node{
		Spec:     spec,
		K:        kernel.New(kernel.Config{Cores: spec.Cores}),
		Binaries: criu.MapProvider{},
	}
}

// Install registers a compiled pair's binary for this node's architecture
// (and the other architecture too, so the rewriter can read both sides).
func (n *Node) Install(name string, pair *compiler.Pair) {
	n.Binaries[compiler.ExePath(name, isa.SX86)] = pair.X86
	n.Binaries[compiler.ExePath(name, isa.SARM)] = pair.ARM
}

// Start launches a program (installed under name) on this node.
func (n *Node) Start(name string) (*kernel.Process, error) {
	path := compiler.ExePath(name, n.Spec.Arch)
	bin, err := n.Binaries.Open(path)
	if err != nil {
		return nil, err
	}
	return n.K.StartProcess(bin.LoadSpec(path))
}

// SecondsFor converts guest cycles to wall seconds on this node.
func (n *Node) SecondsFor(cycles uint64) float64 {
	return float64(cycles) / (n.Spec.ClockHz * n.Spec.IPC)
}

// Duration converts guest cycles to a time.Duration on this node.
func (n *Node) Duration(cycles uint64) time.Duration {
	return time.Duration(n.SecondsFor(cycles) * float64(time.Second))
}

// Breakdown is the per-phase cost of one migration (the bars of Figs. 5
// and 7).
type Breakdown struct {
	Checkpoint time.Duration
	Recode     time.Duration
	Copy       time.Duration
	Restore    time.Duration
	// RecodeHost is the real wall time the Go rewriter took (reported by
	// the benchmarks alongside the modeled time).
	RecodeHost time.Duration
	// ImageBytes is the transferred image size.
	ImageBytes uint64
	// LazyBytes counts bytes later served by the page server (post-copy).
	LazyBytes uint64
	// LazyFetches counts page-server round trips after restore.
	LazyFetches uint64
}

// Total is the service interruption excluding post-copy paging.
func (b *Breakdown) Total() time.Duration {
	return b.Checkpoint + b.Recode + b.Copy + b.Restore
}

// MigrateOpts controls a migration.
type MigrateOpts struct {
	Lazy bool
	// Shuffle additionally re-randomizes the stack layout during the
	// rewrite (policy chaining); ShuffleSeed selects the permutation.
	Shuffle     bool
	ShuffleSeed int64
	// RecodeOn selects where the rewrite runs; nil means the faster node
	// (the paper notes the transformation can always run on the most
	// powerful machine).
	RecodeOn *Node
	// Link models the connection (defaults to InfiniBand).
	Link *Link
	// MaxPauses bounds the monitor's wait for equivalence points.
	MaxPauses int
}

// MigrationResult couples the restored process with its costs and any
// page-server plumbing the caller must keep alive.
type MigrationResult struct {
	Proc      *kernel.Process
	Breakdown Breakdown
	// Source is the paused source process (kept alive as the page server
	// for lazy migrations; dead weight otherwise).
	Source *criu.ProcessPageSource
}

// Migrate checkpoints p on src, rewrites it for dst's architecture, copies
// the images, and restores it on dst. The returned process is ready to
// run. meta must be the program's stack-map metadata.
func Migrate(src, dst *Node, p *kernel.Process, meta *stackmap.Metadata, opts MigrateOpts) (*MigrationResult, error) {
	if opts.MaxPauses == 0 {
		opts.MaxPauses = 1 << 20
	}
	link := opts.Link
	if link == nil {
		link = &InfiniBand
	}
	recodeNode := opts.RecodeOn
	if recodeNode == nil {
		recodeNode = fasterNode(src, dst)
	}

	var bd Breakdown

	// 1. Pause at equivalence points and dump (checkpoint).
	mon := monitor.New(src.K, p, meta)
	if err := mon.Pause(opts.MaxPauses); err != nil {
		return nil, fmt.Errorf("cluster: pause: %w", err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{Lazy: opts.Lazy})
	if err != nil {
		return nil, fmt.Errorf("cluster: dump: %w", err)
	}
	bd.Checkpoint = CheckpointTime(dir.Size())

	// 2. Rewrite (recode) for the destination architecture, optionally
	// chaining a stack shuffle (the destination starts with a fresh
	// layout).
	hostStart := time.Now()
	ctx := &core.Context{Binaries: src.Binaries}
	if src.Spec.Arch != dst.Spec.Arch {
		policy := core.CrossISAPolicy{Target: dst.Spec.Arch}
		if err := policy.Rewrite(dir, ctx); err != nil {
			return nil, fmt.Errorf("cluster: rewrite: %w", err)
		}
	}
	if opts.Shuffle {
		// The shuffled binary must be visible on BOTH nodes: register it
		// into the destination's provider too.
		pol := core.StackShufflePolicy{Seed: opts.ShuffleSeed}
		if err := pol.Rewrite(dir, ctx); err != nil {
			return nil, fmt.Errorf("cluster: shuffle: %w", err)
		}
		filesRaw, _ := dir.Get("files.img")
		files, err := criu.UnmarshalFiles(filesRaw)
		if err != nil {
			return nil, err
		}
		bin, err := src.Binaries.Open(files.ExePath)
		if err != nil {
			return nil, err
		}
		dst.Binaries.Register(files.ExePath, bin)
	}
	bd.RecodeHost = time.Since(hostStart)
	bd.Recode = RecodeTime(recodeNode, dir.Size())

	// 3. Copy images over the link (scp).
	blob := dir.Marshal()
	bd.ImageBytes = uint64(len(blob))
	bd.Copy = link.TransferTime(bd.ImageBytes)
	dir2, err := criu.UnmarshalImageDir(blob)
	if err != nil {
		return nil, fmt.Errorf("cluster: transfer: %w", err)
	}

	// 4. Restore on the destination node.
	p2, err := criu.Restore(dst.K, dir2, dst.Binaries)
	if err != nil {
		return nil, fmt.Errorf("cluster: restore: %w", err)
	}
	bd.Restore = RestoreTime(dir2.Size(), opts.Lazy)

	res := &MigrationResult{Proc: p2, Breakdown: bd}
	if opts.Lazy {
		srcPages := criu.NewProcessPageSource(p)
		criu.InstallLazyHandler(p2, srcPages)
		res.Source = srcPages
		res.Breakdown.LazyBytes = p.AS.ResidentBytes()
	}
	return res, nil
}

func fasterNode(a, b *Node) *Node {
	if a.Spec.ClockHz*a.Spec.IPC >= b.Spec.ClockHz*b.Spec.IPC {
		return a
	}
	return b
}
