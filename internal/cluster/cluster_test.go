package cluster_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/kernel"
)

const workSrc = `
func crunch(n int) int {
	var acc int;
	var i int;
	for i = 0; i < n; i = i + 1 {
		acc = acc + i * i % 1013;
	}
	return acc;
}
func main() {
	var r int;
	var total int;
	for r = 0; r < 30; r = r + 1 {
		total = total + crunch(500);
	}
	printi(total);
	print("\n");
}`

func setup(t *testing.T) (*cluster.Node, *cluster.Node, *compiler.Pair) {
	t.Helper()
	pair, err := compiler.Compile(workSrc)
	if err != nil {
		t.Fatal(err)
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("work", pair)
	pi.Install("work", pair)
	return xeon, pi, pair
}

func nativeOut(t *testing.T, n *cluster.Node) string {
	t.Helper()
	p, err := n.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.K.Run(p); err != nil {
		t.Fatal(err)
	}
	return p.ConsoleString()
}

func TestMigrateAcrossNodes(t *testing.T) {
	xeon, pi, pair := setup(t)
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("work", pair)
	want := nativeOut(t, ref)

	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
	got := p.ConsoleString() + res.Proc.ConsoleString()
	if got != want {
		t.Errorf("migrated output %q, want %q", got, want)
	}
	bd := res.Breakdown
	if bd.Checkpoint <= 0 || bd.Recode <= 0 || bd.Copy <= 0 || bd.Restore <= 0 {
		t.Errorf("breakdown has non-positive phases: %+v", bd)
	}
	if bd.ImageBytes == 0 {
		t.Error("no image bytes recorded")
	}
}

func TestLazyMigrationBreakdownSmaller(t *testing.T) {
	// Post-copy must move far fewer bytes up front than vanilla for a
	// heap-heavy program.
	// The loops call helpers so equivalence points occur inside them
	// (checkers only exist at function boundaries).
	src := `
func put(p *int, i int) { p[i] = i; }
func get(p *int, i int) int { return p[i]; }
func main() {
	var p *int;
	var i int;
	var s int;
	p = alloc(8 * 20000);
	for i = 0; i < 20000; i = i + 1 { put(p, i); }
	for i = 0; i < 20000; i = i + 1 { s = s + get(p, i); }
	printi(s);
	print("\n");
}`
	pair, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Measure total native cycles so the checkpoint lands mid-computation.
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("heapy", pair)
	refProc, err := ref.Start("heapy")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(refProc); err != nil {
		t.Fatal(err)
	}
	budget := refProc.VCycles * 2 / 5

	run := func(lazy bool) (*cluster.MigrationResult, string, *kernel.Process) {
		xeon := cluster.NewNode(cluster.XeonSpec)
		pi := cluster.NewNode(cluster.PiSpec)
		xeon.Install("heapy", pair)
		pi.Install("heapy", pair)
		p, err := xeon.Start("heapy")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := xeon.K.RunBudget(p, budget); err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{Lazy: lazy})
		if err != nil {
			t.Fatal(err)
		}
		if err := pi.K.Run(res.Proc); err != nil {
			t.Fatal(err)
		}
		return res, p.ConsoleString() + res.Proc.ConsoleString(), p
	}
	vanilla, outV, _ := run(false)
	lazy, outL, _ := run(true)
	if outV != outL {
		t.Fatalf("outputs differ: %q vs %q", outV, outL)
	}
	if lazy.Breakdown.ImageBytes >= vanilla.Breakdown.ImageBytes {
		t.Errorf("lazy images (%d B) not smaller than vanilla (%d B)",
			lazy.Breakdown.ImageBytes, vanilla.Breakdown.ImageBytes)
	}
	if lazy.Breakdown.Copy >= vanilla.Breakdown.Copy {
		t.Errorf("lazy copy %v not faster than vanilla %v", lazy.Breakdown.Copy, vanilla.Breakdown.Copy)
	}
	if lazy.Source == nil {
		t.Fatal("lazy migration did not keep a page source")
	}
	if lazy.Source.Stats().Requests == 0 {
		t.Error("no pages were served on demand")
	}
}

func TestTimingModelShape(t *testing.T) {
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	// Recode on the Pi must be ~4x slower than on the Xeon for the same
	// images (the paper's 254 ms vs 1005 ms asymmetry).
	rx := cluster.RecodeTime(xeon, 10<<20)
	rp := cluster.RecodeTime(pi, 10<<20)
	ratio := rp.Seconds() / rx.Seconds()
	if ratio < 2 || ratio > 6 {
		t.Errorf("recode ratio pi/xeon = %.2f, want ~2.5x-4x", ratio)
	}
	// Checkpoint and restore stay under ~30ms for typical image sizes.
	if c := cluster.CheckpointTime(20 << 20); c.Milliseconds() > 30 {
		t.Errorf("checkpoint %v too slow for 20 MiB", c)
	}
	if r := cluster.RestoreTime(20<<20, false); r.Milliseconds() > 30 {
		t.Errorf("restore %v too slow for 20 MiB", r)
	}
	// InfiniBand copies ~100 MiB in roughly 300 ms.
	ct := cluster.InfiniBand.TransferTime(100 << 20)
	if ct.Milliseconds() < 150 || ct.Milliseconds() > 600 {
		t.Errorf("IB copy of 100 MiB = %v, want ~300ms", ct)
	}
	// Power model endpoints from the paper.
	if w := cluster.XeonSpec.PowerW(7); w < 100 || w > 115 {
		t.Errorf("Xeon @7 threads = %.1f W, want ~108", w)
	}
	if w := cluster.PiSpec.PowerW(3); w < 4.5 || w > 6 {
		t.Errorf("Pi @3 threads = %.1f W, want ~5.1", w)
	}
}

// TestMigrateWithShuffle chains a stack shuffle into the cross-node
// migration: output must still match, and the destination's binary must
// carry a different frame layout.
func TestMigrateWithShuffle(t *testing.T) {
	xeon, pi, pair := setup(t)
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("work", pair)
	want := nativeOut(t, ref)

	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{Shuffle: true, ShuffleSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsoleString() + res.Proc.ConsoleString(); got != want {
		t.Errorf("shuffled migration output %q, want %q", got, want)
	}
	// The destination provider now serves an instrumented binary whose
	// metadata differs from the original.
	shuffled, err := pi.Binaries.Open(res.Proc.ExePath)
	if err != nil {
		t.Fatal(err)
	}
	if shuffled.Meta == pair.Meta {
		t.Error("destination still serves the unshuffled metadata")
	}
}
