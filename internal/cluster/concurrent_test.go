package cluster_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
)

// The fleet control plane runs many cluster.Migrate calls against the
// same pair of nodes at once (one kernel per node, one process per job).
// These tests pin the thread-safety contract that makes that legal: the
// kernel's process table is the only shared mutable state, migrations of
// distinct processes do not interfere, and per-job obs registries stay
// disjoint. Run with -race.

const pagedSrc = `
var data[4096] int;
var acc int;
func fill() {
	var i int;
	for i = 0; i < 4096; i = i + 1 {
		data[i] = (i % 251) + 1;
	}
}
func bump(i int) {
	acc = acc + data[(i * 7) % 4096];
}
func main() {
	var i int;
	fill();
	for i = 0; i < 5000; i = i + 1 {
		bump(i);
	}
	printi(acc);
}`

// TestConcurrentMigrateSharedNodes runs eight migrations of distinct
// processes through one shared source node and one shared destination
// node concurrently. Every job must produce output identical to the
// native run, identical image bytes (the dump embeds no PIDs, so
// concurrent dumps of identical processes are byte-identical), and a
// private obs registry whose counters reflect exactly one migration —
// proof that per-job telemetry does not bleed across jobs.
func TestConcurrentMigrateSharedNodes(t *testing.T) {
	pair, err := compiler.Compile(pagedSrc)
	if err != nil {
		t.Fatal(err)
	}

	// Native reference: total cycles and output.
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("paged", pair)
	refProc, err := ref.Start("paged")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(refProc); err != nil {
		t.Fatal(err)
	}
	want := refProc.ConsoleString()
	budget := refProc.VCycles * 2 / 5

	// Serial migration reference for the image-size pin.
	serialSrc := cluster.NewNode(cluster.XeonSpec)
	serialDst := cluster.NewNode(cluster.PiSpec)
	serialSrc.Install("paged", pair)
	serialDst.Install("paged", pair)
	sp, err := serialSrc.Start("paged")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serialSrc.K.RunBudget(sp, budget); err != nil {
		t.Fatal(err)
	}
	serialRes, err := cluster.Migrate(serialSrc, serialDst, sp, pair.Meta, cluster.MigrateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := serialDst.K.Run(serialRes.Proc); err != nil {
		t.Fatal(err)
	}
	if got := sp.ConsoleString() + serialRes.Proc.ConsoleString(); got != want {
		t.Fatalf("serial reference migration corrupt: %q != %q", got, want)
	}
	refImageBytes := serialRes.Breakdown.ImageBytes
	if err := serialRes.Close(); err != nil {
		t.Fatal(err)
	}

	// Shared nodes for all concurrent jobs.
	src := cluster.NewNode(cluster.XeonSpec)
	dst := cluster.NewNode(cluster.PiSpec)
	src.Install("paged", pair)
	dst.Install("paged", pair)

	const jobs = 8
	type result struct {
		output     string
		imageBytes uint64
		reg        *obs.Registry
		err        error
	}
	results := make([]result, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reg := obs.New()
			run := func() error {
				p, err := src.Start("paged")
				if err != nil {
					return fmt.Errorf("start: %w", err)
				}
				if _, err := src.K.RunBudget(p, budget); err != nil {
					return fmt.Errorf("run to budget: %w", err)
				}
				res, err := cluster.Migrate(src, dst, p, pair.Meta, cluster.MigrateOpts{Obs: reg})
				if err != nil {
					return fmt.Errorf("migrate: %w", err)
				}
				if err := dst.K.Run(res.Proc); err != nil {
					return fmt.Errorf("run restored: %w", err)
				}
				results[i].output = p.ConsoleString() + res.Proc.ConsoleString()
				results[i].imageBytes = res.Breakdown.ImageBytes
				return res.Close()
			}
			results[i].reg = reg
			results[i].err = run()
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Errorf("job %d: %v", i, r.err)
			continue
		}
		if r.output != want {
			t.Errorf("job %d: output %q, want %q", i, r.output, want)
		}
		if r.imageBytes != refImageBytes {
			t.Errorf("job %d: image bytes %d, want %d (concurrent dump diverged from serial)", i, r.imageBytes, refImageBytes)
		}
		// Non-interference: each registry saw exactly its own migration.
		if got := r.reg.Counter("migrate.count").Value(); got != 1 {
			t.Errorf("job %d: migrate.count = %d in a private registry", i, got)
		}
		if got := r.reg.Counter("dump.count").Value(); got != 1 {
			t.Errorf("job %d: dump.count = %d in a private registry", i, got)
		}
		if got := r.reg.Counter("migrate.image_bytes").Value(); got != refImageBytes {
			t.Errorf("job %d: migrate.image_bytes = %d, want %d", i, got, refImageBytes)
		}
		if i > 0 {
			if a, b := r.reg.Counter("dump.pages_dumped").Value(), results[0].reg.Counter("dump.pages_dumped").Value(); a != b {
				t.Errorf("job %d: dump.pages_dumped = %d, job 0 saw %d (registries interfered)", i, a, b)
			}
		}
	}
}

// TestConcurrentPauseDumpByteIdentical pauses and dumps many identical
// processes concurrently — all on one shared kernel — and requires every
// image directory to marshal byte-for-byte equal to a serial reference
// dump. This is the strongest possible statement that the dump pipeline
// reads only its own process: any cross-process read under concurrency
// would perturb at least one byte.
func TestConcurrentPauseDumpByteIdentical(t *testing.T) {
	pair, err := compiler.Compile(pagedSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("paged", pair)
	refProc, err := ref.Start("paged")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(refProc); err != nil {
		t.Fatal(err)
	}
	budget := refProc.VCycles * 2 / 5

	// Serial reference dump on a private node.
	serial := cluster.NewNode(cluster.XeonSpec)
	serial.Install("paged", pair)
	sp, err := serial.Start("paged")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serial.K.RunBudget(sp, budget); err != nil {
		t.Fatal(err)
	}
	if err := monitor.New(serial.K, sp, pair.Meta).Pause(1 << 22); err != nil {
		t.Fatal(err)
	}
	refDir, err := criu.Dump(sp, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	refBytes := refDir.Marshal()

	// Concurrent pause+dump of distinct processes on one shared node.
	shared := cluster.NewNode(cluster.XeonSpec)
	shared.Install("paged", pair)
	const jobs = 8
	dumps := make([][]byte, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := func() error {
				p, err := shared.Start("paged")
				if err != nil {
					return err
				}
				if _, err := shared.K.RunBudget(p, budget); err != nil {
					return err
				}
				if err := monitor.New(shared.K, p, pair.Meta).Pause(1 << 22); err != nil {
					return err
				}
				dir, err := criu.Dump(p, criu.DumpOpts{})
				if err != nil {
					return err
				}
				dumps[i] = dir.Marshal()
				shared.K.Reap(p)
				return nil
			}
			errs[i] = run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Errorf("job %d: %v", i, errs[i])
			continue
		}
		if !bytes.Equal(dumps[i], refBytes) {
			t.Errorf("job %d: concurrent dump differs from the serial reference (%d vs %d bytes)", i, len(dumps[i]), len(refBytes))
		}
	}
}
