package cluster_test

import (
	"strings"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/obs"
)

// heapSetup compiles heapSrc (transport_fail_test.go), measures its
// native cycle count, and
// returns a fresh xeon/pi pair with a source process run to the given
// fraction (tenths) of the native run.
func heapSetup(t *testing.T, tenths uint64) (*cluster.Node, *cluster.Node, *compiler.Pair, *kernelProc) {
	t.Helper()
	pair, err := compiler.Compile(heapSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("heapy", pair)
	rp, err := ref.Start("heapy")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(rp); err != nil {
		t.Fatal(err)
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("heapy", pair)
	pi.Install("heapy", pair)
	p, err := xeon.Start("heapy")
	if err != nil {
		t.Fatal(err)
	}
	alive, err := xeon.K.RunBudget(p, rp.VCycles*tenths/10)
	if err != nil {
		t.Fatal(err)
	}
	if !alive {
		t.Fatal("finished before the checkpoint point")
	}
	return xeon, pi, pair, &kernelProc{p: p, native: rp.VCycles}
}

// kernelProc bundles the source process with the measured native cycles
// (for deriving round budgets).
type kernelProc struct {
	p      *kernel.Process
	native uint64
}

// --- TakeWait (the busy-poll replacement) ---

func tinyImageDir() *criu.ImageDir {
	d := criu.NewImageDir()
	d.Put("blob.img", []byte("takewait test payload"))
	return d
}

// TestTakeWaitDelivers: a blocked TakeWait must wake promptly when an
// image arrives — channel-notified, not deadline-polled.
func TestTakeWaitDelivers(t *testing.T) {
	recv, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	go func() {
		time.Sleep(30 * time.Millisecond)
		if _, err := cluster.SendImages(recv.Addr(), tinyImageDir()); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	start := time.Now()
	d, err := recv.TakeWait(10 * time.Second)
	if err != nil {
		t.Fatalf("TakeWait: %v", err)
	}
	if d == nil {
		t.Fatal("TakeWait returned nil directory without error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("TakeWait took %v; the arrival notification is not waking the waiter", elapsed)
	}
}

// TestTakeWaitTimeout: with no sender, TakeWait fails at its deadline
// with a diagnosable error.
func TestTakeWaitTimeout(t *testing.T) {
	recv, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	start := time.Now()
	_, err = recv.TakeWait(50 * time.Millisecond)
	if err == nil {
		t.Fatal("TakeWait returned without an image or an error")
	}
	if !strings.Contains(err.Error(), "within") {
		t.Errorf("timeout error %q does not name the deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout after %v for a 50ms deadline", elapsed)
	}
}

// TestTakeWaitClosed: closing the receiver fails blocked waiters fast
// instead of letting them run out their timeout.
func TestTakeWaitClosed(t *testing.T) {
	recv, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		recv.Close()
	}()
	start := time.Now()
	_, err = recv.TakeWait(10 * time.Second)
	if err == nil {
		t.Fatal("TakeWait succeeded on a closed receiver")
	}
	if !strings.Contains(err.Error(), "closed") {
		t.Errorf("close error %q does not say the receiver closed", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("waiter took %v to observe Close", elapsed)
	}
}

// --- downtime determinism (the accounting regression) ---

// TestPreCopyDowntimeDeterministic: downtime is computed from modeled
// phases only, so the identical migration — same program, same budget,
// same rounds, even over real TCP — must report the identical downtime
// on every run. Host wall-clock noise leaking into the sum breaks this.
func TestPreCopyDowntimeDeterministic(t *testing.T) {
	run := func() cluster.Breakdown {
		xeon, pi, pair, kp := heapSetup(t, 4)
		res, err := cluster.Migrate(xeon, pi, kp.p, pair.Meta, cluster.MigrateOpts{
			PreCopy: &cluster.PreCopyOpts{RoundBudget: kp.native/20 + 1, TCP: true},
		})
		if err != nil {
			t.Fatalf("pre-copy migrate: %v", err)
		}
		if err := pi.K.Run(res.Proc); err != nil {
			t.Fatal(err)
		}
		return res.Breakdown
	}
	a, b := run(), run()
	if a.Downtime != b.Downtime {
		t.Errorf("downtime differs across identical runs: %v vs %v", a.Downtime, b.Downtime)
	}
	if a.MigrationTime() != b.MigrationTime() {
		t.Errorf("migration time differs across identical runs: %v vs %v", a.MigrationTime(), b.MigrationTime())
	}
	if a.Downtime != a.Checkpoint+a.Recode+a.Copy+a.Restore {
		t.Errorf("downtime %v is not the sum of its modeled phases", a.Downtime)
	}
}

// --- end-to-end obs reports ---

// childSum adds up the durations of a span's direct children.
func childSum(rep *obs.Report, id uint64) time.Duration {
	var sum time.Duration
	for _, ev := range rep.Children(id) {
		sum += ev.Dur()
	}
	return sum
}

// TestMigrateLazyObsReport: a lazy TCP migration with a registry attached
// must produce the complete report the issue demands — a span tree
// covering the migration time, a populated fault-latency histogram, and
// counters that agree with PageStats and the Breakdown.
func TestMigrateLazyObsReport(t *testing.T) {
	xeon, pi, pair, kp := heapSetup(t, 4)
	reg := obs.New()
	res, err := cluster.Migrate(xeon, pi, kp.p, pair.Meta, cluster.MigrateOpts{
		Lazy: true, LazyTCP: true, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
	res.FinalizeLazyStats()
	bd := res.Breakdown
	rep := reg.Report()

	// Span tree: the root covers the whole migration and its children
	// account for at least 95% of it (here: exactly 100% by construction).
	root, ok := rep.Span("migration")
	if !ok {
		t.Fatal("no migration span recorded")
	}
	if root.Dur() != bd.MigrationTime() {
		t.Errorf("migration span %v != MigrationTime %v", root.Dur(), bd.MigrationTime())
	}
	if cov := childSum(rep, root.ID); cov < root.Dur()*95/100 {
		t.Errorf("span children cover %v of %v (< 95%%)", cov, root.Dur())
	}
	dt, ok := rep.Span("downtime")
	if !ok {
		t.Fatal("no downtime span recorded")
	}
	if dt.Dur() != bd.Downtime {
		t.Errorf("downtime span %v != Breakdown.Downtime %v", dt.Dur(), bd.Downtime)
	}
	if sum := childSum(rep, dt.ID); sum != dt.Dur() {
		t.Errorf("downtime children sum %v != downtime %v", sum, dt.Dur())
	}

	// Fault-service latency: every post-restore fault went over TCP, so
	// the histogram is populated with real non-zero latencies.
	h, ok := rep.Histograms["fault.service_ns"]
	if !ok || h.Count == 0 {
		t.Fatal("fault.service_ns histogram empty after lazy migration")
	}
	if h.P50Ns == 0 || h.P95Ns == 0 || h.P99Ns == 0 {
		t.Errorf("fault latency percentiles zero: p50=%d p95=%d p99=%d", h.P50Ns, h.P95Ns, h.P99Ns)
	}

	// Counters agree with the established accessors.
	if got, want := rep.Counters["fault.fetches"], h.Count; got != want {
		t.Errorf("fault.fetches = %d, want %d (histogram count)", got, want)
	}
	if got, want := rep.Counters["pageserver.requests"], res.PageStats().Requests; got != want {
		t.Errorf("pageserver.requests = %d, PageStats().Requests = %d", got, want)
	}
	if got, want := rep.Counters["migrate.image_bytes"], bd.ImageBytes; got != want {
		t.Errorf("migrate.image_bytes = %d, Breakdown.ImageBytes = %d", got, want)
	}
	if got := rep.Counters["dump.count"]; got != 1 {
		t.Errorf("dump.count = %d, want 1", got)
	}
	if got := rep.Counters["monitor.pauses"]; got != 1 {
		t.Errorf("monitor.pauses = %d, want 1", got)
	}
	if rep.Counters["dump.pages_lazy"] == 0 {
		t.Error("dump.pages_lazy = 0 for a lazy dump")
	}
}

// TestMigratePreCopyObsReport: the pre-copy span tree must show the
// overlapped rounds and the final interruption, summing exactly to the
// migration time, with counters matching the Breakdown.
func TestMigratePreCopyObsReport(t *testing.T) {
	xeon, pi, pair, kp := heapSetup(t, 4)
	reg := obs.New()
	res, err := cluster.Migrate(xeon, pi, kp.p, pair.Meta, cluster.MigrateOpts{
		PreCopy: &cluster.PreCopyOpts{RoundBudget: kp.native/20 + 1, TCP: true},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("pre-copy migrate: %v", err)
	}
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown
	if bd.Rounds < 2 {
		t.Fatalf("converged in %d round(s); the heap workload should need iteration", bd.Rounds)
	}
	rep := reg.Report()

	root, ok := rep.Span("migration")
	if !ok {
		t.Fatal("no migration span recorded")
	}
	if root.Dur() != bd.MigrationTime() {
		t.Errorf("migration span %v != MigrationTime %v", root.Dur(), bd.MigrationTime())
	}
	if got := rep.SpanDur("precopy") + rep.SpanDur("downtime"); got != root.Dur() {
		t.Errorf("precopy %v + downtime %v != migration %v",
			rep.SpanDur("precopy"), rep.SpanDur("downtime"), root.Dur())
	}
	if rep.SpanDur("precopy") != bd.PreCopyTime {
		t.Errorf("precopy span %v != Breakdown.PreCopyTime %v", rep.SpanDur("precopy"), bd.PreCopyTime)
	}
	if rep.SpanDur("downtime") != bd.Downtime {
		t.Errorf("downtime span %v != Breakdown.Downtime %v", rep.SpanDur("downtime"), bd.Downtime)
	}
	pcSpan, _ := rep.Span("precopy")
	rounds := rep.Children(pcSpan.ID)
	if len(rounds) != bd.Rounds-1 {
		t.Errorf("%d round spans for %d rounds (final round belongs to downtime)", len(rounds), bd.Rounds)
	}
	for _, rs := range rounds {
		if sum := childSum(rep, rs.ID); sum != rs.Dur() {
			t.Errorf("round span %q children sum %v != span %v", rs.Name, sum, rs.Dur())
		}
	}
	if sum := childSum(rep, pcSpan.ID); sum != pcSpan.Dur() {
		t.Errorf("precopy children sum %v != precopy span %v", sum, pcSpan.Dur())
	}

	if got, want := rep.Counters["precopy.rounds"], uint64(bd.Rounds); got != want {
		t.Errorf("precopy.rounds = %d, Breakdown.Rounds = %d", got, want)
	}
	if got, want := rep.Counters["precopy.bytes"], bd.PreCopyBytes; got != want {
		t.Errorf("precopy.bytes = %d, Breakdown.PreCopyBytes = %d", got, want)
	}
	if got, want := rep.Counters["migrate.image_bytes"], bd.ImageBytes; got != want {
		t.Errorf("migrate.image_bytes = %d, Breakdown.ImageBytes = %d", got, want)
	}
	if got, want := rep.Counters["dump.count"], uint64(bd.Rounds); got != want {
		t.Errorf("dump.count = %d, want %d (one per round)", got, want)
	}
	if got, want := rep.Counters["monitor.pauses"], uint64(bd.Rounds); got != want {
		t.Errorf("monitor.pauses = %d, want %d (one per round)", got, want)
	}
}
