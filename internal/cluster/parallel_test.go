package cluster_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/obs"
)

// dupWorkSrc prefixes the compute loop with a fill that leaves the big
// array full of byte-identical 4K pages (the pattern repeats every 512
// ints = one page), so a dedup-aware dump has real savings to find.
const dupWorkSrc = `
var data[8192] int;
func fill() {
	var i int;
	for i = 0; i < 8192; i = i + 1 {
		data[i] = (i % 512) + 3;
	}
}
func crunch(n int) int {
	var acc int;
	var i int;
	for i = 0; i < n; i = i + 1 {
		acc = acc + i * i % 1013;
	}
	return acc;
}
func main() {
	var r int;
	var total int;
	fill();
	for r = 0; r < 30; r = r + 1 {
		total = total + crunch(500);
	}
	total = total + data[5000];
	printi(total);
	print("\n");
}`

func setupDup(t *testing.T) (*cluster.Node, *cluster.Node, *compiler.Pair) {
	t.Helper()
	pair, err := compiler.Compile(dupWorkSrc)
	if err != nil {
		t.Fatal(err)
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("work", pair)
	pi.Install("work", pair)
	return xeon, pi, pair
}

// TestMigrateParallelDedupIdentity runs the full migration pipeline with
// every parallel stage fanned out and dedup enabled — the tentpole
// configuration — and checks three things: the migrated run's output is
// identical to native, the modeled breakdown is identical to the serial
// pipeline's (parallelism must never leak into modeled time), and the
// dedup counters actually fired.
func TestMigrateParallelDedupIdentity(t *testing.T) {
	ref := func() string {
		xeon, _, _ := setupDup(t)
		return nativeOut(t, xeon)
	}()

	run := func(workers int, dedup, shuffle bool) (string, cluster.Breakdown, *obs.Registry) {
		xeon, pi, pair := setupDup(t)
		p, err := xeon.Start("work")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := xeon.K.RunBudget(p, 300_000); err != nil {
			t.Fatal(err)
		}
		reg := obs.New()
		res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{
			Workers: workers, Dedup: dedup, Shuffle: shuffle, Obs: reg,
		})
		if err != nil {
			t.Fatalf("workers=%d dedup=%v: %v", workers, dedup, err)
		}
		if err := pi.K.Run(res.Proc); err != nil {
			t.Fatal(err)
		}
		return p.ConsoleString() + res.Proc.ConsoleString(), res.Breakdown, reg
	}

	serialOut, serialBD, _ := run(1, true, false)
	parOut, parBD, reg := run(8, true, false)
	if serialOut != ref || parOut != ref {
		t.Fatalf("migrated output differs from native %q:\nserial %q\nparallel %q", ref, serialOut, parOut)
	}
	if serialBD.Downtime != parBD.Downtime {
		t.Errorf("modeled downtime depends on worker count: serial %v vs parallel %v",
			serialBD.Downtime, parBD.Downtime)
	}
	if reg.Counter("dedup.pages_elided").Value() == 0 {
		t.Error("parallel dedup migration elided no pages")
	}
	if reg.Counter("dedup.bytes_saved").Value() == 0 {
		t.Error("parallel dedup migration saved no bytes")
	}
	if reg.Counter("dump.shards").Value() == 0 {
		t.Error("parallel dump recorded no shards")
	}

	// The shuffle policy chains a second rewrite over the same cores; the
	// overlap shipper must still produce a restorable image.
	shufOut, _, _ := run(8, true, true)
	if shufOut != ref {
		t.Errorf("parallel shuffled migration output %q, want %q", shufOut, ref)
	}
}

// TestPreCopyParallelDedup exercises the iterative pre-copy path with
// workers and dedup on: every round's dump, verify, and rewrite runs
// through the parallel pipeline, and the result must still match native.
func TestPreCopyParallelDedup(t *testing.T) {
	xeon, pi, pair := setup(t)
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("work", pair)
	want := nativeOut(t, ref)

	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{
		Workers: 8, Dedup: true,
		PreCopy: &cluster.PreCopyOpts{RoundBudget: 50_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsoleString() + res.Proc.ConsoleString(); got != want {
		t.Errorf("pre-copy parallel output %q, want %q", got, want)
	}
}
