package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// Pre-copy migration: the third restoration mode next to vanilla and
// post-copy. The process keeps running while its memory is shipped in
// iterative rounds — a full incremental-capable dump first, then only the
// pages dirtied since the previous round (soft-dirty tracking + in_parent
// images) — and pauses only for the final small delta. The destination
// flattens the received chain, recodes it, and restores; downtime shrinks
// from "copy everything" to "copy the last round's working set".

// Pre-copy defaults; see PreCopyOpts.
const (
	defaultPreCopyRounds  = 4
	defaultStopPages      = 16
	defaultDowntimeTarget = 5 * time.Millisecond
	defaultRoundBudget    = 1 << 20
	// quiesceSlices bounds RunUntilIdle: the source must block within this
	// many budget slices per round.
	quiesceSlices = 64
)

// PreCopyOpts tunes iterative pre-copy migration (MigrateOpts.PreCopy).
type PreCopyOpts struct {
	// MaxRounds bounds the total number of checkpoints, including the
	// final stop-and-copy delta (default 4).
	MaxRounds int
	// StopPages converges when a round's delta carries at most this many
	// data pages (default 16).
	StopPages int
	// DowntimeTarget is the bandwidth-aware stop rule: when the link could
	// ship the current delta within this duration, pre-copying further
	// rounds cannot improve downtime, so stop (default 5ms).
	DowntimeTarget time.Duration
	// RoundBudget is the guest-cycle budget the source runs for between
	// rounds (default 1Mi cycles).
	RoundBudget uint64
	// RunUntilIdle keeps running budget slices between rounds until the
	// source blocks with its input drained — required for servers, whose
	// input queue is not part of the checkpoint: a pause with requests
	// still queued would lose them.
	RunUntilIdle bool
	// BetweenRounds, if set, is called after each resume (before the
	// between-round run) — the hook experiments use to keep traffic
	// arriving at the source while rounds are in flight.
	BetweenRounds func(p *kernel.Process, round int)
	// TCP ships each round's images over the real ImageReceiver transport
	// instead of in-process marshaling.
	TCP bool
	// ShipTimeout bounds the wait for each TCP-shipped round to arrive at
	// the receiver. Zero derives the bound from the link model: 20× the
	// modeled transfer time of the payload, floored at 2s, so a slow
	// modeled link never races the real transport.
	ShipTimeout time.Duration
}

func (pc PreCopyOpts) withDefaults() PreCopyOpts {
	if pc.MaxRounds <= 0 {
		pc.MaxRounds = defaultPreCopyRounds
	}
	if pc.StopPages <= 0 {
		pc.StopPages = defaultStopPages
	}
	if pc.DowntimeTarget <= 0 {
		pc.DowntimeTarget = defaultDowntimeTarget
	}
	if pc.RoundBudget == 0 {
		pc.RoundBudget = defaultRoundBudget
	}
	return pc
}

// migratePreCopy is the iterative path behind MigrateOpts.PreCopy.
func migratePreCopy(src, dst *Node, p *kernel.Process, meta *stackmap.Metadata, opts MigrateOpts, link *Link, recodeNode *Node) (*MigrationResult, error) {
	pc := opts.PreCopy.withDefaults()
	reg := opts.Obs
	var bd Breakdown
	mon := monitor.New(src.K, p, meta).WithObs(reg)

	var recv *ImageReceiver
	if pc.TCP {
		r, err := ListenImages("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: pre-copy: %w", err)
		}
		recv = r
		// Teardown after the chain is flattened and restored: at that
		// point a receiver close failure cannot lose migration data.
		defer func() { _ = recv.Close() }()
	}
	// ship moves one round's images to the destination and returns the
	// directory as the destination sees it plus the marshaled (raw) and
	// on-wire payload sizes. With a batch codec the in-process path
	// round-trips the real stream encoder, so both paths report the same
	// wire figure for the same images.
	ship := func(dir *criu.ImageDir) (*criu.ImageDir, uint64, uint64, error) {
		if !pc.TCP {
			blob := dir.Marshal()
			raw := uint64(len(blob))
			if opts.Codec.Batched() {
				var buf bytes.Buffer
				wire, err := writeImageStream(&buf, blob, opts.Codec, 0, reg)
				if err != nil {
					return nil, 0, 0, fmt.Errorf("cluster: pre-copy encode: %w", err)
				}
				d2, err := readImageDirFrom(&buf)
				return d2, raw, wire, err
			}
			d2, err := criu.UnmarshalImageDir(blob)
			return d2, raw, raw, err
		}
		raw, wire, err := SendImagesOpts(recv.Addr(), dir, SendOpts{
			Codec: opts.Codec, Timeout: pc.ShipTimeout, Link: link, Obs: reg,
		})
		if err != nil {
			return nil, 0, 0, fmt.Errorf("cluster: pre-copy send: %w", err)
		}
		timeout := pc.ShipTimeout
		if timeout <= 0 {
			timeout = 20 * link.TransferTime(wire)
			if timeout < 2*time.Second {
				timeout = 2 * time.Second
			}
		}
		d, err := recv.TakeWait(timeout)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("cluster: pre-copy: %w", err)
		}
		return d, raw, wire, nil
	}

	var chain []*criu.ImageDir // destination-side copies, oldest first
	var parent *criu.ImageDir  // source-side previous dump
	// base is the chain's resolved page content (Delta mode): what each
	// round's re-dirtied pages are XOR-encoded against, advanced with
	// every dump.
	var base *criu.PageSet
	var finalBytes uint64
	var rawBytes uint64
	// Per-round modeled costs for non-final rounds, so the span tree can
	// show each overlapped round as its own phase.
	type roundCost struct{ ck, xfer, recode time.Duration }
	var roundCosts []roundCost
	prevPages := -1
	idle := false
	for round := 0; ; round++ {
		if err := mon.Pause(opts.MaxPauses); err != nil {
			return nil, fmt.Errorf("cluster: pre-copy pause (round %d): %w", round, err)
		}
		dopts := criu.DumpOpts{Parent: parent, TrackMem: true, Obs: reg, Workers: opts.Workers, Dedup: opts.Dedup}
		if opts.Delta && parent != nil {
			dopts.DeltaBase = base
		}
		dir, err := criu.Dump(p, dopts)
		if err != nil {
			return nil, fmt.Errorf("cluster: pre-copy dump (round %d): %w", round, err)
		}
		if opts.Delta {
			// Fold this round into the resolved chain content so the next
			// round's deltas encode against it.
			if base, err = criu.AdvanceBase(base, dir); err != nil {
				return nil, fmt.Errorf("cluster: pre-copy delta base (round %d): %w", round, err)
			}
		}
		dataPages := criu.DumpedPages(dir)
		got, rawN, n, err := ship(dir)
		if err != nil {
			return nil, err
		}
		rawBytes += rawN
		// Each received link is verified on arrival, so a checkpoint
		// corrupted in transit fails this round — with the invariant named
		// — instead of poisoning the flatten after the final pause.
		if err := imgcheck.VerifyLinkWith(got, imgcheck.Opts{Workers: opts.Workers}); err != nil {
			return nil, fmt.Errorf("cluster: pre-copy round %d received a broken image set: %w", round, err)
		}
		chain = append(chain, got)
		parent = dir
		bd.RoundBytes = append(bd.RoundBytes, n)
		ck := CheckpointTime(dir.Size())
		xfer := link.TransferTime(n)

		// Convergence: the first round always pre-copies (unless MaxRounds
		// forbids more); afterwards stop when the delta is small enough,
		// cheap enough to ship within the downtime target, no longer
		// shrinking, or the source has quiesced.
		final := round+1 >= pc.MaxRounds || idle
		if round >= 1 && !final {
			final = dataPages <= pc.StopPages ||
				link.TransferTime(uint64(dataPages)*mem.PageSize) <= pc.DowntimeTarget ||
				(prevPages >= 0 && dataPages >= prevPages)
		}
		prevPages = dataPages
		if final {
			bd.Checkpoint = ck
			bd.Copy = xfer
			bd.Rounds = round + 1
			finalBytes = n
			break
		}
		// Not converged: this round's cost overlaps with execution.
		rc := roundCost{ck: ck, xfer: xfer, recode: RecodePagesTime(recodeNode, n)}
		roundCosts = append(roundCosts, rc)
		bd.PreCopyTime += rc.ck + rc.xfer + rc.recode
		bd.PreCopyBytes += n
		if err := mon.ResumeLocal(); err != nil {
			return nil, fmt.Errorf("cluster: pre-copy resume (round %d): %w", round, err)
		}
		if pc.BetweenRounds != nil {
			pc.BetweenRounds(p, round)
		}
		slices := 1
		if pc.RunUntilIdle {
			slices = quiesceSlices
		}
		for i := 0; i < slices; i++ {
			alive, err := src.K.RunBudget(p, pc.RoundBudget)
			if err != nil {
				if errors.Is(err, kernel.ErrDeadlock) {
					// Blocked with input drained: nothing left to dirty.
					if pc.BetweenRounds == nil {
						idle = true
					}
					break
				}
				return nil, fmt.Errorf("cluster: pre-copy run (round %d): %w", round, err)
			}
			if !alive {
				return nil, fmt.Errorf("cluster: pre-copy: process exited during round %d", round)
			}
			if !pc.RunUntilIdle {
				break
			}
			if i == slices-1 {
				return nil, fmt.Errorf("cluster: pre-copy: source did not quiesce in round %d", round)
			}
		}
	}

	// Final delta in hand and the source still paused: verify the chain
	// end to end (in_parent resolvability, acyclicity), then flatten it
	// on the destination, recode, restore.
	if err := imgcheck.VerifyChainWith(chain, imgcheck.Opts{Workers: opts.Workers}); err != nil {
		return nil, fmt.Errorf("cluster: pre-copy chain: %w", err)
	}
	flat, err := criu.FlattenChain(chain)
	if err != nil {
		return nil, fmt.Errorf("cluster: pre-copy flatten: %w", err)
	}
	//lint:ignore wallclock RecodeHost is real host time by definition, reported separately and never part of modeled downtime
	hostStart := time.Now()
	if err := rewriteForDest(flat, src, dst, opts, nil); err != nil {
		return nil, err
	}
	//lint:ignore wallclock RecodeHost is real host time by definition, reported separately and never part of modeled downtime
	bd.RecodeHost = time.Since(hostStart)
	// Earlier rounds were recoded as they streamed in (PreCopyTime); the
	// pause pays the per-image stack rewrite plus the final delta's pages.
	bd.Recode = RecodeTime(recodeNode, finalBytes)
	p2, err := criu.RestoreWith(dst.K, flat, dst.Binaries, criu.RestoreOpts{Workers: opts.Workers, Obs: opts.Obs})
	if err != nil {
		return nil, fmt.Errorf("cluster: pre-copy restore: %w", err)
	}
	bd.Restore = RestoreTime(flat.Size(), false)
	// Downtime is the final stop-and-copy interruption, composed of the
	// MODELED phases only (checkpoint + recode + copy + restore). Host
	// wall-clock costs — the Go rewriter (RecodeHost), TCP shipping, test
	// scheduling — must never leak in here: the same migration replayed
	// twice reports the identical downtime (the determinism regression
	// test pins this).
	bd.Downtime = bd.Checkpoint + bd.Recode + bd.Copy + bd.Restore
	// ImageBytes is the marshaled total; WireBytes is what the codec
	// actually put on the link (RoundBytes holds the per-round figures).
	bd.ImageBytes = rawBytes
	bd.WireBytes = bd.PreCopyBytes + finalBytes

	// Span tree: precopy rounds overlap execution; downtime is the final
	// interruption. Parents finish with the exact sum of their children,
	// so MigrationTime is covered completely.
	root := reg.NewSpan("migration")
	pcSpan := root.Child("precopy")
	for i, rc := range roundCosts {
		rs := pcSpan.Child(fmt.Sprintf("round%d", i))
		rs.Child("checkpoint").Finish(rc.ck)
		rs.Child("copy").Finish(rc.xfer)
		rs.Child("recode").Finish(rc.recode)
		rs.Finish(rc.ck + rc.xfer + rc.recode)
	}
	pcSpan.Finish(bd.PreCopyTime)
	dt := root.Child("downtime")
	dt.Child("checkpoint").Finish(bd.Checkpoint)
	dt.Child("recode").Finish(bd.Recode)
	dt.Child("copy").Finish(bd.Copy)
	dt.Child("restore").Finish(bd.Restore)
	dt.Finish(bd.Downtime)
	root.Finish(bd.MigrationTime())
	reg.Counter("migrate.count").Inc()
	reg.Counter("migrate.image_bytes").Add(bd.ImageBytes)
	reg.Counter("precopy.rounds").Add(uint64(bd.Rounds))
	reg.Counter("precopy.bytes").Add(bd.PreCopyBytes)
	reg.Counter("precopy.chain_depth").Add(uint64(len(chain)))
	reg.Histogram("recode.host_ns").Observe(bd.RecodeHost)

	res := &MigrationResult{Proc: p2, Breakdown: bd, srcKernel: src.K, srcProc: p, dstKernel: dst.K}
	// Everything lives on the destination now; nothing faults back.
	src.K.Reap(p)
	return res, nil
}
