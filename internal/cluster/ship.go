package cluster

import (
	"sync"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/parallel"
)

// shipper overlaps transfer framing with the rewrite stage: rewrite
// workers hand it each finalized core image (via core.Context.OnFile)
// and it pre-builds the wire frame for that file while other threads
// are still rewriting. marshal then splices pre-built frames into the
// transfer blob and frames only the files that changed after their
// OnFile call (or never had one) — producing output byte-identical to
// ImageDir.Marshal, which is the FrameFile concatenation contract.
type shipper struct {
	mu     sync.Mutex
	frames map[string]shipFrame
}

// shipFrame is one pre-built wire frame plus the exact marshaled bytes
// it was built from, kept for the freshness check in marshal.
type shipFrame struct {
	src   []byte
	frame []byte
}

func newShipper() *shipper {
	return &shipper{frames: make(map[string]shipFrame)}
}

// OnFile records a finalized image file and pre-frames it. Safe for
// concurrent calls; a later call for the same name wins (a policy chain
// may rewrite the same core twice, e.g. cross-ISA then shuffle).
func (s *shipper) OnFile(name string, data []byte) {
	frame := criu.FrameFile(name, data)
	s.mu.Lock()
	s.frames[name] = shipFrame{src: data, frame: frame}
	s.mu.Unlock()
}

// sameBytes reports whether a and b are the same byte slice (identical
// backing array and length), which proves a pre-built frame was built
// from exactly the bytes the directory now holds.
func sameBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// marshal flattens dir for transfer, reusing pre-built frames when they
// are provably fresh and framing the rest over the worker pool. The
// result is byte-identical to dir.Marshal() for every worker count and
// every pattern of OnFile calls.
func (s *shipper) marshal(dir *criu.ImageDir, workers int) []byte {
	names := dir.Names()
	frames := make([][]byte, len(names))
	_ = parallel.New(workers).ForEach(len(names), func(i int) error {
		data, _ := dir.Get(names[i])
		s.mu.Lock()
		f, ok := s.frames[names[i]]
		s.mu.Unlock()
		if ok && sameBytes(f.src, data) {
			frames[i] = f.frame
			return nil
		}
		frames[i] = criu.FrameFile(names[i], data)
		return nil
	})
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	blob := make([]byte, 0, total)
	for _, f := range frames {
		blob = append(blob, f...)
	}
	// The frames are spent: a shipper reused across pre-copy rounds must
	// not retain every round's pre-built frames — the freshness check
	// would reject the stale ones anyway, so keeping them only pins each
	// round's rewritten images in memory for the rest of the migration.
	s.mu.Lock()
	clear(s.frames)
	s.mu.Unlock()
	return blob
}
