package cluster

import (
	"bytes"
	"testing"

	"github.com/dapper-sim/dapper/internal/criu"
)

// TestShipperMarshalIdentity pins the overlap transfer contract: the
// shipper's output is byte-identical to ImageDir.Marshal for any worker
// count, pre-framed blobs are reused only while they still back the
// directory entry (slice identity), and stale pre-frames are silently
// re-framed from the directory.
func TestShipperMarshalIdentity(t *testing.T) {
	dir := criu.NewImageDir()
	dir.Put("core-1.img", []byte{1, 2, 3})
	dir.Put("mm.img", bytes.Repeat([]byte{0x5A}, 4096))
	dir.Put("pages.img", bytes.Repeat([]byte{7}, 3*4096))
	dir.Put("empty.img", []byte{})
	want := dir.Marshal()

	sh := newShipper()
	// Fresh pre-frame: the exact slice the directory holds.
	core, _ := dir.Get("core-1.img")
	sh.OnFile("core-1.img", core)
	// Stale pre-frame: equal bytes but a different backing array, as if
	// the entry was overwritten after the hook fired.
	mm, _ := dir.Get("mm.img")
	sh.OnFile("mm.img", append([]byte(nil), mm...))
	// A pre-frame for a file that is no longer in the directory at all.
	sh.OnFile("gone.img", []byte{9, 9})

	for _, workers := range []int{1, 2, 8} {
		got := sh.marshal(dir, workers)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: shipper output differs from dir.Marshal (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
	// Last-wins: a second OnFile for the same name replaces the first
	// (the shuffle-after-crossISA rewrite chain), and the result still
	// matches the directory.
	sh.OnFile("core-1.img", append([]byte(nil), core...))
	sh.OnFile("core-1.img", core)
	if got := sh.marshal(dir, 4); !bytes.Equal(got, want) {
		t.Error("last-wins pre-frame broke marshal identity")
	}
}
