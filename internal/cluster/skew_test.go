package cluster_test

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
)

// TestMigrateRefusesVersionSkew: if the binary registered at the image's
// exe path is not the build the process is actually running (a stale or
// mismatched deployment), Migrate must refuse on the source side — the
// updatecheck pass-3 pre-flight after recode — before any bytes ship.
func TestMigrateRefusesVersionSkew(t *testing.T) {
	// Same-arch migration: the recode stage is a no-op, so the pre-flight
	// is the only line of defense on the source side.
	xeon, _, pair := setup(t)
	xeon2 := cluster.NewNode(cluster.XeonSpec)
	xeon2.Install("work", pair)
	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	// Silently swap the deployed binary for a different build: the classic
	// version-skew deployment bug.
	skew, err := compiler.Compile(`func main() { printi(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	for path := range xeon.Binaries {
		xeon.Binaries.Register(path, skew.ByArch(xeon.Binaries[path].Arch))
	}
	_, err = cluster.Migrate(xeon, xeon2, p, pair.Meta, cluster.MigrateOpts{})
	if err == nil {
		t.Fatal("migration shipped a version-skewed image")
	}
	if !strings.Contains(err.Error(), "version skew") || !strings.Contains(err.Error(), "recode pre-flight") {
		t.Errorf("want the recode pre-flight's version-skew error, got: %v", err)
	}
}
