package cluster_test

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// migrateOnce builds a fresh source pair, runs the program to the usual
// migration point, and migrates with the given options, returning the
// result and the restored-but-not-yet-run process's memory fingerprint.
func migrateOnce(t *testing.T, pair *compiler.Pair, meta *stackmap.Metadata, opts cluster.MigrateOpts) (*cluster.MigrationResult, []byte, string) {
	t.Helper()
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("work", pair)
	pi.Install("work", pair)
	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(xeon, pi, p, meta, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := pageFingerprint(res.Proc.AS)
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
	return res, snap, p.ConsoleString() + res.Proc.ConsoleString()
}

func pageFingerprint(as *mem.AddressSpace) []byte {
	idxs := as.PopulatedPages()
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var buf bytes.Buffer
	for _, idx := range idxs {
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], idx)
		buf.Write(hdr[:])
		data, _ := as.PageData(idx)
		buf.Write(data)
	}
	return buf.Bytes()
}

// TestStreamRestoreMigration: the streamed pipeline must produce the
// identical program state and output as the classic transfer, while its
// modeled downtime drops the shorter of copy/restore from the sum.
func TestStreamRestoreMigration(t *testing.T) {
	pair, err := compiler.Compile(workSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("work", pair)
	want := nativeOut(t, ref)

	plain, plainSnap, plainOut := migrateOnce(t, pair, pair.Meta, cluster.MigrateOpts{Codec: criu.CodecFlate})
	streamed, streamSnap, streamOut := migrateOnce(t, pair, pair.Meta, cluster.MigrateOpts{Codec: criu.CodecFlate, StreamRestore: true, Workers: 4})

	if streamOut != want {
		t.Errorf("streamed output %q, want %q", streamOut, want)
	}
	if plainOut != want {
		t.Errorf("plain output %q, want %q", plainOut, want)
	}
	if !bytes.Equal(streamSnap, plainSnap) {
		t.Error("streamed restore landed a different memory image than the classic transfer")
	}

	sb, pb := streamed.Breakdown, plain.Breakdown
	over := cluster.OverlappedCopyRestore(sb.Copy, sb.Restore)
	if sb.Downtime != sb.Checkpoint+sb.Recode+over {
		t.Errorf("streamed downtime %v != checkpoint %v + recode %v + max(copy, restore) %v",
			sb.Downtime, sb.Checkpoint, sb.Recode, over)
	}
	if sb.Downtime >= pb.Downtime {
		t.Errorf("streamed downtime %v did not beat serial %v", sb.Downtime, pb.Downtime)
	}
	if sb.StreamSegments < 1 || sb.StreamBatches < 1 {
		t.Errorf("pipeline stats: segments=%d batches=%d, want both >= 1", sb.StreamSegments, sb.StreamBatches)
	}
	if pb.StreamSegments != 0 || pb.StreamBatches != 0 {
		t.Errorf("non-streamed migration reports stream stats: %d/%d", pb.StreamSegments, pb.StreamBatches)
	}
}

// TestStreamRestoreSpanTree: the downtime span's children must still sum
// exactly to its duration, with copy and restore grouped under the
// overlapped xfer_restore stage.
func TestStreamRestoreSpanTree(t *testing.T) {
	pair, err := compiler.Compile(workSrc)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	res, _, _ := migrateOnce(t, pair, pair.Meta, cluster.MigrateOpts{
		Codec: criu.CodecFlate, StreamRestore: true, Obs: reg,
	})
	bd := res.Breakdown
	rep := reg.Report()
	dt, ok := rep.Span("downtime")
	if !ok {
		t.Fatal("no downtime span")
	}
	if dt.Dur() != bd.Downtime {
		t.Errorf("downtime span %v != breakdown %v", dt.Dur(), bd.Downtime)
	}
	var sum time.Duration
	var xfer *obs.SpanEvent
	for _, c := range rep.Children(dt.ID) {
		sum += c.Dur()
		if c.Name == "xfer_restore" {
			ev := c
			xfer = &ev
		}
	}
	if sum != dt.Dur() {
		t.Errorf("downtime children sum %v != %v", sum, dt.Dur())
	}
	if xfer == nil {
		t.Fatal("no xfer_restore child under downtime")
	}
	names := map[string]time.Duration{}
	for _, c := range rep.Children(xfer.ID) {
		names[c.Name] = c.Dur()
	}
	if names["copy"] != bd.Copy || names["restore"] != bd.Restore {
		t.Errorf("xfer_restore children %v, want copy=%v restore=%v", names, bd.Copy, bd.Restore)
	}
	if xfer.Dur() != cluster.OverlappedCopyRestore(bd.Copy, bd.Restore) {
		t.Errorf("xfer_restore span %v != max(copy, restore)", xfer.Dur())
	}
	// The criu-level restore pipeline tree rides along in the same
	// registry.
	if _, ok := rep.Span("restore"); !ok {
		t.Error("no criu restore span recorded")
	}
}

// TestStreamRestoreOptionValidation: the option combinations the
// pipeline cannot serve must be refused up front.
func TestStreamRestoreOptionValidation(t *testing.T) {
	pair, err := compiler.Compile(workSrc)
	if err != nil {
		t.Fatal(err)
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("work", pair)
	pi.Install("work", pair)
	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	bad := []cluster.MigrateOpts{
		{StreamRestore: true},                                           // raw codec cannot stream
		{StreamRestore: true, Codec: criu.CodecFlate, Lazy: true},       // lazy leaves pages behind
		{StreamRestore: true, Codec: criu.CodecFlate, PreCopy: &cluster.PreCopyOpts{}},
	}
	for i, opts := range bad {
		if _, err := cluster.Migrate(xeon, pi, p, pair.Meta, opts); err == nil {
			t.Errorf("case %d: invalid streamed options accepted: %+v", i, opts)
		}
	}
}
