package cluster

import (
	"time"
)

// Link models a network connection for the image-copy (scp) phase.
type Link struct {
	Name         string
	BandwidthBps float64 // application-level throughput, bytes/second
	LatencySec   float64 // per-transfer setup cost
}

// Predefined links. InfiniBand is calibrated so copying the paper's
// typical checkpoint (tens of MB of process images) takes ≈300 ms, the
// number reported in §IV-A; GigE is the slower comparison point.
var (
	InfiniBand = Link{Name: "infiniband", BandwidthBps: 350e6, LatencySec: 2e-3}
	GigE       = Link{Name: "gige", BandwidthBps: 110e6, LatencySec: 5e-3}
)

// TransferTime models copying n bytes.
func (l Link) TransferTime(n uint64) time.Duration {
	s := l.LatencySec + float64(n)/l.BandwidthBps
	return time.Duration(s * float64(time.Second))
}

// Transformation-cost calibration. The absolute constants are fitted to
// the paper's reported ranges (checkpoint/restore < 30 ms; recode ≈
// 254 ms on the Xeon vs ≈ 1005 ms on the Pi for the same images; lazy
// restore ≈ 8 ms); the *structure* (linear in image bytes, inversely
// proportional to node speed) is what carries the figure shapes.
const (
	// checkpointBaseSec is CRIU's fixed dump cost; checkpointBps the rate
	// at which pages are streamed to tmpfs.
	checkpointBaseSec = 4e-3
	checkpointBps     = 2.5e9
	// recodeBaseCycles + recodeCyclesPerByte model the rewriter: stack
	// unwinding is per-image work, page rewriting linear in bytes.
	recodeBaseCycles    = 300e6
	recodeCyclesPerByte = 80.0
	// restoreBaseSec + restoreBps model rebuilding the address space;
	// lazyRestoreSec is the minimal-context restore of post-copy.
	restoreBaseSec = 3e-3
	restoreBps     = 3e9
	lazyRestoreSec = 8e-3
)

// CheckpointTime models the dump cost for an image of the given size.
func CheckpointTime(bytes uint64) time.Duration {
	s := checkpointBaseSec + float64(bytes)/checkpointBps
	return time.Duration(s * float64(time.Second))
}

// RecodeTime models running the rewriter on a given node: identical logic,
// different micro-architectural strength — the paper's explanation for the
// 254 ms vs 1005 ms asymmetry.
func RecodeTime(n *Node, bytes uint64) time.Duration {
	cycles := recodeBaseCycles + recodeCyclesPerByte*float64(bytes)
	s := cycles / (n.Spec.ClockHz * n.Spec.IPC)
	return time.Duration(s * float64(time.Second))
}

// RecodePagesTime models just the page-translation half of the rewrite —
// the per-byte work pre-copy overlaps with execution by streaming each
// round's pages to the rewriter as they arrive. The per-image base cost
// (stack unwinding needs the final register state) stays in the downtime
// window; see RecodeTime.
func RecodePagesTime(n *Node, bytes uint64) time.Duration {
	cycles := recodeCyclesPerByte * float64(bytes)
	s := cycles / (n.Spec.ClockHz * n.Spec.IPC)
	return time.Duration(s * float64(time.Second))
}

// RestoreTime models the restore cost.
func RestoreTime(bytes uint64, lazy bool) time.Duration {
	if lazy {
		return time.Duration(lazyRestoreSec * float64(time.Second))
	}
	s := restoreBaseSec + float64(bytes)/restoreBps
	return time.Duration(s * float64(time.Second))
}

// OverlappedCopyRestore models the copy and restore phases of a streamed
// restore (MigrateOpts.StreamRestore): the destination verifies, maps,
// and installs pages while later wire segments are still in flight, so
// the pipeline's critical path is the longer of the two phases instead
// of their sum. The model deliberately ignores the pipeline's fill/drain
// ramps — segments are small relative to the image, so the ramp is one
// segment of skew on either end.
func OverlappedCopyRestore(copy, restore time.Duration) time.Duration {
	if copy >= restore {
		return copy
	}
	return restore
}

// Shuffle-time model (Fig. 9): the SBI pass disassembles and re-encodes
// every function, so cost is linear in code size and inversely
// proportional to node speed (the paper's 573 ms on x86 vs 3.2 s on the
// ARM board for the same logic).
const (
	shuffleBaseCycles    = 2e8
	shuffleCyclesPerByte = 8000.0
)

// ShuffleTime models running the stack shuffler on a node over codeBytes
// of text.
func ShuffleTime(n *Node, codeBytes uint64) time.Duration {
	cycles := shuffleBaseCycles + shuffleCyclesPerByte*float64(codeBytes)
	s := cycles / (n.Spec.ClockHz * n.Spec.IPC)
	return time.Duration(s * float64(time.Second))
}

// PowerW returns a node's power draw with the given number of busy cores.
func (s NodeSpec) PowerW(busyCores int) float64 {
	if busyCores > s.Cores {
		busyCores = s.Cores
	}
	return s.IdleW + float64(busyCores)*s.PerCoreW
}
