package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
)

// ImageReceiver accepts checkpoint image directories over TCP — the scp
// step of a real cross-node deployment. The in-process Migrate path uses
// direct marshaling for speed; integration tests and multi-process
// deployments use this.
//
// A malformed payload (truncated header, truncated body, oversized image,
// undecodable directory) is dropped, counted in Errors, and does not
// affect other transfers.
type ImageReceiver struct {
	ln net.Listener

	mu     sync.Mutex
	recv   []*criu.ImageDir
	conns  map[net.Conn]struct{}
	errs   uint64
	closed bool

	// notify wakes TakeWait blockers when a directory arrives; done is
	// closed by Close so blocked waiters fail fast instead of timing out.
	notify chan struct{}
	done   chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// ListenImages starts a receiver on addr ("127.0.0.1:0" for tests).
func ListenImages(addr string) (*ImageReceiver, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: image receiver: %w", err)
	}
	r := &ImageReceiver{
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the listen address.
func (r *ImageReceiver) Addr() string { return r.ln.Addr().String() }

// Errors returns how many inbound transfers were discarded as malformed.
func (r *ImageReceiver) Errors() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs
}

// Close stops the receiver, closes in-flight connections, and waits for
// its goroutines. It is idempotent: extra calls return the first call's
// result.
func (r *ImageReceiver) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		r.mu.Lock()
		r.closed = true
		conns := make([]net.Conn, 0, len(r.conns))
		for c := range r.conns {
			conns = append(conns, c)
		}
		r.mu.Unlock()
		r.closeErr = r.ln.Close()
		for _, c := range conns {
			// The serving goroutine owns each conn and closes it on its
			// own exit; this forced close races that benignly, so a
			// double-close error here carries no signal.
			_ = c.Close()
		}
		r.wg.Wait()
	})
	return r.closeErr
}

// Take removes and returns the oldest received directory, or nil.
func (r *ImageReceiver) Take() *criu.ImageDir {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recv) == 0 {
		return nil
	}
	d := r.recv[0]
	r.recv = r.recv[1:]
	return d
}

// TakeWait blocks until a received directory is available and returns it.
// It is channel-notified — no polling — and fails with an error when the
// receiver is closed or nothing arrives within timeout. Multiple waiters
// are safe; each arrival wakes one.
func (r *ImageReceiver) TakeWait(timeout time.Duration) (*criu.ImageDir, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if d := r.Take(); d != nil {
			return d, nil
		}
		select {
		case <-r.notify:
			// Something arrived (or a sibling consumed it); re-check.
		case <-r.done:
			// Drain anything that raced with Close before giving up.
			if d := r.Take(); d != nil {
				return d, nil
			}
			return nil, fmt.Errorf("cluster: image receiver closed (%d malformed transfers)", r.Errors())
		case <-timer.C:
			return nil, fmt.Errorf("cluster: image receiver: nothing arrived within %v (%d malformed transfers)", timeout, r.Errors())
		}
	}
}

func (r *ImageReceiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			// Rejecting an accept that raced Close; there is no caller
			// to report a close failure to.
			_ = conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			dir, err := readImageDir(conn)
			// The payload is fully read (or failed and counted); a close
			// error after that is peer-FIN noise.
			_ = conn.Close()
			r.mu.Lock()
			delete(r.conns, conn)
			if err != nil {
				r.errs++
			} else {
				r.recv = append(r.recv, dir)
			}
			r.mu.Unlock()
			if err == nil {
				// Wake a TakeWait blocker; the buffered channel makes the
				// signal level-triggered, so a wakeup is never lost even
				// with no waiter parked right now.
				select {
				case r.notify <- struct{}{}:
				default:
				}
			}
		}()
	}
}

// SendImages copies a checkpoint directory to a receiver over TCP,
// returning the bytes transferred (the scp payload size). A close failure
// after the writes is reported: it can mean the payload never flushed.
func SendImages(addr string, dir *criu.ImageDir) (n uint64, err error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("cluster: send images: %w", err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			n, err = 0, fmt.Errorf("cluster: send images: close: %w", cerr)
		}
	}()
	blob := dir.Marshal()
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(blob)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := conn.Write(blob); err != nil {
		return 0, err
	}
	return uint64(len(blob)) + 8, nil
}

func readImageDir(conn net.Conn) (*criu.ImageDir, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint64(hdr[:])
	const maxImage = 1 << 30
	if n > maxImage {
		return nil, fmt.Errorf("cluster: image of %d bytes exceeds limit", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(conn, blob); err != nil {
		return nil, err
	}
	return criu.UnmarshalImageDir(blob)
}
