package cluster

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/parallel"
)

// ImageReceiver accepts checkpoint image directories over TCP — the scp
// step of a real cross-node deployment. The in-process Migrate path uses
// direct marshaling for speed; integration tests and multi-process
// deployments use this. Both wire framings are accepted per connection:
// the legacy length-prefixed blob and the v3 segmented codec stream
// (see wire.go) — the receiver sniffs which one the sender speaks.
//
// A malformed payload (truncated header, truncated body, oversized image,
// undecodable directory) is dropped, counted in Errors, and does not
// affect other transfers. Concurrent inbound transfers beyond MaxInflight
// are rejected at accept and counted the same way.
type ImageReceiver struct {
	ln   net.Listener
	opts ReceiverOpts
	// sem bounds concurrent serving goroutines; a slot is taken before
	// each one is spawned and released when it exits.
	sem *parallel.Semaphore

	mu     sync.Mutex
	recv   []*criu.ImageDir
	conns  map[net.Conn]struct{}
	errs   uint64
	closed bool

	// notify wakes TakeWait blockers when a directory arrives; done is
	// closed by Close so blocked waiters fail fast instead of timing out.
	notify chan struct{}
	done   chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// ReceiverOpts tunes an ImageReceiver; the zero value selects the
// defaults noted on each field.
type ReceiverOpts struct {
	// MaxInflight bounds concurrent inbound transfers (default 8). A
	// connection accepted while every slot is busy is dropped immediately
	// and counted in Errors — backpressure instead of unbounded buffering
	// of attacker-sized payloads.
	MaxInflight int
}

// ListenImages starts a receiver on addr ("127.0.0.1:0" for tests) with
// default options.
func ListenImages(addr string) (*ImageReceiver, error) {
	return ListenImagesOpts(addr, ReceiverOpts{})
}

// ListenImagesOpts starts a receiver with explicit options.
func ListenImagesOpts(addr string, opts ReceiverOpts) (*ImageReceiver, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: image receiver: %w", err)
	}
	if opts.MaxInflight <= 0 {
		// Explicit default: NewSemaphore(0) would normalize to NumCPU,
		// which is a build-machine fact, not a transport policy.
		opts.MaxInflight = 8
	}
	r := &ImageReceiver{
		ln:     ln,
		opts:   opts,
		sem:    parallel.NewSemaphore(opts.MaxInflight),
		conns:  make(map[net.Conn]struct{}),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the listen address.
func (r *ImageReceiver) Addr() string { return r.ln.Addr().String() }

// Errors returns how many inbound transfers were discarded: malformed
// payloads plus connections rejected at the MaxInflight bound.
func (r *ImageReceiver) Errors() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs
}

// Close stops the receiver, closes in-flight connections, and waits for
// its goroutines. It is idempotent: extra calls return the first call's
// result.
func (r *ImageReceiver) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		r.mu.Lock()
		r.closed = true
		conns := make([]net.Conn, 0, len(r.conns))
		for c := range r.conns {
			conns = append(conns, c)
		}
		r.mu.Unlock()
		r.closeErr = r.ln.Close()
		for _, c := range conns {
			// The serving goroutine owns each conn and closes it on its
			// own exit; this forced close races that benignly, so a
			// double-close error here carries no signal.
			_ = c.Close()
		}
		r.wg.Wait()
	})
	return r.closeErr
}

// Take removes and returns the oldest received directory, or nil.
func (r *ImageReceiver) Take() *criu.ImageDir {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recv) == 0 {
		return nil
	}
	d := r.recv[0]
	r.recv = r.recv[1:]
	if len(r.recv) > 0 {
		// Re-arm the signal: arrivals with no waiter parked collapse into
		// the single buffered token, so after consuming one directory the
		// token must be re-raised while more remain — otherwise a second
		// waiter sleeps its full timeout next to a non-empty queue.
		select {
		case r.notify <- struct{}{}:
		default:
		}
	}
	return d
}

// TakeWait blocks until a received directory is available and returns it.
// It is channel-notified — no polling — and fails with an error when the
// receiver is closed or nothing arrives within timeout. Multiple waiters
// are safe; each arrival wakes one.
func (r *ImageReceiver) TakeWait(timeout time.Duration) (*criu.ImageDir, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if d := r.Take(); d != nil {
			return d, nil
		}
		select {
		case <-r.notify:
			// Something arrived (or a sibling consumed it); re-check.
		case <-r.done:
			// Drain anything that raced with Close before giving up.
			if d := r.Take(); d != nil {
				return d, nil
			}
			return nil, fmt.Errorf("cluster: image receiver closed (%d malformed transfers)", r.Errors())
		case <-timer.C:
			return nil, fmt.Errorf("cluster: image receiver: nothing arrived within %v (%d malformed transfers)", timeout, r.Errors())
		}
	}
}

func (r *ImageReceiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			// Rejecting an accept that raced Close; there is no caller
			// to report a close failure to.
			_ = conn.Close()
			return
		}
		if !r.sem.TryAcquire() {
			r.errs++
			r.mu.Unlock()
			// Over the inbound-transfer bound: shed the connection before
			// reading a byte. The sender sees the reset and can retry.
			_ = conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.sem.Release()
			dir, err := readImageDir(conn)
			// The payload is fully read (or failed and counted); a close
			// error after that is peer-FIN noise.
			_ = conn.Close()
			r.mu.Lock()
			delete(r.conns, conn)
			if err != nil {
				r.errs++
			} else {
				r.recv = append(r.recv, dir)
			}
			r.mu.Unlock()
			if err == nil {
				// Wake a TakeWait blocker; the buffered channel makes the
				// signal level-triggered, so a wakeup is never lost even
				// with no waiter parked right now.
				select {
				case r.notify <- struct{}{}:
				default:
				}
			}
		}()
	}
}

// SendOpts tunes SendImagesOpts; the zero value reproduces the legacy
// SendImages behavior (raw framing, link-derived write deadline).
type SendOpts struct {
	// Codec selects the v3 segmented stream with optional per-segment
	// compression; CodecRaw (the zero value) keeps the legacy
	// length-prefixed framing, which any receiver version accepts.
	Codec criu.Codec
	// SegmentBytes caps each v3 segment's raw payload (default 4 MiB).
	SegmentBytes int
	// Timeout bounds the whole send. Zero derives it from the link
	// model: 20x the modeled transfer time of the payload, floored at
	// 2s, so a slow modeled link never trips the real transport.
	Timeout time.Duration
	// Link is the modeled link the default Timeout derives from; nil
	// selects InfiniBand.
	Link *Link
	// Obs receives the v3 wire telemetry ("wire.*"); nil disables it.
	Obs *obs.Registry
}

// SendImages copies a checkpoint directory to a receiver over TCP using
// the legacy framing, returning the bytes transferred (the scp payload
// size). A close failure after the writes is reported: it can mean the
// payload never flushed.
func SendImages(addr string, dir *criu.ImageDir) (uint64, error) {
	_, wire, err := SendImagesOpts(addr, dir, SendOpts{})
	return wire, err
}

// SendImagesOpts copies a checkpoint directory to a receiver over TCP,
// returning the marshaled image size and the bytes actually put on the
// wire (equal for raw framing; smaller when compression wins). The whole
// send runs under a write deadline so a stalled receiver fails the
// migration round instead of hanging it forever.
func SendImagesOpts(addr string, dir *criu.ImageDir, opts SendOpts) (raw, wire uint64, err error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: send images: %w", err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			raw, wire, err = 0, 0, fmt.Errorf("cluster: send images: close: %w", cerr)
		}
	}()
	blob := dir.Marshal()
	raw = uint64(len(blob))
	timeout := opts.Timeout
	if timeout <= 0 {
		link := opts.Link
		if link == nil {
			link = &InfiniBand
		}
		timeout = 20 * link.TransferTime(raw)
		if timeout < 2*time.Second {
			timeout = 2 * time.Second
		}
	}
	// The deadline covers every write of this send and is cleared before
	// the close: a deadline left armed could fail the connection teardown
	// with a timeout that belongs to a payload already delivered.
	//lint:ignore wallclock write deadlines are real host-transport time by definition, never part of modeled migration cost
	if derr := conn.SetWriteDeadline(time.Now().Add(timeout)); derr != nil {
		return 0, 0, fmt.Errorf("cluster: send images: %w", derr)
	}
	if opts.Codec.Batched() {
		wire, err = writeImageStream(conn, blob, opts.Codec, opts.SegmentBytes, opts.Obs)
	} else {
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], raw)
		// One gathered write instead of header-then-blob: a single
		// syscall, and no chance of the header flushing while the blob
		// write dies separately.
		bufs := net.Buffers{hdr[:], blob}
		var n int64
		n, err = bufs.WriteTo(conn)
		wire = uint64(n)
	}
	if err != nil {
		return 0, 0, err
	}
	if derr := conn.SetWriteDeadline(time.Time{}); derr != nil {
		return 0, 0, fmt.Errorf("cluster: send images: clear deadline: %w", derr)
	}
	return raw, wire, nil
}

func readImageDir(conn net.Conn) (*criu.ImageDir, error) {
	return readImageDirFrom(conn)
}
