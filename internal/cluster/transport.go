package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/dapper-sim/dapper/internal/criu"
)

// ImageReceiver accepts checkpoint image directories over TCP — the scp
// step of a real cross-node deployment. The in-process Migrate path uses
// direct marshaling for speed; integration tests and multi-process
// deployments use this.
type ImageReceiver struct {
	ln net.Listener

	mu   sync.Mutex
	recv []*criu.ImageDir

	wg   sync.WaitGroup
	stop chan struct{}
}

// ListenImages starts a receiver on addr ("127.0.0.1:0" for tests).
func ListenImages(addr string) (*ImageReceiver, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: image receiver: %w", err)
	}
	r := &ImageReceiver{ln: ln, stop: make(chan struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the listen address.
func (r *ImageReceiver) Addr() string { return r.ln.Addr().String() }

// Close stops the receiver.
func (r *ImageReceiver) Close() error {
	close(r.stop)
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

// Take removes and returns the oldest received directory, or nil.
func (r *ImageReceiver) Take() *criu.ImageDir {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recv) == 0 {
		return nil
	}
	d := r.recv[0]
	r.recv = r.recv[1:]
	return d
}

func (r *ImageReceiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			dir, err := readImageDir(conn)
			if err != nil {
				return
			}
			r.mu.Lock()
			r.recv = append(r.recv, dir)
			r.mu.Unlock()
		}()
	}
}

// SendImages copies a checkpoint directory to a receiver over TCP,
// returning the bytes transferred (the scp payload size).
func SendImages(addr string, dir *criu.ImageDir) (uint64, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("cluster: send images: %w", err)
	}
	defer conn.Close()
	blob := dir.Marshal()
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(blob)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := conn.Write(blob); err != nil {
		return 0, err
	}
	return uint64(len(blob)) + 8, nil
}

func readImageDir(conn net.Conn) (*criu.ImageDir, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint64(hdr[:])
	const maxImage = 1 << 30
	if n > maxImage {
		return nil, fmt.Errorf("cluster: image of %d bytes exceeds limit", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(conn, blob); err != nil {
		return nil, err
	}
	return criu.UnmarshalImageDir(blob)
}
