package cluster_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
)

func waitForErrors(t *testing.T, r *cluster.ImageReceiver, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for r.Errors() < want {
		if time.Now().After(deadline) {
			t.Fatalf("receiver Errors = %d, want %d", r.Errors(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestImageReceiverMalformedPayloads feeds the receiver a truncated
// header, a truncated body, and an oversized length; each must be counted
// as an error, none may produce a directory, and a subsequent well-formed
// transfer must still succeed.
func TestImageReceiverMalformedPayloads(t *testing.T) {
	recvr, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recvr.Close()

	send := func(payload []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", recvr.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(payload)
		conn.Close()
	}

	// Truncated header: fewer than 8 length bytes.
	send([]byte{0, 1, 2})
	waitForErrors(t, recvr, 1)

	// Truncated body: header promises more bytes than arrive.
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], 4096)
	send(append(hdr[:], []byte("short")...))
	waitForErrors(t, recvr, 2)

	// Oversized image: length over the 1 GiB limit must be rejected
	// without attempting the allocation.
	binary.BigEndian.PutUint64(hdr[:], 8<<30)
	send(hdr[:])
	waitForErrors(t, recvr, 3)

	if d := recvr.Take(); d != nil {
		t.Fatalf("malformed payloads produced a directory: %v", d.Names())
	}

	// The receiver must still be healthy for a real transfer.
	dir := criu.NewImageDir()
	dir.Put("inventory.img", []byte{1, 2, 3, 4})
	if _, err := cluster.SendImages(recvr.Addr(), dir); err != nil {
		t.Fatal(err)
	}
	var got *criu.ImageDir
	deadline := time.Now().Add(2 * time.Second)
	for got == nil && time.Now().Before(deadline) {
		got = recvr.Take()
		time.Sleep(time.Millisecond)
	}
	if got == nil {
		t.Fatal("well-formed transfer after malformed ones never arrived")
	}
	if recvr.Errors() != 3 {
		t.Errorf("Errors = %d, want 3", recvr.Errors())
	}
}

func TestImageReceiverCloseIdempotent(t *testing.T) {
	recvr, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := recvr.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := recvr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestMigrateReapsSource: a non-lazy migration must not leak the paused
// source process — it is reaped (exited, PID released) while its console
// output stays readable.
func TestMigrateReapsSource(t *testing.T) {
	xeon, pi, pair := setup(t)
	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	preConsole := p.ConsoleString()
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != nil {
		t.Error("non-lazy migration kept a page source")
	}
	if !p.Exited {
		t.Error("source process still alive (leaked SIGSTOPed)")
	}
	if p.Stopped {
		t.Error("reaped source still marked stopped")
	}
	if p.ConsoleString() != preConsole {
		t.Error("reaping lost the source's console output")
	}
	if err := res.Close(); err != nil {
		t.Errorf("close of non-lazy result: %v", err)
	}
	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatal(err)
	}
}

// heapSrc builds a program with a large enough heap that post-copy leaves
// ~100+ pages behind on the source.
const heapSrc = `
func put(p *int, i int) { p[i] = i * 7 + 1; }
func get(p *int, i int) int { return p[i]; }
func main() {
	var p *int;
	var i int;
	var s int;
	p = alloc(8 * 60000);
	for i = 0; i < 60000; i = i + 1 { put(p, i); }
	for i = 0; i < 60000; i = i + 1 { s = s + get(p, i); }
	printi(s);
	print("\n");
}`

// TestLazyMigrationTCPWithFaults is the acceptance test for the resilient
// page transport: a post-copy migration whose pages travel over a real TCP
// page server with >=10% injected fetch failures plus connection drops
// must still complete with byte-identical output, and the breakdown's lazy
// counters must reflect the page server's actual request stream.
func TestLazyMigrationTCPWithFaults(t *testing.T) {
	pair, err := compiler.Compile(heapSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("heapy", pair)
	refProc, err := ref.Start("heapy")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(refProc); err != nil {
		t.Fatal(err)
	}
	want := refProc.ConsoleString()
	budget := refProc.VCycles * 2 / 5

	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("heapy", pair)
	pi.Install("heapy", pair)
	p, err := xeon.Start("heapy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, budget); err != nil {
		t.Fatal(err)
	}

	var flakySrc *criu.FlakySource
	var flakyLn *criu.FlakyListener
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{
		Lazy:    true,
		LazyTCP: true,
		WrapPageSource: func(src criu.PageSource) criu.PageSource {
			flakySrc = criu.NewFlakySource(src, criu.FaultSpec{Seed: 1, FailRate: 0.25})
			return flakySrc
		},
		WrapListener: func(ln net.Listener) net.Listener {
			flakyLn = criu.NewFlakyListener(ln, criu.FaultSpec{Seed: 2, DropRate: 0.05})
			return flakyLn
		},
		PageClient: &criu.PageClientOpts{
			Conns: 3, FetchTimeout: time.Second,
			MaxRetries: 14, RetryBackoff: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	if err := pi.K.Run(res.Proc); err != nil {
		t.Fatalf("post-copy run under injected faults: %v", err)
	}
	got := p.ConsoleString() + res.Proc.ConsoleString()
	if got != want {
		t.Errorf("faulty-transport migration output %q, want %q", got, want)
	}

	res.FinalizeLazyStats()
	srvStats := res.PageStats()
	if res.Breakdown.LazyFetches != srvStats.Requests {
		t.Errorf("Breakdown.LazyFetches = %d, want page-server Requests %d",
			res.Breakdown.LazyFetches, srvStats.Requests)
	}
	if res.Breakdown.LazyBytes != srvStats.BytesSent {
		t.Errorf("Breakdown.LazyBytes = %d, want page-server BytesSent %d",
			res.Breakdown.LazyBytes, srvStats.BytesSent)
	}
	if srvStats.Requests == 0 {
		t.Fatal("no pages were served over TCP")
	}
	// The injected fault volume must be at least 10% of the request
	// stream, or the test is not demonstrating resilience.
	injected := flakySrc.Failures() + flakyLn.Drops()
	if injected*10 < srvStats.Requests {
		t.Errorf("injected faults %d (< 10%% of %d requests): fault rate too low to be meaningful",
			injected, srvStats.Requests)
	}
	if srvStats.Errors != flakySrc.Failures() {
		t.Errorf("server error frames %d != injected fetch failures %d",
			srvStats.Errors, flakySrc.Failures())
	}
	cst := res.PageClientStats()
	if cst.Retries == 0 {
		t.Errorf("faults injected but client never retried: %+v", cst)
	}
	t.Logf("served %d requests (%d errors, %d drops); client: %d fetches, %d retries, %d reconnects, %d timeouts",
		srvStats.Requests, srvStats.Errors, flakyLn.Drops(),
		cst.Fetches, cst.Retries, cst.Reconnects, cst.Timeouts)

	// Close reaps the source.
	if err := res.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if !p.Exited {
		t.Error("lazy source not reaped by Close")
	}
}

// TestLazyFaultErrorSurfaces: if the transport is torn down while lazy
// pages are still missing, the destination's next fault must fail with an
// identifiable transport error, not a silent zero page or a hang.
func TestLazyFaultErrorSurfaces(t *testing.T) {
	pair, err := compiler.Compile(heapSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("heapy", pair)
	refProc, err := ref.Start("heapy")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(refProc); err != nil {
		t.Fatal(err)
	}
	budget := refProc.VCycles * 2 / 5

	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("heapy", pair)
	pi.Install("heapy", pair)
	p, err := xeon.Start("heapy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, budget); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{
		Lazy: true, LazyTCP: true,
		PageClient: &criu.PageClientOpts{MaxRetries: 1, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the transport before the destination has pulled its pages.
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	err = pi.K.Run(res.Proc)
	if err == nil {
		t.Fatal("destination ran to completion with no page source")
	}
	if !kernel.IsLazyFaultError(err) {
		t.Errorf("error %v not identified as a lazy-fault transport error", err)
	}
}
