package cluster

import (
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
)

// TestTakeWaitCollapsedSignal reproduces the lost wakeup deterministically
// (satellite: TakeWait): two arrivals whose signals collapsed into the one
// buffered notify token — the state the serve goroutines reach whenever
// both append before either waiter is scheduled. The first waiter consumes
// the token and one directory; before the re-signal fix in Take, the
// second waiter slept its full timeout next to the other directory.
func TestTakeWaitCollapsedSignal(t *testing.T) {
	r, err := ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	waitErrs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func() {
			_, err := r.TakeWait(2 * time.Second)
			waitErrs <- err
		}()
	}
	// Both waiters must be parked in the select before the injection.
	time.Sleep(50 * time.Millisecond)

	// Two arrivals, one token: exactly what acceptLoop produces when both
	// connections append before either signal lands a parked receiver.
	d1 := criu.NewImageDir()
	d1.Put("inventory.img", []byte{1})
	d2 := criu.NewImageDir()
	d2.Put("inventory.img", []byte{2})
	r.mu.Lock()
	r.recv = append(r.recv, d1, d2)
	r.mu.Unlock()
	r.notify <- struct{}{}

	for w := 0; w < 2; w++ {
		if err := <-waitErrs; err != nil {
			t.Fatalf("a waiter starved beside a queued directory: %v", err)
		}
	}
}
