package cluster_test

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
)

// smallDir builds a minimal valid image directory for transfer tests.
func smallDir(tag byte) *criu.ImageDir {
	dir := criu.NewImageDir()
	dir.Put("inventory.img", []byte{tag, 2, 3, 4})
	return dir
}

// TestTakeWaitConcurrentWaiters is the lost-wakeup regression (satellite:
// TakeWait): two parked waiters, two near-simultaneous arrivals. The
// buffered notify channel collapses both arrival signals into one token;
// before the re-signal fix in Take, the second waiter slept its full
// timeout next to a non-empty queue.
func TestTakeWaitConcurrentWaiters(t *testing.T) {
	recvr, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recvr.Close()

	for iter := 0; iter < 10; iter++ {
		waitErrs := make(chan error, 2)
		for w := 0; w < 2; w++ {
			go func() {
				_, err := recvr.TakeWait(3 * time.Second)
				waitErrs <- err
			}()
		}
		// Let both waiters park in the select before anything arrives.
		time.Sleep(10 * time.Millisecond)
		var wg sync.WaitGroup
		sendErrs := make(chan error, 2)
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				_, err := cluster.SendImages(recvr.Addr(), smallDir(byte(s)))
				sendErrs <- err
			}(s)
		}
		wg.Wait()
		close(sendErrs)
		for err := range sendErrs {
			if err != nil {
				t.Fatalf("iter %d: send: %v", iter, err)
			}
		}
		for w := 0; w < 2; w++ {
			if err := <-waitErrs; err != nil {
				t.Fatalf("iter %d: a waiter starved beside a non-empty queue: %v", iter, err)
			}
		}
	}
}

// TestSendImagesStalledReceiverDeadline is the hung-sender regression
// (satellite: SendImages deadline): against a peer that accepts but never
// reads, the send must fail once its write deadline passes instead of
// blocking forever on a full socket buffer.
func TestSendImagesStalledReceiverDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Test-listener teardown only.
		_ = ln.Close()
	}()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // held open, never read
	}()
	defer func() {
		select {
		case conn := <-accepted:
			// Stall-peer teardown only.
			_ = conn.Close()
		default:
		}
	}()

	// Big enough to overrun every socket buffer between sender and the
	// never-reading peer.
	dir := criu.NewImageDir()
	dir.Put("pages.img", bytes.Repeat([]byte{0x42}, 64<<20))

	done := make(chan error, 1)
	go func() {
		_, _, err := cluster.SendImagesOpts(ln.Addr().String(), dir, cluster.SendOpts{
			Timeout: 300 * time.Millisecond,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("send to a never-reading peer reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send to a never-reading peer hung past its deadline (pre-fix behavior)")
	}
}

// TestSendImagesCodecOverTCP runs the v3 compressed stream through the
// real sender/receiver pair: the receiver sniffs the framing, the decoded
// directory is byte-identical, and compression shrinks the wire volume.
func TestSendImagesCodecOverTCP(t *testing.T) {
	recvr, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recvr.Close()

	dir := criu.NewImageDir()
	dir.Put("core-1.img", []byte{1, 2, 3})
	dir.Put("pages.img", bytes.Repeat([]byte{0}, 1<<20))
	blob := dir.Marshal()

	raw, wire, err := cluster.SendImagesOpts(recvr.Addr(), dir, cluster.SendOpts{
		Codec: criu.CodecFlate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if raw != uint64(len(blob)) {
		t.Errorf("raw = %d, want marshaled size %d", raw, len(blob))
	}
	if wire >= raw {
		t.Errorf("flate transfer did not shrink: raw %d, wire %d", raw, wire)
	}
	got, err := recvr.TakeWait(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), blob) {
		t.Error("compressed transfer decoded to a different directory")
	}
}

// TestImageReceiverMaxInflight (satellite: inbound bound): with one
// inflight slot occupied by a stalled transfer, a second connection is
// shed at accept and counted; once the slot frees, transfers work again.
func TestImageReceiverMaxInflight(t *testing.T) {
	recvr, err := cluster.ListenImagesOpts("127.0.0.1:0", cluster.ReceiverOpts{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recvr.Close()

	// Occupy the only slot: claim a body, deliver nothing.
	stall, err := net.Dial("tcp", recvr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], 1<<20)
	if _, err := stall.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the slot be acquired

	// A second transfer while the slot is busy: shed at accept. The send
	// itself may report success (its bytes fit the socket buffer before
	// the reset lands); the receiver-side reject count is the contract.
	_, _ = cluster.SendImages(recvr.Addr(), smallDir(1))
	waitForErrors(t, recvr, 1)
	if d := recvr.Take(); d != nil {
		t.Fatalf("over-bound transfer produced a directory: %v", d.Names())
	}

	// Free the slot (truncated body counts as error #2)...
	// Stalled conn teardown is the point of this line.
	_ = stall.Close()
	waitForErrors(t, recvr, 2)

	// ...and the receiver serves normal transfers again.
	if _, err := cluster.SendImages(recvr.Addr(), smallDir(2)); err != nil {
		t.Fatal(err)
	}
	got, err := recvr.TakeWait(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if raw, _ := got.Get("inventory.img"); len(raw) != 4 || raw[0] != 2 {
		t.Errorf("post-recovery transfer decoded wrong: %v", raw)
	}
	if got := recvr.Errors(); got != 2 {
		t.Errorf("Errors = %d, want 2 (one shed connection, one truncated body)", got)
	}
}

// TestImageReceiverMalformedV3Streams feeds the receiver corrupt v3
// headers and segments; each is counted and none may produce a directory
// or a large allocation, and a valid compressed transfer still works.
func TestImageReceiverMalformedV3Streams(t *testing.T) {
	recvr, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recvr.Close()

	send := func(payload []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", recvr.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		// One-shot malformed payload; peer drops it regardless.
		_ = conn.Close()
	}
	v3hdr := func(codec byte, pad byte, rawTotal uint64) []byte {
		b := append([]byte("DIB3"), codec, pad, 0, 0)
		var tot [8]byte
		binary.BigEndian.PutUint64(tot[:], rawTotal)
		return append(b, tot[:]...)
	}
	seg := func(rawLen, wireLen uint32, codec byte) []byte {
		var b [9]byte
		binary.BigEndian.PutUint32(b[0:4], rawLen)
		binary.BigEndian.PutUint32(b[4:8], wireLen)
		b[8] = codec
		return b[:]
	}

	want := uint64(0)
	// Unknown header codec byte.
	send(v3hdr(0x7F, 0, 100))
	want++
	waitForErrors(t, recvr, want)
	// Nonzero padding: not a v3 header this receiver speaks.
	send(v3hdr(1, 9, 100))
	want++
	waitForErrors(t, recvr, want)
	// Whole-image size over the 1 GiB cap.
	send(v3hdr(1, 0, 2<<30))
	want++
	waitForErrors(t, recvr, want)
	// Empty segment inside a non-empty stream.
	send(append(v3hdr(1, 0, 100), seg(0, 0, 1)...))
	want++
	waitForErrors(t, recvr, want)
	// Segment raw size over the per-segment cap.
	send(append(v3hdr(1, 0, 512<<20), seg(16<<20, 10, 1)...))
	want++
	waitForErrors(t, recvr, want)
	// Segment claiming more wire bytes than raw bytes (Compress never
	// expands, so this proves corruption).
	send(append(v3hdr(1, 0, 100), seg(10, 11, 1)...))
	want++
	waitForErrors(t, recvr, want)
	// Segments overflowing the declared total.
	send(append(v3hdr(1, 0, 4), seg(8, 8, 1)...))
	want++
	waitForErrors(t, recvr, want)

	if d := recvr.Take(); d != nil {
		t.Fatalf("malformed v3 stream produced a directory: %v", d.Names())
	}
	// Still healthy for a real v3 transfer.
	if _, _, err := cluster.SendImagesOpts(recvr.Addr(), smallDir(7), cluster.SendOpts{
		Codec: criu.CodecFlate,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := recvr.TakeWait(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := recvr.Errors(); got != want {
		t.Errorf("Errors = %d, want %d", got, want)
	}
}
