package cluster_test

import (
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/monitor"
)

// TestMigrationOverRealTCP performs the full migration with the image
// directory shipped through an actual socket: checkpoint on the "source
// host", SendImages, receive on the "destination host", rewrite already
// applied, restore, run — and the output must match the native run.
func TestMigrationOverRealTCP(t *testing.T) {
	pair, err := compiler.Compile(workSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Native reference.
	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("work", pair)
	want := nativeOut(t, ref)

	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("work", pair)
	pi.Install("work", pair)

	recvr, err := cluster.ListenImages("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recvr.Close()

	p, err := xeon.Start("work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xeon.K.RunBudget(p, 200_000); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(xeon.K, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite on the source side, then scp for real.
	if err := (crossISAFor(pi)).Rewrite(dir, coreCtx(xeon)); err != nil {
		t.Fatal(err)
	}
	sent, err := cluster.SendImages(recvr.Addr(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if sent == 0 {
		t.Fatal("nothing sent")
	}
	var got *criu.ImageDir
	for i := 0; i < 100 && got == nil; i++ {
		got = recvr.Take()
		if got == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if got == nil {
		t.Fatal("receiver never produced the directory")
	}
	p2, err := criu.Restore(pi.K, got, pi.Binaries)
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.K.Run(p2); err != nil {
		t.Fatal(err)
	}
	if out := p.ConsoleString() + p2.ConsoleString(); out != want {
		t.Errorf("TCP-shipped migration output %q, want %q", out, want)
	}
}

// Helpers bridging to the core policy types without import clutter above.
func crossISAFor(dst *cluster.Node) interface {
	Rewrite(*criu.ImageDir, *core.Context) error
} {
	return core.CrossISAPolicy{Target: dst.Spec.Arch}
}

func coreCtx(n *cluster.Node) *core.Context {
	return &core.Context{Binaries: n.Binaries}
}
