package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/image"
	"github.com/dapper-sim/dapper/internal/obs"
)

// Image transfer wire format v3: a self-describing segmented stream with
// optional per-segment compression, sharing the codec layer (and its
// telemetry names) with the page protocol's batch frames. See
// docs/transport.md.
//
//	stream  := "DIB3" codec(u8) pad(3 zero bytes) rawTotal(u64 BE) segment...
//	segment := rawLen(u32 BE) wireLen(u32 BE) codec(u8) payload[wireLen]
//
// Segments concatenate (after decoding) to exactly rawTotal bytes of
// ImageDir.Marshal output. Each segment carries its own codec byte
// because Compress falls back to CodecNone per segment when compression
// does not shrink it; the header codec records what was requested. The
// receiver sniffs the first 8 bytes: the legacy framing is a u64 BE
// length capped at 1 GiB, so its first four bytes are always zero and
// can never read "DIB3".
const (
	imageMagic     = "DIB3"
	imageSegHdrLen = 9
	// maxImageBytes caps a whole transfer (both framings); it doubles as
	// proof that a legacy length header never collides with the magic.
	maxImageBytes = 1 << 30
	// maxImageSegment caps one v3 segment's raw payload; the writer's
	// default stays well under it.
	maxImageSegment     = 8 << 20
	defaultImageSegment = 4 << 20
	// recvChunk bounds how much readBounded grows per read, so a corrupt
	// length header allocates memory only as fast as bytes actually
	// arrive instead of committing the claimed size up front.
	recvChunk = 1 << 20
)

// writeImageStream writes blob as a v3 stream, compressing each segment
// with codec, and returns the total bytes put on the wire. segBytes <= 0
// selects the default segment size. Wire telemetry ("wire.*") lands in
// reg; nil disables recording.
func writeImageStream(w io.Writer, blob []byte, codec criu.Codec, segBytes int, reg *obs.Registry) (uint64, error) {
	if !codec.Batched() {
		return 0, fmt.Errorf("cluster: codec %s cannot frame an image stream", codec)
	}
	if segBytes <= 0 {
		segBytes = defaultImageSegment
	}
	if segBytes > maxImageSegment {
		segBytes = maxImageSegment
	}
	if uint64(len(blob)) > maxImageBytes {
		return 0, fmt.Errorf("cluster: image of %d bytes exceeds limit", len(blob))
	}
	hdr := make([]byte, 16)
	copy(hdr, imageMagic)
	hdr[4] = byte(codec)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(blob)))
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	wire := uint64(len(hdr))
	for off := 0; off < len(blob) || off == 0; {
		end := off + segBytes
		if end > len(blob) {
			end = len(blob)
		}
		raw := blob[off:end]
		//lint:ignore wallclock codec_ns is host-side codec cost telemetry, never part of modeled migration time
		start := time.Now()
		payload, used, err := codec.Compress(raw)
		//lint:ignore wallclock codec_ns is host-side codec cost telemetry, never part of modeled migration time
		reg.Histogram("wire.codec_ns").Observe(time.Since(start))
		if err != nil {
			return 0, err
		}
		seg := make([]byte, imageSegHdrLen)
		binary.BigEndian.PutUint32(seg[0:4], uint32(len(raw)))
		binary.BigEndian.PutUint32(seg[4:8], uint32(len(payload)))
		seg[8] = byte(used)
		bufs := net.Buffers{seg, payload}
		if _, err := bufs.WriteTo(w); err != nil {
			return 0, err
		}
		wire += uint64(imageSegHdrLen + len(payload))
		reg.Counter("wire.batches").Inc()
		reg.Counter("wire.bytes_raw").Add(uint64(len(raw)))
		reg.Counter("wire.bytes_wire").Add(uint64(imageSegHdrLen + len(payload)))
		off = end
		if len(blob) == 0 {
			break
		}
	}
	return wire, nil
}

// readImageDirFrom reads one image transfer — either framing — and
// decodes the directory. Malformed input fails without large allocations:
// both paths grow buffers only as bytes actually arrive.
func readImageDirFrom(r io.Reader) (*criu.ImageDir, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	if string(pre[:4]) != imageMagic {
		// Legacy framing: the 8 bytes are the payload length.
		n := binary.BigEndian.Uint64(pre[:])
		if n > maxImageBytes {
			return nil, fmt.Errorf("cluster: image of %d bytes exceeds limit", n)
		}
		blob, err := readBounded(r, n)
		if err != nil {
			return nil, err
		}
		return criu.UnmarshalImageDir(blob)
	}
	if pre[5] != 0 || pre[6] != 0 || pre[7] != 0 {
		return nil, fmt.Errorf("cluster: image stream: nonzero header padding")
	}
	if hdrCodec := criu.Codec(pre[4]); !hdrCodec.Batched() {
		return nil, fmt.Errorf("cluster: image stream: bad codec %s", hdrCodec)
	}
	var tot [8]byte
	if _, err := io.ReadFull(r, tot[:]); err != nil {
		return nil, err
	}
	rawTotal := binary.BigEndian.Uint64(tot[:])
	if rawTotal > maxImageBytes {
		return nil, fmt.Errorf("cluster: image of %d bytes exceeds limit", rawTotal)
	}
	blob := make([]byte, 0, minU64(rawTotal, recvChunk))
	for uint64(len(blob)) < rawTotal || rawTotal == 0 {
		var seg [imageSegHdrLen]byte
		if _, err := io.ReadFull(r, seg[:]); err != nil {
			return nil, err
		}
		rawLen := binary.BigEndian.Uint32(seg[0:4])
		wireLen := binary.BigEndian.Uint32(seg[4:8])
		codec := criu.Codec(seg[8])
		switch {
		case !codec.Batched():
			return nil, fmt.Errorf("cluster: image stream: bad segment codec %s", codec)
		case rawLen == 0 && rawTotal != 0:
			return nil, fmt.Errorf("cluster: image stream: empty segment")
		case rawLen > maxImageSegment:
			return nil, fmt.Errorf("cluster: image segment of %d bytes exceeds limit", rawLen)
		case uint64(wireLen) > uint64(rawLen):
			return nil, fmt.Errorf("cluster: image segment wire size %d exceeds raw size %d", wireLen, rawLen)
		case uint64(len(blob))+uint64(rawLen) > rawTotal:
			return nil, fmt.Errorf("cluster: image segments overflow the declared %d bytes", rawTotal)
		}
		payload, err := readBounded(r, uint64(wireLen))
		if err != nil {
			return nil, err
		}
		raw, err := codec.Decompress(payload, int(rawLen))
		if err != nil {
			return nil, fmt.Errorf("cluster: image stream: %w", err)
		}
		blob = append(blob, raw...)
		if rawTotal == 0 {
			break
		}
	}
	return criu.UnmarshalImageDir(blob)
}

// readImageStreamInto reads one image transfer — either framing — and
// feeds it to sink incrementally: each v3 segment is decoded and handed
// to an image.StreamSplitter the moment it arrives, so the consumer sees
// completed files (metadata first, by sort order) while later segments
// are still on the wire. It returns the number of wire segments
// delivered; a legacy-framed transfer is read whole and fed as one
// piece, counting as a single segment. On error the sink may have been
// fed a prefix; the caller owns cleanup of any consumer state.
func readImageStreamInto(r io.Reader, sink image.StreamSink) (int, error) {
	sp := image.NewStreamSplitter(sink)
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return 0, err
	}
	if string(pre[:4]) != imageMagic {
		n := binary.BigEndian.Uint64(pre[:])
		if n > maxImageBytes {
			return 0, fmt.Errorf("cluster: image of %d bytes exceeds limit", n)
		}
		blob, err := readBounded(r, n)
		if err != nil {
			return 0, err
		}
		if _, err := sp.Write(blob); err != nil {
			return 0, err
		}
		return 1, sp.Close()
	}
	if pre[5] != 0 || pre[6] != 0 || pre[7] != 0 {
		return 0, fmt.Errorf("cluster: image stream: nonzero header padding")
	}
	if hdrCodec := criu.Codec(pre[4]); !hdrCodec.Batched() {
		return 0, fmt.Errorf("cluster: image stream: bad codec %s", hdrCodec)
	}
	var tot [8]byte
	if _, err := io.ReadFull(r, tot[:]); err != nil {
		return 0, err
	}
	rawTotal := binary.BigEndian.Uint64(tot[:])
	if rawTotal > maxImageBytes {
		return 0, fmt.Errorf("cluster: image of %d bytes exceeds limit", rawTotal)
	}
	segments := 0
	var fed uint64
	for fed < rawTotal || rawTotal == 0 {
		var seg [imageSegHdrLen]byte
		if _, err := io.ReadFull(r, seg[:]); err != nil {
			return segments, err
		}
		rawLen := binary.BigEndian.Uint32(seg[0:4])
		wireLen := binary.BigEndian.Uint32(seg[4:8])
		codec := criu.Codec(seg[8])
		switch {
		case !codec.Batched():
			return segments, fmt.Errorf("cluster: image stream: bad segment codec %s", codec)
		case rawLen == 0 && rawTotal != 0:
			return segments, fmt.Errorf("cluster: image stream: empty segment")
		case rawLen > maxImageSegment:
			return segments, fmt.Errorf("cluster: image segment of %d bytes exceeds limit", rawLen)
		case uint64(wireLen) > uint64(rawLen):
			return segments, fmt.Errorf("cluster: image segment wire size %d exceeds raw size %d", wireLen, rawLen)
		case fed+uint64(rawLen) > rawTotal:
			return segments, fmt.Errorf("cluster: image segments overflow the declared %d bytes", rawTotal)
		}
		payload, err := readBounded(r, uint64(wireLen))
		if err != nil {
			return segments, err
		}
		raw, err := codec.Decompress(payload, int(rawLen))
		if err != nil {
			return segments, fmt.Errorf("cluster: image stream: %w", err)
		}
		if _, err := sp.Write(raw); err != nil {
			return segments, err
		}
		fed += uint64(rawLen)
		segments++
		if rawTotal == 0 {
			break
		}
	}
	return segments, sp.Close()
}

// readBounded reads exactly n bytes, growing the buffer in bounded
// chunks so the allocation tracks delivery, not the peer's claim.
func readBounded(r io.Reader, n uint64) ([]byte, error) {
	blob := make([]byte, 0, minU64(n, recvChunk))
	for uint64(len(blob)) < n {
		c := n - uint64(len(blob))
		if c > recvChunk {
			c = recvChunk
		}
		off := len(blob)
		blob = append(blob, make([]byte, c)...)
		if _, err := io.ReadFull(r, blob[off:]); err != nil {
			return nil, err
		}
	}
	return blob, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
