package cluster

import (
	"bytes"
	"testing"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/obs"
)

// wireTestDir builds a directory whose marshaled blob is big enough to
// span several small segments and compressible enough that flate wins.
func wireTestDir() *criu.ImageDir {
	dir := criu.NewImageDir()
	dir.Put("core-1.img", bytes.Repeat([]byte{0xAB, 0xCD}, 512))
	dir.Put("mm.img", bytes.Repeat([]byte{0x00}, 64<<10))
	dir.Put("pages.img", bytes.Repeat([]byte("dapper"), 20<<10))
	dir.Put("inventory.img", []byte{1, 2, 3})
	return dir
}

// TestImageStreamRoundTrip pins the v3 stream: for both batch codecs and
// several segment sizes (forcing 1..many segments), the decoded directory
// is byte-identical to the source, and flate shrinks the wire volume.
func TestImageStreamRoundTrip(t *testing.T) {
	dir := wireTestDir()
	blob := dir.Marshal()
	for _, codec := range []criu.Codec{criu.CodecNone, criu.CodecFlate} {
		for _, segBytes := range []int{0, 1 << 10, 17, len(blob) + 1} {
			var buf bytes.Buffer
			reg := obs.New()
			wire, err := writeImageStream(&buf, blob, codec, segBytes, reg)
			if err != nil {
				t.Fatalf("codec %s seg %d: %v", codec, segBytes, err)
			}
			if wire != uint64(buf.Len()) {
				t.Errorf("codec %s seg %d: reported %d wire bytes, wrote %d", codec, segBytes, wire, buf.Len())
			}
			if codec == criu.CodecFlate && segBytes == 0 && wire >= uint64(len(blob)) {
				t.Errorf("flate stream did not shrink: raw %d, wire %d", len(blob), wire)
			}
			if reg.Counter("wire.batches").Value() == 0 {
				t.Errorf("codec %s seg %d: no segments recorded", codec, segBytes)
			}
			got, err := readImageDirFrom(&buf)
			if err != nil {
				t.Fatalf("codec %s seg %d: decode: %v", codec, segBytes, err)
			}
			if !bytes.Equal(got.Marshal(), blob) {
				t.Errorf("codec %s seg %d: decoded directory differs from source", codec, segBytes)
			}
		}
	}
}

// TestImageStreamEmptyDir: a directory with no files still round-trips
// (one empty segment), since pre-copy rounds can legitimately be empty.
func TestImageStreamEmptyDir(t *testing.T) {
	dir := criu.NewImageDir()
	blob := dir.Marshal()
	var buf bytes.Buffer
	if _, err := writeImageStream(&buf, blob, criu.CodecFlate, 0, nil); err != nil {
		t.Fatal(err)
	}
	got, err := readImageDirFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != 0 {
		t.Errorf("empty directory decoded to %v", got.Names())
	}
}

// TestImageStreamRejectsRawCodec: the legacy codec cannot label a v3
// stream — writers must refuse rather than emit an undecodable header.
func TestImageStreamRejectsRawCodec(t *testing.T) {
	if _, err := writeImageStream(&bytes.Buffer{}, []byte{1}, criu.CodecRaw, 0, nil); err == nil {
		t.Error("writeImageStream accepted CodecRaw")
	}
}

// TestReadImageDirFromLegacy: the pre-v3 length-prefixed framing still
// decodes through the same entry point (receiver compatibility).
func TestReadImageDirFromLegacy(t *testing.T) {
	dir := wireTestDir()
	blob := dir.Marshal()
	var buf bytes.Buffer
	var hdr [8]byte
	putLegacyLen(hdr[:], uint64(len(blob)))
	buf.Write(hdr[:])
	buf.Write(blob)
	got, err := readImageDirFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), blob) {
		t.Error("legacy framing decoded to a different directory")
	}
}

func putLegacyLen(b []byte, n uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(n)
		n >>= 8
	}
}

// TestShipperDropsFramesAfterMarshal (satellite: stale-frame leak): a
// shipper reused across pre-copy rounds must not retain round N's
// pre-built frames into round N+1 — they pin every round's rewritten
// images in memory for the whole migration.
func TestShipperDropsFramesAfterMarshal(t *testing.T) {
	dir := criu.NewImageDir()
	dir.Put("core-1.img", []byte{1, 2, 3})
	dir.Put("pages.img", bytes.Repeat([]byte{7}, 4096))

	sh := newShipper()
	core, _ := dir.Get("core-1.img")
	sh.OnFile("core-1.img", core)
	if got := sh.marshal(dir, 2); !bytes.Equal(got, dir.Marshal()) {
		t.Fatal("round 1 marshal output differs from dir.Marshal")
	}
	sh.mu.Lock()
	left := len(sh.frames)
	sh.mu.Unlock()
	if left != 0 {
		t.Errorf("%d pre-built frames retained after marshal; each round's images stay pinned", left)
	}
	// A later round with fresh hooks still works and still cleans up.
	dir.Put("pages.img", bytes.Repeat([]byte{9}, 4096))
	pages, _ := dir.Get("pages.img")
	sh.OnFile("pages.img", pages)
	if got := sh.marshal(dir, 1); !bytes.Equal(got, dir.Marshal()) {
		t.Fatal("round 2 marshal output differs from dir.Marshal")
	}
	sh.mu.Lock()
	left = len(sh.frames)
	sh.mu.Unlock()
	if left != 0 {
		t.Errorf("%d pre-built frames retained after round 2", left)
	}
}
