// Package compiler contains DAPPER's two code generators, the
// cross-ISA-aligned linker, and the DELF binary format. It plays the role
// of the paper's modified LLVM 9 + GNU gold toolchain:
//
//   - every function entry is instrumented with an equivalence-point
//     checker (flag test, lock-depth test, TRAP);
//   - stack-map records are emitted for the entry site and every call
//     site, with per-ISA value locations;
//   - both binaries are laid out with identical symbol addresses by
//     padding every function to a common size with NOPs (the unified
//     virtual address space).
package compiler

import (
	"fmt"
	"math"

	"github.com/dapper-sim/dapper/internal/asm"
	"github.com/dapper-sim/dapper/internal/ir"
	"github.com/dapper-sim/dapper/internal/isa"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// siteLabels track the fragment labels whose addresses become stack-map
// PCs after assembly.
type siteLabels struct {
	siteID int
	// Entry sites use checkerStart and trap; call sites use retAddr.
	checkerStart asm.Label
	trap         asm.Label
	retAddr      asm.Label
	kind         ir.Op // OpInvalid for entry, OpCall for call sites
	liveSlots    []int
}

// funcOut is the per-architecture result of generating one function.
type funcOut struct {
	frag *asm.Fragment
	// slotOff maps slot id -> frame offset (slot at FP-off).
	slotOff map[int]int64
	// frameLocal is the locals-area size (without the FP/LR header).
	frameLocal int64
	entry      siteLabels
	callSites  []siteLabels
	// pairSlots are slots accessed with LDP/STP pair instructions.
	pairSlots map[int]bool
}

// gen is the per-function, per-architecture code generator.
type gen struct {
	f     *ir.Func
	abi   *isa.ABI
	coder isa.Coder
	frag  *asm.Fragment
	out   *funcOut
	// blockLabels[i] is the label of block i.
	blockLabels []asm.Label
}

// genFunc generates one function for one architecture.
func genFunc(f *ir.Func, abi *isa.ABI, coder isa.Coder) (*funcOut, error) {
	g := &gen{
		f: f, abi: abi, coder: coder,
		frag: asm.New(coder),
		out: &funcOut{
			slotOff:   make(map[int]int64),
			pairSlots: make(map[int]bool),
		},
	}
	g.out.frag = g.frag
	g.layoutFrame()
	if err := g.emitChecker(); err != nil {
		return nil, err
	}
	g.emitPrologue()
	g.blockLabels = make([]asm.Label, len(f.Blocks))
	for i := range f.Blocks {
		g.blockLabels[i] = g.frag.NewLabel()
	}
	for i, b := range f.Blocks {
		g.frag.Define(g.blockLabels[i])
		for _, in := range b.Instrs {
			if err := g.emitInstr(in); err != nil {
				return nil, fmt.Errorf("%s (%s): %w", f.Name, g.abi.Arch, err)
			}
		}
	}
	return g.out, nil
}

// layoutFrame assigns slot offsets. SX86 assigns them in declaration
// order, SARM in reverse — a deliberate ABI difference that forces the
// rewriter to relocate every slot when switching architectures.
func (g *gen) layoutFrame() {
	var cum int64
	assign := func(s ir.SlotDef) {
		cum += s.Size
		g.out.slotOff[s.ID] = cum
	}
	if g.abi.Arch == isa.SX86 {
		for _, s := range g.f.Slots {
			assign(s)
		}
	} else {
		for i := len(g.f.Slots) - 1; i >= 0; i-- {
			assign(g.f.Slots[i])
		}
	}
	align := int64(g.abi.StackAlign)
	g.out.frameLocal = (cum + align - 1) / align * align
}

// emitChecker emits the equivalence-point checker: if the DAPPER flag is
// set and the thread holds no locks, raise SIGTRAP. Only the reserved
// checker register is touched, so argument registers survive to the
// prologue — the entry stack map describes them.
func (g *gen) emitChecker() error {
	ck := g.abi.CheckerReg
	skip := g.frag.NewLabel()
	g.out.entry = siteLabels{siteID: g.f.EntrySiteID}
	g.out.entry.checkerStart = g.frag.Here()
	g.frag.Emit(isa.Inst{Op: isa.OpMovImm, Rd: ck, Imm: int64(isa.FlagAddr)})
	g.frag.Emit(isa.Inst{Op: isa.OpLoad, Rd: ck, Rn: ck, Imm: 0})
	g.frag.EmitBranch(isa.Inst{Op: isa.OpJz, Rd: ck}, skip)
	g.frag.Emit(isa.Inst{Op: isa.OpTlsLoad, Rd: ck, Imm: isa.TLSSlotLockDepth - int64(g.abi.TLSRegBias)})
	g.frag.EmitBranch(isa.Inst{Op: isa.OpJnz, Rd: ck}, skip)
	g.out.entry.trap = g.frag.Here()
	g.frag.Emit(isa.Inst{Op: isa.OpTrap})
	g.frag.Define(skip)
	return nil
}

// emitPrologue sets up the frame and stores parameters to their slots.
func (g *gen) emitPrologue() {
	abi := g.abi
	frame := g.out.frameLocal
	if abi.RetAddrOnStack {
		// SX86: push fp; mov fp, sp; sub sp, frame.
		g.frag.Emit(isa.Inst{Op: isa.OpPush, Rd: abi.FP})
		g.frag.Emit(isa.Inst{Op: isa.OpMov, Rd: abi.FP, Rn: abi.SP})
		if frame != 0 {
			g.frag.Emit(isa.Inst{Op: isa.OpAddImm, Rd: abi.SP, Rn: abi.SP, Imm: -frame})
		}
		for i := 0; i < g.f.NumParams; i++ {
			g.frag.Emit(isa.Inst{Op: isa.OpStore, Rd: abi.ArgRegs[i], Rn: abi.FP, Imm: -g.out.slotOff[i]})
		}
		return
	}
	// SARM: sub sp, frame+16; stp fp, lr, [sp, frame]; add fp, sp, frame.
	total := frame + 16
	g.subSPImm(total)
	if frame <= 2047 {
		g.frag.Emit(isa.Inst{Op: isa.OpStorePair, Rd: abi.FP, Rm: abi.LR, Rn: abi.SP, Imm: frame})
	} else {
		g.addrInCK(abi.SP, frame)
		g.frag.Emit(isa.Inst{Op: isa.OpStorePair, Rd: abi.FP, Rm: abi.LR, Rn: abi.CheckerReg, Imm: 0})
	}
	g.addImmTo(abi.FP, abi.SP, frame)
	// Store parameters, pairing adjacent ones with STP (these slots are
	// then pair-accessed — excluded from stack shuffling, reproducing the
	// paper's lower aarch64 entropy).
	i := 0
	for i+1 < g.f.NumParams {
		off0 := g.out.slotOff[i]
		off1 := g.out.slotOff[i+1]
		if off0 == off1+8 && -off0 >= -2048 && -off0 <= 2047 {
			g.frag.Emit(isa.Inst{Op: isa.OpStorePair, Rd: abi.ArgRegs[i], Rm: abi.ArgRegs[i+1], Rn: abi.FP, Imm: -off0})
			g.out.pairSlots[i] = true
			g.out.pairSlots[i+1] = true
			i += 2
			continue
		}
		break
	}
	for ; i < g.f.NumParams; i++ {
		g.storeToSlotFrom(abi.ArgRegs[i], i)
	}
}

// subSPImm emits sp -= v, materializing large constants.
func (g *gen) subSPImm(v int64) {
	if v == 0 {
		return
	}
	if g.abi.Arch == isa.SX86 || (v <= 2047) {
		g.frag.Emit(isa.Inst{Op: isa.OpAddImm, Rd: g.abi.SP, Rn: g.abi.SP, Imm: -v})
		return
	}
	ck := g.abi.CheckerReg
	g.frag.Emit(isa.Inst{Op: isa.OpMovImm, Rd: ck, Imm: v})
	g.frag.Emit(isa.Inst{Op: isa.OpSub, Rd: g.abi.SP, Rn: g.abi.SP, Rm: ck})
}

// addImmTo emits dst = src + v, materializing large constants.
func (g *gen) addImmTo(dst, src isa.Reg, v int64) {
	if g.abi.Arch == isa.SX86 {
		if dst == src {
			g.frag.Emit(isa.Inst{Op: isa.OpAddImm, Rd: dst, Rn: dst, Imm: v})
		} else {
			g.frag.Emit(isa.Inst{Op: isa.OpLea, Rd: dst, Rn: src, Imm: v})
		}
		return
	}
	if v >= -2048 && v <= 2047 {
		g.frag.Emit(isa.Inst{Op: isa.OpAddImm, Rd: dst, Rn: src, Imm: v})
		return
	}
	ck := g.abi.CheckerReg
	g.frag.Emit(isa.Inst{Op: isa.OpMovImm, Rd: ck, Imm: v})
	g.frag.Emit(isa.Inst{Op: isa.OpAdd, Rd: dst, Rn: src, Rm: ck})
}

// addrInCK computes base+off into the checker register (SARM big-offset
// path).
func (g *gen) addrInCK(base isa.Reg, off int64) {
	ck := g.abi.CheckerReg
	g.frag.Emit(isa.Inst{Op: isa.OpMovImm, Rd: ck, Imm: off})
	g.frag.Emit(isa.Inst{Op: isa.OpAdd, Rd: ck, Rn: base, Rm: ck})
}

// phys maps a vreg to its physical register via the depth discipline.
func (g *gen) phys(v ir.VReg) isa.Reg {
	d := int(g.f.VRegDepth[v])
	if d < len(g.abi.Scratch) && d <= ir.MaxDepth+1 {
		return g.abi.Scratch[d]
	}
	return g.abi.CheckerReg
}

// fitsNarrow reports whether a frame displacement fits the architecture's
// load/store immediate.
func (g *gen) fitsNarrow(off int64) bool {
	if g.abi.Arch == isa.SX86 {
		return true // disp32
	}
	return off >= -2048 && off <= 2047
}

func (g *gen) loadFromSlot(dst isa.Reg, slot int) error {
	off := -g.out.slotOff[slot]
	if g.fitsNarrow(off) {
		g.frag.Emit(isa.Inst{Op: isa.OpLoad, Rd: dst, Rn: g.abi.FP, Imm: off})
		return nil
	}
	if dst == g.abi.CheckerReg {
		return fmt.Errorf("slot %d: large-offset load into checker register", slot)
	}
	g.addrInCK(g.abi.FP, off)
	g.frag.Emit(isa.Inst{Op: isa.OpLoad, Rd: dst, Rn: g.abi.CheckerReg, Imm: 0})
	return nil
}

func (g *gen) storeToSlotFrom(src isa.Reg, slot int) {
	off := -g.out.slotOff[slot]
	if g.fitsNarrow(off) {
		g.frag.Emit(isa.Inst{Op: isa.OpStore, Rd: src, Rn: g.abi.FP, Imm: off})
		return
	}
	g.addrInCK(g.abi.FP, off)
	g.frag.Emit(isa.Inst{Op: isa.OpStore, Rd: src, Rn: g.abi.CheckerReg, Imm: 0})
}

func (g *gen) emitEpilogue() {
	abi := g.abi
	if abi.RetAddrOnStack {
		g.frag.Emit(isa.Inst{Op: isa.OpMov, Rd: abi.SP, Rn: abi.FP})
		g.frag.Emit(isa.Inst{Op: isa.OpPop, Rd: abi.FP})
		g.frag.Emit(isa.Inst{Op: isa.OpRet})
		return
	}
	g.frag.Emit(isa.Inst{Op: isa.OpAddImm, Rd: abi.SP, Rn: abi.FP, Imm: 16})
	g.frag.Emit(isa.Inst{Op: isa.OpLoadPair, Rd: abi.FP, Rm: abi.LR, Rn: abi.FP, Imm: 0})
	g.frag.Emit(isa.Inst{Op: isa.OpRet})
}

var irALU = map[ir.Op]isa.Op{
	ir.OpIAdd: isa.OpAdd, ir.OpISub: isa.OpSub, ir.OpIMul: isa.OpMul,
	ir.OpIDiv: isa.OpDiv, ir.OpIMod: isa.OpMod, ir.OpIAnd: isa.OpAnd,
	ir.OpIOr: isa.OpOr, ir.OpIXor: isa.OpXor, ir.OpIShl: isa.OpShl,
	ir.OpIShr:   isa.OpShr,
	ir.OpICmpEq: isa.OpCmpEq, ir.OpICmpNe: isa.OpCmpNe,
	ir.OpICmpLt: isa.OpCmpLt, ir.OpICmpLe: isa.OpCmpLe,
	ir.OpICmpGt: isa.OpCmpGt, ir.OpICmpGe: isa.OpCmpGe,
	ir.OpFAdd: isa.OpFAdd, ir.OpFSub: isa.OpFSub, ir.OpFMul: isa.OpFMul,
	ir.OpFDiv: isa.OpFDiv, ir.OpFCmpEq: isa.OpFCmpEq,
	ir.OpFCmpLt: isa.OpFCmpLt, ir.OpFCmpLe: isa.OpFCmpLe,
}

func (g *gen) emitInstr(in ir.Instr) error {
	abi := g.abi
	switch in.Op {
	case ir.OpConstInt:
		g.frag.Emit(isa.Inst{Op: isa.OpMovImm, Rd: g.phys(in.Dst), Imm: in.Imm})
	case ir.OpConstFloat:
		g.frag.Emit(isa.Inst{Op: isa.OpMovImm, Rd: g.phys(in.Dst), Imm: int64(floatBits(in.F))})
	case ir.OpItoF:
		g.frag.Emit(isa.Inst{Op: isa.OpItoF, Rd: g.phys(in.Dst), Rn: g.phys(in.A)})
	case ir.OpFtoI:
		g.frag.Emit(isa.Inst{Op: isa.OpFtoI, Rd: g.phys(in.Dst), Rn: g.phys(in.A)})
	case ir.OpLoadSlot:
		return g.loadFromSlot(g.phys(in.Dst), in.Slot)
	case ir.OpStoreSlot:
		g.storeToSlotFrom(g.phys(in.A), in.Slot)
	case ir.OpSlotAddr:
		g.addImmTo(g.phys(in.Dst), abi.FP, -g.out.slotOff[in.Slot])
	case ir.OpGlobalAddr:
		g.frag.EmitSym(isa.Inst{Op: isa.OpMovImm, Rd: g.phys(in.Dst)}, in.Sym, in.Imm)
	case ir.OpFuncAddr:
		g.frag.EmitSym(isa.Inst{Op: isa.OpMovImm, Rd: g.phys(in.Dst)}, in.Sym, 0)
	case ir.OpLoad:
		g.frag.Emit(isa.Inst{Op: isa.OpLoad, Rd: g.phys(in.Dst), Rn: g.phys(in.A), Imm: 0})
	case ir.OpStore:
		g.frag.Emit(isa.Inst{Op: isa.OpStore, Rd: g.phys(in.B), Rn: g.phys(in.A), Imm: 0})
	case ir.OpTlsLoad:
		g.frag.Emit(isa.Inst{Op: isa.OpTlsLoad, Rd: g.phys(in.Dst), Imm: in.Imm - int64(abi.TLSRegBias)})
	case ir.OpTlsStore:
		g.frag.Emit(isa.Inst{Op: isa.OpTlsStore, Rd: g.phys(in.A), Imm: in.Imm - int64(abi.TLSRegBias)})
	case ir.OpCall:
		for i, slot := range in.ArgSlots {
			if i >= len(abi.ArgRegs) {
				return fmt.Errorf("call %s: too many arguments", in.Sym)
			}
			if err := g.loadFromSlot(abi.ArgRegs[i], slot); err != nil {
				return err
			}
		}
		g.frag.EmitSym(isa.Inst{Op: isa.OpCall}, in.Sym, 0)
		site := siteLabels{siteID: in.Site, kind: ir.OpCall, retAddr: g.frag.Here(), liveSlots: in.LiveSlots}
		g.out.callSites = append(g.out.callSites, site)
		if in.Dst != ir.NoVReg && g.phys(in.Dst) != abi.RetReg {
			g.frag.Emit(isa.Inst{Op: isa.OpMov, Rd: g.phys(in.Dst), Rn: abi.RetReg})
		}
	case ir.OpSyscall:
		// Move args highest-first: syscall arg registers are the scratch
		// registers shifted by one, so reverse order avoids clobbering.
		for i := len(in.Args) - 1; i >= 0; i-- {
			src := g.phys(in.Args[i])
			dst := abi.SyscallArgRegs[i]
			if src != dst {
				g.frag.Emit(isa.Inst{Op: isa.OpMov, Rd: dst, Rn: src})
			}
		}
		g.frag.Emit(isa.Inst{Op: isa.OpMovImm, Rd: abi.SyscallNumReg, Imm: in.Imm})
		g.frag.Emit(isa.Inst{Op: isa.OpSyscall})
		if in.Dst != ir.NoVReg && g.phys(in.Dst) != abi.RetReg {
			g.frag.Emit(isa.Inst{Op: isa.OpMov, Rd: g.phys(in.Dst), Rn: abi.RetReg})
		}
	case ir.OpJmp:
		g.frag.EmitBranch(isa.Inst{Op: isa.OpJmp}, g.blockLabels[in.T1])
	case ir.OpBr:
		g.frag.EmitBranch(isa.Inst{Op: isa.OpJnz, Rd: g.phys(in.A)}, g.blockLabels[in.T1])
		g.frag.EmitBranch(isa.Inst{Op: isa.OpJmp}, g.blockLabels[in.T2])
	case ir.OpRet:
		if in.A != ir.NoVReg && g.phys(in.A) != abi.RetReg {
			g.frag.Emit(isa.Inst{Op: isa.OpMov, Rd: abi.RetReg, Rn: g.phys(in.A)})
		}
		g.emitEpilogue()
	default:
		op, ok := irALU[in.Op]
		if !ok {
			return fmt.Errorf("cannot generate IR op %v", in.Op)
		}
		g.frag.EmitALU3(op, g.phys(in.Dst), g.phys(in.A), g.phys(in.B), abi.CheckerReg)
	}
	return nil
}
