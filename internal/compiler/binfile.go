package compiler

import (
	"fmt"
	"sort"

	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// delfMagic identifies a serialized DELF binary.
const delfMagic = "DELF1\n"

// Marshal serializes a Binary (including its stack-map metadata) to the
// DELF on-disk format, a tagged imgproto message.
func (b *Binary) Marshal() []byte {
	var e imgproto.Encoder
	e.Uint64(1, uint64(b.Arch))
	e.BytesField(2, b.Text)
	e.BytesField(3, b.Data)
	e.Fixed64(4, b.Entry)
	e.Fixed64(5, b.ThreadExit)
	names := make([]string, 0, len(b.Symbols))
	for name := range b.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		addr := b.Symbols[name]
		e.Message(6, func(n *imgproto.Encoder) {
			n.String(1, name)
			n.Fixed64(2, addr)
		})
	}
	e.BytesField(7, marshalMetadata(b.Meta))
	return append([]byte(delfMagic), e.Bytes()...)
}

// UnmarshalBinary parses a DELF blob.
func UnmarshalBinary(blob []byte) (*Binary, error) {
	if len(blob) < len(delfMagic) || string(blob[:len(delfMagic)]) != delfMagic {
		return nil, fmt.Errorf("compiler: not a DELF binary")
	}
	b := &Binary{Symbols: map[string]uint64{}}
	err := imgproto.NewDecoder(blob[len(delfMagic):]).Each(func(f uint32, d *imgproto.Decoder) error {
		switch f {
		case 1:
			v, err := d.FieldUint64()
			b.Arch = isa.Arch(v)
			return err
		case 2:
			raw, err := d.FieldBytes()
			b.Text = append([]byte(nil), raw...)
			return err
		case 3:
			raw, err := d.FieldBytes()
			b.Data = append([]byte(nil), raw...)
			return err
		case 4:
			v, err := d.FieldUint64()
			b.Entry = v
			return err
		case 5:
			v, err := d.FieldUint64()
			b.ThreadExit = v
			return err
		case 6:
			var name string
			var addr uint64
			if err := d.FieldMessage(func(nf uint32, nd *imgproto.Decoder) error {
				switch nf {
				case 1:
					s, err := nd.FieldString()
					name = s
					return err
				case 2:
					v, err := nd.FieldUint64()
					addr = v
					return err
				}
				return nil
			}); err != nil {
				return err
			}
			b.Symbols[name] = addr
			return nil
		case 7:
			raw, err := d.FieldBytes()
			if err != nil {
				return err
			}
			m, err := unmarshalMetadata(raw)
			if err != nil {
				return err
			}
			b.Meta = m
			return nil
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("compiler: parse DELF: %w", err)
	}
	if b.Meta == nil {
		return nil, fmt.Errorf("compiler: DELF missing metadata section")
	}
	return b, nil
}

func marshalMetadata(m *stackmap.Metadata) []byte {
	var e imgproto.Encoder
	for _, fn := range m.Funcs {
		e.Message(1, func(fe *imgproto.Encoder) {
			fe.String(1, fn.Name)
			fe.Fixed64(2, fn.Addr)
			fe.Fixed64(3, fn.Size)
			fe.Uint64(4, uint64(fn.NumParams))
			fe.Bool(5, fn.Blocking)
			fe.Bool(6, fn.Wrapper)
			fe.Int64(7, fn.FrameLocal[0])
			fe.Int64(8, fn.FrameLocal[1])
			for i := range fn.Slots {
				s := &fn.Slots[i]
				fe.Message(9, func(se *imgproto.Encoder) {
					se.Uint64(1, uint64(s.ID))
					se.String(2, s.Name)
					se.Uint64(3, uint64(s.Kind))
					se.Int64(4, s.Size)
					se.Bool(5, s.Ptr)
					se.Int64(6, s.Off[0])
					se.Int64(7, s.Off[1])
					se.Bool(8, s.PairAccessed[0])
					se.Bool(9, s.PairAccessed[1])
				})
			}
			if fn.EntrySite != nil {
				fe.BytesField(10, marshalSite(fn.EntrySite))
			}
			for _, cs := range fn.CallSites {
				fe.BytesField(11, marshalSite(cs))
			}
		})
	}
	return e.Bytes()
}

func marshalSite(s *stackmap.Site) []byte {
	var e imgproto.Encoder
	e.Uint64(1, uint64(s.ID))
	e.String(2, s.Func)
	e.Uint64(3, uint64(s.Kind))
	for i := 0; i < 2; i++ {
		e.Message(4, func(pe *imgproto.Encoder) {
			pe.Fixed64(1, s.PCs[i].TrapPC)
			pe.Fixed64(2, s.PCs[i].ResumePC)
			pe.Fixed64(3, s.PCs[i].RetAddr)
		})
	}
	for _, lv := range s.Live {
		e.Message(5, func(le *imgproto.Encoder) {
			le.Uint64(1, uint64(lv.SlotID))
			le.Bool(2, lv.Ptr)
			for i := 0; i < 2; i++ {
				le.Message(3, func(ce *imgproto.Encoder) {
					ce.Bool(1, lv.Loc[i].InReg)
					ce.Int64(2, int64(lv.Loc[i].DwarfReg))
					ce.Int64(3, lv.Loc[i].FrameOff)
				})
			}
		})
	}
	return e.Bytes()
}

func unmarshalMetadata(raw []byte) (*stackmap.Metadata, error) {
	m := &stackmap.Metadata{}
	err := imgproto.NewDecoder(raw).Each(func(f uint32, d *imgproto.Decoder) error {
		if f != 1 {
			return nil
		}
		fn := &stackmap.Func{}
		if err := d.FieldMessage(func(nf uint32, nd *imgproto.Decoder) error {
			switch nf {
			case 1:
				s, err := nd.FieldString()
				fn.Name = s
				return err
			case 2:
				v, err := nd.FieldUint64()
				fn.Addr = v
				return err
			case 3:
				v, err := nd.FieldUint64()
				fn.Size = v
				return err
			case 4:
				v, err := nd.FieldUint64()
				fn.NumParams = int(v)
				return err
			case 5:
				v, err := nd.FieldBool()
				fn.Blocking = v
				return err
			case 6:
				v, err := nd.FieldBool()
				fn.Wrapper = v
				return err
			case 7:
				v, err := nd.FieldInt64()
				fn.FrameLocal[0] = v
				return err
			case 8:
				v, err := nd.FieldInt64()
				fn.FrameLocal[1] = v
				return err
			case 9:
				var s stackmap.Slot
				if err := nd.FieldMessage(func(sf uint32, sd *imgproto.Decoder) error {
					switch sf {
					case 1:
						v, err := sd.FieldUint64()
						s.ID = int(v)
						return err
					case 2:
						v, err := sd.FieldString()
						s.Name = v
						return err
					case 3:
						v, err := sd.FieldUint64()
						s.Kind = stackmap.SlotKind(v)
						return err
					case 4:
						v, err := sd.FieldInt64()
						s.Size = v
						return err
					case 5:
						v, err := sd.FieldBool()
						s.Ptr = v
						return err
					case 6:
						v, err := sd.FieldInt64()
						s.Off[0] = v
						return err
					case 7:
						v, err := sd.FieldInt64()
						s.Off[1] = v
						return err
					case 8:
						v, err := sd.FieldBool()
						s.PairAccessed[0] = v
						return err
					case 9:
						v, err := sd.FieldBool()
						s.PairAccessed[1] = v
						return err
					}
					return nil
				}); err != nil {
					return err
				}
				fn.Slots = append(fn.Slots, s)
				return nil
			case 10:
				raw, err := nd.FieldBytes()
				if err != nil {
					return err
				}
				site, err := unmarshalSite(raw)
				if err != nil {
					return err
				}
				fn.EntrySite = site
				return nil
			case 11:
				raw, err := nd.FieldBytes()
				if err != nil {
					return err
				}
				site, err := unmarshalSite(raw)
				if err != nil {
					return err
				}
				fn.CallSites = append(fn.CallSites, site)
				return nil
			}
			return nil
		}); err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, fn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.Index()
	return m, nil
}

func unmarshalSite(raw []byte) (*stackmap.Site, error) {
	s := &stackmap.Site{}
	pcIdx := 0
	err := imgproto.NewDecoder(raw).Each(func(f uint32, d *imgproto.Decoder) error {
		switch f {
		case 1:
			v, err := d.FieldUint64()
			s.ID = int(v)
			return err
		case 2:
			v, err := d.FieldString()
			s.Func = v
			return err
		case 3:
			v, err := d.FieldUint64()
			s.Kind = stackmap.SiteKind(v)
			return err
		case 4:
			idx := pcIdx
			pcIdx++
			if idx >= 2 {
				return fmt.Errorf("too many PC records")
			}
			return d.FieldMessage(func(pf uint32, pd *imgproto.Decoder) error {
				v, err := pd.FieldUint64()
				if err != nil {
					return err
				}
				switch pf {
				case 1:
					s.PCs[idx].TrapPC = v
				case 2:
					s.PCs[idx].ResumePC = v
				case 3:
					s.PCs[idx].RetAddr = v
				}
				return nil
			})
		case 5:
			var lv stackmap.LiveValue
			locIdx := 0
			if err := d.FieldMessage(func(lf uint32, ld *imgproto.Decoder) error {
				switch lf {
				case 1:
					v, err := ld.FieldUint64()
					lv.SlotID = int(v)
					return err
				case 2:
					v, err := ld.FieldBool()
					lv.Ptr = v
					return err
				case 3:
					idx := locIdx
					locIdx++
					if idx >= 2 {
						return fmt.Errorf("too many locations")
					}
					return ld.FieldMessage(func(cf uint32, cd *imgproto.Decoder) error {
						switch cf {
						case 1:
							v, err := cd.FieldBool()
							lv.Loc[idx].InReg = v
							return err
						case 2:
							v, err := cd.FieldInt64()
							lv.Loc[idx].DwarfReg = int(v)
							return err
						case 3:
							v, err := cd.FieldInt64()
							lv.Loc[idx].FrameOff = v
							return err
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			s.Live = append(s.Live, lv)
			return nil
		}
		return nil
	})
	return s, err
}
