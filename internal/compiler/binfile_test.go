package compiler_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/kernel"
)

func TestBinaryRoundTrip(t *testing.T) {
	pair, err := compiler.Compile(`
func twice(v int) int { return v * 2; }
func main() {
	var x int;
	x = twice(21);
	printi(x);
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range []*compiler.Binary{pair.X86, pair.ARM} {
		blob := bin.Marshal()
		got, err := compiler.UnmarshalBinary(blob)
		if err != nil {
			t.Fatalf("%v: %v", bin.Arch, err)
		}
		if got.Arch != bin.Arch || got.Entry != bin.Entry || got.ThreadExit != bin.ThreadExit {
			t.Errorf("%v: header mismatch", bin.Arch)
		}
		if string(got.Text) != string(bin.Text) || string(got.Data) != string(bin.Data) {
			t.Errorf("%v: section mismatch", bin.Arch)
		}
		if len(got.Symbols) != len(bin.Symbols) {
			t.Errorf("%v: symbols %d != %d", bin.Arch, len(got.Symbols), len(bin.Symbols))
		}
		// Metadata survives: functions, sites, live values.
		of, _ := bin.Meta.FuncByName("twice")
		nf, ok := got.Meta.FuncByName("twice")
		if !ok {
			t.Fatalf("%v: metadata lost twice()", bin.Arch)
		}
		if nf.Addr != of.Addr || nf.Size != of.Size || len(nf.Slots) != len(of.Slots) {
			t.Errorf("%v: func meta mismatch", bin.Arch)
		}
		if nf.EntrySite == nil || len(nf.EntrySite.Live) != len(of.EntrySite.Live) {
			t.Errorf("%v: entry site mismatch", bin.Arch)
		}
		if nf.EntrySite.PCs != of.EntrySite.PCs {
			t.Errorf("%v: entry PCs mismatch", bin.Arch)
		}
		// The decoded binary must actually run.
		k := kernel.New(kernel.Config{})
		p, err := k.StartProcess(got.LoadSpec("/bin/rt." + got.Arch.String()))
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Run(p); err != nil {
			t.Fatalf("%v: run decoded binary: %v", bin.Arch, err)
		}
		if out := p.ConsoleString(); out != "42" {
			t.Errorf("%v: output %q", bin.Arch, out)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := compiler.UnmarshalBinary([]byte("not a delf")); err == nil {
		t.Error("want magic error")
	}
	if _, err := compiler.UnmarshalBinary([]byte("DELF1\n\xff\xff\xff")); err == nil {
		t.Error("want parse error")
	}
}
