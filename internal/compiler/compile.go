package compiler

import (
	"github.com/dapper-sim/dapper/internal/ir"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/lang"
)

// Compile runs the full pipeline: parse, check, lower, and build the
// aligned dual-architecture binary pair.
func Compile(src string) (*Pair, error) {
	file, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := lang.Check(file)
	if err != nil {
		return nil, err
	}
	prog, err := ir.Lower(file, info)
	if err != nil {
		return nil, err
	}
	return BuildPair(prog)
}

// LoadSpec converts a binary into the kernel's loading form. exePath names
// the executable in the files image; by convention the pair uses the same
// stem with an architecture suffix so the rewriter can retarget it.
func (b *Binary) LoadSpec(exePath string) kernel.LoadSpec {
	return kernel.LoadSpec{
		Arch:       b.Arch,
		Coder:      CoderFor(b.Arch),
		Text:       b.Text,
		Data:       b.Data,
		Entry:      b.Entry,
		ThreadExit: b.ThreadExit,
		ExePath:    exePath,
	}
}

// ExePath returns the conventional executable path for a program name on
// an architecture (e.g. /bin/prog.sx86). The cross-ISA rewriter swaps the
// suffix when retargeting the files image.
func ExePath(name string, arch isa.Arch) string {
	return "/bin/" + name + "." + arch.String()
}
