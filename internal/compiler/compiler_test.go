package compiler_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
)

// runOn compiles src and runs it natively on one architecture, returning
// console output.
func runOn(t *testing.T, pair *compiler.Pair, arch isa.Arch, cores int) (*kernel.Process, string) {
	t.Helper()
	k := kernel.New(kernel.Config{Cores: cores})
	bin := pair.ByArch(arch)
	p, err := k.StartProcess(bin.LoadSpec(compiler.ExePath("test", arch)))
	if err != nil {
		t.Fatalf("start (%s): %v", arch, err)
	}
	if err := k.Run(p); err != nil {
		t.Fatalf("run (%s): %v\nconsole: %s", arch, err, p.ConsoleString())
	}
	return p, p.ConsoleString()
}

// compileRun compiles and runs on both architectures, asserting identical
// output, and returns it.
func compileRun(t *testing.T, src string, cores int) string {
	t.Helper()
	pair, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, outX := runOn(t, pair, isa.SX86, cores)
	_, outA := runOn(t, pair, isa.SARM, cores)
	if outX != outA {
		t.Fatalf("cross-ISA output mismatch:\nsx86: %q\nsarm: %q", outX, outA)
	}
	return outX
}

func TestHelloWorld(t *testing.T) {
	out := compileRun(t, `
func main() {
	print("hello, dapper\n");
	printi(42);
	print("\n");
}`, 1)
	if out != "hello, dapper\n42\n" {
		t.Errorf("output = %q", out)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	out := compileRun(t, `
func collatz(n int) int {
	var steps int;
	steps = 0;
	while n != 1 {
		if n % 2 == 0 {
			n = n / 2;
		} else {
			n = 3 * n + 1;
		}
		steps = steps + 1;
	}
	return steps;
}

func main() {
	printi(collatz(27));
	print(" ");
	var total int;
	for var i int = 1; i <= 100; i = i + 1 {
		if i % 3 == 0 && i % 5 == 0 { continue; }
		total = total + i;
	}
	printi(total);
}`, 1)
	if out != "111 4735" {
		t.Errorf("output = %q", out)
	}
}

func TestFloatsAndCasts(t *testing.T) {
	out := compileRun(t, `
func mean(a float, b float) float {
	return (a + b) / 2.0;
}
func main() {
	var f float;
	f = mean(3.0, 4.5);
	printf(f);
	print(" ");
	printi(int(f * 100.0));
	print(" ");
	var x int;
	x = 7;
	printf(float(x) / 2.0);
	print(" ");
	if 1.5 < 2.5 { printi(1); } else { printi(0); }
	if -1.0 >= 0.0 { printi(1); } else { printi(0); }
	if 2.0 != 2.0 { printi(1); } else { printi(0); }
}`, 1)
	if out != "3.75 375 3.5 100" {
		t.Errorf("output = %q", out)
	}
}

func TestArraysPointersRecursion(t *testing.T) {
	out := compileRun(t, `
var gtab[10] int;

func fib(n int) int {
	if n < 2 { return n; }
	return fib(n-1) + fib(n-2);
}

func sum(p *int, n int) int {
	var s int;
	for var i int = 0; i < n; i = i + 1 {
		s = s + p[i];
	}
	return s;
}

func main() {
	var local[10] int;
	for var i int = 0; i < 10; i = i + 1 {
		local[i] = i * i;
		gtab[i] = i;
	}
	printi(sum(&local[0], 10));
	print(" ");
	printi(sum(&gtab[0], 10));
	print(" ");
	printi(fib(15));
	print(" ");
	var p *int;
	p = alloc(8 * 5);
	for var i int = 0; i < 5; i = i + 1 { p[i] = i + 100; }
	printi(sum(p, 5));
}`, 1)
	if out != "285 45 610 510" {
		t.Errorf("output = %q", out)
	}
}

func TestThreadsAndMutex(t *testing.T) {
	out := compileRun(t, `
var counter int;
var tids[4] int;

func worker(id int) {
	var i int;
	for i = 0; i < 50; i = i + 1 {
		lock(1);
		counter = counter + 1;
		unlock(1);
	}
}

func main() {
	var i int;
	for i = 0; i < 4; i = i + 1 {
		tids[i] = spawn(worker, i);
	}
	for i = 0; i < 4; i = i + 1 {
		join(tids[i]);
	}
	printi(counter);
}`, 2)
	if out != "200" {
		t.Errorf("output = %q", out)
	}
}

func TestDeepExpressionsAndLogic(t *testing.T) {
	out := compileRun(t, `
func f(x int) int { return x + 1; }
func main() {
	var x int;
	x = 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + 9)))))));
	printi(x);
	print(" ");
	x = f(1) + f(2) + f(3) * f(4);
	printi(x);
	print(" ");
	var b int;
	b = (x > 10) && (f(x) > 0) || (x == 0);
	printi(b);
	print(" ");
	printi(!b);
	print(" ");
	printi(-x + (3 << 2) - (64 >> 3) + (7 & 5) + (1 | 2) ^ 15);
}`, 1)
	// The last value follows DapC precedence: ((-25+12-8+5+3) ^ 15) = -4.
	if out != "45 25 1 0 -4" {
		t.Errorf("output = %q", out)
	}
}

func TestAlignedSymbolAddresses(t *testing.T) {
	pair, err := compiler.Compile(`
func helper(a int) int { return a * 2; }
func main() { printi(helper(21)); }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pair.X86.Symbols) != len(pair.ARM.Symbols) {
		t.Fatal("symbol table size mismatch")
	}
	for name, addr := range pair.X86.Symbols {
		if pair.ARM.Symbols[name] != addr {
			t.Errorf("symbol %s: 0x%x (sx86) != 0x%x (sarm)", name, addr, pair.ARM.Symbols[name])
		}
	}
	if len(pair.X86.Text) != len(pair.ARM.Text) {
		t.Errorf("text sizes differ: %d vs %d", len(pair.X86.Text), len(pair.ARM.Text))
	}
	// Frame offsets must differ between ISAs for multi-slot functions
	// (the deliberate ABI divergence).
	mf, ok := pair.Meta.FuncByName("main")
	if !ok {
		t.Fatal("no metadata for main")
	}
	if mf.EntrySite == nil {
		t.Fatal("main has no entry site")
	}
	if mf.EntrySite.PCs[0].TrapPC == 0 || mf.EntrySite.PCs[1].TrapPC == 0 {
		t.Error("entry trap PCs not recorded")
	}
}

func TestStackMapEntryLocations(t *testing.T) {
	pair, err := compiler.Compile(`
func g(a int, b *int) int { return a + *b; }
func main() {
	var x int;
	x = 5;
	printi(g(2, &x));
}`)
	if err != nil {
		t.Fatal(err)
	}
	gf, ok := pair.Meta.FuncByName("g")
	if !ok {
		t.Fatal("no metadata for g")
	}
	if len(gf.EntrySite.Live) != 2 {
		t.Fatalf("entry live = %d, want 2", len(gf.EntrySite.Live))
	}
	for i, lv := range gf.EntrySite.Live {
		if !lv.Loc[0].InReg || !lv.Loc[1].InReg {
			t.Errorf("param %d not in registers: %+v", i, lv)
		}
		// Different DWARF numbering spaces per ISA (paper Fig. 4).
		if lv.Loc[0].DwarfReg == lv.Loc[1].DwarfReg {
			t.Errorf("param %d has same dwarf reg on both ISAs", i)
		}
	}
	if !gf.EntrySite.Live[1].Ptr {
		t.Error("pointer parameter not marked Ptr")
	}
	// Call-site records in main must locate live slots at different frame
	// offsets per ISA.
	mf, _ := pair.Meta.FuncByName("main")
	if len(mf.CallSites) == 0 {
		t.Fatal("main has no call sites")
	}
	for _, cs := range mf.CallSites {
		if cs.PCs[0].RetAddr == 0 || cs.PCs[1].RetAddr == 0 {
			t.Errorf("site %d missing return addresses", cs.ID)
		}
	}
}

func TestCheckerOverheadOnlyWhenFlagSet(t *testing.T) {
	// With the flag clear the program must run to completion; with the
	// flag poked mid-run, threads must trap at equivalence points.
	pair, err := compiler.Compile(`
func tick(n int) int { return n + 1; }
func main() {
	var i int;
	var v int;
	for i = 0; i < 10000; i = i + 1 {
		v = tick(v);
	}
	printi(v);
}`)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/t.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	tr := kernel.Attach(p)
	// Run a little, then set the flag.
	for i := 0; i < 5; i++ {
		if _, err := k.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.PokeData(isa.FlagAddr, 1); err != nil {
		t.Fatal(err)
	}
	trapped := false
	for i := 0; i < 100 && !trapped; i++ {
		st, err := k.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Trapped > 0 {
			trapped = true
		}
		if st.Exited {
			t.Fatal("exited before trapping")
		}
	}
	if !trapped {
		t.Fatal("never trapped after flag set")
	}
	// The trap PC must match a known equivalence point.
	snap, err := tr.GetRegs(1)
	if err != nil {
		t.Fatal(err)
	}
	site, ok := pair.Meta.SiteByTrapPC(isa.SX86, snap.Regs.PC)
	if !ok {
		t.Fatalf("trap PC 0x%x is not a known equivalence point", snap.Regs.PC)
	}
	if site.Kind != 1 { // SiteEntry
		t.Errorf("trap at non-entry site %+v", site)
	}
	// Clear the flag and resume from the checker start: the program must
	// finish with the correct result.
	if err := tr.PokeData(isa.FlagAddr, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.ResumeThread(1, site.PCs[0].ResumePC); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsoleString(); got != "10000" {
		t.Errorf("output = %q", got)
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := compiler.Compile(`func main() { undefined(); }`); err == nil {
		t.Error("want compile error")
	}
	if _, err := compiler.Compile(`not a program`); err == nil {
		t.Error("want parse error")
	}
}

func TestRecvSendProgram(t *testing.T) {
	pair, err := compiler.Compile(`
func main() {
	var buf[32] int;
	var n int;
	while 1 {
		n = recv(&buf[0], 256);
		if n < 0 { break; }
		buf[1] = buf[1] * 2;
		send(&buf[0], n);
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		k := kernel.New(kernel.Config{})
		p, err := k.StartProcess(pair.ByArch(arch).LoadSpec("/bin/srv"))
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 16)
		msg[0] = 7 // word 0 = 7
		msg[8] = 5 // word 1 = 5
		p.PushInput(msg)
		p.CloseInput()
		if err := k.Run(p); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		out := p.TakeOutput()
		if len(out) != 16 || out[8] != 10 {
			t.Errorf("%s: output % x", arch, out)
		}
	}
}

// TestBigFrames exercises the SARM imm12-overflow fallback: a 1024-word
// local array pushes slot offsets beyond the load/store immediate range,
// forcing address materialization through the checker register.
func TestBigFrames(t *testing.T) {
	out := compileRun(t, `
func fill(p *int, n int) {
	var i int;
	for i = 0; i < n; i = i + 1 { p[i] = i * 3 + 1; }
}
func crunch(seed int) int {
	var big[1024] int;
	var small int;
	var acc int;
	var i int;
	small = seed;
	fill(&big[0], 1024);
	for i = 0; i < 1024; i = i + 1 {
		acc = acc + big[i];
	}
	return acc + small;
}
func main() {
	printi(crunch(9));
}`, 1)
	want := 0
	for i := 0; i < 1024; i++ {
		want += i*3 + 1
	}
	want += 9
	if out != itoa(want) {
		t.Errorf("output = %q, want %d", out, want)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
