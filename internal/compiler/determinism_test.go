package compiler_test

import (
	"bytes"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// TestCompileDeterminism: compiling the same source twice must produce
// bit-identical binaries — the property that lets the files-image path
// resolve to "the same binary" on every node of the cluster.
func TestCompileDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			src := w.Source(workloads.ClassS)
			a, err := compiler.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			b, err := compiler.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.X86.Marshal(), b.X86.Marshal()) {
				t.Error("sx86 binaries differ between identical compiles")
			}
			if !bytes.Equal(a.ARM.Marshal(), b.ARM.Marshal()) {
				t.Error("sarm binaries differ between identical compiles")
			}
		})
	}
}

// TestTextFullyDisassembles: linear-sweep disassembly of every compiled
// function must consume exactly its byte range on both ISAs — the property
// the SBI shuffler and the gadget scanner rely on.
func TestTextFullyDisassembles(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			pair, err := workloads.CompilePair(w, workloads.ClassS)
			if err != nil {
				t.Fatal(err)
			}
			for _, bin := range []*compiler.Binary{pair.X86, pair.ARM} {
				coder := compiler.CoderFor(bin.Arch)
				for _, fn := range bin.Meta.Funcs {
					start := fn.Addr - 0x400000
					end := start + fn.Size
					for off := start; off < end; {
						inst, err := coder.Decode(bin.Text[off:end], 0x400000+off)
						if err != nil {
							t.Fatalf("%v %s at +0x%x: %v", bin.Arch, fn.Name, off-start, err)
						}
						off += uint64(inst.Len)
					}
				}
			}
		})
	}
}
