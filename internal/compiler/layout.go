package compiler

import (
	"encoding/binary"
	"fmt"

	"github.com/dapper-sim/dapper/internal/ir"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/isa/sarm"
	"github.com/dapper-sim/dapper/internal/isa/sx86"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// Binary is a loadable DELF image for one architecture. Both binaries of a
// pair share symbol addresses and metadata (the unified address space).
type Binary struct {
	Arch       isa.Arch
	Text       []byte
	Data       []byte
	Entry      uint64
	ThreadExit uint64
	Symbols    map[string]uint64
	Meta       *stackmap.Metadata
}

// Pair is the dual-architecture output of one compilation.
type Pair struct {
	X86  *Binary
	ARM  *Binary
	Meta *stackmap.Metadata
	Prog *ir.Program
}

// ByArch selects one binary of the pair.
func (p *Pair) ByArch(a isa.Arch) *Binary {
	if a == isa.SX86 {
		return p.X86
	}
	return p.ARM
}

// CoderFor returns the machine-code coder for an architecture.
func CoderFor(a isa.Arch) isa.Coder {
	if a == isa.SX86 {
		return sx86.Coder{}
	}
	return sarm.Coder{}
}

// BuildPair lays out and assembles both binaries from one IR program,
// padding every function to a common size so all symbols share addresses
// across architectures, and produces the combined stack-map metadata.
func BuildPair(prog *ir.Program) (*Pair, error) {
	// Data layout: word 0 is the DAPPER transformation flag, then globals,
	// then pooled string literals. The layout is architecture-independent.
	dataOff := map[string]uint64{}
	var dataSize uint64 = 8 // flag
	for _, gd := range prog.Globals {
		dataOff[gd.Name] = dataSize
		dataSize += uint64((gd.Size + 7) / 8 * 8)
	}
	strOff := map[string]uint64{}
	for _, s := range prog.Strings {
		strOff[s.Sym] = dataSize
		dataSize += uint64((len(s.Data) + 7) / 8 * 8)
	}
	data := make([]byte, dataSize)
	for _, s := range prog.Strings {
		copy(data[strOff[s.Sym]:], s.Data)
	}

	// Generate both architectures' fragments for every function.
	type perFunc struct {
		f    *ir.Func
		outs [2]*funcOut
		addr uint64
		size uint64
	}
	coders := [2]isa.Coder{sx86.Coder{}, sarm.Coder{}}
	abis := [2]*isa.ABI{isa.ABISX86, isa.ABISARM}
	funcs := make([]*perFunc, 0, len(prog.Funcs))
	cursor := isa.TextBase
	for _, f := range prog.Funcs {
		pf := &perFunc{f: f}
		maxSize := 0
		for i := 0; i < 2; i++ {
			out, err := genFunc(f, abis[i], coders[i])
			if err != nil {
				return nil, fmt.Errorf("compile %s: %w", f.Name, err)
			}
			pf.outs[i] = out
			if s := out.frag.Size(); s > maxSize {
				maxSize = s
			}
		}
		// Pad to a 16-byte multiple: symbol alignment and SARM word size.
		common := (maxSize + 15) / 16 * 16
		for i := 0; i < 2; i++ {
			if err := pf.outs[i].frag.Pad(common); err != nil {
				return nil, fmt.Errorf("pad %s (%s): %w", f.Name, abis[i].Arch, err)
			}
		}
		pf.addr = cursor
		pf.size = uint64(common)
		cursor += pf.size
		funcs = append(funcs, pf)
	}

	// Symbol table shared by both binaries.
	symbols := make(map[string]uint64, len(funcs)+len(dataOff)+len(strOff))
	for _, pf := range funcs {
		symbols[pf.f.Name] = pf.addr
	}
	for name, off := range dataOff {
		symbols[name] = isa.DataBase + off
	}
	for sym, off := range strOff {
		symbols[sym] = isa.DataBase + off
	}
	resolve := func(name string) (uint64, error) {
		if addr, ok := symbols[name]; ok {
			return addr, nil
		}
		return 0, fmt.Errorf("undefined symbol %q", name)
	}

	// Assemble and collect metadata.
	meta := &stackmap.Metadata{}
	texts := [2][]byte{}
	for i := 0; i < 2; i++ {
		texts[i] = make([]byte, 0, cursor-isa.TextBase)
	}
	for _, pf := range funcs {
		mf := &stackmap.Func{
			Name:      pf.f.Name,
			Addr:      pf.addr,
			Size:      pf.size,
			NumParams: pf.f.NumParams,
			Blocking:  pf.f.Blocking,
			Wrapper:   pf.f.Wrapper,
		}
		// Slots with per-ISA offsets.
		for _, s := range pf.f.Slots {
			slot := stackmap.Slot{
				ID: s.ID, Name: s.Name, Size: s.Size, Ptr: s.Ptr,
				Kind: slotKind(s.Kind),
			}
			for i := 0; i < 2; i++ {
				slot.Off[i] = pf.outs[i].slotOff[s.ID]
				slot.PairAccessed[i] = pf.outs[i].pairSlots[s.ID]
			}
			mf.Slots = append(mf.Slots, slot)
		}
		entry := &stackmap.Site{ID: pf.f.EntrySiteID, Func: pf.f.Name, Kind: stackmap.SiteEntry}
		for p := 0; p < pf.f.NumParams; p++ {
			lv := stackmap.LiveValue{SlotID: p, Ptr: pf.f.ParamPtr[p]}
			for i := 0; i < 2; i++ {
				lv.Loc[i] = stackmap.Location{InReg: true, DwarfReg: abis[i].DwarfReg(abis[i].ArgRegs[p])}
			}
			entry.Live = append(entry.Live, lv)
		}
		mf.EntrySite = entry

		callSiteMetas := make([][]*stackmap.Site, 2)
		for i := 0; i < 2; i++ {
			mf.FrameLocal[i] = pf.outs[i].frameLocal
			code, labels, err := pf.outs[i].frag.Assemble(pf.addr, resolve)
			if err != nil {
				return nil, fmt.Errorf("assemble %s (%s): %w", pf.f.Name, abis[i].Arch, err)
			}
			if uint64(len(code)) != pf.size {
				return nil, fmt.Errorf("assemble %s (%s): size %d != %d", pf.f.Name, abis[i].Arch, len(code), pf.size)
			}
			texts[i] = append(texts[i], code...)
			entry.PCs[i] = stackmap.SitePCs{
				TrapPC:   labels[pf.outs[i].entry.trap],
				ResumePC: labels[pf.outs[i].entry.checkerStart],
			}
			for _, cs := range pf.outs[i].callSites {
				site := &stackmap.Site{ID: cs.siteID, Func: pf.f.Name, Kind: stackmap.SiteCall}
				site.PCs[i] = stackmap.SitePCs{RetAddr: labels[cs.retAddr]}
				callSiteMetas[i] = append(callSiteMetas[i], site)
			}
		}
		// Merge the two architectures' call-site PC views by site id.
		if len(callSiteMetas[0]) != len(callSiteMetas[1]) {
			return nil, fmt.Errorf("%s: call-site count mismatch across ISAs", pf.f.Name)
		}
		liveBySite := map[int][]int{}
		for _, b := range pf.f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					liveBySite[in.Site] = in.LiveSlots
				}
			}
		}
		for j, s0 := range callSiteMetas[0] {
			s1 := callSiteMetas[1][j]
			if s0.ID != s1.ID {
				return nil, fmt.Errorf("%s: call-site order mismatch across ISAs", pf.f.Name)
			}
			s0.PCs[1] = s1.PCs[1]
			for _, slotID := range liveBySite[s0.ID] {
				sd := pf.f.Slots[slotID]
				lv := stackmap.LiveValue{SlotID: slotID, Ptr: sd.Ptr}
				for i := 0; i < 2; i++ {
					lv.Loc[i] = stackmap.Location{FrameOff: pf.outs[i].slotOff[slotID]}
				}
				s0.Live = append(s0.Live, lv)
			}
			mf.CallSites = append(mf.CallSites, s0)
		}
		meta.Funcs = append(meta.Funcs, mf)
	}
	meta.Index()

	// The data section's flag word must start zeroed.
	binary.LittleEndian.PutUint64(data[0:], 0)

	mkBin := func(i int, arch isa.Arch) *Binary {
		return &Binary{
			Arch:       arch,
			Text:       texts[i],
			Data:       data,
			Entry:      symbols["_start"],
			ThreadExit: symbols["__thread_exit"],
			Symbols:    symbols,
			Meta:       meta,
		}
	}
	return &Pair{X86: mkBin(0, isa.SX86), ARM: mkBin(1, isa.SARM), Meta: meta, Prog: prog}, nil
}

func slotKind(k ir.SlotKind) stackmap.SlotKind {
	switch k {
	case ir.SlotParam:
		return stackmap.SlotParam
	case ir.SlotArray:
		return stackmap.SlotArray
	case ir.SlotTemp:
		return stackmap.SlotTemp
	default:
		return stackmap.SlotLocal
	}
}
