package core

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/stackmap"
	"github.com/dapper-sim/dapper/internal/updatecheck"
)

// LiveUpdatePolicy implements dynamic software update (DSU), one of the
// extension policies the paper names (§I: "other possible policies can be
// live software updates"): the checkpointed process is rewritten to resume
// under a *patched* binary of the same program. Code may change freely;
// stacks are re-laid-out with the same engine as the cross-ISA transform,
// using the old binary's metadata as the source side and the new binary's
// as the destination.
//
// The patch must be state-compatible, which UpdateCompatibility verifies
// from the two binaries' metadata:
//
//   - every function with frames on some stack still exists, with the same
//     equivalence-point site ids and the same live-value sets (a patch may
//     change bodies between calls, constants, and arithmetic, but not the
//     call structure of frames that are live at the checkpoint);
//   - existing globals keep their addresses (new globals may be appended).
type LiveUpdatePolicy struct {
	// NewExePath names the patched binary in the policy context's
	// provider.
	NewExePath string
}

// Name implements Policy.
func (LiveUpdatePolicy) Name() string { return "live-update" }

var _ Policy = LiveUpdatePolicy{}

// UpdateCompatibility checks that new can adopt process state produced by
// old. It returns nil when every function and global of old is
// state-compatible in new. The verdict comes from the updatecheck
// cross-version classifier (pass 2): every function must classify safe
// or identity-mappable — today's executor transfers state by slot id
// with no mapping table — and the global layout must be unchanged.
func UpdateCompatibility(oldBin, newBin binaryInfo) error {
	return updatecheck.Compatible(
		&updatecheck.Binary{Meta: oldBin.metadata(), Symbols: oldBin.symbols()},
		&updatecheck.Binary{Meta: newBin.metadata(), Symbols: newBin.symbols()},
	)
}

// binaryInfo decouples the compatibility check from the compiler package
// (compiler.Binary satisfies it).
type binaryInfo interface {
	metadata() *stackmap.Metadata
	symbols() map[string]uint64
}

// binInfo adapts the concrete binary type.
type binInfo struct {
	meta *stackmap.Metadata
	syms map[string]uint64
}

func (b binInfo) metadata() *stackmap.Metadata { return b.meta }
func (b binInfo) symbols() map[string]uint64   { return b.syms }

// Rewrite implements Policy.
func (p LiveUpdatePolicy) Rewrite(dir *criu.ImageDir, ctx *Context) error {
	invRaw, ok := dir.Get("inventory.img")
	if !ok {
		return fmt.Errorf("core: missing inventory.img")
	}
	inv, err := criu.UnmarshalInventory(invRaw)
	if err != nil {
		return err
	}
	filesRaw, ok := dir.Get("files.img")
	if !ok {
		return fmt.Errorf("core: missing files.img")
	}
	files, err := criu.UnmarshalFiles(filesRaw)
	if err != nil {
		return err
	}
	oldBin, err := ctx.Binaries.Open(files.ExePath)
	if err != nil {
		return err
	}
	newBin, err := ctx.Binaries.Open(p.NewExePath)
	if err != nil {
		return err
	}
	if newBin.Arch != inv.Arch {
		return fmt.Errorf("core: patched binary is %v but process is %v", newBin.Arch, inv.Arch)
	}
	// Pre-flight the patched binary's own metadata before trusting it to
	// drive a rewrite: a broken stack map would corrupt state silently.
	if err := updatecheck.VerifyBinary(&updatecheck.Binary{
		Arch: newBin.Arch, Text: newBin.Text, Symbols: newBin.Symbols, Meta: newBin.Meta,
	}); err != nil {
		return fmt.Errorf("core: patched binary fails updatecheck: %w", err)
	}
	if err := UpdateCompatibility(
		binInfo{oldBin.Meta, oldBin.Symbols},
		binInfo{newBin.Meta, newBin.Symbols},
	); err != nil {
		return err
	}

	ps, err := criu.LoadPageSet(dir)
	if err != nil {
		return err
	}
	src := Side{Arch: inv.Arch, Meta: oldBin.Meta}
	dst := Side{Arch: inv.Arch, Meta: newBin.Meta}
	var newCores []*criu.CoreImage
	for _, tid := range inv.TIDs {
		raw, ok := dir.Get(criu.CoreName(tid))
		if !ok {
			return fmt.Errorf("core: missing %s", criu.CoreName(tid))
		}
		c, err := criu.UnmarshalCore(raw)
		if err != nil {
			return err
		}
		nc, err := RewriteThread(c, ps, src, dst)
		if err != nil {
			return fmt.Errorf("core: live-update thread %d: %w", tid, err)
		}
		newCores = append(newCores, nc)
	}
	// The patched text replaces the execution context; the rest reloads
	// from the new executable at fault time.
	ps.DropRange(isa.TextBase, isa.TextBase+uint64(maxLen(len(oldBin.Text), len(newBin.Text))))
	for _, nc := range newCores {
		pageAddr := nc.Regs.PC / mem.PageSize * mem.PageSize
		off := pageAddr - isa.TextBase
		end := off + mem.PageSize
		if end > uint64(len(newBin.Text)) {
			end = uint64(len(newBin.Text))
		}
		ps.InstallPage(pageAddr, newBin.Text[off:end])
	}
	if err := ps.WriteU64(isa.FlagAddr, 0); err != nil {
		return err
	}
	for _, nc := range newCores {
		dir.Put(criu.CoreName(nc.TID), nc.Marshal())
	}
	// The patched binary may have grown: widen the text/data VMAs so
	// restore can load it (new globals appear as demand-zero pages).
	mmRaw, ok := dir.Get("mm.img")
	if !ok {
		return fmt.Errorf("core: missing mm.img")
	}
	mm, err := criu.UnmarshalMM(mmRaw)
	if err != nil {
		return err
	}
	for i := range mm.VMAs {
		v := &mm.VMAs[i]
		switch {
		case v.Start == isa.TextBase:
			if end := isa.TextBase + roundPage(uint64(len(newBin.Text))); end > v.End {
				v.End = end
			}
		case v.Start == isa.DataBase:
			if end := isa.DataBase + roundPage(uint64(len(newBin.Data))); end > v.End {
				v.End = end
			}
		}
	}
	dir.Put("mm.img", mm.Marshal())
	files.ExePath = p.NewExePath
	dir.Put("files.img", files.Marshal())
	ps.Store(dir)
	return nil
}

func roundPage(n uint64) uint64 { return (n + mem.PageSize - 1) / mem.PageSize * mem.PageSize }

func maxLen(a, b int) int {
	if a > b {
		return a
	}
	return b
}
