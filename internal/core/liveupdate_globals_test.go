package core

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
)

// Global-layout regression tests for UpdateCompatibility, which since the
// updatecheck refactor is a thin veneer over the pass-2 classifier: moved
// and removed globals must be rejected with their named invariants, while
// appended globals (the only layout change a running process cannot
// observe) must pass. These pin the one-classifier contract — core and
// dapper-updatecheck agree because they run the same code.

const globalsBase = `
var a int;
var b int;

func main() {
	var i int;
	for i = 0; i < 10; i = i + 1 {
		a = a + i;
		b = b + a;
	}
	printi(b);
}
`

// Same program, globals declared in the other order: every symbol still
// exists but both moved.
const globalsMoved = `
var b int;
var a int;

func main() {
	var i int;
	for i = 0; i < 10; i = i + 1 {
		a = a + i;
		b = b + a;
	}
	printi(b);
}
`

// b is gone.
const globalsRemoved = `
var a int;

func main() {
	var i int;
	for i = 0; i < 10; i = i + 1 {
		a = a + i;
	}
	printi(a);
}
`

// c appended after the existing layout: a and b keep their addresses.
const globalsAppended = `
var a int;
var b int;
var c int;

func main() {
	var i int;
	for i = 0; i < 10; i = i + 1 {
		a = a + i;
		b = b + a;
	}
	c = a + b;
	printi(b);
}
`

func compileInfo(t *testing.T, src string) binInfo {
	t.Helper()
	p, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return binInfo{p.Meta, p.X86.Symbols}
}

func TestUpdateCompatibilityGlobalMoved(t *testing.T) {
	old := compileInfo(t, globalsBase)
	err := UpdateCompatibility(old, compileInfo(t, globalsMoved))
	if err == nil {
		t.Fatal("moved globals accepted")
	}
	if !strings.Contains(err.Error(), "global-moved") {
		t.Errorf("want global-moved invariant in error, got: %v", err)
	}
}

func TestUpdateCompatibilityGlobalRemoved(t *testing.T) {
	old := compileInfo(t, globalsBase)
	err := UpdateCompatibility(old, compileInfo(t, globalsRemoved))
	if err == nil {
		t.Fatal("removed global accepted")
	}
	if !strings.Contains(err.Error(), "global-removed") {
		t.Errorf("want global-removed invariant in error, got: %v", err)
	}
}

func TestUpdateCompatibilityGlobalAppended(t *testing.T) {
	old := compileInfo(t, globalsBase)
	if err := UpdateCompatibility(old, compileInfo(t, globalsAppended)); err != nil {
		t.Fatalf("appended global rejected: %v", err)
	}
}
