package core_test

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
)

// The v1 program taxes every item at rate 3; the v2 patch changes the rate
// to 5 and fixes a rounding bug — same call structure, different bodies.
const v1Src = `
func rate(v int) int { return v * 3; }
func adjust(v int) int { return v - 1; }
func main() {
	var i int;
	var total int;
	for i = 1; i <= 30; i = i + 1 {
		total = total + rate(i) + adjust(i);
		printi(total % 1000);
		print(" ");
	}
	print("end\n");
}`

const v2Src = `
func rate(v int) int { return v * 5; }
func adjust(v int) int { return v + 7; }
func main() {
	var i int;
	var total int;
	for i = 1; i <= 30; i = i + 1 {
		total = total + rate(i) + adjust(i);
		printi(total % 1000);
		print(" ");
	}
	print("end\n");
}`

// TestLiveUpdateMidRun checkpoints v1 half-way, applies the DSU policy,
// and resumes under v2: the output prefix must match v1 and the suffix
// must follow v2's semantics from the carried-over total.
func TestLiveUpdateMidRun(t *testing.T) {
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		v1, err := compiler.Compile(v1Src)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := compiler.Compile(v2Src)
		if err != nil {
			t.Fatal(err)
		}
		provider := criu.MapProvider{
			"/bin/app-v1." + arch.String(): v1.ByArch(arch),
			"/bin/app-v2." + arch.String(): v2.ByArch(arch),
		}
		// Reference: native v1 run (for total cycles and the prefix).
		kr := kernel.New(kernel.Config{})
		pr, err := kr.StartProcess(v1.ByArch(arch).LoadSpec("/bin/app-v1." + arch.String()))
		if err != nil {
			t.Fatal(err)
		}
		if err := kr.Run(pr); err != nil {
			t.Fatal(err)
		}
		v1Out := pr.ConsoleString()

		k1 := kernel.New(kernel.Config{})
		p1, err := k1.StartProcess(v1.ByArch(arch).LoadSpec("/bin/app-v1." + arch.String()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k1.RunBudget(p1, pr.VCycles/2); err != nil {
			t.Fatal(err)
		}
		mon := monitor.New(k1, p1, v1.Meta)
		if err := mon.Pause(1 << 20); err != nil {
			t.Fatal(err)
		}
		dir, err := criu.Dump(p1, criu.DumpOpts{})
		if err != nil {
			t.Fatal(err)
		}
		prefix := p1.ConsoleString()

		pol := core.LiveUpdatePolicy{NewExePath: "/bin/app-v2." + arch.String()}
		if err := pol.Rewrite(dir, &core.Context{Binaries: provider}); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		k3 := kernel.New(kernel.Config{})
		p3, err := criu.Restore(k3, dir, provider)
		if err != nil {
			t.Fatal(err)
		}
		if p3.ExePath != "/bin/app-v2."+arch.String() {
			t.Errorf("%v: restored exe = %q", arch, p3.ExePath)
		}
		if err := k3.Run(p3); err != nil {
			t.Fatalf("%v: post-update run: %v\n%s", arch, err, p3.ConsoleString())
		}
		got := prefix + p3.ConsoleString()

		// Prefix must match v1's behaviour.
		if !strings.HasPrefix(v1Out, prefix) {
			t.Errorf("%v: prefix diverges from v1:\nprefix %q\nv1     %q", arch, prefix, v1Out)
		}
		// The full output must differ from pure-v1 (the patch took
		// effect) and end properly.
		if got == v1Out {
			t.Errorf("%v: output identical to v1; update had no effect", arch)
		}
		if !strings.HasSuffix(got, "end\n") {
			t.Errorf("%v: updated run did not complete: %q", arch, got)
		}
		// The checkpoint may land mid-iteration (between the total update
		// and the print), so instead of an exact oracle we verify the
		// tail obeys v2's recurrence: delta_i = i*5 + (i+7) mod 1000.
		nums := strings.Fields(strings.TrimSuffix(got, "end\n"))
		if len(nums) != 30 {
			t.Fatalf("%v: printed %d values, want 30: %q", arch, len(nums), got)
		}
		for i := 27; i <= 30; i++ {
			prev := atoi(nums[i-2])
			cur := atoi(nums[i-1])
			wantDelta := (i*5 + i + 7) % 1000
			gotDelta := ((cur-prev)%1000 + 1000) % 1000
			if gotDelta != wantDelta {
				t.Errorf("%v: iteration %d delta = %d, want %d (v2 semantics)", arch, i, gotDelta, wantDelta)
			}
		}
	}
}

func atoi(s string) int {
	v := 0
	for _, c := range s {
		v = v*10 + int(c-'0')
	}
	return v
}

// TestLiveUpdateCompatibilityRejections: structural changes must be
// rejected before any state is touched.
func TestLiveUpdateCompatibilityRejections(t *testing.T) {
	base := `
func helper(v int) int { return v + 1; }
func main() {
	var i int;
	for i = 0; i < 100000; i = i + 1 { printi(helper(i)); }
}`
	bad := map[string]string{
		"removed function": `
func main() {
	var i int;
	for i = 0; i < 100000; i = i + 1 { printi(i); }
}`,
		"changed call structure": `
func helper(v int) int { return v + 1; }
func main() {
	var i int;
	for i = 0; i < 100000; i = i + 1 { printi(helper(helper(i))); }
}`,
		"changed arity": `
func helper(v int, w int) int { return v + w; }
func main() {
	var i int;
	for i = 0; i < 100000; i = i + 1 { printi(helper(i, 1)); }
}`,
	}
	v1, err := compiler.Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	provider := criu.MapProvider{"/bin/b-v1.sx86": v1.X86}

	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(v1.X86.LoadSpec("/bin/b-v1.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunBudget(p, 50_000); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k, p, v1.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range bad {
		v2, err := compiler.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		provider["/bin/b-v2.sx86"] = v2.X86
		pol := core.LiveUpdatePolicy{NewExePath: "/bin/b-v2.sx86"}
		if err := pol.Rewrite(dir, &core.Context{Binaries: provider}); err == nil {
			t.Errorf("%s: incompatible update accepted", name)
		}
	}
}
