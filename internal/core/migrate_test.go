package core_test

import (
	"fmt"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
)

// world compiles a program and provides both binaries under the
// conventional paths.
type world struct {
	pair     *compiler.Pair
	provider criu.MapProvider
	name     string
}

func buildWorld(t testing.TB, name, src string) *world {
	t.Helper()
	pair, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &world{
		pair: pair,
		name: name,
		provider: criu.MapProvider{
			compiler.ExePath(name, isa.SX86): pair.X86,
			compiler.ExePath(name, isa.SARM): pair.ARM,
		},
	}
}

func (w *world) start(t testing.TB, arch isa.Arch, cores int) (*kernel.Kernel, *kernel.Process) {
	t.Helper()
	k := kernel.New(kernel.Config{Cores: cores})
	p, err := k.StartProcess(w.pair.ByArch(arch).LoadSpec(compiler.ExePath(w.name, arch)))
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

// runNative runs to completion, returning console output and total cycles.
func (w *world) runNative(t testing.TB, arch isa.Arch, cores int) (string, uint64) {
	t.Helper()
	k, p := w.start(t, arch, cores)
	if err := k.Run(p); err != nil {
		t.Fatalf("native run (%v): %v\nconsole: %s", arch, err, p.ConsoleString())
	}
	return p.ConsoleString(), p.VCycles
}

// migrate runs on from-arch for budget cycles, checkpoints, cross-ISA
// rewrites, restores on to-arch, and runs to completion. It returns the
// concatenated console output. If the program finishes before the budget,
// it returns the native output (migration never triggered).
func (w *world) migrate(t testing.TB, from isa.Arch, budget uint64, cores int, lazy bool) string {
	t.Helper()
	k1, p1 := w.start(t, from, cores)
	alive, err := k1.RunBudget(p1, budget)
	if err != nil {
		t.Fatalf("pre-migration run: %v", err)
	}
	if !alive {
		return p1.ConsoleString()
	}
	mon := monitor.New(k1, p1, w.pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatalf("pause: %v", err)
	}
	dir, err := criu.Dump(p1, criu.DumpOpts{Lazy: lazy})
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	out1 := p1.ConsoleString()

	policy := core.CrossISAPolicy{}
	if err := policy.Rewrite(dir, &core.Context{Binaries: w.provider}); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	// Exercise the wire form (the scp step).
	dir2, err := criu.UnmarshalImageDir(dir.Marshal())
	if err != nil {
		t.Fatalf("image transfer: %v", err)
	}

	k2 := kernel.New(kernel.Config{Cores: cores})
	p2, err := criu.Restore(k2, dir2, w.provider)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if lazy {
		criu.InstallLazyHandler(p2, criu.NewProcessPageSource(p1))
	}
	if err := k2.Run(p2); err != nil {
		t.Fatalf("post-migration run: %v\nconsole so far: %s", err, p2.ConsoleString())
	}
	return out1 + p2.ConsoleString()
}

const countdownSrc = `
func work(step int) int {
	var acc int;
	var i int;
	for i = 0; i < 200; i = i + 1 {
		acc = acc + (i % 7) * step;
	}
	return acc;
}
func main() {
	var total int;
	var r int;
	for r = 0; r < 40; r = r + 1 {
		total = total + work(r);
		printi(total % 1000);
		print(" ");
	}
	print("done\n");
}`

// TestMigrateBothDirections is the headline invariant: output is identical
// whether the program runs natively or is migrated mid-run across ISAs, at
// many checkpoint positions and in both directions.
func TestMigrateBothDirections(t *testing.T) {
	w := buildWorld(t, "countdown", countdownSrc)
	wantX, cyclesX := w.runNative(t, isa.SX86, 1)
	wantA, cyclesA := w.runNative(t, isa.SARM, 1)
	if wantX != wantA {
		t.Fatalf("native outputs differ:\n%q\n%q", wantX, wantA)
	}
	fracs := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9}
	for _, frac := range fracs {
		frac := frac
		t.Run(fmt.Sprintf("x86-to-arm-%.2f", frac), func(t *testing.T) {
			got := w.migrate(t, isa.SX86, uint64(float64(cyclesX)*frac), 1, false)
			if got != wantX {
				t.Errorf("output mismatch at %.0f%%:\n got %q\nwant %q", frac*100, got, wantX)
			}
		})
		t.Run(fmt.Sprintf("arm-to-x86-%.2f", frac), func(t *testing.T) {
			got := w.migrate(t, isa.SARM, uint64(float64(cyclesA)*frac), 1, false)
			if got != wantX {
				t.Errorf("output mismatch at %.0f%%:\n got %q\nwant %q", frac*100, got, wantX)
			}
		})
	}
}

// TestMigrateDeepRecursion checkpoints inside deep recursion so the stack
// walk crosses many frames with live values and differing layouts.
func TestMigrateDeepRecursion(t *testing.T) {
	src := `
func fib(n int) int {
	if n < 2 { return n; }
	return fib(n-1) + fib(n-2);
}
func main() {
	printi(fib(19));
	print("\n");
}`
	w := buildWorld(t, "fib", src)
	want, cycles := w.runNative(t, isa.SX86, 1)
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		got := w.migrate(t, isa.SX86, uint64(float64(cycles)*frac), 1, false)
		if got != want {
			t.Errorf("frac %.1f: got %q want %q", frac, got, want)
		}
		got = w.migrate(t, isa.SARM, uint64(float64(cycles)*frac), 1, false)
		if got != want {
			t.Errorf("frac %.1f (arm src): got %q want %q", frac, got, want)
		}
	}
}

// TestMigrateWithPointers checkpoints while live pointers into stack
// arrays exist, exercising the pointer-remapping logic.
func TestMigrateWithPointers(t *testing.T) {
	src := `
func fill(p *int, n int, seed int) {
	var i int;
	for i = 0; i < n; i = i + 1 {
		p[i] = seed + i * 3;
		yield();
	}
}
func total(p *int, n int) int {
	var s int;
	var i int;
	for i = 0; i < n; i = i + 1 { s = s + p[i]; }
	return s;
}
func main() {
	var buf[32] int;
	var q *int;
	var r int;
	q = &buf[4];
	for r = 0; r < 12; r = r + 1 {
		fill(&buf[0], 32, r);
		*q = *q + total(&buf[0], 32);
		printi(buf[4]);
		print(" ");
	}
	print("end\n");
}`
	w := buildWorld(t, "ptr", src)
	want, cycles := w.runNative(t, isa.SX86, 1)
	for _, frac := range []float64{0.15, 0.45, 0.7} {
		got := w.migrate(t, isa.SX86, uint64(float64(cycles)*frac), 1, false)
		if got != want {
			t.Errorf("frac %.2f: got %q want %q", frac, got, want)
		}
	}
}

// TestMigrateMultithreaded checkpoints a contended multi-threaded program:
// some threads trap at entries, some are rolled back out of blocked
// lock/join wrappers.
func TestMigrateMultithreaded(t *testing.T) {
	src := `
var counter int;
var tids[4] int;

func bump(n int) int { return n + 1; }

func worker(id int) {
	var i int;
	for i = 0; i < 60; i = i + 1 {
		lock(1);
		counter = bump(counter);
		unlock(1);
	}
}

func main() {
	var i int;
	for i = 0; i < 4; i = i + 1 { tids[i] = spawn(worker, i); }
	for i = 0; i < 4; i = i + 1 { join(tids[i]); }
	printi(counter);
	print("\n");
}`
	w := buildWorld(t, "mt", src)
	want, cycles := w.runNative(t, isa.SX86, 2)
	if want != "240\n" {
		t.Fatalf("native output %q", want)
	}
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		got := w.migrate(t, isa.SX86, uint64(float64(cycles)*frac), 2, false)
		if got != want {
			t.Errorf("frac %.1f: got %q want %q", frac, got, want)
		}
		got = w.migrate(t, isa.SARM, uint64(float64(cycles)*frac), 2, false)
		if got != want {
			t.Errorf("frac %.1f (arm): got %q want %q", frac, got, want)
		}
	}
}

// TestMigrateLazy exercises post-copy restoration: only stack/TLS pages
// move eagerly; the rest are faulted from the source process.
func TestMigrateLazy(t *testing.T) {
	src := `
func main() {
	var p *int;
	var i int;
	var s int;
	p = alloc(8 * 3000);
	for i = 0; i < 3000; i = i + 1 { p[i] = i * i % 97; }
	for i = 0; i < 3000; i = i + 1 { s = s + p[i]; }
	printi(s);
	print("\n");
}`
	w := buildWorld(t, "heapy", src)
	want, cycles := w.runNative(t, isa.SX86, 1)
	for _, frac := range []float64{0.3, 0.6} {
		got := w.migrate(t, isa.SX86, uint64(float64(cycles)*frac), 1, true)
		if got != want {
			t.Errorf("lazy frac %.1f: got %q want %q", frac, got, want)
		}
	}
}

// TestNopPolicyRoundTrip checkpoints, applies the identity policy, and
// restores on the SAME architecture.
func TestNopPolicyRoundTrip(t *testing.T) {
	w := buildWorld(t, "nop", countdownSrc)
	want, cycles := w.runNative(t, isa.SX86, 1)
	k1, p1 := w.start(t, isa.SX86, 1)
	if _, err := k1.RunBudget(p1, cycles/2); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k1, p1, w.pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	dir, err := criu.Dump(p1, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := (core.NopPolicy{}).Rewrite(dir, nil); err != nil {
		t.Fatal(err)
	}
	k2 := kernel.New(kernel.Config{})
	p2, err := criu.Restore(k2, dir, w.provider)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(p2); err != nil {
		t.Fatal(err)
	}
	if got := p1.ConsoleString() + p2.ConsoleString(); got != want {
		t.Errorf("same-arch C/R mismatch:\n got %q\nwant %q", got, want)
	}
}

// TestSourceResumesAfterCheckpoint verifies the monitor can resume the
// original process after a dump (periodic snapshot scenario).
func TestSourceResumesAfterCheckpoint(t *testing.T) {
	w := buildWorld(t, "resume", countdownSrc)
	want, cycles := w.runNative(t, isa.SARM, 1)
	k, p := w.start(t, isa.SARM, 1)
	if _, err := k.RunBudget(p, cycles/3); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k, p, w.pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := criu.Dump(p, criu.DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := mon.ResumeLocal(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsoleString(); got != want {
		t.Errorf("resume mismatch:\n got %q\nwant %q", got, want)
	}
}

// TestMigrateBigFrames checkpoints inside a function whose frame exceeds
// the SARM imm12 range, with a live pointer into the large array.
func TestMigrateBigFrames(t *testing.T) {
	src := `
func touch(p *int, i int) { p[i] = p[i] + i; }
func crunch(seed int) int {
	var big[1024] int;
	var acc int;
	var i int;
	for i = 0; i < 1024; i = i + 1 { big[i] = seed + i; }
	for i = 0; i < 1024; i = i + 1 { touch(&big[0], i); }
	for i = 0; i < 1024; i = i + 1 { acc = acc + big[i]; }
	return acc;
}
func main() {
	printi(crunch(3));
	print("\n");
}`
	w := buildWorld(t, "bigframe", src)
	want, cycles := w.runNative(t, isa.SX86, 1)
	for _, frac := range []float64{0.3, 0.6, 0.85} {
		got := w.migrate(t, isa.SX86, uint64(float64(cycles)*frac), 1, false)
		if got != want {
			t.Errorf("frac %.2f: got %q want %q", frac, got, want)
		}
		got = w.migrate(t, isa.SARM, uint64(float64(cycles)*frac), 1, false)
		if got != want {
			t.Errorf("frac %.2f (arm src): got %q want %q", frac, got, want)
		}
	}
}
