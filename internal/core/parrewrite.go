package core

import (
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/parallel"
)

// rewriteThreads applies RewriteThread to every live thread named by the
// inventory, fanning the per-thread work out over ctx.Workers. It is the
// shared rewrite stage behind CrossISAPolicy and StackShufflePolicy.
//
// Concurrency model: RewriteThread only touches the page set inside its
// thread's [StackLow, StackHigh) (snapshotting, dropping, rebuilding the
// stack), and thread stacks are disjoint VMAs. Each worker therefore
// rewrites against a private ExtractRange view of its own stack range;
// the views are absorbed back serially after the join, so any worker
// count yields the same page set as the historical serial loop.
//
// The returned blobs are the marshaled core images, index-aligned with
// the returned cores; callers Put exactly these bytes into the image
// directory. When ctx.OnFile is set it observes each (name, blob) pair
// from the worker that produced it — before rewriteThreads returns —
// letting a transfer pipeline frame finished cores while other threads
// are still rewriting.
func rewriteThreads(dir *criu.ImageDir, ps *criu.PageSet, tids []int, src, dst Side, ctx *Context, errPrefix string) ([]*criu.CoreImage, [][]byte, error) {
	start := time.Now()
	cores := make([]*criu.CoreImage, len(tids))
	for i, tid := range tids {
		raw, ok := dir.Get(criu.CoreName(tid))
		if !ok {
			return nil, nil, fmt.Errorf("core: missing %s", criu.CoreName(tid))
		}
		c, err := criu.UnmarshalCore(raw)
		if err != nil {
			return nil, nil, err
		}
		cores[i] = c
	}
	newCores := make([]*criu.CoreImage, len(cores))
	blobs := make([][]byte, len(cores))
	subs := make([]*criu.PageSet, len(cores))
	pool := parallel.New(ctx.Workers)
	err := pool.ForEach(len(cores), func(i int) error {
		c := cores[i]
		sub := ps.ExtractRange(c.StackLow, c.StackHigh)
		nc, err := RewriteThread(c, sub, src, dst)
		if err != nil {
			return fmt.Errorf("%s %d: %w", errPrefix, c.TID, err)
		}
		subs[i] = sub
		newCores[i] = nc
		blobs[i] = nc.Marshal()
		if ctx.OnFile != nil {
			ctx.OnFile(criu.CoreName(nc.TID), blobs[i])
		}
		return nil
	})
	ctx.Obs.Counter("rewrite.threads").Add(uint64(len(cores)))
	ctx.Obs.Histogram("rewrite.par_ns").Observe(time.Since(start))
	if err != nil {
		return nil, nil, err
	}
	for i, sub := range subs {
		ps.AbsorbRange(sub, cores[i].StackLow, cores[i].StackHigh)
	}
	return newCores, blobs, nil
}
