package core

import (
	"fmt"
	"strings"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
)

// Context supplies a policy's environment: how to resolve executables
// and how much the rewrite stage may fan out.
type Context struct {
	Binaries criu.BinaryProvider
	// Workers bounds the per-thread rewrite fan-out: values <= 0 select
	// runtime.NumCPU(), 1 reproduces the historical serial loop. Any
	// worker count produces identical images (each thread's rewrite is
	// confined to its own stack range).
	Workers int
	// Obs, if set, receives rewrite telemetry: "rewrite.par_ns" (wall
	// time of the whole per-thread fan-out) and "rewrite.threads".
	Obs *obs.Registry
	// OnFile, if set, is called from rewrite workers as each thread's
	// core image is finalized, with the image filename and its marshaled
	// bytes. The cluster transfer path uses it to overlap image framing
	// and shipping with the rewrite stage. Implementations must be safe
	// for concurrent calls.
	OnFile func(name string, data []byte)
}

// Policy transforms a checkpoint image directory in place. Policies are
// DAPPER's extensibility point: cross-ISA migration and stack shuffling
// are the two the paper evaluates; NopPolicy demonstrates the plumbing.
type Policy interface {
	Name() string
	Rewrite(dir *criu.ImageDir, ctx *Context) error
}

// NopPolicy decodes and re-encodes the images without changing state —
// the minimal policy, useful as a baseline and a plumbing test.
type NopPolicy struct{}

// Name implements Policy.
func (NopPolicy) Name() string { return "nop" }

// Rewrite implements Policy.
func (NopPolicy) Rewrite(dir *criu.ImageDir, _ *Context) error {
	ps, err := criu.LoadPageSet(dir)
	if err != nil {
		return err
	}
	ps.Store(dir)
	return nil
}

var _ Policy = NopPolicy{}

// CrossISAPolicy rewrites the image so the process restores on the other
// architecture: registers are translated through the stack maps, every
// thread's stack is rebuilt under the destination ABI, the TLS register is
// rebased, the execution-context code pages are replaced with the
// destination binary's, and the files image is retargeted to the
// destination executable.
type CrossISAPolicy struct {
	// Target selects the destination architecture; zero means "the other
	// one".
	Target isa.Arch
}

// Name implements Policy.
func (p CrossISAPolicy) Name() string { return "cross-isa" }

var _ Policy = CrossISAPolicy{}

// SwapExeArch rewrites /bin/name.<arch> for the destination architecture.
func SwapExeArch(path string, dst isa.Arch) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[:i+1] + dst.String()
	}
	return path + "." + dst.String()
}

// Rewrite implements Policy.
func (p CrossISAPolicy) Rewrite(dir *criu.ImageDir, ctx *Context) error {
	invRaw, ok := dir.Get("inventory.img")
	if !ok {
		return fmt.Errorf("core: missing inventory.img")
	}
	inv, err := criu.UnmarshalInventory(invRaw)
	if err != nil {
		return err
	}
	srcArch := inv.Arch
	dstArch := p.Target
	if dstArch == 0 {
		dstArch = srcArch.Other()
	}
	if dstArch == srcArch {
		return fmt.Errorf("core: cross-ISA rewrite to the same architecture %v", srcArch)
	}

	filesRaw, ok := dir.Get("files.img")
	if !ok {
		return fmt.Errorf("core: missing files.img")
	}
	files, err := criu.UnmarshalFiles(filesRaw)
	if err != nil {
		return err
	}
	srcBin, err := ctx.Binaries.Open(files.ExePath)
	if err != nil {
		return err
	}
	dstPath := SwapExeArch(files.ExePath, dstArch)
	dstBin, err := ctx.Binaries.Open(dstPath)
	if err != nil {
		return err
	}

	ps, err := criu.LoadPageSet(dir)
	if err != nil {
		return err
	}
	src := Side{Arch: srcArch, Meta: srcBin.Meta}
	dst := Side{Arch: dstArch, Meta: dstBin.Meta}

	newCores, coreBlobs, err := rewriteThreads(dir, ps, inv.TIDs, src, dst, ctx, "core: thread")
	if err != nil {
		return err
	}

	// Replace the execution-context code pages with the destination
	// architecture's instructions.
	ps.DropRange(isa.TextBase, isa.TextBase+uint64(len(dstBin.Text)))
	for _, nc := range newCores {
		pageAddr := nc.Regs.PC / mem.PageSize * mem.PageSize
		off := pageAddr - isa.TextBase
		end := off + mem.PageSize
		if end > uint64(len(dstBin.Text)) {
			end = uint64(len(dstBin.Text))
		}
		ps.InstallPage(pageAddr, dstBin.Text[off:end])
	}

	// Clear the transformation flag inside the dumped data page so the
	// restored checkers fall through.
	if err := ps.WriteU64(isa.FlagAddr, 0); err != nil {
		return fmt.Errorf("core: clear flag: %w", err)
	}

	for i, nc := range newCores {
		dir.Put(criu.CoreName(nc.TID), coreBlobs[i])
	}
	inv.Arch = dstArch
	dir.Put("inventory.img", inv.Marshal())
	files.ExePath = dstPath
	dir.Put("files.img", files.Marshal())
	ps.Store(dir)
	return nil
}
