package core

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// Rerandomizer drives the paper's periodic stack re-randomization (§I:
// "periodically re-randomizing the function call stack"): at each epoch it
// pauses the process at equivalence points, checkpoints it, applies a
// fresh stack shuffle to the image and the binary, and restores the
// process in place on the same kernel. Because each epoch rewrites from
// the *current* layout to a newly drawn one, an attacker's knowledge decays
// every interval.
type Rerandomizer struct {
	K        *kernel.Kernel
	Binaries criu.MapProvider
	// Meta tracks the process's CURRENT metadata (updated every epoch).
	Meta *stackmap.Metadata
	// Seed is advanced every epoch.
	Seed int64
	// MaxPauses bounds each epoch's wait for quiescence.
	MaxPauses int
	// Epochs counts completed re-randomizations.
	Epochs int
	// LastBits is the entropy introduced by the latest epoch.
	LastBits float64
}

// Step performs one re-randomization epoch on p, returning the restored
// process (the old process object is dead afterwards).
func (r *Rerandomizer) Step(p *kernel.Process) (*kernel.Process, error) {
	if r.MaxPauses == 0 {
		r.MaxPauses = 1 << 22
	}
	mon := monitor.New(r.K, p, r.Meta)
	if err := mon.Pause(r.MaxPauses); err != nil {
		return nil, fmt.Errorf("core: rerandomize epoch %d: %w", r.Epochs, err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		return nil, fmt.Errorf("core: rerandomize epoch %d: %w", r.Epochs, err)
	}
	r.Seed++
	var report ShuffleReport
	pol := StackShufflePolicy{Seed: r.Seed, Report: &report}
	if err := pol.Rewrite(dir, &Context{Binaries: r.Binaries}); err != nil {
		return nil, fmt.Errorf("core: rerandomize epoch %d: %w", r.Epochs, err)
	}
	np, err := criu.Restore(r.K, dir, r.Binaries)
	if err != nil {
		return nil, fmt.Errorf("core: rerandomize epoch %d: %w", r.Epochs, err)
	}
	// The process now runs the freshly instrumented binary; subsequent
	// epochs must unwind with ITS metadata.
	filesRaw, _ := dir.Get("files.img")
	files, err := criu.UnmarshalFiles(filesRaw)
	if err != nil {
		return nil, err
	}
	bin, err := r.Binaries.Open(files.ExePath)
	if err != nil {
		return nil, err
	}
	r.Meta = bin.Meta
	r.Epochs++
	r.LastBits = report.AvgBitsApp
	return np, nil
}
