package core_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// TestPeriodicRerandomization re-randomizes a running program several
// times mid-flight and requires (a) the final output to be identical to a
// native run and (b) the frame layout to actually change every epoch.
func TestPeriodicRerandomization(t *testing.T) {
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		w := buildWorld(t, "rerand", shuffleSrc)
		want, cycles := w.runNative(t, arch, 1)

		k := kernel.New(kernel.Config{})
		path := compilerPath(w, arch)
		bin, err := w.provider.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := k.StartProcess(bin.LoadSpec(path))
		if err != nil {
			t.Fatal(err)
		}
		rr := &core.Rerandomizer{K: k, Binaries: w.provider, Meta: bin.Meta, Seed: 1000}

		var layouts []int64
		const epochs = 3
		for e := 0; e < epochs; e++ {
			alive, err := k.RunBudget(p, cycles/8)
			if err != nil {
				t.Fatal(err)
			}
			if !alive {
				t.Fatalf("%v: program finished before epoch %d", arch, e)
			}
			p, err = rr.Step(p)
			if err != nil {
				t.Fatalf("%v: %v", arch, err)
			}
			layouts = append(layouts, layoutSignature(rr.Meta, arch))
		}
		if err := k.Run(p); err != nil {
			t.Fatalf("%v: final run: %v", arch, err)
		}
		// Output accumulates across the same kernel's console? No — each
		// restore creates a new process with a fresh console; collect the
		// full stream from the final process plus earlier consoles is
		// awkward, so instead compare the FINAL suffix: the native output
		// must end with the final process's console.
		got := p.ConsoleString()
		if len(got) == 0 || len(got) > len(want) || want[len(want)-len(got):] != got {
			t.Errorf("%v: final console %q is not a suffix of native output %q", arch, got, want)
		}
		if rr.Epochs != epochs {
			t.Errorf("%v: epochs = %d", arch, rr.Epochs)
		}
		// Layouts must differ across epochs.
		for i := 1; i < len(layouts); i++ {
			if layouts[i] == layouts[i-1] {
				t.Errorf("%v: epoch %d layout identical to epoch %d", arch, i, i-1)
			}
		}
	}
}

// layoutSignature hashes the per-arch slot offsets of all app functions.
func layoutSignature(meta *stackmap.Metadata, arch isa.Arch) int64 {
	ai := stackmap.ArchIdx(arch)
	var h int64 = 1469598103
	for _, fn := range meta.Funcs {
		if fn.Wrapper {
			continue
		}
		for i := range fn.Slots {
			h = h*1099511628211 + int64(fn.Slots[i].ID)*31 + fn.Slots[i].Off[ai]
		}
	}
	return h
}

func compilerPath(w *world, arch isa.Arch) string {
	for path, b := range w.provider {
		if b.Arch == arch {
			return path
		}
	}
	return ""
}
