// Package core implements the DAPPER process rewriter: it transforms a
// CRIU image directory — registers, call stacks, TLS, code pages, and the
// executable reference — according to a transformation policy, entirely
// outside the target process.
//
// The central engine, RewriteThread, unwinds a thread's source stack using
// the stack-map metadata and rebuilds it under a destination layout:
//
//   - registers holding live values at the entry equivalence point are
//     translated via the per-ISA DWARF locations (paper Fig. 4);
//   - each suspended caller frame is located by its return address, its
//     live slots copied to the destination frame offsets, and the frame
//     header (saved FP + return address) re-created per the destination
//     ABI (return address on the stack for SX86, in LR for SARM);
//   - pointers into the source stack are remapped to the allocation's
//     destination address;
//   - the TLS register is rebased to the destination libc's bias.
//
// The same engine performs cross-ISA transformation (source and
// destination differ in architecture) and stack shuffling (same
// architecture, permuted slot offsets).
package core

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// Side describes one side (source or destination) of a rewrite: an
// architecture plus the metadata describing frame layouts on it.
type Side struct {
	Arch isa.Arch
	Meta *stackmap.Metadata
}

func (s Side) abi() *isa.ABI { return isa.ABIFor(s.Arch) }
func (s Side) idx() int      { return stackmap.ArchIdx(s.Arch) }

// frame is one unwound stack frame. Source-side metadata (fn/site) drives
// unwinding; destination-side metadata (dstFn/dstSite) drives the rebuild —
// they are the same content for cross-ISA rewrites (shared metadata,
// different arch index) but differ for stack shuffling (permuted offsets,
// same arch).
type frame struct {
	fn      *stackmap.Func
	site    *stackmap.Site
	dstFn   *stackmap.Func
	dstSite *stackmap.Site
	// fpSrc is the source frame pointer (zero for the innermost frame,
	// whose prologue has not run).
	fpSrc uint64
	// fpDst is assigned during rebuild (frames[0] has none).
	fpDst uint64
	// calleeEntrySP is the destination SP at the entry of this frame's
	// callee.
	calleeEntrySP uint64
}

// resolveDst fills the destination-side fields of a frame.
func (fr *frame) resolveDst(dst Side) error {
	dstFn, ok := dst.Meta.FuncByName(fr.fn.Name)
	if !ok {
		return fmt.Errorf("core: destination metadata missing %q", fr.fn.Name)
	}
	fr.dstFn = dstFn
	if fr.site.Kind == stackmap.SiteEntry {
		fr.dstSite = dstFn.EntrySite
		return nil
	}
	for _, cs := range dstFn.CallSites {
		if cs.ID == fr.site.ID {
			fr.dstSite = cs
			return nil
		}
	}
	return fmt.Errorf("core: destination metadata missing site %d in %q", fr.site.ID, fr.fn.Name)
}

type bottomKind uint8

const (
	bottomStart      bottomKind = iota + 1 // main thread: outermost is _start
	bottomThreadExit                       // spawned thread: returns into __thread_exit
)

// stackSnapshot reads the source stack out of the page set before the
// destination layout overwrites it.
type stackSnapshot struct {
	low, high uint64
	pages     map[uint64][]byte
}

func snapshotStack(ps *criu.PageSet, low, high uint64) *stackSnapshot {
	s := &stackSnapshot{low: low, high: high, pages: make(map[uint64][]byte)}
	for a := low; a < high; a += mem.PageSize {
		if pg, ok := ps.Pages[a]; ok && pg != nil {
			cp := make([]byte, mem.PageSize)
			copy(cp, pg)
			s.pages[a] = cp
		}
	}
	return s
}

func (s *stackSnapshot) readU64(addr uint64) (uint64, error) {
	if addr < s.low || addr+8 > s.high {
		return 0, fmt.Errorf("core: stack read at 0x%x outside [0x%x, 0x%x)", addr, s.low, s.high)
	}
	pg, ok := s.pages[addr/mem.PageSize*mem.PageSize]
	if !ok {
		return 0, nil // demand-zero page
	}
	off := addr % mem.PageSize
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(pg[off+uint64(i)])
	}
	return v, nil
}

// RewriteThread transforms one thread's state from src to dst layout. It
// rewrites the thread's stack pages inside ps and returns the new core
// image. The thread must be parked at an entry equivalence point.
func RewriteThread(core *criu.CoreImage, ps *criu.PageSet, src, dst Side) (*criu.CoreImage, error) {
	if core.Arch != src.Arch {
		return nil, fmt.Errorf("core: thread %d dumped as %v, rewrite source is %v", core.TID, core.Arch, src.Arch)
	}
	srcABI, dstABI := src.abi(), dst.abi()
	si, di := src.idx(), dst.idx()
	regs := core.Regs

	entrySite, ok := src.Meta.SiteByTrapPC(src.Arch, regs.PC)
	if !ok {
		return nil, fmt.Errorf("core: thread %d PC 0x%x is not an equivalence point", core.TID, regs.PC)
	}
	entryFn, ok := src.Meta.FuncByName(entrySite.Func)
	if !ok {
		return nil, fmt.Errorf("core: no metadata for %q", entrySite.Func)
	}
	threadExitFn, ok := src.Meta.FuncByName("__thread_exit")
	if !ok {
		return nil, fmt.Errorf("core: missing __thread_exit metadata")
	}

	snap := snapshotStack(ps, core.StackLow, core.StackHigh)

	// --- Unwind ---
	frames := []*frame{{fn: entryFn, site: entrySite}}
	var bottom bottomKind
	retaddr := uint64(0)
	haveRet := false
	if srcABI.RetAddrOnStack {
		if regs.R[srcABI.SP] >= core.StackHigh {
			// RET already consumed the trampoline return address: this is
			// __thread_exit (or an empty main stack).
			bottom = bottomThreadExit
		} else {
			v, err := snap.readU64(regs.R[srcABI.SP])
			if err != nil {
				return nil, err
			}
			retaddr, haveRet = v, true
		}
	} else {
		retaddr, haveRet = regs.R[srcABI.LR], true
	}
	fp := regs.R[srcABI.FP]
	for haveRet {
		if retaddr == threadExitFn.Addr {
			bottom = bottomThreadExit
			break
		}
		csite, ok := src.Meta.SiteByRetAddr(src.Arch, retaddr)
		if !ok {
			return nil, fmt.Errorf("core: thread %d: return address 0x%x matches no call site", core.TID, retaddr)
		}
		cfn, _ := src.Meta.FuncByName(csite.Func)
		frames = append(frames, &frame{fn: cfn, site: csite, fpSrc: fp})
		if cfn.Name == "_start" {
			bottom = bottomStart
			break
		}
		next, err := snap.readU64(fp + 8)
		if err != nil {
			return nil, err
		}
		nfp, err := snap.readU64(fp)
		if err != nil {
			return nil, err
		}
		retaddr, fp = next, nfp
	}
	if bottom == 0 {
		if len(frames) == 1 && frames[0].fn.Name == "_start" {
			bottom = bottomStart
		} else {
			return nil, fmt.Errorf("core: thread %d: stack walk did not reach a bottom frame", core.TID)
		}
	}

	for _, fr := range frames {
		if err := fr.resolveDst(dst); err != nil {
			return nil, err
		}
	}

	// --- Compute destination frame pointers, outermost first ---
	outer := len(frames) - 1
	entrySP := core.StackHigh
	if bottom == bottomThreadExit && dstABI.RetAddrOnStack && len(frames) > 1 {
		// The spawn trampoline return address occupies one slot on
		// architectures that keep return addresses on the stack.
		entrySP -= 8
	}
	for i := outer; i >= 1; i-- {
		fr := frames[i]
		if dstABI.RetAddrOnStack {
			fr.fpDst = entrySP - 8
			spAfter := fr.fpDst - uint64(fr.dstFn.FrameLocal[di])
			fr.calleeEntrySP = spAfter - 8 // CALL pushes the return address
		} else {
			spAfter := entrySP - uint64(fr.dstFn.FrameLocal[di]) - 16
			fr.fpDst = spAfter + uint64(fr.dstFn.FrameLocal[di])
			fr.calleeEntrySP = spAfter
		}
		entrySP = fr.calleeEntrySP
	}

	// remap translates a source-stack pointer to its destination address.
	// Containment is checked strictly first; a one-past-the-end pointer
	// (the C idiom &a[n]) is only attributed to a slot when no slot
	// strictly contains the address — otherwise a pointer at the boundary
	// of two adjacent slots would be remapped with the wrong base.
	remap := func(val uint64) (uint64, error) {
		if val < core.StackLow || val >= core.StackHigh {
			return val, nil // heap/global/code pointers stay valid (aligned layout)
		}
		lookup := func(inclusiveEnd bool) (uint64, bool, error) {
			for i := 1; i < len(frames); i++ {
				fr := frames[i]
				for si2 := range fr.fn.Slots {
					s := &fr.fn.Slots[si2]
					start := fr.fpSrc - uint64(s.Off[si])
					end := start + uint64(s.Size)
					if val >= start && (val < end || (inclusiveEnd && val == end)) {
						ds, ok := fr.dstFn.SlotByID(s.ID)
						if !ok {
							return 0, false, fmt.Errorf("core: destination missing slot %d in %q", s.ID, fr.fn.Name)
						}
						return fr.fpDst - uint64(ds.Off[di]) + (val - start), true, nil
					}
				}
			}
			return 0, false, nil
		}
		if dest, ok, err := lookup(false); err != nil || ok {
			return dest, err
		}
		if dest, ok, err := lookup(true); err != nil || ok {
			return dest, err
		}
		return 0, fmt.Errorf("core: stack pointer 0x%x matches no live allocation", val)
	}

	// --- Rebuild the destination stack ---
	ps.DropRange(core.StackLow, core.StackHigh)
	write := func(addr, v uint64) error {
		if addr < core.StackLow || addr+8 > core.StackHigh {
			return fmt.Errorf("core: stack write at 0x%x outside stack", addr)
		}
		return ps.WriteU64(addr, v)
	}
	for i := outer; i >= 1; i-- {
		fr := frames[i]
		// Frame header: saved FP and this frame's own return address.
		callerFP := uint64(0)
		ownRet := uint64(0)
		if i+1 <= outer {
			callerFP = frames[i+1].fpDst
			ownRet = frames[i+1].dstSite.PCs[di].RetAddr
		} else if bottom == bottomThreadExit {
			ownRet = threadExitFn.Addr
		}
		if err := write(fr.fpDst, callerFP); err != nil {
			return nil, err
		}
		if fr.fpDst+16 <= core.StackHigh {
			if err := write(fr.fpDst+8, ownRet); err != nil {
				return nil, err
			}
		}
		// Live values at this frame's call site. Destination locations
		// come from the destination site record (they differ under a
		// shuffled layout).
		dstLoc := make(map[int]stackmap.Location, len(fr.dstSite.Live))
		for _, dlv := range fr.dstSite.Live {
			dstLoc[dlv.SlotID] = dlv.Loc[di]
		}
		for _, lv := range fr.site.Live {
			slot, ok := fr.fn.SlotByID(lv.SlotID)
			if !ok {
				return nil, fmt.Errorf("core: %s: no slot %d", fr.fn.Name, lv.SlotID)
			}
			dloc, ok := dstLoc[lv.SlotID]
			if !ok {
				return nil, fmt.Errorf("core: %s: destination site missing slot %d", fr.fn.Name, lv.SlotID)
			}
			srcBase := fr.fpSrc - uint64(lv.Loc[si].FrameOff)
			dstBase := fr.fpDst - uint64(dloc.FrameOff)
			for off := int64(0); off < slot.Size; off += 8 {
				val, err := snap.readU64(srcBase + uint64(off))
				if err != nil {
					return nil, err
				}
				if lv.Ptr {
					val, err = remap(val)
					if err != nil {
						return nil, fmt.Errorf("core: %s slot %s: %w", fr.fn.Name, slot.Name, err)
					}
				}
				if err := write(dstBase+uint64(off), val); err != nil {
					return nil, err
				}
			}
		}
	}

	// --- Innermost frame: entry register state ---
	var newRegs isa.RegFile
	entryDstLoc := make(map[int]stackmap.Location, len(frames[0].dstSite.Live))
	for _, dlv := range frames[0].dstSite.Live {
		entryDstLoc[dlv.SlotID] = dlv.Loc[di]
	}
	for _, lv := range frames[0].site.Live {
		val := regs.R[srcABI.RegFromDwarf(lv.Loc[si].DwarfReg)]
		if lv.Ptr {
			var err error
			val, err = remap(val)
			if err != nil {
				return nil, fmt.Errorf("core: %s param %d: %w", frames[0].fn.Name, lv.SlotID, err)
			}
		}
		dloc, ok := entryDstLoc[lv.SlotID]
		if !ok {
			return nil, fmt.Errorf("core: %s: destination entry site missing param %d", frames[0].fn.Name, lv.SlotID)
		}
		newRegs.R[dstABI.RegFromDwarf(dloc.DwarfReg)] = val
	}
	spDst := entrySP
	if len(frames) == 1 {
		// No caller frames: reconstruct the thread-start state.
		switch {
		case frames[0].fn.Name == "__thread_exit":
			// The trampoline return address was consumed by RET.
			spDst = core.StackHigh
			if !dstABI.RetAddrOnStack {
				newRegs.R[dstABI.LR] = threadExitFn.Addr
			}
		case bottom == bottomThreadExit:
			// A spawned function at its entry: the trampoline address is
			// pending.
			if dstABI.RetAddrOnStack {
				spDst = core.StackHigh - 8
				if err := write(spDst, threadExitFn.Addr); err != nil {
					return nil, err
				}
			} else {
				spDst = core.StackHigh
				newRegs.R[dstABI.LR] = threadExitFn.Addr
			}
		default:
			// _start at its entry: empty stack, no return address.
			spDst = core.StackHigh
		}
	} else {
		innerRet := frames[1].dstSite.PCs[di].RetAddr
		if dstABI.RetAddrOnStack {
			// spDst already accounts for the slot the CALL pushed.
			if err := write(spDst, innerRet); err != nil {
				return nil, err
			}
		} else {
			newRegs.R[dstABI.LR] = innerRet
		}
		newRegs.R[dstABI.FP] = frames[1].fpDst
	}
	newRegs.R[dstABI.SP] = spDst
	newRegs.PC = frames[0].dstFn.EntrySite.PCs[di].TrapPC
	newRegs.TLS = dstABI.TLSRegValue(srcABI.TLSBlockStart(regs.TLS))

	out := *core
	out.Arch = dst.Arch
	out.Regs = newRegs
	return &out, nil
}
