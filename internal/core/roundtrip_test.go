package core_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
)

// TestDoubleMigration bounces a process x86 -> arm -> x86 with more work
// between the hops; the final output must still equal the native run.
// This exercises the rewriter consuming its own output.
func TestDoubleMigration(t *testing.T) {
	w := buildWorld(t, "bounce", countdownSrc)
	want, cycles := w.runNative(t, isa.SX86, 1)

	hop := func(p *kernel.Process, k *kernel.Kernel, to isa.Arch) (*kernel.Process, *kernel.Kernel) {
		t.Helper()
		// Meta follows the current binary (unchanged addresses/content
		// for cross-ISA hops).
		mon := monitor.New(k, p, w.pair.Meta)
		if err := mon.Pause(1 << 20); err != nil {
			t.Fatal(err)
		}
		dir, err := criu.Dump(p, criu.DumpOpts{})
		if err != nil {
			t.Fatal(err)
		}
		pol := core.CrossISAPolicy{Target: to}
		if err := pol.Rewrite(dir, &core.Context{Binaries: w.provider}); err != nil {
			t.Fatal(err)
		}
		k2 := kernel.New(kernel.Config{})
		p2, err := criu.Restore(k2, dir, w.provider)
		if err != nil {
			t.Fatal(err)
		}
		return p2, k2
	}

	k1, p1 := w.start(t, isa.SX86, 1)
	if _, err := k1.RunBudget(p1, cycles/4); err != nil {
		t.Fatal(err)
	}
	out := p1.ConsoleString()
	p2, k2 := hop(p1, k1, isa.SARM)
	if _, err := k2.RunBudget(p2, cycles/4); err != nil {
		t.Fatal(err)
	}
	out += p2.ConsoleString()
	p3, k3 := hop(p2, k2, isa.SX86)
	if err := k3.Run(p3); err != nil {
		t.Fatal(err)
	}
	out += p3.ConsoleString()
	if out != want {
		t.Errorf("double migration output:\n got %q\nwant %q", out, want)
	}
	if p3.Arch != isa.SX86 {
		t.Errorf("final arch %v", p3.Arch)
	}
}

// TestMigrateThenShuffle chains two policies on one checkpoint: cross-ISA
// rewrite followed by a stack shuffle of the destination image — the
// paper's composability claim in one test.
func TestMigrateThenShuffle(t *testing.T) {
	w := buildWorld(t, "chain", shuffleSrc)
	want, cycles := w.runNative(t, isa.SX86, 1)

	k1, p1 := w.start(t, isa.SX86, 1)
	if _, err := k1.RunBudget(p1, cycles/2); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k1, p1, w.pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	dir, err := criu.Dump(p1, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out := p1.ConsoleString()

	cross := core.CrossISAPolicy{}
	if err := cross.Rewrite(dir, &core.Context{Binaries: w.provider}); err != nil {
		t.Fatal(err)
	}
	var report core.ShuffleReport
	shuf := core.StackShufflePolicy{Seed: 5, Report: &report}
	if err := shuf.Rewrite(dir, &core.Context{Binaries: w.provider}); err != nil {
		t.Fatal(err)
	}
	if report.AvgBitsApp <= 0 {
		t.Error("chained shuffle introduced no entropy")
	}
	k2 := kernel.New(kernel.Config{})
	p2, err := criu.Restore(k2, dir, w.provider)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Arch != isa.SARM {
		t.Fatalf("restored on %v", p2.Arch)
	}
	if err := k2.Run(p2); err != nil {
		t.Fatal(err)
	}
	if got := out + p2.ConsoleString(); got != want {
		t.Errorf("migrate+shuffle output:\n got %q\nwant %q", got, want)
	}
}
