package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// FuncShuffle reports the shuffle applied to one function's frame.
type FuncShuffle struct {
	Name       string
	Candidates int // shuffle-eligible slots
	Pairs      int // pairwise swaps performed = bits of entropy
	Excluded   int // slots excluded (pair-accessed or wide-offset)
}

// ShuffleReport aggregates a stack-shuffle run (the data behind Figs. 9
// and 10).
type ShuffleReport struct {
	Arch    isa.Arch
	PerFunc []FuncShuffle
	AvgBits float64 // average pairwise shuffles across all functions
	// AvgBitsApp averages over application functions only (runtime
	// wrappers have near-empty frames and would dilute the number; the
	// paper reports per-benchmark frames).
	AvgBitsApp float64
	Patched    int // code bytes rewritten by the SBI pass
	Scanned    int // code bytes disassembled
}

// PossibleFrames returns the number of distinct frame layouts n bits of
// entropy yield: 1 + (2n-1)!! (paper §IV-B).
func PossibleFrames(bits int) uint64 {
	if bits <= 0 {
		return 1
	}
	var v uint64 = 1
	for k := int64(2*bits - 1); k > 0; k -= 2 {
		v *= uint64(k)
	}
	return 1 + v
}

// GuessProbability is an attacker's chance of locating one allocation
// under n bits of entropy: 1/(2n).
func GuessProbability(bits int) float64 {
	if bits <= 0 {
		return 1
	}
	return 1 / float64(2*bits)
}

// BinaryRegistrar is implemented by providers that can publish a modified
// binary (criu.MapProvider does).
type BinaryRegistrar interface {
	Register(path string, b *compiler.Binary)
}

// StackShufflePolicy permutes the stack-slot layout of every function:
// equal-size allocations are paired and swapped, the code pages are
// re-encoded (static binary instrumentation) to use the new frame offsets,
// the stack-map records are updated, and the checkpointed stack memory is
// rewritten to the new layout. Slots accessed by LDP/STP pair instructions
// are excluded, which is why SARM frames gain less entropy than SX86 ones
// — the paper's Fig. 10 asymmetry.
type StackShufflePolicy struct {
	// Seed drives the permutation (the re-randomization interval picks a
	// fresh seed per epoch).
	Seed int64
	// Report, when non-nil, receives the shuffle statistics.
	Report *ShuffleReport
}

// Name implements Policy.
func (StackShufflePolicy) Name() string { return "stack-shuffle" }

var _ Policy = StackShufflePolicy{}

// narrowFits mirrors the backend's load/store displacement limit: wide
// offsets are materialized through MOVZ/MOVK sequences the SBI pass does
// not re-encode, so such slots are excluded from shuffling.
func narrowFits(arch isa.Arch, off int64) bool {
	if arch == isa.SX86 {
		return true
	}
	return -off >= -2048 && -off <= 2047
}

// ShuffleBinary permutes frame layouts for one architecture, returning the
// instrumented binary (new text + metadata) and the report. It does not
// touch any checkpoint; Rewrite combines it with the stack rewrite.
func ShuffleBinary(bin *compiler.Binary, seed int64) (*compiler.Binary, *ShuffleReport, error) {
	arch := bin.Arch
	ai := stackmap.ArchIdx(arch)
	rng := rand.New(rand.NewSource(seed))
	newMeta := bin.Meta.Clone()
	newText := append([]byte(nil), bin.Text...)
	coder := compiler.CoderFor(arch)
	report := &ShuffleReport{Arch: arch}

	totalBits := 0
	framed := 0
	appBits := 0
	appFramed := 0
	for _, fn := range newMeta.Funcs {
		fs := FuncShuffle{Name: fn.Name}
		// Group candidate slots by size.
		groups := map[int64][]int{} // size -> slot indices in fn.Slots
		for i := range fn.Slots {
			s := &fn.Slots[i]
			if s.PairAccessed[ai] || !narrowFits(arch, s.Off[ai]) {
				fs.Excluded++
				continue
			}
			fs.Candidates++
			groups[s.Size] = append(groups[s.Size], i)
		}
		// Pair within groups and swap offsets. Group keys are visited in
		// sorted order so a given seed is reproducible.
		remap := map[int64]int64{} // old offset -> new offset
		sizes := make([]int64, 0, len(groups))
		for sz := range groups {
			sizes = append(sizes, sz)
		}
		sort.Slice(sizes, func(a, b int) bool { return sizes[a] < sizes[b] })
		for _, sz := range sizes {
			idxs := groups[sz]
			rng.Shuffle(len(idxs), func(a, b int) { idxs[a], idxs[b] = idxs[b], idxs[a] })
			for k := 0; k+1 < len(idxs); k += 2 {
				a, b := &fn.Slots[idxs[k]], &fn.Slots[idxs[k+1]]
				remap[a.Off[ai]] = b.Off[ai]
				remap[b.Off[ai]] = a.Off[ai]
				a.Off[ai], b.Off[ai] = b.Off[ai], a.Off[ai]
				fs.Pairs++
			}
		}
		if len(fn.Slots) > 0 {
			framed++
			totalBits += fs.Pairs
			if !fn.Wrapper && fn.Name != "_start" {
				appFramed++
				appBits += fs.Pairs
			}
		}
		report.PerFunc = append(report.PerFunc, fs)
		if len(remap) == 0 {
			continue
		}
		// Update live-value locations referencing moved slots.
		updateSite := func(site *stackmap.Site) {
			if site == nil {
				return
			}
			for li := range site.Live {
				lv := &site.Live[li]
				if lv.Loc[ai].InReg {
					continue
				}
				if no, ok := remap[lv.Loc[ai].FrameOff]; ok {
					lv.Loc[ai].FrameOff = no
				}
			}
		}
		updateSite(fn.EntrySite)
		for _, cs := range fn.CallSites {
			updateSite(cs)
		}
		// SBI: re-encode frame-relative instructions to the new offsets.
		patched, scanned, err := patchFunc(coder, arch, newText, fn, remap)
		if err != nil {
			return nil, nil, fmt.Errorf("core: shuffle %s: %w", fn.Name, err)
		}
		report.Patched += patched
		report.Scanned += scanned
	}
	newMeta.Index()
	if framed > 0 {
		report.AvgBits = float64(totalBits) / float64(framed)
	}
	if appFramed > 0 {
		report.AvgBitsApp = float64(appBits) / float64(appFramed)
	}
	out := *bin
	out.Text = newText
	out.Meta = newMeta
	return &out, report, nil
}

// patchFunc linearly disassembles one function and rewrites FP-relative
// displacements per remap.
func patchFunc(coder isa.Coder, arch isa.Arch, text []byte, fn *stackmap.Func, remap map[int64]int64) (patched, scanned int, err error) {
	abi := isa.ABIFor(arch)
	start := fn.Addr - isa.TextBase
	end := start + fn.Size
	if end > uint64(len(text)) {
		return 0, 0, fmt.Errorf("function range outside text")
	}
	for off := start; off < end; {
		pc := isa.TextBase + off
		inst, err := coder.Decode(text[off:end], pc)
		if err != nil {
			return patched, scanned, fmt.Errorf("disassemble at 0x%x: %w", pc, err)
		}
		scanned += inst.Len
		frameRef := false
		switch inst.Op {
		case isa.OpLoad, isa.OpStore, isa.OpLea, isa.OpAddImm, isa.OpLoadPair, isa.OpStorePair:
			frameRef = inst.Rn == abi.FP && inst.Imm < 0
		}
		if frameRef {
			if newOff, ok := remap[-inst.Imm]; ok {
				ni := inst
				ni.Imm = -newOff
				enc, err := coder.Encode(nil, ni, pc)
				if err != nil {
					return patched, scanned, fmt.Errorf("re-encode at 0x%x: %w", pc, err)
				}
				if len(enc) != inst.Len {
					return patched, scanned, fmt.Errorf("re-encode at 0x%x: length %d != %d", pc, len(enc), inst.Len)
				}
				copy(text[off:], enc)
				patched += len(enc)
			}
		}
		off += uint64(inst.Len)
	}
	return patched, scanned, nil
}

// Rewrite implements Policy: it publishes the instrumented binary and
// rewrites the checkpointed stacks and code pages to the new layout.
func (p StackShufflePolicy) Rewrite(dir *criu.ImageDir, ctx *Context) error {
	invRaw, ok := dir.Get("inventory.img")
	if !ok {
		return fmt.Errorf("core: missing inventory.img")
	}
	inv, err := criu.UnmarshalInventory(invRaw)
	if err != nil {
		return err
	}
	filesRaw, ok := dir.Get("files.img")
	if !ok {
		return fmt.Errorf("core: missing files.img")
	}
	files, err := criu.UnmarshalFiles(filesRaw)
	if err != nil {
		return err
	}
	bin, err := ctx.Binaries.Open(files.ExePath)
	if err != nil {
		return err
	}
	shuffled, report, err := ShuffleBinary(bin, p.Seed)
	if err != nil {
		return err
	}
	if p.Report != nil {
		*p.Report = *report
	}
	reg, ok := ctx.Binaries.(BinaryRegistrar)
	if !ok {
		return fmt.Errorf("core: binary provider cannot register the instrumented binary")
	}

	ps, err := criu.LoadPageSet(dir)
	if err != nil {
		return err
	}
	src := Side{Arch: inv.Arch, Meta: bin.Meta}
	dst := Side{Arch: inv.Arch, Meta: shuffled.Meta}
	newCores, coreBlobs, err := rewriteThreads(dir, ps, inv.TIDs, src, dst, ctx, "core: shuffle thread")
	if err != nil {
		return err
	}

	// Swap the execution-context code pages for the instrumented text.
	ps.DropRange(isa.TextBase, isa.TextBase+uint64(len(shuffled.Text)))
	for _, nc := range newCores {
		pageAddr := nc.Regs.PC / mem.PageSize * mem.PageSize
		off := pageAddr - isa.TextBase
		end := off + mem.PageSize
		if end > uint64(len(shuffled.Text)) {
			end = uint64(len(shuffled.Text))
		}
		ps.InstallPage(pageAddr, shuffled.Text[off:end])
	}
	if err := ps.WriteU64(isa.FlagAddr, 0); err != nil {
		return err
	}
	for i, nc := range newCores {
		dir.Put(criu.CoreName(nc.TID), coreBlobs[i])
	}
	ps.Store(dir)
	// Publish the instrumented binary at the original path so restore
	// loads the shuffled text.
	reg.Register(files.ExePath, shuffled)
	return nil
}
