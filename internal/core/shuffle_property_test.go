package core_test

import (
	"testing"
	"testing/quick"

	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/stackmap"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// TestShufflePermutationProperty: for arbitrary seeds, shuffling must
// produce a valid permutation of each function's frame — same offset
// multiset, sizes respected, excluded slots untouched, and live-value
// locations consistent with the slot table.
func TestShufflePermutationProperty(t *testing.T) {
	w, err := workloads.Get("linpack")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := workloads.CompilePair(w, workloads.ClassS)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed int64) bool {
		for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
			bin := pair.ByArch(arch)
			ai := stackmap.ArchIdx(arch)
			shuffled, _, err := core.ShuffleBinary(bin, seed)
			if err != nil {
				return false
			}
			for fi, of := range bin.Meta.Funcs {
				nf := shuffled.Meta.Funcs[fi]
				if of.Name != nf.Name {
					// Clone preserves order; Index may re-sort by address,
					// which is also order-preserving here.
					nf2, ok := shuffled.Meta.FuncByName(of.Name)
					if !ok {
						return false
					}
					nf = nf2
				}
				oldOffs := map[int64]int{}
				newOffs := map[int64]int{}
				for i := range of.Slots {
					os, ns := &of.Slots[i], &nf.Slots[i]
					if os.ID != ns.ID || os.Size != ns.Size || os.Ptr != ns.Ptr {
						return false
					}
					oldOffs[os.Off[ai]]++
					newOffs[ns.Off[ai]]++
					// Excluded slots must not move.
					if os.PairAccessed[ai] && os.Off[ai] != ns.Off[ai] {
						return false
					}
					// A moved slot must land on an equal-size peer's offset.
					if os.Off[ai] != ns.Off[ai] {
						found := false
						for j := range of.Slots {
							if of.Slots[j].Off[ai] == ns.Off[ai] && of.Slots[j].Size == os.Size {
								found = true
							}
						}
						if !found {
							return false
						}
					}
				}
				// Offsets are a permutation.
				if len(oldOffs) != len(newOffs) {
					return false
				}
				for off, n := range oldOffs {
					if newOffs[off] != n {
						return false
					}
				}
				// Live-value frame locations agree with the slot table.
				checkSite := func(s *stackmap.Site) bool {
					if s == nil {
						return true
					}
					for _, lv := range s.Live {
						if lv.Loc[ai].InReg {
							continue
						}
						slot, ok := nf.SlotByID(lv.SlotID)
						if !ok || slot.Off[ai] != lv.Loc[ai].FrameOff {
							return false
						}
					}
					return true
				}
				if !checkSite(nf.EntrySite) {
					return false
				}
				for _, cs := range nf.CallSites {
					if !checkSite(cs) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMetadataCloneIsDeep: mutating a clone must not leak into the
// original (the shuffler depends on this).
func TestMetadataCloneIsDeep(t *testing.T) {
	w, err := workloads.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := workloads.CompilePair(w, workloads.ClassS)
	if err != nil {
		t.Fatal(err)
	}
	orig := pair.X86.Meta
	clone := orig.Clone()
	cf := clone.Funcs[0]
	before := orig.Funcs[0].Slots
	if len(cf.Slots) > 0 {
		cf.Slots[0].Off[0] += 1000
	}
	if cf.EntrySite != nil && len(cf.EntrySite.Live) > 0 {
		cf.EntrySite.Live[0].Loc[0].FrameOff += 1000
	}
	// Find the original function with the same name (Clone re-sorts).
	of, _ := orig.FuncByName(cf.Name)
	if len(before) > 0 && of.Slots[0].Off[0] != before[0].Off[0] {
		t.Error("clone shares slot storage with original")
	}
	if of.EntrySite != nil && len(of.EntrySite.Live) > 0 &&
		cf.EntrySite.Live[0].Loc[0].FrameOff == of.EntrySite.Live[0].Loc[0].FrameOff {
		t.Error("clone shares live-value storage with original")
	}
}
