package core_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// shuffleSrc has functions with many same-size slots and stack arrays —
// the shuffling candidates — plus live pointers across calls.
const shuffleSrc = `
func mix(a int, b int) int {
	var t1 int;
	var t2 int;
	var t3 int;
	var t4 int;
	var buf[8] int;
	var i int;
	t1 = a + b;
	t2 = a - b;
	t3 = a * 2;
	t4 = b * 3;
	for i = 0; i < 8; i = i + 1 {
		buf[i] = t1 + i * t2;
	}
	return buf[3] + t3 + t4 + buf[7];
}

func scan(p *int, n int) int {
	var acc int;
	var j int;
	for j = 0; j < n; j = j + 1 {
		acc = acc + p[j];
	}
	return acc;
}

func main() {
	var data[16] int;
	var r int;
	var out int;
	for r = 0; r < 25; r = r + 1 {
		data[r % 16] = mix(r, r + 2);
		out = out + scan(&data[0], 16);
		printi(out % 10000);
		print(" ");
	}
	print("fin\n");
}`

func TestShuffleBinaryChangesLayout(t *testing.T) {
	w := buildWorld(t, "shuf", shuffleSrc)
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		bin := w.pair.ByArch(arch)
		shuffled, report, err := core.ShuffleBinary(bin, 42)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if report.AvgBits <= 0 {
			t.Errorf("%v: no entropy introduced: %+v", arch, report)
		}
		if report.Patched == 0 {
			t.Errorf("%v: SBI patched no instructions", arch)
		}
		// mix() has >=6 same-size scalar slots: its frame must change.
		of, _ := bin.Meta.FuncByName("mix")
		nf, _ := shuffled.Meta.FuncByName("mix")
		ai := stackmap.ArchIdx(arch)
		changed := 0
		for i := range of.Slots {
			if of.Slots[i].Off[ai] != nf.Slots[i].Off[ai] {
				changed++
			}
		}
		if changed < 2 {
			t.Errorf("%v: only %d slots moved in mix()", arch, changed)
		}
		if len(shuffled.Text) != len(bin.Text) {
			t.Errorf("%v: text size changed by SBI", arch)
		}
	}
}

// TestShuffledBinaryRunsCorrectly runs the instrumented binary from
// scratch: the permuted layout must be semantics-preserving.
func TestShuffledBinaryRunsCorrectly(t *testing.T) {
	w := buildWorld(t, "shufrun", shuffleSrc)
	want, _ := w.runNative(t, isa.SX86, 1)
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		for seed := int64(1); seed <= 5; seed++ {
			bin := w.pair.ByArch(arch)
			shuffled, _, err := core.ShuffleBinary(bin, seed)
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(kernel.Config{})
			p, err := k.StartProcess(shuffled.LoadSpec("/bin/s"))
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Run(p); err != nil {
				t.Fatalf("%v seed %d: %v", arch, seed, err)
			}
			if got := p.ConsoleString(); got != want {
				t.Errorf("%v seed %d: output %q, want %q", arch, seed, got, want)
			}
		}
	}
}

// TestShufflePolicyMidRun checkpoints mid-run, shuffles the image (stack
// contents + code pages + binary), restores, and requires identical
// output — the paper's live re-randomization.
func TestShufflePolicyMidRun(t *testing.T) {
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		w := buildWorld(t, "shufmid", shuffleSrc)
		want, cycles := w.runNative(t, arch, 1)
		for _, frac := range []float64{0.2, 0.5, 0.8} {
			for seed := int64(7); seed <= 9; seed++ {
				k1, p1 := w.start(t, arch, 1)
				if _, err := k1.RunBudget(p1, uint64(float64(cycles)*frac)); err != nil {
					t.Fatal(err)
				}
				if p1.Exited {
					continue
				}
				mon := monitor.New(k1, p1, w.pair.Meta)
				if err := mon.Pause(1 << 20); err != nil {
					t.Fatal(err)
				}
				dir, err := criu.Dump(p1, criu.DumpOpts{})
				if err != nil {
					t.Fatal(err)
				}
				out1 := p1.ConsoleString()
				var report core.ShuffleReport
				pol := core.StackShufflePolicy{Seed: seed, Report: &report}
				if err := pol.Rewrite(dir, &core.Context{Binaries: w.provider}); err != nil {
					t.Fatalf("%v frac %.1f seed %d: %v", arch, frac, seed, err)
				}
				k2 := kernel.New(kernel.Config{})
				p2, err := criu.Restore(k2, dir, w.provider)
				if err != nil {
					t.Fatal(err)
				}
				if err := k2.Run(p2); err != nil {
					t.Fatalf("%v frac %.1f seed %d: post-shuffle run: %v", arch, frac, seed, err)
				}
				if got := out1 + p2.ConsoleString(); got != want {
					t.Errorf("%v frac %.1f seed %d: got %q want %q", arch, frac, seed, got, want)
				}
				// Re-register original binaries for the next iteration
				// (the policy replaced them with instrumented ones).
				w.provider.Register(archPath(w, arch), w.pair.ByArch(arch))
			}
		}
	}
}

func archPath(w *world, arch isa.Arch) string {
	for path, b := range w.provider {
		if b.Arch == arch {
			return path
		}
	}
	return ""
}

// TestArmEntropyLowerThanX86 reproduces the Fig. 10 asymmetry: SARM
// excludes LDP/STP pair-accessed slots, so it gains fewer bits.
func TestArmEntropyLowerThanX86(t *testing.T) {
	// Functions with 2-3 parameters give SARM pair-stored slots.
	src := `
func f3(a int, b int, c int) int {
	var x int;
	var y int;
	var z int;
	x = a + b;
	y = b + c;
	z = a + c;
	return x * y + z;
}
func f2(a int, b int) int {
	var u int;
	var v int;
	u = a * b;
	v = a - b;
	return u + v;
}
func main() {
	printi(f3(1, 2, 3) + f2(4, 5));
}`
	w := buildWorld(t, "entropy", src)
	_, rx, err := core.ShuffleBinary(w.pair.X86, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ra, err := core.ShuffleBinary(w.pair.ARM, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ra.AvgBits >= rx.AvgBits {
		t.Errorf("SARM bits %.2f not lower than SX86 bits %.2f", ra.AvgBits, rx.AvgBits)
	}
	// Pair-accessed exclusions must exist on SARM and not on SX86.
	armExcluded, x86Excluded := 0, 0
	for _, f := range ra.PerFunc {
		armExcluded += f.Excluded
	}
	for _, f := range rx.PerFunc {
		x86Excluded += f.Excluded
	}
	if armExcluded == 0 {
		t.Error("no slots excluded on SARM")
	}
	if x86Excluded != 0 {
		t.Errorf("%d slots unexpectedly excluded on SX86", x86Excluded)
	}
}

func TestEntropyFormulas(t *testing.T) {
	// Paper: 4 bits -> 1 + 7!! = 106 layouts, guess probability 0.125.
	if got := core.PossibleFrames(4); got != 106 {
		t.Errorf("PossibleFrames(4) = %d, want 106", got)
	}
	if got := core.GuessProbability(4); got != 0.125 {
		t.Errorf("GuessProbability(4) = %v, want 0.125", got)
	}
	if core.PossibleFrames(0) != 1 || core.GuessProbability(0) != 1 {
		t.Error("zero-entropy cases wrong")
	}
}
