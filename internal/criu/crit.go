package criu

import (
	"encoding/json"
	"fmt"
	"strings"
)

// CritDoc is the human-readable (JSON) form of an image directory, the
// equivalent of CRIU's CRIT tool output. The DAPPER rewriter operates on
// the binary images; CRIT exists for inspection and for scripting
// transformations, exactly as in the paper ("decode to JSON, encode back").
type CritDoc struct {
	Inventory *InventoryImage `json:"inventory,omitempty"`
	MM        *MMImage        `json:"mm,omitempty"`
	Pagemap   *PagemapImage   `json:"pagemap,omitempty"`
	Files     *FilesImage     `json:"files,omitempty"`
	Cores     []*CoreImage    `json:"cores,omitempty"`
	// Pages carries the raw page payload (base64 in JSON).
	Pages []byte `json:"pages,omitempty"`
	// Extra keeps unknown image files (e.g. policy-specific additions).
	Extra map[string][]byte `json:"extra,omitempty"`
}

// Decode converts an image directory to its CRIT document.
func Decode(dir *ImageDir) (*CritDoc, error) {
	doc := &CritDoc{Extra: map[string][]byte{}}
	for _, name := range dir.Names() {
		raw, _ := dir.Get(name)
		switch {
		case name == "inventory.img":
			v, err := UnmarshalInventory(raw)
			if err != nil {
				return nil, err
			}
			doc.Inventory = v
		case name == "mm.img":
			v, err := UnmarshalMM(raw)
			if err != nil {
				return nil, err
			}
			doc.MM = v
		case name == "pagemap.img":
			v, err := UnmarshalPagemap(raw)
			if err != nil {
				return nil, err
			}
			doc.Pagemap = v
		case name == "files.img":
			v, err := UnmarshalFiles(raw)
			if err != nil {
				return nil, err
			}
			doc.Files = v
		case name == "pages.img":
			doc.Pages = raw
		case strings.HasPrefix(name, "core-"):
			v, err := UnmarshalCore(raw)
			if err != nil {
				return nil, err
			}
			doc.Cores = append(doc.Cores, v)
		default:
			doc.Extra[name] = raw
		}
	}
	return doc, nil
}

// Encode converts a CRIT document back to an image directory.
func Encode(doc *CritDoc) *ImageDir {
	dir := NewImageDir()
	if doc.Inventory != nil {
		dir.Put("inventory.img", doc.Inventory.Marshal())
	}
	if doc.MM != nil {
		dir.Put("mm.img", doc.MM.Marshal())
	}
	if doc.Pagemap != nil {
		dir.Put("pagemap.img", doc.Pagemap.Marshal())
	}
	if doc.Files != nil {
		dir.Put("files.img", doc.Files.Marshal())
	}
	if doc.Pages != nil {
		dir.Put("pages.img", doc.Pages)
	}
	for _, c := range doc.Cores {
		dir.Put(CoreName(c.TID), c.Marshal())
	}
	for name, raw := range doc.Extra {
		dir.Put(name, raw)
	}
	return dir
}

// DecodeJSON renders an image directory as indented JSON.
func DecodeJSON(dir *ImageDir) ([]byte, error) {
	doc, err := Decode(dir)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(doc, "", "  ")
}

// EncodeJSON parses CRIT JSON back into an image directory.
func EncodeJSON(data []byte) (*ImageDir, error) {
	var doc CritDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("criu: crit json: %w", err)
	}
	return Encode(&doc), nil
}
