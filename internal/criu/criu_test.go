package criu_test

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
)

func TestCoreImageRoundTrip(t *testing.T) {
	c := &criu.CoreImage{
		TID: 3, Arch: isa.SARM,
		StackLow: 0x6ff00000, StackHigh: 0x6ff40000, TLSBlock: 0x60002000,
	}
	for i := range c.Regs.R {
		c.Regs.R[i] = uint64(i) * 0x1111111111111111
	}
	c.Regs.PC = 0x400abc
	c.Regs.TLS = 0x60002010
	got, err := criu.UnmarshalCore(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", c, got)
	}
}

func TestMMImageRoundTrip(t *testing.T) {
	m := &criu.MMImage{
		Brk: 0x20004000,
		VMAs: []criu.VMAEntry{
			{Start: 0x400000, End: 0x410000, Kind: 1, Prot: 5},
			{Start: 0x6ff00000, End: 0x6ff40000, Kind: 4, Prot: 3, TID: 2},
		},
	}
	got, err := criu.UnmarshalMM(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", m, got)
	}
}

func TestInventoryRoundTrip(t *testing.T) {
	iv := &criu.InventoryImage{
		Arch: isa.SX86, TIDs: []int{1, 2, 5},
		Mutexes: []criu.MutexEntry{{ID: 7, Holder: 2, Recurse: 3}},
	}
	got, err := criu.UnmarshalInventory(iv.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(iv, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", iv, got)
	}
}

func TestImageDirRoundTripProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		dir := criu.NewImageDir()
		dir.Put("a.img", a)
		dir.Put("b.img", b)
		got, err := criu.UnmarshalImageDir(dir.Marshal())
		if err != nil {
			return false
		}
		ga, _ := got.Get("a.img")
		gb, _ := got.Get("b.img")
		return bytes.Equal(ga, a) && bytes.Equal(gb, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageSetStoreLoadRoundTrip(t *testing.T) {
	dir := criu.NewImageDir()
	ps := &criu.PageSet{Pages: map[uint64][]byte{}, LazyPages: map[uint64]bool{}}
	mk := func(fill byte) []byte {
		pg := make([]byte, mem.PageSize)
		for i := range pg {
			pg[i] = fill
		}
		return pg
	}
	// Two contiguous runs, a gap, a lazy run interleaved.
	ps.Pages[0x10000] = mk(1)
	ps.Pages[0x11000] = mk(2)
	ps.LazyPages[0x12000] = true
	ps.LazyPages[0x13000] = true
	ps.Pages[0x20000] = mk(3)
	ps.Store(dir)

	pmRaw, _ := dir.Get("pagemap.img")
	pm, err := criu.UnmarshalPagemap(pmRaw)
	if err != nil {
		t.Fatal(err)
	}
	// Expect three coalesced entries: eager x2, lazy x2, eager x1.
	if len(pm.Entries) != 3 {
		t.Fatalf("pagemap entries = %+v", pm.Entries)
	}
	if pm.Entries[0].NrPages != 2 || pm.Entries[0].Lazy {
		t.Errorf("entry 0 = %+v", pm.Entries[0])
	}
	if pm.Entries[1].NrPages != 2 || !pm.Entries[1].Lazy {
		t.Errorf("entry 1 = %+v", pm.Entries[1])
	}

	got, err := criu.LoadPageSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pages[0x11000], mk(2)) {
		t.Error("page content lost")
	}
	if !got.LazyPages[0x13000] {
		t.Error("lazy flag lost")
	}
	if _, ok := got.Pages[0x12000]; ok {
		t.Error("lazy page has eager content")
	}
}

func TestPageSetReadWrite(t *testing.T) {
	ps := &criu.PageSet{Pages: map[uint64][]byte{}, LazyPages: map[uint64]bool{0x3000: true}}
	if err := ps.WriteU64(0x1008, 0xdead); err != nil {
		t.Fatal(err)
	}
	v, err := ps.ReadU64(0x1008)
	if err != nil || v != 0xdead {
		t.Errorf("read back %x (err %v)", v, err)
	}
	if _, err := ps.ReadU64(0x9000); err == nil {
		t.Error("read of absent page succeeded")
	}
	// Writing to a lazy page materializes it and clears the lazy flag.
	if err := ps.WriteU64(0x3000, 1); err != nil {
		t.Fatal(err)
	}
	if ps.LazyPages[0x3000] {
		t.Error("write did not clear lazy flag")
	}
	ps.DropRange(0x1000, 0x2000)
	if _, err := ps.ReadU64(0x1008); err == nil {
		t.Error("read after DropRange succeeded")
	}
}

func TestCritJSONRoundTrip(t *testing.T) {
	dir := criu.NewImageDir()
	dir.Put("inventory.img", (&criu.InventoryImage{Arch: isa.SX86, TIDs: []int{1}}).Marshal())
	dir.Put("files.img", (&criu.FilesImage{ExePath: "/bin/x.sx86"}).Marshal())
	core := &criu.CoreImage{TID: 1, Arch: isa.SX86}
	core.Regs.PC = 0x401000
	dir.Put("core-1.img", core.Marshal())
	dir.Put("mm.img", (&criu.MMImage{Brk: 0x20000000}).Marshal())
	dir.Put("pagemap.img", (&criu.PagemapImage{}).Marshal())
	dir.Put("pages.img", nil)
	dir.Put("custom.img", []byte("extra"))

	js, err := criu.DecodeJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte("/bin/x.sx86")) {
		t.Error("JSON missing exe path")
	}
	back, err := criu.EncodeJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"inventory.img", "files.img", "core-1.img", "mm.img", "custom.img"} {
		orig, _ := dir.Get(name)
		enc, ok := back.Get(name)
		if !ok || !bytes.Equal(orig, enc) {
			t.Errorf("%s not preserved through CRIT round trip", name)
		}
	}
}

// TestCritEditWorkflow modifies an image through the JSON form, the way a
// scripted CRIT transformation would.
func TestCritEditWorkflow(t *testing.T) {
	dir := criu.NewImageDir()
	dir.Put("files.img", (&criu.FilesImage{ExePath: "/bin/app.sx86"}).Marshal())
	doc, err := criu.Decode(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc.Files.ExePath = "/bin/app.sarm"
	dir2 := criu.Encode(doc)
	raw, _ := dir2.Get("files.img")
	files, err := criu.UnmarshalFiles(raw)
	if err != nil || files.ExePath != "/bin/app.sarm" {
		t.Errorf("edited path = %q (err %v)", files.ExePath, err)
	}
}

func TestTCPPageServer(t *testing.T) {
	// A synthetic page source served over a real socket.
	src := pageFunc(func(addr uint64) ([]byte, error) {
		pg := make([]byte, mem.PageSize)
		pg[0] = byte(addr >> 12)
		pg[1] = 0x77
		return pg, nil
	})
	srv, err := criu.ServePages("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := criu.DialPageServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, addr := range []uint64{0x1000, 0xabc000, 0x20000000} {
		pg, err := client.FetchPage(addr)
		if err != nil {
			t.Fatal(err)
		}
		if pg[0] != byte(addr>>12) || pg[1] != 0x77 {
			t.Errorf("page 0x%x content wrong: % x", addr, pg[:2])
		}
	}
}

type pageFunc func(uint64) ([]byte, error)

func (f pageFunc) FetchPage(addr uint64) ([]byte, error) { return f(addr) }

func TestRestoreErrorPaths(t *testing.T) {
	k := kernel.New(kernel.Config{})
	// Empty directory: every required image missing.
	if _, err := criu.Restore(k, criu.NewImageDir(), criu.MapProvider{}); err == nil {
		t.Error("restore of empty directory succeeded")
	}
	// Inventory present but files image missing.
	dir := criu.NewImageDir()
	dir.Put("inventory.img", (&criu.InventoryImage{Arch: isa.SX86, TIDs: []int{1}}).Marshal())
	if _, err := criu.Restore(k, dir, criu.MapProvider{}); err == nil {
		t.Error("restore without files.img succeeded")
	}
	// Files image referencing an unregistered binary.
	dir.Put("files.img", (&criu.FilesImage{ExePath: "/bin/ghost.sx86"}).Marshal())
	if _, err := criu.Restore(k, dir, criu.MapProvider{}); err == nil {
		t.Error("restore with unresolvable executable succeeded")
	}
}

func TestDumpRequiresQuiescence(t *testing.T) {
	pair, err := compiler.Compile(`func main() { printi(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/q.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	// Not stopped: dump must refuse.
	if _, err := criu.Dump(p, criu.DumpOpts{}); err == nil {
		t.Error("dump of running process succeeded")
	}
	// Stopped but thread not at an equivalence point: dump must refuse.
	kernel.Attach(p).Stop()
	if _, err := criu.Dump(p, criu.DumpOpts{}); err == nil {
		t.Error("dump of non-quiescent process succeeded")
	}
}
