package criu_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/mem"
)

// TestDedupDeltaCombinedFlags pins the dedup/delta interaction: a page
// that is both delta-encoded against its base and byte-identical to an
// earlier delta page in the same dump is emitted as a combined
// dedup+delta entry, resolves in one forward pass of LoadPageSet (with
// the delta class propagated), and never crosses representation classes
// — identical bytes stored once as content and once as an XOR diff must
// not dedup against each other.
func TestDedupDeltaCombinedFlags(t *testing.T) {
	mk := func(fill byte) []byte {
		pg := make([]byte, mem.PageSize)
		for i := range pg {
			pg[i] = fill
		}
		return pg
	}
	const base = uint64(0x1000_0000)
	pg := func(i uint64) uint64 { return base + i*mem.PageSize }

	ps := criu.NewPageSet()
	ps.Pages[pg(0)] = mk(0x11) // plain data, dedup keeper
	ps.Pages[pg(1)] = mk(0x22) // delta, dedup keeper
	ps.DeltaPages[pg(1)] = true
	ps.Pages[pg(2)] = mk(0x22) // identical delta -> dedup+delta ref
	ps.DeltaPages[pg(2)] = true
	ps.Pages[pg(3)] = mk(0x11) // identical data -> plain dedup ref
	ps.Pages[pg(4)] = mk(0x22) // same bytes as the delta pages, but plain
	// data: must NOT dedup across the classes

	dir := criu.NewImageDir()
	stats := ps.StoreWith(dir, criu.StoreOpts{Dedup: true})
	if stats.PagesElided != 2 {
		t.Fatalf("PagesElided = %d, want 2 (one per class)", stats.PagesElided)
	}

	pmRaw, _ := dir.Get("pagemap.img")
	pm, err := criu.UnmarshalPagemap(pmRaw)
	if err != nil {
		t.Fatal(err)
	}
	var combined, plain int
	for _, en := range pm.Entries {
		switch {
		case en.Dedup && en.Delta:
			combined++
			if en.Vaddr != pg(2) || en.DedupSrc != pg(1) {
				t.Fatalf("combined entry 0x%x -> 0x%x, want 0x%x -> 0x%x", en.Vaddr, en.DedupSrc, pg(2), pg(1))
			}
		case en.Dedup:
			plain++
			if en.Vaddr != pg(3) || en.DedupSrc != pg(0) {
				t.Fatalf("plain dedup entry 0x%x -> 0x%x, want 0x%x -> 0x%x", en.Vaddr, en.DedupSrc, pg(3), pg(0))
			}
		}
	}
	if combined != 1 || plain != 1 {
		t.Fatalf("dedup entries: combined=%d plain=%d, want 1/1", combined, plain)
	}

	got, err := criu.LoadPageSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	for a, want := range ps.Pages {
		if !bytes.Equal(got.Pages[a], want) {
			t.Fatalf("page 0x%x differs after dedup resolution", a)
		}
		if got.DeltaPages[a] != ps.DeltaPages[a] {
			t.Fatalf("page 0x%x delta flag = %v, want %v", a, got.DeltaPages[a], ps.DeltaPages[a])
		}
	}

	// An ill-classed reference — the combined entry's delta flag stripped
	// so it claims a data-class ref into a delta source — must be
	// rejected, not silently resolved.
	for i := range pm.Entries {
		if pm.Entries[i].Dedup && pm.Entries[i].Delta {
			pm.Entries[i].Delta = false
		}
	}
	dir.Put("pagemap.img", pm.Marshal())
	if _, err := criu.LoadPageSet(dir); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("class-crossing dedup ref not rejected, err = %v", err)
	}
}
