package criu_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
)

// buildDeltaChain is buildChain with XOR-delta encoding threaded through:
// each incremental dump XORs re-dirtied pages against the chain's resolved
// content, maintained round-over-round with AdvanceBase. It returns the
// chain, the still-paused process, and the dump telemetry.
func buildDeltaChain(t *testing.T, src string, arch isa.Arch, rounds int, budget uint64) ([]*criu.ImageDir, *kernel.Process, *obs.Registry) {
	t.Helper()
	pair, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Cores: 2, Quantum: 97})
	p, err := k.StartProcess(pair.ByArch(arch).LoadSpec("/bin/inc." + arch.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunBudget(p, budget); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatalf("pause 0: %v", err)
	}
	reg := obs.New()
	full, err := criu.Dump(p, criu.DumpOpts{TrackMem: true, Obs: reg})
	if err != nil {
		t.Fatalf("base dump: %v", err)
	}
	base, err := criu.AdvanceBase(nil, full)
	if err != nil {
		t.Fatalf("base advance: %v", err)
	}
	chain := []*criu.ImageDir{full}
	for r := 1; r <= rounds; r++ {
		if err := mon.ResumeLocal(); err != nil {
			t.Fatalf("resume %d: %v", r, err)
		}
		alive, err := k.RunBudget(p, budget)
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
		if !alive {
			t.Fatalf("program finished before round %d; shrink the budget", r)
		}
		if err := mon.Pause(1 << 20); err != nil {
			t.Fatalf("pause %d: %v", r, err)
		}
		delta, err := criu.Dump(p, criu.DumpOpts{
			Parent: chain[len(chain)-1], TrackMem: true, DeltaBase: base, Obs: reg,
		})
		if err != nil {
			t.Fatalf("delta dump %d: %v", r, err)
		}
		if base, err = criu.AdvanceBase(base, delta); err != nil {
			t.Fatalf("advance %d: %v", r, err)
		}
		chain = append(chain, delta)
	}
	return chain, p, reg
}

// TestDeltaChainMatchesFullDump is the delta-encoding property test: a
// chain dumped with XOR deltas must flatten to exactly the pages a single
// full dump of the final state holds — the deltas are a pure wire
// encoding, invisible after FlattenChain.
func TestDeltaChainMatchesFullDump(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		arch   isa.Arch
		rounds int
		budget uint64
	}{
		{"dense-x86-3x9k", denseWriter, isa.SX86, 3, 9_000},
		{"dense-arm-2x14k", denseWriter, isa.SARM, 2, 14_000},
		{"sparse-x86-3x7k", sparseWriter, isa.SX86, 3, 7_000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			chain, p, reg := buildDeltaChain(t, tc.src, tc.arch, tc.rounds, tc.budget)
			// The dense writer re-dirties the same window every round, so a
			// chain that never emitted a delta page means the encoder is
			// dead and this test is vacuous.
			if reg.Counter("dump.pages_delta").Value() == 0 {
				t.Fatal("no delta pages were encoded across the whole chain")
			}
			full, err := criu.Dump(p, criu.DumpOpts{})
			if err != nil {
				t.Fatalf("reference full dump: %v", err)
			}
			flat, err := criu.FlattenChain(chain)
			if err != nil {
				t.Fatalf("flatten: %v", err)
			}
			want := resolvedPages(t, full)
			got := resolvedPages(t, flat)
			if len(got) != len(want) {
				t.Errorf("flattened delta chain resolves %d pages, full dump has %d", len(got), len(want))
			}
			for a, w := range want {
				g, ok := got[a]
				if !ok {
					t.Errorf("page 0x%x missing from flattened delta chain", a)
					continue
				}
				if !bytes.Equal(g, w) {
					t.Errorf("page 0x%x differs between delta chain and full dump", a)
				}
			}
		})
	}
}

// TestDeltaChainMatchesPlainIncremental runs the same program through a
// plain incremental chain and a delta-encoded one; both flattenings must
// be page-identical, and the delta dumps must never carry more payload
// than their plain counterparts (a delta page replaces a data page
// one-for-one; demotions to in_parent only shrink it further).
func TestDeltaChainMatchesPlainIncremental(t *testing.T) {
	const rounds, budget = 3, 9_000
	plain, _ := buildChain(t, denseWriter, isa.SX86, rounds, budget)
	delta, _, _ := buildDeltaChain(t, denseWriter, isa.SX86, rounds, budget)

	plainFlat, err := criu.FlattenChain(plain)
	if err != nil {
		t.Fatal(err)
	}
	deltaFlat, err := criu.FlattenChain(delta)
	if err != nil {
		t.Fatal(err)
	}
	want := resolvedPages(t, plainFlat)
	got := resolvedPages(t, deltaFlat)
	if len(got) != len(want) {
		t.Fatalf("delta chain resolves %d pages, plain chain %d", len(got), len(want))
	}
	for a, w := range want {
		if !bytes.Equal(got[a], w) {
			t.Errorf("page 0x%x differs between plain and delta chains", a)
		}
	}
	for i := 1; i < len(plain); i++ {
		p, d := criu.DumpedPages(plain[i]), criu.DumpedPages(delta[i])
		if d > p {
			t.Errorf("round %d: delta dump carries %d pages, plain dump only %d", i, d, p)
		}
	}
}

// TestDeltaCRITRoundTrip: the delta flag must survive the CRIT JSON
// round trip byte-for-byte, and be visible in the JSON itself.
func TestDeltaCRITRoundTrip(t *testing.T) {
	chain, _, _ := buildDeltaChain(t, denseWriter, isa.SX86, 2, 9_000)
	final := chain[len(chain)-1]
	ps, err := criu.LoadPageSet(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.DeltaPages) == 0 {
		t.Fatal("final delta dump has no delta pages; nothing to round-trip")
	}
	js, err := criu.DecodeJSON(final)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"delta": true`) {
		t.Error("CRIT JSON does not surface the delta flag")
	}
	back, err := criu.EncodeJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pagemap.img", "pages.img"} {
		w, _ := final.Get(name)
		g, ok := back.Get(name)
		if !ok || !bytes.Equal(g, w) {
			t.Errorf("%s not byte-identical after CRIT round trip", name)
		}
	}
}

// TestDeltaDumpGuards covers the delta-specific misuse errors.
func TestDeltaDumpGuards(t *testing.T) {
	chain, p, _ := buildDeltaChain(t, denseWriter, isa.SX86, 2, 9_000)
	base, err := criu.AdvanceBase(nil, chain[0])
	if err != nil {
		t.Fatal(err)
	}
	// DeltaBase without Parent is meaningless: there is no chain to hold
	// the base content the XOR refers to.
	if _, err := criu.Dump(p, criu.DumpOpts{TrackMem: true, DeltaBase: base}); err == nil {
		t.Error("delta dump without Parent succeeded")
	}
	// An unflattened delta dump must refuse to restore, pointing at
	// FlattenChain.
	pair, err := compiler.Compile(denseWriter)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{})
	prov := criu.MapProvider{"/bin/inc.sx86": pair.X86}
	if _, err := criu.Restore(k, chain[1], prov); err == nil || !strings.Contains(err.Error(), "flatten") {
		t.Errorf("restore of raw delta dump: %v", err)
	}
	// AdvanceBase seeded with a delta dump (instead of the chain's full
	// base) must refuse: the XORs have nothing to apply to.
	if _, err := criu.AdvanceBase(nil, chain[1]); err == nil {
		t.Error("AdvanceBase accepted a delta dump as the chain's first link")
	}
	// A truncated chain cannot resolve its deltas.
	if _, err := criu.FlattenChain(chain[1:]); err == nil {
		t.Error("flatten of a delta chain missing its base succeeded")
	}
}

// TestDeltaChainRestores completes the loop: flatten the delta chain and
// restore it, and the resumed run must produce the same output as the
// uninterrupted reference.
func TestDeltaChainRestores(t *testing.T) {
	pair, err := compiler.Compile(denseWriter)
	if err != nil {
		t.Fatal(err)
	}
	kn := kernel.New(kernel.Config{})
	pn, err := kn.StartProcess(pair.X86.LoadSpec("/bin/inc.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	if err := kn.Run(pn); err != nil {
		t.Fatal(err)
	}
	want := pn.ConsoleString()

	chain, p, _ := buildDeltaChain(t, denseWriter, isa.SX86, 3, 9_000)
	flat, err := criu.FlattenChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	k2 := kernel.New(kernel.Config{})
	prov := criu.MapProvider{"/bin/inc.sx86": pair.X86}
	p2, err := criu.Restore(k2, flat, prov)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(p2); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsoleString() + p2.ConsoleString(); got != want {
		t.Errorf("delta-chain restore output %q, want %q", got, want)
	}
}
