package criu

import (
	"fmt"
	"strconv"
	"time"

	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/parallel"
	"github.com/dapper-sim/dapper/internal/registry"
)

// DumpOpts controls the dump.
type DumpOpts struct {
	// Lazy leaves heap/data page contents on the source node (post-copy
	// migration): only stack, TLS, and execution-context code pages are
	// dumped eagerly; the rest are marked lazy in the pagemap and served
	// by a page server. This mirrors the paper's extension of CRIU
	// lazy-migration that additionally dumps the stack pages so
	// cross-architecture rewriting still works.
	Lazy bool
	// Parent makes the dump incremental (CRIU's --prev-images-dir): pages
	// unchanged since the parent checkpoint — per the soft-dirty tracker —
	// become in_parent pagemap entries with no bytes. Parent must be the
	// directory produced by the previous dump of the same process, taken
	// with TrackMem so tracking covered the interval. Incompatible with
	// Lazy.
	Parent *ImageDir
	// TrackMem re-arms soft-dirty tracking once the pages are collected
	// (CRIU's --track-mem), so the next Dump can pass this directory as
	// Parent.
	TrackMem bool
	// DeltaBase, if set alongside Parent, enables XOR-delta encoding of
	// dirty pages: a dirty page the parent chain also holds is stored as
	// the XOR of its bytes with the chain's resolved content for that
	// address (mostly zeros for small mutations — the wire codec's best
	// case), marked with the pagemap delta flag. DeltaBase must be the
	// chain's resolved page content up to and including Parent; maintain
	// it across rounds with AdvanceBase. A dirty page whose XOR comes out
	// all-zero (a soft-dirty false positive) is demoted to in_parent,
	// eliding its bytes entirely.
	DeltaBase *PageSet
	// Obs, if set, receives dump telemetry: per-class page counters
	// (dumped / zero / lazy / elided-as-in_parent) and the host wall time
	// of the dump. Nil disables recording.
	Obs *obs.Registry
	// Workers bounds the page-collection fan-out: populated pages are
	// sharded into contiguous ranges classified and copied concurrently,
	// then merged in shard order. Values <= 0 select runtime.NumCPU();
	// 1 reproduces the historical serial walk. The produced images are
	// byte-identical for every worker count (the page-set coalescer
	// sorts addresses before encoding).
	Workers int
	// Dedup content-addresses data pages in the stored page set: later
	// pages whose bytes match an earlier page become pagemap-only dedup
	// references, shrinking pages.img and the wire transfer. Off by
	// default to keep images byte-identical with pre-dedup dumps.
	Dedup bool
	// Registry, if set, pushes the finished image to this persistent
	// content-addressed store: page chunks the store already holds are
	// elided (the store's registry.chunks_hit counter — the cross-dump
	// analogue of Dedup's within-dump elision) and the manifest is
	// journaled durably.
	Registry *registry.Store
	// RegistryParent links the pushed manifest to the parent
	// checkpoint's manifest, making the incremental/delta chain
	// first-class in the store (GC pins ancestors of live manifests).
	RegistryParent string
	// RegistryOwner, when non-empty, takes an owner-tagged reference on
	// the pushed manifest so it is born pinned against GC.
	RegistryOwner string
	// ManifestOut, if non-nil, receives the pushed manifest's ID.
	ManifestOut *string
}

// CoreName returns the core image filename for a thread.
func CoreName(tid int) string { return "core-" + strconv.Itoa(tid) + ".img" }

// Dump checkpoints a stopped process whose live threads are all parked at
// equivalence points (SIGTRAP), producing the image directory.
func Dump(p *kernel.Process, opts DumpOpts) (*ImageDir, error) {
	start := time.Now()
	if !p.Stopped {
		return nil, fmt.Errorf("criu: process %d not stopped (send SIGSTOP first)", p.PID)
	}
	if opts.Parent != nil && opts.Lazy {
		return nil, fmt.Errorf("criu: incremental dumps are incompatible with lazy dumps")
	}
	if opts.DeltaBase != nil && opts.Parent == nil {
		return nil, fmt.Errorf("criu: delta encoding requires an incremental dump (set Parent)")
	}
	var dirty map[uint64]bool
	var inParent map[uint64]bool
	if opts.Parent != nil {
		if !p.DirtyTracking() {
			return nil, fmt.Errorf("criu: incremental dump of pid %d without dirty tracking (take the parent dump with TrackMem)", p.PID)
		}
		dirty = make(map[uint64]bool)
		for _, idx := range p.CollectDirty() {
			dirty[idx] = true
		}
		var err error
		inParent, err = CoveredPages(opts.Parent)
		if err != nil {
			return nil, fmt.Errorf("criu: parent images: %w", err)
		}
	}
	dir := NewImageDir()
	inv := &InventoryImage{Arch: p.Arch}
	for _, t := range p.Threads {
		if t.State == kernel.ThreadExited {
			continue
		}
		if t.State != kernel.ThreadTrapped {
			return nil, fmt.Errorf("criu: thread %d in state %v, not at an equivalence point", t.TID, t.State)
		}
		inv.TIDs = append(inv.TIDs, t.TID)
		core := &CoreImage{
			TID: t.TID, Arch: p.Arch, Regs: t.Regs,
			StackLow: t.StackLow, StackHigh: t.StackHigh, TLSBlock: t.TLSBlock,
		}
		dir.Put(CoreName(t.TID), core.Marshal())
	}
	if len(inv.TIDs) == 0 {
		return nil, fmt.Errorf("criu: no live threads to dump")
	}
	for _, id := range p.HeldMutexes() {
		holder, recurse := p.MutexState(id)
		inv.Mutexes = append(inv.Mutexes, MutexEntry{ID: id, Holder: holder, Recurse: recurse})
	}
	dir.Put("inventory.img", inv.Marshal())

	mm := &MMImage{Brk: p.Brk}
	for _, v := range p.SortedVMAs() {
		mm.VMAs = append(mm.VMAs, VMAEntry{Start: v.Start, End: v.End, Kind: uint8(v.Kind), Prot: v.Prot, TID: v.TID})
	}
	dir.Put("mm.img", mm.Marshal())

	dir.Put("files.img", (&FilesImage{ExePath: p.ExePath}).Marshal())

	ps := NewPageSet()
	execPages := execContextPages(p)
	popPages := p.AS.PopulatedPages()
	// Shard the populated-page walk over contiguous index ranges. Each
	// shard classifies and copies its pages into a private slice — the
	// address space is stopped and only read (FindVMA/PageData), so
	// shards share it freely — then the slices merge in shard order.
	// The coalescer in StoreWith sorts addresses, so the encoded images
	// are byte-identical for every worker count.
	chunks := parallel.Chunks(len(popPages), parallel.Normalize(opts.Workers))
	shards := make([][]shardPage, len(chunks))
	pool := parallel.New(opts.Workers)
	if err := pool.ForEach(len(chunks), func(ci int) error {
		shardStart := time.Now()
		c := chunks[ci]
		out := make([]shardPage, 0, c.Hi-c.Lo)
		for _, idx := range popPages[c.Lo:c.Hi] {
			addr := idx * mem.PageSize
			vma, ok := p.AS.FindVMA(addr)
			if !ok {
				continue
			}
			switch {
			case vma.Kind == mem.VMAText:
				// CRIU only dumps the execution-context code page(s); the rest
				// reload from the executable on page faults.
				if !execPages[addr] {
					continue
				}
			case opts.Lazy && vma.Kind != mem.VMAStack && vma.Kind != mem.VMATLS && addr != isa.DataBase:
				// Post-copy keeps data/heap contents behind, except the first
				// data page: it holds the DAPPER flag, which the restored
				// process must read (cleared) without a network fault.
				out = append(out, shardPage{addr: addr, cls: shardLazy})
				continue
			}
			if opts.Parent != nil && inParent[addr] && !dirty[idx] {
				// Unchanged since the parent checkpoint: the chain holds it.
				out = append(out, shardPage{addr: addr, cls: shardParent})
				continue
			}
			data, _ := p.AS.PageData(idx)
			if allZero(data) {
				out = append(out, shardPage{addr: addr, cls: shardZero})
				continue
			}
			if opts.DeltaBase != nil && opts.Parent != nil && inParent[addr] {
				// Dirty page with known parent content: ship the XOR.
				if basePg, ok := deltaBaseContent(opts.DeltaBase, addr); ok {
					xor := XorPages(data, basePg)
					if allZero(xor) {
						// Soft-dirty false positive: content is unchanged,
						// so the chain still holds it — no bytes at all.
						out = append(out, shardPage{addr: addr, cls: shardParent})
						continue
					}
					out = append(out, shardPage{addr: addr, cls: shardDelta, data: xor})
					continue
				}
			}
			pg := make([]byte, mem.PageSize)
			copy(pg, data)
			out = append(out, shardPage{addr: addr, cls: shardData, data: pg})
		}
		shards[ci] = out
		opts.Obs.Histogram("dump.shard_ns").Observe(time.Since(shardStart))
		return nil
	}); err != nil {
		return nil, err
	}
	opts.Obs.Counter("dump.shards").Add(uint64(len(chunks)))
	for _, shard := range shards {
		for _, sp := range shard {
			switch sp.cls {
			case shardData:
				ps.Pages[sp.addr] = sp.data
			case shardLazy:
				ps.LazyPages[sp.addr] = true
			case shardParent:
				ps.ParentPages[sp.addr] = true
			case shardZero:
				ps.ZeroPages[sp.addr] = true
			case shardDelta:
				ps.Pages[sp.addr] = sp.data
				ps.DeltaPages[sp.addr] = true
			}
		}
	}
	stats := ps.StoreWith(dir, StoreOpts{Dedup: opts.Dedup})
	if opts.Dedup {
		opts.Obs.Counter("dedup.pages_elided").Add(stats.PagesElided)
		opts.Obs.Counter("dedup.bytes_saved").Add(stats.BytesSaved)
	}
	if opts.TrackMem {
		p.StartDirtyTracking()
	}
	// All obs calls are nil-safe: with no registry this block is four
	// no-op lookups on a cold path.
	opts.Obs.Counter("dump.count").Inc()
	opts.Obs.Counter("dump.pages_dumped").Add(uint64(len(ps.Pages)))
	opts.Obs.Counter("dump.pages_zero").Add(uint64(len(ps.ZeroPages)))
	opts.Obs.Counter("dump.pages_lazy").Add(uint64(len(ps.LazyPages)))
	opts.Obs.Counter("dump.pages_parent").Add(uint64(len(ps.ParentPages)))
	opts.Obs.Counter("dump.pages_delta").Add(uint64(len(ps.DeltaPages)))
	if opts.Registry != nil {
		m, _, err := opts.Registry.Push(dir, registry.PushOpts{
			Parent: opts.RegistryParent, Owner: opts.RegistryOwner,
		})
		if err != nil {
			return nil, fmt.Errorf("criu: registry push: %w", err)
		}
		if opts.ManifestOut != nil {
			*opts.ManifestOut = m.ID
		}
	}
	opts.Obs.Histogram("dump.wall_ns").Observe(time.Since(start))
	return dir, nil
}

// shardPage is one classified page produced by a dump shard, merged
// into the PageSet after the fan-out joins.
type shardPage struct {
	addr uint64
	cls  uint8
	data []byte // set only for shardData
}

// Shard page classes.
const (
	shardData = iota
	shardLazy
	shardParent
	shardZero
	shardDelta
)

// deltaBaseContent returns the base content to XOR a dirty page against,
// or ok=false when XOR gains nothing: a zero base page XORs to the page
// itself, an unresolved (delta/parent/lazy) base has no usable bytes.
func deltaBaseContent(base *PageSet, addr uint64) ([]byte, bool) {
	pg, ok := base.Pages[addr]
	if !ok || pg == nil || base.DeltaPages[addr] {
		return nil, false
	}
	return pg, true
}

// allZero reports whether a page's bytes are all zero (the zero pagemap
// flag: such pages restore demand-zero and need no bytes in pages.img).
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// execContextPages returns the page addresses holding each live thread's
// current instruction.
func execContextPages(p *kernel.Process) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, t := range p.Threads {
		if t.State == kernel.ThreadExited {
			continue
		}
		out[t.Regs.PC/mem.PageSize*mem.PageSize] = true
	}
	return out
}

// archOf is a small helper for tests.
func archOf(dir *ImageDir) (isa.Arch, error) {
	raw, ok := dir.Get("inventory.img")
	if !ok {
		return 0, fmt.Errorf("criu: missing inventory.img")
	}
	inv, err := UnmarshalInventory(raw)
	if err != nil {
		return 0, err
	}
	return inv.Arch, nil
}
