package criu

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection for the page-transport layer. These wrappers make the
// retry/reconnect logic deterministically testable: every random decision
// comes from one seeded source, so a given (seed, workload) pair injects
// the same fault pattern modulo goroutine interleaving.

// FaultSpec configures injected faults.
type FaultSpec struct {
	// Seed seeds the fault pattern.
	Seed int64
	// FailRate is the probability a FlakySource.FetchPage call fails with
	// an injected error (surfacing to TCP clients as an error frame).
	FailRate float64
	// DropRate is the probability a FlakyListener connection write is
	// truncated mid-frame and the connection torn down — the
	// "server died mid-page" failure.
	DropRate float64
	// Latency is added to an operation with probability LatencyRate —
	// the "slow server" failure that trips client fetch deadlines.
	Latency     time.Duration
	LatencyRate float64
}

type faultRoller struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newFaultRoller(seed int64) *faultRoller {
	return &faultRoller{rng: rand.New(rand.NewSource(seed))}
}

func (r *faultRoller) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64() < p
}

// FlakySource wraps a PageSource, injecting latency and failures per
// FaultSpec. It implements PageSource.
type FlakySource struct {
	src      PageSource
	spec     FaultSpec
	roll     *faultRoller
	failures atomic.Uint64
	delays   atomic.Uint64
}

// NewFlakySource wraps src.
func NewFlakySource(src PageSource, spec FaultSpec) *FlakySource {
	return &FlakySource{src: src, spec: spec, roll: newFaultRoller(spec.Seed)}
}

// FetchPage implements PageSource.
func (f *FlakySource) FetchPage(addr uint64) ([]byte, error) {
	if f.roll.roll(f.spec.LatencyRate) {
		f.delays.Add(1)
		time.Sleep(f.spec.Latency)
	}
	if f.roll.roll(f.spec.FailRate) {
		f.failures.Add(1)
		return nil, fmt.Errorf("faultinject: injected fetch failure for page 0x%x", addr)
	}
	return f.src.FetchPage(addr)
}

// Failures returns how many fetches were failed by injection.
func (f *FlakySource) Failures() uint64 { return f.failures.Load() }

// Delays returns how many fetches had latency injected.
func (f *FlakySource) Delays() uint64 { return f.delays.Load() }

// FlakyListener wraps a net.Listener so accepted connections inject write
// truncation/teardown and latency per FaultSpec — simulating a page server
// whose connections die mid-response.
type FlakyListener struct {
	net.Listener
	spec  FaultSpec
	roll  *faultRoller
	drops atomic.Uint64
}

// NewFlakyListener wraps ln.
func NewFlakyListener(ln net.Listener, spec FaultSpec) *FlakyListener {
	return &FlakyListener{Listener: ln, spec: spec, roll: newFaultRoller(spec.Seed)}
}

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &flakyConn{Conn: conn, l: l}, nil
}

// Drops returns how many connection-killing truncations were injected.
func (l *FlakyListener) Drops() uint64 { return l.drops.Load() }

type flakyConn struct {
	net.Conn
	l *FlakyListener
}

func (c *flakyConn) Write(b []byte) (int, error) {
	if c.l.roll.roll(c.l.spec.LatencyRate) {
		time.Sleep(c.l.spec.Latency)
	}
	if c.l.roll.roll(c.l.spec.DropRate) {
		c.l.drops.Add(1)
		n, _ := c.Conn.Write(b[:len(b)/2])
		// The injected Write error below is the fault being delivered; a
		// close failure on the deliberately-killed conn adds nothing.
		_ = c.Conn.Close()
		return n, fmt.Errorf("faultinject: injected connection drop")
	}
	return c.Conn.Write(b)
}
