// Package criu implements the checkpoint/restore substrate DAPPER builds
// on: dumping a stopped process into a directory of image files
// (core-<tid>, mm, pagemap, pages, files, inventory), restoring a process
// from images, a CRIT-style decoder to and from JSON, and the lazy-pages
// (post-copy) page server.
//
// The image formats themselves (typed views, wire codec, ImageDir,
// PageSet) live in internal/image; this file re-exports them under their
// historical criu names so existing callers — and the paper's CRIU
// vocabulary — keep working. New code that only reads or verifies images
// (e.g. internal/imgcheck) should import internal/image directly.
package criu

import (
	"github.com/dapper-sim/dapper/internal/image"
	"github.com/dapper-sim/dapper/internal/imgproto"
)

// Image types, re-exported from internal/image. Type aliases preserve
// identity: a criu.ImageDir IS an image.ImageDir, so values flow freely
// between the codec layer, the verifier, and the restore machinery.
type (
	// CoreImage is core-<tid>.img: one thread's architectural state.
	CoreImage = image.CoreImage
	// VMAEntry describes one mapped area in the mm image.
	VMAEntry = image.VMAEntry
	// MMImage is mm.img: the address-space description.
	MMImage = image.MMImage
	// PagemapEntry describes a run of pages (see image.PagemapEntry for
	// the lazy/in_parent/zero flag semantics).
	PagemapEntry = image.PagemapEntry
	// PagemapImage is pagemap.img: the index into pages.img.
	PagemapImage = image.PagemapImage
	// FilesImage is files.img: the open files (here, the executable).
	FilesImage = image.FilesImage
	// MutexEntry is a held mutex recorded in the inventory.
	MutexEntry = image.MutexEntry
	// InventoryImage is inventory.img: dump-wide facts.
	InventoryImage = image.InventoryImage
	// ImageDir is the checkpoint directory (held in memory, like the
	// paper's tmpfs checkpoint target).
	ImageDir = image.ImageDir
	// PageSet is an editable view of pagemap.img + pages.img.
	PageSet = image.PageSet
	// StoreOpts selects optional PageSet.Store encodings (page dedup).
	StoreOpts = image.StoreOpts
	// StoreStats reports what a dedup-aware store elided.
	StoreStats = image.StoreStats
)

// UnmarshalCore decodes a core image.
func UnmarshalCore(b []byte) (*CoreImage, error) { return image.UnmarshalCore(b) }

// UnmarshalMM decodes an mm image.
func UnmarshalMM(b []byte) (*MMImage, error) { return image.UnmarshalMM(b) }

// UnmarshalPagemap decodes a pagemap image.
func UnmarshalPagemap(b []byte) (*PagemapImage, error) { return image.UnmarshalPagemap(b) }

// UnmarshalFiles decodes a files image.
func UnmarshalFiles(b []byte) (*FilesImage, error) { return image.UnmarshalFiles(b) }

// UnmarshalInventory decodes an inventory image.
func UnmarshalInventory(b []byte) (*InventoryImage, error) { return image.UnmarshalInventory(b) }

// NewImageDir returns an empty directory.
func NewImageDir() *ImageDir { return image.NewImageDir() }

// UnmarshalImageDir parses a directory blob.
func UnmarshalImageDir(b []byte) (*ImageDir, error) { return image.UnmarshalImageDir(b) }

// FrameFile encodes one directory entry exactly as it appears inside
// ImageDir.Marshal; concatenating frames over sorted names reproduces
// Marshal byte for byte (the parallel transfer path's contract).
func FrameFile(name string, data []byte) []byte { return image.FrameFile(name, data) }

// NewPageSet returns an empty page set with all maps allocated.
func NewPageSet() *PageSet { return image.NewPageSet() }

// LoadPageSet parses the pagemap/pages pair from a directory.
func LoadPageSet(dir *ImageDir) (*PageSet, error) { return image.LoadPageSet(dir) }

// XorPages returns the byte-wise XOR of two pages (the delta encoding
// and its inverse are the same operation).
func XorPages(a, b []byte) []byte { return image.XorPages(a, b) }

// Codec selects the wire codec for batched transport frames; see
// imgproto.Codec and docs/transport.md. Re-exported so transport callers
// need not import the codec layer directly.
type Codec = imgproto.Codec

// Wire codecs, re-exported from imgproto.
const (
	// CodecRaw keeps the legacy unbatched framing (the zero value).
	CodecRaw = imgproto.CodecRaw
	// CodecNone batches frames without compression.
	CodecNone = imgproto.CodecNone
	// CodecFlate batches frames and DEFLATE-compresses each batch.
	CodecFlate = imgproto.CodecFlate
)
