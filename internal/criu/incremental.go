package criu

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/mem"
)

// Incremental checkpoint chains (pre-copy migration). Each dump taken with
// DumpOpts.Parent records unchanged pages as in_parent entries; the chain
// is resolved newest-wins into a single self-contained directory before
// restore, mirroring CRIU's parent-image directories.

// CoveredPages returns every page address the directory's pagemap
// mentions, regardless of entry kind. Because each dump in a chain emits
// an entry (data, zero, or in_parent) for every dumpable resident page,
// an address covered by the immediate parent is — by induction — always
// resolvable through the chain.
func CoveredPages(dir *ImageDir) (map[uint64]bool, error) {
	pmRaw, ok := dir.Get("pagemap.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing pagemap.img")
	}
	pm, err := UnmarshalPagemap(pmRaw)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]bool)
	for _, en := range pm.Entries {
		for i := uint32(0); i < en.NrPages; i++ {
			out[en.Vaddr+uint64(i)*mem.PageSize] = true
		}
	}
	return out, nil
}

// DumpedPages returns the number of pages whose bytes the directory
// actually carries (the data pages of pages.img) — the size of a
// pre-copy round's delta, which the convergence heuristics watch.
func DumpedPages(dir *ImageDir) int {
	raw, _ := dir.Get("pages.img")
	return len(raw) / mem.PageSize
}

// FlattenChain squashes an incremental checkpoint chain — ordered oldest
// (the full parent) to newest (the final delta) — into one self-contained
// directory. Non-page images come from the newest dump; each page address
// in the newest pagemap resolves newest-wins down the chain. The result
// restores exactly as a full dump taken at the newest checkpoint would.
func FlattenChain(chain []*ImageDir) (*ImageDir, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("criu: empty checkpoint chain")
	}
	sets := make([]*PageSet, len(chain))
	for i, dir := range chain {
		ps, err := LoadPageSet(dir)
		if err != nil {
			return nil, fmt.Errorf("criu: chain link %d: %w", i, err)
		}
		sets[i] = ps
	}
	newest := sets[len(sets)-1]
	out := NewPageSet()
	resolve := func(addr uint64) error {
		for i := len(sets) - 1; i >= 0; i-- {
			ps := sets[i]
			if pg, ok := ps.Pages[addr]; ok && pg != nil {
				out.Pages[addr] = pg
				return nil
			}
			switch {
			case ps.ZeroPages[addr]:
				out.ZeroPages[addr] = true
				return nil
			case ps.LazyPages[addr]:
				out.LazyPages[addr] = true
				return nil
			case ps.ParentPages[addr]:
				continue // defer to the next-older link
			}
			break
		}
		return fmt.Errorf("criu: page 0x%x marked in_parent but absent from the chain", addr)
	}
	for addr := range newest.Pages {
		out.Pages[addr] = newest.Pages[addr]
	}
	for addr := range newest.ZeroPages {
		out.ZeroPages[addr] = true
	}
	for addr := range newest.LazyPages {
		out.LazyPages[addr] = true
	}
	for addr := range newest.ParentPages {
		if err := resolve(addr); err != nil {
			return nil, err
		}
	}

	flat := NewImageDir()
	last := chain[len(chain)-1]
	for _, name := range last.Names() {
		if name == "pagemap.img" || name == "pages.img" {
			continue
		}
		raw, _ := last.Get(name)
		flat.Put(name, raw)
	}
	out.Store(flat)
	return flat, nil
}
