package criu

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/mem"
)

// Incremental checkpoint chains (pre-copy migration). Each dump taken with
// DumpOpts.Parent records unchanged pages as in_parent entries; the chain
// is resolved newest-wins into a single self-contained directory before
// restore, mirroring CRIU's parent-image directories. Dumps taken with
// DumpOpts.DeltaBase additionally ship re-dirtied pages as XOR deltas
// against the chain's resolved content, which FlattenChain undoes.

// CoveredPages returns every page address the directory's pagemap
// mentions, regardless of entry kind. Because each dump in a chain emits
// an entry (data, zero, or in_parent) for every dumpable resident page,
// an address covered by the immediate parent is — by induction — always
// resolvable through the chain.
func CoveredPages(dir *ImageDir) (map[uint64]bool, error) {
	pmRaw, ok := dir.Get("pagemap.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing pagemap.img")
	}
	pm, err := UnmarshalPagemap(pmRaw)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]bool)
	for _, en := range pm.Entries {
		for i := uint32(0); i < en.NrPages; i++ {
			out[en.Vaddr+uint64(i)*mem.PageSize] = true
		}
	}
	return out, nil
}

// DumpedPages returns the number of pages whose bytes the directory
// actually carries (the data and delta pages of pages.img) — the size of
// a pre-copy round's delta, which the convergence heuristics watch.
func DumpedPages(dir *ImageDir) int {
	raw, _ := dir.Get("pages.img")
	return len(raw) / mem.PageSize
}

// Resolved page kinds returned by the chain resolver.
const (
	chainData = iota
	chainZero
	chainLazy
)

// errChainAbsent reports an address that fell off the bottom of the
// chain without resolving; callers wrap it with the flag that asked.
var errChainAbsent = fmt.Errorf("criu: page absent from the chain")

// resolveChain returns the content of addr as of chain link i: data
// bytes (XOR deltas applied recursively), a zero page, or a lazy marker.
func resolveChain(sets []*PageSet, addr uint64, i int) (kind int, pg []byte, err error) {
	for j := i; j >= 0; j-- {
		ps := sets[j]
		if b, ok := ps.Pages[addr]; ok && b != nil {
			if !ps.DeltaPages[addr] {
				return chainData, b, nil
			}
			k, basePg, err := resolveChain(sets, addr, j-1)
			if err != nil {
				return 0, nil, err
			}
			switch k {
			case chainData:
				return chainData, XorPages(b, basePg), nil
			case chainZero:
				// XOR against zeros is the delta itself.
				return chainData, XorPages(b, nil), nil
			default:
				return 0, nil, fmt.Errorf("criu: delta page 0x%x in chain link %d resolves to a lazy page", addr, j)
			}
		}
		switch {
		case ps.ZeroPages[addr]:
			return chainZero, nil, nil
		case ps.LazyPages[addr]:
			return chainLazy, nil, nil
		case ps.ParentPages[addr]:
			continue // defer to the next-older link
		}
		break
	}
	return 0, nil, errChainAbsent
}

// FlattenChain squashes an incremental checkpoint chain — ordered oldest
// (the full parent) to newest (the final delta) — into one self-contained
// directory. Non-page images come from the newest dump; each page address
// in the newest pagemap resolves newest-wins down the chain, applying
// XOR deltas against the older content they were encoded from. The
// result restores exactly as a full dump taken at the newest checkpoint
// would.
func FlattenChain(chain []*ImageDir) (*ImageDir, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("criu: empty checkpoint chain")
	}
	sets := make([]*PageSet, len(chain))
	for i, dir := range chain {
		ps, err := LoadPageSet(dir)
		if err != nil {
			return nil, fmt.Errorf("criu: chain link %d: %w", i, err)
		}
		sets[i] = ps
	}
	newest := sets[len(sets)-1]
	out := NewPageSet()
	install := func(addr uint64, kind int, pg []byte) {
		switch kind {
		case chainData:
			out.Pages[addr] = pg
		case chainZero:
			out.ZeroPages[addr] = true
		case chainLazy:
			out.LazyPages[addr] = true
		}
	}
	for addr, pg := range newest.Pages {
		if !newest.DeltaPages[addr] {
			out.Pages[addr] = pg
			continue
		}
		kind, resolved, err := resolveChain(sets, addr, len(sets)-1)
		if err != nil {
			if err == errChainAbsent {
				err = fmt.Errorf("criu: page 0x%x marked delta but its base is absent from the chain", addr)
			}
			return nil, err
		}
		install(addr, kind, resolved)
	}
	for addr := range newest.ZeroPages {
		out.ZeroPages[addr] = true
	}
	for addr := range newest.LazyPages {
		out.LazyPages[addr] = true
	}
	for addr := range newest.ParentPages {
		kind, resolved, err := resolveChain(sets, addr, len(sets)-1)
		if err != nil {
			if err == errChainAbsent {
				err = fmt.Errorf("criu: page 0x%x marked in_parent but absent from the chain", addr)
			}
			return nil, err
		}
		install(addr, kind, resolved)
	}

	flat := NewImageDir()
	last := chain[len(chain)-1]
	for _, name := range last.Names() {
		if name == "pagemap.img" || name == "pages.img" {
			continue
		}
		raw, _ := last.Get(name)
		flat.Put(name, raw)
	}
	out.Store(flat)
	return flat, nil
}

// AdvanceBase folds one just-taken incremental dump into the chain's
// resolved page content, returning the base for the NEXT round's
// DumpOpts.DeltaBase. Pass base=nil with the chain's first (full) dump;
// thereafter pass the previous return value and the newest dump. The
// returned set holds plain content only (no delta, parent, or lazy
// entries) — exactly what the delta encoder XORs against — and may share
// storage with base.
func AdvanceBase(base *PageSet, dir *ImageDir) (*PageSet, error) {
	ps, err := LoadPageSet(dir)
	if err != nil {
		return nil, fmt.Errorf("criu: delta base: %w", err)
	}
	if len(ps.LazyPages) > 0 {
		return nil, fmt.Errorf("criu: delta base: %d lazy pages in an incremental dump", len(ps.LazyPages))
	}
	if base == nil {
		if len(ps.ParentPages) > 0 || len(ps.DeltaPages) > 0 {
			return nil, fmt.Errorf("criu: delta base: the chain's first dump has %d parent and %d delta pages",
				len(ps.ParentPages), len(ps.DeltaPages))
		}
		return ps, nil
	}
	for addr, pg := range ps.Pages {
		if ps.DeltaPages[addr] {
			old, ok := deltaBaseContent(base, addr)
			if !ok {
				if !base.ZeroPages[addr] {
					return nil, fmt.Errorf("criu: delta base: page 0x%x has no content to apply its delta to", addr)
				}
				old = nil
			}
			base.Pages[addr] = XorPages(pg, old)
		} else {
			base.Pages[addr] = pg
		}
		delete(base.ZeroPages, addr)
	}
	for addr := range ps.ZeroPages {
		delete(base.Pages, addr)
		delete(base.DeltaPages, addr)
		base.ZeroPages[addr] = true
	}
	// in_parent entries: the base already holds the chain's content.
	return base, nil
}
