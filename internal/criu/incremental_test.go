package criu_test

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/monitor"
)

// denseWriter keeps rewriting a sliding window of a big array; sparseWriter
// strides across it so most rounds dirty disjoint pages.
// Equivalence points live at function entry, so the per-round work sits in
// a callee — that is what lets the monitor pause between rounds.
const denseWriter = `
var data[8192] int;
var sink int;
func fill(round int) {
	var i int;
	for i = 0; i < 512; i = i + 1 {
		data[(round * 67 + i) % 8192] = round * 10000 + i;
	}
}
func main() {
	var round int;
	for round = 0; round < 64; round = round + 1 {
		fill(round);
		sink = sink + 1;
	}
	printi(sink);
}`

// sparseWriter advances a small (~2-page) window per outer round, so later
// deltas are much smaller than the accumulated resident set.
const sparseWriter = `
var data[16384] int;
var sum int;
func touch(round int) {
	var i int;
	for i = 0; i < 96; i = i + 1 {
		data[(round * 331 + i) % 16384] = round + i;
		sum = sum + data[(round * 131) % 16384];
	}
}
func main() {
	var round int;
	for round = 0; round < 48; round = round + 1 {
		touch(round);
	}
	printi(sum);
}`

// buildChain runs the program in budget slices, taking a TrackMem full dump
// first and an incremental dump (Parent = previous) after each slice. It
// returns the chain plus the still-paused process and its monitor.
func buildChain(t *testing.T, src string, arch isa.Arch, rounds int, budget uint64) ([]*criu.ImageDir, *kernel.Process) {
	t.Helper()
	pair, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Cores: 2, Quantum: 97})
	p, err := k.StartProcess(pair.ByArch(arch).LoadSpec("/bin/inc." + arch.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunBudget(p, budget); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatalf("pause 0: %v", err)
	}
	base, err := criu.Dump(p, criu.DumpOpts{TrackMem: true})
	if err != nil {
		t.Fatalf("base dump: %v", err)
	}
	chain := []*criu.ImageDir{base}
	for r := 1; r <= rounds; r++ {
		if err := mon.ResumeLocal(); err != nil {
			t.Fatalf("resume %d: %v", r, err)
		}
		alive, err := k.RunBudget(p, budget)
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
		if !alive {
			t.Fatalf("program finished before round %d; shrink the budget", r)
		}
		if err := mon.Pause(1 << 20); err != nil {
			t.Fatalf("pause %d: %v", r, err)
		}
		delta, err := criu.Dump(p, criu.DumpOpts{Parent: chain[len(chain)-1], TrackMem: true})
		if err != nil {
			t.Fatalf("delta dump %d: %v", r, err)
		}
		chain = append(chain, delta)
	}
	return chain, p
}

// resolvedPages flattens a self-contained directory's page view: data pages
// by content, zero pages as zero content.
func resolvedPages(t *testing.T, dir *criu.ImageDir) map[uint64][]byte {
	t.Helper()
	ps, err := criu.LoadPageSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.ParentPages) > 0 {
		t.Fatalf("directory still has %d in_parent pages", len(ps.ParentPages))
	}
	if len(ps.LazyPages) > 0 {
		t.Fatalf("unexpected lazy pages: %d", len(ps.LazyPages))
	}
	zero := make([]byte, mem.PageSize)
	out := make(map[uint64][]byte, len(ps.Pages)+len(ps.ZeroPages))
	for a, pg := range ps.Pages {
		out[a] = pg
	}
	for a := range ps.ZeroPages {
		out[a] = zero
	}
	return out
}

// TestIncrementalChainMatchesFullDump is the headline property test: across
// workloads, architectures, chain lengths, and checkpoint spacings, the
// flattened incremental chain must be page-for-page identical to a single
// full dump taken at the final pause.
func TestIncrementalChainMatchesFullDump(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		arch   isa.Arch
		rounds int
		budget uint64
	}{
		{"dense-x86-2x9k", denseWriter, isa.SX86, 2, 9_000},
		{"dense-x86-4x23k", denseWriter, isa.SX86, 4, 23_000},
		{"dense-arm-3x14k", denseWriter, isa.SARM, 3, 14_000},
		{"sparse-x86-3x7k", sparseWriter, isa.SX86, 3, 7_000},
		{"sparse-arm-2x31k", sparseWriter, isa.SARM, 2, 31_000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			chain, p := buildChain(t, tc.src, tc.arch, tc.rounds, tc.budget)
			full, err := criu.Dump(p, criu.DumpOpts{})
			if err != nil {
				t.Fatalf("reference full dump: %v", err)
			}
			flat, err := criu.FlattenChain(chain)
			if err != nil {
				t.Fatalf("flatten: %v", err)
			}
			want := resolvedPages(t, full)
			got := resolvedPages(t, flat)
			if len(got) != len(want) {
				t.Errorf("flattened chain resolves %d pages, full dump has %d", len(got), len(want))
			}
			for a, w := range want {
				g, ok := got[a]
				if !ok {
					t.Errorf("page 0x%x missing from flattened chain", a)
					continue
				}
				if !bytes.Equal(g, w) {
					t.Errorf("page 0x%x differs between chain and full dump", a)
				}
			}
			// Non-page images must come from the final pause verbatim.
			for _, name := range full.Names() {
				if name == "pagemap.img" || name == "pages.img" {
					continue
				}
				w, _ := full.Get(name)
				g, ok := flat.Get(name)
				if !ok || !bytes.Equal(g, w) {
					t.Errorf("image %s differs between chain head and full dump", name)
				}
			}
			// The deltas must actually be incremental: each one carries
			// fewer data pages than the full dump of the final state, and
			// defers at least some pages to its parent.
			fullPages := criu.DumpedPages(full)
			for i, d := range chain[1:] {
				if n := criu.DumpedPages(d); n >= fullPages {
					t.Errorf("delta %d dumped %d pages, full dump only %d", i+1, n, fullPages)
				}
				cov, err := criu.CoveredPages(d)
				if err != nil {
					t.Fatal(err)
				}
				if n := criu.DumpedPages(d); len(cov) == n {
					t.Errorf("delta %d has no in_parent/zero entries", i+1)
				}
			}
		})
	}
}

// TestIncrementalChainFlakyFinalDelta re-fetches the final delta's data
// pages through the fault-injected TCP page transport — the "final delta
// transfer over a bad link" scenario — and requires the flattened result to
// stay byte-identical.
func TestIncrementalChainFlakyFinalDelta(t *testing.T) {
	chain, _ := buildChain(t, denseWriter, isa.SX86, 3, 11_000)
	final := chain[len(chain)-1]
	ps, err := criu.LoadPageSet(final)
	if err != nil {
		t.Fatal(err)
	}
	// Serve the final delta's data pages behind injected faults.
	src := pageFunc(func(addr uint64) ([]byte, error) {
		pg, ok := ps.Pages[addr]
		if !ok {
			return nil, fmt.Errorf("page 0x%x not in final delta", addr)
		}
		return pg, nil
	})
	flaky := criu.NewFlakySource(src, criu.FaultSpec{Seed: 41, FailRate: 0.4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := criu.ServePagesOn(ln, flaky)
	defer srv.Close()
	client, err := criu.DialPageServerOpts(srv.Addr(), criu.PageClientOpts{MaxRetries: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Rebuild the delta from fetched pages, keeping the flag-only entries.
	rebuilt := criu.NewPageSet()
	for a := range ps.ParentPages {
		rebuilt.ParentPages[a] = true
	}
	for a := range ps.ZeroPages {
		rebuilt.ZeroPages[a] = true
	}
	for a := range ps.Pages {
		pg, err := client.FetchPage(a)
		if err != nil {
			t.Fatalf("fetch 0x%x through flaky transport: %v", a, err)
		}
		rebuilt.Pages[a] = pg
	}
	fetched := criu.NewImageDir()
	for _, name := range final.Names() {
		if name == "pagemap.img" || name == "pages.img" {
			continue
		}
		raw, _ := final.Get(name)
		fetched.Put(name, raw)
	}
	rebuilt.Store(fetched)

	wantFlat, err := criu.FlattenChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	gotFlat, err := criu.FlattenChain(append(append([]*criu.ImageDir{}, chain[:len(chain)-1]...), fetched))
	if err != nil {
		t.Fatalf("flatten with fetched delta: %v", err)
	}
	want := resolvedPages(t, wantFlat)
	got := resolvedPages(t, gotFlat)
	if len(got) != len(want) {
		t.Fatalf("fetched-delta chain resolves %d pages, want %d", len(got), len(want))
	}
	for a, w := range want {
		if !bytes.Equal(got[a], w) {
			t.Errorf("page 0x%x corrupted by flaky transfer", a)
		}
	}
	if flaky.Failures() == 0 {
		t.Error("fault injector never fired; the test exercised nothing")
	}
}

// TestIncrementalDumpGuards covers the misuse errors.
func TestIncrementalDumpGuards(t *testing.T) {
	chain, p := buildChain(t, denseWriter, isa.SX86, 1, 9_000)
	if _, err := criu.Dump(p, criu.DumpOpts{Parent: chain[0], Lazy: true}); err == nil {
		t.Error("incremental+lazy dump succeeded")
	}
	p.StopDirtyTracking()
	if _, err := criu.Dump(p, criu.DumpOpts{Parent: chain[0]}); err == nil {
		t.Error("incremental dump without tracking succeeded")
	}
	// An unflattened delta must not restore, even with the binary at hand.
	pair, err := compiler.Compile(denseWriter)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{})
	prov := criu.MapProvider{"/bin/inc.sx86": pair.X86}
	if _, err := criu.Restore(k, chain[1], prov); err == nil || !strings.Contains(err.Error(), "in_parent") {
		t.Errorf("restore of raw delta: %v", err)
	}
	if _, err := criu.FlattenChain(nil); err == nil {
		t.Error("flatten of empty chain succeeded")
	}
	// A chain missing its base cannot resolve.
	if _, err := criu.FlattenChain(chain[1:]); err == nil {
		t.Error("flatten of truncated chain succeeded")
	}
}

// TestZeroPagesElided: an all-zero resident page travels as a pagemap-only
// zero entry (visible in CRIT), carries no bytes, and restores correctly.
func TestZeroPagesElided(t *testing.T) {
	src := `
var data[4096] int;
var i int;
func keep() {
	data[5] = 9;
}
func main() {
	data[2000] = 7;
	data[2000] = 0;
	data[5] = 9;
	for i = 0; i < 2000; i = i + 1 { keep(); }
	printi(data[5]);
}`
	pair, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Native reference.
	kn := kernel.New(kernel.Config{})
	pn, err := kn.StartProcess(pair.X86.LoadSpec("/bin/z.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	if err := kn.Run(pn); err != nil {
		t.Fatal(err)
	}
	want := pn.ConsoleString()

	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/z.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunBudget(p, 30_000); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := criu.LoadPageSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.ZeroPages) == 0 {
		t.Fatal("no zero entries in the pagemap; data[2000]'s page was expected to be elided")
	}
	for a := range ps.ZeroPages {
		if _, dup := ps.Pages[a]; dup {
			t.Errorf("page 0x%x is both zero and data", a)
		}
	}
	// CRIT shows the flag.
	js, err := criu.DecodeJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"zero": true`) {
		t.Error("CRIT JSON does not surface the zero flag")
	}
	// And the image still restores to the identical run.
	k2 := kernel.New(kernel.Config{})
	prov := criu.MapProvider{"/bin/z.sx86": pair.X86}
	p2, err := criu.Restore(k2, dir, prov)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(p2); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsoleString() + p2.ConsoleString(); got != want {
		t.Errorf("zero-elided restore output %q, want %q", got, want)
	}
}
