package criu

import (
	"sync"
	"time"

	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
)

// PageSource serves page contents for post-copy restoration. The
// destination's fault handler calls FetchPage for every missing page.
//
// Implementations: ProcessPageSource (in-process, same-host),
// RemotePageSource (TCP client, see pageclient.go), FlakySource
// (fault-injection wrapper, see faultinject.go).
type PageSource interface {
	FetchPage(addr uint64) ([]byte, error)
}

// ProcessPageSource serves pages directly from a (stopped) source
// process's address space — the in-process page server used by same-host
// tests and by the cluster's in-memory transport. Pages that were never
// populated on the source are returned zeroed (demand-zero semantics).
type ProcessPageSource struct {
	mu    sync.Mutex
	p     *kernel.Process
	reqs  *obs.Counter
	bytes *obs.Counter
}

// PageServerStats counts page-server activity (drives the Fig. 7 model).
// It is a snapshot of obs counters (see Stats).
type PageServerStats struct {
	// Requests counts FetchPage calls, including ones that failed.
	Requests uint64
	// BytesSent counts payload bytes of successful fetches.
	BytesSent uint64
	// Errors counts fetches that failed (reported to clients as error
	// frames by the TCP server rather than dropped connections).
	Errors uint64
}

// NewProcessPageSource wraps a stopped source process with a private
// telemetry registry.
func NewProcessPageSource(p *kernel.Process) *ProcessPageSource {
	return NewProcessPageSourceObs(p, nil)
}

// NewProcessPageSourceObs wraps a stopped source process, recording serving
// counters into reg ("pagesource.*"). A nil reg gives the source a private
// registry so Stats keeps working.
func NewProcessPageSourceObs(p *kernel.Process, reg *obs.Registry) *ProcessPageSource {
	if reg == nil {
		reg = obs.New()
	}
	return &ProcessPageSource{
		p:     p,
		reqs:  reg.Counter("pagesource.requests"),
		bytes: reg.Counter("pagesource.bytes_sent"),
	}
}

// FetchPage implements PageSource.
func (s *ProcessPageSource) FetchPage(addr uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqs.Inc()
	s.bytes.Add(mem.PageSize)
	if data, ok := s.p.AS.PageData(addr / mem.PageSize); ok {
		out := make([]byte, mem.PageSize)
		copy(out, data)
		return out, nil
	}
	return make([]byte, mem.PageSize), nil
}

// Stats returns a snapshot of the counters.
func (s *ProcessPageSource) Stats() PageServerStats {
	return PageServerStats{Requests: s.reqs.Value(), BytesSent: s.bytes.Value()}
}

// ObsSource wraps a PageSource so every fetch the destination's fault
// handler makes — in-process or remote, successful or failed — is timed
// into reg's "fault.service_ns" histogram and counted. This is the
// migration-level view of the post-copy tail; transport-level detail
// lives in the pageclient/pageserver counters. A nil reg returns src
// unchanged (zero overhead when telemetry is off).
func ObsSource(src PageSource, reg *obs.Registry) PageSource {
	if reg == nil {
		return src
	}
	return &obsSource{
		src:     src,
		fetches: reg.Counter("fault.fetches"),
		errs:    reg.Counter("fault.errors"),
		bytes:   reg.Counter("fault.bytes"),
		lat:     reg.Histogram("fault.service_ns"),
	}
}

type obsSource struct {
	src     PageSource
	fetches *obs.Counter
	errs    *obs.Counter
	bytes   *obs.Counter
	lat     *obs.Histogram
}

func (o *obsSource) FetchPage(addr uint64) ([]byte, error) {
	start := time.Now()
	page, err := o.src.FetchPage(addr)
	o.lat.Observe(time.Since(start))
	o.fetches.Inc()
	if err != nil {
		o.errs.Inc()
		return nil, err
	}
	o.bytes.Add(uint64(len(page)))
	return page, nil
}

// InstallLazyHandler wires a restored process's page faults to a source.
// A FetchPage error propagates out of the faulting memory access as a
// *mem.FaultError whose Cause is the transport error (see
// kernel.IsLazyFaultError), failing the process rather than silently
// zero-filling the page.
func InstallLazyHandler(p *kernel.Process, src PageSource) {
	p.AS.SetFaultHandler(func(pageAddr uint64) ([]byte, error) {
		return src.FetchPage(pageAddr)
	})
}
