package criu

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
)

// PageSource serves page contents for post-copy restoration. The
// destination's fault handler calls FetchPage for every missing page.
type PageSource interface {
	FetchPage(addr uint64) ([]byte, error)
}

// ProcessPageSource serves pages directly from a (stopped) source
// process's address space — the in-process page server used by same-host
// tests and by the cluster's in-memory transport. Pages that were never
// populated on the source are returned zeroed (demand-zero semantics).
type ProcessPageSource struct {
	mu    sync.Mutex
	p     *kernel.Process
	stats PageServerStats
}

// PageServerStats counts page-server activity (drives the Fig. 7 model).
type PageServerStats struct {
	Requests  uint64
	BytesSent uint64
}

// NewProcessPageSource wraps a stopped source process.
func NewProcessPageSource(p *kernel.Process) *ProcessPageSource {
	return &ProcessPageSource{p: p}
}

// FetchPage implements PageSource.
func (s *ProcessPageSource) FetchPage(addr uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requests++
	s.stats.BytesSent += mem.PageSize
	if data, ok := s.p.AS.PageData(addr / mem.PageSize); ok {
		out := make([]byte, mem.PageSize)
		copy(out, data)
		return out, nil
	}
	return make([]byte, mem.PageSize), nil
}

// Stats returns a copy of the counters.
func (s *ProcessPageSource) Stats() PageServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// InstallLazyHandler wires a restored process's page faults to a source.
func InstallLazyHandler(p *kernel.Process, src PageSource) {
	p.AS.SetFaultHandler(func(pageAddr uint64) ([]byte, error) {
		return src.FetchPage(pageAddr)
	})
}

// --- TCP page server (the cross-node form) ---

// PageServer serves FetchPage requests over a listener using a tiny
// length-free fixed protocol: 8-byte big-endian page address in, PageSize
// bytes out.
type PageServer struct {
	src PageSource
	ln  net.Listener

	wg   sync.WaitGroup
	stop chan struct{}
}

// ServePages starts a TCP page server on addr ("127.0.0.1:0" for tests).
func ServePages(addr string, src PageSource) (*PageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("criu: page server: %w", err)
	}
	s := &PageServer{src: src, ln: ln, stop: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *PageServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for its goroutines.
func (s *PageServer) Close() error {
	close(s.stop)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *PageServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *PageServer) serveConn(conn net.Conn) {
	var req [8]byte
	for {
		if _, err := io.ReadFull(conn, req[:]); err != nil {
			return
		}
		addr := binary.BigEndian.Uint64(req[:])
		page, err := s.src.FetchPage(addr)
		if err != nil {
			return
		}
		if _, err := conn.Write(page); err != nil {
			return
		}
	}
}

// RemotePageSource is the client side of the TCP page server.
type RemotePageSource struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialPageServer connects to a page server.
func DialPageServer(addr string) (*RemotePageSource, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("criu: page client: %w", err)
	}
	return &RemotePageSource{conn: conn}, nil
}

// FetchPage implements PageSource over the wire.
func (c *RemotePageSource) FetchPage(addr uint64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var req [8]byte
	binary.BigEndian.PutUint64(req[:], addr)
	if _, err := c.conn.Write(req[:]); err != nil {
		return nil, err
	}
	page := make([]byte, mem.PageSize)
	if _, err := io.ReadFull(c.conn, page); err != nil {
		return nil, err
	}
	return page, nil
}

// Close closes the client connection.
func (c *RemotePageSource) Close() error { return c.conn.Close() }
