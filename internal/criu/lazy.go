package criu

import (
	"sync"

	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
)

// PageSource serves page contents for post-copy restoration. The
// destination's fault handler calls FetchPage for every missing page.
//
// Implementations: ProcessPageSource (in-process, same-host),
// RemotePageSource (TCP client, see pageclient.go), FlakySource
// (fault-injection wrapper, see faultinject.go).
type PageSource interface {
	FetchPage(addr uint64) ([]byte, error)
}

// ProcessPageSource serves pages directly from a (stopped) source
// process's address space — the in-process page server used by same-host
// tests and by the cluster's in-memory transport. Pages that were never
// populated on the source are returned zeroed (demand-zero semantics).
type ProcessPageSource struct {
	mu    sync.Mutex
	p     *kernel.Process
	stats PageServerStats
}

// PageServerStats counts page-server activity (drives the Fig. 7 model).
type PageServerStats struct {
	// Requests counts FetchPage calls, including ones that failed.
	Requests uint64
	// BytesSent counts payload bytes of successful fetches.
	BytesSent uint64
	// Errors counts fetches that failed (reported to clients as error
	// frames by the TCP server rather than dropped connections).
	Errors uint64
}

// NewProcessPageSource wraps a stopped source process.
func NewProcessPageSource(p *kernel.Process) *ProcessPageSource {
	return &ProcessPageSource{p: p}
}

// FetchPage implements PageSource.
func (s *ProcessPageSource) FetchPage(addr uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requests++
	s.stats.BytesSent += mem.PageSize
	if data, ok := s.p.AS.PageData(addr / mem.PageSize); ok {
		out := make([]byte, mem.PageSize)
		copy(out, data)
		return out, nil
	}
	return make([]byte, mem.PageSize), nil
}

// Stats returns a copy of the counters.
func (s *ProcessPageSource) Stats() PageServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// InstallLazyHandler wires a restored process's page faults to a source.
// A FetchPage error propagates out of the faulting memory access as a
// *mem.FaultError whose Cause is the transport error (see
// kernel.IsLazyFaultError), failing the process rather than silently
// zero-filling the page.
func InstallLazyHandler(p *kernel.Process, src PageSource) {
	p.AS.SetFaultHandler(func(pageAddr uint64) ([]byte, error) {
		return src.FetchPage(pageAddr)
	})
}
