package criu

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/mem"
)

// Page-server wire protocol v3: batched, optionally compressed response
// frames, negotiated per connection so v2 peers keep working. See
// docs/transport.md for the full specification.
//
// Negotiation rides inside the v2 framing: the client's first frame is a
// normal 12-byte request whose reqID and address carry magic values plus
// the requested codec. A v3 server answers with a HELLO frame (status
// 0x02) and both sides switch to batch mode; a v2 server serves the
// magic address like any other page — an OK or ERR frame — and the
// client silently falls back to v2.
//
//	hello     := reqID = 0xD4B3FACE, addr = 0xD4B3C0DE00000000 | codec
//	hello-ack := reqID(u32 BE) 0x02 version(u8) codec(u8)
//	batch     := 0xB3(u8) codec(u8) count(u16 BE) rawLen(u32 BE) wireLen(u32 BE) payload[wireLen]
//
// A batch payload decodes (per its codec byte) to exactly count
// concatenated v2 response frames. Any header violation — bad magic, a
// non-batch codec byte, zero count, wireLen > rawLen, bounds exceeded,
// or a payload that does not parse to exactly count frames —
// desynchronizes the stream and the reader must drop the connection.
const (
	pageHelloID        = 0xD4B3FACE
	pageHelloAddrMagic = 0xD4B3C0DE00000000
	pageHelloAddrMask  = 0xFFFFFFFFFFFFFF00
	pageStatusHello    = 0x02
	pageProtoVersion   = 3

	pageBatchMagic  = 0xB3
	pageBatchHdrLen = 12
	// Server-side batching defaults (PageServerOpts) and the hard frame
	// count ceiling imposed by the header's u16 count field.
	defaultBatchPages = 32
	defaultBatchBytes = 256 << 10
	maxBatchFrames    = 1<<16 - 1
	// maxBatchRaw bounds a batch's decoded payload so a corrupt header
	// cannot trigger a huge allocation; generous next to any sane
	// BatchPages * (5 + PageSize) product.
	maxBatchRaw = 1 << 24
)

// errBatchDesync marks framing violations in batch mode (as opposed to
// clean connection teardown); the client counts these separately.
var errBatchDesync = errors.New("criu: page batch stream desynchronized")

// helloRequest builds the client's negotiation frame for the requested
// codec.
func helloRequest(codec imgproto.Codec) pageRequest {
	return pageRequest{ID: pageHelloID, Addr: pageHelloAddrMagic | uint64(codec)}
}

// isHelloRequest detects the negotiation frame on the server side. Real
// request IDs count up from zero and real addresses are page-aligned, so
// the magic pair cannot occur in normal traffic.
func isHelloRequest(req pageRequest) bool {
	return req.ID == pageHelloID && req.Addr&pageHelloAddrMask == pageHelloAddrMagic
}

// writeHelloAck sends the server's v3 acknowledgment carrying the codec
// the server will actually use.
func writeHelloAck(w io.Writer, codec imgproto.Codec) error {
	var buf [7]byte
	binary.BigEndian.PutUint32(buf[0:4], pageHelloID)
	buf[4] = pageStatusHello
	buf[5] = pageProtoVersion
	buf[6] = byte(codec)
	_, err := w.Write(buf[:])
	return err
}

// negotiatePageBatch performs the synchronous hello exchange on a fresh
// connection, before any pipelined traffic. It returns the codec the
// connection will speak: the server's choice for a v3 peer, CodecRaw
// (legacy v2 framing) when the peer answered the magic address like a
// normal request. The deadline covers the whole exchange and is cleared
// before returning.
func negotiatePageBatch(conn net.Conn, want imgproto.Codec, timeout time.Duration) (imgproto.Codec, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, fmt.Errorf("criu: page hello: %w", err)
	}
	codec, err := negotiateLocked(conn, want)
	if cerr := conn.SetDeadline(time.Time{}); err == nil && cerr != nil {
		err = fmt.Errorf("criu: page hello: clear deadline: %w", cerr)
	}
	return codec, err
}

func negotiateLocked(conn net.Conn, want imgproto.Codec) (imgproto.Codec, error) {
	if err := writePageRequest(conn, helloRequest(want)); err != nil {
		return 0, fmt.Errorf("criu: page hello: %w", err)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, fmt.Errorf("criu: page hello: %w", err)
	}
	id := binary.BigEndian.Uint32(hdr[0:4])
	switch hdr[4] {
	case pageStatusHello:
		var body [2]byte
		if _, err := io.ReadFull(conn, body[:]); err != nil {
			return 0, fmt.Errorf("criu: page hello: %w", err)
		}
		codec := imgproto.Codec(body[1])
		if id != pageHelloID || body[0] != pageProtoVersion || !codec.Batched() {
			return 0, fmt.Errorf("criu: page hello: malformed ack (id 0x%x version %d codec %s)", id, body[0], codec)
		}
		return codec, nil
	case pageStatusOK:
		// A v2 server served the magic address as a page: drain the body
		// and fall back to the legacy framing.
		if _, err := io.CopyN(io.Discard, conn, int64(mem.PageSize)); err != nil {
			return 0, fmt.Errorf("criu: page hello: %w", err)
		}
		return imgproto.CodecRaw, nil
	case pageStatusErr:
		// A v2 server reported the magic address unmapped: same fallback.
		var ln [2]byte
		if _, err := io.ReadFull(conn, ln[:]); err != nil {
			return 0, fmt.Errorf("criu: page hello: %w", err)
		}
		n := binary.BigEndian.Uint16(ln[:])
		if n > maxPageErrMsg {
			return 0, fmt.Errorf("criu: page hello: error frame of %d bytes exceeds limit", n)
		}
		if _, err := io.CopyN(io.Discard, conn, int64(n)); err != nil {
			return 0, fmt.Errorf("criu: page hello: %w", err)
		}
		return imgproto.CodecRaw, nil
	default:
		return 0, fmt.Errorf("criu: page hello: bad response status 0x%02x", hdr[4])
	}
}

// encodePageResponse builds an OK frame (the body writePageResponse
// writes) for batching.
func encodePageResponse(id uint32, page []byte) []byte {
	buf := make([]byte, 5+len(page))
	binary.BigEndian.PutUint32(buf[0:4], id)
	buf[4] = pageStatusOK
	copy(buf[5:], page)
	return buf
}

// encodePageError builds an ERR frame for batching.
func encodePageError(id uint32, fetchErr error) []byte {
	msg := fetchErr.Error()
	if len(msg) > maxPageErrMsg {
		msg = msg[:maxPageErrMsg]
	}
	buf := make([]byte, 7+len(msg))
	binary.BigEndian.PutUint32(buf[0:4], id)
	buf[4] = pageStatusErr
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(msg)))
	copy(buf[7:], msg)
	return buf
}

// writePageBatch compresses raw (count concatenated response frames)
// with codec and writes one batch frame in a single gathered write. It
// returns the raw and on-wire payload sizes for telemetry.
func writePageBatch(w io.Writer, codec imgproto.Codec, count int, raw []byte) (rawN, wireN int, err error) {
	payload, used, err := codec.Compress(raw)
	if err != nil {
		return 0, 0, err
	}
	hdr := make([]byte, pageBatchHdrLen)
	hdr[0] = pageBatchMagic
	hdr[1] = byte(used)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(count))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(raw)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	bufs := net.Buffers{hdr, payload}
	if _, err := bufs.WriteTo(w); err != nil {
		return 0, 0, err
	}
	return len(raw), pageBatchHdrLen + len(payload), nil
}

// readPageBatch reads and validates one batch frame, returning its
// decoded response frames. Framing violations wrap errBatchDesync so the
// caller can distinguish them from plain connection teardown.
func readPageBatch(r io.Reader) ([]pageResponse, error) {
	var hdr [pageBatchHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	codec := imgproto.Codec(hdr[1])
	count := int(binary.BigEndian.Uint16(hdr[2:4]))
	rawLen := int(binary.BigEndian.Uint32(hdr[4:8]))
	wireLen := int(binary.BigEndian.Uint32(hdr[8:12]))
	switch {
	case hdr[0] != pageBatchMagic:
		return nil, fmt.Errorf("%w: bad magic 0x%02x", errBatchDesync, hdr[0])
	case !codec.Batched():
		return nil, fmt.Errorf("%w: bad codec byte 0x%02x", errBatchDesync, hdr[1])
	case count == 0:
		return nil, fmt.Errorf("%w: empty batch", errBatchDesync)
	case rawLen > maxBatchRaw:
		return nil, fmt.Errorf("%w: batch of %d raw bytes exceeds limit", errBatchDesync, rawLen)
	case wireLen > rawLen:
		// Compress never expands (it falls back to CodecNone), so a wire
		// payload larger than its raw size proves corruption.
		return nil, fmt.Errorf("%w: wire payload %d exceeds raw size %d", errBatchDesync, wireLen, rawLen)
	case rawLen < count*5:
		return nil, fmt.Errorf("%w: %d raw bytes cannot hold %d frames", errBatchDesync, rawLen, count)
	}
	payload := make([]byte, wireLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	raw, err := codec.Decompress(payload, rawLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBatchDesync, err)
	}
	br := bytes.NewReader(raw)
	out := make([]pageResponse, 0, count)
	for i := 0; i < count; i++ {
		resp, err := readPageResponse(br)
		if err != nil {
			return nil, fmt.Errorf("%w: frame %d of %d: %v", errBatchDesync, i, count, err)
		}
		out = append(out, resp)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d frames", errBatchDesync, br.Len(), count)
	}
	return out, nil
}
