package criu

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
)

// batchOf builds the raw payload (concatenated v2 response frames) for a
// batch and returns it with the frame count.
func batchOf(frames ...[]byte) ([]byte, int) {
	var raw []byte
	for _, f := range frames {
		raw = append(raw, f...)
	}
	return raw, len(frames)
}

func TestPageBatchRoundTrip(t *testing.T) {
	for _, codec := range []imgproto.Codec{imgproto.CodecNone, imgproto.CodecFlate} {
		t.Run(codec.String(), func(t *testing.T) {
			raw, count := batchOf(
				encodePageResponse(1, pagePattern(0)),
				encodePageResponse(2, pagePattern(mem.PageSize)),
				encodePageError(3, errors.New("no such page")),
				encodePageResponse(4, pagePattern(7*mem.PageSize)),
			)
			var buf bytes.Buffer
			rawN, wireN, err := writePageBatch(&buf, codec, count, raw)
			if err != nil {
				t.Fatal(err)
			}
			if rawN != len(raw) {
				t.Errorf("rawN = %d, want %d", rawN, len(raw))
			}
			if wireN != buf.Len() {
				t.Errorf("wireN = %d, but %d bytes were written", wireN, buf.Len())
			}
			// Compress never expands: the batch frame is at most header +
			// raw payload, whatever codec was asked for.
			if wireN > pageBatchHdrLen+len(raw) {
				t.Errorf("wire frame %d bytes exceeds raw %d + header", wireN, len(raw))
			}
			resps, err := readPageBatch(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(resps) != count {
				t.Fatalf("decoded %d frames, want %d", len(resps), count)
			}
			checkPage(t, 0, resps[0].Page)
			checkPage(t, mem.PageSize, resps[1].Page)
			if resps[2].Remote != "no such page" {
				t.Errorf("error frame message %q, want %q", resps[2].Remote, "no such page")
			}
			checkPage(t, 7*mem.PageSize, resps[3].Page)
			for i, want := range []uint32{1, 2, 3, 4} {
				if resps[i].ID != want {
					t.Errorf("frame %d ID = %d, want %d", i, resps[i].ID, want)
				}
			}
		})
	}
}

// TestPageBatchFlateShrinks pins that the flate codec actually compresses
// a compressible batch — zero pages here, like the untouched tail of a
// guest heap.
func TestPageBatchFlateShrinks(t *testing.T) {
	raw, count := batchOf(
		encodePageResponse(1, make([]byte, mem.PageSize)),
		encodePageResponse(2, make([]byte, mem.PageSize)),
	)
	var buf bytes.Buffer
	rawN, wireN, err := writePageBatch(&buf, imgproto.CodecFlate, count, raw)
	if err != nil {
		t.Fatal(err)
	}
	if wireN >= rawN {
		t.Errorf("flate batch of zero pages did not shrink: raw %d, wire %d", rawN, wireN)
	}
}

// TestReadPageBatchDesync feeds readPageBatch every class of framing
// violation; each must be flagged as errBatchDesync, while a merely
// truncated stream (a clean teardown mid-frame) must NOT be.
func TestReadPageBatchDesync(t *testing.T) {
	goodBatch := func() []byte {
		raw, count := batchOf(encodePageResponse(9, pagePattern(mem.PageSize)))
		var buf bytes.Buffer
		if _, _, err := writePageBatch(&buf, imgproto.CodecNone, count, raw); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name   string
		frame  func() []byte
		desync bool
	}{
		{"bad magic", func() []byte {
			b := goodBatch()
			b[0] = 0x5A
			return b
		}, true},
		{"bad codec byte", func() []byte {
			b := goodBatch()
			b[1] = 0x7F
			return b
		}, true},
		{"raw codec byte", func() []byte {
			// CodecRaw is the legacy non-batch marker; it can never label a
			// batch frame.
			b := goodBatch()
			b[1] = byte(imgproto.CodecRaw)
			return b
		}, true},
		{"zero count", func() []byte {
			b := goodBatch()
			b[2], b[3] = 0, 0
			return b
		}, true},
		{"raw size over limit", func() []byte {
			b := goodBatch()
			putU32(b[4:8], maxBatchRaw+1)
			return b
		}, true},
		{"wire exceeds raw", func() []byte {
			b := goodBatch()
			putU32(b[8:12], uint32(len(b)-pageBatchHdrLen+1))
			return append(b, 0x00) // keep the payload read satisfiable
		}, true},
		{"count too large for raw", func() []byte {
			b := goodBatch()
			b[2], b[3] = 0xFF, 0xFF
			return b
		}, true},
		{"short frame count", func() []byte {
			// Header claims two frames, payload holds one.
			raw, _ := batchOf(encodePageResponse(9, pagePattern(0)))
			var buf bytes.Buffer
			if _, _, err := writePageBatch(&buf, imgproto.CodecNone, 2, raw); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}, true},
		{"trailing bytes", func() []byte {
			raw, _ := batchOf(encodePageResponse(9, pagePattern(0)))
			raw = append(raw, 0xAA, 0xBB)
			var buf bytes.Buffer
			if _, _, err := writePageBatch(&buf, imgproto.CodecNone, 1, raw); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}, true},
		{"garbled flate payload", func() []byte {
			b := goodBatch()
			b[1] = byte(imgproto.CodecFlate) // none-payload labeled flate
			return b
		}, true},
		{"truncated payload", func() []byte {
			b := goodBatch()
			return b[:len(b)-10]
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readPageBatch(bytes.NewReader(tc.frame()))
			if err == nil {
				t.Fatal("corrupt batch frame decoded without error")
			}
			if got := errors.Is(err, errBatchDesync); got != tc.desync {
				t.Errorf("errors.Is(err, errBatchDesync) = %v, want %v (err: %v)", got, tc.desync, err)
			}
		})
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// TestPageClientBatchedFetch runs the full negotiated v3 path end to end:
// concurrent pipelined fetches over batched, compressed frames, with the
// same content checks as the v2 test plus the batch telemetry on both
// sides — and an error frame that must survive batching intact.
func TestPageClientBatchedFetch(t *testing.T) {
	// Outside the 64-page sweep below so only the explicit fetch hits it.
	bad := uint64(1000) * mem.PageSize
	src := &mapSource{failAddr: map[uint64]error{bad: errors.New("backing store gone")}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	srv := ServePagesOpts(ln, src, PageServerOpts{Obs: reg})
	defer srv.Close()
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns: 2, Codec: imgproto.CodecFlate,
		MaxRetries: 1, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := uint64(i) * mem.PageSize
			page, err := c.FetchPage(addr)
			if err != nil {
				errs <- fmt.Errorf("page 0x%x: %w", addr, err)
				return
			}
			want := pagePattern(addr)
			for j := range want {
				if page[j] != want[j] {
					errs <- fmt.Errorf("page 0x%x corrupt at %d", addr, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// An error frame inside a batch must still surface as RemoteFetchError
	// without desynchronizing the stream.
	if _, err := c.FetchPage(bad); err == nil {
		t.Fatal("fetch of failing page succeeded")
	} else {
		var remote *RemoteFetchError
		if !errors.As(err, &remote) {
			t.Fatalf("error %v is not a RemoteFetchError", err)
		}
	}
	page, err := c.FetchPage(3 * mem.PageSize)
	if err != nil {
		t.Fatalf("fetch after batched error frame: %v", err)
	}
	checkPage(t, 3*mem.PageSize, page)

	st := c.Stats()
	if st.Batches == 0 {
		t.Error("no batch frames received despite negotiated codec")
	}
	if st.HelloFallbacks != 0 {
		t.Errorf("HelloFallbacks = %d against a v3 server, want 0", st.HelloFallbacks)
	}
	if st.BatchDesyncs != 0 {
		t.Errorf("BatchDesyncs = %d, want 0", st.BatchDesyncs)
	}
	if reg.Counter("wire.batches").Value() == 0 {
		t.Error("server recorded no wire.batches")
	}
	raw, wire := reg.Counter("wire.bytes_raw").Value(), reg.Counter("wire.bytes_wire").Value()
	if raw == 0 || wire == 0 {
		t.Errorf("wire byte telemetry missing: raw %d, wire %d", raw, wire)
	}
}

// TestPageHelloFallbackV2Server dials a hand-rolled v2-only server with a
// batch codec requested: the hello must be served as an ordinary page
// request, the client must silently fall back to raw framing, and every
// fetch must still work.
func TestPageHelloFallbackV2Server(t *testing.T) {
	// wg.Wait must run after ln.Close (LIFO defers): the accept goroutine
	// only exits once the listener dies.
	var wg sync.WaitGroup
	defer wg.Wait()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Test-server teardown; accept-loop exit is the observable effect.
		_ = ln.Close()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				// Serving goroutine owns the conn for its whole life.
				defer func() { _ = c.Close() }()
				for {
					req, err := readPageRequest(c)
					if err != nil {
						return
					}
					// A v2 server has no notion of the hello: the magic
					// address is just another page to serve.
					if err := writePageResponse(c, req.ID, pagePattern(req.Addr)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	c, err := DialPageServerOpts(ln.Addr().String(), PageClientOpts{
		Conns: 1, Codec: imgproto.CodecFlate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 8
	for i := 0; i < n; i++ {
		addr := uint64(i) * mem.PageSize
		page, err := c.FetchPage(addr)
		if err != nil {
			t.Fatalf("page 0x%x after fallback: %v", addr, err)
		}
		checkPage(t, addr, page)
	}
	st := c.Stats()
	if st.HelloFallbacks != 1 {
		t.Errorf("HelloFallbacks = %d, want 1", st.HelloFallbacks)
	}
	if st.Batches != 0 {
		t.Errorf("Batches = %d on a raw-framing connection, want 0", st.Batches)
	}
	if st.Fetches != n {
		t.Errorf("Fetches = %d, want %d", st.Fetches, n)
	}
}

// TestPageBatchDesyncRecovery (satellite: batch-frame desync) serves a
// corrupt batch frame — bad codec byte — on the first connection. The
// client must drop that connection, count the desync, redial, and complete
// the fetch on the replacement.
func TestPageBatchDesyncRecovery(t *testing.T) {
	// wg.Wait must run after ln.Close (LIFO defers): the accept goroutine
	// only exits once the listener dies.
	var wg sync.WaitGroup
	defer wg.Wait()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Test-server teardown; accept-loop exit is the observable effect.
		_ = ln.Close()
	}()
	var mu sync.Mutex
	connNo := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			connNo++
			corrupt := connNo == 1
			mu.Unlock()
			wg.Add(1)
			go func(c net.Conn, corrupt bool) {
				defer wg.Done()
				// Serving goroutine owns the conn for its whole life.
				defer func() { _ = c.Close() }()
				req, err := readPageRequest(c)
				if err != nil || !isHelloRequest(req) {
					return
				}
				if err := writeHelloAck(c, imgproto.CodecNone); err != nil {
					return
				}
				for {
					req, err := readPageRequest(c)
					if err != nil {
						return
					}
					raw, count := batchOf(encodePageResponse(req.ID, pagePattern(req.Addr)))
					var buf bytes.Buffer
					if _, _, err := writePageBatch(&buf, imgproto.CodecNone, count, raw); err != nil {
						return
					}
					frame := buf.Bytes()
					if corrupt {
						frame[1] = 0x7F // codec byte no decoder exists for
					}
					if _, err := c.Write(frame); err != nil {
						return
					}
				}
			}(conn, corrupt)
		}
	}()

	c, err := DialPageServerOpts(ln.Addr().String(), PageClientOpts{
		Conns: 1, Codec: imgproto.CodecFlate,
		MaxRetries: 4, RetryBackoff: time.Millisecond, FetchTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := uint64(5) * mem.PageSize
	page, err := c.FetchPage(addr)
	if err != nil {
		t.Fatalf("fetch never recovered from batch desync: %v", err)
	}
	checkPage(t, addr, page)
	st := c.Stats()
	if st.BatchDesyncs == 0 {
		t.Error("corrupt batch frame was not counted as a desync")
	}
	if st.Reconnects == 0 {
		t.Error("client recovered without redialing — desync conn was reused")
	}
	if st.Batches == 0 {
		t.Error("replacement connection never delivered a well-formed batch")
	}
}
