package criu

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/parallel"
)

// PageClientOpts tunes the resilient page client. The zero value selects
// the defaults noted on each field.
type PageClientOpts struct {
	// Conns is the connection-pool size (default 2). Fetches are
	// round-robined across the pool and pipelined within a connection:
	// many requests can be in flight at once, matched to responses by
	// request ID.
	Conns int
	// FetchTimeout bounds one fetch attempt, including any redial
	// (default 2s). A timed-out request is abandoned — its late response,
	// if any, is discarded by request ID — and retried.
	FetchTimeout time.Duration
	// MaxRetries is how many times a failed or timed-out fetch is retried
	// (default 4). Each retry may land on a different pool connection and
	// redials broken ones.
	MaxRetries int
	// RetryBackoff is the delay before the first retry (default 5ms),
	// doubling per subsequent retry up to 32x.
	RetryBackoff time.Duration
	// Prefetch asynchronously requests this many pages following every
	// demand-fetched page (default 0 = disabled), hiding round-trip
	// latency for sequential access patterns. Prefetched pages are held
	// in a bounded cache until the fault handler asks for them.
	Prefetch int
	// PrefetchWorkers bounds the number of concurrent prefetch requests
	// regardless of the window size (values <= 0 select
	// max(runtime.NumCPU(), 8), so typical windows still fill on small
	// machines). When every slot is busy, the remaining pages of a
	// window are skipped rather than queued — they will be
	// demand-fetched with retries if actually faulted — so a large
	// Prefetch can never spawn an unbounded goroutine fan-out.
	PrefetchWorkers int
	// DialTimeout bounds one (re)connection attempt (default 1s),
	// including the batch-codec hello when Codec asks for one.
	DialTimeout time.Duration
	// RedialBudget bounds consecutive failed connection incarnations per
	// pool slot (default 8). Dial failures, failed hello exchanges, and
	// connections that die before delivering a single well-formed frame
	// all count; any good frame resets the count. A slot past its budget
	// is poisoned: further fetches through it fail immediately with
	// ErrRedialExhausted (counted in pageclient.redial_exhausted)
	// instead of redialing a server that accepts connections but never
	// speaks the protocol — an unguarded client would redial such a
	// server forever, once per retry of every faulted page.
	RedialBudget int
	// Codec requests batched (optionally compressed) response framing
	// from the server (default CodecRaw = legacy v2 frames, no hello).
	// Negotiated per connection at dial time; a v2 server answers the
	// hello like an ordinary page request and the connection silently
	// falls back to raw framing, counted in pageclient.hello_fallback.
	Codec imgproto.Codec
	// Dial overrides the dialer; tests inject faulty transports here.
	Dial func(addr string) (net.Conn, error)
	// Obs, if set, is the telemetry registry the client records into
	// ("pageclient.*" counters plus the fault-latency histogram). Nil
	// gives the client a private registry so Stats keeps working.
	Obs *obs.Registry
}

func (o PageClientOpts) withDefaults() PageClientOpts {
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 2 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = time.Second
	}
	if o.RedialBudget <= 0 {
		o.RedialBudget = 8
	}
	if o.PrefetchWorkers <= 0 {
		o.PrefetchWorkers = parallel.Normalize(0)
		if o.PrefetchWorkers < 8 {
			o.PrefetchWorkers = 8
		}
	}
	return o
}

// PageClientStats counts client-side transport activity. It is a snapshot
// of the client's obs counters (see Stats).
type PageClientStats struct {
	Fetches      uint64 // successful FetchPage calls
	Retries      uint64 // attempts beyond each fetch's first
	Reconnects   uint64 // redials after a pool connection broke
	Timeouts     uint64 // attempts abandoned at FetchTimeout
	RemoteErrors uint64 // explicit error frames from the server
	BytesRead    uint64 // page payload bytes received on demand
	// PrefetchIssued / Prefetched / PrefetchHits count speculative page
	// requests started, completed into the cache, and later consumed by a
	// fault.
	PrefetchIssued uint64
	Prefetched     uint64
	PrefetchHits   uint64
	// PrefetchSkipped counts window pages skipped because every
	// PrefetchWorkers slot was busy; PrefetchPeak is the highest number
	// of prefetch requests ever in flight at once (always <= the bound).
	PrefetchSkipped uint64
	PrefetchPeak    uint64
	// Batches counts batch frames received in v3 mode; HelloFallbacks
	// counts connections that asked for a batch codec but fell back to
	// raw framing against a v2 server; BatchDesyncs counts connections
	// dropped because a batch frame violated its own framing.
	Batches        uint64
	HelloFallbacks uint64
	BatchDesyncs   uint64
	// RedialsExhausted counts pool slots poisoned after RedialBudget
	// consecutive failed connection incarnations.
	RedialsExhausted uint64
}

// ErrPageClientClosed is returned by FetchPage after Close.
var ErrPageClientClosed = errors.New("criu: page client closed")

// ErrRedialExhausted is returned by FetchPage once a pool slot has burned
// through its RedialBudget of consecutive failed connection incarnations.
// It is sticky and terminal: retrying cannot help against a server that
// keeps accepting connections and keeps failing them.
var ErrRedialExhausted = errors.New("criu: page connection redial budget exhausted")

// errConnBroken reports a request that raced with its connection's
// teardown before it could be written; the retry loop redials.
var errConnBroken = errors.New("criu: page connection broken")

// RemotePageSource is the client side of the TCP page server: a connection
// pool with pipelined request IDs, per-fetch deadlines, bounded
// retry-and-reconnect, and optional sequential prefetch. It implements
// PageSource and is safe for concurrent use.
type RemotePageSource struct {
	addr string
	opts PageClientOpts

	next  atomic.Uint32 // round-robin cursor over conns
	conns []*pageConn

	// Transport counters live in an obs registry (PageClientOpts.Obs or a
	// private one) instead of a hand-rolled struct; Stats snapshots them.
	fetches, retries, reconnects   *obs.Counter
	timeouts, remoteErrs, bytes    *obs.Counter
	prefIssued, prefDone, prefHits *obs.Counter
	faultLat                       *obs.Histogram

	mu     sync.Mutex
	cache  map[uint64][]byte // prefetched pages; nil value = in flight
	closed bool

	closeOnce  sync.Once
	prefetchWG sync.WaitGroup
	// prefSem bounds the prefetch goroutine fan-out to
	// PrefetchWorkers slots; prefActive/prefPeak track the realized
	// concurrency (peak is reported in Stats and pinned by tests).
	prefSem    *parallel.Semaphore
	prefSkips  *obs.Counter
	prefActive atomic.Int64
	prefPeak   atomic.Int64

	// v3 batch-mode counters.
	batchesC, helloFallback, batchDesync *obs.Counter

	redialExhausted *obs.Counter
}

// DialPageServer connects to a page server with default options.
func DialPageServer(addr string) (*RemotePageSource, error) {
	return DialPageServerOpts(addr, PageClientOpts{})
}

// DialPageServerOpts connects to a page server. The first pool connection
// is established eagerly so an unreachable server fails here rather than at
// the first page fault; the rest are dialed on demand.
func DialPageServerOpts(addr string, opts PageClientOpts) (*RemotePageSource, error) {
	c := &RemotePageSource{
		addr:  addr,
		opts:  opts.withDefaults(),
		cache: make(map[uint64][]byte),
	}
	reg := c.opts.Obs
	if reg == nil {
		reg = obs.New()
	}
	c.fetches = reg.Counter("pageclient.fetches")
	c.retries = reg.Counter("pageclient.retries")
	c.reconnects = reg.Counter("pageclient.reconnects")
	c.timeouts = reg.Counter("pageclient.timeouts")
	c.remoteErrs = reg.Counter("pageclient.remote_errors")
	c.bytes = reg.Counter("pageclient.bytes_read")
	c.prefIssued = reg.Counter("pageclient.prefetch_issued")
	c.prefDone = reg.Counter("pageclient.prefetched")
	c.prefHits = reg.Counter("pageclient.prefetch_hits")
	c.prefSkips = reg.Counter("pageclient.prefetch_skipped")
	c.batchesC = reg.Counter("pageclient.batches")
	c.helloFallback = reg.Counter("pageclient.hello_fallback")
	c.batchDesync = reg.Counter("pageclient.batch_desync")
	c.redialExhausted = reg.Counter("pageclient.redial_exhausted")
	c.faultLat = reg.Histogram("pageclient.fault_ns")
	c.prefSem = parallel.NewSemaphore(c.opts.PrefetchWorkers)
	c.conns = make([]*pageConn, c.opts.Conns)
	for i := range c.conns {
		c.conns[i] = &pageConn{client: c}
	}
	if _, err := c.conns[0].state(); err != nil {
		return nil, fmt.Errorf("criu: page client: %w", err)
	}
	return c, nil
}

// Stats returns a snapshot of the client counters.
func (c *RemotePageSource) Stats() PageClientStats {
	return PageClientStats{
		Fetches:          c.fetches.Value(),
		Retries:          c.retries.Value(),
		Reconnects:       c.reconnects.Value(),
		Timeouts:         c.timeouts.Value(),
		RemoteErrors:     c.remoteErrs.Value(),
		BytesRead:        c.bytes.Value(),
		PrefetchIssued:   c.prefIssued.Value(),
		Prefetched:       c.prefDone.Value(),
		PrefetchHits:     c.prefHits.Value(),
		PrefetchSkipped:  c.prefSkips.Value(),
		PrefetchPeak:     uint64(c.prefPeak.Load()),
		Batches:          c.batchesC.Value(),
		HelloFallbacks:   c.helloFallback.Value(),
		BatchDesyncs:     c.batchDesync.Value(),
		RedialsExhausted: c.redialExhausted.Value(),
	}
}

// Close tears down the pool and fails any in-flight fetches. It is
// idempotent.
func (c *RemotePageSource) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		for _, pc := range c.conns {
			pc.mu.Lock()
			cs := pc.cur
			pc.mu.Unlock()
			if cs != nil {
				pc.drop(cs, ErrPageClientClosed)
			}
		}
		c.prefetchWG.Wait()
	})
	return nil
}

func (c *RemotePageSource) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// FetchPage implements PageSource with retry, reconnection, and prefetch.
// Every fetch — hit, miss, or failure — lands in the fault-latency
// histogram, so the post-copy tail is measurable end to end.
func (c *RemotePageSource) FetchPage(addr uint64) ([]byte, error) {
	start := time.Now()
	if page := c.cacheTake(addr); page != nil {
		c.prefHits.Inc()
		c.fetches.Inc()
		c.faultLat.Observe(time.Since(start))
		return page, nil
	}
	page, err := c.fetchWithRetry(addr)
	c.faultLat.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	c.fetches.Inc()
	c.bytes.Add(uint64(len(page)))
	c.maybePrefetch(addr)
	return page, nil
}

func (c *RemotePageSource) fetchWithRetry(addr uint64) ([]byte, error) {
	backoff := c.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if c.isClosed() {
			return nil, ErrPageClientClosed
		}
		if attempt > 0 {
			c.retries.Inc()
			time.Sleep(backoff)
			if backoff < 32*c.opts.RetryBackoff {
				backoff *= 2
			}
		}
		pc := c.pick()
		page, err := pc.roundTrip(addr, c.opts.FetchTimeout)
		if err == nil {
			return page, nil
		}
		if errors.Is(err, ErrPageClientClosed) || errors.Is(err, ErrRedialExhausted) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("criu: page fetch 0x%x failed after %d attempts: %w",
		addr, c.opts.MaxRetries+1, lastErr)
}

func (c *RemotePageSource) pick() *pageConn {
	i := c.next.Add(1)
	return c.conns[int(i)%len(c.conns)]
}

func (c *RemotePageSource) dial() (net.Conn, error) {
	if c.isClosed() {
		return nil, ErrPageClientClosed
	}
	if c.opts.Dial != nil {
		return c.opts.Dial(c.addr)
	}
	return net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
}

// --- prefetch cache ---

// maxPrefetchCache bounds the number of cached-or-in-flight prefetch
// entries; past it new prefetches are skipped rather than evicting.
const maxPrefetchCache = 256

func (c *RemotePageSource) cacheTake(addr uint64) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	page, ok := c.cache[addr]
	if !ok || page == nil {
		// Absent, or still in flight: fall through to a demand fetch.
		return nil
	}
	delete(c.cache, addr)
	return page
}

// cacheReserve marks addr as in flight; it reports false if the page is
// already cached/in flight or the cache is full.
func (c *RemotePageSource) cacheReserve(addr uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.cache) >= maxPrefetchCache {
		return false
	}
	if _, ok := c.cache[addr]; ok {
		return false
	}
	c.cache[addr] = nil
	return true
}

func (c *RemotePageSource) cacheFill(addr uint64, page []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.cache[addr]; ok && p == nil {
		c.cache[addr] = page
		c.prefDone.Inc()
	}
}

func (c *RemotePageSource) cacheAbort(addr uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.cache[addr]; ok && p == nil {
		delete(c.cache, addr)
	}
}

// maybePrefetch speculatively requests the window of pages following addr.
// Prefetches are single-attempt and best-effort: a failure just means the
// page will be demand-fetched (with retries) when actually faulted. The
// fan-out is bounded by PrefetchWorkers semaphore slots — each goroutine
// holds a slot from before it is spawned until it exits, so no window
// size can exceed the bound; pages past the bound are skipped, not
// queued.
func (c *RemotePageSource) maybePrefetch(addr uint64) {
	for i := 1; i <= c.opts.Prefetch; i++ {
		paddr := addr + uint64(i)*mem.PageSize
		if !c.prefSem.TryAcquire() {
			c.prefSkips.Add(uint64(c.opts.Prefetch - i + 1))
			return
		}
		if !c.cacheReserve(paddr) {
			c.prefSem.Release()
			continue
		}
		c.prefIssued.Inc()
		c.notePrefetchStart()
		c.prefetchWG.Add(1)
		go func(paddr uint64) {
			defer c.prefetchWG.Done()
			defer c.prefSem.Release()
			defer c.prefActive.Add(-1)
			page, err := c.pick().roundTrip(paddr, c.opts.FetchTimeout)
			if err != nil {
				c.cacheAbort(paddr)
				return
			}
			c.cacheFill(paddr, page)
		}(paddr)
	}
}

// notePrefetchStart counts a prefetch slot as active (from before its
// goroutine is spawned) and folds the new level into the peak.
func (c *RemotePageSource) notePrefetchStart() {
	n := c.prefActive.Add(1)
	for {
		p := c.prefPeak.Load()
		if n <= p || c.prefPeak.CompareAndSwap(p, n) {
			return
		}
	}
}

// --- pooled connection ---

type pendingFetch struct {
	addr uint64
	ch   chan pageResult
}

type pageResult struct {
	page []byte
	err  error
}

// connState is one incarnation of a pooled connection. The pending map
// ties written requests to the reader goroutine; a new incarnation gets a
// fresh map so a stale reader cannot touch requests issued after a redial.
type connState struct {
	conn net.Conn
	// br buffers the response stream; all reads go through it (a read
	// from conn directly would lose whatever it has buffered). codec is
	// the framing negotiated for this incarnation: raw v2 frames, or
	// batch frames when Batched().
	br    *bufio.Reader
	codec imgproto.Codec

	mu      sync.Mutex
	pending map[uint32]pendingFetch
	nextID  uint32
	dead    bool

	// sawFrame records whether this incarnation ever delivered a
	// well-formed response frame. Touched only by the incarnation's
	// readLoop goroutine; an incarnation that dies without one counts
	// against the slot's redial budget.
	sawFrame bool
}

type pageConn struct {
	client *RemotePageSource

	mu        sync.Mutex
	cur       *connState
	everAlive bool
	// fails counts consecutive connection incarnations that never
	// produced a good frame (dial errors, hello failures, instant
	// desyncs). At RedialBudget the slot is poisoned: exhausted is
	// sticky and state() stops dialing.
	fails     int
	exhausted bool
}

// noteFailLocked records one failed incarnation; callers hold pc.mu.
func (pc *pageConn) noteFailLocked() {
	pc.fails++
	if pc.fails >= pc.client.opts.RedialBudget && !pc.exhausted {
		pc.exhausted = true
		pc.client.redialExhausted.Inc()
	}
}

// noteFail is noteFailLocked for the readLoop side. A teardown raced with
// client Close is not a server failure and never counts.
func (pc *pageConn) noteFail() {
	if pc.client.isClosed() {
		return
	}
	pc.mu.Lock()
	pc.noteFailLocked()
	pc.mu.Unlock()
}

// resetFails clears the consecutive-failure count: the slot reached a
// server that actually speaks the protocol.
func (pc *pageConn) resetFails() {
	pc.mu.Lock()
	pc.fails = 0
	pc.mu.Unlock()
}

// state returns the live connection, dialing a fresh one if needed.
func (pc *pageConn) state() (*connState, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.exhausted {
		return nil, ErrRedialExhausted
	}
	if pc.cur != nil {
		return pc.cur, nil
	}
	conn, err := pc.client.dial()
	if err != nil {
		if !errors.Is(err, ErrPageClientClosed) {
			pc.noteFailLocked()
		}
		return nil, err
	}
	codec := imgproto.CodecRaw
	if want := pc.client.opts.Codec; want.Batched() {
		// The hello is synchronous — before the read loop exists — so the
		// reply frame is unambiguously ours.
		codec, err = negotiatePageBatch(conn, want, pc.client.opts.DialTimeout)
		if err != nil {
			// The exchange died mid-frame, leaving the stream position
			// unknown; the conn is unusable either way.
			_ = conn.Close()
			pc.noteFailLocked()
			return nil, err
		}
		if !codec.Batched() {
			pc.client.helloFallback.Inc()
		}
	}
	if pc.everAlive {
		pc.client.reconnects.Inc()
	}
	pc.everAlive = true
	cs := &connState{
		conn: conn, br: bufio.NewReader(conn), codec: codec,
		pending: make(map[uint32]pendingFetch),
	}
	pc.cur = cs
	//lint:ignore goreap readLoop exits when its conn closes: drop() (called by Close and on any transport error) closes the conn, which unblocks the read
	go pc.readLoop(cs)
	return cs, nil
}

// drop tears down one connection incarnation, delivering err to every
// request still pending on it. Safe to call from both the writer and the
// reader; only the first call acts.
func (pc *pageConn) drop(cs *connState, err error) {
	pc.mu.Lock()
	if pc.cur == cs {
		pc.cur = nil
	}
	pc.mu.Unlock()
	cs.mu.Lock()
	if cs.dead {
		cs.mu.Unlock()
		return
	}
	cs.dead = true
	pend := cs.pending
	cs.pending = nil
	cs.mu.Unlock()
	// The incarnation is already condemned (err is being delivered to
	// every pending fetch); a close failure on it changes nothing.
	_ = cs.conn.Close()
	for _, pf := range pend {
		pf.ch <- pageResult{err: err}
	}
}

func (pc *pageConn) readLoop(cs *connState) {
	for {
		if cs.codec.Batched() {
			resps, err := readPageBatch(cs.br)
			if err != nil {
				if errors.Is(err, errBatchDesync) {
					// A corrupt frame, not a closed conn: count it before
					// dropping — the retry path redials transparently, so
					// this counter is the only visible trace.
					pc.client.batchDesync.Inc()
				}
				if !cs.sawFrame {
					pc.noteFail()
				}
				pc.drop(cs, err)
				return
			}
			if !cs.sawFrame {
				cs.sawFrame = true
				pc.resetFails()
			}
			pc.client.batchesC.Inc()
			for _, resp := range resps {
				pc.dispatch(cs, resp)
			}
			continue
		}
		resp, err := readPageResponse(cs.br)
		if err != nil {
			if !cs.sawFrame {
				pc.noteFail()
			}
			pc.drop(cs, err)
			return
		}
		if !cs.sawFrame {
			cs.sawFrame = true
			pc.resetFails()
		}
		pc.dispatch(cs, resp)
	}
}

// dispatch routes one decoded response frame to the fetch that asked.
func (pc *pageConn) dispatch(cs *connState, resp pageResponse) {
	cs.mu.Lock()
	pf, ok := cs.pending[resp.ID]
	delete(cs.pending, resp.ID)
	cs.mu.Unlock()
	if !ok {
		// Response to a request that timed out client-side: the frame
		// is still well-formed, so just discard it and keep the
		// connection synchronized.
		return
	}
	if resp.Remote != "" {
		pc.client.remoteErrs.Inc()
		pf.ch <- pageResult{err: &RemoteFetchError{Addr: pf.addr, Msg: resp.Remote}}
		return
	}
	pf.ch <- pageResult{page: resp.Page}
}

// roundTrip performs one fetch attempt on this pool slot with a deadline.
func (pc *pageConn) roundTrip(addr uint64, timeout time.Duration) ([]byte, error) {
	cs, err := pc.state()
	if err != nil {
		return nil, err
	}
	ch := make(chan pageResult, 1)
	cs.mu.Lock()
	if cs.dead {
		cs.mu.Unlock()
		return nil, errConnBroken
	}
	id := cs.nextID
	cs.nextID++
	cs.pending[id] = pendingFetch{addr: addr, ch: ch}
	// The write deadline covers only this request's frame and is cleared
	// right after: a deadline left armed would fail a later pipelined
	// write on this pooled connection with a timeout that belongs to a
	// request long gone. A transport that cannot arm the deadline is
	// treated as broken — writing unbounded to it could hang forever.
	werr := cs.conn.SetWriteDeadline(time.Now().Add(timeout))
	if werr == nil {
		werr = writePageRequest(cs.conn, pageRequest{ID: id, Addr: addr})
		if cerr := cs.conn.SetWriteDeadline(time.Time{}); werr == nil && cerr != nil {
			werr = cerr
		}
	}
	cs.mu.Unlock()
	if werr != nil {
		// drop delivers the error to our channel along with everyone
		// else's, so fall through to the select either way.
		pc.drop(cs, werr)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.page, res.err
	case <-timer.C:
		cs.mu.Lock()
		delete(cs.pending, id)
		cs.mu.Unlock()
		pc.client.timeouts.Inc()
		return nil, fmt.Errorf("criu: page fetch 0x%x timed out after %v", addr, timeout)
	}
}
