package criu

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/obs"
)

// deadlineConn wraps a real connection and audits SetWriteDeadline calls:
// how many times a deadline was armed, how many times it was cleared, and
// optionally fails the call — the two halves of the pooled-write-deadline
// regression (a stale deadline left armed, and its error being ignored).
type deadlineConn struct {
	net.Conn
	mu     sync.Mutex
	setErr error // returned from SetWriteDeadline when non-nil
	arms   int   // non-zero deadlines set
	clears int   // zero-time deadlines (disarms)
}

func (c *deadlineConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	if t.IsZero() {
		c.clears++
	} else {
		c.arms++
	}
	err := c.setErr
	c.mu.Unlock()
	if err != nil {
		return err
	}
	//lint:ignore deadlinehygiene counting wrapper forwards t verbatim; arm/clear pairing is the caller's, which this test asserts via counts()
	return c.Conn.SetWriteDeadline(t)
}

func (c *deadlineConn) counts() (arms, clears int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.arms, c.clears
}

// TestPageClientClearsWriteDeadline: every armed write deadline must be
// cleared once the request frame is written, so a pooled connection never
// carries a stale deadline into a later pipelined write.
func TestPageClientClearsWriteDeadline(t *testing.T) {
	srv, err := ServePages("127.0.0.1:0", &mapSource{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var dc *deadlineConn
	var mu sync.Mutex
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns: 1,
		Dial: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			defer mu.Unlock()
			dc = &deadlineConn{Conn: conn}
			return dc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(0); i < 3; i++ {
		if _, err := c.FetchPage(i * 4096); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	mu.Lock()
	conn := dc
	mu.Unlock()
	arms, clears := conn.counts()
	if arms != 3 {
		t.Errorf("deadline armed %d times for 3 fetches, want 3", arms)
	}
	if clears != arms {
		t.Errorf("deadline cleared %d times but armed %d: a stale deadline survives on the pooled connection", clears, arms)
	}
}

// TestPageClientSurfacesDeadlineError: a transport whose SetWriteDeadline
// fails cannot bound its writes — the error must fail the fetch attempt
// instead of being silently ignored.
func TestPageClientSurfacesDeadlineError(t *testing.T) {
	srv, err := ServePages("127.0.0.1:0", &mapSource{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sentinel := &net.OpError{Op: "set", Err: errConnBroken}
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns: 1, MaxRetries: 1, RetryBackoff: time.Millisecond,
		FetchTimeout: 200 * time.Millisecond,
		Dial: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return &deadlineConn{Conn: conn, setErr: sentinel}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.FetchPage(0); err == nil {
		t.Fatal("fetch succeeded although the write deadline could not be armed")
	}
}

// TestPageServerCloseRacesInflightFetch is the Close-vs-fault race: a
// fetch blocked inside the server's PageSource when the server shuts down
// must fail the client with a clean transport error — no hang — and the
// migration-level fault histogram must record the failed attempt.
func TestPageServerCloseRacesInflightFetch(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	slow := fetchFunc(func(addr uint64) ([]byte, error) {
		entered <- struct{}{}
		<-release
		return pagePattern(addr), nil
	})
	srv, err := ServePages("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns: 1, FetchTimeout: 200 * time.Millisecond,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reg := obs.New()
	src := ObsSource(c, reg)
	done := make(chan error, 1)
	go func() {
		_, err := src.FetchPage(0)
		done <- err
	}()
	<-entered // the fetch is in flight inside the server's source

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	select {
	case err := <-done:
		if err == nil {
			t.Error("in-flight fetch succeeded across server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client fetch hung across server close")
	}
	close(release) // unblock the serving goroutine so Close can finish
	if err := <-closed; err != nil {
		t.Errorf("server close: %v", err)
	}

	rep := reg.Report()
	if got := rep.Counters["fault.errors"]; got != 1 {
		t.Errorf("fault.errors = %d, want 1", got)
	}
	h, ok := rep.Histograms["fault.service_ns"]
	if !ok || h.Count != 1 {
		t.Errorf("fault latency histogram count = %d, want 1 (failed attempts must be recorded)", h.Count)
	}
}
