package criu

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/dapper-sim/dapper/internal/mem"
)

// Page-server wire protocol (v2). See docs/transport.md for the full
// specification.
//
// Requests and responses are independent frame streams, so a client may
// pipeline many requests on one connection; responses carry the request ID
// back so they can arrive in any order relative to other connections and be
// matched after a client-side timeout abandoned the request.
//
//	request  := reqID(u32 BE) pageAddr(u64 BE)
//	response := reqID(u32 BE) status(u8) body
//	  status 0x00 (OK):  body = PageSize bytes of page data
//	  status 0x01 (ERR): body = msgLen(u16 BE) msg[msgLen]
//
// An ERR frame reports a server-side FetchPage failure for that request
// only; the connection stays synchronized and usable. Anything else — a
// short frame, an unknown status byte — desynchronizes the stream and the
// reader must drop the connection.
const (
	pageReqLen    = 12
	pageStatusOK  = 0x00
	pageStatusErr = 0x01
	// maxPageErrMsg bounds error-frame messages so a corrupt length field
	// cannot trigger a huge allocation.
	maxPageErrMsg = 1 << 10
)

// pageRequest is one client->server frame.
type pageRequest struct {
	ID   uint32
	Addr uint64
}

// pageResponse is one server->client frame, decoded.
type pageResponse struct {
	ID   uint32
	Page []byte // nil when the frame is an error frame
	// Remote holds the server-reported error message for ERR frames.
	Remote string
}

func writePageRequest(w io.Writer, req pageRequest) error {
	var buf [pageReqLen]byte
	binary.BigEndian.PutUint32(buf[0:4], req.ID)
	binary.BigEndian.PutUint64(buf[4:12], req.Addr)
	_, err := w.Write(buf[:])
	return err
}

func readPageRequest(r io.Reader) (pageRequest, error) {
	var buf [pageReqLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return pageRequest{}, err
	}
	return pageRequest{
		ID:   binary.BigEndian.Uint32(buf[0:4]),
		Addr: binary.BigEndian.Uint64(buf[4:12]),
	}, nil
}

func writePageResponse(w io.Writer, id uint32, page []byte) error {
	_, err := w.Write(encodePageResponse(id, page))
	return err
}

func writePageError(w io.Writer, id uint32, fetchErr error) error {
	_, err := w.Write(encodePageError(id, fetchErr))
	return err
}

func readPageResponse(r io.Reader) (pageResponse, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return pageResponse{}, err
	}
	resp := pageResponse{ID: binary.BigEndian.Uint32(hdr[0:4])}
	switch hdr[4] {
	case pageStatusOK:
		resp.Page = make([]byte, mem.PageSize)
		if _, err := io.ReadFull(r, resp.Page); err != nil {
			return pageResponse{}, err
		}
	case pageStatusErr:
		var ln [2]byte
		if _, err := io.ReadFull(r, ln[:]); err != nil {
			return pageResponse{}, err
		}
		n := binary.BigEndian.Uint16(ln[:])
		if n > maxPageErrMsg {
			return pageResponse{}, fmt.Errorf("criu: page error frame of %d bytes exceeds limit", n)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(r, msg); err != nil {
			return pageResponse{}, err
		}
		resp.Remote = string(msg)
		if resp.Remote == "" {
			resp.Remote = "unspecified server error"
		}
	default:
		return pageResponse{}, fmt.Errorf("criu: bad page response status 0x%02x", hdr[4])
	}
	return resp, nil
}

// RemoteFetchError is a server-reported page-fetch failure, relayed to the
// client in an error frame. The connection that carried it remains
// synchronized and usable.
type RemoteFetchError struct {
	Addr uint64
	Msg  string
}

func (e *RemoteFetchError) Error() string {
	return fmt.Sprintf("criu: page server failed to serve page 0x%x: %s", e.Addr, e.Msg)
}
