package criu

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/dapper-sim/dapper/internal/obs"
)

// PageServer serves FetchPage requests over TCP using the pipelined frame
// protocol in pageproto.go. Each accepted connection is served by its own
// goroutine; requests on a connection are answered in order, but a client
// may keep many in flight. A FetchPage failure is reported to the client as
// an explicit error frame instead of dropping the connection, so one bad
// page cannot desynchronize an otherwise healthy stream.
type PageServer struct {
	src PageSource
	ln  net.Listener

	// Serving counters live in an obs registry ("pageserver.*"); the
	// service-latency histogram records every fetch, failed ones included.
	reqs, bytesSent, errsC *obs.Counter
	svcLat                 *obs.Histogram

	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ServePages starts a TCP page server on addr ("127.0.0.1:0" for tests).
func ServePages(addr string, src PageSource) (*PageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("criu: page server: %w", err)
	}
	return ServePagesOn(ln, src), nil
}

// ServePagesOn starts a page server on an existing listener with a private
// telemetry registry. Tests use this to interpose fault-injecting
// listeners (see FlakyListener); the server takes ownership of ln.
func ServePagesOn(ln net.Listener, src PageSource) *PageServer {
	return ServePagesObs(ln, src, nil)
}

// ServePagesObs starts a page server on an existing listener, recording
// into reg ("pageserver.*" counters and the service-latency histogram).
// A nil reg gives the server a private registry so Stats keeps working.
func ServePagesObs(ln net.Listener, src PageSource, reg *obs.Registry) *PageServer {
	if reg == nil {
		reg = obs.New()
	}
	s := &PageServer{
		src: src, ln: ln, conns: make(map[net.Conn]struct{}),
		reqs:      reg.Counter("pageserver.requests"),
		bytesSent: reg.Counter("pageserver.bytes_sent"),
		errsC:     reg.Counter("pageserver.errors"),
		svcLat:    reg.Histogram("pageserver.service_ns"),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *PageServer) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the server-side counters: every request
// frame received, bytes of page payload sent, and fetches answered with an
// error frame.
func (s *PageServer) Stats() PageServerStats {
	return PageServerStats{
		Requests:  s.reqs.Value(),
		BytesSent: s.bytesSent.Value(),
		Errors:    s.errsC.Value(),
	}
}

// Close stops the listener, closes every open connection, and waits for
// the serving goroutines. It is idempotent: extra calls return the first
// call's result.
func (s *PageServer) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		s.closeErr = s.ln.Close()
		for _, c := range conns {
			// Each serving goroutine closes its own conn on exit; this
			// forced close races that benignly, so a double-close error
			// carries no signal.
			_ = c.Close()
		}
		s.wg.Wait()
	})
	return s.closeErr
}

func (s *PageServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Either Close shut the listener or it failed fatally; in both
			// cases there is nothing more to accept.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			// Rejecting an accept that raced Close; no caller to report
			// a close failure to.
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			// serveConn already drained the request stream; PageServer.Close
			// may have closed the conn first, so an error here is expected
			// double-close noise.
			_ = conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *PageServer) serveConn(conn net.Conn) {
	for {
		req, err := readPageRequest(conn)
		if err != nil {
			return
		}
		start := time.Now()
		page, ferr := s.src.FetchPage(req.Addr)
		s.svcLat.Observe(time.Since(start))
		s.reqs.Inc()
		if ferr != nil {
			s.errsC.Inc()
		} else {
			s.bytesSent.Add(uint64(len(page)))
		}
		if ferr != nil {
			if err := writePageError(conn, req.ID, ferr); err != nil {
				return
			}
			continue
		}
		if err := writePageResponse(conn, req.ID, page); err != nil {
			return
		}
	}
}
