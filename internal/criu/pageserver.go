package criu

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/obs"
)

// PageServer serves FetchPage requests over TCP using the pipelined frame
// protocol in pageproto.go. Each accepted connection is served by its own
// goroutine; requests on a connection are answered in order, but a client
// may keep many in flight. A FetchPage failure is reported to the client as
// an explicit error frame instead of dropping the connection, so one bad
// page cannot desynchronize an otherwise healthy stream.
//
// A connection whose client negotiates the v3 hello (see pagebatch.go)
// switches to batched responses: pipelined requests coalesce into one
// batch frame per write, flushed when the request stream drains or the
// batch limits fill, so a burst of prefetches costs one syscall and one
// compression call instead of one write per page.
type PageServer struct {
	src  PageSource
	ln   net.Listener
	opts PageServerOpts

	// Serving counters live in an obs registry ("pageserver.*"); the
	// service-latency histogram records every fetch, failed ones included.
	reqs, bytesSent, errsC *obs.Counter
	svcLat                 *obs.Histogram
	// Batch-mode wire telemetry ("wire.*", shared names with the image
	// transport): batches flushed, payload bytes before and after the
	// codec, and time spent inside Compress.
	batches, bytesRaw, bytesWire *obs.Counter
	codecNs                      *obs.Histogram

	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// PageServerOpts tunes batching; the zero value selects the defaults
// noted on each field.
type PageServerOpts struct {
	// Obs, if set, receives the serving and wire telemetry. Nil gives the
	// server a private registry so Stats keeps working.
	Obs *obs.Registry
	// BatchPages caps how many response frames coalesce into one batch
	// before a flush is forced (default 32, max 65535 — the frame's count
	// field is 16 bits).
	BatchPages int
	// BatchBytes caps a batch's raw payload size (default 256 KiB).
	BatchBytes int
}

func (o PageServerOpts) withDefaults() PageServerOpts {
	if o.BatchPages <= 0 {
		o.BatchPages = defaultBatchPages
	}
	if o.BatchPages > maxBatchFrames {
		o.BatchPages = maxBatchFrames
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = defaultBatchBytes
	}
	return o
}

// ServePages starts a TCP page server on addr ("127.0.0.1:0" for tests).
func ServePages(addr string, src PageSource) (*PageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("criu: page server: %w", err)
	}
	return ServePagesOn(ln, src), nil
}

// ServePagesOn starts a page server on an existing listener with a private
// telemetry registry. Tests use this to interpose fault-injecting
// listeners (see FlakyListener); the server takes ownership of ln.
func ServePagesOn(ln net.Listener, src PageSource) *PageServer {
	return ServePagesOpts(ln, src, PageServerOpts{})
}

// ServePagesObs starts a page server on an existing listener, recording
// into reg ("pageserver.*" counters and the service-latency histogram).
// A nil reg gives the server a private registry so Stats keeps working.
func ServePagesObs(ln net.Listener, src PageSource, reg *obs.Registry) *PageServer {
	return ServePagesOpts(ln, src, PageServerOpts{Obs: reg})
}

// ServePagesOpts starts a page server on an existing listener with full
// control over telemetry and batching; the server takes ownership of ln.
func ServePagesOpts(ln net.Listener, src PageSource, opts PageServerOpts) *PageServer {
	opts = opts.withDefaults()
	reg := opts.Obs
	if reg == nil {
		reg = obs.New()
	}
	s := &PageServer{
		src: src, ln: ln, opts: opts, conns: make(map[net.Conn]struct{}),
		reqs:      reg.Counter("pageserver.requests"),
		bytesSent: reg.Counter("pageserver.bytes_sent"),
		errsC:     reg.Counter("pageserver.errors"),
		svcLat:    reg.Histogram("pageserver.service_ns"),
		batches:   reg.Counter("wire.batches"),
		bytesRaw:  reg.Counter("wire.bytes_raw"),
		bytesWire: reg.Counter("wire.bytes_wire"),
		codecNs:   reg.Histogram("wire.codec_ns"),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *PageServer) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the server-side counters: every request
// frame received, bytes of page payload sent, and fetches answered with an
// error frame.
func (s *PageServer) Stats() PageServerStats {
	return PageServerStats{
		Requests:  s.reqs.Value(),
		BytesSent: s.bytesSent.Value(),
		Errors:    s.errsC.Value(),
	}
}

// Close stops the listener, closes every open connection, and waits for
// the serving goroutines. It is idempotent: extra calls return the first
// call's result.
func (s *PageServer) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		s.closeErr = s.ln.Close()
		for _, c := range conns {
			// Each serving goroutine closes its own conn on exit; this
			// forced close races that benignly, so a double-close error
			// carries no signal.
			_ = c.Close()
		}
		s.wg.Wait()
	})
	return s.closeErr
}

func (s *PageServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Either Close shut the listener or it failed fatally; in both
			// cases there is nothing more to accept.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			// Rejecting an accept that raced Close; no caller to report
			// a close failure to.
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			// serveConn already drained the request stream; PageServer.Close
			// may have closed the conn first, so an error here is expected
			// double-close noise.
			_ = conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *PageServer) serveConn(conn net.Conn) {
	// Buffering the request stream serves two purposes: fewer read
	// syscalls under pipelining, and br.Buffered() doubles as the flush
	// heuristic — a non-empty buffer means another request is already
	// waiting, so batch mode can keep accumulating instead of flushing.
	br := bufio.NewReaderSize(conn, 16*pageReqLen)
	var bw *pageBatchWriter // nil until the client negotiates v3
	for {
		req, err := readPageRequest(br)
		if err != nil {
			return
		}
		if isHelloRequest(req) {
			// Flush anything queued under a previous negotiation, honor
			// the requested codec if we can encode it, and switch.
			if bw != nil && s.flushBatch(conn, bw) != nil {
				return
			}
			codec := imgproto.Codec(req.Addr &^ pageHelloAddrMask)
			if !codec.Batched() {
				codec = imgproto.CodecNone
			}
			if writeHelloAck(conn, codec) != nil {
				return
			}
			bw = &pageBatchWriter{
				codec: codec, maxFrames: s.opts.BatchPages, maxBytes: s.opts.BatchBytes,
			}
			continue
		}
		start := time.Now()
		page, ferr := s.src.FetchPage(req.Addr)
		s.svcLat.Observe(time.Since(start))
		s.reqs.Inc()
		var frame []byte
		if ferr != nil {
			s.errsC.Inc()
			frame = encodePageError(req.ID, ferr)
		} else {
			s.bytesSent.Add(uint64(len(page)))
			frame = encodePageResponse(req.ID, page)
		}
		if bw == nil {
			if _, err := conn.Write(frame); err != nil {
				return
			}
			continue
		}
		bw.add(frame)
		// Flush when the batch is full, or when the request stream has
		// drained — holding frames while the client has nothing else in
		// flight would deadlock the fetch against its own batch.
		if bw.full() || br.Buffered() < pageReqLen {
			if s.flushBatch(conn, bw) != nil {
				return
			}
		}
	}
}

// pageBatchWriter accumulates encoded response frames for one batch.
type pageBatchWriter struct {
	codec     imgproto.Codec
	raw       []byte
	count     int
	maxFrames int
	maxBytes  int
}

func (b *pageBatchWriter) add(frame []byte) {
	b.raw = append(b.raw, frame...)
	b.count++
}

func (b *pageBatchWriter) full() bool {
	return b.count >= b.maxFrames || len(b.raw) >= b.maxBytes
}

// flushBatch writes the accumulated batch as one frame and records the
// wire telemetry. A no-op when the batch is empty.
func (s *PageServer) flushBatch(conn net.Conn, bw *pageBatchWriter) error {
	if bw.count == 0 {
		return nil
	}
	start := time.Now()
	rawN, wireN, err := writePageBatch(conn, bw.codec, bw.count, bw.raw)
	s.codecNs.Observe(time.Since(start))
	if err != nil {
		return err
	}
	s.batches.Inc()
	s.bytesRaw.Add(uint64(rawN))
	s.bytesWire.Add(uint64(wireN))
	bw.raw = bw.raw[:0]
	bw.count = 0
	return nil
}
