package criu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/mem"
)

// mapSource serves synthetic page contents: every page is filled with a
// function of its address so content corruption is detectable.
type mapSource struct {
	mu       sync.Mutex
	requests uint64
	failAddr map[uint64]error // addrs that always fail
}

func pagePattern(addr uint64) []byte {
	page := make([]byte, mem.PageSize)
	for i := 0; i < len(page); i += 8 {
		binary.LittleEndian.PutUint64(page[i:], addr^uint64(i))
	}
	return page
}

func (m *mapSource) FetchPage(addr uint64) ([]byte, error) {
	m.mu.Lock()
	m.requests++
	err := m.failAddr[addr]
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return pagePattern(addr), nil
}

func (m *mapSource) Requests() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests
}

func checkPage(t *testing.T, addr uint64, got []byte) {
	t.Helper()
	want := pagePattern(addr)
	if len(got) != len(want) {
		t.Fatalf("page 0x%x: got %d bytes, want %d", addr, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page 0x%x corrupt at byte %d: got 0x%02x want 0x%02x", addr, i, got[i], want[i])
		}
	}
}

func TestPageClientPipelinedConcurrentFetches(t *testing.T) {
	srv, err := ServePages("127.0.0.1:0", &mapSource{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := uint64(i) * mem.PageSize
			page, err := c.FetchPage(addr)
			if err != nil {
				errs <- fmt.Errorf("page 0x%x: %w", addr, err)
				return
			}
			want := pagePattern(addr)
			for j := range want {
				if page[j] != want[j] {
					errs <- fmt.Errorf("page 0x%x corrupt at %d", addr, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Fetches != n {
		t.Errorf("client Fetches = %d, want %d", st.Fetches, n)
	}
	if got := srv.Stats().Requests; got != n {
		t.Errorf("server Requests = %d, want %d", got, n)
	}
}

// TestPageServerErrorFrame verifies that a server-side FetchPage failure is
// reported as an explicit error frame: the client sees the message, the
// connection stays synchronized, and other pages remain fetchable.
func TestPageServerErrorFrame(t *testing.T) {
	bad := uint64(7) * mem.PageSize
	src := &mapSource{failAddr: map[uint64]error{bad: errors.New("disk on fire")}}
	srv, err := ServePages("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns: 1, MaxRetries: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.FetchPage(bad); err == nil {
		t.Fatal("fetch of failing page succeeded")
	} else {
		var remote *RemoteFetchError
		if !errors.As(err, &remote) {
			t.Fatalf("error %v is not a RemoteFetchError", err)
		}
		if remote.Addr != bad || remote.Msg != "disk on fire" {
			t.Errorf("remote error = %+v, want addr 0x%x msg %q", remote, bad, "disk on fire")
		}
	}
	// The same connection must still serve good pages: no desync.
	page, err := c.FetchPage(3 * mem.PageSize)
	if err != nil {
		t.Fatalf("fetch after error frame: %v", err)
	}
	checkPage(t, 3*mem.PageSize, page)
	st := srv.Stats()
	if st.Errors != 3 { // initial attempt + 2 retries
		t.Errorf("server Errors = %d, want 3", st.Errors)
	}
	if c.Stats().RemoteErrors != 3 {
		t.Errorf("client RemoteErrors = %d, want 3", c.Stats().RemoteErrors)
	}
	if c.Stats().Reconnects != 0 {
		t.Errorf("error frames should not force reconnects, got %d", c.Stats().Reconnects)
	}
}

// TestPageClientReconnectAfterDrop injects mid-frame connection drops on
// the server side; every fetch must still succeed via retry+reconnect.
func TestPageClientReconnectAfterDrop(t *testing.T) {
	flaky, fsrv := newFlakyServer(t, FaultSpec{Seed: 42, DropRate: 0.3}, &mapSource{})
	defer fsrv.Close()

	c, err := DialPageServerOpts(fsrv.Addr(), PageClientOpts{
		Conns: 2, MaxRetries: 12, RetryBackoff: time.Millisecond, FetchTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 50
	for i := 0; i < n; i++ {
		addr := uint64(i) * mem.PageSize
		page, err := c.FetchPage(addr)
		if err != nil {
			t.Fatalf("page 0x%x: %v", addr, err)
		}
		checkPage(t, addr, page)
	}
	if flaky.Drops() == 0 {
		t.Fatal("fault injector never dropped a connection; test exercised nothing")
	}
	st := c.Stats()
	if st.Reconnects == 0 {
		t.Errorf("drops injected (%d) but client never reconnected: %+v", flaky.Drops(), st)
	}
	if st.Fetches != n {
		t.Errorf("Fetches = %d, want %d", st.Fetches, n)
	}
}

func newFlakyServer(t *testing.T, spec FaultSpec, src PageSource) (*FlakyListener, *PageServer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := NewFlakyListener(ln, spec)
	return flaky, ServePagesOn(flaky, src)
}

// TestPageClientDeadlineRetry injects latency above the fetch deadline on
// a fraction of fetches; timed-out attempts must be retried until a fast
// attempt lands, and late responses must not desynchronize the stream.
func TestPageClientDeadlineRetry(t *testing.T) {
	src := NewFlakySource(&mapSource{}, FaultSpec{
		Seed: 7, Latency: 150 * time.Millisecond, LatencyRate: 0.4,
	})
	srv, err := ServePages("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns: 2, FetchTimeout: 40 * time.Millisecond,
		MaxRetries: 20, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 30
	for i := 0; i < n; i++ {
		addr := uint64(i) * mem.PageSize
		page, err := c.FetchPage(addr)
		if err != nil {
			t.Fatalf("page 0x%x: %v", addr, err)
		}
		checkPage(t, addr, page)
	}
	if src.Delays() == 0 {
		t.Fatal("no latency was injected; test exercised nothing")
	}
	st := c.Stats()
	if st.Timeouts == 0 {
		t.Errorf("latency injected (%d delays) but no attempt timed out: %+v", src.Delays(), st)
	}
	if st.Fetches != n {
		t.Errorf("Fetches = %d, want %d", st.Fetches, n)
	}
}

// TestPagePrefetch verifies the prefetch window fills the cache and that a
// subsequent sequential fault is served from it.
func TestPagePrefetch(t *testing.T) {
	src := &mapSource{}
	srv, err := ServePages("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{Prefetch: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	base := uint64(100) * mem.PageSize
	page, err := c.FetchPage(base)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, base, page)
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Prefetched < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("prefetch never completed: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	page, err = c.FetchPage(base + mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, base+mem.PageSize, page)
	st := c.Stats()
	if st.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", st.PrefetchHits)
	}
	// The hit must not have produced a second server round trip for that
	// page: 1 demand fetch + 3 prefetches.
	if got := src.Requests(); got != 4 {
		t.Errorf("source served %d requests, want 4 (1 demand + 3 prefetch)", got)
	}
}

func TestPageServerAndClientCloseIdempotent(t *testing.T) {
	srv, err := ServePages("127.0.0.1:0", &mapSource{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialPageServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second client close: %v", err)
	}
	if _, err := c.FetchPage(0); !errors.Is(err, ErrPageClientClosed) {
		t.Errorf("fetch after close = %v, want ErrPageClientClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second server close: %v", err)
	}
}

// TestPageServerCloseUnblocksClients: closing the server mid-request must
// fail the client's fetch (after retries) instead of hanging it.
func TestPageServerCloseUnblocksClients(t *testing.T) {
	blocker := make(chan struct{})
	slow := fetchFunc(func(addr uint64) ([]byte, error) {
		<-blocker
		return pagePattern(addr), nil
	})
	srv, err := ServePages("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns: 1, FetchTimeout: 50 * time.Millisecond, MaxRetries: 1, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.FetchPage(0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("fetch against a stalled server succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fetch hung past its deadline budget")
	}
	close(blocker)
	if err := srv.Close(); err != nil {
		t.Errorf("close with stalled handler: %v", err)
	}
}

type fetchFunc func(addr uint64) ([]byte, error)

func (f fetchFunc) FetchPage(addr uint64) ([]byte, error) { return f(addr) }
