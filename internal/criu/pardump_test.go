package criu_test

import (
	"bytes"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
)

// dupHeavy fills a large array with a pattern that repeats every 512
// ints — exactly one 4K page — so the resident set is full of
// byte-identical nonzero pages, the case content-addressed dedup elides.
// Equivalence points live at function entry, so the post-fill work sits
// in a callee the monitor can pause between calls to.
const dupHeavy = `
var data[8192] int;
var sum int;
func fill() {
	var i int;
	for i = 0; i < 8192; i = i + 1 {
		data[i] = (i % 512) + 7;
	}
}
func step(round int) {
	sum = sum + data[(round * 512) % 8192];
}
func main() {
	var round int;
	fill();
	for round = 0; round < 4096; round = round + 1 {
		step(round);
	}
	printi(sum);
}`

// pausedDupProc compiles dupHeavy, runs it past the fill loop, and
// pauses it at an equivalence point with the duplicate-heavy pages
// resident, ready to dump.
func pausedDupProc(t *testing.T) *kernel.Process {
	t.Helper()
	pair, err := compiler.Compile(dupHeavy)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Cores: 2, Quantum: 97})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/dup.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	alive, err := k.RunBudget(p, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if !alive {
		t.Fatal("program finished before the dump point; shrink the budget")
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDumpWorkersByteIdentical is the golden-output test for the
// parallel dump: for every worker count — and with dedup on or off —
// the marshaled image directory must be byte-identical, because the
// page-set coalescer sorts addresses before encoding.
func TestDumpWorkersByteIdentical(t *testing.T) {
	p := pausedDupProc(t)
	for _, dedup := range []bool{false, true} {
		var golden []byte
		for _, workers := range []int{1, 2, 3, 8} {
			dir, err := criu.Dump(p, criu.DumpOpts{Workers: workers, Dedup: dedup})
			if err != nil {
				t.Fatalf("dedup=%v workers=%d: %v", dedup, workers, err)
			}
			blob := dir.Marshal()
			if golden == nil {
				golden = blob
				continue
			}
			if !bytes.Equal(blob, golden) {
				t.Fatalf("dedup=%v workers=%d: dump differs from workers=1 output (%d vs %d bytes)",
					dedup, workers, len(blob), len(golden))
			}
		}
	}
}

// TestDumpDedupElidesAndResolves checks the dedup encoding end to end:
// the duplicate-heavy dump must shrink pages.img, record its savings in
// the obs counters, and still load back to exactly the same page
// contents as the plain dump.
func TestDumpDedupElidesAndResolves(t *testing.T) {
	p := pausedDupProc(t)
	plain, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	dedup, err := criu.Dump(p, criu.DumpOpts{Dedup: true, Workers: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	plainPages, _ := plain.Get("pages.img")
	dedupPages, _ := dedup.Get("pages.img")
	if len(dedupPages) >= len(plainPages) {
		t.Fatalf("dedup saved nothing: pages.img %d -> %d bytes", len(plainPages), len(dedupPages))
	}
	if got := reg.Counter("dedup.pages_elided").Value(); got == 0 {
		t.Error("dedup.pages_elided = 0 on a duplicate-heavy dump")
	}
	if got := reg.Counter("dedup.bytes_saved").Value(); got != uint64(len(plainPages)-len(dedupPages)) {
		t.Errorf("dedup.bytes_saved = %d, want %d", got, len(plainPages)-len(dedupPages))
	}

	// The dedup references must resolve to exactly the plain contents.
	psPlain, err := criu.LoadPageSet(plain)
	if err != nil {
		t.Fatal(err)
	}
	psDedup, err := criu.LoadPageSet(dedup)
	if err != nil {
		t.Fatal(err)
	}
	if len(psPlain.Pages) != len(psDedup.Pages) {
		t.Fatalf("page count differs after dedup resolution: %d vs %d", len(psPlain.Pages), len(psDedup.Pages))
	}
	for addr, want := range psPlain.Pages {
		if got, ok := psDedup.Pages[addr]; !ok || !bytes.Equal(got, want) {
			t.Fatalf("page 0x%x differs after dedup resolution", addr)
		}
	}
}

// TestRestoreFromDedupImages proves a dedup-encoded checkpoint restores
// and runs to completion with exactly the output of a plain one.
func TestRestoreFromDedupImages(t *testing.T) {
	run := func(dedup bool) string {
		p := pausedDupProc(t)
		dir, err := criu.Dump(p, criu.DumpOpts{Dedup: dedup, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		pair, err := compiler.Compile(dupHeavy)
		if err != nil {
			t.Fatal(err)
		}
		k2 := kernel.New(kernel.Config{})
		prov := criu.MapProvider{"/bin/dup.sx86": pair.X86}
		p2, err := criu.Restore(k2, dir, prov)
		if err != nil {
			t.Fatalf("restore (dedup=%v): %v", dedup, err)
		}
		if err := k2.Run(p2); err != nil {
			t.Fatalf("run (dedup=%v): %v", dedup, err)
		}
		return p2.ConsoleString()
	}
	plainOut := run(false)
	dedupOut := run(true)
	if plainOut == "" {
		t.Fatal("restored run produced no output")
	}
	if plainOut != dedupOut {
		t.Fatalf("output differs: plain %q vs dedup %q", plainOut, dedupOut)
	}
}

// TestCRITDedupRoundTrip checks the CRIT JSON path round-trips the new
// dedup pagemap fields losslessly.
func TestCRITDedupRoundTrip(t *testing.T) {
	p := pausedDupProc(t)
	dir, err := criu.Dump(p, criu.DumpOpts{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := criu.DecodeJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"dedup": true`)) {
		t.Fatal("CRIT JSON of a dedup dump carries no dedup entries")
	}
	back, err := criu.EncodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pagemap.img", "pages.img"} {
		want, _ := dir.Get(name)
		got, _ := back.Get(name)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs after CRIT round trip", name)
		}
	}
}

// TestExtractAbsorbRange pins the sub-view contract the parallel
// rewriter relies on: ExtractRange copies the maps (mutations of the
// view never touch the parent's maps), AbsorbRange replaces exactly the
// range, and entries outside the range are untouched by both.
func TestExtractAbsorbRange(t *testing.T) {
	mk := func(fill byte) []byte {
		pg := make([]byte, mem.PageSize)
		for i := range pg {
			pg[i] = fill
		}
		return pg
	}
	ps := criu.NewPageSet()
	ps.Pages[0x10000] = mk(1)
	ps.ZeroPages[0x11000] = true
	ps.LazyPages[0x12000] = true
	ps.Pages[0x20000] = mk(2) // outside the range

	sub := ps.ExtractRange(0x10000, 0x13000)
	if len(sub.Pages) != 1 || !sub.ZeroPages[0x11000] || !sub.LazyPages[0x12000] {
		t.Fatalf("extracted view wrong: %+v", sub)
	}
	if _, ok := sub.Pages[0x20000]; ok {
		t.Fatal("view leaked a page outside the range")
	}

	// Mutate the view the way RewriteThread does: drop, then rebuild.
	sub.DropRange(0x10000, 0x13000)
	if err := sub.WriteU64(0x10008, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	// The parent is untouched until absorb (fresh maps in the view).
	if !ps.ZeroPages[0x11000] || !ps.LazyPages[0x12000] {
		t.Fatal("mutating the view changed the parent's maps before absorb")
	}
	if ps.Pages[0x10000][0] != 1 {
		t.Fatal("parent page bytes changed before absorb")
	}

	ps.AbsorbRange(sub, 0x10000, 0x13000)
	if ps.ZeroPages[0x11000] || ps.LazyPages[0x12000] {
		t.Error("absorb kept dropped flag entries")
	}
	if v, err := ps.ReadU64(0x10008); err != nil || v != 0xDEADBEEF {
		t.Errorf("absorbed write lost: v=0x%x err=%v", v, err)
	}
	if pg := ps.Pages[0x20000]; pg[0] != 2 {
		t.Error("absorb touched a page outside the range")
	}
}
