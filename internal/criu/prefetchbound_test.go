package criu

import (
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/mem"
)

// slowSource serves the synthetic page pattern after a fixed delay, so
// prefetch requests pile up against the fan-out bound.
type slowSource struct {
	inner mapSource
	delay time.Duration
}

func (s *slowSource) FetchPage(addr uint64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.inner.FetchPage(addr)
}

// TestPrefetchFanoutBounded pins the prefetch goroutine bound: a window
// far larger than PrefetchWorkers must never have more than
// PrefetchWorkers requests in flight at once — the excess is skipped,
// not queued — and the realized peak is observable in Stats.
func TestPrefetchFanoutBounded(t *testing.T) {
	const bound = 3
	src := &slowSource{delay: 10 * time.Millisecond}
	srv, err := ServePages("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Prefetch:        64, // much larger than the bound
		PrefetchWorkers: bound,
		Conns:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Several demand fetches at scattered bases open several big
	// prefetch windows back to back.
	for i := uint64(0); i < 4; i++ {
		base := (1000 + 200*i) * mem.PageSize
		page, err := c.FetchPage(base)
		if err != nil {
			t.Fatal(err)
		}
		checkPage(t, base, page)
	}
	// Quiesce: every prefetch goroutine holds a semaphore slot until it
	// exits, so an idle client has zero active slots.
	deadline := time.Now().Add(5 * time.Second)
	for c.prefActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prefetches never drained: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	st := c.Stats()
	if st.PrefetchIssued == 0 {
		t.Fatal("no prefetch was issued; test exercised nothing")
	}
	if st.PrefetchPeak > bound {
		t.Errorf("prefetch peak %d exceeds the bound %d", st.PrefetchPeak, bound)
	}
	if st.PrefetchSkipped == 0 {
		t.Errorf("a 64-page window against a bound of %d skipped nothing: %+v", bound, st)
	}
	if got := st.PrefetchIssued + st.PrefetchSkipped; got < 4*64 {
		t.Errorf("windows not fully accounted: issued+skipped = %d, want >= %d", got, 4*64)
	}
}
