package criu_test

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
)

// pausedDump produces a real checkpoint of a paused denseWriter run plus
// the provider needed to restore it.
func pausedDump(t *testing.T) (*criu.ImageDir, criu.MapProvider) {
	t.Helper()
	pair, err := compiler.Compile(denseWriter)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Cores: 2, Quantum: 97})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/inc.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunBudget(p, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := monitor.New(k, p, pair.Meta).Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return dir, criu.MapProvider{"/bin/inc.sx86": pair.X86}
}

// TestRestorePreFlightRejectsShuffledPagemap: a checkpoint whose pagemap
// entries were reordered (as a buggy transformation or transport would
// leave them) must be rejected by Restore's static pre-flight with the
// invariant named, instead of silently restoring pages at wrong offsets.
func TestRestorePreFlightRejectsShuffledPagemap(t *testing.T) {
	dir, prov := pausedDump(t)
	raw, ok := dir.Get("pagemap.img")
	if !ok {
		t.Fatal("dump has no pagemap.img")
	}
	pm, err := criu.UnmarshalPagemap(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Entries) < 2 {
		t.Fatalf("need >=2 pagemap entries to shuffle, got %d", len(pm.Entries))
	}
	for i, j := 0, len(pm.Entries)-1; i < j; i, j = i+1, j-1 {
		pm.Entries[i], pm.Entries[j] = pm.Entries[j], pm.Entries[i]
	}
	dir.Put("pagemap.img", pm.Marshal())

	_, err = criu.Restore(kernel.New(kernel.Config{}), dir, prov)
	if err == nil {
		t.Fatal("Restore accepted a shuffled pagemap")
	}
	for _, want := range []string{"restore pre-flight", "pagemap-order"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestRestorePreFlightRejectsTruncatedPages: pages.img shorter than the
// pagemap promises is caught up front as pages-bytes.
func TestRestorePreFlightRejectsTruncatedPages(t *testing.T) {
	dir, prov := pausedDump(t)
	raw, ok := dir.Get("pages.img")
	if !ok || len(raw) == 0 {
		t.Fatal("dump has no page payload")
	}
	dir.Put("pages.img", raw[:len(raw)-1])

	_, err := criu.Restore(kernel.New(kernel.Config{}), dir, prov)
	if err == nil {
		t.Fatal("Restore accepted truncated pages.img")
	}
	if !strings.Contains(err.Error(), "pages-bytes") {
		t.Errorf("error %q does not mention pages-bytes", err)
	}
}
