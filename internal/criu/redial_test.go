package criu

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/mem"
)

// serveHelloThenGarbage is the pathological peer the redial guard exists
// for: it accepts every connection, answers the batch hello correctly,
// and then answers the first page request with bytes that violate the
// batch framing — over and over, on every redial, forever.
func serveHelloThenGarbage(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer func() { _ = conn.Close() }() // teardown of a deliberately broken conn
				req, err := readPageRequest(conn)
				if err != nil || !isHelloRequest(req) {
					return
				}
				if err := writeHelloAck(conn, imgproto.CodecNone); err != nil {
					return
				}
				if _, err := readPageRequest(conn); err != nil {
					return
				}
				// A full header of bad magic: the client's read loop must
				// desync (a short write would read as a plain EOF).
				garbage := make([]byte, pageBatchHdrLen+4)
				for i := range garbage {
					garbage[i] = 0xFF
				}
				_, _ = conn.Write(garbage)
			}(conn)
		}
	}()
}

// TestRedialBudgetExhausted pins the bounded-redial guard: against a
// server that accepts and negotiates but then breaks framing on every
// incarnation, the client must stop redialing after RedialBudget
// consecutive failures and fail fast with ErrRedialExhausted — not burn
// a full dial+timeout cycle per retry of every faulted page. Before the
// guard this test failed: the fetch error was a generic desync after
// MaxRetries+1 dials, Stats had no RedialsExhausted, and a second fetch
// dialed the hopeless server all over again.
func TestRedialBudgetExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }() // test server teardown
	serveHelloThenGarbage(t, ln)

	var dials atomic.Uint64
	const budget = 3
	c, err := DialPageServerOpts(ln.Addr().String(), PageClientOpts{
		Conns:        1,
		Codec:        imgproto.CodecNone,
		MaxRetries:   20,
		RetryBackoff: time.Millisecond,
		RedialBudget: budget,
		Dial: func(addr string) (net.Conn, error) {
			dials.Add(1)
			return net.DialTimeout("tcp", addr, time.Second)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }() // close after server is gone is still clean

	if _, err := c.FetchPage(0 * mem.PageSize); !errors.Is(err, ErrRedialExhausted) {
		t.Fatalf("fetch error = %v, want ErrRedialExhausted", err)
	}
	// The budget bounds total incarnations: the eager dial plus redials,
	// never one per retry attempt.
	if got := dials.Load(); got > budget {
		t.Errorf("dialed %d times, want <= %d (MaxRetries is 20)", got, budget)
	}
	st := c.Stats()
	if st.RedialsExhausted != 1 {
		t.Errorf("RedialsExhausted = %d, want 1", st.RedialsExhausted)
	}
	if st.BatchDesyncs == 0 {
		t.Error("no batch desyncs recorded despite the garbage frames")
	}

	// The poison is sticky: the next fetch fails immediately, without a
	// single new dial.
	before := dials.Load()
	if _, err := c.FetchPage(1 * mem.PageSize); !errors.Is(err, ErrRedialExhausted) {
		t.Fatalf("second fetch error = %v, want ErrRedialExhausted", err)
	}
	if got := dials.Load(); got != before {
		t.Errorf("exhausted slot dialed again (%d -> %d dials)", before, got)
	}
}

// TestRedialBudgetResetsOnGoodFrame pins the other half of the guard's
// contract: failures must be *consecutive* to exhaust the budget. A
// server that recovers after a bad incarnation resets the count, so a
// long-lived client never accumulates its way into poison.
func TestRedialBudgetResetsOnGoodFrame(t *testing.T) {
	src := &mapSource{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServePagesOpts(ln, src, PageServerOpts{})
	defer srv.Close()

	// Connect for real, then fail the next (budget-1) dials, repeatedly:
	// with consecutive counting the client stays healthy forever; with
	// cumulative counting it would poison on the second cycle.
	const budget = 3
	var dials atomic.Uint64
	c, err := DialPageServerOpts(srv.Addr(), PageClientOpts{
		Conns:        1,
		MaxRetries:   8,
		RetryBackoff: time.Millisecond,
		RedialBudget: budget,
		Dial: func(addr string) (net.Conn, error) {
			if dials.Add(1)%budget != 1 {
				return nil, errors.New("transient dial failure")
			}
			return net.DialTimeout("tcp", addr, time.Second)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }() // plain teardown

	for cycle := 0; cycle < 3; cycle++ {
		page, err := c.FetchPage(uint64(cycle) * mem.PageSize)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		checkPage(t, uint64(cycle)*mem.PageSize, page)
		// Break the live conn so the next cycle starts from a redial.
		c.conns[0].mu.Lock()
		cs := c.conns[0].cur
		c.conns[0].mu.Unlock()
		if cs != nil {
			c.conns[0].drop(cs, errors.New("test: forced teardown"))
		}
	}
	if got := c.Stats().RedialsExhausted; got != 0 {
		t.Errorf("RedialsExhausted = %d after interleaved recoveries, want 0", got)
	}
}
