package criu

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/updatecheck"
)

// BinaryProvider resolves executable paths (from the files image) to
// loaded binaries — the restore-side equivalent of the filesystem holding
// the two per-ISA executables.
type BinaryProvider interface {
	Open(path string) (*compiler.Binary, error)
}

// MapProvider is a BinaryProvider backed by a map.
type MapProvider map[string]*compiler.Binary

// Open implements BinaryProvider.
func (m MapProvider) Open(path string) (*compiler.Binary, error) {
	b, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("criu: no binary registered at %q", path)
	}
	return b, nil
}

// Register installs (or replaces) a binary at a path. The stack-shuffling
// policy uses this to publish the instrumented binary the restored process
// must execute.
func (m MapProvider) Register(path string, b *compiler.Binary) {
	m[path] = b
}

var _ BinaryProvider = MapProvider(nil)

// RestoreOpts selects optional restore behaviors; the zero value is the
// plain restore every migration uses.
type RestoreOpts struct {
	// Frames, when non-nil, installs every dumped page as a shared
	// copy-on-write frame from this cache instead of a private copy —
	// the clone fan-out path, where N restores of one checkpoint share
	// resident pages until first write.
	Frames *kernel.FrameCache
}

// Restore rebuilds a process from an image directory on kernel k. Lazy
// pages (post-copy) are left unpopulated; install a fault handler on the
// returned process's address space before running it.
//
// Threads parked at a trap PC are nudged to the site's resume PC (the
// checker start) and the DAPPER flag is cleared, so the restored process
// continues transparently.
func Restore(k *kernel.Kernel, dir *ImageDir, provider BinaryProvider) (*kernel.Process, error) {
	return RestoreWith(k, dir, provider, RestoreOpts{})
}

// RestoreWith is Restore with options.
func RestoreWith(k *kernel.Kernel, dir *ImageDir, provider BinaryProvider, opts RestoreOpts) (*kernel.Process, error) {
	// Pre-flight: a corrupt or truncated image set (shuffled pagemap,
	// missing core, flagged entries carrying bytes, ...) must fail here
	// with a named invariant, not mid-restore with pages installed at the
	// wrong addresses. VerifyLink permits in_parent entries; the explicit
	// flatten check below still owns that error.
	if err := imgcheck.VerifyLink(dir); err != nil {
		return nil, fmt.Errorf("criu: restore pre-flight: %w", err)
	}
	invRaw, ok := dir.Get("inventory.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing inventory.img")
	}
	inv, err := UnmarshalInventory(invRaw)
	if err != nil {
		return nil, err
	}
	filesRaw, ok := dir.Get("files.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing files.img")
	}
	files, err := UnmarshalFiles(filesRaw)
	if err != nil {
		return nil, err
	}
	bin, err := provider.Open(files.ExePath)
	if err != nil {
		return nil, err
	}
	if bin.Arch != inv.Arch {
		return nil, fmt.Errorf("criu: binary %q is %v but image is %v", files.ExePath, bin.Arch, inv.Arch)
	}
	if bin.Meta != nil {
		// The rewriter trusts the stack map's cross-ISA address alignment;
		// verify it before nudging any thread through SiteByTrapPC.
		if err := imgcheck.VerifyMeta(bin.Meta); err != nil {
			return nil, fmt.Errorf("criu: restore pre-flight: binary %q: %w", files.ExePath, err)
		}
		// And the image must actually belong to this binary: thread PCs
		// and stack return addresses that resolve nowhere in its stack
		// maps mean version skew, best rejected before pages install.
		if err := imgcheck.VerifyTargetBinary(dir, &updatecheck.Binary{
			Arch: bin.Arch, Text: bin.Text, Symbols: bin.Symbols, Meta: bin.Meta,
		}); err != nil {
			return nil, fmt.Errorf("criu: restore pre-flight: binary %q: %w", files.ExePath, err)
		}
	}
	mmRaw, ok := dir.Get("mm.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing mm.img")
	}
	mm, err := UnmarshalMM(mmRaw)
	if err != nil {
		return nil, err
	}

	as := mem.NewAddressSpace()
	heapMapped := false
	for _, v := range mm.VMAs {
		if err := as.Map(mem.VMA{Start: v.Start, End: v.End, Kind: mem.VMAKind(v.Kind), Prot: v.Prot, TID: v.TID}); err != nil {
			return nil, fmt.Errorf("criu: restore vma: %w", err)
		}
		if mem.VMAKind(v.Kind) == mem.VMAHeap {
			heapMapped = true
		}
	}
	// Code pages load from the executable; dumped pages overlay them.
	if err := as.WriteBytes(isa.TextBase, bin.Text); err != nil {
		return nil, fmt.Errorf("criu: restore text: %w", err)
	}
	ps, err := LoadPageSet(dir)
	if err != nil {
		return nil, err
	}
	if len(ps.ParentPages) > 0 {
		return nil, fmt.Errorf("criu: image has %d unresolved in_parent pages; flatten the chain (FlattenChain) before restore", len(ps.ParentPages))
	}
	if len(ps.DeltaPages) > 0 {
		return nil, fmt.Errorf("criu: image has %d unresolved XOR-delta pages; flatten the chain (FlattenChain) before restore", len(ps.DeltaPages))
	}
	for addr, pg := range ps.Pages {
		if opts.Frames != nil {
			idx := addr / mem.PageSize
			as.InstallSharedPage(idx, opts.Frames.Frame(idx, pg))
			continue
		}
		as.InstallPage(addr/mem.PageSize, pg)
	}
	// Zero pages normally stay demand-zero, but a post-copy restore
	// installs a fault handler: materialize them locally so they never
	// round-trip to the page server.
	if len(ps.LazyPages) > 0 {
		for addr := range ps.ZeroPages {
			as.InstallPage(addr/mem.PageSize, nil)
		}
	}

	coder := compiler.CoderFor(inv.Arch)
	p := kernel.NewRestoredProcess(inv.Arch, coder, as)
	p.ExePath = files.ExePath
	p.Entry = bin.Entry
	p.ThreadExit = bin.ThreadExit
	p.Brk = mm.Brk
	if heapMapped {
		p.MarkHeapMapped()
	}
	for _, tid := range inv.TIDs {
		raw, ok := dir.Get(CoreName(tid))
		if !ok {
			return nil, fmt.Errorf("criu: missing %s", CoreName(tid))
		}
		core, err := UnmarshalCore(raw)
		if err != nil {
			return nil, err
		}
		t := &kernel.Thread{
			TID: core.TID, Regs: core.Regs, State: kernel.ThreadRunnable,
			StackLow: core.StackLow, StackHigh: core.StackHigh, TLSBlock: core.TLSBlock,
		}
		if site, ok := bin.Meta.SiteByTrapPC(inv.Arch, t.Regs.PC); ok {
			t.Regs.PC = site.PCs[archIdx(inv.Arch)].ResumePC
		}
		p.AddRestoredThread(t)
	}
	for _, m := range inv.Mutexes {
		p.RestoreMutex(m.ID, m.Holder, m.Recurse)
	}
	// Clear the transformation flag so checkers fall through.
	if err := as.WriteU64(isa.FlagAddr, 0); err != nil {
		return nil, fmt.Errorf("criu: clear flag: %w", err)
	}
	k.AdoptProcess(p)
	return p, nil
}

func archIdx(a isa.Arch) int {
	if a == isa.SX86 {
		return 0
	}
	return 1
}
