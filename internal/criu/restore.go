package criu

import (
	"fmt"
	"sort"
	"time"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/parallel"
	"github.com/dapper-sim/dapper/internal/updatecheck"
)

// BinaryProvider resolves executable paths (from the files image) to
// loaded binaries — the restore-side equivalent of the filesystem holding
// the two per-ISA executables.
type BinaryProvider interface {
	Open(path string) (*compiler.Binary, error)
}

// MapProvider is a BinaryProvider backed by a map.
type MapProvider map[string]*compiler.Binary

// Open implements BinaryProvider.
func (m MapProvider) Open(path string) (*compiler.Binary, error) {
	b, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("criu: no binary registered at %q", path)
	}
	return b, nil
}

// Register installs (or replaces) a binary at a path. The stack-shuffling
// policy uses this to publish the instrumented binary the restored process
// must execute.
func (m MapProvider) Register(path string, b *compiler.Binary) {
	m[path] = b
}

var _ BinaryProvider = MapProvider(nil)

// RestoreOpts selects optional restore behaviors; the zero value is the
// plain restore every migration uses.
type RestoreOpts struct {
	// Frames, when non-nil, installs every dumped page as a shared
	// copy-on-write frame from this cache instead of a private copy —
	// the clone fan-out path, where N restores of one checkpoint share
	// resident pages until first write.
	Frames *kernel.FrameCache
	// Workers bounds the restore's parallel stages: the imgcheck
	// pre-flight sweeps and the page-frame preparation shards. Values
	// <= 0 select runtime.NumCPU(); 1 reproduces the serial restore.
	// Restored address-space contents are byte-identical for every
	// worker count.
	Workers int
	// Obs, if set, receives restore telemetry: the restore.pages
	// counter, restore.verify_ns / restore.install_ns histograms, and a
	// "restore" span whose verify/install (and, when streaming, stream)
	// children sum exactly to it. Host wall time by definition — the
	// modeled restore cost lives in cluster's timing model. Nil disables
	// recording.
	Obs *obs.Registry
}

// Restore rebuilds a process from an image directory on kernel k. Lazy
// pages (post-copy) are left unpopulated; install a fault handler on the
// returned process's address space before running it.
//
// Threads parked at a trap PC are nudged to the site's resume PC (the
// checker start) and the DAPPER flag is cleared, so the restored process
// continues transparently.
func Restore(k *kernel.Kernel, dir *ImageDir, provider BinaryProvider) (*kernel.Process, error) {
	return RestoreWith(k, dir, provider, RestoreOpts{})
}

// RestoreWith is Restore with options.
func RestoreWith(k *kernel.Kernel, dir *ImageDir, provider BinaryProvider, opts RestoreOpts) (*kernel.Process, error) {
	verifyStart := time.Now()
	// Pre-flight: a corrupt or truncated image set (shuffled pagemap,
	// missing core, flagged entries carrying bytes, ...) must fail here
	// with a named invariant, not mid-restore with pages installed at the
	// wrong addresses. VerifyLink permits in_parent entries; the explicit
	// flatten check below still owns that error. Streamed restores run
	// the same invariants incrementally (imgcheck.StreamVerifier); this
	// whole-image pass is the non-streamed fallback.
	if err := imgcheck.VerifyLinkWith(dir, imgcheck.Opts{Workers: opts.Workers}); err != nil {
		return nil, fmt.Errorf("criu: restore pre-flight: %w", err)
	}
	env, err := decodeRestoreMeta(dir, provider)
	if err != nil {
		return nil, err
	}
	if env.bin.Meta != nil {
		// The image must actually belong to this binary: thread PCs and
		// stack return addresses that resolve nowhere in its stack maps
		// mean version skew, best rejected before pages install.
		if err := imgcheck.VerifyTargetBinary(dir, env.updateBinary()); err != nil {
			return nil, fmt.Errorf("criu: restore pre-flight: binary %q: %w", env.files.ExePath, err)
		}
	}
	verifyDur := time.Since(verifyStart)

	installStart := time.Now()
	if err := env.buildAddressSpace(); err != nil {
		return nil, err
	}
	ps, err := LoadPageSet(dir)
	if err != nil {
		return nil, err
	}
	if len(ps.ParentPages) > 0 {
		return nil, fmt.Errorf("criu: image has %d unresolved in_parent pages; flatten the chain (FlattenChain) before restore", len(ps.ParentPages))
	}
	if len(ps.DeltaPages) > 0 {
		return nil, fmt.Errorf("criu: image has %d unresolved XOR-delta pages; flatten the chain (FlattenChain) before restore", len(ps.DeltaPages))
	}
	installed := installPages(env.as, ps, opts)
	p, err := env.buildProcess(k, dir)
	if err != nil {
		return nil, err
	}
	installDur := time.Since(installStart)
	recordRestoreObs(opts.Obs, installed, 0, verifyDur, installDur)
	return p, nil
}

// restoreEnv is the decoded restore metadata shared by the whole-image
// (RestoreWith) and streaming (StreamRestorer) paths: the inventory,
// files, and mm views, the opened binary, and the address space under
// construction.
type restoreEnv struct {
	inv        *InventoryImage
	files      *FilesImage
	mm         *MMImage
	bin        *compiler.Binary
	as         *mem.AddressSpace
	heapMapped bool
}

// decodeRestoreMeta decodes inventory/files/mm from the directory and
// opens the binary, checking the architecture and the stack map's
// cross-ISA alignment. Image-level pre-flights (VerifyLink, the
// image-vs-binary skew check) are the caller's to schedule — before
// everything for the whole-image path, interleaved with the wire for the
// streaming path.
func decodeRestoreMeta(dir *ImageDir, provider BinaryProvider) (*restoreEnv, error) {
	invRaw, ok := dir.Get("inventory.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing inventory.img")
	}
	inv, err := UnmarshalInventory(invRaw)
	if err != nil {
		return nil, err
	}
	filesRaw, ok := dir.Get("files.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing files.img")
	}
	files, err := UnmarshalFiles(filesRaw)
	if err != nil {
		return nil, err
	}
	bin, err := provider.Open(files.ExePath)
	if err != nil {
		return nil, err
	}
	if bin.Arch != inv.Arch {
		return nil, fmt.Errorf("criu: binary %q is %v but image is %v", files.ExePath, bin.Arch, inv.Arch)
	}
	if bin.Meta != nil {
		// The rewriter trusts the stack map's cross-ISA address alignment;
		// verify it before nudging any thread through SiteByTrapPC.
		if err := imgcheck.VerifyMeta(bin.Meta); err != nil {
			return nil, fmt.Errorf("criu: restore pre-flight: binary %q: %w", files.ExePath, err)
		}
	}
	mmRaw, ok := dir.Get("mm.img")
	if !ok {
		return nil, fmt.Errorf("criu: missing mm.img")
	}
	mm, err := UnmarshalMM(mmRaw)
	if err != nil {
		return nil, err
	}
	return &restoreEnv{inv: inv, files: files, mm: mm, bin: bin}, nil
}

// updateBinary adapts the opened binary for updatecheck's image-vs-binary
// version-skew pass.
func (env *restoreEnv) updateBinary() *updatecheck.Binary {
	return &updatecheck.Binary{
		Arch: env.bin.Arch, Text: env.bin.Text, Symbols: env.bin.Symbols, Meta: env.bin.Meta,
	}
}

// buildAddressSpace maps the VMAs and loads the executable's text (dumped
// pages overlay it later).
func (env *restoreEnv) buildAddressSpace() error {
	env.as = mem.NewAddressSpace()
	for _, v := range env.mm.VMAs {
		if err := env.as.Map(mem.VMA{Start: v.Start, End: v.End, Kind: mem.VMAKind(v.Kind), Prot: v.Prot, TID: v.TID}); err != nil {
			return fmt.Errorf("criu: restore vma: %w", err)
		}
		if mem.VMAKind(v.Kind) == mem.VMAHeap {
			env.heapMapped = true
		}
	}
	if err := env.as.WriteBytes(isa.TextBase, env.bin.Text); err != nil {
		return fmt.Errorf("criu: restore text: %w", err)
	}
	return nil
}

// buildProcess finishes the restore once every page is installed: thread
// cores (with trap-PC nudging), mutexes, the cleared DAPPER flag, and
// adoption by the kernel.
func (env *restoreEnv) buildProcess(k *kernel.Kernel, dir *ImageDir) (*kernel.Process, error) {
	coder := compiler.CoderFor(env.inv.Arch)
	p := kernel.NewRestoredProcess(env.inv.Arch, coder, env.as)
	p.ExePath = env.files.ExePath
	p.Entry = env.bin.Entry
	p.ThreadExit = env.bin.ThreadExit
	p.Brk = env.mm.Brk
	if env.heapMapped {
		p.MarkHeapMapped()
	}
	for _, tid := range env.inv.TIDs {
		raw, ok := dir.Get(CoreName(tid))
		if !ok {
			return nil, fmt.Errorf("criu: missing %s", CoreName(tid))
		}
		core, err := UnmarshalCore(raw)
		if err != nil {
			return nil, err
		}
		t := &kernel.Thread{
			TID: core.TID, Regs: core.Regs, State: kernel.ThreadRunnable,
			StackLow: core.StackLow, StackHigh: core.StackHigh, TLSBlock: core.TLSBlock,
		}
		if site, ok := env.bin.Meta.SiteByTrapPC(env.inv.Arch, t.Regs.PC); ok {
			t.Regs.PC = site.PCs[archIdx(env.inv.Arch)].ResumePC
		}
		p.AddRestoredThread(t)
	}
	for _, m := range env.inv.Mutexes {
		p.RestoreMutex(m.ID, m.Holder, m.Recurse)
	}
	// Clear the transformation flag so checkers fall through.
	if err := env.as.WriteU64(isa.FlagAddr, 0); err != nil {
		return nil, fmt.Errorf("criu: clear flag: %w", err)
	}
	k.AdoptProcess(p)
	return p, nil
}

// preparedFrame pairs a page index with its ready-to-adopt frame.
type preparedFrame struct {
	idx    uint64
	frame  *mem.Page
	shared bool
}

// installPages populates the address space from the page set, sharding
// the expensive half — the 4K copy into each frame — over the worker
// pool. Workers only read the page-set maps (safe concurrently) and
// call the mutex-protected FrameCache; the AddressSpace, which is not
// concurrency-safe, is touched exclusively by the serial adoption loop
// on the calling goroutine. Addresses are sorted and shards contiguous,
// so contents are byte-identical for every worker count.
//
// Zero pages normally stay demand-zero, but a post-copy restore installs
// a fault handler: they fold into the same sharded install (as prepared
// zero frames) so a zero page never round-trips to the page server.
func installPages(as *mem.AddressSpace, ps *PageSet, opts RestoreOpts) int {
	addrs := make([]uint64, 0, len(ps.Pages)+len(ps.ZeroPages))
	for a := range ps.Pages {
		addrs = append(addrs, a)
	}
	if len(ps.LazyPages) > 0 {
		for a := range ps.ZeroPages {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	chunks := parallel.Chunks(len(addrs), parallel.Normalize(opts.Workers))
	shards := make([][]preparedFrame, len(chunks))
	_ = parallel.New(opts.Workers).ForEach(len(chunks), func(ci int) error {
		c := chunks[ci]
		out := make([]preparedFrame, 0, c.Hi-c.Lo)
		for _, a := range addrs[c.Lo:c.Hi] {
			idx := a / mem.PageSize
			pg, hasData := ps.Pages[a]
			if opts.Frames != nil && hasData {
				out = append(out, preparedFrame{idx: idx, frame: opts.Frames.Frame(idx, pg), shared: true})
				continue
			}
			// pg is nil for the folded-in zero pages: a prepared zero frame.
			out = append(out, preparedFrame{idx: idx, frame: mem.PreparePage(pg)})
		}
		shards[ci] = out
		return nil
	})
	n := 0
	for _, shard := range shards {
		for _, pf := range shard {
			if pf.shared {
				as.InstallSharedPage(pf.idx, pf.frame)
			} else {
				as.InstallPreparedPage(pf.idx, pf.frame)
			}
			n++
		}
	}
	return n
}

// recordRestoreObs emits the restore telemetry: the pages counter, the
// phase histograms, and a "restore" span whose children — stream (when
// the image arrived through the streaming pipeline), verify, install —
// sum exactly to it.
func recordRestoreObs(reg *obs.Registry, pages int, stream, verify, install time.Duration) {
	root := reg.NewSpan("restore")
	if stream > 0 {
		root.Child("stream").Finish(stream)
	}
	root.Child("verify").Finish(verify)
	root.Child("install").Finish(install)
	root.Finish(stream + verify + install)
	reg.Counter("restore.pages").Add(uint64(pages))
	reg.Histogram("restore.verify_ns").Observe(verify)
	reg.Histogram("restore.install_ns").Observe(install)
}

func archIdx(a isa.Arch) int {
	if a == isa.SX86 {
		return 0
	}
	return 1
}
