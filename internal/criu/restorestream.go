package criu

import (
	"fmt"
	"sync"
	"time"

	"github.com/dapper-sim/dapper/internal/image"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/parallel"
)

// StreamSink is the image-stream consumer interface, re-exported from
// internal/image for transport callers.
type StreamSink = image.StreamSink

// streamBatchBuffer bounds how many page batches may queue between the
// wire goroutine and the installer before the wire blocks (backpressure
// instead of unbounded buffering).
const streamBatchBuffer = 64

// pageBatch is a run of completed payload pages [Lo, Hi) by payload
// index, handed from the wire to the installer.
type pageBatch struct{ lo, hi int }

// dedupPage is a pagemap dedup reference scheduled for installation once
// its source page's payload has landed.
type dedupPage struct {
	addr uint64 // page to install
	src  int    // payload index of the source data page
}

// StreamRestoreStats describes the realized streaming-restore pipeline.
type StreamRestoreStats struct {
	// Pages counts pages installed into the address space (data, dedup,
	// and materialized zero pages).
	Pages int
	// Batches counts page batches handed to the background installer.
	// Each wire chunk dispatches at most one batch, so Batches >= 2
	// proves the installer started consuming before the final chunk
	// arrived — the structural witness that the overlap engaged.
	Batches int
	// PayloadBytes is the pages.img payload size.
	PayloadBytes int
}

// StreamRestorer restores a process from an image *stream* instead of a
// materialized directory: it implements image.StreamSink, so the
// transport feeds it files as segments decompress. Because image names
// sort metadata-first, the restorer verifies invariants incrementally
// (imgcheck.StreamVerifier), maps VMAs, and loads the text as soon as
// pages.img is announced — then installs page batches on a background
// goroutine while later payload segments are still on the wire. The
// receive/decode, verify, and install stages of the classic serial
// restore overlap instead of running back-to-back.
//
// Usage: construct, feed the wire through an image.StreamSplitter (the
// sink methods return any error, poisoning the stream), then call
// Finish exactly once — on success it returns the restored process,
// and on any path it reaps the background installer. The restorer is
// not safe for concurrent sinks; one wire goroutine feeds it.
type StreamRestorer struct {
	k        *kernel.Kernel
	provider BinaryProvider
	opts     RestoreOpts

	sv  *imgcheck.StreamVerifier
	env *restoreEnv

	// Current metadata file under reception.
	cur string
	buf []byte

	// pages.img reception. payload is sized up front from the announced
	// length: the wire goroutine writes [written, written+n) and the
	// installer reads only batches that completed before their channel
	// send, so the two never touch the same bytes.
	inPages   bool
	pagesSeen bool
	payload   []byte
	written   int

	// Install schedule decoded from the pagemap when pages.img begins.
	dataAddrs []uint64       // payload order: vaddr of each data page
	byAddr    map[uint64]int // data vaddr -> payload index
	dedups    []dedupPage

	batches   chan pageBatch
	wg        sync.WaitGroup
	installed int // owned by the installer goroutine until Finish joins

	stats    StreamRestoreStats
	start    time.Time
	verifyNs time.Duration
	// installNs counts install work on the wire/Finish goroutine only
	// (address-space build, zero pages, the post-wire tail); the
	// background installer's work hides under the stream phase.
	installNs time.Duration

	err      error
	finished bool
}

// NewStreamRestorer returns a restorer for one image stream arriving on
// kernel k. opts carries the worker bound, the COW frame cache, and the
// telemetry registry exactly as for RestoreWith.
func NewStreamRestorer(k *kernel.Kernel, provider BinaryProvider, opts RestoreOpts) *StreamRestorer {
	return &StreamRestorer{
		k: k, provider: provider, opts: opts,
		sv: imgcheck.NewStreamVerifier(imgcheck.Opts{Workers: opts.Workers}),
	}
}

// fail poisons the stream; every later sink call and Finish report err.
func (sr *StreamRestorer) fail(err error) error {
	if sr.err == nil {
		sr.err = err
	}
	return sr.err
}

// BeginFile implements image.StreamSink.
func (sr *StreamRestorer) BeginFile(name string, size int) error {
	if sr.err != nil {
		return sr.err
	}
	if name == "pages.img" {
		return sr.beginPages(size)
	}
	sr.cur = name
	sr.buf = make([]byte, 0, size)
	return nil
}

// FileChunk implements image.StreamSink.
func (sr *StreamRestorer) FileChunk(p []byte) error {
	if sr.err != nil {
		return sr.err
	}
	if !sr.inPages {
		sr.buf = append(sr.buf, p...)
		return nil
	}
	copy(sr.payload[sr.written:], p)
	done := sr.written / mem.PageSize
	sr.written += len(p)
	if newDone := sr.written / mem.PageSize; newDone > done {
		// The channel send happens-before the installer's receive, so the
		// installer only ever reads payload bytes fully written above.
		sr.batches <- pageBatch{lo: done, hi: newDone}
		sr.stats.Batches++
	}
	return nil
}

// EndFile implements image.StreamSink.
func (sr *StreamRestorer) EndFile() error {
	if sr.err != nil {
		return sr.err
	}
	if sr.inPages {
		sr.inPages = false
		sr.sv.File("pages.img", sr.payload)
		return nil
	}
	sr.sv.File(sr.cur, sr.buf)
	sr.cur, sr.buf = "", nil
	return nil
}

// beginPages is the pivot of the pipeline: every metadata file has
// landed (sorted stream order), so verification and address-space
// construction run NOW — while the page payload is still on the wire —
// and the background installer starts consuming batches.
func (sr *StreamRestorer) beginPages(size int) error {
	if sr.pagesSeen {
		return sr.fail(fmt.Errorf("criu: stream restore: pages.img announced twice"))
	}
	sr.pagesSeen = true

	verifyStart := time.Now()
	if sr.start.IsZero() {
		sr.start = verifyStart
	}
	if err := sr.sv.VerifyMeta(size); err != nil {
		return sr.fail(fmt.Errorf("criu: stream restore pre-flight: %w", err))
	}
	env, err := decodeRestoreMeta(sr.sv.Dir(), sr.provider)
	if err != nil {
		return sr.fail(err)
	}
	sr.env = env
	sr.verifyNs += time.Since(verifyStart)

	installStart := time.Now()
	if err := env.buildAddressSpace(); err != nil {
		return sr.fail(err)
	}
	// Decode the install schedule from the pagemap: data pages in payload
	// order, dedup references deferred until their source bytes land,
	// zero pages materialized immediately when the image is lazy (they
	// must never round-trip to the page server), lazy pages left for the
	// fault handler. Unflattened incremental images are refused exactly
	// like RestoreWith.
	pmRaw, _ := sr.sv.Dir().Get("pagemap.img")
	pm, err := UnmarshalPagemap(pmRaw)
	if err != nil {
		return sr.fail(err)
	}
	sr.byAddr = make(map[uint64]int)
	var zeroAddrs []uint64
	lazyPages, parentPages, deltaPages := 0, 0, 0
	for _, en := range pm.Entries {
		for i := uint32(0); i < en.NrPages; i++ {
			addr := en.Vaddr + uint64(i)*mem.PageSize
			switch {
			case en.Delta:
				deltaPages++
			case en.Dedup:
				src, ok := sr.byAddr[en.DedupSrc+uint64(i)*mem.PageSize]
				if !ok {
					return sr.fail(fmt.Errorf("criu: stream restore: dedup page 0x%x references 0x%x, which holds no data", addr, en.DedupSrc+uint64(i)*mem.PageSize))
				}
				sr.dedups = append(sr.dedups, dedupPage{addr: addr, src: src})
			case en.Lazy:
				lazyPages++
			case en.InParent:
				parentPages++
			case en.Zero:
				zeroAddrs = append(zeroAddrs, addr)
			default:
				sr.byAddr[addr] = len(sr.dataAddrs)
				sr.dataAddrs = append(sr.dataAddrs, addr)
			}
		}
	}
	if parentPages > 0 {
		return sr.fail(fmt.Errorf("criu: image has %d unresolved in_parent pages; flatten the chain (FlattenChain) before restore", parentPages))
	}
	if deltaPages > 0 {
		return sr.fail(fmt.Errorf("criu: image has %d unresolved XOR-delta pages; flatten the chain (FlattenChain) before restore", deltaPages))
	}
	if want := len(sr.dataAddrs) * mem.PageSize; want != size {
		return sr.fail(fmt.Errorf("criu: stream restore: pages.img announces %d bytes, pagemap describes %d", size, want))
	}
	if lazyPages > 0 {
		for _, addr := range zeroAddrs {
			env.as.InstallPreparedPage(addr/mem.PageSize, mem.PreparePage(nil))
			sr.installed++
		}
	}
	sr.installNs += time.Since(installStart)

	sr.inPages = true
	sr.payload = make([]byte, size)
	sr.written = 0
	sr.stats.PayloadBytes = size
	sr.batches = make(chan pageBatch, streamBatchBuffer)
	// The installer owns the address space from here until Finish joins
	// it; its frame copies run under the stream, not after it.
	sr.wg.Add(1)
	go func() {
		defer sr.wg.Done()
		for b := range sr.batches {
			sr.installBatch(b.lo, b.hi)
		}
	}()
	return nil
}

// installBatch prepares frames for payload pages [lo, hi) on the worker
// pool and adopts them serially — the same two-phase shape as the
// whole-image installPages, scoped to one batch.
func (sr *StreamRestorer) installBatch(lo, hi int) {
	prepared := make([]preparedFrame, hi-lo)
	_ = parallel.New(sr.opts.Workers).ForEach(hi-lo, func(i int) error {
		pi := lo + i
		idx := sr.dataAddrs[pi] / mem.PageSize
		data := sr.payload[pi*mem.PageSize : (pi+1)*mem.PageSize]
		if sr.opts.Frames != nil {
			prepared[i] = preparedFrame{idx: idx, frame: sr.opts.Frames.Frame(idx, data), shared: true}
			return nil
		}
		prepared[i] = preparedFrame{idx: idx, frame: mem.PreparePage(data)}
		return nil
	})
	for _, pf := range prepared {
		if pf.shared {
			sr.env.as.InstallSharedPage(pf.idx, pf.frame)
		} else {
			sr.env.as.InstallPreparedPage(pf.idx, pf.frame)
		}
		sr.installed++
	}
}

// Stats returns the realized pipeline statistics. Valid after Finish.
func (sr *StreamRestorer) Stats() StreamRestoreStats { return sr.stats }

// Dir returns the image directory accumulated from the stream (every
// metadata file, plus pages.img once complete).
func (sr *StreamRestorer) Dir() *ImageDir { return sr.sv.Dir() }

// Finish completes the restore after the stream has been fully fed (the
// splitter's Close returned nil): it joins the background installer,
// resolves dedup references, runs the image-vs-binary version-skew check
// over the now-complete directory, and builds the process. Finish must
// be called exactly once, on every path — including after a sink error,
// where it reaps the installer and returns the poisoning error.
func (sr *StreamRestorer) Finish() (*kernel.Process, error) {
	if sr.finished {
		return nil, fmt.Errorf("criu: stream restore: Finish called twice")
	}
	sr.finished = true
	if sr.batches != nil {
		close(sr.batches)
		sr.wg.Wait()
		sr.batches = nil
	}
	if sr.err != nil {
		return nil, sr.err
	}
	if !sr.pagesSeen {
		return nil, fmt.Errorf("criu: stream restore: stream ended before pages.img")
	}
	if sr.inPages || sr.written != len(sr.payload) {
		return nil, fmt.Errorf("criu: stream restore: pages.img truncated: %d of %d bytes", sr.written, len(sr.payload))
	}

	installStart := time.Now()
	// Dedup references resolve against payload bytes, all of which have
	// landed by now (sources point strictly backwards, but batching makes
	// "after the wire" the simplest sound point to install them).
	for _, dp := range sr.dedups {
		idx := dp.addr / mem.PageSize
		data := sr.payload[dp.src*mem.PageSize : (dp.src+1)*mem.PageSize]
		if sr.opts.Frames != nil {
			sr.env.as.InstallSharedPage(idx, sr.opts.Frames.Frame(idx, data))
		} else {
			sr.env.as.InstallPreparedPage(idx, mem.PreparePage(data))
		}
		sr.installed++
	}
	sr.installNs += time.Since(installStart)

	verifyStart := time.Now()
	if sr.env.bin.Meta != nil {
		// Version skew check needs the stack words in pages.img, so in
		// streaming mode it is the one pre-flight that waits for the
		// payload. Nothing has run: a failure still discards everything.
		if err := imgcheck.VerifyTargetBinary(sr.sv.Dir(), sr.env.updateBinary()); err != nil {
			return nil, fmt.Errorf("criu: stream restore pre-flight: binary %q: %w", sr.env.files.ExePath, err)
		}
	}
	sr.verifyNs += time.Since(verifyStart)

	buildStart := time.Now()
	p, err := sr.env.buildProcess(sr.k, sr.sv.Dir())
	if err != nil {
		return nil, err
	}
	sr.installNs += time.Since(buildStart)
	sr.stats.Pages = sr.installed

	// Span contract: stream + verify + install sum exactly to the
	// restore's wall time; the background installer's work hides inside
	// the stream phase, which is how the overlap shows up in the tree.
	total := time.Since(sr.start)
	streamNs := total - sr.verifyNs - sr.installNs
	if streamNs < 0 {
		streamNs = 0
	}
	recordRestoreObs(sr.opts.Obs, sr.installed, streamNs, sr.verifyNs, sr.installNs)
	return p, nil
}

var _ image.StreamSink = (*StreamRestorer)(nil)
