package criu_test

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/image"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
)

// pausedDupPair is pausedDupProc plus the compiled pair, for tests that
// need to restore (and therefore need the binary provider).
func pausedDupPair(t *testing.T) (*kernel.Process, *compiler.Pair) {
	t.Helper()
	pair, err := compiler.Compile(dupHeavy)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Cores: 2, Quantum: 97})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/dup.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	alive, err := k.RunBudget(p, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if !alive {
		t.Fatal("program finished before the dump point")
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	return p, pair
}

// streamRestore pushes dir's marshaled bytes through a StreamSplitter
// into a StreamRestorer in chunkSize pieces, returning the restored
// process and the restorer (for stats).
func streamRestore(t *testing.T, k *kernel.Kernel, prov criu.BinaryProvider, dir *criu.ImageDir, opts criu.RestoreOpts, chunkSize int) (*kernel.Process, *criu.StreamRestorer) {
	t.Helper()
	sr := criu.NewStreamRestorer(k, prov, opts)
	sp := image.NewStreamSplitter(sr)
	blob := dir.Marshal()
	for off := 0; off < len(blob); off += chunkSize {
		end := off + chunkSize
		if end > len(blob) {
			end = len(blob)
		}
		if _, err := sp.Write(blob[off:end]); err != nil {
			if _, ferr := sr.Finish(); ferr == nil {
				t.Fatalf("splitter errored (%v) but Finish succeeded", err)
			}
			t.Fatalf("stream write: %v", err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("stream close: %v", err)
	}
	p, err := sr.Finish()
	if err != nil {
		t.Fatalf("stream finish: %v", err)
	}
	return p, sr
}

// asSnapshot serializes an address space's populated pages in index
// order — the byte-identity fingerprint for the worker matrix.
func asSnapshot(as *mem.AddressSpace) []byte {
	idxs := as.PopulatedPages()
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var buf bytes.Buffer
	for _, idx := range idxs {
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], idx)
		buf.Write(hdr[:])
		data, _ := as.PageData(idx)
		buf.Write(data)
	}
	return buf.Bytes()
}

// TestStreamRestoreMatchesRestore: the streamed pipeline must land the
// exact memory image and console behavior of the classic whole-image
// restore.
func TestStreamRestoreMatchesRestore(t *testing.T) {
	p, pair := pausedDupPair(t)
	dir, err := criu.Dump(p, criu.DumpOpts{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	prov := criu.MapProvider{"/bin/dup.sx86": pair.X86}

	k1 := kernel.New(kernel.Config{Cores: 2})
	p1, err := criu.Restore(k1, dir, prov)
	if err != nil {
		t.Fatal(err)
	}
	k2 := kernel.New(kernel.Config{Cores: 2})
	// 4 KiB chunks: the dedup-shrunk payload still spans several chunks,
	// so the installer provably consumes batches before the stream ends.
	p2, sr := streamRestore(t, k2, prov, dir, criu.RestoreOpts{Workers: 4}, 4<<10)

	if got, want := asSnapshot(p2.AS), asSnapshot(p1.AS); !bytes.Equal(got, want) {
		t.Fatal("streamed restore produced a different memory image")
	}
	if st := sr.Stats(); st.Pages == 0 || st.Batches < 2 {
		t.Errorf("stats = %+v, want pages installed across >= 2 batches", st)
	}
	if err := k1.Run(p1); err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(p2); err != nil {
		t.Fatal(err)
	}
	if p1.ConsoleString() != p2.ConsoleString() {
		t.Errorf("console diverged: %q vs %q", p1.ConsoleString(), p2.ConsoleString())
	}
}

// TestRestoreWorkerMatrixByteIdentical is the satellite byte-identity
// matrix: worker counts {1, 4, NumCPU} x frame sharing {private, COW
// cache} x image shapes {vanilla, flattened incremental, streamed} must
// all restore the identical memory image. Run under -race this also
// shakes out install-path data races.
func TestRestoreWorkerMatrixByteIdentical(t *testing.T) {
	dupProc, dupPair := pausedDupPair(t)
	vanilla, err := criu.Dump(dupProc, criu.DumpOpts{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	chain, _ := buildChain(t, sparseWriter, isa.SX86, 3, 7_000)
	flat, err := criu.FlattenChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	sparsePair, err := compiler.Compile(sparseWriter)
	if err != nil {
		t.Fatal(err)
	}

	images := []struct {
		name string
		dir  *criu.ImageDir
		prov criu.MapProvider
	}{
		{"vanilla", vanilla, criu.MapProvider{"/bin/dup.sx86": dupPair.X86}},
		{"flattened", flat, criu.MapProvider{"/bin/inc.sx86": sparsePair.X86}},
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}

	for _, img := range images {
		var golden []byte
		check := func(label string, as *mem.AddressSpace) {
			t.Helper()
			snap := asSnapshot(as)
			if golden == nil {
				golden = snap
				return
			}
			if !bytes.Equal(snap, golden) {
				t.Errorf("%s/%s: memory image differs from workers=1 baseline", img.name, label)
			}
		}
		for _, w := range workerCounts {
			for _, frames := range []bool{false, true} {
				opts := criu.RestoreOpts{Workers: w}
				label := "private"
				if frames {
					opts.Frames = kernel.NewFrameCache()
					label = "cow"
				}
				k := kernel.New(kernel.Config{Cores: 2})
				p, err := criu.RestoreWith(k, img.dir, img.prov, opts)
				if err != nil {
					t.Fatalf("%s restore workers=%d frames=%v: %v", img.name, w, frames, err)
				}
				check(label+"/restore", p.AS)

				ks := kernel.New(kernel.Config{Cores: 2})
				opts.Frames = nil
				if frames {
					opts.Frames = kernel.NewFrameCache()
				}
				ps, _ := streamRestore(t, ks, img.prov, img.dir, opts, 48<<10)
				check(label+"/stream", ps.AS)
			}
		}
	}
}

// TestStreamRestoreTelemetry: the restore span tree must be
// stream + verify + install == restore exactly, and the counters must
// reflect the installed pages.
func TestStreamRestoreTelemetry(t *testing.T) {
	p, pair := pausedDupPair(t)
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	prov := criu.MapProvider{"/bin/dup.sx86": pair.X86}
	reg := obs.New()
	k := kernel.New(kernel.Config{Cores: 2})
	_, sr := streamRestore(t, k, prov, dir, criu.RestoreOpts{Workers: 2, Obs: reg}, 64<<10)

	rep := reg.Report()
	root, ok := rep.Span("restore")
	if !ok {
		t.Fatal("no restore span recorded")
	}
	var sum time.Duration
	names := map[string]bool{}
	for _, c := range rep.Children(root.ID) {
		sum += c.Dur()
		names[c.Name] = true
	}
	if sum != root.Dur() {
		t.Errorf("restore children sum %v != span %v", sum, root.Dur())
	}
	for _, want := range []string{"stream", "verify", "install"} {
		if !names[want] {
			t.Errorf("restore span missing %q child (have %v)", want, names)
		}
	}
	if got := rep.Counters["restore.pages"]; got != uint64(sr.Stats().Pages) {
		t.Errorf("restore.pages = %d, want %d", got, sr.Stats().Pages)
	}
	if rep.Histograms["restore.install_ns"].Count == 0 {
		t.Error("restore.install_ns histogram empty")
	}
}

// TestStreamRestoreRefusesUnflattened: streamed restore must reject an
// incremental image before any page installs, like RestoreWith does.
func TestStreamRestoreRefusesUnflattened(t *testing.T) {
	chain, _ := buildChain(t, sparseWriter, isa.SX86, 2, 7_000)
	pair, err := compiler.Compile(sparseWriter)
	if err != nil {
		t.Fatal(err)
	}
	prov := criu.MapProvider{"/bin/inc.sx86": pair.X86}
	k := kernel.New(kernel.Config{Cores: 2})
	sr := criu.NewStreamRestorer(k, prov, criu.RestoreOpts{})
	sp := image.NewStreamSplitter(sr)
	_, werr := sp.Write(chain[len(chain)-1].Marshal())
	_, ferr := sr.Finish()
	if werr == nil && ferr == nil {
		t.Fatal("streamed restore accepted an unflattened incremental image")
	}
	if ferr != nil && !strings.Contains(ferr.Error(), "flatten") && (werr == nil || !strings.Contains(werr.Error(), "flatten")) {
		t.Errorf("error does not mention flattening: write=%v finish=%v", werr, ferr)
	}
}

// TestStreamRestoreTruncated: a stream that dies mid-payload must fail
// Finish, and Finish must reap the installer (no goroutine leak under
// -race and goleak-style reruns).
func TestStreamRestoreTruncated(t *testing.T) {
	p, pair := pausedDupPair(t)
	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	prov := criu.MapProvider{"/bin/dup.sx86": pair.X86}
	blob := dir.Marshal()
	k := kernel.New(kernel.Config{Cores: 2})
	sr := criu.NewStreamRestorer(k, prov, criu.RestoreOpts{Workers: 2})
	sp := image.NewStreamSplitter(sr)
	if _, err := sp.Write(blob[:len(blob)-4096]); err != nil {
		t.Fatalf("prefix write should be clean: %v", err)
	}
	if err := sp.Close(); err == nil {
		t.Error("splitter accepted a truncated stream")
	}
	if _, err := sr.Finish(); err == nil {
		t.Error("Finish accepted a truncated restore")
	}
	if _, err := sr.Finish(); err == nil {
		t.Error("second Finish did not error")
	}
}

// recordingSource wraps a PageSource and records every fetched address.
type recordingSource struct {
	inner criu.PageSource
	mu    sync.Mutex
	addrs map[uint64]bool
}

func (r *recordingSource) FetchPage(addr uint64) ([]byte, error) {
	r.mu.Lock()
	r.addrs[addr] = true
	r.mu.Unlock()
	return r.inner.FetchPage(addr)
}

// TestLazyRestoreZeroPagesNotFetched is the satellite regression: a lazy
// restore must materialize pagemap zero entries locally — reading one
// after restore must never round-trip to the page server.
func TestLazyRestoreZeroPagesNotFetched(t *testing.T) {
	// In a lazy dump only stack/TLS pages (and the flag page) escape lazy
	// classification, so the zero entry comes from the stack: deep()'s
	// 8 KiB local array covers at least one full page, is dirtied and
	// re-zeroed, and stays resident (and all-zero) after deep returns —
	// later frames are far smaller than big, so they never reach it.
	src := `
var data[4096] int;
var sum int;
func deep() {
	var big[1024] int;
	big[100] = 5;
	big[100] = 0;
	sum = sum + big[100];
}
func work(i int) {
	data[i] = i + 1;
	sum = sum + data[i];
}
func main() {
	var i int;
	deep();
	for i = 0; i < 3000; i = i + 1 {
		work(i % 4096);
	}
	printi(sum);
}`
	pair, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Cores: 2, Quantum: 97})
	p, err := k.StartProcess(pair.X86.LoadSpec("/bin/zl.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	alive, err := k.RunBudget(p, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	if !alive {
		t.Fatal("program finished before the dump point")
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	dir, err := criu.Dump(p, criu.DumpOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := criu.LoadPageSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.ZeroPages) == 0 {
		t.Fatal("lazy dump carries no zero entries; the regression needs one")
	}
	if len(ps.LazyPages) == 0 {
		t.Fatal("lazy dump carries no lazy entries")
	}

	prov := criu.MapProvider{"/bin/zl.sx86": pair.X86}
	k2 := kernel.New(kernel.Config{Cores: 2})
	p2, err := criu.RestoreWith(k2, dir, prov, criu.RestoreOpts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every zero page must already be populated — materialized by the
	// restore, not left for the fault handler.
	for addr := range ps.ZeroPages {
		if _, ok := p2.AS.PageData(addr / mem.PageSize); !ok {
			t.Errorf("zero page 0x%x not materialized at restore", addr)
		}
	}
	rec := &recordingSource{inner: criu.NewProcessPageSource(p), addrs: map[uint64]bool{}}
	criu.InstallLazyHandler(p2, rec)
	if err := k2.Run(p2); err != nil {
		t.Fatal(err)
	}
	for addr := range rec.addrs {
		if ps.ZeroPages[addr] {
			t.Errorf("zero page 0x%x round-tripped to the page server", addr)
		}
	}
	if len(rec.addrs) == 0 {
		t.Error("no lazy fetches at all; the lazy path was not exercised")
	}
}
