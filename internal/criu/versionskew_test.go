package criu_test

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
)

// tinyProg is deliberately much smaller than denseWriter: a checkpoint of
// denseWriter has thread PCs beyond tinyProg's text, so restoring into it
// is unambiguous version skew.
const tinyProg = `
func main() {
	printi(1);
}
`

// TestRestoreRefusesVersionSkew: an image dumped under one binary,
// restored with a provider serving a *different* build at the same exe
// path, must be refused by the updatecheck pass-3 pre-flight — thread PCs
// that resolve nowhere in the target's stack maps — not restored into a
// process that would execute garbage.
func TestRestoreRefusesVersionSkew(t *testing.T) {
	dir, _ := pausedDump(t)
	skew, err := compiler.Compile(tinyProg)
	if err != nil {
		t.Fatal(err)
	}
	prov := criu.MapProvider{"/bin/inc.sx86": skew.X86}
	k := kernel.New(kernel.Config{Cores: 2})
	if _, err := criu.Restore(k, dir, prov); err == nil {
		t.Fatal("restore into a version-skewed binary succeeded")
	} else if !strings.Contains(err.Error(), "image-pc") && !strings.Contains(err.Error(), "image-stack") {
		t.Errorf("want an image-pc/image-stack invariant, got: %v", err)
	}
}

// TestRestoreAcceptsMatchingBinary is the control: the same dump restores
// fine under the binary that produced it (the pass-3 check is not just
// rejecting everything).
func TestRestoreAcceptsMatchingBinary(t *testing.T) {
	dir, prov := pausedDump(t)
	k := kernel.New(kernel.Config{Cores: 2})
	if _, err := criu.Restore(k, dir, prov); err != nil {
		t.Fatalf("restore under the dumping binary failed: %v", err)
	}
}
