// Package energy reproduces the paper's Fig. 8 experiment: a
// batch-processing HPC scenario with an infinite job queue on an x86
// server, where DAPPER dynamically evicts excess jobs to low-power ARM
// boards. Energy efficiency is measured as completed jobs per kilojoule
// and throughput as jobs per hour, over a fixed wall-clock window.
//
// The simulation is deterministic and per-worker closed-form: every
// machine runs a fixed number of job threads (7 on the Xeon, 3 per Pi, the
// paper's configuration); a job placed on a Pi first pays the migration
// (eviction) cost. Machine speeds and the linear power model come from
// internal/cluster's calibrated node specs.
package energy

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/cluster"
)

// JobClass characterizes one benchmark job by the guest cycles it takes
// (measured by running the compiled workload in the simulated kernel).
type JobClass struct {
	Name   string
	Cycles uint64
}

// Config describes one scheduling scenario.
type Config struct {
	// DurationSec is the experiment window (the paper uses 30 minutes).
	DurationSec float64
	Xeon        cluster.NodeSpec
	Pi          cluster.NodeSpec
	// NumPis is how many boards receive evicted jobs (0 = baseline).
	NumPis int
	// XeonThreads and PiThreads are concurrent jobs per machine.
	XeonThreads int
	PiThreads   int
	// EvictCostSec is the per-eviction service interruption (a measured
	// migration Breakdown.Total).
	EvictCostSec float64
	Job          JobClass
}

// DefaultConfig returns the paper's setup for a job class.
func DefaultConfig(job JobClass, numPis int, evictCostSec float64) Config {
	return Config{
		DurationSec:  1800,
		Xeon:         cluster.XeonSpec,
		Pi:           cluster.PiSpec,
		NumPis:       numPis,
		XeonThreads:  7,
		PiThreads:    3,
		EvictCostSec: evictCostSec,
		Job:          job,
	}
}

// Result is one scenario's outcome.
type Result struct {
	Jobs      float64 // completed jobs (fractional tails excluded)
	Evictions int
	EnergyKJ  float64
	JobsPerKJ float64
	JobsPerHr float64
	PowerW    float64 // aggregate steady-state draw
}

// jobSeconds is a job's service time on a node.
func jobSeconds(spec cluster.NodeSpec, job JobClass) float64 {
	return float64(job.Cycles) / (spec.ClockHz * spec.IPC)
}

// Run evaluates one configuration.
func Run(cfg Config) (Result, error) {
	if cfg.DurationSec <= 0 || cfg.Job.Cycles == 0 {
		return Result{}, fmt.Errorf("energy: bad config: %+v", cfg)
	}
	var r Result
	xeonJob := jobSeconds(cfg.Xeon, cfg.Job)
	r.Jobs += float64(cfg.XeonThreads) * float64(int(cfg.DurationSec/xeonJob))

	piJob := cfg.EvictCostSec + jobSeconds(cfg.Pi, cfg.Job)
	piJobs := 0
	for b := 0; b < cfg.NumPis; b++ {
		piJobs += cfg.PiThreads * int(cfg.DurationSec/piJob)
	}
	r.Jobs += float64(piJobs)
	r.Evictions = piJobs

	r.PowerW = cfg.Xeon.PowerW(cfg.XeonThreads)
	for b := 0; b < cfg.NumPis; b++ {
		r.PowerW += cfg.Pi.PowerW(cfg.PiThreads)
	}
	r.EnergyKJ = r.PowerW * cfg.DurationSec / 1000
	if r.EnergyKJ > 0 {
		r.JobsPerKJ = r.Jobs / r.EnergyKJ
	}
	r.JobsPerHr = r.Jobs * 3600 / cfg.DurationSec
	return r, nil
}

// Improvement compares a DAPPER eviction scenario against the Xeon-only
// baseline, returning percentage gains (the Fig. 8 bars).
type Improvement struct {
	Job           JobClass
	NumPis        int
	BaselineEff   float64
	DapperEff     float64
	EfficiencyPct float64
	BaselineTput  float64
	DapperTput    float64
	ThroughputPct float64
}

// Compare runs baseline and eviction scenarios for one job class.
func Compare(job JobClass, numPis int, evictCostSec float64) (Improvement, error) {
	base, err := Run(DefaultConfig(job, 0, evictCostSec))
	if err != nil {
		return Improvement{}, err
	}
	dap, err := Run(DefaultConfig(job, numPis, evictCostSec))
	if err != nil {
		return Improvement{}, err
	}
	return Improvement{
		Job:           job,
		NumPis:        numPis,
		BaselineEff:   base.JobsPerKJ,
		DapperEff:     dap.JobsPerKJ,
		EfficiencyPct: 100 * (dap.JobsPerKJ - base.JobsPerKJ) / base.JobsPerKJ,
		BaselineTput:  base.JobsPerHr,
		DapperTput:    dap.JobsPerHr,
		ThroughputPct: 100 * (dap.JobsPerHr - base.JobsPerHr) / base.JobsPerHr,
	}, nil
}
