package energy_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/energy"
)

// cgClassB approximates an NPB CG class-B job: ~60 s on the Xeon model.
var cgClassB = energy.JobClass{Name: "cg.B", Cycles: 126_000_000_000}

func TestBaselineVsEviction(t *testing.T) {
	imp, err := energy.Compare(cgClassB, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8 shape: both efficiency and throughput improve when evicting
	// to three Pis; efficiency lands in the paper's 15-39% band and
	// throughput in the 37-52% band (± model slack).
	if imp.EfficiencyPct < 10 || imp.EfficiencyPct > 45 {
		t.Errorf("efficiency improvement %.1f%%, want ~15-39%%", imp.EfficiencyPct)
	}
	if imp.ThroughputPct < 25 || imp.ThroughputPct > 60 {
		t.Errorf("throughput improvement %.1f%%, want ~37-52%%", imp.ThroughputPct)
	}
}

func TestMorePisMoreThroughput(t *testing.T) {
	one, err := energy.Compare(cgClassB, 1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	three, err := energy.Compare(cgClassB, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if three.ThroughputPct <= one.ThroughputPct {
		t.Errorf("3 Pis (%.1f%%) not better than 1 Pi (%.1f%%)", three.ThroughputPct, one.ThroughputPct)
	}
	if three.DapperEff <= one.DapperEff {
		t.Errorf("3-Pi efficiency %.3f not above 1-Pi %.3f", three.DapperEff, one.DapperEff)
	}
}

func TestEvictionCostMatters(t *testing.T) {
	cheap, err := energy.Compare(cgClassB, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pricey, err := energy.Compare(cgClassB, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if pricey.ThroughputPct >= cheap.ThroughputPct {
		t.Errorf("expensive evictions (%.1f%%) not worse than cheap (%.1f%%)", pricey.ThroughputPct, cheap.ThroughputPct)
	}
}

func TestShortJobsAmortizeWorse(t *testing.T) {
	short := energy.JobClass{Name: "tiny", Cycles: 2_100_000_000} // ~1 s
	long := energy.JobClass{Name: "long", Cycles: 630_000_000_000}
	s, err := energy.Compare(short, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := energy.Compare(long, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// With a fixed eviction cost, longer jobs amortize migration better.
	if s.ThroughputPct >= l.ThroughputPct+20 {
		t.Errorf("short-job improvement %.1f%% implausibly above long-job %.1f%%", s.ThroughputPct, l.ThroughputPct)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := energy.Run(energy.Config{}); err == nil {
		t.Error("want error for zero config")
	}
}

func TestPowerAccounting(t *testing.T) {
	res, err := energy.Run(energy.DefaultConfig(cgClassB, 3, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	// 108 W Xeon + 3 × 5.1 W Pis ≈ 123 W.
	if res.PowerW < 115 || res.PowerW > 130 {
		t.Errorf("aggregate power %.1f W, want ~123", res.PowerW)
	}
	if res.Evictions == 0 {
		t.Error("no evictions recorded")
	}
}
