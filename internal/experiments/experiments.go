// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figs. 5–11 plus the §IV-B security case studies),
// producing text tables. cmd/dapper-bench prints them and writes
// EXPERIMENTS.md; the root benchmarks reuse the same primitives as
// testing.B metrics.
package experiments

import (
	"fmt"
	"strings"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Telemetry holds the per-case obs report (counters, histograms, span
	// tree) for experiments that collect one, keyed by "case/mode". It
	// rides along in dapper-bench -jsonout so CI archives the full
	// migration telemetry next to the table.
	Telemetry map[string]*obs.Report `json:",omitempty"`
}

// String renders an aligned text table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func ms(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.1f", d.Seconds()*1000)
}

func kb(n uint64) string { return fmt.Sprintf("%.1f", float64(n)/1024) }

// fig5Benchmarks are the single-threaded programs of the Fig. 5 sweep.
var fig5Benchmarks = []string{"cg", "mg", "ep", "ft", "is", "linpack", "dhrystone", "kmeans"}

// newPairOfNodes boots a Xeon and a Pi with the workload installed.
func newPairOfNodes(w workloads.Workload, c workloads.Class) (*cluster.Node, *cluster.Node, error) {
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, nil, err
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install(w.Name, pair)
	pi.Install(w.Name, pair)
	return xeon, pi, nil
}

// runToFraction measures a native run and replays to the given fraction of
// its cycles, returning the running process (nil if it finished first).
func runToFraction(node *cluster.Node, name string, frac float64) (*kernel.Process, uint64, error) {
	ref, err := node.Start(name)
	if err != nil {
		return nil, 0, err
	}
	if err := node.K.Run(ref); err != nil {
		return nil, 0, fmt.Errorf("native run: %w", err)
	}
	total := ref.VCycles
	p, err := node.Start(name)
	if err != nil {
		return nil, 0, err
	}
	alive, err := node.K.RunBudget(p, uint64(float64(total)*frac))
	if err != nil {
		return nil, 0, err
	}
	if !alive {
		return nil, total, nil
	}
	return p, total, nil
}

// MigrateOnce runs one workload to frac on the Xeon and migrates it to the
// Pi, returning the breakdown (the primitive behind Figs. 5 and 7).
func MigrateOnce(w workloads.Workload, c workloads.Class, frac float64, lazy bool) (*cluster.Breakdown, error) {
	mode := modeVanilla
	if lazy {
		mode = modeLazy
	}
	bd, _, err := migrateOnceMode(w, c, frac, mode)
	return bd, err
}

// LazyTCP makes the lazy-migration experiments serve post-copy pages over
// a real TCP page server (dapper-bench -lazytcp) instead of in-process
// calls, exercising the resilient transport end to end.
var LazyTCP bool

// Fig5 regenerates the cross-ISA transformation time breakdown.
func Fig5(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "cross-ISA process transformation time breakdown (x86 -> arm)",
		Header: []string{"benchmark", "checkpoint(ms)", "recode@x86(ms)", "recode@arm(ms)", "scp(ms)", "restore(ms)", "total(ms)", "images(KiB)", "recode-host(ms)"},
	}
	pi := cluster.NewNode(cluster.PiSpec)
	for _, name := range fig5Benchmarks {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		bd, err := MigrateOnce(w, c, 0.5, false)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", name, err)
		}
		recodeArm := cluster.RecodeTime(pi, bd.ImageBytes)
		t.Rows = append(t.Rows, []string{
			name, ms(bd.Checkpoint), ms(bd.Recode), ms(recodeArm), ms(bd.Copy),
			ms(bd.Restore), ms(bd.Total()), kb(bd.ImageBytes), ms(bd.RecodeHost),
		})
	}
	t.Notes = append(t.Notes,
		"paper: checkpoint/restore < 30 ms; recode 253.69 ms avg on x86 vs 1004.91 ms on arm; scp ~300 ms over InfiniBand",
		"recode-host is the real wall time of this Go rewriter on the host machine")
	return t, nil
}

// Fig6 regenerates the end-to-end PARSEC comparison: native on each node
// versus one mid-run migration.
func Fig6(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "multithreaded PARSEC total execution time: native vs DAPPER (migrate at 50%)",
		Header: []string{"benchmark", "native-x86(ms)", "native-arm(ms)", "dapper-compute(ms)", "migration(ms)", "between?"},
	}
	for _, name := range []string{"blackscholes", "swaptions", "streamcluster"} {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		xeon, pi, err := newPairOfNodes(w, c)
		if err != nil {
			return nil, err
		}
		pair, err := workloads.CompilePair(w, c)
		if err != nil {
			return nil, err
		}
		// Native times.
		px, err := xeon.Start(w.Name)
		if err != nil {
			return nil, err
		}
		if err := xeon.K.Run(px); err != nil {
			return nil, err
		}
		pa, err := pi.Start(w.Name)
		if err != nil {
			return nil, err
		}
		if err := pi.K.Run(pa); err != nil {
			return nil, err
		}
		tx := xeon.SecondsFor(px.VCycles)
		ta := pi.SecondsFor(pa.VCycles)

		// Migrated run.
		xeon2, pi2, err := newPairOfNodes(w, c)
		if err != nil {
			return nil, err
		}
		p, _, err := runToFraction(xeon2, w.Name, 0.5)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("fig6 %s finished early", name)
		}
		half1 := p.VCycles
		res, err := cluster.Migrate(xeon2, pi2, p, pair.Meta, cluster.MigrateOpts{})
		if err != nil {
			return nil, err
		}
		if err := pi2.K.Run(res.Proc); err != nil {
			return nil, err
		}
		// Compute time splits across the two machines; the migration
		// pause is reported separately (the paper's totals include it,
		// but at simulator scales it would mask the compute split).
		tc := xeon2.SecondsFor(half1) + pi2.SecondsFor(res.Proc.VCycles)
		between := "yes"
		if tc < tx || tc > ta {
			between = "no"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", tx*1000), fmt.Sprintf("%.2f", ta*1000),
			fmt.Sprintf("%.2f", tc*1000), ms(res.Breakdown.Total()), between,
		})
	}
	t.Notes = append(t.Notes, "paper: DAPPER's total execution time lies between native x86 and native arm")
	return t, nil
}

// Fig7 regenerates the vanilla vs lazy migration comparison for CG/MG at
// three checkpoint positions and rediska at three DB sizes. Class A is
// forced: class-S footprints fit in single pages and would flatten the
// DB-size and checkpoint-position effects.
func Fig7(_ workloads.Class) (*Table, error) {
	c := workloads.ClassA
	t := &Table{
		ID:     "fig7",
		Title:  "vanilla vs lazy (post-copy) migration breakdown",
		Header: []string{"case", "mode", "checkpoint(ms)", "recode(ms)", "scp(ms)", "restore(ms)", "images(KiB)", "post-copy-pages", "post-copy(KiB)"},
	}
	addRow := func(label string, bd *cluster.Breakdown, lazy bool) {
		mode := "vanilla"
		if lazy {
			mode = "lazy"
		}
		t.Rows = append(t.Rows, []string{
			label, mode, ms(bd.Checkpoint), ms(bd.Recode), ms(bd.Copy), ms(bd.Restore),
			kb(bd.ImageBytes), fmt.Sprintf("%d", bd.LazyFetches), kb(bd.LazyBytes),
		})
	}
	for _, name := range []string{"cg", "mg"} {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		for _, pos := range []struct {
			label string
			frac  float64
		}{{"init", 0.05}, {"mid", 0.5}, {"end", 0.9}} {
			for _, lazy := range []bool{false, true} {
				bd, err := MigrateOnce(w, c, pos.frac, lazy)
				if err != nil {
					return nil, fmt.Errorf("fig7 %s %s: %w", name, pos.label, err)
				}
				addRow(name+"-"+pos.label, bd, lazy)
			}
		}
	}
	// rediska at three database sizes.
	for _, db := range []uint64{100, 2000, 12000} {
		for _, lazy := range []bool{false, true} {
			bd, err := migrateRediska(c, db, lazy)
			if err != nil {
				return nil, fmt.Errorf("fig7 rediska %d: %w", db, err)
			}
			addRow(fmt.Sprintf("rediska-%dkeys", db), bd, lazy)
		}
	}
	t.Notes = append(t.Notes,
		"paper: lazy migration slashes checkpoint+scp, restores in ~8 ms, and wins more as heap grows",
		"post-copy pages are served on demand by the source-side page server")
	return t, nil
}

// migrateRediska loads db keys into the server, migrates it, and (for
// lazy) drives queries so pages actually fault over.
func migrateRediska(c workloads.Class, db uint64, lazy bool) (*cluster.Breakdown, error) {
	mode := modeVanilla
	if lazy {
		mode = modeLazy
	}
	bd, _, err := migrateRediskaMode(c, db, mode)
	return bd, err
}

// Fig8 regenerates the heterogeneous-cluster energy/throughput experiment.
func Fig8(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "energy efficiency & throughput of evicting jobs to Raspberry Pis",
		Header: []string{"benchmark", "pis", "base(j/kJ)", "dapper(j/kJ)", "eff+%", "base(j/h)", "dapper(j/h)", "tput+%"},
	}
	// Class-B NPB jobs run for minutes on the Xeon. The measured class-S
	// cycle counts are scaled so each job's Xeon duration matches the
	// class-B ballpark below (per-benchmark, as in the paper's mix).
	classBSeconds := map[string]float64{"cg": 62, "mg": 41, "ep": 95, "is": 28}
	evict, err := measureEvictCost(c)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"cg", "mg", "ep", "is"} {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		xeon := cluster.NewNode(cluster.XeonSpec)
		pair, err := workloads.CompilePair(w, c)
		if err != nil {
			return nil, err
		}
		xeon.Install(w.Name, pair)
		p, err := xeon.Start(w.Name)
		if err != nil {
			return nil, err
		}
		if err := xeon.K.Run(p); err != nil {
			return nil, err
		}
		target := classBSeconds[name]
		scale := target * cluster.XeonSpec.ClockHz * cluster.XeonSpec.IPC / float64(p.VCycles)
		if scale < 1 {
			scale = 1
		}
		job := energyJob(name, uint64(float64(p.VCycles)*scale))
		for _, pis := range []int{1, 3} {
			imp, err := compareEnergy(job, pis, evict)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name + ".B", fmt.Sprintf("%d", pis),
				fmt.Sprintf("%.2f", imp.BaselineEff), fmt.Sprintf("%.2f", imp.DapperEff),
				fmt.Sprintf("%.1f", imp.EfficiencyPct),
				fmt.Sprintf("%.0f", imp.BaselineTput), fmt.Sprintf("%.0f", imp.DapperTput),
				fmt.Sprintf("%.1f", imp.ThroughputPct),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: energy efficiency +15-39%, throughput +37-52% when evicting to 1-3 Pis",
		fmt.Sprintf("eviction cost measured from a real migration: %.0f ms", evict*1000))
	return t, nil
}

// measureEvictCost runs one real migration to price an eviction.
func measureEvictCost(c workloads.Class) (float64, error) {
	w, err := workloads.Get("cg")
	if err != nil {
		return 0, err
	}
	bd, err := MigrateOnce(w, c, 0.3, false)
	if err != nil {
		return 0, err
	}
	return bd.Total().Seconds(), nil
}
