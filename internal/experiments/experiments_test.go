package experiments_test

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/experiments"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// TestEveryFigureGenerates smoke-runs every table generator at class S
// and sanity-checks structure — the guarantee that `dapper-bench all`
// cannot rot.
func TestEveryFigureGenerates(t *testing.T) {
	gens := map[string]func(workloads.Class) (*experiments.Table, error){
		"fig1":  experiments.Fig1,
		"fig5":  experiments.Fig5,
		"fig6":  experiments.Fig6,
		"fig7":  experiments.Fig7,
		"fig7x": experiments.Fig7x,
		"fig8":  experiments.Fig8,
		"fig9":  experiments.Fig9,
		"fig10": experiments.Fig10,
		"fig11": experiments.Fig11,
	}
	for id, gen := range gens {
		id, gen := id, gen
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tbl, err := gen(workloads.ClassS)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != id {
				t.Errorf("table id %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, r := range tbl.Rows {
				if len(r) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(r), len(tbl.Header))
				}
			}
			txt := tbl.String()
			if !strings.Contains(txt, tbl.Title) {
				t.Error("rendering lost the title")
			}
			md := tbl.Markdown()
			if strings.Count(md, "|") < len(tbl.Header) {
				t.Error("markdown rendering malformed")
			}
		})
	}
}

// TestFigureShapes asserts the key qualitative claims the tables carry.
func TestFigureShapes(t *testing.T) {
	t.Run("fig10-arm-below-x86", func(t *testing.T) {
		t.Parallel()
		tbl, err := experiments.Fig10(workloads.ClassS)
		if err != nil {
			t.Fatal(err)
		}
		last := tbl.Rows[len(tbl.Rows)-1]
		if last[0] != "AVERAGE" {
			t.Fatalf("no average row: %v", last)
		}
		if !(parseF(t, last[2]) < parseF(t, last[1])) {
			t.Errorf("arm bits %s not below x86 bits %s", last[2], last[1])
		}
	})
	t.Run("fig11-majority-reduction", func(t *testing.T) {
		t.Parallel()
		tbl, err := experiments.Fig11(workloads.ClassS)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tbl.Rows {
			if r[0] == "AVERAGE" {
				if v := parseF(t, r[4]); v < 40 {
					t.Errorf("average reduction %s below 40%%", r[4])
				}
			}
		}
	})
	t.Run("fig8-three-pis-in-band", func(t *testing.T) {
		t.Parallel()
		tbl, err := experiments.Fig8(workloads.ClassS)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tbl.Rows {
			if r[1] != "3" {
				continue
			}
			eff := parseF(t, r[4])
			tput := parseF(t, r[7])
			if eff < 15 || eff > 45 {
				t.Errorf("%s: 3-Pi efficiency %.1f%% outside band", r[0], eff)
			}
			if tput < 30 || tput > 60 {
				t.Errorf("%s: 3-Pi throughput %.1f%% outside band", r[0], tput)
			}
		}
	})
	t.Run("fig7x-precopy-beats-vanilla", func(t *testing.T) {
		t.Parallel()
		tbl, err := experiments.Fig7x(workloads.ClassS)
		if err != nil {
			t.Fatal(err)
		}
		// The acceptance row: on the largest rediska DB, pre-copy downtime
		// must be strictly below vanilla's stop-and-copy downtime.
		downtime := map[string]float64{}
		for _, r := range tbl.Rows {
			if r[0] == "rediska-12000keys" {
				downtime[r[1]] = parseF(t, r[2])
			}
		}
		v, okV := downtime["vanilla"]
		p, okP := downtime["precopy"]
		if !okV || !okP {
			t.Fatalf("missing rediska-12000keys rows: %v", downtime)
		}
		if p >= v {
			t.Errorf("pre-copy downtime %.1fms not below vanilla %.1fms", p, v)
		}
		for _, r := range tbl.Rows {
			if r[1] == "precopy" && parseF(t, r[4]) < 2 {
				t.Errorf("%s: pre-copy ran only %s round(s)", r[0], r[4])
			}
		}
		// Every row carries its migration's telemetry report, and the
		// span tree is complete: the table's time columns were read from
		// it, so it must at least name the root phases.
		if len(tbl.Telemetry) != len(tbl.Rows) {
			t.Errorf("%d telemetry reports for %d rows", len(tbl.Telemetry), len(tbl.Rows))
		}
		for _, r := range tbl.Rows {
			rep := tbl.Telemetry[r[0]+"/"+r[1]]
			if rep == nil {
				t.Errorf("%s/%s: no telemetry report", r[0], r[1])
				continue
			}
			if _, ok := rep.Span("migration"); !ok {
				t.Errorf("%s/%s: telemetry lacks the migration span", r[0], r[1])
			}
			if r[1] == "lazy" && rep.Histograms["fault.service_ns"].Count == 0 {
				t.Errorf("%s/lazy: empty fault-service histogram", r[0])
			}
			if r[1] == "precopy" && rep.Counters["precopy.rounds"] < 2 {
				t.Errorf("%s/precopy: precopy.rounds = %d", r[0], rep.Counters["precopy.rounds"])
			}
		}
	})
	t.Run("attacks-defeated", func(t *testing.T) {
		t.Parallel()
		tbl, err := experiments.Attacks()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tbl.Rows {
			switch {
			case r[2] == "none" && !strings.HasPrefix(r[3], "1/1"):
				t.Errorf("unprotected attack failed: %v", r)
			case r[2] == "cross-ISA migration" && r[3] != "0/1":
				t.Errorf("migration did not defeat the payload: %v", r)
			}
		}
	})
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	var sign float64 = 1
	i := 0
	if i < len(s) && s[i] == '-' {
		sign = -1
		i++
	}
	frac := 0.0
	div := 1.0
	seenDot := false
	for ; i < len(s); i++ {
		c := s[i]
		if c == '.' {
			seenDot = true
			continue
		}
		if c < '0' || c > '9' {
			t.Fatalf("bad float %q", s)
		}
		if seenDot {
			div *= 10
			frac += float64(c-'0') / div
		} else {
			v = v*10 + float64(c-'0')
		}
	}
	return sign * (v + frac)
}
