package experiments

import (
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// migMode selects a restoration mode for the three-way comparison of
// fig7x: vanilla (copy-all), lazy (post-copy), or pre-copy (iterative
// incremental rounds).
type migMode int

const (
	modeVanilla migMode = iota
	modeLazy
	modePreCopy
)

func (m migMode) String() string {
	switch m {
	case modeLazy:
		return "lazy"
	case modePreCopy:
		return "precopy"
	default:
		return "vanilla"
	}
}

// migrateOnceMode generalizes MigrateOnce over the three modes. Every
// migration runs with a fresh obs registry attached; the returned report
// carries the span tree and transport counters for the run.
func migrateOnceMode(w workloads.Workload, c workloads.Class, frac float64, mode migMode) (_ *cluster.Breakdown, _ *obs.Report, err error) {
	xeon, pi, err := newPairOfNodes(w, c)
	if err != nil {
		return nil, nil, err
	}
	p, total, err := runToFraction(xeon, w.Name, frac)
	if err != nil {
		return nil, nil, err
	}
	if p == nil {
		return nil, nil, fmt.Errorf("%s finished before the %.0f%% checkpoint", w.Name, frac*100)
	}
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, nil, err
	}
	reg := obs.New()
	opts := cluster.MigrateOpts{Obs: reg}
	switch mode {
	case modeLazy:
		opts.Lazy, opts.LazyTCP = true, LazyTCP
	case modePreCopy:
		// Run ~5% of the workload between rounds so deltas are real.
		opts.PreCopy = &cluster.PreCopyOpts{RoundBudget: total/20 + 1}
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, opts)
	if err != nil {
		return nil, nil, err
	}
	// Leaked lazy plumbing must fail the experiment, not silently skew
	// later measurements sharing the process.
	defer func() {
		if cerr := res.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// Finish the run so the lazy page traffic is realized.
	if mode == modeLazy {
		if err := pi.K.Run(res.Proc); err != nil {
			return nil, nil, fmt.Errorf("post-migration: %w", err)
		}
		res.FinalizeLazyStats()
	}
	return &res.Breakdown, reg.Report(), nil
}

// migrateRediskaMode loads db keys into the server and migrates it in the
// given mode. For lazy, post-migration queries realize the paging traffic;
// for pre-copy, a write burst per round keeps the server dirtying pages
// while the chain is in flight.
func migrateRediskaMode(c workloads.Class, db uint64, mode migMode) (_ *cluster.Breakdown, _ *obs.Report, err error) {
	w, err := workloads.Get("rediska")
	if err != nil {
		return nil, nil, err
	}
	xeon, pi, err := newPairOfNodes(w, c)
	if err != nil {
		return nil, nil, err
	}
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, nil, err
	}
	p, err := xeon.Start(w.Name)
	if err != nil {
		return nil, nil, err
	}
	p.PushInput(workloads.RediskaLoad(db))
	for i := 0; i < 5_000_000; i++ {
		st, err := xeon.K.Step(p)
		if err != nil {
			return nil, nil, err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	p.TakeOutput()
	reg := obs.New()
	opts := cluster.MigrateOpts{Obs: reg}
	switch mode {
	case modeLazy:
		opts.Lazy, opts.LazyTCP = true, LazyTCP
	case modePreCopy:
		opts.PreCopy = &cluster.PreCopyOpts{
			RunUntilIdle: true,
			BetweenRounds: func(p *kernel.Process, round int) {
				// 32 overwrites per round dirty a bounded working set.
				for i := uint64(0); i < 32; i++ {
					k := (uint64(round)*32 + i) % db
					p.PushInput(workloads.RediskaSet(1000000+7*k, k))
				}
			},
		}
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, opts)
	if err != nil {
		return nil, nil, err
	}
	// As in migrateOnceMode: leaked lazy plumbing fails the experiment.
	defer func() {
		if cerr := res.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	p2 := res.Proc
	// Query every 10th key to realize post-copy traffic.
	for k := uint64(0); k < db; k += 10 {
		p2.PushInput(workloads.RediskaGet(1000000 + 7*k))
	}
	p2.CloseInput()
	if err := pi.K.Run(p2); err != nil {
		return nil, nil, err
	}
	if mode == modeLazy {
		res.FinalizeLazyStats()
	}
	return &res.Breakdown, reg.Report(), nil
}

// Fig7x extends Fig. 7 with the restoration mode the paper leaves
// unexplored: vanilla vs lazy vs iterative pre-copy, reporting downtime
// (pause to resume) separately from the end-to-end migration cost. Class A
// is forced for the same reason as Fig7.
func Fig7x(_ workloads.Class) (*Table, error) {
	c := workloads.ClassA
	t := &Table{
		ID:        "fig7x",
		Title:     "vanilla vs lazy vs pre-copy migration: downtime and end-to-end cost",
		Header:    []string{"case", "mode", "downtime(ms)", "total(ms)", "rounds", "precopy(KiB)", "images(KiB)", "postcopy(KiB)", "fault-p95(us)"},
		Telemetry: map[string]*obs.Report{},
	}
	modes := []migMode{modeVanilla, modeLazy, modePreCopy}
	addRow := func(label string, mode migMode, bd *cluster.Breakdown, rep *obs.Report) error {
		// The time columns come from the telemetry span tree, not from the
		// Breakdown: the spans ARE the accounting now, and a divergence
		// between the two is a bug worth failing the experiment over.
		downtime, total := rep.SpanDur("downtime"), rep.SpanDur("migration")
		if downtime != bd.Downtime || total != bd.MigrationTime() {
			return fmt.Errorf("span tree disagrees with breakdown: downtime %v vs %v, total %v vs %v",
				downtime, bd.Downtime, total, bd.MigrationTime())
		}
		faultP95 := time.Duration(rep.Histograms["fault.service_ns"].P95Ns)
		t.Rows = append(t.Rows, []string{
			label, mode.String(), ms(downtime), ms(total),
			fmt.Sprintf("%d", bd.Rounds), kb(bd.PreCopyBytes), kb(bd.ImageBytes), kb(bd.LazyBytes),
			fmt.Sprintf("%.1f", float64(faultP95.Nanoseconds())/1000),
		})
		t.Telemetry[label+"/"+mode.String()] = rep
		return nil
	}
	for _, name := range []string{"cg", "mg"} {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			bd, rep, err := migrateOnceMode(w, c, 0.5, mode)
			if err != nil {
				return nil, fmt.Errorf("fig7x %s %v: %w", name, mode, err)
			}
			if err := addRow(name+"-mid", mode, bd, rep); err != nil {
				return nil, fmt.Errorf("fig7x %s %v: %w", name, mode, err)
			}
		}
	}
	for _, db := range []uint64{100, 2000, 12000} {
		for _, mode := range modes {
			bd, rep, err := migrateRediskaMode(c, db, mode)
			if err != nil {
				return nil, fmt.Errorf("fig7x rediska %d %v: %w", db, mode, err)
			}
			if err := addRow(fmt.Sprintf("rediska-%dkeys", db), mode, bd, rep); err != nil {
				return nil, fmt.Errorf("fig7x rediska %d %v: %w", db, mode, err)
			}
		}
	}
	t.Notes = append(t.Notes,
		"downtime is pause->resume; total additionally counts pre-copy rounds overlapped with execution",
		"pre-copy ships soft-dirty deltas as in_parent incremental images and pauses only for the final round",
		"time columns are read from the telemetry span tree (internal/obs); fault-p95 is the post-copy page-fault service latency")
	return t, nil
}
