package experiments

import (
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/fleet"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// fleetJobs is how many migrations each concurrency level pushes through
// the control plane.
const fleetJobs = 12

// fleetPager is the inline program behind the fault-plan jobs: its
// strided multi-page walk guarantees the post-copy restore actually
// fetches pages over the transport, so the injected faults provably fire
// and the table's retry column measures the real retry/rollback path
// rather than an accident of working-set size.
const fleetPager = `
var data[4096] int;
var acc int;
func fill() {
	var i int;
	for i = 0; i < 4096; i = i + 1 {
		data[i] = (i % 251) + 1;
	}
}
func bump(i int) {
	acc = acc + data[(i * 7) % 4096];
}
func main() {
	var i int;
	fill();
	for i = 0; i < 6000; i = i + 1 {
		bump(i);
	}
	printi(acc);
}`

// fleetRun drives one fleet of four mixed-ISA nodes at a given fleet-wide
// concurrency bound and returns the finished manager's report plus the
// wall-clock the queue took to drain.
func fleetRun(c workloads.Class, conc int) (*fleet.FleetReport, time.Duration, error) {
	m, err := fleet.NewManager(fleet.Config{
		MaxJobs:       conc,
		Policy:        "isa-affinity",
		RetryBase:     time.Millisecond,
		RetryMax:      20 * time.Millisecond,
		SchedulerTick: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		// The manager is drained before we get here; Stop only joins loops.
		_ = m.Stop()
	}()
	for i := 0; i < 2; i++ {
		if err := m.AddNode(fmt.Sprintf("xeon%d", i), cluster.XeonSpec, 4); err != nil {
			return nil, 0, err
		}
		if err := m.AddNode(fmt.Sprintf("pi%d", i), cluster.PiSpec, 4); err != nil {
			return nil, 0, err
		}
	}
	if err := m.RegisterWorkload("cg", c); err != nil {
		return nil, 0, err
	}
	if err := m.RegisterProgram("pager", fleetPager); err != nil {
		return nil, 0, err
	}
	if err := m.Start(); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for i := 0; i < fleetJobs; i++ {
		spec := fleet.JobSpec{Program: "cg"}
		switch i % 3 {
		case 0: // post-copy with a deterministic first-attempt fault
			spec = fleet.JobSpec{
				Program: "pager",
				Opts:    fleet.JobOpts{Lazy: true},
				Faults: &fleet.FaultPlan{
					FailAttempts: 1,
					FlakySource:  &criu.FaultSpec{Seed: int64(1000 + i), FailRate: 1.0},
				},
			}
		case 1: // vanilla with the full wire stack
			spec.Opts = fleet.JobOpts{Codec: "flate", Dedup: true}
		case 2: // iterative pre-copy with XOR-delta rounds
			spec.Opts = fleet.JobOpts{PreCopy: true, Delta: true, Codec: "flate"}
		}
		if _, err := m.Submit(spec); err != nil {
			return nil, 0, err
		}
	}
	if err := m.WaitIdle(10 * time.Minute); err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	rep := m.Report()

	// The gates: a corrupt restored image, a job that never converged, or
	// a retry path that never fired all fail the run — under-reporting a
	// broken control plane is exactly what this table exists to prevent.
	if rep.Corrupt != 0 {
		return nil, 0, fmt.Errorf("fleet(conc=%d): %d corrupt migrations", conc, rep.Corrupt)
	}
	if rep.FailedJ != 0 || rep.Done != fleetJobs {
		return nil, 0, fmt.Errorf("fleet(conc=%d): %d/%d jobs done, %d failed", conc, rep.Done, fleetJobs, rep.FailedJ)
	}
	if rep.Retries == 0 || rep.Rollbacks == 0 {
		return nil, 0, fmt.Errorf("fleet(conc=%d): retry path never fired (retries=%d rollbacks=%d) despite %d fault-plan jobs",
			conc, rep.Retries, rep.Rollbacks, (fleetJobs+2)/3)
	}
	for _, n := range rep.Nodes {
		if n.HighWater > n.Capacity {
			return nil, 0, fmt.Errorf("fleet(conc=%d): node %s exceeded its slot bound (%d > %d)", conc, n.Name, n.HighWater, n.Capacity)
		}
	}
	return rep, elapsed, nil
}

// Fleet measures control-plane throughput: the same 12-job mixed queue
// (post-copy with injected first-attempt faults, vanilla with
// flate+dedup, pre-copy with delta) pushed through four mixed-ISA nodes
// at fleet-wide concurrency bounds of 1, 4, and 8. Retry rate is retries
// per job — nonzero by construction, since every third job's fault plan
// fails its first attempt.
func Fleet(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fleet",
		Title:  fmt.Sprintf("fleet throughput, %d-job mixed queue on 2x Xeon + 2x Pi (class %s)", fleetJobs, c),
		Header: []string{"concurrency", "wall time", "migs/sec", "retries", "retry rate", "rollbacks", "migration p95"},
		Notes: []string{
			"every third job injects a FailRate-1.0 page-fetch fault into its first post-copy attempt,",
			"so the retry+rollback path is exercised at every concurrency level; the run hard-fails if",
			"any job fails, any output is corrupt, or the retry path never fires.",
		},
		Telemetry: map[string]*obs.Report{},
	}
	for _, conc := range []int{1, 4, 8} {
		rep, elapsed, err := fleetRun(c, conc)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", conc),
			fmt.Sprintf("%.2fs", elapsed.Seconds()),
			fmt.Sprintf("%.1f", float64(rep.Done)/elapsed.Seconds()),
			fmt.Sprintf("%d", rep.Retries),
			fmt.Sprintf("%.2f", float64(rep.Retries)/float64(rep.Done)),
			fmt.Sprintf("%d", rep.Rollbacks),
			rep.MigrationP95.String(),
		})
		t.Telemetry[fmt.Sprintf("conc=%d", conc)] = rep.Obs
	}
	return t, nil
}
