package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// parpipeDB is the rediska key count loaded before measuring: big enough
// that the dump, rewrite, and verify stages have real page volume to
// shard, small enough for the quick CI profile.
const parpipeDB = 2000

// Parpipe measures the parallel migration pipeline on the heap-heavy
// rediska store: host wall time of the dump, cross-ISA rewrite, and
// imgcheck stages at Workers=1 versus Workers=NumCPU, plus what the
// content-addressed page dedup elides from the same image. Host time
// here is real elapsed time by definition (the stages' Go-side cost, the
// quantity the parallel pipeline optimizes), never part of modeled
// downtime.
func Parpipe(c workloads.Class) (*Table, error) {
	w, err := workloads.Get("rediska")
	if err != nil {
		return nil, err
	}
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, err
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	xeon.Install(w.Name, pair)
	p, err := xeon.Start(w.Name)
	if err != nil {
		return nil, err
	}
	p.PushInput(workloads.RediskaLoad(parpipeDB))
	for i := 0; i < 5_000_000; i++ {
		st, err := xeon.K.Step(p)
		if err != nil {
			return nil, err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	p.TakeOutput()
	mon := monitor.New(xeon.K, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		return nil, err
	}
	par := runtime.NumCPU()

	// best-of-3 host timing per stage configuration: the minimum is the
	// least-noise estimate of the stage's intrinsic cost.
	best := func(fn func() error) (time.Duration, error) {
		var b time.Duration
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(start); i == 0 || d < b {
				b = d
			}
		}
		return b, nil
	}

	dir, err := criu.Dump(p, criu.DumpOpts{})
	if err != nil {
		return nil, err
	}
	blob := dir.Marshal()

	stages := []struct {
		name string
		run  func(workers int) error
	}{
		{"dump", func(workers int) error {
			_, err := criu.Dump(p, criu.DumpOpts{Workers: workers})
			return err
		}},
		{"rewrite", func(workers int) error {
			d2, err := criu.UnmarshalImageDir(blob)
			if err != nil {
				return err
			}
			ctx := &core.Context{Binaries: xeon.Binaries, Workers: workers}
			return core.CrossISAPolicy{Target: isa.SARM}.Rewrite(d2, ctx)
		}},
		{"verify", func(workers int) error {
			return imgcheck.VerifyWith(dir, imgcheck.Opts{Workers: workers})
		}},
	}

	t := &Table{
		ID:        "parpipe",
		Title:     "parallel migration pipeline: host-time per stage and page dedup (rediska)",
		Header:    []string{"stage", "serial(ms)", fmt.Sprintf("workers=%d(ms)", par), "speedup"},
		Telemetry: map[string]*obs.Report{},
	}
	hostMS := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }
	for _, s := range stages {
		serial, err := best(func() error { return s.run(1) })
		if err != nil {
			return nil, fmt.Errorf("parpipe %s serial: %w", s.name, err)
		}
		fanned, err := best(func() error { return s.run(par) })
		if err != nil {
			return nil, fmt.Errorf("parpipe %s workers=%d: %w", s.name, par, err)
		}
		speed := float64(serial) / float64(fanned)
		t.Rows = append(t.Rows, []string{s.name, hostMS(serial), hostMS(fanned), fmt.Sprintf("%.2fx", speed)})
	}

	// Dedup on the same paused image: elision counters plus the realized
	// pages.img shrink.
	reg := obs.New()
	ddir, err := criu.Dump(p, criu.DumpOpts{Dedup: true, Workers: par, Obs: reg})
	if err != nil {
		return nil, err
	}
	plainPages, _ := dir.Get("pages.img")
	dedupPages, _ := ddir.Get("pages.img")
	elided := reg.Counter("dedup.pages_elided").Value()
	saved := reg.Counter("dedup.bytes_saved").Value()
	if saved == 0 {
		return nil, fmt.Errorf("parpipe: dedup saved no bytes on rediska (%d keys)", parpipeDB)
	}
	t.Rows = append(t.Rows, []string{
		"dedup", kb(uint64(len(plainPages))), kb(uint64(len(dedupPages))),
		fmt.Sprintf("-%d pages (%s)", elided, kb(saved)),
	})
	t.Telemetry["rediska/dedup"] = reg.Report()
	t.Notes = append(t.Notes,
		"serial and workers=N produce byte-identical images; host time is the Go-side stage cost, never modeled downtime",
		fmt.Sprintf("speedups are machine-dependent (this run: %d CPUs); ~1.0x on single-core runners", par),
		"dedup row: serial column = plain pages.img, workers column = dedup pages.img, last column = pages elided (bytes saved)")
	return t, nil
}
