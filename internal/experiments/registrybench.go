package experiments

import (
	"fmt"
	"os"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/registry"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// registryDB is how many keys the rediska server holds during the sweep.
const registryDB = 800

// registryFanouts are the clone fan-out widths of the latency sweep.
var registryFanouts = []int{1, 4, 16}

// driveUntilBlocked steps the server until it has consumed its pending
// input and blocks on recv again (the fig7x idle loop).
func driveUntilBlocked(node *cluster.Node, p *kernel.Process) error {
	for i := 0; i < 5_000_000; i++ {
		st, err := node.K.Step(p)
		if err != nil {
			return err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			return nil
		}
	}
	return fmt.Errorf("server never drained its input")
}

// Registry measures the persistent content-addressed checkpoint store
// (docs/registry.md) in both directions: the dedup hit-rate across
// successive dumps of one evolving rediska server, and the latency of
// fanning one stored checkpoint out onto N nodes with copy-on-write
// page sharing. The run hard-fails if cross-dump dedup never hits (the
// store would be a plain copy), if clones share no frames, or if any
// clone answers queries differently from its siblings.
func Registry(c workloads.Class) (*Table, error) {
	w, err := workloads.Get("rediska")
	if err != nil {
		return nil, err
	}
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "dapper-registrybench")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	reg := obs.New()
	store, err := registry.Open(dir, registry.Opts{Obs: reg})
	if err != nil {
		return nil, err
	}
	defer func() { _ = store.Close() }() // pushes already fsync'd; close is teardown

	t := &Table{
		ID:    "registry",
		Title: fmt.Sprintf("checkpoint registry: cross-dump dedup and clone fan-out (rediska %d keys, class %s)", registryDB, c),
		Header: []string{"phase", "chunks new", "chunks hit", "hit-rate", "KB elided",
			"shared frames", "pull", "restore"},
		Notes: []string{
			"pushes are three checkpoints of one rediska server: after the initial load, then",
			"after two rounds of 64 overwrites; hit-rate is chunks already stored / chunks",
			"offered — the later snapshots dirty few table pages, so most chunks dedup.",
			"clones restore the last checkpoint onto N nodes sharing resident page frames",
			"COW until first write; every clone then answers the same queries and the run",
			"hard-fails on zero cross-dump hits, zero shared frames, or divergent answers.",
		},
		Telemetry: map[string]*obs.Report{},
	}

	// The server: load the database, then checkpoint after each burst of
	// writes. Dumps of one evolving process are exactly the cross-dump
	// workload the chunk store exists for.
	node := cluster.NewNode(cluster.XeonSpec)
	node.Install(w.Name, pair)
	p, err := node.Start(w.Name)
	if err != nil {
		return nil, err
	}
	p.PushInput(workloads.RediskaLoad(registryDB))
	if err := driveUntilBlocked(node, p); err != nil {
		return nil, err
	}
	p.TakeOutput()

	var manifest string
	for round := 0; round < 3; round++ {
		if round > 0 {
			for i := uint64(0); i < 64; i++ {
				k := (uint64(round)*64 + i) % registryDB
				p.PushInput(workloads.RediskaSet(1000000+7*k, k+uint64(round)))
			}
			if err := driveUntilBlocked(node, p); err != nil {
				return nil, err
			}
			p.TakeOutput()
		}
		mon := monitor.New(node.K, p, pair.Meta)
		if err := mon.Pause(1 << 22); err != nil {
			return nil, err
		}
		img, err := criu.Dump(p, criu.DumpOpts{})
		if err != nil {
			return nil, err
		}
		m, pst, err := store.Push(img, registry.PushOpts{})
		if err != nil {
			return nil, err
		}
		// Abort the transformation so the server keeps serving: the next
		// round's writes come from the same live process.
		if err := mon.ResumeLocal(); err != nil {
			return nil, err
		}
		offered := pst.ChunksHit + pst.ChunksNew
		if round > 0 && pst.ChunksHit == 0 {
			return nil, fmt.Errorf("registry: dump %d hit 0 of %d chunks; cross-dump dedup is broken", round+1, offered)
		}
		manifest = m.ID
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("push #%d", round+1),
			fmt.Sprintf("%d", pst.ChunksNew),
			fmt.Sprintf("%d", pst.ChunksHit),
			fmt.Sprintf("%.2f", float64(pst.ChunksHit)/float64(offered)),
			kb(pst.BytesElided),
			"-", "-", "-",
		})
	}

	// Clone fan-out from the last checkpoint. Every clone is an identical
	// warm server; each answers the same query batch and all answers must
	// agree byte for byte.
	for _, n := range registryFanouts {
		targets := make([]*cluster.Node, n)
		for i := range targets {
			targets[i] = cluster.NewNode(cluster.XeonSpec)
			targets[i].Install(w.Name, pair)
		}
		res, err := cluster.CloneFromRegistry(store, manifest, targets, cluster.CloneOpts{Obs: reg})
		if err != nil {
			return nil, err
		}
		if res.Frames.Len() == 0 {
			return nil, fmt.Errorf("registry: clone N=%d shares no frames", n)
		}
		var want string
		for i, cp := range res.Procs {
			if cp.AS.SharedResidentPages() == 0 {
				return nil, fmt.Errorf("registry: clone %d/%d has no COW-shared resident pages", i, n)
			}
			for k := uint64(0); k < registryDB; k += 20 {
				cp.PushInput(workloads.RediskaGet(1000000 + 7*k))
			}
			cp.CloseInput()
			if err := targets[i].K.Run(cp); err != nil {
				return nil, fmt.Errorf("registry: run clone %d/%d: %w", i, n, err)
			}
			got := string(cp.TakeOutput())
			if got == "" {
				return nil, fmt.Errorf("registry: clone %d/%d answered nothing", i, n)
			}
			if i == 0 {
				want = got
			} else if got != want {
				return nil, fmt.Errorf("registry: clone %d/%d answers diverged", i, n)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("clone N=%d", n),
			"-", "-", "-", "-",
			fmt.Sprintf("%d", res.Frames.Len()),
			ms(res.PullHost),
			ms(res.RestoreHost),
		})
	}
	t.Telemetry["registry"] = reg.Report()
	return t, nil
}
