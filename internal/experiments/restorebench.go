package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// restoreDBs are the rediska database sizes of the small/mid/large rows.
// The large row is sized so the raw image spans several wire segments
// (>4 MiB): the overlap gate below demands a multi-segment stream, since
// a single-segment transfer cannot overlap receive with install.
var restoreDBs = []struct {
	label string
	keys  uint64
}{
	{"small", 100},
	{"mid", 2000},
	{"large", 24000},
}

// restoreMode is one row group of the restore pipeline comparison.
type restoreMode struct {
	name    string
	stream  bool
	workers int
}

// restoreOnce loads db keys into a fresh rediska pair, migrates in the
// given mode, and fingerprints the restored address space before the
// process runs again — the byte-identity witness across modes. The
// returned console output covers a query sweep on the restored server.
func restoreOnce(c workloads.Class, db uint64, m restoreMode) (_ *cluster.Breakdown, _ *obs.Report, _ []byte, _ string, err error) {
	w, err := workloads.Get("rediska")
	if err != nil {
		return nil, nil, nil, "", err
	}
	xeon, pi, err := newPairOfNodes(w, c)
	if err != nil {
		return nil, nil, nil, "", err
	}
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, nil, nil, "", err
	}
	p, err := xeon.Start(w.Name)
	if err != nil {
		return nil, nil, nil, "", err
	}
	p.PushInput(workloads.RediskaLoad(db))
	for i := 0; i < 10_000_000; i++ {
		st, err := xeon.K.Step(p)
		if err != nil {
			return nil, nil, nil, "", err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	p.TakeOutput()
	reg := obs.New()
	opts := cluster.MigrateOpts{
		Obs:           reg,
		Codec:         criu.CodecFlate,
		StreamRestore: m.stream,
		Workers:       m.workers,
	}
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, opts)
	if err != nil {
		return nil, nil, nil, "", err
	}
	defer func() {
		if cerr := res.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	fp := restoreFingerprint(res.Proc.AS)
	// Query every 10th key on the restored server: the answers must match
	// across modes, an end-to-end check on top of the page fingerprint.
	for k := uint64(0); k < db; k += 10 {
		res.Proc.PushInput(workloads.RediskaGet(1000000 + 7*k))
	}
	res.Proc.CloseInput()
	if err := pi.K.Run(res.Proc); err != nil {
		return nil, nil, nil, "", err
	}
	return &res.Breakdown, reg.Report(), fp, res.Proc.ConsoleString(), nil
}

// restoreFingerprint serializes every populated page of the address
// space in index order — two restores landed the same memory iff their
// fingerprints are byte-equal.
func restoreFingerprint(as *mem.AddressSpace) []byte {
	idxs := as.PopulatedPages()
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var buf bytes.Buffer
	for _, idx := range idxs {
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], idx)
		buf.Write(hdr[:])
		data, _ := as.PageData(idx)
		buf.Write(data)
	}
	return buf.Bytes()
}

// Restore compares the serial transfer (receive everything, then
// restore) against the streaming restore pipeline (decode, verify, and
// install pages while later segments are still on the wire) on rediska
// at three database sizes. The generator hard-fails if any mode changes
// the restored bytes or query answers, if the overlap never engages on
// the large image, or if streaming fails to beat the serial modeled
// downtime there.
func Restore(c workloads.Class) (*Table, error) {
	par := runtime.NumCPU()
	modes := []restoreMode{
		{"serial", false, 1},
		{"streamed", true, 1},
		{fmt.Sprintf("streamed+%dw", par), true, par},
	}
	t := &Table{
		ID:        "restore",
		Title:     "restore pipeline: serial vs streamed vs streamed+workers (rediska, flate wire codec)",
		Header:    []string{"case", "mode", "images(KiB)", "copy(ms)", "restore(ms)", "downtime(ms)", "segments", "batches"},
		Telemetry: map[string]*obs.Report{},
	}
	for _, db := range restoreDBs {
		label := fmt.Sprintf("rediska-%s-%dkeys", db.label, db.keys)
		var serial *cluster.Breakdown
		var goldFP []byte
		var goldOut string
		for _, m := range modes {
			bd, rep, fp, out, err := restoreOnce(c, db.keys, m)
			if err != nil {
				return nil, fmt.Errorf("restore %s %s: %w", label, m.name, err)
			}
			if m.name == "serial" {
				serial, goldFP, goldOut = bd, fp, out
			} else {
				if !bytes.Equal(fp, goldFP) {
					return nil, fmt.Errorf("restore %s %s: restored memory differs from the serial transfer", label, m.name)
				}
				if out != goldOut {
					return nil, fmt.Errorf("restore %s %s: query answers differ from the serial transfer", label, m.name)
				}
			}
			t.Rows = append(t.Rows, []string{
				label, m.name, kb(bd.ImageBytes), ms(bd.Copy), ms(bd.Restore), ms(bd.Downtime),
				fmt.Sprintf("%d", bd.StreamSegments), fmt.Sprintf("%d", bd.StreamBatches),
			})
			t.Telemetry[label+"/"+m.name] = rep
			if db.label == "large" && m.stream {
				if bd.StreamSegments < 2 || bd.StreamBatches < 2 {
					return nil, fmt.Errorf("restore %s %s: overlap never engaged (segments=%d batches=%d, want both >= 2)",
						label, m.name, bd.StreamSegments, bd.StreamBatches)
				}
				if bd.Downtime >= serial.Downtime {
					return nil, fmt.Errorf("restore %s %s: modeled downtime %v did not beat serial %v",
						label, m.name, bd.Downtime, serial.Downtime)
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"serial downtime = checkpoint+recode+copy+restore; streamed downtime replaces copy+restore with max(copy, restore)",
		"segments/batches prove the overlap: pages were installing while later wire segments were still arriving",
		"every mode must land byte-identical memory and identical query answers; the generator hard-fails otherwise",
		fmt.Sprintf("worker fan-out is machine-dependent (this run: %d CPUs); install stays byte-identical at any width", par))
	return t, nil
}
