package experiments

import (
	"fmt"

	"time"

	"github.com/dapper-sim/dapper/internal/attack"
	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/core"
	"github.com/dapper-sim/dapper/internal/energy"
	"github.com/dapper-sim/dapper/internal/gadget"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/workloads"
)

func energyJob(name string, cycles uint64) energy.JobClass {
	return energy.JobClass{Name: name, Cycles: cycles}
}

func compareEnergy(job energy.JobClass, pis int, evictSec float64) (energy.Improvement, error) {
	return energy.Compare(job, pis, evictSec)
}

// figSecurityBenchmarks are the programs shuffled and scanned in
// Figs. 9-11 (rediska and nginz stand in for the paper's Redis and Nginx).
var figSecurityBenchmarks = []string{"cg", "mg", "ep", "ft", "is", "linpack", "dhrystone", "kmeans", "rediska", "nginz"}

// Fig9 regenerates the stack-shuffle time breakdown.
func Fig9(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "stack-shuffle (SBI + image rewrite) time per benchmark",
		Header: []string{"benchmark", "arch", "code(KiB)", "patched(B)", "modeled(ms)", "host(ms)"},
	}
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	for _, name := range figSecurityBenchmarks {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		pair, err := workloads.CompilePair(w, c)
		if err != nil {
			return nil, err
		}
		for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
			bin := pair.ByArch(arch)
			host, report, err := timeShuffle(bin)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s %v: %w", name, arch, err)
			}
			node := xeon
			if arch == isa.SARM {
				node = pi
			}
			modeled := cluster.ShuffleTime(node, uint64(len(bin.Text)))
			t.Rows = append(t.Rows, []string{
				name, arch.String(), kb(uint64(len(bin.Text))),
				fmt.Sprintf("%d", report.Patched), ms(modeled), fmt.Sprintf("%.2f", host),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: avg 573 ms on x86, 3.2 s on arm; shuffle time proportional to code size",
		"modeled = code-size-linear cost on that node; host = this Go implementation's wall time")
	return t, nil
}

// timeShuffle measures the host wall time (ms) of one ShuffleBinary run.
func timeShuffle(bin *compiler.Binary) (float64, *core.ShuffleReport, error) {
	start := time.Now()
	_, report, err := core.ShuffleBinary(bin, 7)
	return float64(time.Since(start).Microseconds()) / 1000, report, err
}

// Fig10 regenerates the entropy measurement.
func Fig10(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "average bits of entropy introduced by stack shuffling",
		Header: []string{"benchmark", "x86 bits", "arm bits", "x86 frames", "arm excluded-slots"},
	}
	var sumX, sumA float64
	for _, name := range figSecurityBenchmarks {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		pair, err := workloads.CompilePair(w, c)
		if err != nil {
			return nil, err
		}
		_, rx, err := core.ShuffleBinary(pair.X86, 11)
		if err != nil {
			return nil, err
		}
		_, ra, err := core.ShuffleBinary(pair.ARM, 11)
		if err != nil {
			return nil, err
		}
		excluded := 0
		for _, f := range ra.PerFunc {
			excluded += f.Excluded
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", rx.AvgBitsApp), fmt.Sprintf("%.2f", ra.AvgBitsApp),
			fmt.Sprintf("%d", len(rx.PerFunc)), fmt.Sprintf("%d", excluded),
		})
		sumX += rx.AvgBitsApp
		sumA += ra.AvgBitsApp
	}
	n := float64(len(figSecurityBenchmarks))
	t.Rows = append(t.Rows, []string{"AVERAGE", fmt.Sprintf("%.2f", sumX/n), fmt.Sprintf("%.2f", sumA/n), "", ""})
	t.Notes = append(t.Notes,
		"paper: x86 avg 4.74 bits vs arm avg 3.33 bits — arm lower because LDP/STP pair-accessed slots are excluded",
		"4 bits => 1+(2*4-1)!! = 106 possible frames, 0.125 per-allocation guess probability")
	return t, nil
}

// Fig11 regenerates the ROP-gadget attack-surface comparison against the
// Popcorn-style (in-process migration runtime) baseline.
func Fig11(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "ROP gadget reduction vs Popcorn-Linux-style in-process runtime",
		Header: []string{"benchmark", "arch", "dapper gadgets", "popcorn gadgets", "reduction %"},
	}
	var sumX, sumA float64
	var nX, nA int
	for _, name := range figSecurityBenchmarks {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		src := w.Source(c)
		dapperPair, err := workloads.CompilePair(w, c)
		if err != nil {
			return nil, err
		}
		popcornPair, err := gadget.PopcornPair(src)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", name, err)
		}
		for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
			cmp := gadget.CompareBinaries(dapperPair.ByArch(arch), popcornPair.ByArch(arch))
			t.Rows = append(t.Rows, []string{
				name, arch.String(),
				fmt.Sprintf("%d", cmp.Dapper), fmt.Sprintf("%d", cmp.Popcorn),
				fmt.Sprintf("%.1f", cmp.ReductionPct),
			})
			if arch == isa.SX86 {
				sumX += cmp.ReductionPct
				nX++
			} else {
				sumA += cmp.ReductionPct
				nA++
			}
		}
	}
	t.Rows = append(t.Rows, []string{"AVERAGE", "sx86", "", "", fmt.Sprintf("%.1f", sumX/float64(nX))})
	t.Rows = append(t.Rows, []string{"AVERAGE", "sarm", "", "", fmt.Sprintf("%.1f", sumA/float64(nA))})
	t.Notes = append(t.Notes,
		"paper: average reduction 59.28% (x86) and 71.91% (arm) over Popcorn Linux binaries")
	return t, nil
}

// Attacks regenerates the §IV-B security case studies.
func Attacks() (*Table, error) {
	t := &Table{
		ID:     "attacks",
		Title:  "security case studies: DOP/BOPC payloads vs DAPPER policies",
		Header: []string{"scenario", "payload", "defense", "success rate"},
	}
	pair, err := compiler.Compile(attack.VulnServerSrc)
	if err != nil {
		return nil, err
	}
	fire := func(bin *compiler.Binary, payload []byte) attack.Result {
		k := kernel.New(kernel.Config{})
		p, err := k.StartProcess(bin.LoadSpec("/bin/vuln." + bin.Arch.String()))
		if err != nil {
			return attack.Result{Crashed: true}
		}
		return attack.Fire(k, p, payload)
	}
	rate := func(hits, total int) string { return fmt.Sprintf("%d/%d", hits, total) }

	// 1. Min-DOP vs unprotected.
	dop, err := attack.BuildPayload(pair.Meta, "handle", "buf", isa.SX86, attack.MinDOPTargets(isa.SX86), attack.Counters())
	if err != nil {
		return nil, err
	}
	res := fire(pair.X86, dop)
	t.Rows = append(t.Rows, []string{"min-dop", "admin overwrite", "none", rate(b2i(res.Escalated), 1)})

	// 2. Min-DOP vs stack shuffling, 25 variants.
	hits := 0
	const trials = 25
	for seed := int64(1); seed <= trials; seed++ {
		sh, _, err := core.ShuffleBinary(pair.X86, seed)
		if err != nil {
			return nil, err
		}
		if fire(sh, dop).Escalated {
			hits++
		}
	}
	t.Rows = append(t.Rows, []string{"min-dop", "admin overwrite", "stack shuffling", rate(hits, trials)})

	// 3. BOPC two-target chain vs shuffling.
	bopc, err := attack.BuildPayload(pair.Meta, "handle", "buf", isa.SX86, attack.BOPCTargets(), attack.Counters())
	if err != nil {
		return nil, err
	}
	res = fire(pair.X86, bopc)
	t.Rows = append(t.Rows, []string{"bopc", "admin+key chain", "none", rate(b2i(res.Pwned), 1)})
	hits = 0
	for seed := int64(50); seed < 50+trials; seed++ {
		sh, _, err := core.ShuffleBinary(pair.X86, seed)
		if err != nil {
			return nil, err
		}
		if fire(sh, bopc).Pwned {
			hits++
		}
	}
	t.Rows = append(t.Rows, []string{"bopc", "admin+key chain", "stack shuffling", rate(hits, trials)})

	// 4. Min-DOP vs cross-ISA migration.
	xeon := cluster.NewNode(cluster.XeonSpec)
	pi := cluster.NewNode(cluster.PiSpec)
	xeon.Install("vuln", pair)
	pi.Install("vuln", pair)
	p, err := xeon.Start("vuln")
	if err != nil {
		return nil, err
	}
	p.PushInput(workloads.Words(1, 0)) // benign
	for i := 0; i < 100000; i++ {
		st, err := xeon.K.Step(p)
		if err != nil {
			return nil, err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	mres, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{})
	if err != nil {
		return nil, err
	}
	out := attack.Fire(pi.K, mres.Proc, dop)
	t.Rows = append(t.Rows, []string{"min-dop", "x86-layout payload", "cross-ISA migration", rate(b2i(out.Escalated), 1)})
	t.Notes = append(t.Notes,
		"paper: shuffling breaks DOP gadget chaining/dispatching; cross-ISA rewriting relocates all live values")
	return t, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Fig1 summarizes the qualitative complexity/extensibility comparison: the
// transformation logic's footprint inside vs outside the target's address
// space.
func Fig1(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "attack-surface inventory: where the transformation logic lives",
		Header: []string{"system", "in-process additions", "text bytes (nginz)", "external components"},
	}
	w, err := workloads.Get("nginz")
	if err != nil {
		return nil, err
	}
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, err
	}
	popcorn, err := gadget.PopcornPair(w.Source(c))
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"dapper", "equivalence-point checkers only",
		fmt.Sprintf("%d", len(pair.X86.Text)),
		"monitor + rewriter + CRIU (outside the process)",
	})
	t.Rows = append(t.Rows, []string{
		"popcorn-style", "full migration runtime linked in",
		fmt.Sprintf("%d", len(popcorn.X86.Text)),
		"modified kernel (page sharing)",
	})
	return t, nil
}
