package experiments

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// wirecodecDB is the rediska key count: enough page volume that the codec
// savings are structural rather than noise, small enough for bench-quick.
const wirecodecDB = 2000

// wirecodecRun migrates a loaded rediska under live pre-copy traffic with
// the given wire codec and delta setting, returning the breakdown and the
// run's telemetry report.
func wirecodecRun(c workloads.Class, codec criu.Codec, delta bool) (*cluster.Breakdown, *obs.Report, error) {
	w, err := workloads.Get("rediska")
	if err != nil {
		return nil, nil, err
	}
	xeon, pi, err := newPairOfNodes(w, c)
	if err != nil {
		return nil, nil, err
	}
	pair, err := workloads.CompilePair(w, c)
	if err != nil {
		return nil, nil, err
	}
	p, err := xeon.Start(w.Name)
	if err != nil {
		return nil, nil, err
	}
	p.PushInput(workloads.RediskaLoad(wirecodecDB))
	for i := 0; i < 5_000_000; i++ {
		st, err := xeon.K.Step(p)
		if err != nil {
			return nil, nil, err
		}
		if st.Blocked == 1 && p.PendingInput() == 0 {
			break
		}
	}
	p.TakeOutput()
	reg := obs.New()
	res, err := cluster.Migrate(xeon, pi, p, pair.Meta, cluster.MigrateOpts{
		Obs:   reg,
		Codec: codec,
		Delta: delta,
		PreCopy: &cluster.PreCopyOpts{
			RunUntilIdle: true,
			BetweenRounds: func(p *kernel.Process, round int) {
				// The same bounded overwrite burst as fig7x: re-dirtied
				// pages are what delta encoding exists to shrink.
				for i := uint64(0); i < 32; i++ {
					k := (uint64(round)*32 + i) % wirecodecDB
					p.PushInput(workloads.RediskaSet(1000000+7*k, k))
				}
			},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if err := res.Close(); err != nil {
		return nil, nil, err
	}
	return &res.Breakdown, reg.Report(), nil
}

// Wirecodec measures what the v3 transport layers save on the wire for a
// live rediska pre-copy migration: batching alone (none), per-batch flate,
// and XOR-delta encoding stacked under flate, against the raw legacy
// framing. The run fails — not just under-reports — if the stacked codec
// does not actually shrink bytes-on-wire, or if the delta encoder never
// fired: a silent regression in either is exactly what this table gates in
// CI.
func Wirecodec(c workloads.Class) (*Table, error) {
	t := &Table{
		ID:        "wirecodec",
		Title:     "wire codecs on live rediska pre-copy: raw vs batched vs flate vs delta+flate",
		Header:    []string{"mode", "rounds", "raw(KiB)", "wire(KiB)", "saved"},
		Telemetry: map[string]*obs.Report{},
	}
	configs := []struct {
		name  string
		codec criu.Codec
		delta bool
	}{
		{"raw", criu.CodecRaw, false},
		{"batched", criu.CodecNone, false},
		{"flate", criu.CodecFlate, false},
		{"delta+flate", criu.CodecFlate, true},
	}
	var rawWire, stackedWire uint64
	for _, cfg := range configs {
		bd, rep, err := wirecodecRun(c, cfg.codec, cfg.delta)
		if err != nil {
			return nil, fmt.Errorf("wirecodec %s: %w", cfg.name, err)
		}
		saved := "0.0%"
		if bd.ImageBytes > 0 {
			saved = fmt.Sprintf("%.1f%%", 100*(1-float64(bd.WireBytes)/float64(bd.ImageBytes)))
		}
		t.Rows = append(t.Rows, []string{
			cfg.name, fmt.Sprintf("%d", bd.Rounds), kb(bd.ImageBytes), kb(bd.WireBytes), saved,
		})
		t.Telemetry["rediska/"+cfg.name] = rep
		switch {
		case cfg.name == "raw":
			rawWire = bd.WireBytes
			if bd.WireBytes != bd.ImageBytes {
				return nil, fmt.Errorf("wirecodec raw: wire %d != image %d; legacy framing must not transform bytes",
					bd.WireBytes, bd.ImageBytes)
			}
		case cfg.delta:
			stackedWire = bd.WireBytes
			if rep.Counters["dump.pages_delta"] == 0 {
				return nil, fmt.Errorf("wirecodec %s: delta encoder emitted no pages under live traffic", cfg.name)
			}
		}
	}
	if stackedWire >= rawWire {
		return nil, fmt.Errorf("wirecodec: delta+flate shipped %d bytes, raw baseline %d — the codec stack saved nothing",
			stackedWire, rawWire)
	}
	t.Notes = append(t.Notes,
		"raw/wire bytes cover all pre-copy rounds plus the final transfer; saved = 1 - wire/raw",
		"delta rounds XOR re-dirtied pages against the chain, then flate compresses the batch; images decode byte-identically in every mode",
		"the run errors out if delta+flate does not beat the raw baseline on the wire, or if no delta pages were encoded")
	return t, nil
}
