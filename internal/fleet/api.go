package fleet

// The daemon's control protocol: one newline-delimited JSON request and
// one response per connection over a local (unix-domain) socket. The
// protocol is deliberately minimal — dapperctl performs exactly one
// operation per invocation, so connection reuse buys nothing, and
// one-shot connections make the server's lifecycle trivial to reason
// about (every accepted connection is served to completion and closed by
// a joined goroutine).

// Ops understood by the daemon.
const (
	OpPing   = "ping"
	OpSubmit = "submit"
	OpJobs   = "jobs"
	OpJob    = "job"
	OpStatus = "status"
	OpDrain  = "drain"
	OpReport = "report"
)

// Request is one client call.
type Request struct {
	Op string `json:"op"`
	// Spec accompanies OpSubmit.
	Spec *JobSpec `json:"spec,omitempty"`
	// JobID accompanies OpJob.
	JobID int `json:"job_id,omitempty"`
	// Node and Undrain accompany OpDrain.
	Node    string `json:"node,omitempty"`
	Undrain bool   `json:"undrain,omitempty"`
}

// StatusView is the OpStatus summary: the fleet report without the full
// obs payload.
type StatusView struct {
	Policy    string       `json:"policy"`
	Nodes     []NodeReport `json:"nodes"`
	Submitted uint64       `json:"jobs_submitted"`
	Done      uint64       `json:"jobs_done"`
	Failed    uint64       `json:"jobs_failed"`
	Pending   int          `json:"jobs_pending"`
	Running   int          `json:"jobs_running"`
	Retries   uint64       `json:"retries"`
	Rollbacks uint64       `json:"rollbacks"`
}

// Response is the daemon's answer.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	JobID  int          `json:"job_id,omitempty"`
	Job    *JobView     `json:"job,omitempty"`
	Jobs   []JobView    `json:"jobs,omitempty"`
	Status *StatusView  `json:"status,omitempty"`
	Report *FleetReport `json:"report,omitempty"`
}

// status condenses a report into the OpStatus view.
func statusOf(rep *FleetReport) *StatusView {
	return &StatusView{
		Policy:    rep.Policy,
		Nodes:     rep.Nodes,
		Submitted: rep.Submitted,
		Done:      rep.Done,
		Failed:    rep.FailedJ,
		Pending:   rep.Pending,
		Running:   rep.Running,
		Retries:   rep.Retries,
		Rollbacks: rep.Rollbacks,
	}
}
