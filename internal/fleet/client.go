package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
)

// Call performs one request against the daemon at socket and returns its
// response. Protocol errors (the daemon answered with Err set) surface
// as Go errors, so callers only handle the success shape.
func Call(socket string, req Request) (*Response, error) {
	conn, err := net.Dial("unix", socket)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s (is dapperd running?): %w", socket, err)
	}
	var resp Response
	err = func() error {
		if err := json.NewEncoder(conn).Encode(req); err != nil {
			return fmt.Errorf("fleet: send request: %w", err)
		}
		if err := json.NewDecoder(conn).Decode(&resp); err != nil {
			return fmt.Errorf("fleet: read response: %w", err)
		}
		return nil
	}()
	if cerr := conn.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("fleet: close connection: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}
