package fleet

import (
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
)

// Clone jobs are the fleet face of the registry's copy-on-write restore
// path: one stored checkpoint manifest fanned out onto a node as N
// processes sharing resident page frames until first write. Unlike a
// migration job there is no live source process — the "source" is the
// manifest, pinned in the registry under owner "job-<id>" from submit
// until the job is terminal so GC can never sweep a checkpoint a
// pending job still needs. The pin lives in the registry's own journal;
// the fleet journal records the job transitions. A crash between the
// two journals' writes is healed at startup by re-asserting pins for
// pending jobs and re-releasing them for terminal ones (both
// idempotent).

// cloneOwner is the registry ref owner tag for a clone job's pin.
func cloneOwner(id int) string { return fmt.Sprintf("job-%d", id) }

// reconcileClonePins aligns registry manifest pins with the replayed job
// states at startup. Called from NewManager before the scheduler exists.
func (m *Manager) reconcileClonePins() error {
	for _, id := range m.jobOrder {
		job := m.jobs[id]
		if job.Spec.Manifest == "" {
			continue
		}
		if m.cfg.Registry == nil {
			return fmt.Errorf("fleet: journaled clone job %d needs Config.Registry", id)
		}
		switch job.State {
		case Pending:
			if err := m.cfg.Registry.Ref(job.Spec.Manifest, cloneOwner(id)); err != nil {
				return fmt.Errorf("fleet: re-pin clone job %d: %w", id, err)
			}
		case Done, Failed:
			if err := m.cfg.Registry.Unref(job.Spec.Manifest, cloneOwner(id)); err != nil {
				return fmt.Errorf("fleet: release clone job %d: %w", id, err)
			}
		}
	}
	return nil
}

// scheduleClone places and dispatches one clone job. Called from
// schedule with m.mu held; returns false when the fleet-wide job bound
// is reached (nothing more can dispatch this pass).
func (m *Manager) scheduleClone(job *Job) bool {
	dst := m.pickCloneTarget(job)
	if dst == nil {
		return true
	}
	if !m.jobSlots.TryAcquire() {
		return false
	}
	if !dst.acquire() {
		m.jobSlots.Release()
		return true
	}
	if m.testHookAfterAcquire != nil {
		m.testHookAfterAcquire(job, dst, dst)
	}
	// Same heartbeat race as migration placements: re-check under the
	// acquired slot.
	if dst.Down() {
		dst.release(0)
		m.jobSlots.Release()
		m.reg.Counter("fleet.placement_races").Inc()
		return true
	}
	job.State = Running
	job.Attempts++
	job.Dst = dst.Name
	attempt := job.Attempts
	if err := m.journal.Append(Event{Type: "start", Job: job.ID, Attempt: attempt, Dst: dst.Name}); err != nil {
		job.State = Failed
		job.Err = err.Error()
		dst.release(0)
		m.jobSlots.Release()
		return true
	}
	m.reg.Counter("fleet.dispatches").Inc()
	m.wg.Add(1)
	go m.runCloneJob(job, dst)
	return true
}

// pickCloneTarget chooses the node the clones restore onto: the pinned
// DstNode if the spec names one, otherwise the placement policy over
// every eligible node (there is no source to exclude).
func (m *Manager) pickCloneTarget(job *Job) *NodeState {
	if job.Spec.DstNode != "" {
		n := m.nodes[job.Spec.DstNode]
		if n == nil || !eligible(n) {
			return nil
		}
		return n
	}
	wantArch, constrained := archOf(job.Spec.TargetArch)
	var candidates []*NodeState
	for _, name := range m.nodeOrder {
		n := m.nodes[name]
		if !eligible(n) || (constrained && n.Arch() != wantArch) {
			continue
		}
		candidates = append(candidates, n)
	}
	return m.policy.Pick(job, nil, candidates)
}

// runCloneJob is the clone executor goroutine: one attempt, then state
// transition, mirroring runJob.
func (m *Manager) runCloneJob(job *Job, dst *NodeState) {
	defer m.wg.Done()
	//lint:ignore wallclock host busy-time for slot utilization accounting; feeds fleet.attempt_host_ns, never a modeled breakdown
	start := time.Now()
	err := m.attemptClone(job, dst)
	//lint:ignore wallclock host busy-time for slot utilization accounting; feeds fleet.attempt_host_ns, never a modeled breakdown
	busy := time.Since(start)
	dst.release(busy)
	m.jobSlots.Release()
	m.reg.Histogram("fleet.attempt_host_ns").Observe(busy)
	m.settleClone(job, dst, err)
	m.kick()
}

// attemptClone restores the manifest onto dst Clone times and runs every
// clone to completion. All clones must produce byte-identical output —
// the fan-out analogue of the migration path's native-reference check.
func (m *Manager) attemptClone(job *Job, dst *NodeState) error {
	targets := make([]*cluster.Node, job.Spec.Clone)
	for i := range targets {
		targets[i] = dst.Node
	}
	res, err := cluster.CloneFromRegistry(m.cfg.Registry, job.Spec.Manifest, targets, cluster.CloneOpts{
		Workers: job.Spec.Opts.Workers,
		Obs:     m.reg,
	})
	if err != nil {
		return fmt.Errorf("fleet: clone %.12s onto %s: %w", job.Spec.Manifest, dst.Name, err)
	}
	var out string
	for i, p := range res.Procs {
		if runErr := dst.Node.K.Run(p); runErr != nil {
			for _, q := range res.Procs[i:] {
				dst.Node.K.Reap(q)
			}
			return fmt.Errorf("fleet: run clone %d on %s: %w", i, dst.Name, runErr)
		}
		if i == 0 {
			out = p.ConsoleString()
			continue
		}
		if got := p.ConsoleString(); got != out {
			m.reg.Counter("fleet.corrupt_outputs").Inc()
			return fmt.Errorf("fleet: clone %d output diverged: %q != %q", i, got, out)
		}
	}
	m.mu.Lock()
	job.Output = out
	m.mu.Unlock()
	return nil
}

// settleClone applies a clone attempt's outcome under the manager lock.
// On a terminal transition the manifest pin is released only after the
// terminal event is durable in the fleet journal: a crash between the
// fsync and the Unref leaves a leaked pin that startup reconciliation
// re-releases (Unref of an absent ref is a no-op).
func (m *Manager) settleClone(job *Job, dst *NodeState, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		job.State = Done
		job.Err = ""
		dst.done.Add(1)
		m.reg.Counter("fleet.jobs_done").Inc()
		if jerr := m.journal.Append(Event{Type: "done", Job: job.ID, Retries: job.Retries}); jerr != nil {
			job.Err = jerr.Error()
		}
		m.releaseClonePin(job)
		return
	}
	dst.failed.Add(1)
	m.reg.Counter("fleet.attempts_failed").Inc()
	if job.Attempts <= job.Spec.MaxRetries {
		job.State = Pending
		job.Retries++
		job.Err = err.Error()
		//lint:ignore wallclock retry backoff is host-side scheduling; the modeled migration clock never sees it
		job.notBefore = time.Now().Add(m.backoffFor(job.Attempts))
		m.reg.Counter("fleet.retries").Inc()
		if jerr := m.journal.Append(Event{Type: "retry", Job: job.ID, Err: err.Error()}); jerr != nil {
			job.State = Failed
			job.Err = jerr.Error()
			m.releaseClonePin(job)
		}
		return
	}
	job.State = Failed
	job.Err = err.Error()
	m.reg.Counter("fleet.jobs_failed").Inc()
	if jerr := m.journal.Append(Event{Type: "failed", Job: job.ID, Err: err.Error(), Retries: job.Retries}); jerr != nil {
		job.Err = jerr.Error()
	}
	m.releaseClonePin(job)
}

// releaseClonePin drops the job's manifest pin; callers hold m.mu and
// have already journaled the terminal transition.
func (m *Manager) releaseClonePin(job *Job) {
	if uerr := m.cfg.Registry.Unref(job.Spec.Manifest, cloneOwner(job.ID)); uerr != nil && job.Err == "" {
		job.Err = uerr.Error()
	}
}
