package fleet

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/registry"
)

// pushCheckpoint materializes a mid-run checkpoint of the counter
// program into the store (via a registry-routed migration) and returns
// its manifest ID.
func pushCheckpoint(t *testing.T, store *registry.Store) string {
	t.Helper()
	pair, err := compiler.Compile(counter)
	if err != nil {
		t.Fatal(err)
	}
	src := cluster.NewNode(cluster.XeonSpec)
	src.Install("counter", pair)
	dst := cluster.NewNode(cluster.PiSpec)
	dst.Install("counter", pair)

	ref := cluster.NewNode(cluster.XeonSpec)
	ref.Install("counter", pair)
	rp, err := ref.Start("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.K.Run(rp); err != nil {
		t.Fatal(err)
	}

	p, err := src.Start("counter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.K.RunBudget(p, rp.VCycles/2); err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Migrate(src, dst, p, pair.Meta, cluster.MigrateOpts{Registry: store})
	if err != nil {
		t.Fatal(err)
	}
	dst.K.Reap(res.Proc)
	return res.Manifest
}

// TestCloneJobPinsManifestAcrossReplay is the crash-window proof for the
// two-journal design: job states live in the fleet journal, manifest
// pins in the registry journal, and a crash can land exactly between
// the fsync of a job-completion event and the matching refcount update.
// The test forges that crash — a "done" event durably journaled, the
// Unref never issued — restarts the manager, and proves that (a) replay
// reconciliation releases the leaked pin, (b) no chunk is GC'd while a
// replayed pending job still references the manifest, and (c) the
// pending job then executes from those chunks and its own release makes
// the checkpoint collectable.
func TestCloneJobPinsManifestAcrossReplay(t *testing.T) {
	dir := t.TempDir()
	store, err := registry.Open(filepath.Join(dir, "registry"), registry.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = store.Close() }() // plain teardown
	manifest := pushCheckpoint(t, store)

	cfg := fastConfig()
	cfg.Journal = filepath.Join(dir, "fleet.jsonl")
	cfg.Registry = store

	// Lifetime 1: two clone jobs submitted, both pinning the manifest.
	// The manager is never started, so both sit Pending.
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.AddNode("pi0", cluster.PiSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m1.RegisterProgram("counter", counter); err != nil {
		t.Fatal(err)
	}
	idA, err := m1.Submit(JobSpec{Program: "counter", Manifest: manifest, Clone: 2, DstNode: "pi0"})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := m1.Submit(JobSpec{Program: "counter", Manifest: manifest, DstNode: "pi0"})
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Manifest(manifest).Refs(); got != 2 {
		t.Fatalf("manifest refs after two submits: %d, want 2", got)
	}
	// The crash: job B's completion event reaches the fleet journal
	// (fsync'd by Append) but the process dies before the registry Unref.
	if err := m1.journal.Append(Event{Type: "done", Job: idB}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Stop(); err != nil {
		t.Fatal(err)
	}

	// Lifetime 2: replay. Reconciliation must release B's leaked pin and
	// keep A's.
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(t, m2)
	if got := store.Manifest(manifest).Refs(); got != 1 {
		t.Fatalf("manifest refs after replay: %d, want 1 (job A pending, job B done)", got)
	}
	if v, _ := m2.Job(idB); v.State != "done" {
		t.Fatalf("job B after replay: %s, want done", v.State)
	}

	// GC with the replayed pending job's pin live must sweep nothing.
	gst, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gst.SweptManifests != 0 || gst.SweptChunks != 0 {
		t.Fatalf("GC swept %d manifests / %d chunks under a replayed pending job's pin",
			gst.SweptManifests, gst.SweptChunks)
	}

	// The pending job executes from the surviving chunks.
	if err := m2.AddNode("pi0", cluster.PiSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m2.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	if v, _ := m2.Job(idA); v.State != "done" {
		t.Fatalf("job A after restart: state %s (err %q)", v.State, v.Err)
	}
	if got := store.Manifest(manifest).Refs(); got != 0 {
		t.Fatalf("manifest refs after job A completed: %d, want 0", got)
	}
	// Nothing pins the checkpoint now; GC reclaims it fully.
	gst, err = store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gst.SweptManifests == 0 || gst.SweptChunks == 0 {
		t.Fatalf("final GC swept %d manifests / %d chunks, want both nonzero",
			gst.SweptManifests, gst.SweptChunks)
	}
	if st := store.Stat(); st.Chunks != 0 || st.Manifests != 0 {
		t.Fatalf("store not empty after final GC: %+v", st)
	}
}
