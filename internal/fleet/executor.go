package fleet

import (
	"fmt"
	"net"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
)

// The executor runs one migration attempt end to end:
//
//  1. First attempt only: start the job's program on the source node and
//     run it to the spec's cycle fraction (the migration point).
//  2. cluster.Migrate with the job's per-job MigrateOpts (workers,
//     dedup, codec, delta, lazy/precopy) and the fleet obs registry.
//     Restore pre-flights every image through imgcheck, so a corrupt
//     image can never be silently resumed.
//  3. Lazy jobs then run the restored process, realizing post-copy
//     faults; a fetch that exhausts its retries surfaces as a
//     kernel.IsLazyFaultError.
//  4. On a retryable failure: roll back to the source — release the
//     transport, reap the dead restored process
//     (cluster.MigrationResult.Rollback), resume the paused source at
//     its equivalence points (monitor.ResumeLocal) — and requeue the job
//     with exponential backoff.
//  5. On success: run the restored process to completion and verify its
//     combined console output against the program's native reference —
//     the end-to-end corruption check.
//
// Node slots are held for the attempt's whole lifetime and released
// before the backoff sleep, so a retrying job never starves its nodes.

// maxPauses bounds the monitor's equivalence-point wait per attempt.
const maxPauses = 1 << 20

// runJob is the executor goroutine: one attempt, then state transition.
func (m *Manager) runJob(job *Job, src, dst *NodeState, attempt int) {
	defer m.wg.Done()
	//lint:ignore wallclock host busy-time for slot utilization accounting; feeds fleet.attempt_host_ns, never a modeled breakdown
	start := time.Now()
	err := m.attempt(job, src, dst, attempt)
	//lint:ignore wallclock host busy-time for slot utilization accounting; feeds fleet.attempt_host_ns, never a modeled breakdown
	busy := time.Since(start)
	src.release(busy)
	dst.release(busy)
	m.jobSlots.Release()
	m.reg.Histogram("fleet.attempt_host_ns").Observe(busy)
	m.settle(job, src, dst, err)
	m.kick()
}

// settle applies an attempt's outcome to the job under the manager lock
// and journals the transition.
func (m *Manager) settle(job *Job, src, dst *NodeState, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		job.State = Done
		job.Err = ""
		job.proc = nil
		src.done.Add(1)
		dst.done.Add(1)
		m.reg.Counter("fleet.jobs_done").Inc()
		m.reg.Histogram("fleet.migration_ns").Observe(job.MigrationTime)
		m.reg.Histogram("fleet.downtime_ns").Observe(job.Downtime)
		if jerr := m.journal.Append(Event{Type: "done", Job: job.ID, Retries: job.Retries}); jerr != nil {
			job.Err = jerr.Error()
		}
		return
	}
	src.failed.Add(1)
	dst.failed.Add(1)
	m.reg.Counter("fleet.attempts_failed").Inc()
	retryable := job.proc != nil // rollback preserved the source process
	if retryable && job.Attempts <= job.Spec.MaxRetries {
		job.State = Pending
		job.Retries++
		job.Err = err.Error()
		//lint:ignore wallclock retry backoff is host-side scheduling; the modeled migration clock never sees it
		job.notBefore = time.Now().Add(m.backoffFor(job.Attempts))
		m.reg.Counter("fleet.retries").Inc()
		if jerr := m.journal.Append(Event{Type: "retry", Job: job.ID, Err: err.Error()}); jerr != nil {
			job.State = Failed
			job.Err = jerr.Error()
		}
		return
	}
	job.State = Failed
	job.Err = err.Error()
	job.proc = nil
	m.reg.Counter("fleet.jobs_failed").Inc()
	if jerr := m.journal.Append(Event{Type: "failed", Job: job.ID, Err: err.Error(), Retries: job.Retries}); jerr != nil {
		job.Err = jerr.Error()
	}
}

// attempt runs one migration attempt. A nil error means the job is done
// (migrated, run to completion, output verified). On a retryable failure
// the source process is left alive and resumed, and job.proc stays set;
// on an unrecoverable failure job.proc is cleared so settle fails the
// job terminally regardless of retry budget.
func (m *Manager) attempt(job *Job, src, dst *NodeState, attempt int) error {
	m.mu.Lock()
	prog := m.programs[job.Spec.Program]
	m.mu.Unlock()
	if prog == nil {
		job.proc = nil
		return fmt.Errorf("fleet: program %q vanished", job.Spec.Program)
	}
	refCycles, refOut, err := prog.reference(src.Node.Spec)
	if err != nil {
		job.proc = nil
		return err
	}

	// First dispatch: materialize the source process at the migration
	// point.
	if job.proc == nil {
		proc, err := src.Node.Start(job.Spec.Program)
		if err != nil {
			job.proc = nil
			return fmt.Errorf("fleet: start %q on %s: %w", job.Spec.Program, src.Name, err)
		}
		alive, err := src.Node.K.RunBudget(proc, uint64(float64(refCycles)*job.Spec.RunFrac))
		if err != nil {
			job.proc = nil
			return fmt.Errorf("fleet: run to %.0f%%: %w", job.Spec.RunFrac*100, err)
		}
		if !alive {
			job.proc = nil
			return fmt.Errorf("fleet: %q finished before the %.0f%% migration point", job.Spec.Program, job.Spec.RunFrac*100)
		}
		job.proc = &srcProcess{node: src.Name, proc: proc}
	}
	proc := job.proc.proc

	opts, err := m.migrateOpts(job, attempt, refCycles)
	if err != nil {
		job.proc = nil
		return err
	}

	res, err := cluster.Migrate(src.Node, dst.Node, proc, prog.pair.Meta, opts)
	if err != nil {
		// The source is still paused at its equivalence points (or never
		// fully parked); resume it so the next attempt can re-pause.
		m.rollbackToSource(job, src, proc, prog)
		return fmt.Errorf("fleet: migrate %s->%s: %w", src.Name, dst.Name, err)
	}

	// Run the restored process to completion on the destination. For
	// lazy jobs this is where injected post-copy faults surface.
	if runErr := dst.Node.K.Run(res.Proc); runErr != nil {
		if opts.Lazy && kernel.IsLazyFaultError(runErr) {
			// Mid-migration transport failure: roll back to the source.
			if rbErr := res.Rollback(); rbErr != nil {
				runErr = fmt.Errorf("%w (rollback: %v)", runErr, rbErr)
			}
			m.rollbackToSource(job, src, proc, prog)
			return fmt.Errorf("fleet: post-copy run on %s: %w", dst.Name, runErr)
		}
		// Not a transport failure — the source may already be reaped
		// (vanilla/precopy); fail terminally.
		if cerr := res.Close(); cerr != nil {
			runErr = fmt.Errorf("%w (close: %v)", runErr, cerr)
		}
		job.proc = nil
		return fmt.Errorf("fleet: run restored process on %s: %w", dst.Name, runErr)
	}
	res.FinalizeLazyStats()
	srcOut := proc.ConsoleString()
	if err := res.Close(); err != nil {
		job.proc = nil
		return fmt.Errorf("fleet: close migration: %w", err)
	}

	// End-to-end identity: source output up to the pause plus restored
	// output must equal the native run exactly.
	total := srcOut + res.Proc.ConsoleString()
	if total != refOut {
		job.proc = nil
		m.reg.Counter("fleet.corrupt_outputs").Inc()
		return fmt.Errorf("fleet: corrupt migration: output %q != native %q", total, refOut)
	}

	bd := res.Breakdown
	m.mu.Lock()
	job.MigrationTime = bd.MigrationTime()
	job.Downtime = bd.Downtime
	job.ImageBytes = bd.ImageBytes
	job.WireBytes = bd.WireBytes
	job.Output = total
	m.mu.Unlock()
	m.reg.Counter("fleet.migrated_bytes").Add(bd.WireBytes)
	return nil
}

// migrateOpts builds the attempt's cluster.MigrateOpts from the job
// spec, wiring in the fleet registry and — on fault-plan attempts — the
// criu fault injectors.
func (m *Manager) migrateOpts(job *Job, attempt int, refCycles uint64) (cluster.MigrateOpts, error) {
	codec, err := job.Spec.Opts.MigrateCodec()
	if err != nil {
		return cluster.MigrateOpts{}, err
	}
	opts := cluster.MigrateOpts{
		Workers:       job.Spec.Opts.Workers,
		Dedup:         job.Spec.Opts.Dedup,
		Codec:         codec,
		Delta:         job.Spec.Opts.Delta,
		Lazy:          job.Spec.Opts.Lazy,
		LazyTCP:       job.Spec.Opts.Lazy,
		StreamRestore: job.Spec.Opts.Stream,
		Obs:           m.reg,
		MaxPauses:     maxPauses,
	}
	if job.Spec.Opts.PreCopy {
		// Scale the between-round run budget to the program: the library
		// default (1Mi cycles) would run a short program to completion
		// before the final pause.
		opts.PreCopy = &cluster.PreCopyOpts{RoundBudget: refCycles/20 + 1}
	}
	if plan := job.Spec.Faults; plan.Active(attempt) {
		if !opts.Lazy {
			return cluster.MigrateOpts{}, fmt.Errorf("fleet: fault plans require a lazy job (faults live in the page transport)")
		}
		if spec := plan.FlakySource; spec != nil {
			s := *spec
			opts.WrapPageSource = func(src criu.PageSource) criu.PageSource {
				return criu.NewFlakySource(src, s)
			}
		}
		if spec := plan.FlakyListener; spec != nil {
			s := *spec
			opts.WrapListener = func(ln net.Listener) net.Listener {
				return criu.NewFlakyListener(ln, s)
			}
		}
		// Fail fast and deterministically: no fetch retries, so the
		// first injected fault of an attempt surfaces immediately.
		opts.PageClient = &criu.PageClientOpts{
			MaxRetries:   -1,
			FetchTimeout: 250 * time.Millisecond,
			RetryBackoff: time.Millisecond,
		}
	}
	return opts, nil
}

// rollbackToSource resumes the job's paused source process so a later
// attempt can re-pause and re-dump it. If the resume itself fails the
// job cannot continue from this process; it is cleared so the job fails
// terminally.
func (m *Manager) rollbackToSource(job *Job, src *NodeState, proc *kernel.Process, prog *program) {
	m.reg.Counter("fleet.rollbacks").Inc()
	if err := monitor.New(src.Node.K, proc, prog.pair.Meta).ResumeLocal(); err != nil {
		job.proc = nil
		m.reg.Counter("fleet.rollback_failures").Inc()
	}
}
