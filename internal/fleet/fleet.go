// Package fleet is the migration control plane: the layer that turns
// cluster.Migrate — a one-shot library call moving one process between
// two nodes — into a managed fleet of simulated machines with many
// migrations in flight.
//
// A Manager owns:
//
//   - a set of named nodes (mixed SX86/SARM cluster.Nodes with per-node
//     migration-slot capacities, bounded by parallel.Semaphore);
//   - a job queue of migration requests journaled to disk (see
//     journal.go), so a restarted daemon resumes its queue without loss
//     or duplication;
//   - a pluggable placement policy (least-loaded, isa-affinity,
//     round-robin — see placement.go) that picks each job's destination;
//   - node heartbeats with mark-down of unresponsive nodes (see
//     heartbeat.go) and drain semantics for planned maintenance;
//   - retry with exponential backoff plus rollback-to-source on
//     mid-migration failure (see executor.go), exercised
//     deterministically with criu.FlakySource/FlakyListener;
//   - an obs.Registry-backed fleet report: per-node utilization,
//     migration latency percentiles, retry and rollback counts (see
//     report.go).
//
// cmd/dapperd wraps a Manager in a daemon speaking newline-delimited
// JSON over a local socket (server.go/client.go/api.go), and dapperctl's
// submit/status/jobs/drain-node subcommands are clients of that socket.
// docs/fleet.md walks through the architecture and the job lifecycle
// state machine.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/obs"
	"github.com/dapper-sim/dapper/internal/parallel"
	"github.com/dapper-sim/dapper/internal/registry"
	"github.com/dapper-sim/dapper/internal/updatecheck"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// Config configures a Manager.
type Config struct {
	// Journal is the path of the append-only job journal; empty runs
	// in-memory only (no durability, no resume).
	Journal string
	// Policy names the placement policy (see NewPlacement); empty
	// selects least-loaded.
	Policy string
	// MaxJobs bounds migrations in flight fleet-wide; 0 derives the
	// bound from the sum of node capacities at Start.
	MaxJobs int
	// RetryBase is the first retry's backoff (default 10ms), doubling
	// per attempt up to RetryMax (default 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Heartbeat configures node health probing; zero values select
	// defaults (see HeartbeatConfig).
	Heartbeat HeartbeatConfig
	// SchedulerTick is the scheduler's idle re-scan period (default
	// 5ms): the interval at which backoff deadlines and freed slots are
	// re-examined even when no completion wakes the scheduler.
	SchedulerTick time.Duration
	// Obs is the fleet telemetry registry; nil creates a private one
	// (the report always works).
	Obs *obs.Registry
	// Registry is the persistent content-addressed checkpoint store
	// clone jobs restore from (see JobSpec.Manifest). Required for
	// clone jobs; plain migration jobs ignore it. The manager pins each
	// clone job's manifest in the store (owner "job-<id>") from submit
	// until the job is terminal, and reconciles those pins against the
	// replayed job states at startup.
	Registry *registry.Store
}

func (c Config) withDefaults() Config {
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.SchedulerTick <= 0 {
		c.SchedulerTick = 5 * time.Millisecond
	}
	c.Heartbeat = c.Heartbeat.withDefaults()
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	return c
}

// NodeState couples a cluster node with its control-plane state:
// capacity accounting, health, and drain status. Everything mutable is
// atomic so executors update it without taking the manager lock.
type NodeState struct {
	Name     string
	Node     *cluster.Node
	Capacity int

	slots     *parallel.Semaphore
	running   atomic.Int64
	highWater atomic.Int64
	busyNs    atomic.Int64
	done      atomic.Uint64
	failed    atomic.Uint64

	drained atomic.Bool
	down    atomic.Bool
	missed  atomic.Int64
	probe   atomic.Value // func() error
}

// Arch returns the node's ISA.
func (n *NodeState) Arch() isa.Arch { return n.Node.Spec.Arch }

// Running returns the number of migrations currently holding one of the
// node's slots (as source or destination).
func (n *NodeState) Running() int { return int(n.running.Load()) }

// HighWater returns the most slots ever held at once — the figure the
// tests pin against Capacity.
func (n *NodeState) HighWater() int { return int(n.highWater.Load()) }

// Drained reports whether the node is draining (no new placements).
func (n *NodeState) Drained() bool { return n.drained.Load() }

// Down reports whether heartbeats have marked the node unresponsive.
func (n *NodeState) Down() bool { return n.down.Load() }

// acquire takes a migration slot, maintaining the running gauge and its
// high-water mark.
func (n *NodeState) acquire() bool {
	if !n.slots.TryAcquire() {
		return false
	}
	r := n.running.Add(1)
	for {
		hw := n.highWater.Load()
		if r <= hw || n.highWater.CompareAndSwap(hw, r) {
			break
		}
	}
	return true
}

// release returns a slot and charges the node for the busy time.
func (n *NodeState) release(busy time.Duration) {
	n.running.Add(-1)
	n.busyNs.Add(int64(busy))
	n.slots.Release()
}

// program is a registered migratable program: a compiled DapC pair plus
// the per-arch reference runs the executor needs (total cycles to place
// the migration point, native output to verify identity).
type program struct {
	name     string
	source   string // inline DapC source, or "" when workload-backed
	workload string
	class    workloads.Class
	pair     *compiler.Pair

	mu        sync.Mutex
	refCycles map[isa.Arch]uint64
	refOut    string
}

// Manager is the fleet control plane.
type Manager struct {
	cfg     Config
	reg     *obs.Registry
	journal *journal
	policy  Placement

	mu        sync.Mutex
	nodes     map[string]*NodeState
	nodeOrder []string
	programs  map[string]*program
	jobs      map[int]*Job
	jobOrder  []int
	nextID    int
	started   bool
	stopped   bool

	jobSlots *parallel.Semaphore
	start    time.Time

	stop chan struct{}
	wake chan struct{}
	wg   sync.WaitGroup

	// testHookAfterAcquire, when set, runs between a placement's slot
	// acquisitions and its mark-down re-check; tests inject a heartbeat
	// transition there to force the race deterministically.
	testHookAfterAcquire func(job *Job, src, dst *NodeState)
}

// NewManager builds a manager, replaying the configured journal: journaled
// programs are re-registered (recompiled) and unfinished jobs requeued.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	policy, err := NewPlacement(cfg.Policy)
	if err != nil {
		return nil, err
	}
	j, history, err := openJournal(cfg.Journal)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		reg:      cfg.Obs,
		journal:  j,
		policy:   policy,
		nodes:    map[string]*NodeState{},
		programs: map[string]*program{},
		jobs:     map[int]*Job{},
		nextID:   1,
		stop:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
	}
	st := digestEvents(history)
	for _, ev := range st.programs {
		if err := m.registerReplayed(ev); err != nil {
			return nil, err
		}
	}
	if st.nextID > m.nextID {
		m.nextID = st.nextID
	}
	for _, job := range st.jobs {
		m.jobs[job.ID] = job
		m.jobOrder = append(m.jobOrder, job.ID)
		if job.State == Pending {
			m.reg.Counter("fleet.jobs_resumed").Inc()
		}
	}
	// Clone-job manifest pins live in the registry's journal, job states
	// in the fleet journal; a crash can land between any fsync of one
	// and the matching update of the other. Both Ref and Unref are
	// idempotent per owner, so replaying the job states onto the
	// registry heals every such window: pending jobs re-assert their
	// pins, terminal jobs release any pin the crash leaked.
	if err := m.reconcileClonePins(); err != nil {
		_ = j.Close() // surfacing the reconcile error; close is cleanup
		return nil, err
	}
	return m, nil
}

// Obs returns the fleet telemetry registry.
func (m *Manager) Obs() *obs.Registry { return m.reg }

// AddNode boots a node from spec under the given name with capacity
// concurrent migration slots. Nodes must be added before Start; every
// registered program is installed on the new node.
func (m *Manager) AddNode(name string, spec cluster.NodeSpec, capacity int) error {
	if capacity <= 0 {
		capacity = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("fleet: AddNode(%q) after Start", name)
	}
	if _, dup := m.nodes[name]; dup {
		return fmt.Errorf("fleet: duplicate node %q", name)
	}
	spec.Name = name
	n := &NodeState{
		Name:     name,
		Node:     cluster.NewNode(spec),
		Capacity: capacity,
		slots:    parallel.NewSemaphore(capacity),
	}
	n.probe.Store(func() error { return nil })
	for _, p := range m.programs {
		n.Node.Install(p.name, p.pair)
	}
	m.nodes[name] = n
	m.nodeOrder = append(m.nodeOrder, name)
	sort.Strings(m.nodeOrder)
	return nil
}

// Nodes returns the nodes in name order.
func (m *Manager) Nodes() []*NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nodeList()
}

func (m *Manager) nodeList() []*NodeState {
	out := make([]*NodeState, 0, len(m.nodeOrder))
	for _, name := range m.nodeOrder {
		out = append(out, m.nodes[name])
	}
	return out
}

// NodeByName looks a node up.
func (m *Manager) NodeByName(name string) (*NodeState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	return n, ok
}

// RegisterProgram registers an inline-DapC program under name, compiles
// it for both ISAs, installs it on every node, and journals the source so
// a restarted daemon can re-register it.
func (m *Manager) RegisterProgram(name, source string) error {
	return m.register(&program{name: name, source: source})
}

// RegisterWorkload registers a workloads-registry program (cg, mg,
// rediska, ...) at a class.
func (m *Manager) RegisterWorkload(name string, class workloads.Class) error {
	return m.register(&program{name: name, workload: name, class: class})
}

func (m *Manager) registerReplayed(ev Event) error {
	p := &program{name: ev.Name, source: ev.Source, workload: ev.Workload, class: ev.Class}
	return m.registerLocked(p, false)
}

func (m *Manager) register(p *program) error {
	return m.registerLocked(p, true)
}

func (m *Manager) registerLocked(p *program, journal bool) error {
	var pair *compiler.Pair
	var err error
	if p.workload != "" {
		w, werr := workloads.Get(p.workload)
		if werr != nil {
			return werr
		}
		if p.class == "" {
			p.class = workloads.ClassS
		}
		pair, err = workloads.CompilePair(w, p.class)
	} else {
		pair, err = compiler.Compile(p.source)
	}
	if err != nil {
		return fmt.Errorf("fleet: compile program %q: %w", p.name, err)
	}
	// A program whose stack maps fail static soundness would poison every
	// migration that ever targets it; refuse registration up front, on
	// both architectures.
	for _, b := range []*compiler.Binary{pair.X86, pair.ARM} {
		if err := updatecheck.VerifyBinary(&updatecheck.Binary{
			Arch: b.Arch, Text: b.Text, Symbols: b.Symbols, Meta: b.Meta,
		}); err != nil {
			return fmt.Errorf("fleet: program %q fails updatecheck on %v: %w", p.name, b.Arch, err)
		}
	}
	p.pair = pair
	p.refCycles = map[isa.Arch]uint64{}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.programs[p.name]; dup {
		return fmt.Errorf("fleet: duplicate program %q", p.name)
	}
	m.programs[p.name] = p
	for _, n := range m.nodes {
		n.Node.Install(p.name, p.pair)
	}
	if journal {
		return m.journal.Append(Event{Type: "program", Name: p.name, Source: p.source, Workload: p.workload, Class: p.class})
	}
	return nil
}

// reference returns (computing and caching on first use) the program's
// total cycle count on the given node spec and its native output. The
// reference run happens on a throwaway node with the same spec, so it
// never perturbs fleet state.
func (p *program) reference(spec cluster.NodeSpec) (uint64, string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cycles, ok := p.refCycles[spec.Arch]; ok {
		return cycles, p.refOut, nil
	}
	ref := cluster.NewNode(spec)
	ref.Install(p.name, p.pair)
	proc, err := ref.Start(p.name)
	if err != nil {
		return 0, "", fmt.Errorf("fleet: reference start %q: %w", p.name, err)
	}
	if err := ref.K.Run(proc); err != nil {
		return 0, "", fmt.Errorf("fleet: reference run %q: %w", p.name, err)
	}
	out := proc.ConsoleString()
	if p.refOut == "" {
		p.refOut = out
	} else if p.refOut != out {
		// Deterministic programs produce identical output on both ISAs;
		// anything else would make the identity check meaningless.
		return 0, "", fmt.Errorf("fleet: program %q output differs across ISAs", p.name)
	}
	p.refCycles[spec.Arch] = proc.VCycles
	return proc.VCycles, p.refOut, nil
}

// Submit validates, journals, and enqueues a job, returning its ID. The
// scheduler picks it up immediately if the manager is running.
func (m *Manager) Submit(spec JobSpec) (int, error) {
	if err := (&spec).normalize(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return 0, fmt.Errorf("fleet: manager stopped")
	}
	if _, ok := m.programs[spec.Program]; !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("fleet: unknown program %q (register it first)", spec.Program)
	}
	if spec.SrcNode != "" {
		if _, ok := m.nodes[spec.SrcNode]; !ok {
			m.mu.Unlock()
			return 0, fmt.Errorf("fleet: unknown source node %q", spec.SrcNode)
		}
	}
	if spec.DstNode != "" {
		if _, ok := m.nodes[spec.DstNode]; !ok {
			m.mu.Unlock()
			return 0, fmt.Errorf("fleet: unknown destination node %q", spec.DstNode)
		}
	}
	if spec.Manifest != "" {
		if m.cfg.Registry == nil {
			m.mu.Unlock()
			return 0, fmt.Errorf("fleet: clone job needs a configured registry")
		}
		if m.cfg.Registry.Manifest(spec.Manifest) == nil {
			m.mu.Unlock()
			return 0, fmt.Errorf("fleet: unknown manifest %.12s", spec.Manifest)
		}
	}
	id := m.nextID
	m.nextID++
	job := &Job{ID: id, Spec: spec, State: Pending}
	m.jobs[id] = job
	m.jobOrder = append(m.jobOrder, id)
	err := m.journal.Append(Event{Type: "submit", Job: id, Spec: &spec})
	if err == nil && spec.Manifest != "" {
		// Pin after the submit event is durable: a crash between the two
		// leaves a journaled pending job with no pin, which startup
		// reconciliation re-asserts (Ref is idempotent per owner).
		err = m.cfg.Registry.Ref(spec.Manifest, cloneOwner(id))
	}
	m.mu.Unlock()
	if err != nil {
		return 0, err
	}
	m.reg.Counter("fleet.jobs_submitted").Inc()
	m.kick()
	return id, nil
}

// kick wakes the scheduler without blocking.
func (m *Manager) kick() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// Start launches the scheduler and heartbeat loops.
func (m *Manager) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("fleet: already started")
	}
	if len(m.nodes) == 0 {
		return fmt.Errorf("fleet: no nodes")
	}
	maxJobs := m.cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 0
		for _, n := range m.nodes {
			maxJobs += n.Capacity
		}
	}
	m.jobSlots = parallel.NewSemaphore(maxJobs)
	//lint:ignore wallclock daemon start stamp for the uptime figure, reported as host time by design
	m.start = time.Now()
	m.started = true
	m.wg.Add(2)
	go m.schedulerLoop()
	go m.heartbeatLoop()
	return nil
}

// Stop shuts the control plane down: the scheduler stops dispatching,
// in-flight attempts run to completion (their outcomes are journaled),
// and every control-plane goroutine is joined before Stop returns.
// Pending jobs stay journaled for the next lifetime.
func (m *Manager) Stop() error {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.stopped = true
	started := m.started
	m.mu.Unlock()
	if started {
		close(m.stop)
		m.wg.Wait()
	}
	return m.journal.Close()
}

// WaitIdle blocks until every submitted job is terminal (Done or
// Failed) or the timeout elapses.
func (m *Manager) WaitIdle(timeout time.Duration) error {
	//lint:ignore wallclock WaitIdle is a host-side test/ops timeout, not a modeled duration
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		busy := 0
		for _, j := range m.jobs {
			if j.State == Pending || j.State == Running {
				busy++
			}
		}
		m.mu.Unlock()
		if busy == 0 {
			return nil
		}
		//lint:ignore wallclock WaitIdle is a host-side test/ops timeout, not a modeled duration
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: %d jobs still active after %v", busy, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Drain marks a node as draining (true) or schedulable again (false).
// Draining is immediate for new placements; migrations already holding a
// slot finish normally.
func (m *Manager) Drain(name string, drain bool) error {
	n, ok := m.NodeByName(name)
	if !ok {
		return fmt.Errorf("fleet: unknown node %q", name)
	}
	n.drained.Store(drain)
	if drain {
		m.reg.Counter("fleet.drains").Inc()
	}
	m.kick()
	return nil
}

// SetProbe installs a health probe for a node (tests simulate
// unresponsive nodes by making it fail). Probes must be fast and
// synchronous; the default always succeeds.
func (m *Manager) SetProbe(name string, probe func() error) error {
	n, ok := m.NodeByName(name)
	if !ok {
		return fmt.Errorf("fleet: unknown node %q", name)
	}
	if probe == nil {
		probe = func() error { return nil }
	}
	n.probe.Store(probe)
	return nil
}

// Jobs returns a snapshot of every job in submission order.
func (m *Manager) Jobs() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.jobOrder))
	for _, id := range m.jobOrder {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Job returns one job's snapshot.
func (m *Manager) Job(id int) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// schedulerLoop dispatches pending jobs whenever something changes (a
// submit, a completed attempt, a heartbeat transition) and on a short
// tick that re-examines retry backoff deadlines.
func (m *Manager) schedulerLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.SchedulerTick)
	defer tick.Stop()
	for {
		m.schedule()
		select {
		case <-m.stop:
			// Let in-flight executors finish; they are part of m.wg.
			return
		case <-m.wake:
		case <-tick.C:
		}
	}
}

// eligible reports whether a node can take a new placement.
func eligible(n *NodeState) bool {
	return !n.Down() && !n.Drained() && n.Running() < n.Capacity
}

// schedule scans pending jobs in submission order and dispatches every
// one it can place right now. Slot acquisition is all-or-nothing per
// job: source slot, then destination slot, then a fleet-wide slot; any
// miss releases what was taken and leaves the job pending.
func (m *Manager) schedule() {
	//lint:ignore wallclock scheduler scan compares host-side retry-backoff deadlines; modeled time is untouched
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started || m.stopped {
		return
	}
	for _, id := range m.jobOrder {
		job := m.jobs[id]
		if job.State != Pending || now.Before(job.notBefore) {
			continue
		}
		if job.Spec.Manifest != "" {
			if !m.scheduleClone(job) {
				return // fleet-wide bound reached
			}
			continue
		}
		src, dst := m.pickPlacement(job)
		if src == nil || dst == nil {
			continue
		}
		if !m.jobSlots.TryAcquire() {
			return // fleet-wide bound reached; nothing more dispatches now
		}
		if !src.acquire() {
			m.jobSlots.Release()
			continue
		}
		if !dst.acquire() {
			src.release(0)
			m.jobSlots.Release()
			continue
		}
		if m.testHookAfterAcquire != nil {
			m.testHookAfterAcquire(job, src, dst)
		}
		// The heartbeat flips down flags without taking m.mu, so a node
		// can be marked down between the eligibility scan above and this
		// point. Re-check now that the slots are held: a doomed placement
		// fails cleanly back to Pending here — counted, slots released —
		// instead of dispatching onto a node the prober just declared
		// dead and burning a retry attempt on a guaranteed failure.
		if src.Down() || dst.Down() {
			src.release(0)
			dst.release(0)
			m.jobSlots.Release()
			m.reg.Counter("fleet.placement_races").Inc()
			continue
		}
		job.State = Running
		job.Attempts++
		job.Src, job.Dst = src.Name, dst.Name
		attempt := job.Attempts
		if err := m.journal.Append(Event{Type: "start", Job: job.ID, Attempt: attempt, Src: src.Name, Dst: dst.Name}); err != nil {
			// A journal that stops accepting writes is fatal for
			// durability; fail the job rather than run it unjournaled.
			job.State = Failed
			job.Err = err.Error()
			src.release(0)
			dst.release(0)
			m.jobSlots.Release()
			continue
		}
		m.reg.Counter("fleet.dispatches").Inc()
		m.wg.Add(1)
		go m.runJob(job, src, dst, attempt)
	}
}

// pickPlacement chooses the job's (source, destination) pair. The source
// choice considers destination viability: a free node is no source at
// all if taking it leaves the job's TargetArch constraint unsatisfiable,
// so every viable source is tried in load order before giving up.
func (m *Manager) pickPlacement(job *Job) (*NodeState, *NodeState) {
	for _, src := range m.sourceCandidates(job) {
		if dst := m.pickDest(job, src); dst != nil {
			return src, dst
		}
	}
	return nil, nil
}

// sourceCandidates returns the nodes the job's process could run (or
// already runs) on, best first.
func (m *Manager) sourceCandidates(job *Job) []*NodeState {
	// Sticky after the first dispatch: the paused source process lives
	// there. A down source cannot be worked around — the job waits for
	// the node to come back.
	if job.proc != nil {
		n := m.nodes[job.proc.node]
		if n == nil || n.Down() || n.Running() >= n.Capacity {
			return nil
		}
		return []*NodeState{n}
	}
	if job.Spec.SrcNode != "" {
		n := m.nodes[job.Spec.SrcNode]
		if n == nil || !eligible(n) {
			return nil
		}
		return []*NodeState{n}
	}
	var candidates []*NodeState
	for _, name := range m.nodeOrder {
		if n := m.nodes[name]; eligible(n) {
			candidates = append(candidates, n)
		}
	}
	sort.SliceStable(candidates, func(i, k int) bool {
		return float64(candidates[i].Running())/float64(candidates[i].Capacity) <
			float64(candidates[k].Running())/float64(candidates[k].Capacity)
	})
	return candidates
}

// pickDest runs the placement policy over the eligible destinations.
func (m *Manager) pickDest(job *Job, src *NodeState) *NodeState {
	if job.Spec.DstNode != "" {
		n := m.nodes[job.Spec.DstNode]
		if n == nil || n == src || !eligible(n) {
			return nil
		}
		return n
	}
	wantArch, constrained := archOf(job.Spec.TargetArch)
	var candidates []*NodeState
	for _, name := range m.nodeOrder {
		n := m.nodes[name]
		if n == src || !eligible(n) {
			continue
		}
		if constrained && n.Arch() != wantArch {
			continue
		}
		candidates = append(candidates, n)
	}
	return m.policy.Pick(job, src, candidates)
}

// srcProcess is a job's live source-side process.
type srcProcess struct {
	node string
	proc *kernel.Process
}

// backoffFor computes the exponential retry backoff for a (1-based)
// completed attempt count.
func (m *Manager) backoffFor(attempts int) time.Duration {
	d := m.cfg.RetryBase
	for i := 1; i < attempts; i++ {
		d *= 2
		if d >= m.cfg.RetryMax {
			return m.cfg.RetryMax
		}
	}
	if d > m.cfg.RetryMax {
		d = m.cfg.RetryMax
	}
	return d
}
