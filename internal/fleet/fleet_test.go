package fleet

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// counter is a small deterministic program cheap enough that fleet tests
// can run dozens of migrations of it. The strided walk over data keeps a
// multi-page working set hot after the migration point, so post-copy
// restores genuinely fetch pages (and injected transport faults genuinely
// fire); the helper call in the hot loop gives the monitor its
// equivalence points.
const counter = `
var data[4096] int;
var acc int;
func fill() {
	var i int;
	for i = 0; i < 4096; i = i + 1 {
		data[i] = (i % 251) + 1;
	}
}
func bump(i int) {
	acc = acc + data[(i * 7) % 4096];
}
func main() {
	var i int;
	fill();
	for i = 0; i < 6000; i = i + 1 {
		bump(i);
	}
	printi(acc);
}`

// fastConfig keeps scheduler/heartbeat/backoff latencies test-sized.
func fastConfig() Config {
	return Config{
		RetryBase:     time.Millisecond,
		RetryMax:      20 * time.Millisecond,
		SchedulerTick: 2 * time.Millisecond,
		Heartbeat:     HeartbeatConfig{Interval: 10 * time.Millisecond, MaxMissed: 3},
	}
}

// mixedFleet builds a manager with two Xeons and two Pis at the given
// slot capacity and the counter program registered.
func mixedFleet(t *testing.T, cfg Config, capacity int) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := m.AddNode(fmt.Sprintf("xeon%d", i), cluster.XeonSpec, capacity); err != nil {
			t.Fatal(err)
		}
		if err := m.AddNode(fmt.Sprintf("pi%d", i), cluster.PiSpec, capacity); err != nil {
			t.Fatal(err)
		}
	}
	// A journal-backed manager re-registers "counter" from its replay;
	// tolerate the duplicate exactly the way dapperd does.
	if err := m.RegisterProgram("counter", counter); err != nil && !strings.Contains(err.Error(), "duplicate program") {
		t.Fatal(err)
	}
	return m
}

func stopManager(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestFleetSmoke is the acceptance scenario: 20 mixed-mode jobs across
// four mixed-ISA nodes with deterministic transport faults injected into
// the lazy jobs' early attempts. Every job must converge to Done (the
// faulted ones via rollback-to-source and retry), per-node concurrency
// must never exceed capacity, and no migration may corrupt its output.
func TestFleetSmoke(t *testing.T) {
	cfg := fastConfig()
	cfg.Policy = "isa-affinity"
	m := mixedFleet(t, cfg, 2)
	defer stopManager(t, m)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	flaky := func(seed int64, listener bool) *FaultPlan {
		plan := &FaultPlan{FailAttempts: 1}
		if listener {
			plan.FlakyListener = &criu.FaultSpec{Seed: seed, DropRate: 1.0}
		} else {
			plan.FlakySource = &criu.FaultSpec{Seed: seed, FailRate: 1.0}
		}
		return plan
	}

	var ids []int
	for i := 0; i < 20; i++ {
		spec := JobSpec{Program: "counter", RunFrac: 0.4}
		switch i % 5 {
		case 0: // vanilla, batched codec
			spec.Opts = JobOpts{Codec: "none", Workers: 2}
		case 1: // vanilla, compressed + dedup
			spec.Opts = JobOpts{Codec: "flate", Dedup: true}
		case 2: // pre-copy with XOR-delta rounds
			spec.Opts = JobOpts{PreCopy: true, Delta: true, Codec: "flate"}
		case 3: // lazy with an injected page-fetch failure on attempt 1
			spec.Opts = JobOpts{Lazy: true}
			spec.Faults = flaky(int64(100+i), false)
		case 4: // lazy with an injected mid-frame connection drop
			spec.Opts = JobOpts{Lazy: true}
			spec.Faults = flaky(int64(200+i), true)
		}
		id, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("submit job %d: %v", i, err)
		}
		ids = append(ids, id)
	}

	if err := m.WaitIdle(3 * time.Minute); err != nil {
		t.Fatal(err)
	}

	for _, id := range ids {
		v, ok := m.Job(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		if v.State != "done" {
			t.Errorf("job %d: state %s (err %q), want done", id, v.State, v.Err)
		}
		if v.Migration <= 0 || v.ImageBytes == 0 {
			t.Errorf("job %d: missing migration stats: %+v", id, v)
		}
	}

	rep := m.Report()
	if rep.Done != 20 || rep.Submitted != 20 {
		t.Errorf("report counts: submitted=%d done=%d, want 20/20", rep.Submitted, rep.Done)
	}
	// Eight lazy jobs each fail their first attempt by plan, so retries
	// and rollbacks provably fired.
	if rep.Retries < 8 {
		t.Errorf("retries=%d, want >= 8 (every fault-plan job fails attempt 1)", rep.Retries)
	}
	if rep.Rollbacks < 8 {
		t.Errorf("rollbacks=%d, want >= 8", rep.Rollbacks)
	}
	if rep.Corrupt != 0 {
		t.Errorf("corrupt outputs: %d", rep.Corrupt)
	}
	if rep.FailedJ != 0 {
		t.Errorf("failed jobs: %d", rep.FailedJ)
	}
	for _, n := range rep.Nodes {
		if n.HighWater > n.Capacity {
			t.Errorf("node %s: high-water %d exceeds capacity %d", n.Name, n.HighWater, n.Capacity)
		}
		if n.Running != 0 {
			t.Errorf("node %s: %d migrations still running after idle", n.Name, n.Running)
		}
	}
	if rep.MigrationP95 < rep.MigrationP50 {
		t.Errorf("percentiles inverted: p50=%v p95=%v", rep.MigrationP50, rep.MigrationP95)
	}
}

// TestFleetResume kills the daemon mid-queue and restarts it on the same
// journal: finished jobs must stay finished (no duplication), unfinished
// ones must re-run to completion (no loss), and new IDs must not collide.
func TestFleetResume(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "fleet.journal")

	cfg := fastConfig()
	cfg.Journal = journalPath
	cfg.MaxJobs = 1 // serialize so a mid-queue stop leaves pending jobs
	m1 := mixedFleet(t, cfg, 1)
	const jobs = 6
	for i := 0; i < jobs; i++ {
		if _, err := m1.Submit(JobSpec{Program: "counter"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for at least one completion, then "kill" the daemon: Stop
	// drains the in-flight attempt and abandons the rest of the queue.
	deadline := time.Now().Add(time.Minute)
	for {
		if doneCount(m1) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job completed within a minute")
		}
		time.Sleep(time.Millisecond)
	}
	stopManager(t, m1)
	finished := map[int]bool{}
	for _, v := range m1.Jobs() {
		if v.State == "done" {
			finished[v.ID] = true
		}
	}
	if len(finished) == 0 || len(finished) == jobs {
		t.Fatalf("want a mid-queue stop, got %d/%d done", len(finished), jobs)
	}

	// Second lifetime: same journal. Programs re-register from the
	// journal; only unfinished jobs are requeued.
	cfg2 := fastConfig()
	cfg2.Journal = journalPath
	m2 := mixedFleet(t, cfg2, 1)
	defer stopManager(t, m2)
	views := m2.Jobs()
	if len(views) != jobs {
		t.Fatalf("replay: %d jobs, want %d", len(views), jobs)
	}
	resumed := 0
	for _, v := range views {
		switch {
		case finished[v.ID]:
			if v.State != "done" {
				t.Errorf("job %d was done before the restart, replayed as %s", v.ID, v.State)
			}
		default:
			if v.State != "pending" || !v.Resumed {
				t.Errorf("job %d: state %s resumed=%v, want resumed pending", v.ID, v.State, v.Resumed)
			}
			resumed++
		}
	}
	if want := jobs - len(finished); resumed != want {
		t.Errorf("resumed %d jobs, want %d", resumed, want)
	}
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m2.WaitIdle(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// No duplication: the second lifetime completed exactly the resumed
	// jobs, and every job is terminal-done exactly once overall.
	if got := m2.Obs().Counter("fleet.jobs_done").Value(); got != uint64(jobs-len(finished)) {
		t.Errorf("second lifetime completed %d jobs, want %d", got, jobs-len(finished))
	}
	for _, v := range m2.Jobs() {
		if v.State != "done" {
			t.Errorf("job %d: state %s after resume, want done", v.ID, v.State)
		}
	}
	// IDs keep rising across restarts.
	id, err := m2.Submit(JobSpec{Program: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	if id != jobs+1 {
		t.Errorf("post-restart ID %d, want %d", id, jobs+1)
	}
	if err := m2.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func doneCount(m *Manager) int {
	n := 0
	for _, v := range m.Jobs() {
		if v.State == "done" {
			n++
		}
	}
	return n
}

// TestFleetDrain verifies drain semantics: a drained node takes no new
// placements, and undraining it releases the queue.
func TestFleetDrain(t *testing.T) {
	cfg := fastConfig()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(t, m)
	if err := m.AddNode("xeon0", cluster.XeonSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("pi0", cluster.PiSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterProgram("counter", counter); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain("pi0", true); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// The only possible destination for a xeon0-sourced job is pi0,
	// which is drained, so the job must stay pending.
	id, err := m.Submit(JobSpec{Program: "counter", SrcNode: "xeon0"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if v, _ := m.Job(id); v.State != "pending" {
		t.Fatalf("job placed on a drained node: state %s", v.State)
	}
	if err := m.Drain("pi0", false); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Job(id); v.State != "done" {
		t.Fatalf("job after undrain: state %s (err %q)", v.State, v.Err)
	}
	if m.Report().Drains != 1 {
		t.Errorf("drains counter: %d, want 1", m.Report().Drains)
	}
}

// TestFleetHeartbeat verifies mark-down and recovery: a node whose probe
// fails repeatedly leaves the placement pool and rejoins when the probe
// heals, at which point blocked jobs complete.
func TestFleetHeartbeat(t *testing.T) {
	cfg := fastConfig()
	cfg.Heartbeat = HeartbeatConfig{Interval: 2 * time.Millisecond, MaxMissed: 2}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(t, m)
	if err := m.AddNode("xeon0", cluster.XeonSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("pi0", cluster.PiSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterProgram("counter", counter); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProbe("pi0", func() error { return fmt.Errorf("unreachable") }); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		n, _ := m.NodeByName("pi0")
		if n.Down() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pi0 never marked down")
		}
		time.Sleep(time.Millisecond)
	}
	id, err := m.Submit(JobSpec{Program: "counter", SrcNode: "xeon0", DstNode: "pi0"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if v, _ := m.Job(id); v.State != "pending" {
		t.Fatalf("job placed on a down node: state %s", v.State)
	}
	if err := m.SetProbe("pi0", nil); err != nil { // nil restores the always-ok probe
		t.Fatal(err)
	}
	if err := m.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Job(id); v.State != "done" {
		t.Fatalf("job after node recovery: state %s (err %q)", v.State, v.Err)
	}
	rep := m.Report()
	if rep.NodesDown == 0 {
		t.Error("nodes_marked_down counter never fired")
	}
}

// TestFleetRetryExhaustion pins the terminal-failure path: a job whose
// fault plan outlives its retry budget must land in Failed, not spin.
func TestFleetRetryExhaustion(t *testing.T) {
	cfg := fastConfig()
	m := mixedFleet(t, cfg, 2)
	defer stopManager(t, m)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(JobSpec{
		Program:    "counter",
		MaxRetries: 2,
		Opts:       JobOpts{Lazy: true},
		Faults: &FaultPlan{
			FailAttempts: 99, // every attempt fails
			FlakySource:  &criu.FaultSpec{Seed: 7, FailRate: 1.0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Job(id)
	if v.State != "failed" {
		t.Fatalf("state %s, want failed", v.State)
	}
	if v.Attempts != 3 { // 1 initial + 2 retries
		t.Errorf("attempts %d, want 3", v.Attempts)
	}
	if v.Err == "" {
		t.Error("failed job carries no error")
	}
}

// TestSubmitValidation pins the submit-side error surface.
func TestSubmitValidation(t *testing.T) {
	m := mixedFleet(t, fastConfig(), 1)
	defer stopManager(t, m)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no program", JobSpec{}},
		{"unknown program", JobSpec{Program: "nope"}},
		{"bad codec", JobSpec{Program: "counter", Opts: JobOpts{Codec: "zstd"}}},
		{"delta without precopy", JobSpec{Program: "counter", Opts: JobOpts{Delta: true}}},
		{"lazy and precopy", JobSpec{Program: "counter", Opts: JobOpts{Lazy: true, PreCopy: true}}},
		{"bad arch", JobSpec{Program: "counter", TargetArch: "riscv"}},
		{"bad src", JobSpec{Program: "counter", SrcNode: "ghost"}},
		{"bad dst", JobSpec{Program: "counter", DstNode: "ghost"}},
		{"bad frac", JobSpec{Program: "counter", RunFrac: 1.5}},
	}
	for _, tc := range cases {
		if _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: submit accepted", tc.name)
		}
	}
}

// TestRegisterWorkload covers the workloads-registry registration path
// end to end with one real migration.
func TestRegisterWorkload(t *testing.T) {
	cfg := fastConfig()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(t, m)
	if err := m.AddNode("xeon0", cluster.XeonSpec, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("pi0", cluster.PiSpec, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterWorkload("cg", workloads.ClassS); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterWorkload("cg", workloads.ClassS); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(JobSpec{Program: "cg", TargetArch: "sarm"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Job(id)
	if v.State != "done" {
		t.Fatalf("cg job: state %s (err %q)", v.State, v.Err)
	}
	if v.Dst != "pi0" {
		t.Errorf("sarm-constrained job landed on %s", v.Dst)
	}
}
