package fleet

import "time"

// HeartbeatConfig tunes node health probing. Every Interval the manager
// probes each node (a synchronous health check — the simulated analogue
// of a heartbeat RPC); MaxMissed consecutive failures mark the node
// down, taking it out of placement until a probe succeeds again.
type HeartbeatConfig struct {
	// Interval between probe rounds (default 50ms).
	Interval time.Duration
	// MaxMissed consecutive probe failures before mark-down (default 3).
	MaxMissed int
}

func (c HeartbeatConfig) withDefaults() HeartbeatConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.MaxMissed <= 0 {
		c.MaxMissed = 3
	}
	return c
}

// heartbeatLoop probes every node each interval until Stop.
func (m *Manager) heartbeatLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.Heartbeat.Interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.beat()
		}
	}
}

// beat runs one probe round. Transitions are edge-triggered: a node is
// marked down after MaxMissed consecutive failures and marked back up on
// the first success, each waking the scheduler (down frees nothing, but
// up may unblock pending placements).
func (m *Manager) beat() {
	changed := false
	for _, n := range m.Nodes() {
		probe, _ := n.probe.Load().(func() error)
		if probe == nil {
			continue
		}
		if err := probe(); err != nil {
			missed := n.missed.Add(1)
			if int(missed) >= m.cfg.Heartbeat.MaxMissed && !n.down.Swap(true) {
				m.reg.Counter("fleet.nodes_marked_down").Inc()
				changed = true
			}
			continue
		}
		n.missed.Store(0)
		if n.down.Swap(false) {
			m.reg.Counter("fleet.nodes_marked_up").Inc()
			changed = true
		}
	}
	if changed {
		m.kick()
	}
}
