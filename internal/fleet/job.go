package fleet

import (
	"fmt"
	"time"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/workloads"
)

// JobState is one station of the job lifecycle state machine:
//
//	submit → Pending → Running → Done
//	            ↑         |
//	            └─ retry ──┴──→ Failed
//
// A Running job whose attempt fails retries (back to Pending with a
// backoff deadline) until its retry budget is spent, then lands in
// Failed. A daemon restart moves Running jobs back to Pending — the
// attempt's in-memory process state is gone, so the job re-runs from
// scratch, which the journal makes loss- and duplication-free.
type JobState uint8

// Job states.
const (
	Pending JobState = iota + 1
	Running
	Done
	Failed
)

// String renders the state for reports and the jobs listing.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// JobOpts is the per-job migration configuration, the fleet-level mirror
// of cluster.MigrateOpts: every knob the single-migration library grew
// (parallel workers, content-addressed dedup, wire codec, XOR-delta
// rounds) is selectable per job.
type JobOpts struct {
	// Workers bounds the parallel stages of this job's migration
	// pipeline (cluster.MigrateOpts.Workers). 0 selects NumCPU.
	Workers int `json:"workers,omitempty"`
	// Dedup content-addresses page payloads in the dump.
	Dedup bool `json:"dedup,omitempty"`
	// Codec names the wire codec: "raw" (default), "none" (batched), or
	// "flate" (batched + compressed).
	Codec string `json:"codec,omitempty"`
	// Delta enables XOR-delta pre-copy rounds; requires PreCopy.
	Delta bool `json:"delta,omitempty"`
	// Lazy selects post-copy migration over a real TCP page server.
	Lazy bool `json:"lazy,omitempty"`
	// PreCopy selects iterative pre-copy migration.
	PreCopy bool `json:"precopy,omitempty"`
	// Stream selects the streamed restore pipeline
	// (cluster.MigrateOpts.StreamRestore): the destination decodes,
	// verifies, and installs pages while the image is still arriving.
	// Requires a batched codec ("none" or "flate"); vanilla jobs only.
	Stream bool `json:"stream,omitempty"`
}

// MigrateCodec resolves the codec name. Unknown names are an error so a
// typo fails the submit, not the migration.
func (o JobOpts) MigrateCodec() (imgproto.Codec, error) {
	return ParseCodec(o.Codec)
}

// ParseCodec maps a codec name ("", "raw", "none", "flate") to the wire
// codec it selects.
func ParseCodec(name string) (imgproto.Codec, error) {
	switch name {
	case "", "raw":
		return imgproto.CodecRaw, nil
	case "none":
		return imgproto.CodecNone, nil
	case "flate":
		return imgproto.CodecFlate, nil
	default:
		return imgproto.CodecRaw, fmt.Errorf("fleet: unknown codec %q (want raw, none, or flate)", name)
	}
}

// FaultPlan injects deterministic transport faults into a job's early
// attempts, exercising the retry/rollback path end to end. Attempts
// 1..FailAttempts run with the configured criu fault wrappers installed;
// later attempts run clean, so a job with FailAttempts < retry budget is
// guaranteed to converge.
type FaultPlan struct {
	// FailAttempts is how many leading attempts get faults injected.
	FailAttempts int `json:"fail_attempts,omitempty"`
	// FlakySource wraps the post-copy page source in criu.FlakySource
	// with this spec (fetch failures and latency).
	FlakySource *criu.FaultSpec `json:"flaky_source,omitempty"`
	// FlakyListener wraps the page server's listener in
	// criu.FlakyListener with this spec (mid-frame connection drops).
	FlakyListener *criu.FaultSpec `json:"flaky_listener,omitempty"`
}

// Active reports whether attempt (1-based) has faults injected.
func (f *FaultPlan) Active(attempt int) bool {
	return f != nil && attempt <= f.FailAttempts &&
		(f.FlakySource != nil || f.FlakyListener != nil)
}

// JobSpec describes one migration job: which program to run, where to
// interrupt it, how to migrate it, and how hard to retry. The spec is
// what the journal persists, so everything in it must survive a JSON
// round trip and be re-executable by a restarted daemon.
type JobSpec struct {
	// Program names a registered program (see Manager.RegisterWorkload /
	// RegisterProgram).
	Program string `json:"program"`
	// RunFrac is the fraction of the program's total cycles to execute
	// before migrating (0 selects the 0.5 default).
	RunFrac float64 `json:"run_frac,omitempty"`
	// SrcNode pins the source node by name; empty lets the scheduler
	// pick the least-loaded eligible node.
	SrcNode string `json:"src_node,omitempty"`
	// DstNode pins the destination; empty defers to the placement
	// policy.
	DstNode string `json:"dst_node,omitempty"`
	// TargetArch constrains placement to nodes of this ISA ("sx86" or
	// "sarm"); empty lets the policy choose freely.
	TargetArch string `json:"target_arch,omitempty"`
	// Opts is the migration configuration threaded into
	// cluster.MigrateOpts.
	Opts JobOpts `json:"opts"`
	// MaxRetries bounds retry attempts after the first (default
	// DefaultMaxRetries; negative means no retries).
	MaxRetries int `json:"max_retries,omitempty"`
	// Faults, if set, injects deterministic transport faults into the
	// leading attempts (tests and the smoke harness).
	Faults *FaultPlan `json:"faults,omitempty"`
	// Class scales the workload when Program names a registry workload.
	Class workloads.Class `json:"class,omitempty"`
	// Manifest turns the job into a clone job: instead of migrating a
	// live process, the executor restores this checkpoint manifest from
	// the manager's registry (Config.Registry) onto the placed node.
	// The manager pins the manifest against registry GC (owner
	// "job-<id>") from submit until the job is terminal.
	Manifest string `json:"manifest,omitempty"`
	// Clone is the clone job's fan-out: how many copies to restore onto
	// the placed node (default 1). All clones share resident page
	// frames copy-on-write and must produce byte-identical output.
	Clone int `json:"clone,omitempty"`
}

// DefaultMaxRetries is the retry budget for jobs that do not set one.
const DefaultMaxRetries = 3

func (s *JobSpec) normalize() error {
	if s.Program == "" {
		return fmt.Errorf("fleet: job spec needs a program")
	}
	if s.RunFrac == 0 {
		s.RunFrac = 0.5
	}
	if s.RunFrac < 0 || s.RunFrac >= 1 {
		return fmt.Errorf("fleet: run fraction %v outside (0, 1)", s.RunFrac)
	}
	if s.Opts.Delta && !s.Opts.PreCopy {
		return fmt.Errorf("fleet: delta encoding requires precopy")
	}
	if s.Opts.Lazy && s.Opts.PreCopy {
		return fmt.Errorf("fleet: lazy and precopy are mutually exclusive")
	}
	codec, err := s.Opts.MigrateCodec()
	if err != nil {
		return err
	}
	if s.Opts.Stream {
		if s.Opts.Lazy || s.Opts.PreCopy {
			return fmt.Errorf("fleet: streamed restore applies to vanilla jobs only")
		}
		if !codec.Batched() {
			return fmt.Errorf("fleet: streamed restore requires a batched codec (none or flate)")
		}
	}
	switch s.TargetArch {
	case "", "sx86", "sarm":
	default:
		return fmt.Errorf("fleet: unknown target arch %q (want sx86 or sarm)", s.TargetArch)
	}
	if s.MaxRetries == 0 {
		s.MaxRetries = DefaultMaxRetries
	}
	if s.MaxRetries < 0 {
		s.MaxRetries = 0
	}
	if s.Clone != 0 && s.Manifest == "" {
		return fmt.Errorf("fleet: clone count without a manifest")
	}
	if s.Manifest != "" {
		if s.Opts.Lazy || s.Opts.PreCopy || s.Opts.Delta || s.Opts.Stream {
			return fmt.Errorf("fleet: clone jobs restore a stored checkpoint; lazy/precopy/delta/stream do not apply")
		}
		if s.SrcNode != "" {
			return fmt.Errorf("fleet: clone jobs have no source node")
		}
		if s.Clone <= 0 {
			s.Clone = 1
		}
	}
	return nil
}

// Job is the manager's record of one submitted migration.
type Job struct {
	ID   int
	Spec JobSpec

	State    JobState
	Attempts int // attempts started this daemon lifetime
	Retries  int // attempts beyond the first (including prior lifetimes)
	Resumed  bool
	Err      string

	// Src/Dst are the nodes of the latest attempt. Src is sticky after
	// the first dispatch: the paused source process lives there.
	Src, Dst string

	// notBefore gates redispatch after a retry backoff.
	notBefore time.Time

	// proc is the job's live source process (nil until first dispatch,
	// nil again after the job reaches a terminal state).
	proc *srcProcess

	// Results of the final successful attempt.
	MigrationTime time.Duration
	Downtime      time.Duration
	ImageBytes    uint64
	WireBytes     uint64
	Output        string
}

// JobView is the externally visible snapshot of a Job, serialized over
// the control socket.
type JobView struct {
	ID         int           `json:"id"`
	Program    string        `json:"program"`
	State      string        `json:"state"`
	Attempts   int           `json:"attempts"`
	Retries    int           `json:"retries"`
	Resumed    bool          `json:"resumed,omitempty"`
	Src        string        `json:"src,omitempty"`
	Dst        string        `json:"dst,omitempty"`
	Err        string        `json:"err,omitempty"`
	Mode       string        `json:"mode"`
	Codec      string        `json:"codec,omitempty"`
	Delta      bool          `json:"delta,omitempty"`
	Dedup      bool          `json:"dedup,omitempty"`
	Stream     bool          `json:"stream,omitempty"`
	Workers    int           `json:"workers,omitempty"`
	Migration  time.Duration `json:"migration_ns,omitempty"`
	Downtime   time.Duration `json:"downtime_ns,omitempty"`
	ImageBytes uint64        `json:"image_bytes,omitempty"`
	WireBytes  uint64        `json:"wire_bytes,omitempty"`
	Manifest   string        `json:"manifest,omitempty"`
	Clones     int           `json:"clones,omitempty"`
}

func (j *Job) view() JobView {
	mode := "vanilla"
	if j.Spec.Manifest != "" {
		mode = "clone"
	} else if j.Spec.Opts.Lazy {
		mode = "lazy"
	} else if j.Spec.Opts.PreCopy {
		mode = "precopy"
	}
	return JobView{
		ID:         j.ID,
		Program:    j.Spec.Program,
		State:      j.State.String(),
		Attempts:   j.Attempts,
		Retries:    j.Retries,
		Resumed:    j.Resumed,
		Src:        j.Src,
		Dst:        j.Dst,
		Err:        j.Err,
		Mode:       mode,
		Codec:      j.Spec.Opts.Codec,
		Delta:      j.Spec.Opts.Delta,
		Dedup:      j.Spec.Opts.Dedup,
		Stream:     j.Spec.Opts.Stream,
		Workers:    j.Spec.Opts.Workers,
		Migration:  j.MigrationTime,
		Downtime:   j.Downtime,
		ImageBytes: j.ImageBytes,
		WireBytes:  j.WireBytes,
		Manifest:   j.Spec.Manifest,
		Clones:     j.Spec.Clone,
	}
}
