package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/dapper-sim/dapper/internal/workloads"
)

// The journal is the daemon's durability story: an append-only JSONL
// file of job-lifecycle events. Every submitted job and every state
// transition is one line, written and fsynced before the transition
// takes effect anywhere else, so a daemon killed mid-queue can replay
// the file and resume exactly where it stopped:
//
//   - a job with a submit event and no terminal event is requeued as
//     Pending (its in-memory process died with the daemon, so the job
//     re-runs from scratch — at-most-once completion, no duplication:
//     a Done/Failed job is never re-dispatched);
//   - program registrations replay first, so requeued jobs can
//     recompile and reinstall their binaries;
//   - the next job ID continues above the highest journaled ID, so IDs
//     never collide across restarts.

// Event is one journal line.
type Event struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"` // "program", "submit", "start", "retry", "done", "failed"
	Job  int    `json:"job,omitempty"`

	// program registration
	Name     string          `json:"name,omitempty"`
	Source   string          `json:"source,omitempty"`
	Workload string          `json:"workload,omitempty"`
	Class    workloads.Class `json:"class,omitempty"`

	// submit
	Spec *JobSpec `json:"spec,omitempty"`

	// start / retry / terminal detail
	Attempt int    `json:"attempt,omitempty"`
	Src     string `json:"src,omitempty"`
	Dst     string `json:"dst,omitempty"`
	Err     string `json:"err,omitempty"`
	Retries int    `json:"retries,omitempty"`
}

// journal appends events to a JSONL file. A nil journal (no path
// configured) accepts appends and drops them — the in-memory-only mode
// tests and the bench harness use.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	seq  int64
	path string
}

// openJournal opens (creating if needed) the journal at path and returns
// it along with the replayed history. An empty path returns a nil
// journal and no history.
func openJournal(path string) (*journal, []Event, error) {
	if path == "" {
		return nil, nil, nil
	}
	events, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: open journal: %w", err)
	}
	j := &journal{f: f, path: path}
	if n := len(events); n > 0 {
		j.seq = events[n-1].Seq
	}
	return j, events, nil
}

// replayJournal reads every well-formed event line. A torn final line
// (daemon killed mid-write) is tolerated and dropped; a torn line in the
// middle is an error, because everything after it is suspect.
func replayJournal(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleet: replay journal: %w", err)
	}
	defer func() {
		// Read-only descriptor; the scanner has already surfaced errors.
		_ = f.Close()
	}()
	var events []Event
	var torn bool
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if torn {
			return nil, fmt.Errorf("fleet: journal %s: malformed event mid-file", path)
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Possibly the torn tail of a crashed append: accept only if
			// nothing follows.
			torn = true
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: replay journal: %w", err)
	}
	return events, nil
}

// Append journals one event durably (write + fsync) and stamps its
// sequence number. Safe for concurrent use.
func (j *journal) Append(ev Event) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	ev.Seq = j.seq
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("fleet: journal marshal: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("fleet: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fleet: journal sync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("fleet: close journal: %w", err)
	}
	return nil
}

// replayState is the manager-facing digest of a journal: programs to
// re-register and jobs in their resumed states.
type replayState struct {
	programs []Event
	jobs     []*Job
	nextID   int
}

// digestEvents folds a journal history into the state a restarted
// manager starts from.
func digestEvents(events []Event) replayState {
	st := replayState{nextID: 1}
	byID := map[int]*Job{}
	for _, ev := range events {
		switch ev.Type {
		case "program":
			st.programs = append(st.programs, ev)
		case "submit":
			if ev.Spec == nil || ev.Job == 0 {
				continue
			}
			if _, dup := byID[ev.Job]; dup {
				continue // duplicate submit line: first one wins
			}
			j := &Job{ID: ev.Job, Spec: *ev.Spec, State: Pending}
			byID[ev.Job] = j
			st.jobs = append(st.jobs, j)
			if ev.Job >= st.nextID {
				st.nextID = ev.Job + 1
			}
		case "start":
			if j := byID[ev.Job]; j != nil && j.State != Done && j.State != Failed {
				j.State = Running
				j.Src, j.Dst = ev.Src, ev.Dst
			}
		case "retry":
			if j := byID[ev.Job]; j != nil && j.State != Done && j.State != Failed {
				j.State = Pending
				j.Retries++
			}
		case "done":
			if j := byID[ev.Job]; j != nil {
				j.State = Done
				j.Retries = ev.Retries
			}
		case "failed":
			if j := byID[ev.Job]; j != nil {
				j.State = Failed
				j.Err = ev.Err
				j.Retries = ev.Retries
			}
		}
	}
	// A job the dead daemon had in flight re-runs from scratch.
	for _, j := range st.jobs {
		if j.State == Running {
			j.State = Pending
		}
		if j.State == Pending {
			j.Resumed = true
			j.Src, j.Dst = "", ""
		}
	}
	return st
}
