package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func specPtr() *JobSpec {
	s := &JobSpec{Program: "counter"}
	if err := s.normalize(); err != nil {
		panic(err)
	}
	return s
}

// TestDigestEvents pins the replay semantics job by job: terminal states
// are final, a job in flight at the crash is requeued, retries carry
// over, and the next ID clears every journaled one.
func TestDigestEvents(t *testing.T) {
	events := []Event{
		{Type: "program", Name: "counter", Source: counter},
		{Type: "submit", Job: 1, Spec: specPtr()},
		{Type: "submit", Job: 2, Spec: specPtr()},
		{Type: "submit", Job: 3, Spec: specPtr()},
		{Type: "submit", Job: 4, Spec: specPtr()},
		{Type: "start", Job: 1, Attempt: 1, Src: "xeon0", Dst: "pi0"},
		{Type: "done", Job: 1},
		{Type: "start", Job: 2, Attempt: 1, Src: "xeon0", Dst: "pi0"},
		{Type: "retry", Job: 2, Err: "injected"},
		{Type: "start", Job: 2, Attempt: 2, Src: "xeon0", Dst: "pi1"},
		// Job 2 was mid-attempt at the crash; job 3 failed terminally;
		// job 4 never started.
		{Type: "failed", Job: 3, Err: "boom", Retries: 3},
	}
	st := digestEvents(events)
	if len(st.programs) != 1 || st.programs[0].Name != "counter" {
		t.Fatalf("programs: %+v", st.programs)
	}
	if st.nextID != 5 {
		t.Errorf("nextID %d, want 5", st.nextID)
	}
	byID := map[int]*Job{}
	for _, j := range st.jobs {
		byID[j.ID] = j
	}
	if len(byID) != 4 {
		t.Fatalf("%d jobs, want 4", len(byID))
	}
	if j := byID[1]; j.State != Done || j.Resumed {
		t.Errorf("job 1: %v resumed=%v, want done", j.State, j.Resumed)
	}
	if j := byID[2]; j.State != Pending || !j.Resumed || j.Retries != 1 || j.Src != "" {
		t.Errorf("job 2: %v resumed=%v retries=%d src=%q, want resumed pending with 1 retry and no src", j.State, j.Resumed, j.Retries, j.Src)
	}
	if j := byID[3]; j.State != Failed || j.Err != "boom" || j.Retries != 3 {
		t.Errorf("job 3: %v err=%q retries=%d, want terminal failure", j.State, j.Err, j.Retries)
	}
	if j := byID[4]; j.State != Pending || !j.Resumed {
		t.Errorf("job 4: %v resumed=%v, want resumed pending", j.State, j.Resumed)
	}
	// Duplicate submit lines: first one wins.
	dup := append(events, Event{Type: "submit", Job: 2, Spec: specPtr()})
	if got := len(digestEvents(dup).jobs); got != 4 {
		t.Errorf("duplicate submit created a job: %d jobs", got)
	}
}

// TestJournalRoundTrip appends through the real journal and replays it.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, history, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 0 {
		t.Fatalf("fresh journal has %d events", len(history))
	}
	for _, ev := range []Event{
		{Type: "submit", Job: 1, Spec: specPtr()},
		{Type: "start", Job: 1, Attempt: 1, Src: "a", Dst: "b"},
		{Type: "done", Job: 1},
	} {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, history, err = openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 3 {
		t.Fatalf("replayed %d events, want 3", len(history))
	}
	for i, ev := range history {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d: seq %d", i, ev.Seq)
		}
	}
}

// TestJournalTornTail verifies crash tolerance: a torn final line is
// dropped, but a malformed line mid-file poisons the replay.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	good := `{"seq":1,"type":"submit","job":1,"spec":{"program":"counter"}}` + "\n"
	if err := os.WriteFile(path, []byte(good+`{"seq":2,"type":"done","jo`), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := replayJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("torn tail: %d events, want 1", len(events))
	}

	if err := os.WriteFile(path, []byte(good+"GARBAGE\n"+good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayJournal(path); err == nil || !strings.Contains(err.Error(), "mid-file") {
		t.Fatalf("mid-file corruption accepted: %v", err)
	}
}

// TestNilJournal pins the in-memory mode: appends and close are no-ops.
func TestNilJournal(t *testing.T) {
	var j *journal
	if err := j.Append(Event{Type: "submit"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
