package fleet

import (
	"fmt"
	"sort"

	"github.com/dapper-sim/dapper/internal/isa"
)

// Placement picks a destination node for a job. The manager pre-filters
// candidates — only alive, undrained nodes with a free migration slot
// that are not the job's source (and match the job's TargetArch, if any)
// are offered — so a policy ranks eligibility, it does not re-derive it.
// Policies must be pure functions of their arguments plus their own
// state (the round-robin cursor), so placement is deterministic for a
// deterministic submission order.
type Placement interface {
	// Name is the policy's registry key.
	Name() string
	// Pick returns the chosen node, or nil when candidates is empty.
	// candidates is sorted by node name; src is nil when the job has not
	// been placed on a source yet.
	Pick(job *Job, src *NodeState, candidates []*NodeState) *NodeState
}

// NewPlacement builds a placement policy by name: "least-loaded" (the
// default), "isa-affinity", or "round-robin".
func NewPlacement(name string) (Placement, error) {
	switch name {
	case "", "least-loaded":
		return &leastLoaded{}, nil
	case "isa-affinity":
		return &isaAffinity{}, nil
	case "round-robin":
		return &roundRobin{}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown placement policy %q (want least-loaded, isa-affinity, or round-robin)", name)
	}
}

// leastLoaded picks the node with the lowest occupancy fraction
// (running migrations / capacity), breaking ties by name for
// determinism.
type leastLoaded struct{}

func (*leastLoaded) Name() string { return "least-loaded" }

func (*leastLoaded) Pick(_ *Job, _ *NodeState, candidates []*NodeState) *NodeState {
	return minByLoad(candidates)
}

func minByLoad(candidates []*NodeState) *NodeState {
	var best *NodeState
	var bestLoad float64
	for _, n := range candidates {
		load := float64(n.Running()) / float64(n.Capacity)
		if best == nil || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

// isaAffinity prefers a cross-ISA destination — the paper's raison
// d'être is moving work between SX86 servers and SARM boards, so by
// default a job lands on the other architecture (load permitting),
// falling back to same-ISA nodes only when no cross-ISA candidate is
// offered. Ties inside the preferred class break least-loaded.
type isaAffinity struct{}

func (*isaAffinity) Name() string { return "isa-affinity" }

func (*isaAffinity) Pick(_ *Job, src *NodeState, candidates []*NodeState) *NodeState {
	if src != nil {
		var cross []*NodeState
		for _, n := range candidates {
			if n.Arch() != src.Arch() {
				cross = append(cross, n)
			}
		}
		if len(cross) > 0 {
			return minByLoad(cross)
		}
	}
	return minByLoad(candidates)
}

// roundRobin cycles through nodes in name order, skipping ineligible
// ones. The cursor advances only on successful picks, so a temporarily
// full node does not permanently shift the rotation.
type roundRobin struct {
	cursor int
}

func (*roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(_ *Job, _ *NodeState, candidates []*NodeState) *NodeState {
	if len(candidates) == 0 {
		return nil
	}
	sort.Slice(candidates, func(i, k int) bool { return candidates[i].Name < candidates[k].Name })
	pick := candidates[r.cursor%len(candidates)]
	r.cursor++
	return pick
}

// archOf parses a TargetArch constraint; "" means unconstrained.
func archOf(name string) (isa.Arch, bool) {
	switch name {
	case "sx86":
		return isa.SX86, true
	case "sarm":
		return isa.SARM, true
	default:
		return 0, false
	}
}
