package fleet

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/cluster"
	"github.com/dapper-sim/dapper/internal/parallel"
)

// testNode builds a detached NodeState (no manager) for placement tests.
func testNode(name string, spec cluster.NodeSpec, capacity, running int) *NodeState {
	spec.Name = name
	n := &NodeState{
		Name:     name,
		Node:     cluster.NewNode(spec),
		Capacity: capacity,
		slots:    parallel.NewSemaphore(capacity),
	}
	for i := 0; i < running; i++ {
		if !n.acquire() {
			panic("testNode: over capacity")
		}
	}
	return n
}

func TestLeastLoadedPlacement(t *testing.T) {
	p, err := NewPlacement("least-loaded")
	if err != nil {
		t.Fatal(err)
	}
	idle := testNode("b-idle", cluster.PiSpec, 2, 0)
	half := testNode("a-half", cluster.XeonSpec, 2, 1)
	if got := p.Pick(nil, nil, []*NodeState{half, idle}); got != idle {
		t.Errorf("picked %s, want the idle node", got.Name)
	}
	// Ties break to the first candidate (candidates arrive name-sorted).
	tieA := testNode("a", cluster.XeonSpec, 2, 1)
	tieB := testNode("b", cluster.PiSpec, 2, 1)
	if got := p.Pick(nil, nil, []*NodeState{tieA, tieB}); got != tieA {
		t.Errorf("tie picked %s, want a", got.Name)
	}
	if p.Pick(nil, nil, nil) != nil {
		t.Error("empty candidates produced a pick")
	}
	// Load is a fraction of capacity, not an absolute count: 2/8 busy
	// beats 1/2 busy.
	big := testNode("big", cluster.XeonSpec, 8, 2)
	small := testNode("small", cluster.PiSpec, 2, 1)
	if got := p.Pick(nil, nil, []*NodeState{big, small}); got != big {
		t.Errorf("picked %s, want the fractionally idler big node", got.Name)
	}
}

func TestISAAffinityPlacement(t *testing.T) {
	p, err := NewPlacement("isa-affinity")
	if err != nil {
		t.Fatal(err)
	}
	src := testNode("xeon0", cluster.XeonSpec, 2, 0)
	sameIdle := testNode("xeon1", cluster.XeonSpec, 2, 0)
	crossBusy := testNode("pi0", cluster.PiSpec, 2, 1)
	// Cross-ISA wins even when busier.
	if got := p.Pick(nil, src, []*NodeState{crossBusy, sameIdle}); got != crossBusy {
		t.Errorf("picked %s, want the cross-ISA node", got.Name)
	}
	// With no cross-ISA candidate it degrades to least-loaded.
	if got := p.Pick(nil, src, []*NodeState{sameIdle}); got != sameIdle {
		t.Errorf("picked %v, want the same-ISA fallback", got)
	}
	// Without a source yet, plain least-loaded.
	if got := p.Pick(nil, nil, []*NodeState{crossBusy, sameIdle}); got != sameIdle {
		t.Errorf("sourceless pick %s, want least-loaded", got.Name)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	p, err := NewPlacement("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	a := testNode("a", cluster.XeonSpec, 2, 0)
	b := testNode("b", cluster.PiSpec, 2, 0)
	c := testNode("c", cluster.PiSpec, 2, 0)
	got := []string{}
	for i := 0; i < 4; i++ {
		got = append(got, p.Pick(nil, nil, []*NodeState{a, b, c}).Name)
	}
	want := []string{"a", "b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestNewPlacementErrors(t *testing.T) {
	if _, err := NewPlacement("chaos"); err == nil {
		t.Error("unknown policy accepted")
	}
	p, err := NewPlacement("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "least-loaded" {
		t.Errorf("default policy %s", p.Name())
	}
}
