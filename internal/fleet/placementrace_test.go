package fleet

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/dapper-sim/dapper/internal/cluster"
)

// TestPlacementRacesHeartbeatMarkDown pins the race between the
// heartbeat prober and an in-flight placement: the prober flips down
// flags without the manager lock, so a node can be marked down after the
// scheduler's eligibility scan but before the job dispatches. The
// placement must fail cleanly — slots released, job back to Pending,
// fleet.placement_races counted — and the job must complete once the
// node recovers. Before the re-check in schedule() this test failed: the
// counter never fired and the job dispatched Running onto the node the
// prober had just declared dead.
func TestPlacementRacesHeartbeatMarkDown(t *testing.T) {
	cfg := fastConfig()
	// Keep the real heartbeat out of the way: the test injects the
	// mark-down itself, deterministically, mid-placement.
	cfg.Heartbeat = HeartbeatConfig{Interval: time.Hour, MaxMissed: 3}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(t, m)
	if err := m.AddNode("xeon0", cluster.XeonSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("pi0", cluster.PiSpec, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterProgram("counter", counter); err != nil {
		t.Fatal(err)
	}
	var raced atomic.Bool
	m.testHookAfterAcquire = func(_ *Job, _, dst *NodeState) {
		if raced.Swap(true) {
			return // sabotage only the first placement
		}
		dst.down.Store(true) // the heartbeat prober's mark-down, mid-placement
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(JobSpec{Program: "counter", SrcNode: "xeon0", DstNode: "pi0"})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for m.reg.Counter("fleet.placement_races").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("placement race never detected")
		}
		time.Sleep(time.Millisecond)
	}
	// The doomed placement must not have dispatched: with the node still
	// down the job sits Pending, its slots released (nothing Running on
	// either node).
	time.Sleep(10 * time.Millisecond)
	if v, _ := m.Job(id); v.State != "pending" {
		t.Fatalf("job state after raced placement: %s, want pending", v.State)
	}
	for _, name := range []string{"xeon0", "pi0"} {
		n, _ := m.NodeByName(name)
		if n.Running() != 0 {
			t.Fatalf("%s holds %d slots after the raced placement released them", name, n.Running())
		}
	}

	// Node recovers; the pending job must place and finish normally.
	n, _ := m.NodeByName("pi0")
	n.down.Store(false)
	m.kick()
	if err := m.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Job(id); v.State != "done" {
		t.Fatalf("job after recovery: state %s (err %q)", v.State, v.Err)
	}
	if got := m.reg.Counter("fleet.placement_races").Value(); got != 1 {
		t.Errorf("fleet.placement_races = %d, want 1", got)
	}
}
