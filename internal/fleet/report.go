package fleet

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/dapper-sim/dapper/internal/obs"
)

// NodeReport is one node's row of the fleet report.
type NodeReport struct {
	Name     string `json:"name"`
	Arch     string `json:"arch"`
	Capacity int    `json:"capacity"`
	Running  int    `json:"running"`
	// HighWater is the most concurrent migrations ever observed — by
	// construction never above Capacity.
	HighWater int    `json:"high_water"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed_attempts"`
	// Utilization is busy-slot time over capacity-time since Start: 1.0
	// means every slot was occupied the whole time.
	Utilization float64 `json:"utilization"`
	Drained     bool    `json:"drained,omitempty"`
	Down        bool    `json:"down,omitempty"`
}

// FleetReport is the obs-backed control-plane summary dapperctl prints
// and the bench harness archives.
type FleetReport struct {
	Policy string       `json:"policy"`
	Uptime float64      `json:"uptime_s"`
	Nodes  []NodeReport `json:"nodes"`

	Submitted uint64 `json:"jobs_submitted"`
	Resumed   uint64 `json:"jobs_resumed,omitempty"`
	Done      uint64 `json:"jobs_done"`
	FailedJ   uint64 `json:"jobs_failed"`
	Pending   int    `json:"jobs_pending"`
	Running   int    `json:"jobs_running"`
	Retries   uint64 `json:"retries"`
	Rollbacks uint64 `json:"rollbacks"`
	Corrupt   uint64 `json:"corrupt_outputs"`
	Drains    uint64 `json:"drains,omitempty"`
	NodesDown uint64 `json:"nodes_marked_down,omitempty"`

	// Migration latency percentiles (modeled migration time) across
	// completed jobs, from the fleet.migration_ns histogram.
	MigrationP50 time.Duration `json:"migration_p50_ns"`
	MigrationP95 time.Duration `json:"migration_p95_ns"`
	MigrationP99 time.Duration `json:"migration_p99_ns"`
	DowntimeP50  time.Duration `json:"downtime_p50_ns"`
	DowntimeP95  time.Duration `json:"downtime_p95_ns"`
	DowntimeP99  time.Duration `json:"downtime_p99_ns"`

	MigratedBytes uint64 `json:"migrated_bytes"`

	// Obs is the full fleet telemetry report: every counter the control
	// plane and the migrations underneath it recorded.
	Obs *obs.Report `json:"obs,omitempty"`
}

// Report builds the current fleet report.
func (m *Manager) Report() *FleetReport {
	m.mu.Lock()
	uptime := time.Duration(0)
	if !m.start.IsZero() {
		//lint:ignore wallclock uptime is a host-time figure by definition, reported separately from modeled breakdowns
		uptime = time.Since(m.start)
	}
	pending, running := 0, 0
	for _, j := range m.jobs {
		switch j.State {
		case Pending:
			pending++
		case Running:
			running++
		}
	}
	nodes := m.nodeList()
	policy := m.policy.Name()
	m.mu.Unlock()

	rep := &FleetReport{
		Policy:    policy,
		Uptime:    uptime.Seconds(),
		Pending:   pending,
		Running:   running,
		Submitted: m.reg.Counter("fleet.jobs_submitted").Value(),
		Resumed:   m.reg.Counter("fleet.jobs_resumed").Value(),
		Done:      m.reg.Counter("fleet.jobs_done").Value(),
		FailedJ:   m.reg.Counter("fleet.jobs_failed").Value(),
		Retries:   m.reg.Counter("fleet.retries").Value(),
		Rollbacks: m.reg.Counter("fleet.rollbacks").Value(),
		Corrupt:   m.reg.Counter("fleet.corrupt_outputs").Value(),
		Drains:    m.reg.Counter("fleet.drains").Value(),
		NodesDown: m.reg.Counter("fleet.nodes_marked_down").Value(),

		MigrationP50:  m.reg.Histogram("fleet.migration_ns").Quantile(0.50),
		MigrationP95:  m.reg.Histogram("fleet.migration_ns").Quantile(0.95),
		MigrationP99:  m.reg.Histogram("fleet.migration_ns").Quantile(0.99),
		DowntimeP50:   m.reg.Histogram("fleet.downtime_ns").Quantile(0.50),
		DowntimeP95:   m.reg.Histogram("fleet.downtime_ns").Quantile(0.95),
		DowntimeP99:   m.reg.Histogram("fleet.downtime_ns").Quantile(0.99),
		MigratedBytes: m.reg.Counter("fleet.migrated_bytes").Value(),

		Obs: m.reg.Report(),
	}
	for _, n := range nodes {
		util := 0.0
		if uptime > 0 && n.Capacity > 0 {
			util = float64(n.busyNs.Load()) / (float64(uptime) * float64(n.Capacity))
		}
		rep.Nodes = append(rep.Nodes, NodeReport{
			Name:        n.Name,
			Arch:        n.Arch().String(),
			Capacity:    n.Capacity,
			Running:     n.Running(),
			HighWater:   n.HighWater(),
			Done:        n.done.Load(),
			Failed:      n.failed.Load(),
			Utilization: util,
			Drained:     n.Drained(),
			Down:        n.Down(),
		})
	}
	return rep
}

// JSON renders the report machine-readably.
func (r *FleetReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the report for terminals.
func (r *FleetReport) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet: policy=%s uptime=%.1fs jobs %d submitted / %d done / %d failed / %d pending / %d running\n",
		r.Policy, r.Uptime, r.Submitted, r.Done, r.FailedJ, r.Pending, r.Running)
	fmt.Fprintf(&sb, "retries=%d rollbacks=%d corrupt=%d migrated=%dB\n", r.Retries, r.Rollbacks, r.Corrupt, r.MigratedBytes)
	fmt.Fprintf(&sb, "migration p50=%v p95=%v p99=%v  downtime p50=%v p95=%v p99=%v\n",
		r.MigrationP50, r.MigrationP95, r.MigrationP99, r.DowntimeP50, r.DowntimeP95, r.DowntimeP99)
	for _, n := range r.Nodes {
		status := ""
		if n.Drained {
			status += " DRAINED"
		}
		if n.Down {
			status += " DOWN"
		}
		fmt.Fprintf(&sb, "node %-10s %s cap=%d running=%d peak=%d done=%d failed=%d util=%.2f%s\n",
			n.Name, n.Arch, n.Capacity, n.Running, n.HighWater, n.Done, n.Failed, n.Utilization, status)
	}
	return sb.String()
}
