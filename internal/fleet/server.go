package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
)

// Server exposes a Manager over a local socket. One request/response
// pair per connection (see api.go).
type Server struct {
	m  *Manager
	ln net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Serve listens on the unix-domain socket at path (removing a stale
// socket file from a dead daemon first) and serves requests until Close.
func Serve(m *Manager, path string) (*Server, error) {
	if err := removeStaleSocket(path); err != nil {
		return nil, err
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen %s: %w", path, err)
	}
	s := &Server{m: m, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// removeStaleSocket unlinks a socket file nothing is listening on. A
// live listener is left alone so two daemons cannot fight over one
// socket.
func removeStaleSocket(path string) error {
	if _, err := os.Stat(path); err != nil {
		return nil // nothing there (or it will fail at Listen with a real error)
	}
	conn, err := net.Dial("unix", path)
	if err == nil {
		// The probe connection served its purpose; the daemon behind it
		// treats the empty request as a failed decode and moves on.
		_ = conn.Close()
		return fmt.Errorf("fleet: socket %s already has a live daemon", path)
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("fleet: remove stale socket: %w", err)
	}
	return nil
}

// Addr returns the socket path.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Listener closed (shutdown) or a transient accept error; a
			// closed listener ends the loop.
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		// The response has been flushed (or the connection is already
		// broken); nothing actionable remains on this one-shot conn.
		_ = conn.Close()
	}()
	var req Request
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	resp := s.dispatch(req)
	// An encode failure means the client went away mid-response; the
	// daemon has nothing to do about it.
	_ = json.NewEncoder(conn).Encode(resp)
}

func (s *Server) dispatch(req Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpSubmit:
		if req.Spec == nil {
			return fail(fmt.Errorf("fleet: submit without a spec"))
		}
		id, err := s.m.Submit(*req.Spec)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, JobID: id}
	case OpJobs:
		return Response{OK: true, Jobs: s.m.Jobs()}
	case OpJob:
		v, ok := s.m.Job(req.JobID)
		if !ok {
			return fail(fmt.Errorf("fleet: no job %d", req.JobID))
		}
		return Response{OK: true, Job: &v}
	case OpStatus:
		return Response{OK: true, Status: statusOf(s.m.Report())}
	case OpDrain:
		if err := s.m.Drain(req.Node, !req.Undrain); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case OpReport:
		return Response{OK: true, Report: s.m.Report()}
	default:
		return fail(fmt.Errorf("fleet: unknown op %q", req.Op))
	}
}

// Close stops accepting, waits for in-flight connections, and removes
// the socket file.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	if err != nil {
		return fmt.Errorf("fleet: close listener: %w", err)
	}
	return nil
}
