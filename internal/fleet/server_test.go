package fleet

import (
	"path/filepath"
	"testing"
	"time"
)

// TestServerRoundTrip drives the whole control surface over a real unix
// socket: ping, submit, job/jobs, status, drain, report — the same calls
// dapperctl makes.
func TestServerRoundTrip(t *testing.T) {
	m := mixedFleet(t, fastConfig(), 2)
	defer stopManager(t, m)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	socket := filepath.Join(t.TempDir(), "d.sock")
	srv, err := Serve(m, socket)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()

	if _, err := Call(socket, Request{Op: OpPing}); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// A second daemon must refuse the live socket.
	if _, err := Serve(m, socket); err == nil {
		t.Fatal("second Serve on a live socket succeeded")
	}

	resp, err := Call(socket, Request{Op: OpSubmit, Spec: &JobSpec{Program: "counter"}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.JobID == 0 {
		t.Fatal("submit returned no job id")
	}

	if _, err := Call(socket, Request{Op: OpSubmit, Spec: &JobSpec{Program: "ghost"}}); err == nil {
		t.Error("submit of an unknown program succeeded over the wire")
	}
	if _, err := Call(socket, Request{Op: OpSubmit}); err == nil {
		t.Error("submit without a spec succeeded")
	}
	if _, err := Call(socket, Request{Op: "selfdestruct"}); err == nil {
		t.Error("unknown op succeeded")
	}
	if _, err := Call(socket, Request{Op: OpJob, JobID: 999}); err == nil {
		t.Error("lookup of a missing job succeeded")
	}
	if _, err := Call(socket, Request{Op: OpDrain, Node: "ghost"}); err == nil {
		t.Error("drain of an unknown node succeeded")
	}

	if err := m.WaitIdle(time.Minute); err != nil {
		t.Fatal(err)
	}

	jr, err := Call(socket, Request{Op: OpJob, JobID: resp.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Job == nil || jr.Job.State != "done" {
		t.Fatalf("job over the wire: %+v", jr.Job)
	}
	lr, err := Call(socket, Request{Op: OpJobs})
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Jobs) != 1 {
		t.Fatalf("jobs over the wire: %d", len(lr.Jobs))
	}

	sr, err := Call(socket, Request{Op: OpStatus})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Status == nil || sr.Status.Done != 1 || len(sr.Status.Nodes) != 4 {
		t.Fatalf("status over the wire: %+v", sr.Status)
	}

	dr, err := Call(socket, Request{Op: OpDrain, Node: "pi0"})
	if err != nil || !dr.OK {
		t.Fatalf("drain: %v", err)
	}
	rr, err := Call(socket, Request{Op: OpReport})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Report == nil || rr.Report.Obs == nil {
		t.Fatal("report over the wire lost its obs payload")
	}
	drained := false
	for _, n := range rr.Report.Nodes {
		if n.Name == "pi0" && n.Drained {
			drained = true
		}
	}
	if !drained {
		t.Error("drain did not stick")
	}
	if _, err := Call(socket, Request{Op: OpDrain, Node: "pi0", Undrain: true}); err != nil {
		t.Fatal(err)
	}
}

// TestServerStaleSocket verifies a dead daemon's socket file is swept and
// the path reused.
func TestServerStaleSocket(t *testing.T) {
	m := mixedFleet(t, fastConfig(), 1)
	defer stopManager(t, m)
	socket := filepath.Join(t.TempDir(), "d.sock")
	srv, err := Serve(m, socket)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// net.Listener.Close on a unix socket removes the file; recreate a
	// stale one the way a crashed daemon leaves it.
	srv2, err := Serve(m, socket)
	if err != nil {
		t.Fatalf("reuse after close: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Call(socket, Request{Op: OpPing}); err == nil {
		t.Error("ping of a closed server succeeded")
	}
}
