// Package gadget measures the attack surface of binaries as ROP gadget
// counts, reproducing the paper's Fig. 11 comparison: DAPPER keeps the
// state-transformation logic *outside* the program's address space, while
// Popcorn-Linux-style systems link an in-process migration runtime into
// every binary, inflating its gadget count.
package gadget

import (
	"fmt"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/isa"
)

// MaxGadgetLen is the maximum instructions per gadget (industry-standard
// scanners use 3–5).
const MaxGadgetLen = 5

// Count returns the number of distinct ROP gadgets in text: positions from
// which a valid instruction sequence of at most MaxGadgetLen instructions
// ends in a return. On the variable-length SX86 encoding gadgets may start
// at unintended byte offsets (as on real x86); on SARM only word-aligned
// starts decode.
func Count(text []byte, base uint64, arch isa.Arch) int {
	return CountMax(text, base, arch, MaxGadgetLen)
}

// CountMax is Count with an explicit gadget-length bound (the scanner
// sensitivity ablation sweeps it).
func CountMax(text []byte, base uint64, arch isa.Arch, maxLen int) int {
	coder := compiler.CoderFor(arch)
	step := 1
	if arch == isa.SARM {
		step = 4
	}
	count := 0
	for off := 0; off < len(text); off += step {
		if endsInRet(coder, text, base, off, maxLen) {
			count++
		}
	}
	return count
}

// endsInRet decodes forward from off and reports whether a RET is reached
// within maxLen instructions.
func endsInRet(coder isa.Coder, text []byte, base uint64, off, maxLen int) bool {
	pos := off
	for n := 0; n < maxLen && pos < len(text); n++ {
		inst, err := coder.Decode(text[pos:], base+uint64(pos))
		if err != nil {
			return false
		}
		if inst.Op == isa.OpRet {
			return true
		}
		// Control transfers end the straight-line gadget.
		switch inst.Op {
		case isa.OpJmp, isa.OpCall, isa.OpJz, isa.OpJnz, isa.OpTrap:
			return false
		}
		pos += inst.Len
	}
	return false
}

// Reduction computes the percentage reduction of gadgets going from
// baseline to hardened.
func Reduction(baseline, hardened int) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * float64(baseline-hardened) / float64(baseline)
}

// PopcornRuntimeSrc is a synthetic in-process migration runtime in DapC,
// standing in for the state-transformation code Popcorn Linux injects into
// every application's address space (register-state conversion, stack
// transformation, address-space bookkeeping). Appending it to a program
// before compilation produces the Popcorn-style baseline binary whose
// larger .text carries correspondingly more gadgets.
var PopcornRuntimeSrc = popcornBaseSrc + generatedConverters()

// generatedConverters emits the per-register, per-direction conversion
// routines a real in-process transformer carries (Popcorn's migration
// library converts each architectural register and stack-slot class with
// dedicated code paths).
func generatedConverters() string {
	var sb sbuilder
	for r := 0; r < 6; r++ {
		sb.addf(`
func __pc_x2a_r%d(v int, mode int) int {
	var e int;
	e = (v << %d) | (v >> %d);
	if mode == 1 { e = e ^ %d; }
	if mode == 2 { e = e + %d; }
	__pc_regpool[%d] = e;
	return e;
}

func __pc_a2x_r%d(v int, mode int) int {
	var e int;
	e = (v >> %d) | (v << %d);
	if mode == 1 { e = e - %d; }
	__pc_regpool[%d] = e ^ __pc_regpool[%d];
	return e;
}
`, r, (r%7)+1, 63-(r%7), 0x1111*(r+1), 7919*(r+3), r%64,
			r, (r%5)+1, 63-(r%5), 104729*(r+1), (r+16)%64, r%64)
	}
	for k := 0; k < 3; k++ {
		sb.addf(`
func __pc_slotclass%d(off int, val int) int {
	var h int;
	h = (off * %d + val) & 0xffffff;
	__pc_framebuf[h %% 128] = h;
	if h %% %d == 0 { return __pc_x2a_r%d(val, h %% 3); }
	return __pc_a2x_r%d(val, h %% 3);
}
`, k, 2654435761+k*97, k+2, k%6, (k+5)%6)
	}
	return sb.String()
}

type sbuilder struct{ b []byte }

func (s *sbuilder) addf(format string, args ...any) {
	s.b = append(s.b, []byte(fmt.Sprintf(format, args...))...)
}

func (s *sbuilder) String() string { return string(s.b) }

const popcornBaseSrc = `
var __pc_regpool[64] int;
var __pc_framebuf[128] int;
var __pc_vmalist[48] int;

func __pc_convert_reg(slot int, val int, mode int) int {
	var enc int;
	enc = val;
	if mode == 1 { enc = (val << 8) | (val >> 56); }
	if mode == 2 { enc = val ^ 0x5a5a5a5a; }
	__pc_regpool[slot % 64] = enc;
	return enc;
}

func __pc_regset_convert(mode int) int {
	var i int;
	var acc int;
	for i = 0; i < 64; i = i + 1 {
		acc = acc + __pc_convert_reg(i, acc + i * 3, mode);
	}
	return acc;
}

func __pc_unwind_frame(fp int, depth int) int {
	var slot int;
	var caller int;
	if depth <= 0 { return fp; }
	slot = fp % 128;
	__pc_framebuf[slot] = fp + depth;
	caller = fp - depth * 16;
	return __pc_unwind_frame(caller, depth - 1);
}

func __pc_transform_stack(base int, frames int) int {
	var f int;
	var sum int;
	for f = 0; f < frames; f = f + 1 {
		sum = sum + __pc_unwind_frame(base + f * 64, f % 8);
	}
	return sum;
}

func __pc_map_vma(start int, len int, prot int) int {
	var idx int;
	idx = (start / 4096) % 16;
	__pc_vmalist[idx * 3] = start;
	__pc_vmalist[idx * 3 + 1] = len;
	__pc_vmalist[idx * 3 + 2] = prot;
	return idx;
}

func __pc_share_pages(start int, n int) int {
	var i int;
	var acc int;
	for i = 0; i < n; i = i + 1 {
		acc = acc + __pc_map_vma(start + i * 4096, 4096, 7);
	}
	return acc;
}

func __pc_marshal_state(mode int) int {
	var a int;
	var b int;
	a = __pc_regset_convert(mode);
	b = __pc_transform_stack(a % 100000, 12);
	return a + b + __pc_share_pages(b % 65536, 24);
}

func __pc_migrate_entry(nid int) int {
	var st int;
	st = __pc_marshal_state(nid % 3);
	if st % 2 == 0 {
		st = __pc_marshal_state((nid + 1) % 3);
	}
	return st;
}
`

// PopcornPair compiles a program with the in-process migration runtime
// linked in (the baseline), next to the DAPPER pair of the same program.
func PopcornPair(src string) (*compiler.Pair, error) {
	return compiler.Compile(src + PopcornRuntimeSrc)
}

// Compare counts gadgets in a DAPPER binary versus its Popcorn-style
// counterpart on the same architecture.
type Comparison struct {
	Arch         isa.Arch
	Dapper       int
	Popcorn      int
	ReductionPct float64
}

// CompareBinaries builds the comparison for one architecture.
func CompareBinaries(dapper, popcorn *compiler.Binary) Comparison {
	d := Count(dapper.Text, isa.TextBase, dapper.Arch)
	p := Count(popcorn.Text, isa.TextBase, popcorn.Arch)
	return Comparison{
		Arch:         dapper.Arch,
		Dapper:       d,
		Popcorn:      p,
		ReductionPct: Reduction(p, d),
	}
}
