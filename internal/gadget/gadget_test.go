package gadget_test

import (
	"testing"

	"github.com/dapper-sim/dapper/internal/asm"
	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/gadget"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/isa/sarm"
	"github.com/dapper-sim/dapper/internal/isa/sx86"
	"github.com/dapper-sim/dapper/internal/kernel"
)

func TestCountHandAssembled(t *testing.T) {
	// SX86: mov r1, r2; add r1, r3; ret  -> gadgets at the mov, the add,
	// and the ret itself (suffixes of a ret-terminated run).
	f := asm.New(sx86.Coder{})
	f.Emit(isa.Inst{Op: isa.OpMov, Rd: 1, Rn: 2})
	f.Emit(isa.Inst{Op: isa.OpAdd, Rd: 1, Rn: 1, Rm: 3})
	f.Emit(isa.Inst{Op: isa.OpRet})
	code, _, err := f.Assemble(isa.TextBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := gadget.Count(code, isa.TextBase, isa.SX86)
	if n < 3 {
		t.Errorf("gadgets = %d, want >= 3", n)
	}

	// SARM: aligned scanning only.
	fa := asm.New(sarm.Coder{})
	fa.Emit(isa.Inst{Op: isa.OpMov, Rd: 1, Rn: 2})
	fa.Emit(isa.Inst{Op: isa.OpAdd, Rd: 1, Rn: 2, Rm: 3})
	fa.Emit(isa.Inst{Op: isa.OpRet})
	codeA, _, err := fa.Assemble(isa.TextBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	na := gadget.Count(codeA, isa.TextBase, isa.SARM)
	if na != 3 {
		t.Errorf("sarm gadgets = %d, want exactly 3 (aligned)", na)
	}
}

func TestUnintendedGadgetsOnVariableLength(t *testing.T) {
	// A MOVri whose immediate contains 0xC3 yields an unintended RET when
	// decoded at the immediate's offset (classic x86 behaviour).
	f := asm.New(sx86.Coder{})
	f.Emit(isa.Inst{Op: isa.OpMovImm, Rd: 1, Imm: 0xC3})
	f.Emit(isa.Inst{Op: isa.OpJmp, Imm: int64(isa.TextBase)})
	code, _, err := f.Assemble(isa.TextBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := gadget.Count(code, isa.TextBase, isa.SX86); n == 0 {
		t.Error("no unintended gadget found in immediate bytes")
	}
}

const appSrc = `
func work(a int, b int) int {
	var t int;
	t = a * b + a - b;
	return t;
}
func main() {
	var i int;
	var s int;
	for i = 0; i < 10; i = i + 1 {
		s = s + work(i, i + 1);
	}
	printi(s);
}`

func TestPopcornBaselineHasMoreGadgets(t *testing.T) {
	dapper, err := compiler.Compile(appSrc)
	if err != nil {
		t.Fatal(err)
	}
	popcorn, err := gadget.PopcornPair(appSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		cmp := gadget.CompareBinaries(dapper.ByArch(arch), popcorn.ByArch(arch))
		if cmp.Popcorn <= cmp.Dapper {
			t.Errorf("%v: popcorn %d <= dapper %d", arch, cmp.Popcorn, cmp.Dapper)
		}
		if cmp.ReductionPct <= 20 {
			t.Errorf("%v: reduction only %.1f%%", arch, cmp.ReductionPct)
		}
	}
}

func TestPopcornBaselineStillRuns(t *testing.T) {
	// The baseline must be a functioning program (the runtime is linked
	// but dormant), or the comparison would be apples to oranges.
	popcorn, err := gadget.PopcornPair(appSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{})
	p, err := k.StartProcess(popcorn.X86.LoadSpec("/bin/pc.sx86"))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsoleString(); got != "320" {
		t.Errorf("popcorn-baseline output %q", got)
	}
}

func TestReduction(t *testing.T) {
	if r := gadget.Reduction(200, 80); r != 60 {
		t.Errorf("Reduction(200,80) = %v", r)
	}
	if r := gadget.Reduction(0, 5); r != 0 {
		t.Errorf("Reduction(0,5) = %v", r)
	}
}
