// Package image defines DAPPER's checkpoint image formats: the typed
// views of the files in an image directory (core-<tid>, mm, pagemap,
// pages, files, inventory) in a protobuf-style wire format, the in-memory
// ImageDir holding them, and the editable PageSet over pagemap+pages.
//
// The decomposition mirrors CRIU's: per-thread register state in core
// images, the VMA list in mm, resident page runs in pagemap+pages, and
// the executable path in files — the exact files the DAPPER process
// rewriter edits. The codec layer lives below internal/criu (which
// re-exports every type here under its historical names) so that static
// verifiers such as internal/imgcheck can decode images without pulling
// in the checkpoint/restore machinery itself.
package image

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/dapper-sim/dapper/internal/imgproto"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/mem"
)

// CoreImage is core-<tid>.img: one thread's architectural state.
type CoreImage struct {
	TID       int         `json:"tid"`
	Arch      isa.Arch    `json:"arch"`
	Regs      isa.RegFile `json:"regs"`
	StackLow  uint64      `json:"stackLow"`
	StackHigh uint64      `json:"stackHigh"`
	TLSBlock  uint64      `json:"tlsBlock"`
}

// Marshal encodes the image.
func (c *CoreImage) Marshal() []byte {
	var e imgproto.Encoder
	e.Uint64(1, uint64(c.TID))
	e.Uint64(2, uint64(c.Arch))
	for _, r := range c.Regs.R {
		e.Fixed64(3, r)
	}
	e.Fixed64(4, c.Regs.PC)
	e.Fixed64(5, c.Regs.TLS)
	e.Fixed64(6, c.StackLow)
	e.Fixed64(7, c.StackHigh)
	e.Fixed64(8, c.TLSBlock)
	return e.Bytes()
}

// UnmarshalCore decodes a core image.
func UnmarshalCore(b []byte) (*CoreImage, error) {
	c := &CoreImage{}
	nreg := 0
	err := imgproto.NewDecoder(b).Each(func(f uint32, d *imgproto.Decoder) error {
		v, err := d.FieldUint64()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			c.TID = int(v)
		case 2:
			c.Arch = isa.Arch(v)
		case 3:
			if nreg < isa.NumRegs {
				c.Regs.R[nreg] = v
				nreg++
			}
		case 4:
			c.Regs.PC = v
		case 5:
			c.Regs.TLS = v
		case 6:
			c.StackLow = v
		case 7:
			c.StackHigh = v
		case 8:
			c.TLSBlock = v
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("image: core image: %w", err)
	}
	return c, nil
}

// VMAEntry describes one mapped area in the mm image.
type VMAEntry struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	Kind  uint8  `json:"kind"`
	Prot  uint8  `json:"prot"`
	TID   int    `json:"tid,omitempty"`
}

// MMImage is mm.img: the address-space description.
type MMImage struct {
	VMAs []VMAEntry `json:"vmas"`
	Brk  uint64     `json:"brk"`
}

// Marshal encodes the image.
func (m *MMImage) Marshal() []byte {
	var e imgproto.Encoder
	for _, v := range m.VMAs {
		e.Message(1, func(n *imgproto.Encoder) {
			n.Fixed64(1, v.Start)
			n.Fixed64(2, v.End)
			n.Uint64(3, uint64(v.Kind))
			n.Uint64(4, uint64(v.Prot))
			n.Uint64(5, uint64(v.TID))
		})
	}
	e.Fixed64(2, m.Brk)
	return e.Bytes()
}

// UnmarshalMM decodes an mm image.
func UnmarshalMM(b []byte) (*MMImage, error) {
	m := &MMImage{}
	err := imgproto.NewDecoder(b).Each(func(f uint32, d *imgproto.Decoder) error {
		switch f {
		case 1:
			var v VMAEntry
			if err := d.FieldMessage(func(nf uint32, nd *imgproto.Decoder) error {
				u, err := nd.FieldUint64()
				if err != nil {
					return err
				}
				switch nf {
				case 1:
					v.Start = u
				case 2:
					v.End = u
				case 3:
					v.Kind = uint8(u)
				case 4:
					v.Prot = uint8(u)
				case 5:
					v.TID = int(u)
				}
				return nil
			}); err != nil {
				return err
			}
			m.VMAs = append(m.VMAs, v)
		case 2:
			u, err := d.FieldUint64()
			if err != nil {
				return err
			}
			m.Brk = u
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("image: mm image: %w", err)
	}
	return m, nil
}

// PagemapEntry describes a run of pages. Lazy entries have no bytes in
// pages.img; their content stays on the source node and is served on
// demand by the page server (post-copy migration). InParent entries
// (incremental dumps, CRIU's in_parent flag) carry no bytes either: the
// content is unchanged since the parent checkpoint and resolves through
// the chain. Zero entries mark all-zero pages whose bytes are elided;
// restore leaves them demand-zero. Dedup entries (the content-addressed
// page store) carry no bytes either: each of the run's pages is
// byte-identical to the data page at DedupSrc + i*PageSize earlier in
// the SAME pagemap — the reference must point strictly backwards, so a
// single forward pass resolves it and cycles are impossible by
// construction. Delta entries (pre-copy XOR encoding) DO carry bytes in
// pages.img, but the bytes are the XOR of the page's content with its
// content at the parent checkpoint: a re-dirtied page whose bytes barely
// changed encodes as mostly zeros, which the wire codec compresses away.
// Resolving a delta page therefore needs the parent chain, like
// in_parent but with local bytes.
type PagemapEntry struct {
	Vaddr    uint64 `json:"vaddr"`
	NrPages  uint32 `json:"nrPages"`
	Lazy     bool   `json:"lazy,omitempty"`
	InParent bool   `json:"inParent,omitempty"`
	Zero     bool   `json:"zero,omitempty"`
	Dedup    bool   `json:"dedup,omitempty"`
	// DedupSrc is the page-aligned vaddr of the data page holding this
	// run's bytes; meaningful only when Dedup is set.
	DedupSrc uint64 `json:"dedupSrc,omitempty"`
	// Delta marks the run's pages.img bytes as XORed against the same
	// page's content in the parent chain (incremental dumps only).
	Delta bool `json:"delta,omitempty"`
}

// PagemapImage is pagemap.img: the index into pages.img.
type PagemapImage struct {
	Entries []PagemapEntry `json:"entries"`
}

// Marshal encodes the image.
func (p *PagemapImage) Marshal() []byte {
	var e imgproto.Encoder
	for _, en := range p.Entries {
		e.Message(1, func(n *imgproto.Encoder) {
			n.Fixed64(1, en.Vaddr)
			n.Uint64(2, uint64(en.NrPages))
			n.Bool(3, en.Lazy)
			n.Bool(4, en.InParent)
			n.Bool(5, en.Zero)
			// Fields 6/7 are emitted only for dedup runs so that images
			// written without dedup stay byte-identical to the pre-dedup
			// encoding (the Workers=1 golden-output contract).
			// Flag and source are emitted independently so a malformed
			// source-without-flag entry survives a CRIT round trip for the
			// verifier to reject.
			if en.Dedup {
				n.Bool(6, true)
			}
			if en.DedupSrc != 0 {
				n.Fixed64(7, en.DedupSrc)
			}
			// Field 8 likewise appears only on delta runs, so non-delta
			// images keep the historical byte-identical encoding.
			if en.Delta {
				n.Bool(8, true)
			}
		})
	}
	return e.Bytes()
}

// UnmarshalPagemap decodes a pagemap image.
func UnmarshalPagemap(b []byte) (*PagemapImage, error) {
	p := &PagemapImage{}
	err := imgproto.NewDecoder(b).Each(func(f uint32, d *imgproto.Decoder) error {
		if f != 1 {
			return nil
		}
		var en PagemapEntry
		if err := d.FieldMessage(func(nf uint32, nd *imgproto.Decoder) error {
			switch nf {
			case 1:
				u, err := nd.FieldUint64()
				en.Vaddr = u
				return err
			case 2:
				u, err := nd.FieldUint64()
				en.NrPages = uint32(u)
				return err
			case 3:
				v, err := nd.FieldBool()
				en.Lazy = v
				return err
			case 4:
				v, err := nd.FieldBool()
				en.InParent = v
				return err
			case 5:
				v, err := nd.FieldBool()
				en.Zero = v
				return err
			case 6:
				v, err := nd.FieldBool()
				en.Dedup = v
				return err
			case 7:
				u, err := nd.FieldUint64()
				en.DedupSrc = u
				return err
			case 8:
				v, err := nd.FieldBool()
				en.Delta = v
				return err
			}
			return nil
		}); err != nil {
			return err
		}
		p.Entries = append(p.Entries, en)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("image: pagemap image: %w", err)
	}
	return p, nil
}

// FilesImage is files.img: the open files (here, the executable).
type FilesImage struct {
	ExePath string `json:"exePath"`
}

// Marshal encodes the image.
func (f *FilesImage) Marshal() []byte {
	var e imgproto.Encoder
	e.String(1, f.ExePath)
	return e.Bytes()
}

// UnmarshalFiles decodes a files image.
func UnmarshalFiles(b []byte) (*FilesImage, error) {
	f := &FilesImage{}
	err := imgproto.NewDecoder(b).Each(func(fl uint32, d *imgproto.Decoder) error {
		if fl == 1 {
			s, err := d.FieldString()
			f.ExePath = s
			return err
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("image: files image: %w", err)
	}
	return f, nil
}

// MutexEntry is a held mutex recorded in the inventory.
type MutexEntry struct {
	ID      uint64 `json:"id"`
	Holder  int    `json:"holder"`
	Recurse int    `json:"recurse"`
}

// InventoryImage is inventory.img: dump-wide facts.
type InventoryImage struct {
	Arch    isa.Arch     `json:"arch"`
	TIDs    []int        `json:"tids"`
	Mutexes []MutexEntry `json:"mutexes,omitempty"`
}

// Marshal encodes the image.
func (iv *InventoryImage) Marshal() []byte {
	var e imgproto.Encoder
	e.Uint64(1, uint64(iv.Arch))
	for _, t := range iv.TIDs {
		e.Uint64(2, uint64(t))
	}
	for _, m := range iv.Mutexes {
		e.Message(3, func(n *imgproto.Encoder) {
			n.Uint64(1, m.ID)
			n.Uint64(2, uint64(m.Holder))
			n.Uint64(3, uint64(m.Recurse))
		})
	}
	return e.Bytes()
}

// UnmarshalInventory decodes an inventory image.
func UnmarshalInventory(b []byte) (*InventoryImage, error) {
	iv := &InventoryImage{}
	err := imgproto.NewDecoder(b).Each(func(f uint32, d *imgproto.Decoder) error {
		switch f {
		case 1:
			u, err := d.FieldUint64()
			iv.Arch = isa.Arch(u)
			return err
		case 2:
			u, err := d.FieldUint64()
			iv.TIDs = append(iv.TIDs, int(u))
			return err
		case 3:
			var m MutexEntry
			if err := d.FieldMessage(func(nf uint32, nd *imgproto.Decoder) error {
				u, err := nd.FieldUint64()
				if err != nil {
					return err
				}
				switch nf {
				case 1:
					m.ID = u
				case 2:
					m.Holder = int(u)
				case 3:
					m.Recurse = int(u)
				}
				return nil
			}); err != nil {
				return err
			}
			iv.Mutexes = append(iv.Mutexes, m)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("image: inventory image: %w", err)
	}
	return iv, nil
}

// ImageDir is the checkpoint directory (held in memory, like the paper's
// tmpfs checkpoint target).
type ImageDir struct {
	files map[string][]byte
}

// NewImageDir returns an empty directory.
func NewImageDir() *ImageDir { return &ImageDir{files: make(map[string][]byte)} }

// Put stores a file.
func (d *ImageDir) Put(name string, data []byte) { d.files[name] = data }

// Get reads a file.
func (d *ImageDir) Get(name string) ([]byte, bool) {
	b, ok := d.files[name]
	return b, ok
}

// Names lists files in sorted order.
func (d *ImageDir) Names() []string {
	out := make([]string, 0, len(d.files))
	for n := range d.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns total bytes across all image files (drives the copy-time
// model).
func (d *ImageDir) Size() uint64 {
	var n uint64
	for _, b := range d.files {
		n += uint64(len(b))
	}
	return n
}

// FrameFile encodes one directory entry exactly as it appears inside
// Marshal's output: concatenating FrameFile over Names() in sorted
// order reproduces Marshal() byte for byte. The parallel transfer path
// relies on this to frame files on worker goroutines (overlapping
// framing with the rewrite stage) and splice them in name order.
func FrameFile(name string, data []byte) []byte {
	var e imgproto.Encoder
	e.Message(1, func(n *imgproto.Encoder) {
		n.String(1, name)
		n.BytesField(2, data)
	})
	return e.Bytes()
}

// Marshal flattens the directory into one blob for network transfer.
func (d *ImageDir) Marshal() []byte {
	var out []byte
	for _, name := range d.Names() {
		out = append(out, FrameFile(name, d.files[name])...)
	}
	return out
}

// UnmarshalImageDir parses a directory blob.
func UnmarshalImageDir(b []byte) (*ImageDir, error) {
	d := NewImageDir()
	err := imgproto.NewDecoder(b).Each(func(f uint32, dec *imgproto.Decoder) error {
		if f != 1 {
			return nil
		}
		var name string
		var data []byte
		if err := dec.FieldMessage(func(nf uint32, nd *imgproto.Decoder) error {
			switch nf {
			case 1:
				s, err := nd.FieldString()
				name = s
				return err
			case 2:
				raw, err := nd.FieldBytes()
				if err != nil {
					return err
				}
				data = make([]byte, len(raw))
				copy(data, raw)
			}
			return nil
		}); err != nil {
			return err
		}
		d.Put(name, data)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("image: image dir: %w", err)
	}
	return d, nil
}

// PageSet is an editable view of pagemap.img + pages.img: the rewriter
// loads it, mutates page contents, and stores it back.
type PageSet struct {
	// Pages maps page-aligned vaddr -> page bytes (nil for lazy pages).
	Pages map[uint64][]byte
	// LazyPages records pages left on the source node.
	LazyPages map[uint64]bool
	// ParentPages records pages whose content is unchanged since the
	// parent checkpoint (incremental dumps); resolve with FlattenChain
	// before restoring or rewriting.
	ParentPages map[uint64]bool
	// ZeroPages records all-zero pages carried by the pagemap alone.
	ZeroPages map[uint64]bool
	// DeltaPages marks addresses whose Pages entry holds XOR-delta bytes
	// (against the parent chain) rather than plain content. Resolve with
	// FlattenChain before restoring or rewriting.
	DeltaPages map[uint64]bool
}

// Page classes for the pagemap run coalescer.
const (
	pageData = iota
	pageZero
	pageParent
	pageLazy
	pageDedup
	pageDelta
)

// classOf reports how the page at a is represented. Data beats the flag
// maps; a nil entry in Pages keeps its historical "lazy" meaning.
func (ps *PageSet) classOf(a uint64) int {
	if pg, ok := ps.Pages[a]; ok && pg != nil {
		if ps.DeltaPages[a] {
			return pageDelta
		}
		return pageData
	}
	switch {
	case ps.ZeroPages[a]:
		return pageZero
	case ps.ParentPages[a]:
		return pageParent
	default:
		return pageLazy
	}
}

// LoadPageSet parses the pagemap/pages pair from a directory.
func LoadPageSet(dir *ImageDir) (*PageSet, error) {
	pmRaw, ok := dir.Get("pagemap.img")
	if !ok {
		return nil, fmt.Errorf("image: missing pagemap.img")
	}
	pm, err := UnmarshalPagemap(pmRaw)
	if err != nil {
		return nil, err
	}
	pages, _ := dir.Get("pages.img")
	// Pre-scan the pagemap: per-class page counts size every map exactly
	// once, and the data-page total bounds-checks pages.img up front so
	// the install loop below never re-checks per entry.
	var nData, nDedup, nLazy, nParent, nZero, nDelta int
	for _, en := range pm.Entries {
		n := int(en.NrPages)
		switch {
		case en.Dedup:
			nDedup += n
			if en.Delta {
				nDelta += n
			}
		case en.Lazy:
			nLazy += n
		case en.InParent:
			nParent += n
		case en.Zero:
			nZero += n
		default:
			nData += n
			if en.Delta {
				nDelta += n
			}
		}
	}
	if want := nData * mem.PageSize; want > len(pages) {
		return nil, fmt.Errorf("image: pages.img truncated: pagemap describes %d data bytes, file carries %d", want, len(pages))
	}
	ps := &PageSet{
		Pages:       make(map[uint64][]byte, nData+nDedup),
		LazyPages:   make(map[uint64]bool, nLazy),
		ParentPages: make(map[uint64]bool, nParent),
		ZeroPages:   make(map[uint64]bool, nZero),
		DeltaPages:  make(map[uint64]bool, nDelta),
	}
	// One private copy of the payload, subsliced per page: each data
	// entry costs one bounds-checked three-index slice instead of its own
	// allocation and copy, and mutations through the PageSet (WriteU64
	// stays inside its page's capped slice) never reach pages.img.
	buf := make([]byte, nData*mem.PageSize)
	copy(buf, pages)
	off := 0
	for _, en := range pm.Entries {
		for i := uint32(0); i < en.NrPages; i++ {
			addr := en.Vaddr + uint64(i)*mem.PageSize
			switch {
			case en.Dedup:
				// Dedup references point strictly backwards (the page
				// with the lowest vaddr keeps the bytes), so a single
				// forward pass resolves every run. A combined dedup+delta
				// entry must reference an earlier delta page and a plain
				// dedup entry an earlier data page: the delta flag names
				// the representation of the shared bytes, and a mismatch
				// would alias XOR-diff bytes as content (or vice versa).
				// The copy stays: a dedup page must be independently
				// mutable from its source.
				src := en.DedupSrc + uint64(i)*mem.PageSize
				srcPg, ok := ps.Pages[src]
				if !ok || srcPg == nil {
					return nil, fmt.Errorf("image: dedup page 0x%x references 0x%x, which holds no data", addr, src)
				}
				if en.Delta != ps.DeltaPages[src] {
					return nil, fmt.Errorf("image: dedup page 0x%x (delta=%v) references 0x%x (delta=%v): flag class mismatch", addr, en.Delta, src, ps.DeltaPages[src])
				}
				pg := make([]byte, mem.PageSize)
				copy(pg, srcPg)
				ps.Pages[addr] = pg
				if en.Delta {
					ps.DeltaPages[addr] = true
				}
				continue
			case en.Lazy:
				ps.LazyPages[addr] = true
				continue
			case en.InParent:
				ps.ParentPages[addr] = true
				continue
			case en.Zero:
				ps.ZeroPages[addr] = true
				continue
			}
			ps.Pages[addr] = buf[off : off+mem.PageSize : off+mem.PageSize]
			if en.Delta {
				ps.DeltaPages[addr] = true
			}
			off += mem.PageSize
		}
	}
	return ps, nil
}

// NewPageSet returns an empty page set with all maps allocated.
func NewPageSet() *PageSet {
	return &PageSet{
		Pages:       make(map[uint64][]byte),
		LazyPages:   make(map[uint64]bool),
		ParentPages: make(map[uint64]bool),
		ZeroPages:   make(map[uint64]bool),
		DeltaPages:  make(map[uint64]bool),
	}
}

// StoreOpts selects optional encodings for PageSet.Store.
type StoreOpts struct {
	// Dedup content-addresses data pages (FNV-1a 64 over each 4K page,
	// byte-compared on hash collision): the occurrence with the lowest
	// vaddr keeps its bytes in pages.img, every later identical page
	// becomes a pagemap-only dedup entry referencing it. Off by default
	// so existing images stay byte-identical.
	Dedup bool
}

// StoreStats reports what a store elided.
type StoreStats struct {
	// PagesElided counts data pages encoded as dedup references.
	PagesElided uint64
	// BytesSaved is PagesElided * PageSize: payload bytes absent from
	// pages.img (and therefore from the wire).
	BytesSaved uint64
}

// fnv1a64 hashes one page with FNV-1a (the content address used by the
// dedup store). Inline so the codec stays dependency-free.
func fnv1a64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Store serializes the page set back into the directory, coalescing
// contiguous same-class (data/lazy/in_parent/zero) runs. Output is
// byte-identical to the historical encoding; use StoreWith for dedup.
func (ps *PageSet) Store(dir *ImageDir) {
	ps.StoreWith(dir, StoreOpts{})
}

// StoreWith is Store with options. The emitted pagemap depends only on
// the page-set contents (addresses are sorted, dedup sources are the
// lowest-vaddr occurrence), never on map iteration or worker
// scheduling, so output is deterministic for any producer.
func (ps *PageSet) StoreWith(dir *ImageDir, opts StoreOpts) StoreStats {
	seen := make(map[uint64]bool, len(ps.Pages))
	addrs := make([]uint64, 0, len(ps.Pages)+len(ps.LazyPages)+len(ps.ParentPages)+len(ps.ZeroPages))
	add := func(a uint64) {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	for a := range ps.Pages {
		add(a)
	}
	for a := range ps.LazyPages {
		add(a)
	}
	for a := range ps.ParentPages {
		add(a)
	}
	for a := range ps.ZeroPages {
		add(a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	var stats StoreStats
	var dedupSrc map[uint64]uint64 // page vaddr -> source data page vaddr
	if opts.Dedup {
		dedupSrc = make(map[uint64]uint64)
		byHash := make(map[uint64][]uint64) // content hash -> keeper vaddrs
		for _, a := range addrs {
			cls := ps.classOf(a)
			if cls != pageData && cls != pageDelta {
				continue
			}
			// Data pages dedup against data pages and delta pages against
			// delta pages, never across: the bytes are only interchangeable
			// within one representation. The class travels on the emitted
			// entry as the combined dedup+delta flag pair.
			pg := ps.Pages[a]
			h := fnv1a64(pg)
			matched := false
			for _, src := range byHash[h] {
				if ps.classOf(src) == cls && bytes.Equal(ps.Pages[src], pg) {
					dedupSrc[a] = src
					matched = true
					break
				}
			}
			if !matched {
				byHash[h] = append(byHash[h], a)
			}
		}
		stats.PagesElided = uint64(len(dedupSrc))
		stats.BytesSaved = stats.PagesElided * mem.PageSize
	}
	classOf := func(a uint64) int {
		if _, dup := dedupSrc[a]; dup {
			return pageDedup
		}
		return ps.classOf(a)
	}

	var pm PagemapImage
	var blob []byte
	for i := 0; i < len(addrs); {
		a := addrs[i]
		cls := classOf(a)
		if cls == pageDedup {
			// Dedup runs stay single-page: each reference names its own
			// source, and adjacent duplicates rarely share a contiguous
			// source range worth the extra coalescing complexity.
			pm.Entries = append(pm.Entries, PagemapEntry{
				Vaddr: a, NrPages: 1, Dedup: true, DedupSrc: dedupSrc[a],
				Delta: ps.classOf(a) == pageDelta,
			})
			i++
			continue
		}
		j := i
		for j < len(addrs) && addrs[j] == a+uint64(j-i)*mem.PageSize && classOf(addrs[j]) == cls {
			if cls == pageData || cls == pageDelta {
				blob = append(blob, ps.Pages[addrs[j]]...)
			}
			j++
		}
		pm.Entries = append(pm.Entries, PagemapEntry{
			Vaddr: a, NrPages: uint32(j - i),
			Lazy: cls == pageLazy, InParent: cls == pageParent, Zero: cls == pageZero,
			Delta: cls == pageDelta,
		})
		i = j
	}
	dir.Put("pagemap.img", pm.Marshal())
	dir.Put("pages.img", blob)
	return stats
}

// ReadU64 reads a word from the page set (for the stack rewriter). Zero
// pages read as zero; lazy and in_parent pages have no local bytes.
func (ps *PageSet) ReadU64(addr uint64) (uint64, error) {
	base := addr / mem.PageSize * mem.PageSize
	off := addr % mem.PageSize
	if off+8 > mem.PageSize {
		return 0, fmt.Errorf("image: unaligned word read at 0x%x crosses page", addr)
	}
	pg, ok := ps.Pages[base]
	if !ok || pg == nil {
		if ps.ZeroPages[base] {
			return 0, nil
		}
		if ps.ParentPages[base] {
			return 0, fmt.Errorf("image: address 0x%x is in the parent checkpoint (flatten the chain first)", addr)
		}
		return 0, fmt.Errorf("image: address 0x%x not in dumped pages", addr)
	}
	if ps.DeltaPages[base] {
		return 0, fmt.Errorf("image: address 0x%x holds an XOR delta against the parent (flatten the chain first)", addr)
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(pg[off+uint64(i)])
	}
	return v, nil
}

// WriteU64 writes a word, populating the page if absent (zero pages
// materialize as zeros). Writing into an in_parent page is an error: the
// local set does not hold its content, so the chain must be flattened
// first.
func (ps *PageSet) WriteU64(addr, v uint64) error {
	base := addr / mem.PageSize * mem.PageSize
	pg, ok := ps.Pages[base]
	if !ok || pg == nil {
		if ps.ParentPages[base] {
			return fmt.Errorf("image: write at 0x%x hits an in-parent page (flatten the chain first)", addr)
		}
		pg = make([]byte, mem.PageSize)
		ps.Pages[base] = pg
		delete(ps.LazyPages, base)
		delete(ps.ZeroPages, base)
	} else if ps.DeltaPages[base] {
		return fmt.Errorf("image: write at 0x%x hits an XOR-delta page (flatten the chain first)", addr)
	}
	off := addr % mem.PageSize
	if off+8 > mem.PageSize {
		return fmt.Errorf("image: unaligned word write at 0x%x crosses page", addr)
	}
	for i := 0; i < 8; i++ {
		pg[off+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// DropRange removes pages overlapping [start, end) from the set.
func (ps *PageSet) DropRange(start, end uint64) {
	for a := range ps.Pages {
		if a >= start && a < end {
			delete(ps.Pages, a)
		}
	}
	for a := range ps.LazyPages {
		if a >= start && a < end {
			delete(ps.LazyPages, a)
		}
	}
	for a := range ps.ParentPages {
		if a >= start && a < end {
			delete(ps.ParentPages, a)
		}
	}
	for a := range ps.ZeroPages {
		if a >= start && a < end {
			delete(ps.ZeroPages, a)
		}
	}
	for a := range ps.DeltaPages {
		if a >= start && a < end {
			delete(ps.DeltaPages, a)
		}
	}
}

// ExtractRange returns a PageSet view of [start, end): every page entry
// of ps inside the range, with page bytes shared rather than copied.
// Concurrent callers may take views of disjoint ranges while nothing
// mutates ps (map reads only); each caller may then mutate its own view
// freely — DropRange and WriteU64 allocate fresh pages, so the shared
// ps is never written through a view. Fold a mutated view back with
// AbsorbRange after every view's work has joined. This pair is what
// lets per-thread stack rewriters run concurrently over one dump.
func (ps *PageSet) ExtractRange(start, end uint64) *PageSet {
	sub := NewPageSet()
	for a := start / mem.PageSize * mem.PageSize; a < end; a += mem.PageSize {
		if pg, ok := ps.Pages[a]; ok {
			sub.Pages[a] = pg
		}
		if ps.LazyPages[a] {
			sub.LazyPages[a] = true
		}
		if ps.ParentPages[a] {
			sub.ParentPages[a] = true
		}
		if ps.ZeroPages[a] {
			sub.ZeroPages[a] = true
		}
		if ps.DeltaPages[a] {
			sub.DeltaPages[a] = true
		}
	}
	return sub
}

// AbsorbRange replaces [start, end) of ps with the contents of sub, a
// view produced by ExtractRange and since mutated. Entries of sub
// outside the range are ignored. Not concurrency-safe: absorb views
// serially, after the fan-out that mutated them has joined.
func (ps *PageSet) AbsorbRange(sub *PageSet, start, end uint64) {
	ps.DropRange(start, end)
	for a, pg := range sub.Pages {
		if a >= start && a < end {
			ps.Pages[a] = pg
		}
	}
	for a := range sub.LazyPages {
		if a >= start && a < end {
			ps.LazyPages[a] = true
		}
	}
	for a := range sub.ParentPages {
		if a >= start && a < end {
			ps.ParentPages[a] = true
		}
	}
	for a := range sub.ZeroPages {
		if a >= start && a < end {
			ps.ZeroPages[a] = true
		}
	}
	for a := range sub.DeltaPages {
		if a >= start && a < end {
			ps.DeltaPages[a] = true
		}
	}
}

// InstallPage sets a page's full contents.
func (ps *PageSet) InstallPage(addr uint64, data []byte) {
	pg := make([]byte, mem.PageSize)
	copy(pg, data)
	base := addr / mem.PageSize * mem.PageSize
	ps.Pages[base] = pg
	delete(ps.LazyPages, base)
	delete(ps.ParentPages, base)
	delete(ps.ZeroPages, base)
	delete(ps.DeltaPages, base)
}

// XorPages returns a ⊕ b over min(len(a), len(b)) bytes into a fresh
// page-sized buffer — the delta encoder (page content vs parent content)
// and its inverse are the same operation.
func XorPages(a, b []byte) []byte {
	out := make([]byte, mem.PageSize)
	n := copy(out, a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		out[i] ^= b[i]
	}
	return out
}
