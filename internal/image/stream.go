// Streaming decode of the ImageDir wire encoding.
//
// ImageDir.Marshal is a concatenation of FrameFile outputs — one
// length-delimited protobuf message per file, each carrying the name and
// the payload. Because the layout is deterministic (field 1 name, field
// 2 data, both always emitted), a consumer does not need the whole blob
// to start working: the StreamSplitter parses frames incrementally from
// whatever bytes have arrived and hands file payloads to a StreamSink as
// they stream in. This is what lets a restore begin mapping VMAs and
// verifying metadata — the small files sort before pages.img — while
// page payloads are still on the wire.
package image

import (
	"errors"
	"fmt"

	"github.com/dapper-sim/dapper/internal/imgproto"
)

// StreamSink consumes an image directory file by file as it decodes.
// Events arrive strictly in stream order: BeginFile(name, size), then
// FileChunk zero or more times covering exactly size bytes, then
// EndFile. Chunks alias the splitter's input buffer and are only valid
// until the callback returns; a sink that retains bytes must copy them.
type StreamSink interface {
	// BeginFile announces the next file and its exact payload size.
	BeginFile(name string, size int) error
	// FileChunk delivers the next run of payload bytes.
	FileChunk(p []byte) error
	// EndFile marks the payload complete.
	EndFile() error
}

// Splitter states: parsing a frame header, or streaming payload bytes.
const (
	splitHeader = iota
	splitData
)

// maxStreamName bounds a frame's file name so a corrupt header cannot
// make the splitter buffer unbounded garbage while "waiting for the
// name to complete". Real image names are tens of bytes.
const maxStreamName = 4096

// StreamSplitter incrementally parses the ImageDir wire encoding
// (concatenated FrameFile frames) and feeds a StreamSink. Write may be
// called with arbitrarily fragmented input — segment by segment as the
// transport decompresses them; Close verifies the stream ended on a
// frame boundary.
type StreamSplitter struct {
	sink  StreamSink
	state int
	// hdr accumulates header bytes (outer tag+len, name field, data
	// field tag+len) until they parse; payload bytes never land here.
	hdr []byte
	// remaining counts payload bytes still owed to the current file.
	remaining int
	err       error
}

// NewStreamSplitter returns a splitter feeding sink.
func NewStreamSplitter(sink StreamSink) *StreamSplitter {
	return &StreamSplitter{sink: sink}
}

// errNeedMore signals an incomplete header; more input will resolve it.
var errNeedMore = errors.New("need more bytes")

// Write implements io.Writer: it consumes p completely or fails. After
// an error the splitter is poisoned and every later call returns it.
func (s *StreamSplitter) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n := len(p)
	for len(p) > 0 {
		if s.state == splitData {
			take := len(p)
			if take > s.remaining {
				take = s.remaining
			}
			if err := s.sink.FileChunk(p[:take]); err != nil {
				s.err = err
				return 0, err
			}
			s.remaining -= take
			p = p[take:]
			if s.remaining == 0 {
				if err := s.sink.EndFile(); err != nil {
					s.err = err
					return 0, err
				}
				s.state = splitHeader
			}
			continue
		}
		// Header bytes are tiny (tag/length varints plus the name);
		// buffer until the full prefix through the data length parses.
		s.hdr = append(s.hdr, p...)
		p = nil
		name, dataLen, used, err := parseFrameHeader(s.hdr)
		if err == errNeedMore {
			return n, nil
		}
		if err != nil {
			s.err = err
			return 0, err
		}
		// Re-queue whatever followed the header and hand off to the
		// payload state.
		p = s.hdr[used:]
		s.hdr = nil
		s.state = splitData
		s.remaining = dataLen
		if err := s.sink.BeginFile(name, dataLen); err != nil {
			s.err = err
			return 0, err
		}
		if s.remaining == 0 {
			if err := s.sink.EndFile(); err != nil {
				s.err = err
				return 0, err
			}
			s.state = splitHeader
		}
	}
	return n, nil
}

// Close verifies the stream ended exactly on a frame boundary.
func (s *StreamSplitter) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.state == splitData {
		return fmt.Errorf("image: stream truncated: %d payload bytes missing", s.remaining)
	}
	if len(s.hdr) > 0 {
		return fmt.Errorf("image: stream truncated inside a frame header (%d bytes)", len(s.hdr))
	}
	return nil
}

// parseFrameHeader parses one FrameFile prefix — outer tag and length,
// the name field, and the data field's tag and length — returning the
// file name, the payload size, and how many of b's bytes the header
// consumed. errNeedMore means b is a valid but incomplete prefix.
// FrameFile's layout is fixed (Encoder always emits both fields, in
// order), so anything else is a corrupt stream, not a variant encoding.
func parseFrameHeader(b []byte) (name string, dataLen, used int, err error) {
	const (
		outerTag = 1<<3 | uint64(imgproto.WireBytes) // ImageDir entry
		nameTag  = 1<<3 | uint64(imgproto.WireBytes) // field 1: name
		dataTag  = 2<<3 | uint64(imgproto.WireBytes) // field 2: payload
	)
	off := 0
	next := func() (uint64, error) {
		v, n, uerr := imgproto.Uvarint(b[off:])
		if uerr != nil {
			if errors.Is(uerr, imgproto.ErrTruncated) {
				return 0, errNeedMore
			}
			return 0, uerr
		}
		off += n
		return v, nil
	}
	tag, err := next()
	if err != nil {
		return "", 0, 0, err
	}
	if tag != outerTag {
		return "", 0, 0, fmt.Errorf("image: stream frame tag 0x%x, want directory entry", tag)
	}
	outerLen, err := next()
	if err != nil {
		return "", 0, 0, err
	}
	innerStart := off
	ntag, err := next()
	if err != nil {
		return "", 0, 0, err
	}
	if ntag != nameTag {
		return "", 0, 0, fmt.Errorf("image: stream frame inner tag 0x%x, want name field", ntag)
	}
	nameLen, err := next()
	if err != nil {
		return "", 0, 0, err
	}
	if nameLen > maxStreamName {
		return "", 0, 0, fmt.Errorf("image: stream frame name of %d bytes exceeds limit", nameLen)
	}
	if off+int(nameLen) > len(b) {
		return "", 0, 0, errNeedMore
	}
	name = string(b[off : off+int(nameLen)])
	off += int(nameLen)
	dtag, err := next()
	if err != nil {
		return "", 0, 0, err
	}
	if dtag != dataTag {
		return "", 0, 0, fmt.Errorf("image: stream frame %q: inner tag 0x%x, want data field", name, dtag)
	}
	dlen, err := next()
	if err != nil {
		return "", 0, 0, err
	}
	// The outer length must cover the inner fields exactly: name header
	// and bytes, data header, data bytes — no slack, no overrun.
	innerHdr := off - innerStart
	if uint64(innerHdr)+dlen != outerLen {
		return "", 0, 0, fmt.Errorf("image: stream frame %q: outer length %d != inner %d+%d", name, outerLen, innerHdr, dlen)
	}
	return name, int(dlen), off, nil
}

// DirSink is the trivial StreamSink: it rebuilds the ImageDir in memory.
// Splitting a Marshal blob through it reproduces UnmarshalImageDir.
type DirSink struct {
	dir  *ImageDir
	name string
	buf  []byte
}

// NewDirSink returns a sink accumulating into a fresh directory.
func NewDirSink() *DirSink { return &DirSink{dir: NewImageDir()} }

// Dir returns the directory built so far.
func (d *DirSink) Dir() *ImageDir { return d.dir }

// BeginFile implements StreamSink.
func (d *DirSink) BeginFile(name string, size int) error {
	d.name = name
	d.buf = make([]byte, 0, size)
	return nil
}

// FileChunk implements StreamSink.
func (d *DirSink) FileChunk(p []byte) error {
	d.buf = append(d.buf, p...)
	return nil
}

// EndFile implements StreamSink.
func (d *DirSink) EndFile() error {
	d.dir.Put(d.name, d.buf)
	d.name, d.buf = "", nil
	return nil
}

var _ StreamSink = (*DirSink)(nil)
