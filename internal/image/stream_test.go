package image_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/dapper-sim/dapper/internal/image"
)

// testDir builds a directory whose files exercise the framing corners:
// empty data, single byte, page-sized, multi-chunk, and names that sort
// around pages.img.
func testDir() *image.ImageDir {
	d := image.NewImageDir()
	d.Put("core-0.img", bytes.Repeat([]byte{0xab}, 300))
	d.Put("files.img", []byte{1})
	d.Put("inventory.img", nil)
	d.Put("mm.img", bytes.Repeat([]byte{7}, 4096))
	d.Put("pagemap.img", []byte{9, 9, 9})
	d.Put("pages.img", bytes.Repeat([]byte{0xcd}, 3*4096+17))
	return d
}

// splitInto feeds blob to a fresh DirSink splitter in the given chunk
// sizes (the final chunk takes the remainder) and returns the rebuilt
// directory.
func splitInto(t *testing.T, blob []byte, sizes func(remaining int) int) *image.ImageDir {
	t.Helper()
	sink := image.NewDirSink()
	sp := image.NewStreamSplitter(sink)
	for off := 0; off < len(blob); {
		n := sizes(len(blob) - off)
		if n <= 0 || n > len(blob)-off {
			n = len(blob) - off
		}
		if _, err := sp.Write(blob[off : off+n]); err != nil {
			t.Fatalf("Write at offset %d: %v", off, err)
		}
		off += n
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return sink.Dir()
}

// TestStreamSplitterRoundTrip: splitting Marshal output must rebuild the
// identical directory regardless of how the byte stream is fragmented —
// whole-blob, byte-at-a-time, and random chunk sizes all land on the
// same files.
func TestStreamSplitterRoundTrip(t *testing.T) {
	want := testDir().Marshal()
	rng := rand.New(rand.NewSource(7))
	cases := map[string]func(remaining int) int{
		"whole":  func(r int) int { return r },
		"byte":   func(r int) int { return 1 },
		"random": func(r int) int { return 1 + rng.Intn(5000) },
	}
	for name, sizes := range cases {
		got := splitInto(t, want, sizes)
		if !bytes.Equal(got.Marshal(), want) {
			t.Errorf("%s: rebuilt directory differs from source", name)
		}
	}
}

// TestStreamSplitterOrder: the sink must observe files in marshaled
// (sorted) order with metadata strictly before pages.img — the property
// the streaming restore pipeline is built on.
func TestStreamSplitterOrder(t *testing.T) {
	d := testDir()
	sink := image.NewDirSink()
	sp := image.NewStreamSplitter(sink)
	if _, err := sp.Write(d.Marshal()); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	names := sink.Dir().Names()
	if names[len(names)-1] != "pages.img" {
		t.Fatalf("pages.img is not last in %v", names)
	}
}

// TestStreamSplitterEmptyStream: zero input is a complete (empty) image.
func TestStreamSplitterEmptyStream(t *testing.T) {
	sink := image.NewDirSink()
	sp := image.NewStreamSplitter(sink)
	if err := sp.Close(); err != nil {
		t.Fatalf("Close on empty stream: %v", err)
	}
	if n := len(sink.Dir().Names()); n != 0 {
		t.Fatalf("empty stream produced %d files", n)
	}
}

// TestStreamSplitterTruncated: ending the stream mid-header or
// mid-payload must fail Close, never silently drop the partial file.
func TestStreamSplitterTruncated(t *testing.T) {
	blob := testDir().Marshal()
	for _, cut := range []int{1, 5, len(blob) / 2, len(blob) - 1} {
		sp := image.NewStreamSplitter(image.NewDirSink())
		if _, err := sp.Write(blob[:cut]); err != nil {
			continue // already detected — fine
		}
		if err := sp.Close(); err == nil {
			t.Errorf("cut=%d: Close accepted a truncated stream", cut)
		}
	}
}

// TestStreamSplitterMalformed: garbage framing must error instead of
// being interpreted as a file.
func TestStreamSplitterMalformed(t *testing.T) {
	sp := image.NewStreamSplitter(image.NewDirSink())
	_, werr := sp.Write(bytes.Repeat([]byte{0xff}, 64))
	cerr := sp.Close()
	if werr == nil && cerr == nil {
		t.Fatal("garbage stream accepted")
	}
}

// TestStreamSplitterPoisoned: after an error every later Write fails.
func TestStreamSplitterPoisoned(t *testing.T) {
	sp := image.NewStreamSplitter(image.NewDirSink())
	if _, err := sp.Write(bytes.Repeat([]byte{0xff}, 64)); err == nil {
		t.Skip("first write did not error on this framing; poisoning not reachable")
	}
	if _, err := sp.Write([]byte{1}); err == nil {
		t.Fatal("poisoned splitter accepted another write")
	}
}

type failErr struct{}

func (e *failErr) Error() string { return "sink refused" }

// TestStreamSplitterSinkError: a sink error surfaces from Write.
func TestStreamSplitterSinkError(t *testing.T) {
	blob := testDir().Marshal()
	sp := image.NewStreamSplitter(refuseSink{inner: image.NewDirSink()})
	_, werr := sp.Write(blob)
	if werr == nil {
		t.Fatal("sink error was swallowed")
	}
}

type refuseSink struct{ inner *image.DirSink }

func (r refuseSink) BeginFile(name string, size int) error {
	if name == "pages.img" {
		return &failErr{}
	}
	return r.inner.BeginFile(name, size)
}
func (r refuseSink) FileChunk(p []byte) error { return r.inner.FileChunk(p) }
func (r refuseSink) EndFile() error           { return r.inner.EndFile() }
