// Package imgcheck statically verifies dumped checkpoint image sets
// before they are restored, migrated, or flattened — the image-level
// counterpart of the source-level analyzers in internal/analysis.
//
// Every check encodes an invariant the restore path otherwise assumes
// silently: pagemap entries sorted and non-overlapping, pages.img sized
// exactly to its data entries (a zero/lazy/in_parent entry carries no
// bytes), in_parent chains resolvable and acyclic, core images decodable
// and register files within each ISA's width, thread PCs and stacks
// inside mapped VMAs, and cross-ISA symbol addresses aligned. A corrupt
// or truncated image set fails fast with the *named* invariant instead
// of a mid-restore panic.
//
// Entry points, cheapest first:
//
//   - VerifyLink: structural checks on one directory, permitting lazy and
//     in_parent entries — the pre-flight criu.Restore and the pre-copy
//     receive path run on every directory they touch.
//   - Verify: VerifyLink plus self-containedness (no in_parent orphans)
//     and address-space checks — what `dapper-crit verify` runs.
//   - VerifyChain: Verify semantics over an incremental chain ordered
//     oldest to newest, proving every in_parent page resolves through
//     older links and the root terminates the chain (acyclicity).
//   - VerifyMeta: cross-ISA stack-map alignment of a binary's metadata.
package imgcheck

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dapper-sim/dapper/internal/image"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/mem"
	"github.com/dapper-sim/dapper/internal/parallel"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// Named invariants. Error messages are prefixed with these so a failing
// caller (and its tests) can identify exactly which property broke.
const (
	InvMissingImage  = "missing-image"  // required image file absent
	InvImageDecode   = "image-decode"   // an image fails to decode (truncation/corruption)
	InvVMAOrder      = "vma-order"      // mm VMAs unsorted, overlapping, inverted, or unaligned
	InvPagemapOrder  = "pagemap-order"  // pagemap entries unsorted, overlapping, or empty
	InvPagemapFlags  = "pagemap-flags"  // entry claims more than one of lazy/in_parent/zero
	InvPagemapMapped = "pagemap-mapped" // pagemap page outside every VMA
	InvPagesBytes    = "pages-bytes"    // pages.img size != data pages × page size
	InvInParent      = "inparent-chain" // in_parent page unresolvable (orphan, cycle, truncated chain)
	InvCoreRegs      = "core-regs"      // register file exceeds the core's ISA width
	InvCoreStack     = "core-stack"     // thread stack range inverted or unmapped
	InvCorePC        = "core-pc"        // thread PC outside every VMA
	InvCoreTID       = "core-tid"       // core images and inventory TIDs disagree
	InvSymbolAlign   = "symbol-align"   // per-ISA site PCs fall outside their function's unified address range
	InvDedupRef      = "dedup-ref"      // dedup entry dangling, forward-referencing, or malformed
	InvDeltaChain    = "delta-chain"    // delta page with no in-chain content to apply the XOR to
)

// Violation is one broken invariant.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) Error() string {
	return fmt.Sprintf("imgcheck: %s: %s", v.Invariant, v.Detail)
}

// Report accumulates violations across checks.
type Report struct {
	Violations []Violation
}

func (r *Report) add(inv, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// Err returns nil for a clean report, the single Violation when there is
// exactly one, and an aggregate error naming every invariant otherwise.
func (r *Report) Err() error {
	switch len(r.Violations) {
	case 0:
		return nil
	case 1:
		return r.Violations[0]
	}
	msgs := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		msgs[i] = v.Error()
	}
	return fmt.Errorf("%d image invariants violated: %s", len(r.Violations), strings.Join(msgs, "; "))
}

// decoded is the typed view of one directory, built once per verification.
type decoded struct {
	inv   *image.InventoryImage
	mm    *image.MMImage
	pm    *image.PagemapImage
	pages []byte
	cores map[int]*image.CoreImage
}

// decode unmarshals the required images, reporting InvMissingImage /
// InvImageDecode, and returns nil if the directory is too broken to check
// further.
func decode(dir *image.ImageDir, r *Report) *decoded {
	d := &decoded{cores: make(map[int]*image.CoreImage)}
	ok := true
	req := func(name string) []byte {
		raw, has := dir.Get(name)
		if !has {
			r.add(InvMissingImage, "%s absent", name)
			ok = false
		}
		return raw
	}
	if raw := req("inventory.img"); raw != nil {
		v, err := image.UnmarshalInventory(raw)
		if err != nil {
			r.add(InvImageDecode, "inventory.img: %v", err)
			ok = false
		} else {
			d.inv = v
		}
	}
	if raw := req("mm.img"); raw != nil {
		v, err := image.UnmarshalMM(raw)
		if err != nil {
			r.add(InvImageDecode, "mm.img: %v", err)
			ok = false
		} else {
			d.mm = v
		}
	}
	if raw := req("pagemap.img"); raw != nil {
		v, err := image.UnmarshalPagemap(raw)
		if err != nil {
			r.add(InvImageDecode, "pagemap.img: %v", err)
			ok = false
		} else {
			d.pm = v
		}
	}
	if raw := req("files.img"); raw != nil {
		if _, err := image.UnmarshalFiles(raw); err != nil {
			r.add(InvImageDecode, "files.img: %v", err)
		}
	}
	// pages.img may legitimately be empty, but must be present.
	d.pages, _ = dir.Get("pages.img")
	if _, has := dir.Get("pages.img"); !has {
		r.add(InvMissingImage, "pages.img absent")
	}
	if d.inv != nil {
		seen := make(map[int]bool)
		for _, tid := range d.inv.TIDs {
			if seen[tid] {
				r.add(InvCoreTID, "inventory lists tid %d twice", tid)
				continue
			}
			seen[tid] = true
			name := fmt.Sprintf("core-%d.img", tid)
			raw, has := dir.Get(name)
			if !has {
				r.add(InvMissingImage, "%s absent (tid %d in inventory)", name, tid)
				continue
			}
			core, err := image.UnmarshalCore(raw)
			if err != nil {
				r.add(InvImageDecode, "%s: %v", name, err)
				continue
			}
			if core.TID != tid {
				r.add(InvCoreTID, "%s carries tid %d", name, core.TID)
				continue
			}
			d.cores[tid] = core
		}
		for _, name := range dir.Names() {
			var tid int
			if n, _ := fmt.Sscanf(name, "core-%d.img", &tid); n == 1 && !seen[tid] {
				r.add(InvCoreTID, "%s has no inventory entry", name)
			}
		}
	}
	if !ok {
		return nil
	}
	return d
}

// sweep runs fn over contiguous shards of [0, n) on a worker pool and
// appends the per-shard violations in shard order. Because shards are
// contiguous and concatenated in order, the diagnostics are identical
// to a serial sweep for every worker count.
func sweep(r *Report, workers, n int, fn func(c parallel.Chunk, sr *Report)) {
	chunks := parallel.Chunks(n, parallel.Normalize(workers))
	reps := make([]Report, len(chunks))
	_ = parallel.New(workers).ForEach(len(chunks), func(ci int) error {
		fn(chunks[ci], &reps[ci])
		return nil
	})
	for _, sr := range reps {
		r.Violations = append(r.Violations, sr.Violations...)
	}
}

// checkStructure runs the per-directory structural invariants shared by
// VerifyLink and Verify: VMA ordering, pagemap ordering and flags,
// dedup-reference shape, and the exact pages.img byte count. The
// per-VMA and per-entry checks shard over the pool; the dedup
// resolution pass and the byte accounting — which need the whole
// pagemap — stay serial.
func checkStructure(d *decoded, r *Report, workers int) {
	checkStructureMeta(d, r, workers)
	checkPagesBytes(len(d.pages), d.pm, r)
	checkDedupResolution(d, r)
}

// checkStructureMeta is the metadata half of checkStructure — everything
// that needs only mm.img and pagemap.img, not the page payload. The
// streaming verifier runs it the moment pages.img is announced, while
// payload bytes are still on the wire.
func checkStructureMeta(d *decoded, r *Report, workers int) {
	sweep(r, workers, len(d.mm.VMAs), func(c parallel.Chunk, sr *Report) {
		for i := c.Lo; i < c.Hi; i++ {
			v := d.mm.VMAs[i]
			if v.Start >= v.End || v.Start%mem.PageSize != 0 || v.End%mem.PageSize != 0 {
				sr.add(InvVMAOrder, "vma %d [0x%x,0x%x) inverted or unaligned", i, v.Start, v.End)
			}
			if i > 0 && v.Start < d.mm.VMAs[i-1].End {
				sr.add(InvVMAOrder, "vma %d [0x%x,0x%x) overlaps or precedes [0x%x,0x%x)",
					i, v.Start, v.End, d.mm.VMAs[i-1].Start, d.mm.VMAs[i-1].End)
			}
		}
	})
	sweep(r, workers, len(d.pm.Entries), func(c parallel.Chunk, sr *Report) {
		for i := c.Lo; i < c.Hi; i++ {
			en := d.pm.Entries[i]
			if en.NrPages == 0 {
				sr.add(InvPagemapOrder, "entry %d at 0x%x spans zero pages", i, en.Vaddr)
				continue
			}
			if en.Vaddr%mem.PageSize != 0 {
				sr.add(InvPagemapOrder, "entry %d at 0x%x not page-aligned", i, en.Vaddr)
			}
			if i > 0 {
				prev := d.pm.Entries[i-1]
				prevEnd := prev.Vaddr + uint64(prev.NrPages)*mem.PageSize
				if en.Vaddr < prevEnd {
					sr.add(InvPagemapOrder, "entry %d at 0x%x overlaps or precedes run ending 0x%x",
						i, en.Vaddr, prevEnd)
				}
			}
			flags := 0
			for _, f := range []bool{en.Lazy, en.InParent, en.Zero, en.Dedup, en.Delta} {
				if f {
					flags++
				}
			}
			// Exactly one flag pair is legal: dedup+delta, a dedup
			// reference whose shared bytes are an XOR payload rather than
			// plain content. Every other combination is contradictory.
			if flags > 1 && !(flags == 2 && en.Dedup && en.Delta) {
				sr.add(InvPagemapFlags, "entry %d at 0x%x sets %d of lazy/in_parent/zero/dedup/delta", i, en.Vaddr, flags)
			}
			switch {
			case en.Dedup:
				if en.DedupSrc%mem.PageSize != 0 {
					sr.add(InvDedupRef, "entry %d at 0x%x: dedup source 0x%x not page-aligned", i, en.Vaddr, en.DedupSrc)
				}
				if en.DedupSrc >= en.Vaddr {
					sr.add(InvDedupRef, "entry %d at 0x%x: dedup source 0x%x is not strictly backwards", i, en.Vaddr, en.DedupSrc)
				}
			case en.DedupSrc != 0:
				sr.add(InvDedupRef, "entry %d at 0x%x carries dedup source 0x%x without the dedup flag", i, en.Vaddr, en.DedupSrc)
			}
		}
	})
}

// checkPagesBytes is the pages.img byte accounting. Delta entries carry
// bytes (the XOR payload is a full page), so they count exactly like
// plain data entries. pagesLen may be the in-memory file's size or — in
// the streaming pre-flight — the size the wire announced before any
// payload byte arrived.
func checkPagesBytes(pagesLen int, pm *image.PagemapImage, r *Report) {
	dataPages := 0
	for _, en := range pm.Entries {
		if !en.Lazy && !en.InParent && !en.Zero && !en.Dedup {
			dataPages += int(en.NrPages)
		}
	}
	if want := dataPages * mem.PageSize; pagesLen != want {
		r.add(InvPagesBytes, "pages.img carries %d bytes, pagemap describes %d data+delta pages (%d bytes) — byte-free flags must carry no bytes",
			pagesLen, dataPages, want)
	}
}

// checkDedupResolution verifies every dedup run resolves to a
// byte-carrying page that appears earlier in the pagemap (references are
// strictly backwards by construction, so one forward pass suffices) and
// that the reference stays within its representation class: a plain
// dedup entry must name an earlier data page, a combined dedup+delta
// entry an earlier delta page. A dangling or class-crossing reference
// would make LoadPageSet fail — or alias XOR-diff bytes as content — and
// a forward one would make the image's meaning depend on decode order,
// so imgcheck rejects all three.
func checkDedupResolution(d *decoded, r *Report) {
	const (
		clsData = iota + 1
		clsDelta
	)
	kept := make(map[uint64]int) // keeper vaddr -> representation class
	for i, en := range d.pm.Entries {
		if en.Dedup {
			want, wantName := clsData, "data"
			if en.Delta {
				want, wantName = clsDelta, "delta"
			}
			for k := uint32(0); k < en.NrPages; k++ {
				src := en.DedupSrc + uint64(k)*mem.PageSize
				if kept[src] != want {
					r.add(InvDedupRef, "entry %d: dedup page 0x%x references 0x%x, which is not an earlier %s page",
						i, en.Vaddr+uint64(k)*mem.PageSize, src, wantName)
				}
			}
			continue
		}
		if !en.Lazy && !en.InParent && !en.Zero {
			cls := clsData
			if en.Delta {
				cls = clsDelta
			}
			for k := uint32(0); k < en.NrPages; k++ {
				kept[en.Vaddr+uint64(k)*mem.PageSize] = cls
			}
		}
	}
}

// vmaCover reports whether [lo, hi) is covered by the union of VMAs — a
// coalesced pagemap run may legitimately span several contiguous VMAs
// (e.g. adjacent per-thread TLS blocks). hi<=lo checks the single
// address lo.
func vmaCover(mm *image.MMImage, lo, hi uint64) bool {
	if hi <= lo {
		hi = lo + 1
	}
	cursor := lo
	for cursor < hi {
		advanced := false
		for _, v := range mm.VMAs {
			if cursor >= v.Start && cursor < v.End {
				cursor = v.End
				advanced = true
				break
			}
		}
		if !advanced {
			return false
		}
	}
	return true
}

// checkAddressSpace runs the self-contained address-space invariants:
// every pagemap page inside a VMA, thread PCs mapped, stacks mapped and
// upright, and register files within the core's ISA width. Both loops
// shard over the pool; VMA coverage lookups only read the decoded mm.
func checkAddressSpace(d *decoded, r *Report, workers int) {
	sweep(r, workers, len(d.pm.Entries), func(c parallel.Chunk, sr *Report) {
		for i := c.Lo; i < c.Hi; i++ {
			en := d.pm.Entries[i]
			end := en.Vaddr + uint64(en.NrPages)*mem.PageSize
			if !vmaCover(d.mm, en.Vaddr, end) {
				sr.add(InvPagemapMapped, "entry %d [0x%x,0x%x) outside the mapped vmas", i, en.Vaddr, end)
			}
		}
	})
	tids := sortedTIDs(d.cores)
	sweep(r, workers, len(tids), func(c parallel.Chunk, sr *Report) {
		for ti := c.Lo; ti < c.Hi; ti++ {
			tid := tids[ti]
			core := d.cores[tid]
			checkCore(d, tid, core, sr)
		}
	})
}

// checkCore verifies one thread's core image against the inventory and
// address space.
func checkCore(d *decoded, tid int, core *image.CoreImage, r *Report) {
	if core.Arch != d.inv.Arch {
		r.add(InvCoreRegs, "core-%d.img is %v but inventory is %v", tid, core.Arch, d.inv.Arch)
	}
	if core.Arch == isa.SX86 {
		// SX86 has 8 architectural registers; a live value recorded
		// beyond them cannot be covered by any stack-map location.
		for ri := 8; ri < isa.NumRegs; ri++ {
			if core.Regs.R[ri] != 0 {
				r.add(InvCoreRegs, "core-%d.img: sx86 register r%d holds 0x%x beyond the 8-register file",
					tid, ri, core.Regs.R[ri])
				break
			}
		}
	}
	if !vmaCover(d.mm, core.Regs.PC, 0) {
		r.add(InvCorePC, "core-%d.img: pc 0x%x outside every vma", tid, core.Regs.PC)
	}
	if core.StackLow >= core.StackHigh {
		r.add(InvCoreStack, "core-%d.img: stack [0x%x,0x%x) inverted", tid, core.StackLow, core.StackHigh)
	} else if !vmaCover(d.mm, core.StackLow, core.StackHigh) {
		r.add(InvCoreStack, "core-%d.img: stack [0x%x,0x%x) not covered by a vma",
			tid, core.StackLow, core.StackHigh)
	}
}

func sortedTIDs(cores map[int]*image.CoreImage) []int {
	out := make([]int, 0, len(cores))
	for tid := range cores {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// pagesOf expands a pagemap into per-class page address sets: in_parent
// references, delta pages (XOR payloads needing older content), lazy
// markers, and content pages (data, zero, dedup — anything an older
// link's delta could be applied to).
func pagesOf(pm *image.PagemapImage) (inParent, delta, lazy, content map[uint64]bool) {
	inParent = make(map[uint64]bool)
	delta = make(map[uint64]bool)
	lazy = make(map[uint64]bool)
	content = make(map[uint64]bool)
	for _, en := range pm.Entries {
		for i := uint32(0); i < en.NrPages; i++ {
			addr := en.Vaddr + uint64(i)*mem.PageSize
			switch {
			case en.InParent:
				inParent[addr] = true
			case en.Delta:
				delta[addr] = true
			case en.Lazy:
				lazy[addr] = true
			default:
				content[addr] = true
			}
		}
	}
	return inParent, delta, lazy, content
}

// Opts controls how a verification runs; the zero value is the default.
type Opts struct {
	// Workers bounds the check fan-out: per-VMA, per-pagemap-entry, and
	// per-core sweeps shard over a pool of this size. Values <= 0 select
	// runtime.NumCPU(); 1 reproduces the serial sweep. Diagnostics are
	// reported in the same order for every worker count.
	Workers int
}

// VerifyLink checks one directory's structural invariants, permitting
// lazy and in_parent entries — the right check for a chain member or a
// directory about to be flattened/restored, where in_parent resolution is
// someone else's job. This is the cheap pre-flight criu.Restore and the
// migration receive paths run.
func VerifyLink(dir *image.ImageDir) error {
	return VerifyLinkWith(dir, Opts{})
}

// VerifyLinkWith is VerifyLink with an explicit worker count.
func VerifyLinkWith(dir *image.ImageDir, opts Opts) error {
	var r Report
	d := decode(dir, &r)
	if d != nil {
		checkStructure(d, &r, opts.Workers)
	}
	return r.Err()
}

// Verify checks a self-contained directory: VerifyLink plus the
// address-space invariants and the requirement that no page claims to
// live in a parent checkpoint (a lone directory has none).
func Verify(dir *image.ImageDir) error {
	return VerifyWith(dir, Opts{})
}

// VerifyWith is Verify with an explicit worker count.
func VerifyWith(dir *image.ImageDir, opts Opts) error {
	var r Report
	d := decode(dir, &r)
	if d != nil {
		checkStructure(d, &r, opts.Workers)
		checkAddressSpace(d, &r, opts.Workers)
		inParent, delta, _, _ := pagesOf(d.pm)
		if len(inParent) > 0 {
			r.add(InvInParent, "%d in_parent pages with no parent directory to resolve them (verify the full chain, or flatten first)",
				len(inParent))
		}
		if len(delta) > 0 {
			r.add(InvDeltaChain, "%d delta pages with no parent chain to apply them to (verify the full chain, or flatten first)",
				len(delta))
		}
	}
	return r.Err()
}

// VerifyChain checks an incremental checkpoint chain ordered oldest
// (root) to newest (final delta): every link passes its structural
// checks, the newest link passes the address-space checks, the root has
// no in_parent or delta entries (either at the root would never
// terminate — the cyclic/truncated-chain case), every in_parent page in
// link i resolves to a non-in_parent entry in some older link, and every
// delta page resolves to actual *content* — data, zero, dedup, or an
// older delta — never to a lazy marker, which has no bytes to XOR
// against.
func VerifyChain(chain []*image.ImageDir) error {
	return VerifyChainWith(chain, Opts{})
}

// VerifyChainWith is VerifyChain with an explicit worker count.
func VerifyChainWith(chain []*image.ImageDir, opts Opts) error {
	var r Report
	if len(chain) == 0 {
		r.add(InvInParent, "empty chain")
		return r.Err()
	}
	decs := make([]*decoded, len(chain))
	for i, dir := range chain {
		d := decode(dir, &r)
		if d == nil {
			r.add(InvImageDecode, "chain link %d undecodable; chain checks skipped", i)
			return r.Err()
		}
		decs[i] = d
		checkStructure(d, &r, opts.Workers)
	}
	checkAddressSpace(decs[len(decs)-1], &r, opts.Workers)
	// Two monotone resolution sets: resolvedAny is every page some older
	// link mentions with bytes-or-marker (content, delta, lazy) — what an
	// in_parent reference needs; resolvedContent excludes lazy — what a
	// delta's XOR needs, since a lazy page has no bytes to apply it to.
	resolvedAny := make(map[uint64]bool)
	resolvedContent := make(map[uint64]bool)
	for i, d := range decs {
		inParent, delta, lazy, content := pagesOf(d.pm)
		if i == 0 {
			if len(inParent) > 0 {
				r.add(InvInParent, "root link has %d in_parent pages — the chain never terminates (cyclic or truncated)",
					len(inParent))
			}
			if len(delta) > 0 {
				r.add(InvDeltaChain, "root link has %d delta pages — nothing older to apply the XOR to",
					len(delta))
			}
		} else {
			for _, addr := range sortedAddrs(inParent) {
				if !resolvedAny[addr] {
					r.add(InvInParent, "link %d: page 0x%x marked in_parent but absent from every older link", i, addr)
				}
			}
			for _, addr := range sortedAddrs(delta) {
				if !resolvedContent[addr] {
					r.add(InvDeltaChain, "link %d: delta page 0x%x has no content in any older link to apply the XOR to", i, addr)
				}
			}
		}
		for addr := range content {
			resolvedAny[addr] = true
			resolvedContent[addr] = true
		}
		for addr := range delta {
			// A (valid) delta resolves to content, so it pins content for
			// the links above it.
			resolvedAny[addr] = true
			resolvedContent[addr] = true
		}
		for addr := range lazy {
			resolvedAny[addr] = true
		}
	}
	return r.Err()
}

func sortedAddrs(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VerifyMeta checks a binary's stack-map metadata for cross-ISA symbol
// alignment: function address ranges are shared by construction (the
// unified address space), so every per-ISA trap/resume/return PC must
// fall inside its own function's range on BOTH architectures — a site
// whose PCs diverge across ISAs would rewrite register state into the
// wrong frame.
func VerifyMeta(meta *stackmap.Metadata) error {
	var r Report
	for _, f := range meta.Funcs {
		if f.Size == 0 {
			r.add(InvSymbolAlign, "func %s at 0x%x has zero size", f.Name, f.Addr)
			continue
		}
		check := func(s *stackmap.Site, what string) {
			if s == nil {
				return
			}
			for ai := 0; ai < 2; ai++ {
				for _, pc := range []uint64{s.PCs[ai].TrapPC, s.PCs[ai].ResumePC, s.PCs[ai].RetAddr} {
					if pc == 0 {
						continue
					}
					if pc < f.Addr || pc >= f.Addr+f.Size {
						r.add(InvSymbolAlign, "func %s [0x%x,0x%x): %s site %d arch %d pc 0x%x outside unified range",
							f.Name, f.Addr, f.Addr+f.Size, what, s.ID, ai, pc)
					}
				}
			}
		}
		check(f.EntrySite, "entry")
		for _, s := range f.CallSites {
			check(s, "call")
		}
	}
	return r.Err()
}
