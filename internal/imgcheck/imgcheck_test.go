// Tests live in imgcheck_test so they can use criu's codecs and dump
// paths as an oracle without an import cycle (criu.Restore itself calls
// imgcheck as a pre-flight).
package imgcheck_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/compiler"
	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/imgcheck"
	"github.com/dapper-sim/dapper/internal/isa"
	"github.com/dapper-sim/dapper/internal/kernel"
	"github.com/dapper-sim/dapper/internal/monitor"
	"github.com/dapper-sim/dapper/internal/stackmap"
)

// fixtureWant maps every corpus file to the invariant its verification
// must name ("" = the fixture must verify clean). TestFixtureCorpus fails
// if a testdata file is missing from this table or vice versa, so the
// corpus and expectations cannot drift apart.
var fixtureWant = map[string]string{
	"ok_minimal.json":       "",
	"pagemap_overlap.json":  imgcheck.InvPagemapOrder,
	"pagemap_unsorted.json": imgcheck.InvPagemapOrder,
	"pagemap_flags.json":    imgcheck.InvPagemapFlags,
	"zero_with_bytes.json":  imgcheck.InvPagesBytes,
	"truncated_pages.json":  imgcheck.InvPagesBytes,
	"cyclic_in_parent.json": imgcheck.InvInParent,
	"orphan_in_parent.json": imgcheck.InvInParent,
	"truncated_core.json":   imgcheck.InvImageDecode,
	"missing_core.json":     imgcheck.InvMissingImage,
	"pc_unmapped.json":      imgcheck.InvCorePC,
	"sx86_highregs.json":    imgcheck.InvCoreRegs,
	"stack_inverted.json":   imgcheck.InvCoreStack,
	"vma_overlap.json":      imgcheck.InvVMAOrder,
	"ok_dedup.json":         "",
	"dedup_dangling.json":   imgcheck.InvDedupRef,
	"dedup_forward.json":    imgcheck.InvDedupRef,
	"dedup_unaligned.json":  imgcheck.InvDedupRef,
	"dedup_no_flag.json":    imgcheck.InvDedupRef,

	"ok_dedup_delta.json":          "",
	"dedup_delta_cross.json":       imgcheck.InvDedupRef,
	"dedup_delta_plain_cross.json": imgcheck.InvDedupRef,
	"dedup_delta_forward.json":     imgcheck.InvDedupRef,
}

// loadFixture parses one corpus file: a JSON array of CRIT documents
// ordered oldest to newest, each encoded back to a binary image set.
func loadFixture(t *testing.T, path string) []*criu.ImageDir {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var docs []json.RawMessage
	if err := json.Unmarshal(data, &docs); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	dirs := make([]*criu.ImageDir, len(docs))
	for i, raw := range docs {
		dirs[i], err = criu.EncodeJSON(raw)
		if err != nil {
			t.Fatalf("%s doc %d: %v", path, i, err)
		}
	}
	return dirs
}

// TestFixtureCorpus verifies every deliberately-broken image set in
// testdata is rejected with the invariant it seeds — the same dispatch
// dapper-crit verify uses (one set → Verify, several → VerifyChain).
func TestFixtureCorpus(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		seen[name] = true
		want, ok := fixtureWant[name]
		if !ok {
			t.Errorf("testdata/%s has no entry in fixtureWant", name)
			continue
		}
		t.Run(strings.TrimSuffix(name, ".json"), func(t *testing.T) {
			dirs := loadFixture(t, filepath.Join("testdata", name))
			var err error
			if len(dirs) == 1 {
				err = imgcheck.Verify(dirs[0])
			} else {
				err = imgcheck.VerifyChain(dirs)
			}
			if want == "" {
				if err != nil {
					t.Fatalf("want clean, got: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want violation of %q, got clean", want)
			}
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error does not name invariant %q: %v", want, err)
			}
		})
	}
	for name := range fixtureWant {
		if !seen[name] {
			t.Errorf("fixtureWant lists %s but testdata does not contain it", name)
		}
	}
}

// The property-test program dirties data, heap (via arrays), TLS, and
// stack on both ISAs; equivalence points at function entry let the
// monitor pause it mid-run.
const probeProgram = `
var data[4096] int;
var sum int;
func churn(round int) {
	var i int;
	var local[32] int;
	for i = 0; i < 128; i = i + 1 {
		data[(round * 67 + i) % 4096] = round + i;
		local[i % 32] = data[(round * 31) % 4096];
		sum = sum + local[i % 32];
	}
}
func main() {
	var round int;
	for round = 0; round < 64; round = round + 1 {
		churn(round);
	}
	printi(sum);
}`

// pauseProbe compiles probeProgram, runs it for a while on the given
// arch, and pauses it at an equivalence point, ready to dump.
func pauseProbe(t *testing.T, arch isa.Arch) (*kernel.Kernel, *kernel.Process, *monitor.Monitor, *stackmap.Metadata) {
	t.Helper()
	pair, err := compiler.Compile(probeProgram)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Cores: 2, Quantum: 97})
	p, err := k.StartProcess(pair.ByArch(arch).LoadSpec("/bin/probe." + arch.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunBudget(p, 1<<16); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(k, p, pair.Meta)
	if err := mon.Pause(1 << 20); err != nil {
		t.Fatal(err)
	}
	return k, p, mon, pair.Meta
}

// TestDumpSatisfiesVerify is the property test for the dump paths: every
// image set the existing vanilla and lazy dump paths produce must pass
// static verification on both ISAs.
func TestDumpSatisfiesVerify(t *testing.T) {
	for _, arch := range []isa.Arch{isa.SX86, isa.SARM} {
		for _, lazy := range []bool{false, true} {
			name := arch.String()
			if lazy {
				name += "/lazy"
			} else {
				name += "/vanilla"
			}
			t.Run(name, func(t *testing.T) {
				_, p, _, _ := pauseProbe(t, arch)
				dir, err := criu.Dump(p, criu.DumpOpts{Lazy: lazy})
				if err != nil {
					t.Fatal(err)
				}
				if err := imgcheck.Verify(dir); err != nil {
					t.Fatalf("dump output fails verification: %v", err)
				}
			})
		}
	}
}

// TestChainSatisfiesVerify: incremental dump chains pass VerifyChain,
// each link passes VerifyLink, and the flattened result passes Verify —
// the dump/incremental oracle for the chain checks.
func TestChainSatisfiesVerify(t *testing.T) {
	k, p, mon, _ := pauseProbe(t, isa.SX86)
	base, err := criu.Dump(p, criu.DumpOpts{TrackMem: true})
	if err != nil {
		t.Fatal(err)
	}
	chain := []*criu.ImageDir{base}
	for r := 1; r <= 3; r++ {
		if err := mon.ResumeLocal(); err != nil {
			t.Fatalf("resume %d: %v", r, err)
		}
		alive, err := k.RunBudget(p, 1<<16)
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
		if !alive {
			t.Fatalf("program finished before round %d", r)
		}
		if err := mon.Pause(1 << 20); err != nil {
			t.Fatalf("pause %d: %v", r, err)
		}
		delta, err := criu.Dump(p, criu.DumpOpts{Parent: chain[len(chain)-1], TrackMem: true})
		if err != nil {
			t.Fatalf("delta %d: %v", r, err)
		}
		chain = append(chain, delta)
	}
	for i, dir := range chain {
		if err := imgcheck.VerifyLink(dir); err != nil {
			t.Fatalf("link %d fails VerifyLink: %v", i, err)
		}
	}
	if err := imgcheck.VerifyChain(chain); err != nil {
		t.Fatalf("chain fails VerifyChain: %v", err)
	}
	flat, err := criu.FlattenChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := imgcheck.Verify(flat); err != nil {
		t.Fatalf("flattened chain fails Verify: %v", err)
	}
}

// TestVerifyMeta: compiler-produced metadata passes, and a site PC moved
// outside its function's unified address range is caught as
// symbol-align.
func TestVerifyMeta(t *testing.T) {
	pair, err := compiler.Compile(probeProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := imgcheck.VerifyMeta(pair.Meta); err != nil {
		t.Fatalf("compiler metadata fails VerifyMeta: %v", err)
	}
	// Corrupt one entry site: point its SX86 trap PC past the end of the
	// function, as a mis-linked binary pair would.
	for _, f := range pair.Meta.Funcs {
		if f.EntrySite == nil {
			continue
		}
		f.EntrySite.PCs[stackmap.ArchIdx(isa.SX86)].TrapPC = f.Addr + f.Size + 0x100
		break
	}
	err = imgcheck.VerifyMeta(pair.Meta)
	if err == nil {
		t.Fatal("corrupted metadata passed VerifyMeta")
	}
	if !strings.Contains(err.Error(), imgcheck.InvSymbolAlign) {
		t.Fatalf("error does not name %q: %v", imgcheck.InvSymbolAlign, err)
	}
}

// brokenManyDoc builds an image set carrying many independent
// violations spread across pagemap entries, VMAs, and cores, so the
// verifier's report has enough lines for ordering differences to show.
func brokenManyDoc(t *testing.T) *criu.ImageDir {
	t.Helper()
	const page = 0x1000
	doc := &criu.CritDoc{
		Inventory: &criu.InventoryImage{Arch: isa.SX86, TIDs: []int{1, 2, 3}},
		Files:     &criu.FilesImage{ExePath: "/bin/broken.sx86"},
		MM:        &criu.MMImage{Brk: 0x2000_0000},
		Pagemap:   &criu.PagemapImage{},
	}
	// Eight data VMAs; every second one inverted (vma-order violations).
	for i := uint64(0); i < 8; i++ {
		start := 0x1000_0000 + i*0x10*page
		end := start + 2*page
		if i%2 == 1 {
			start, end = end, start
		}
		doc.MM.VMAs = append(doc.MM.VMAs, criu.VMAEntry{Start: start, End: end, Kind: 2, Prot: 3})
	}
	doc.MM.VMAs = append(doc.MM.VMAs,
		criu.VMAEntry{Start: 0x6FFF_0000, End: 0x7000_0000, Kind: 4, Prot: 3})
	// Twelve pagemap entries, each claiming two exclusive flags
	// (pagemap-flags) and half also carrying a malformed dedup source
	// (dedup-ref).
	for i := uint64(0); i < 12; i++ {
		en := criu.PagemapEntry{
			Vaddr: 0x1000_0000 + i*3*page, NrPages: 1,
			Zero: true, Lazy: true,
		}
		if i%2 == 0 {
			en.Zero = false
			en.Dedup = true
			en.DedupSrc = en.Vaddr + page // forward: not strictly backwards
		}
		doc.Pagemap.Entries = append(doc.Pagemap.Entries, en)
	}
	// Three cores: inverted stacks and unmapped PCs.
	for tid := 1; tid <= 3; tid++ {
		c := &criu.CoreImage{
			TID: tid, Arch: isa.SX86,
			StackLow: 0x7000_0000, StackHigh: 0x6FFF_0000,
		}
		c.Regs.PC = 0xDEAD_0000 + uint64(tid)*page
		doc.Cores = append(doc.Cores, c)
	}
	return criu.Encode(doc)
}

// TestVerifyParallelDeterministic pins the parallel verifier's
// diagnostics contract: for any worker count the report must be
// line-for-line identical to the serial run, because shard sub-reports
// are concatenated in chunk order.
func TestVerifyParallelDeterministic(t *testing.T) {
	dir := brokenManyDoc(t)
	serial := imgcheck.VerifyWith(dir, imgcheck.Opts{Workers: 1})
	if serial == nil {
		t.Fatal("broken image set verified clean")
	}
	if n := strings.Count(serial.Error(), "imgcheck:"); n < 10 {
		t.Fatalf("want a many-violation report to exercise ordering, got %d:\n%v", n, serial)
	}
	for _, workers := range []int{2, 3, 8} {
		par := imgcheck.VerifyWith(dir, imgcheck.Opts{Workers: workers})
		if par == nil {
			t.Fatalf("workers=%d verified clean", workers)
		}
		if par.Error() != serial.Error() {
			t.Errorf("workers=%d report differs from serial:\n--- serial ---\n%v\n--- parallel ---\n%v",
				workers, serial, par)
		}
	}
}
