package imgcheck

import "github.com/dapper-sim/dapper/internal/image"

// StreamVerifier is the incremental "VerifyStream" mode of the static
// image verifier: the streaming restore path feeds it image files as
// they complete on the wire, and it runs every invariant whose inputs
// are in hand — the metadata sweeps fire the moment pages.img is
// *announced* (image files sort metadata-first, so by then inventory,
// mm, pagemap, and the cores have all landed), while page payloads are
// still in flight. The pre-flight cost therefore hides under the
// transfer instead of extending the downtime window.
//
// The checks are the same chunked sweeps VerifyLink runs (shared
// helpers, shard-ordered diagnostics), with one substitution: the
// pages.img byte accounting (InvPagesBytes) runs against the size the
// stream announced rather than a materialized file. The stream framing
// delivers exactly that many payload bytes or fails, so the two are
// equivalent. Non-streamed restores keep the whole-image VerifyLink.
type StreamVerifier struct {
	opts Opts
	dir  *image.ImageDir
}

// NewStreamVerifier returns a verifier accumulating files for a
// streaming restore. Opts carries the sweep worker bound.
func NewStreamVerifier(opts Opts) *StreamVerifier {
	return &StreamVerifier{opts: opts, dir: image.NewImageDir()}
}

// File ingests one completed image file. The verifier retains the slice.
func (sv *StreamVerifier) File(name string, data []byte) {
	sv.dir.Put(name, data)
}

// Dir exposes the directory accumulated so far (the restore path decodes
// metadata from the same copy the verifier checked).
func (sv *StreamVerifier) Dir() *image.ImageDir { return sv.dir }

// VerifyMeta runs every VerifyLink invariant that does not need the page
// payload — decode, VMA/pagemap ordering and flags, dedup resolution,
// address-space coverage, core/thread checks — plus the InvPagesBytes
// accounting against declaredPagesLen, the size the wire announced for
// pages.img. Call it when pages.img is announced; like VerifyLink it
// permits lazy and in_parent entries (the flatten check is the restore
// path's own).
func (sv *StreamVerifier) VerifyMeta(declaredPagesLen int) error {
	var r Report
	// decode requires pages.img present; it has not landed yet, so check
	// a shallow view holding an empty placeholder (slices shared, so the
	// copy is a handful of map entries).
	view := image.NewImageDir()
	for _, n := range sv.dir.Names() {
		b, _ := sv.dir.Get(n)
		view.Put(n, b)
	}
	if _, ok := view.Get("pages.img"); !ok {
		view.Put("pages.img", nil)
	}
	d := decode(view, &r)
	if d != nil {
		checkStructureMeta(d, &r, sv.opts.Workers)
		checkDedupResolution(d, &r)
		checkAddressSpace(d, &r, sv.opts.Workers)
		checkPagesBytes(declaredPagesLen, d.pm, &r)
	}
	return r.Err()
}
