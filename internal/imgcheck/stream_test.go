package imgcheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/imgcheck"
)

// feedMeta loads a fixture and feeds every file except pages.img into a
// fresh StreamVerifier — the state a streaming restore is in the moment
// pages.img is announced. It returns the verifier and the declared
// payload size (the real pages.img length).
func feedMeta(t *testing.T, fixture string) (*imgcheck.StreamVerifier, int) {
	t.Helper()
	dirs := loadFixture(t, filepath.Join("testdata", fixture))
	if len(dirs) != 1 {
		t.Fatalf("%s: want a single-image fixture, got %d", fixture, len(dirs))
	}
	sv := imgcheck.NewStreamVerifier(imgcheck.Opts{Workers: 2})
	var pagesLen int
	for _, name := range dirs[0].Names() {
		data, _ := dirs[0].Get(name)
		if name == "pages.img" {
			pagesLen = len(data)
			continue
		}
		sv.File(name, data)
	}
	return sv, pagesLen
}

// TestStreamVerifierAcceptsValidMeta: a clean image's metadata plus the
// true declared payload size verifies before any payload byte lands.
func TestStreamVerifierAcceptsValidMeta(t *testing.T) {
	sv, pagesLen := feedMeta(t, "ok_minimal.json")
	if err := sv.VerifyMeta(pagesLen); err != nil {
		t.Fatalf("clean metadata rejected: %v", err)
	}
	// Dedup images also verify their references without the payload.
	sv, pagesLen = feedMeta(t, "ok_dedup.json")
	if err := sv.VerifyMeta(pagesLen); err != nil {
		t.Fatalf("clean dedup metadata rejected: %v", err)
	}
}

// TestStreamVerifierDeclaredSizeMismatch: the InvPagesBytes accounting
// runs against the size the wire announced, so a payload that disagrees
// with the pagemap is refused before it is received.
func TestStreamVerifierDeclaredSizeMismatch(t *testing.T) {
	sv, pagesLen := feedMeta(t, "ok_minimal.json")
	err := sv.VerifyMeta(pagesLen + 4096)
	if err == nil {
		t.Fatal("oversized declared payload accepted")
	}
	if !strings.Contains(err.Error(), imgcheck.InvPagesBytes) {
		t.Errorf("error %v does not name %s", err, imgcheck.InvPagesBytes)
	}
}

// TestStreamVerifierCatchesMetaInvariants: metadata-only violations are
// caught at the pre-payload checkpoint, exactly as VerifyLink would
// catch them on the whole image.
func TestStreamVerifierCatchesMetaInvariants(t *testing.T) {
	cases := []struct {
		fixture string
		want    string
	}{
		{"pagemap_unsorted.json", imgcheck.InvPagemapOrder},
		{"pagemap_overlap.json", imgcheck.InvPagemapOrder},
		{"vma_overlap.json", imgcheck.InvVMAOrder},
		{"dedup_forward.json", imgcheck.InvDedupRef},
		{"dedup_dangling.json", imgcheck.InvDedupRef},
	}
	for _, tc := range cases {
		sv, pagesLen := feedMeta(t, tc.fixture)
		err := sv.VerifyMeta(pagesLen)
		if err == nil {
			t.Errorf("%s: accepted before payload", tc.fixture)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not name %s", tc.fixture, err, tc.want)
		}
	}
}
