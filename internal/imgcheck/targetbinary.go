package imgcheck

import (
	"github.com/dapper-sim/dapper/internal/image"
	"github.com/dapper-sim/dapper/internal/updatecheck"
)

// VerifyTargetBinary checks an image set against the binary it is about
// to be restored into: every thread PC and every stack return address
// must resolve in the *target* binary's stack maps. Verify and friends
// prove an image set is internally consistent; this pass proves it is
// consistent with a particular binary, catching version skew (image
// dumped against one build, restored into another) before any state is
// rebuilt. The analysis itself is updatecheck's pass 3; it lives here so
// restore-path callers get every pre-flight from one package.
func VerifyTargetBinary(dir *image.ImageDir, b *updatecheck.Binary) error {
	return updatecheck.VerifyImage(dir, b)
}
