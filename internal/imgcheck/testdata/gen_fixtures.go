//go:build ignore

// gen_fixtures regenerates the broken-image-set corpus in this directory:
//
//	go run internal/imgcheck/testdata/gen_fixtures.go internal/imgcheck/testdata
//
// Each fixture is a JSON array of CRIT documents forming a checkpoint
// chain ordered oldest to newest (single-element arrays are lone image
// sets). Every file except ok_minimal.json deliberately violates exactly
// one invariant; imgcheck_test asserts the named invariant appears in the
// verifier's error. Keeping the corpus as CRIT JSON keeps it reviewable —
// the test encodes each document back to a binary image directory with
// criu.EncodeJSON before verifying.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/dapper-sim/dapper/internal/criu"
	"github.com/dapper-sim/dapper/internal/isa"
)

const (
	textLo  = 0x0040_0000
	textHi  = 0x0040_1000
	dataLo  = 0x1000_0000
	dataHi  = 0x1000_1000
	tlsLo   = 0x6000_0000
	tlsHi   = 0x6000_1000
	stackLo = 0x6FFF_0000
	stackHi = 0x7000_0000
	page    = 0x1000
)

// baseDoc returns a minimal self-contained image set that passes Verify:
// one sx86 thread parked in text, one data page with bytes, one zero
// stack page.
func baseDoc() *criu.CritDoc {
	core := &criu.CoreImage{
		TID: 1, Arch: isa.SX86,
		StackLow: stackLo, StackHigh: stackHi, TLSBlock: tlsLo,
	}
	core.Regs.PC = textLo
	core.Regs.TLS = tlsLo
	return &criu.CritDoc{
		Inventory: &criu.InventoryImage{Arch: isa.SX86, TIDs: []int{1}},
		MM: &criu.MMImage{Brk: 0x2000_0000, VMAs: []criu.VMAEntry{
			{Start: textLo, End: textHi, Kind: 1, Prot: 5},
			{Start: dataLo, End: dataHi, Kind: 2, Prot: 3},
			{Start: tlsLo, End: tlsHi, Kind: 5, Prot: 3},
			{Start: stackLo, End: stackHi, Kind: 4, Prot: 3},
		}},
		Files: &criu.FilesImage{ExePath: "/bin/fixture.sx86"},
		Cores: []*criu.CoreImage{core},
		Pagemap: &criu.PagemapImage{Entries: []criu.PagemapEntry{
			{Vaddr: dataLo, NrPages: 1},
			{Vaddr: stackHi - page, NrPages: 1, Zero: true},
		}},
		Pages: bytes.Repeat([]byte{0x41}, page),
	}
}

// emptyPages gives a doc a present-but-empty pages.img. CritDoc.Pages is
// omitempty, so a nil/empty Pages field would drop the file entirely and
// trip missing-image rather than the invariant the fixture targets; an
// Extra entry survives the JSON round-trip as a zero-length blob.
func emptyPages(d *criu.CritDoc) {
	d.Pages = nil
	d.Extra = map[string][]byte{"pages.img": {}}
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: gen_fixtures OUTDIR")
		os.Exit(1)
	}
	outDir := os.Args[1]

	fixtures := map[string][]*criu.CritDoc{}

	// Accepted by Verify: the corpus sanity anchor.
	fixtures["ok_minimal.json"] = []*criu.CritDoc{baseDoc()}

	// pagemap-order: second entry overlaps the first run.
	d := baseDoc()
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1},
		{Vaddr: dataLo, NrPages: 1, Zero: true},
	}
	fixtures["pagemap_overlap.json"] = []*criu.CritDoc{d}

	// pagemap-order: entries shuffled out of address order.
	d = baseDoc()
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
		{Vaddr: dataLo, NrPages: 1},
	}
	fixtures["pagemap_unsorted.json"] = []*criu.CritDoc{d}

	// pagemap-flags: one entry claims both zero and in_parent.
	d = baseDoc()
	d.Pagemap.Entries[1] = criu.PagemapEntry{Vaddr: stackHi - page, NrPages: 1, Zero: true, InParent: true}
	fixtures["pagemap_flags.json"] = []*criu.CritDoc{d}

	// pages-bytes: a zero-flagged entry must carry no bytes, but pages.img
	// still holds a full page for it.
	d = baseDoc()
	d.Pagemap.Entries = []criu.PagemapEntry{{Vaddr: stackHi - page, NrPages: 1, Zero: true}}
	fixtures["zero_with_bytes.json"] = []*criu.CritDoc{d}

	// pages-bytes: pagemap describes two data pages, pages.img holds one.
	d = baseDoc()
	d.Pagemap.Entries = []criu.PagemapEntry{{Vaddr: dataLo, NrPages: 2}}
	d.MM.VMAs[1].End = dataLo + 2*page
	fixtures["truncated_pages.json"] = []*criu.CritDoc{d}

	// inparent-chain: the ROOT of a chain marks a page in_parent — the
	// reference can never terminate (a cycle squashed into a chain).
	root := baseDoc()
	root.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1, InParent: true},
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
	}
	emptyPages(root)
	delta := baseDoc()
	delta.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1, InParent: true},
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
	}
	emptyPages(delta)
	fixtures["cyclic_in_parent.json"] = []*criu.CritDoc{root, delta}

	// inparent-chain: a delta's in_parent page that no older link carries.
	root = baseDoc()
	delta = baseDoc()
	delta.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo + 0x10*page, NrPages: 1, InParent: true},
	}
	delta.MM.VMAs[1].End = dataLo + 0x11*page
	emptyPages(delta)
	fixtures["orphan_in_parent.json"] = []*criu.CritDoc{root, delta}

	// image-decode: core-1.img truncated mid-field (a varint header with
	// no value), as a partially-written checkpoint would leave it.
	d = baseDoc()
	d.Cores = nil
	d.Extra = map[string][]byte{"core-1.img": {0x08}}
	fixtures["truncated_core.json"] = []*criu.CritDoc{d}

	// missing-image: the inventory lists tid 2 but no core-2.img exists.
	d = baseDoc()
	d.Inventory.TIDs = []int{1, 2}
	fixtures["missing_core.json"] = []*criu.CritDoc{d}

	// core-pc: the thread's PC points outside every VMA.
	d = baseDoc()
	d.Cores[0].Regs.PC = 0xDEAD_0000
	fixtures["pc_unmapped.json"] = []*criu.CritDoc{d}

	// core-regs: an sx86 core with a live value beyond its 8-register file.
	d = baseDoc()
	d.Cores[0].Regs.R[12] = 7
	fixtures["sx86_highregs.json"] = []*criu.CritDoc{d}

	// core-stack: stack bounds inverted.
	d = baseDoc()
	d.Cores[0].StackLow, d.Cores[0].StackHigh = stackHi, stackLo
	fixtures["stack_inverted.json"] = []*criu.CritDoc{d}

	// vma-order: overlapping VMAs in mm.img.
	d = baseDoc()
	d.MM.VMAs[1].End = tlsLo + page
	fixtures["vma_overlap.json"] = []*criu.CritDoc{d}

	// Accepted by Verify: a well-formed dedup image — the second data
	// page is a backwards reference to the first and carries no bytes.
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo},
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
	}
	fixtures["ok_dedup.json"] = []*criu.CritDoc{d}

	// dedup-ref: the referenced page is a zero page, not a data page, so
	// the reference dangles.
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1, Zero: true},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo},
	}
	emptyPages(d)
	fixtures["dedup_dangling.json"] = []*criu.CritDoc{d}

	// dedup-ref: a self-reference — dedup sources must point strictly
	// backwards so a single forward pass resolves them.
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo + page},
	}
	fixtures["dedup_forward.json"] = []*criu.CritDoc{d}

	// dedup-ref: source address not page-aligned.
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo + 0x10},
	}
	fixtures["dedup_unaligned.json"] = []*criu.CritDoc{d}

	// dedup-ref: a data entry carries a dedup source without the flag.
	d = baseDoc()
	d.Pagemap.Entries[0].DedupSrc = stackLo
	fixtures["dedup_no_flag.json"] = []*criu.CritDoc{d}

	// chainRoot returns a chain root carrying two plain data pages, the
	// older content the delta fixtures below XOR against.
	chainRoot := func() *criu.CritDoc {
		r := baseDoc()
		r.MM.VMAs[1].End = dataLo + 2*page
		r.Pagemap.Entries = []criu.PagemapEntry{
			{Vaddr: dataLo, NrPages: 2},
			{Vaddr: stackHi - page, NrPages: 1, Zero: true},
		}
		r.Pages = bytes.Repeat([]byte{0x41}, 2*page)
		return r
	}

	// Accepted by VerifyChain: the combined dedup+delta flag pair — the
	// second delta page's XOR payload is identical to the first's, so it
	// is a backwards dedup reference into an earlier delta page.
	root = chainRoot()
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1, Delta: true},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo, Delta: true},
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
	}
	fixtures["ok_dedup_delta.json"] = []*criu.CritDoc{root, d}

	// dedup-ref: a dedup+delta entry referencing a plain data page — the
	// classes must match or flattening would XOR content bytes as a diff.
	root = chainRoot()
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo, Delta: true},
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
	}
	fixtures["dedup_delta_cross.json"] = []*criu.CritDoc{root, d}

	// dedup-ref: a plain dedup entry referencing a delta page — the
	// inverse class crossing, which would alias an XOR diff as content.
	root = chainRoot()
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1, Delta: true},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo},
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
	}
	fixtures["dedup_delta_plain_cross.json"] = []*criu.CritDoc{root, d}

	// dedup-ref: a dedup+delta self-reference — combined-flag refs must
	// point strictly backwards exactly like plain dedup refs.
	root = chainRoot()
	d = baseDoc()
	d.MM.VMAs[1].End = dataLo + 2*page
	d.Pagemap.Entries = []criu.PagemapEntry{
		{Vaddr: dataLo, NrPages: 1, Delta: true},
		{Vaddr: dataLo + page, NrPages: 1, Dedup: true, DedupSrc: dataLo + page, Delta: true},
		{Vaddr: stackHi - page, NrPages: 1, Zero: true},
	}
	fixtures["dedup_delta_forward.json"] = []*criu.CritDoc{root, d}

	for name, docs := range fixtures {
		out, err := json.MarshalIndent(docs, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, name+":", err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(outDir, name), append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d fixtures to %s\n", len(fixtures), outDir)
}
