package imgproto

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Codec selects the wire codec for batched transport frames (the page
// protocol's batch frames and the image-copy stream's segments; see
// docs/transport.md). The zero value keeps the legacy unbatched framing,
// so a zero-initialized option struct is wire-compatible with old peers.
type Codec uint8

const (
	// CodecRaw is the legacy framing: one frame per write, no batching,
	// no compression. Never appears inside a batch frame header.
	CodecRaw Codec = iota
	// CodecNone batches frames but stores each batch payload verbatim.
	CodecNone
	// CodecFlate batches frames and DEFLATE-compresses each batch. A
	// batch whose compressed form is not smaller is sent as CodecNone
	// (the header carries the codec actually used), so the wire payload
	// never exceeds the raw payload.
	CodecFlate
)

// String names the codec for diagnostics and bench tables.
func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecNone:
		return "none"
	case CodecFlate:
		return "flate"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// Batched reports whether the codec uses the batched framing (anything
// but the legacy raw framing).
func (c Codec) Batched() bool { return c == CodecNone || c == CodecFlate }

// flateLevel is fixed so compressed output is deterministic for a given
// input — the byte-identity and bytes-on-wire regression tests depend on
// replayed migrations producing identical wire sizes.
const flateLevel = flate.BestSpeed

// Compress encodes raw for the wire and returns the payload together
// with the codec that actually encoded it: CodecFlate downgrades itself
// to CodecNone when compression does not shrink the payload, so
// len(payload) <= len(raw) always holds. The returned payload may alias
// raw (for CodecNone); callers must write it before reusing the buffer.
func (c Codec) Compress(raw []byte) ([]byte, Codec, error) {
	switch c {
	case CodecNone:
		return raw, CodecNone, nil
	case CodecFlate:
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flateLevel)
		if err != nil {
			return nil, 0, fmt.Errorf("imgproto: flate init: %w", err)
		}
		if _, err := zw.Write(raw); err != nil {
			return nil, 0, fmt.Errorf("imgproto: flate write: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, 0, fmt.Errorf("imgproto: flate close: %w", err)
		}
		if buf.Len() >= len(raw) {
			return raw, CodecNone, nil
		}
		return buf.Bytes(), CodecFlate, nil
	default:
		return nil, 0, fmt.Errorf("imgproto: codec %s cannot encode batch payloads", c)
	}
}

// Decompress decodes a batch payload produced by Compress with this
// codec, verifying it expands to exactly rawLen bytes with no trailing
// garbage.
func (c Codec) Decompress(wire []byte, rawLen int) ([]byte, error) {
	switch c {
	case CodecNone:
		if len(wire) != rawLen {
			return nil, fmt.Errorf("imgproto: uncompressed payload is %d bytes, header says %d", len(wire), rawLen)
		}
		return wire, nil
	case CodecFlate:
		zr := flate.NewReader(bytes.NewReader(wire))
		raw := make([]byte, rawLen)
		if _, err := io.ReadFull(zr, raw); err != nil {
			return nil, fmt.Errorf("imgproto: flate payload truncated: %w", err)
		}
		// The stream must end exactly at rawLen: trailing bytes mean the
		// header lied and the connection is desynchronized.
		var extra [1]byte
		if n, _ := zr.Read(extra[:]); n != 0 {
			return nil, fmt.Errorf("imgproto: flate payload longer than the %d-byte header claims", rawLen)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("imgproto: flate payload corrupt: %w", err)
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("imgproto: codec %s cannot decode batch payloads", c)
	}
}
