package imgproto

import (
	"bytes"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("hello"),
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte("abcd"), 1024),
	}
	// A high-entropy page that flate cannot shrink.
	noisy := make([]byte, 4096)
	x := uint32(0x9e3779b9)
	for i := range noisy {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		noisy[i] = byte(x)
	}
	payloads = append(payloads, noisy)

	for _, codec := range []Codec{CodecNone, CodecFlate} {
		for i, raw := range payloads {
			wire, used, err := codec.Compress(raw)
			if err != nil {
				t.Fatalf("%s payload %d: compress: %v", codec, i, err)
			}
			if !used.Batched() {
				t.Fatalf("%s payload %d: compress reported non-batch codec %s", codec, i, used)
			}
			if len(wire) > len(raw) {
				t.Fatalf("%s payload %d: wire %d bytes exceeds raw %d", codec, i, len(wire), len(raw))
			}
			got, err := used.Decompress(wire, len(raw))
			if err != nil {
				t.Fatalf("%s payload %d: decompress: %v", codec, i, err)
			}
			if !bytes.Equal(got, raw) {
				t.Fatalf("%s payload %d: round trip mismatch", codec, i)
			}
		}
	}
}

func TestCodecFlateShrinksRedundantPages(t *testing.T) {
	raw := bytes.Repeat([]byte{0xAB, 0, 0, 0}, 2048)
	wire, used, err := CodecFlate.Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	if used != CodecFlate {
		t.Fatalf("redundant payload fell back to %s", used)
	}
	if len(wire) >= len(raw)/4 {
		t.Fatalf("flate only shrank %d -> %d bytes", len(raw), len(wire))
	}
}

func TestCodecFlateFallsBackOnIncompressible(t *testing.T) {
	raw := make([]byte, 512)
	x := uint32(1)
	for i := range raw {
		x = x*1664525 + 1013904223
		raw[i] = byte(x >> 24)
	}
	wire, used, err := CodecFlate.Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	if used != CodecNone {
		t.Fatalf("incompressible payload kept codec %s", used)
	}
	if !bytes.Equal(wire, raw) {
		t.Fatal("fallback payload is not the raw bytes")
	}
}

func TestCodecCompressDeterministic(t *testing.T) {
	raw := bytes.Repeat([]byte("state-rewriting"), 512)
	a, _, err := CodecFlate.Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CodecFlate.Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("flate output differs between identical inputs")
	}
}

func TestCodecDecompressRejectsLies(t *testing.T) {
	raw := bytes.Repeat([]byte{7}, 256)
	wire, used, err := CodecFlate.Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := used.Decompress(wire, len(raw)-1); err == nil {
		t.Fatal("short rawLen accepted")
	}
	if _, err := used.Decompress(wire[:len(wire)-2], len(raw)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := CodecNone.Decompress([]byte{1, 2, 3}, 4); err == nil {
		t.Fatal("CodecNone length mismatch accepted")
	}
	if _, err := CodecRaw.Decompress(nil, 0); err == nil {
		t.Fatal("CodecRaw accepted as a batch codec")
	}
}
