package imgproto

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzUvarint checks the varint decoder against arbitrary byte strings:
// it must never panic, must reject >64-bit values and truncation with
// the named sentinels, and every successful decode must re-encode to the
// exact bytes it consumed (canonical round trip).
func FuzzUvarint(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x7f})
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // max uint64
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}) // overflows
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00})
	f.Add([]byte{0x80}) // truncated
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := Uvarint(b)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOverflow) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) || n > 10 {
			t.Fatalf("bad consumed length %d for %x", n, b)
		}
		re := AppendUvarint(nil, v)
		// Decoding is permissive about non-canonical (zero-padded)
		// encodings, so compare by re-decoding rather than raw bytes.
		v2, n2, err := Uvarint(re)
		if err != nil || v2 != v {
			t.Fatalf("re-encode of %d failed: %v (got %d)", v, err, v2)
		}
		if n2 != len(re) {
			t.Fatalf("re-encode of %d left %d trailing bytes", v, len(re)-n2)
		}
	})
}

// fuzzMessage builds a message exercising every wire type, including a
// nested message, from fuzzer-chosen values.
func fuzzMessage(u1, fx uint64, s []byte, nested uint64) []byte {
	var e Encoder
	e.Uint64(1, u1)
	e.Fixed64(2, fx)
	e.BytesField(3, s)
	e.Message(4, func(n *Encoder) {
		n.Uint64(1, nested)
		n.BytesField(2, s)
	})
	e.Int64(5, UnZigZag(u1))
	return e.Bytes()
}

// FuzzDecoder drives the field iterator over both well-formed messages
// (which must round-trip every field value) and arbitrary mutations
// (which must fail cleanly, never panic or over-read).
func FuzzDecoder(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte(nil), uint64(0), []byte(nil))
	f.Add(^uint64(0), uint64(1), []byte("payload"), uint64(42), []byte{0xff, 0xff})
	f.Add(uint64(300), ^uint64(0), bytes.Repeat([]byte{0x80}, 16), uint64(7), []byte{0x0b})
	f.Fuzz(func(t *testing.T, u1, fx uint64, s []byte, nested uint64, garbage []byte) {
		msg := fuzzMessage(u1, fx, s, nested)
		var gotU1, gotFx, gotNested uint64
		var gotS, gotNS []byte
		var gotI64 int64
		err := NewDecoder(msg).Each(func(field uint32, d *Decoder) error {
			switch field {
			case 1:
				v, err := d.FieldUint64()
				gotU1 = v
				return err
			case 2:
				v, err := d.FieldUint64()
				gotFx = v
				return err
			case 3:
				v, err := d.FieldBytes()
				gotS = v
				return err
			case 4:
				return d.FieldMessage(func(nf uint32, nd *Decoder) error {
					switch nf {
					case 1:
						v, err := nd.FieldUint64()
						gotNested = v
						return err
					case 2:
						v, err := nd.FieldBytes()
						gotNS = v
						return err
					}
					return nil
				})
			case 5:
				v, err := d.FieldInt64()
				gotI64 = v
				return err
			}
			return nil
		})
		if err != nil {
			t.Fatalf("well-formed message failed to decode: %v", err)
		}
		if gotU1 != u1 || gotFx != fx || gotNested != nested || gotI64 != UnZigZag(u1) {
			t.Fatal("scalar fields did not round-trip")
		}
		if !bytes.Equal(gotS, s) || !bytes.Equal(gotNS, s) {
			t.Fatal("bytes fields did not round-trip")
		}

		// Arbitrary corruption: truncations and garbage must error (or
		// decode as some other valid message) without panicking.
		for cut := 0; cut < len(msg); cut += 1 + len(msg)/8 {
			_ = NewDecoder(msg[:cut]).Each(func(uint32, *Decoder) error { return nil })
		}
		_ = NewDecoder(garbage).Each(func(_ uint32, d *Decoder) error {
			_, _ = d.FieldUint64()
			_, _ = d.FieldBytes()
			return nil
		})
		_ = NewDecoder(append(append([]byte(nil), garbage...), msg...)).Each(func(uint32, *Decoder) error { return nil })
	})
}
