// Package imgproto implements the wire format used by DAPPER's process
// images and binaries.
//
// CRIU serializes most of its image files as protocol-buffer messages; this
// package provides a from-scratch, dependency-free implementation of the
// same wire encoding (base-128 varints, zig-zag signed integers, tagged
// fields, and length-delimited payloads). Image and binary types marshal
// themselves through an Encoder and parse through a Decoder, which keeps
// the on-disk representation stable and independent of Go struct layout —
// exactly the property CRIT relies on to decode, rewrite, and re-encode
// images.
package imgproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// WireType identifies how a field's payload is encoded on the wire.
type WireType uint8

// Wire types, mirroring the protobuf encoding.
const (
	WireVarint  WireType = 0 // varint-encoded integer
	WireFixed64 WireType = 1 // 8 bytes, little-endian
	WireBytes   WireType = 2 // varint length followed by raw bytes
)

// Sentinel errors reported by the Decoder.
var (
	// ErrTruncated indicates the buffer ended in the middle of a field.
	ErrTruncated = errors.New("imgproto: truncated message")
	// ErrOverflow indicates a varint exceeded 64 bits.
	ErrOverflow = errors.New("imgproto: varint overflows 64 bits")
	// ErrBadWireType indicates an unknown wire type in a field tag.
	ErrBadWireType = errors.New("imgproto: unknown wire type")
)

// FieldError records a decoding failure at a specific field number.
type FieldError struct {
	Field uint32
	Err   error
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("imgproto: field %d: %v", e.Field, e.Err)
}

func (e *FieldError) Unwrap() error { return e.Err }

// AppendUvarint appends v to b in base-128 varint encoding.
func AppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// Uvarint decodes a varint from b, returning the value and the number of
// bytes consumed. It returns an error if b is truncated or the value
// overflows 64 bits.
func Uvarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b); i++ {
		c := b[i]
		if i == 9 && c > 1 {
			return 0, 0, ErrOverflow
		}
		v |= uint64(c&0x7f) << (7 * uint(i))
		if c < 0x80 {
			return v, i + 1, nil
		}
		if i == 9 {
			return 0, 0, ErrOverflow
		}
	}
	return 0, 0, ErrTruncated
}

// ZigZag encodes a signed integer so small magnitudes use few varint bytes.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag reverses ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder builds a message by appending tagged fields to a buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder that appends to buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded message. The returned slice aliases the
// Encoder's internal buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) tag(field uint32, wt WireType) {
	e.buf = AppendUvarint(e.buf, uint64(field)<<3|uint64(wt))
}

// Uint64 appends field as a varint.
func (e *Encoder) Uint64(field uint32, v uint64) {
	e.tag(field, WireVarint)
	e.buf = AppendUvarint(e.buf, v)
}

// Int64 appends field as a zig-zag varint.
func (e *Encoder) Int64(field uint32, v int64) {
	e.Uint64(field, ZigZag(v))
}

// Bool appends field as a 0/1 varint.
func (e *Encoder) Bool(field uint32, v bool) {
	var u uint64
	if v {
		u = 1
	}
	e.Uint64(field, u)
}

// Fixed64 appends field as 8 little-endian bytes.
func (e *Encoder) Fixed64(field uint32, v uint64) {
	e.tag(field, WireFixed64)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Float64 appends field as the IEEE-754 bits of v.
func (e *Encoder) Float64(field uint32, v float64) {
	e.Fixed64(field, math.Float64bits(v))
}

// Bytes appends field as a length-delimited byte string.
func (e *Encoder) BytesField(field uint32, v []byte) {
	e.tag(field, WireBytes)
	e.buf = AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String appends field as a length-delimited UTF-8 string.
func (e *Encoder) String(field uint32, v string) {
	e.tag(field, WireBytes)
	e.buf = AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Message appends field as a length-delimited nested message produced by fn.
func (e *Encoder) Message(field uint32, fn func(*Encoder)) {
	var nested Encoder
	fn(&nested)
	e.BytesField(field, nested.buf)
}

// Uint64s appends each element of vs as a repeated varint field.
func (e *Encoder) Uint64s(field uint32, vs []uint64) {
	for _, v := range vs {
		e.Uint64(field, v)
	}
}

// Int64s appends each element of vs as a repeated zig-zag field.
func (e *Encoder) Int64s(field uint32, vs []int64) {
	for _, v := range vs {
		e.Int64(field, v)
	}
}

// Decoder iterates over the fields of an encoded message.
type Decoder struct {
	buf []byte
	off int

	field uint32
	wt    WireType
	// payload for the current field
	u64 uint64
	raw []byte
}

// NewDecoder returns a Decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// next advances to the next field, returning any wire-level error; Each
// drives it over the whole message and stops at the first failure.
func (d *Decoder) next() error {
	tag, n, err := Uvarint(d.buf[d.off:])
	if err != nil {
		return err
	}
	d.off += n
	d.field = uint32(tag >> 3)
	d.wt = WireType(tag & 7)
	switch d.wt {
	case WireVarint:
		v, n, err := Uvarint(d.buf[d.off:])
		if err != nil {
			return &FieldError{Field: d.field, Err: err}
		}
		d.off += n
		d.u64 = v
	case WireFixed64:
		if d.off+8 > len(d.buf) {
			return &FieldError{Field: d.field, Err: ErrTruncated}
		}
		d.u64 = binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
	case WireBytes:
		ln, n, err := Uvarint(d.buf[d.off:])
		if err != nil {
			return &FieldError{Field: d.field, Err: err}
		}
		d.off += n
		if uint64(d.off)+ln > uint64(len(d.buf)) {
			return &FieldError{Field: d.field, Err: ErrTruncated}
		}
		d.raw = d.buf[d.off : d.off+int(ln)]
		d.off += int(ln)
	default:
		return &FieldError{Field: d.field, Err: ErrBadWireType}
	}
	return nil
}

// Each calls fn for every field in the message. fn receives the field
// number and the Decoder positioned at that field's payload; it should use
// the typed accessors (FieldUint64, FieldBytes, ...) to read it. Decoding
// stops at the first error from the wire or from fn.
func (d *Decoder) Each(fn func(field uint32, d *Decoder) error) error {
	for d.off < len(d.buf) {
		if err := d.next(); err != nil {
			return err
		}
		if err := fn(d.field, d); err != nil {
			return err
		}
	}
	return nil
}

// FieldUint64 returns the current field as an unsigned varint or fixed64.
func (d *Decoder) FieldUint64() (uint64, error) {
	switch d.wt {
	case WireVarint, WireFixed64:
		return d.u64, nil
	default:
		return 0, &FieldError{Field: d.field, Err: fmt.Errorf("want numeric, got wire type %d", d.wt)}
	}
}

// FieldInt64 returns the current field as a zig-zag signed integer.
func (d *Decoder) FieldInt64() (int64, error) {
	u, err := d.FieldUint64()
	if err != nil {
		return 0, err
	}
	return UnZigZag(u), nil
}

// FieldBool returns the current field as a boolean.
func (d *Decoder) FieldBool() (bool, error) {
	u, err := d.FieldUint64()
	return u != 0, err
}

// FieldFloat64 returns the current field interpreted as IEEE-754 bits.
func (d *Decoder) FieldFloat64() (float64, error) {
	u, err := d.FieldUint64()
	return math.Float64frombits(u), err
}

// FieldBytes returns the current length-delimited field. The slice aliases
// the Decoder's buffer.
func (d *Decoder) FieldBytes() ([]byte, error) {
	if d.wt != WireBytes {
		return nil, &FieldError{Field: d.field, Err: fmt.Errorf("want bytes, got wire type %d", d.wt)}
	}
	return d.raw, nil
}

// FieldString returns the current length-delimited field as a string.
func (d *Decoder) FieldString() (string, error) {
	b, err := d.FieldBytes()
	return string(b), err
}

// FieldMessage decodes the current length-delimited field as a nested
// message by invoking fn for each of its fields.
func (d *Decoder) FieldMessage(fn func(field uint32, d *Decoder) error) error {
	b, err := d.FieldBytes()
	if err != nil {
		return err
	}
	return NewDecoder(b).Each(fn)
}
