package imgproto

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<32 - 1, 1 << 63, math.MaxUint64}
	for _, v := range cases {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		if err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v || n != len(b) {
			t.Errorf("Uvarint(%d) = %d (n=%d, len=%d)", v, got, n, len(b))
		}
	}
}

func TestUvarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintTruncated(t *testing.T) {
	b := AppendUvarint(nil, 1<<40)
	for i := 0; i < len(b); i++ {
		if _, _, err := Uvarint(b[:i]); !errors.Is(err, ErrTruncated) {
			t.Errorf("prefix %d: want ErrTruncated, got %v", i, err)
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 11 continuation bytes can never be a valid 64-bit varint.
	b := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := Uvarint(b); !errors.Is(err, ErrOverflow) {
		t.Errorf("want ErrOverflow, got %v", err)
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Small magnitudes must encode small.
	for _, v := range []int64{-1, 1, -64, 63} {
		if ZigZag(v) > 127 {
			t.Errorf("ZigZag(%d) = %d, want single byte", v, ZigZag(v))
		}
	}
}

func TestEncoderDecoderAllTypes(t *testing.T) {
	var e Encoder
	e.Uint64(1, 42)
	e.Int64(2, -7)
	e.Bool(3, true)
	e.Fixed64(4, 0xdeadbeefcafe)
	e.Float64(5, 3.5)
	e.BytesField(6, []byte{1, 2, 3})
	e.String(7, "hello")
	e.Message(8, func(n *Encoder) {
		n.Uint64(1, 9)
		n.String(2, "nested")
	})
	e.Uint64s(9, []uint64{5, 6, 7})

	var (
		gotU   uint64
		gotI   int64
		gotB   bool
		gotF64 uint64
		gotFl  float64
		gotBy  []byte
		gotS   string
		nestU  uint64
		nestS  string
		rep    []uint64
	)
	d := NewDecoder(e.Bytes())
	err := d.Each(func(f uint32, d *Decoder) error {
		var err error
		switch f {
		case 1:
			gotU, err = d.FieldUint64()
		case 2:
			gotI, err = d.FieldInt64()
		case 3:
			gotB, err = d.FieldBool()
		case 4:
			gotF64, err = d.FieldUint64()
		case 5:
			gotFl, err = d.FieldFloat64()
		case 6:
			gotBy, err = d.FieldBytes()
		case 7:
			gotS, err = d.FieldString()
		case 8:
			err = d.FieldMessage(func(nf uint32, nd *Decoder) error {
				var nerr error
				switch nf {
				case 1:
					nestU, nerr = nd.FieldUint64()
				case 2:
					nestS, nerr = nd.FieldString()
				}
				return nerr
			})
		case 9:
			v, verr := d.FieldUint64()
			rep = append(rep, v)
			err = verr
		}
		return err
	})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotU != 42 || gotI != -7 || !gotB || gotF64 != 0xdeadbeefcafe || gotFl != 3.5 {
		t.Errorf("numeric fields wrong: %d %d %v %x %v", gotU, gotI, gotB, gotF64, gotFl)
	}
	if !bytes.Equal(gotBy, []byte{1, 2, 3}) || gotS != "hello" {
		t.Errorf("bytes/string wrong: %v %q", gotBy, gotS)
	}
	if nestU != 9 || nestS != "nested" {
		t.Errorf("nested wrong: %d %q", nestU, nestS)
	}
	if len(rep) != 3 || rep[0] != 5 || rep[2] != 7 {
		t.Errorf("repeated wrong: %v", rep)
	}
}

func TestDecoderUnknownFieldsSkipped(t *testing.T) {
	// A decoder that only looks at field 2 must still traverse field 1.
	var e Encoder
	e.String(1, "ignored")
	e.Uint64(2, 11)
	var got uint64
	err := NewDecoder(e.Bytes()).Each(func(f uint32, d *Decoder) error {
		if f == 2 {
			v, err := d.FieldUint64()
			got = v
			return err
		}
		return nil
	})
	if err != nil || got != 11 {
		t.Fatalf("got %d, err %v", got, err)
	}
}

func TestDecoderTruncatedMessage(t *testing.T) {
	var e Encoder
	e.BytesField(1, bytes.Repeat([]byte{7}, 100))
	b := e.Bytes()
	err := NewDecoder(b[:len(b)-1]).Each(func(uint32, *Decoder) error { return nil })
	var fe *FieldError
	if !errors.As(err, &fe) || !errors.Is(err, ErrTruncated) {
		t.Fatalf("want FieldError{ErrTruncated}, got %v", err)
	}
	if fe.Field != 1 {
		t.Errorf("field = %d, want 1", fe.Field)
	}
}

func TestDecoderWrongType(t *testing.T) {
	var e Encoder
	e.Uint64(1, 5)
	err := NewDecoder(e.Bytes()).Each(func(f uint32, d *Decoder) error {
		_, err := d.FieldBytes()
		return err
	})
	if err == nil {
		t.Fatal("want error reading varint as bytes")
	}
}

func TestDecoderBadWireType(t *testing.T) {
	// Tag with wire type 5 (unused).
	b := AppendUvarint(nil, 1<<3|5)
	err := NewDecoder(b).Each(func(uint32, *Decoder) error { return nil })
	if !errors.Is(err, ErrBadWireType) {
		t.Fatalf("want ErrBadWireType, got %v", err)
	}
}

func TestEncoderRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64, s string, raw []byte) bool {
		var e Encoder
		e.Uint64(1, u)
		e.Int64(2, i)
		e.String(3, s)
		e.BytesField(4, raw)
		var gu uint64
		var gi int64
		var gs string
		var gb []byte
		err := NewDecoder(e.Bytes()).Each(func(f uint32, d *Decoder) error {
			var err error
			switch f {
			case 1:
				gu, err = d.FieldUint64()
			case 2:
				gi, err = d.FieldInt64()
			case 3:
				gs, err = d.FieldString()
			case 4:
				gb, err = d.FieldBytes()
			}
			return err
		})
		return err == nil && gu == u && gi == i && gs == s && bytes.Equal(gb, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeSmallMessage(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Encoder
		e.Uint64(1, uint64(i))
		e.Int64(2, -int64(i))
		e.BytesField(3, payload)
		_ = e.Bytes()
	}
}

func BenchmarkDecodeSmallMessage(b *testing.B) {
	var e Encoder
	e.Uint64(1, 123456)
	e.Int64(2, -98765)
	e.BytesField(3, bytes.Repeat([]byte{0xab}, 64))
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewDecoder(buf).Each(func(f uint32, d *Decoder) error {
			switch f {
			case 1, 2:
				_, err := d.FieldUint64()
				return err
			case 3:
				_, err := d.FieldBytes()
				return err
			}
			return nil
		})
	}
}
