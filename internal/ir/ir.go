// Package ir is DAPPER's architecture-independent intermediate
// representation. One lowering of the DapC AST feeds both backends, which
// guarantees the property the paper's cross-ISA rewriting depends on: live
// values, frame slots, and equivalence-point site IDs are *identical*
// across the two generated binaries — only their locations differ.
//
// Invariants established here and relied on by the rewriter:
//
//   - No virtual register is live across a call: the lowering spills the
//     evaluation stack to temp slots around every call, so at a call-site
//     equivalence point every live value is in a frame slot.
//   - At a function-entry equivalence point the only live values are the
//     parameters, still in their (per-ISA) argument registers.
//   - Virtual registers are block-local and carry an evaluation-stack
//     depth, so both backends map them to physical scratch registers the
//     same way.
package ir

import (
	"fmt"
	"strings"
)

// VReg is a virtual register (block-local). -1 means "no register".
type VReg int

// NoVReg marks an absent register operand.
const NoVReg VReg = -1

// MaxDepth is the highest normal evaluation-stack depth. Depth
// MaxDepth+1 is the reserved emergency depth used to reload a spilled
// operand (backends map it to the checker-reserved register).
const MaxDepth = 3

// Op is an IR operation.
type Op uint8

// IR operations.
const (
	OpInvalid    Op = iota
	OpConstInt      // Dst = Imm
	OpConstFloat    // Dst = F

	OpIAdd // Dst = A op B
	OpISub
	OpIMul
	OpIDiv
	OpIMod
	OpIAnd
	OpIOr
	OpIXor
	OpIShl
	OpIShr
	OpICmpEq
	OpICmpNe
	OpICmpLt
	OpICmpLe
	OpICmpGt
	OpICmpGe

	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFCmpEq
	OpFCmpLt
	OpFCmpLe

	OpItoF
	OpFtoI

	OpLoadSlot   // Dst = slot[Slot]
	OpStoreSlot  // slot[Slot] = A
	OpSlotAddr   // Dst = &slot[Slot]
	OpGlobalAddr // Dst = &global(Sym) + Imm
	OpFuncAddr   // Dst = &func(Sym)

	OpLoad  // Dst = mem64[A]
	OpStore // mem64[A] = B

	OpCall     // [Dst =] call Sym(ArgSlots...); equivalence point Site
	OpSyscall  // [Dst =] syscall Imm(Args... vregs)  — runtime wrappers only
	OpTlsLoad  // Dst = tls[Imm]   (block offset)    — runtime wrappers only
	OpTlsStore // tls[Imm] = A                        — runtime wrappers only

	OpJmp // goto block T1
	OpBr  // if A != 0 goto T1 else T2
	OpRet // return [A]
)

var opNames = map[Op]string{
	OpConstInt: "const", OpConstFloat: "fconst",
	OpIAdd: "add", OpISub: "sub", OpIMul: "mul", OpIDiv: "div", OpIMod: "mod",
	OpIAnd: "and", OpIOr: "or", OpIXor: "xor", OpIShl: "shl", OpIShr: "shr",
	OpICmpEq: "eq", OpICmpNe: "ne", OpICmpLt: "lt", OpICmpLe: "le",
	OpICmpGt: "gt", OpICmpGe: "ge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFCmpEq: "feq", OpFCmpLt: "flt", OpFCmpLe: "fle",
	OpItoF: "itof", OpFtoI: "ftoi",
	OpLoadSlot: "ldslot", OpStoreSlot: "stslot", OpSlotAddr: "slotaddr",
	OpGlobalAddr: "gaddr", OpFuncAddr: "faddr",
	OpLoad: "load", OpStore: "store",
	OpCall: "call", OpSyscall: "syscall",
	OpTlsLoad: "tlsld", OpTlsStore: "tlsst",
	OpJmp: "jmp", OpBr: "br", OpRet: "ret",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one IR instruction.
type Instr struct {
	Op   Op
	Dst  VReg
	A, B VReg
	Imm  int64
	F    float64
	Slot int
	Sym  string
	// ArgSlots are the temp slots holding call arguments (OpCall), or the
	// vregs for OpSyscall are in Args.
	ArgSlots []int
	Args     []VReg
	// Site is the equivalence-point site id of an OpCall.
	Site int
	// LiveSlots is filled by ComputeLiveness for OpCall: the slots whose
	// values have downstream uses after the call returns (the stack-map
	// live-value record for this site).
	LiveSlots []int
	// T1, T2 are block indices for OpJmp/OpBr.
	T1, T2 int
}

// SlotKind classifies function slots (mirrors stackmap.SlotKind).
type SlotKind uint8

// Slot kinds.
const (
	SlotParam SlotKind = iota + 1
	SlotLocal
	SlotArray
	SlotTemp
)

// SlotDef is one frame slot of a function.
type SlotDef struct {
	ID       int
	Name     string
	Kind     SlotKind
	Size     int64 // bytes
	Ptr      bool
	ArrayLen int64
}

// Block is a basic block.
type Block struct {
	Instrs []Instr
}

// Terminated reports whether the block already ends in a terminator.
func (b *Block) Terminated() bool {
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case OpJmp, OpBr, OpRet:
		return true
	}
	return false
}

// Func is one IR function.
type Func struct {
	Name      string
	NumParams int
	// ParamPtr marks pointer-typed parameters.
	ParamPtr []bool
	// HasRet reports a non-void return type.
	HasRet bool
	// RetPtr marks a pointer-typed return value.
	RetPtr bool
	Slots  []SlotDef
	Blocks []*Block
	// VRegDepth maps each vreg to its evaluation-stack depth (the
	// backends' register assignment).
	VRegDepth []uint8
	// EntrySiteID is the function-entry equivalence point.
	EntrySiteID int
	// Blocking marks blocking-syscall wrappers (rollback targets).
	Blocking bool
	// Wrapper marks compiler-emitted runtime functions.
	Wrapper bool
}

// NewVReg allocates a virtual register at the given depth.
func (f *Func) NewVReg(depth int) VReg {
	f.VRegDepth = append(f.VRegDepth, uint8(depth))
	return VReg(len(f.VRegDepth) - 1)
}

// NewBlock appends an empty block, returning its index.
func (f *Func) NewBlock() int {
	f.Blocks = append(f.Blocks, &Block{})
	return len(f.Blocks) - 1
}

// StrLit is a pooled string literal placed in the data section.
type StrLit struct {
	Sym  string
	Data string
}

// GlobalDef is a program global.
type GlobalDef struct {
	Name string
	Size int64 // bytes
	Ptr  bool
}

// Program is a lowered program: user functions plus the runtime wrappers,
// ready for both backends.
type Program struct {
	Funcs   []*Func
	Globals []GlobalDef
	Strings []StrLit
	// NextSiteID is the site-id counter (site 0 is unused).
	NextSiteID int
}

// FuncByName finds a function.
func (p *Program) FuncByName(name string) (*Func, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// NewSite allocates a fresh equivalence-point site id.
func (p *Program) NewSite() int {
	p.NextSiteID++
	return p.NextSiteID
}

// Dump renders the program for debugging and golden tests.
func (p *Program) Dump() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s (params=%d, slots=%d, entrysite=%d)\n", f.Name, f.NumParams, len(f.Slots), f.EntrySiteID)
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, " b%d:\n", bi)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "   %s\n", instrString(in))
			}
		}
	}
	return sb.String()
}

func instrString(in Instr) string {
	switch in.Op {
	case OpConstInt:
		return fmt.Sprintf("v%d = const %d", in.Dst, in.Imm)
	case OpConstFloat:
		return fmt.Sprintf("v%d = fconst %g", in.Dst, in.F)
	case OpLoadSlot:
		return fmt.Sprintf("v%d = ldslot s%d", in.Dst, in.Slot)
	case OpStoreSlot:
		return fmt.Sprintf("stslot s%d = v%d", in.Slot, in.A)
	case OpSlotAddr:
		return fmt.Sprintf("v%d = &s%d", in.Dst, in.Slot)
	case OpGlobalAddr:
		return fmt.Sprintf("v%d = &%s+%d", in.Dst, in.Sym, in.Imm)
	case OpFuncAddr:
		return fmt.Sprintf("v%d = &func %s", in.Dst, in.Sym)
	case OpLoad:
		return fmt.Sprintf("v%d = load [v%d]", in.Dst, in.A)
	case OpStore:
		return fmt.Sprintf("store [v%d] = v%d", in.A, in.B)
	case OpCall:
		return fmt.Sprintf("v%d = call %s%v site=%d", in.Dst, in.Sym, in.ArgSlots, in.Site)
	case OpSyscall:
		return fmt.Sprintf("v%d = syscall %d %v", in.Dst, in.Imm, in.Args)
	case OpTlsLoad:
		return fmt.Sprintf("v%d = tls[%d]", in.Dst, in.Imm)
	case OpTlsStore:
		return fmt.Sprintf("tls[%d] = v%d", in.Imm, in.A)
	case OpJmp:
		return fmt.Sprintf("jmp b%d", in.T1)
	case OpBr:
		return fmt.Sprintf("br v%d ? b%d : b%d", in.A, in.T1, in.T2)
	case OpRet:
		if in.A == NoVReg {
			return "ret"
		}
		return fmt.Sprintf("ret v%d", in.A)
	case OpItoF, OpFtoI:
		return fmt.Sprintf("v%d = %s v%d", in.Dst, in.Op, in.A)
	default:
		return fmt.Sprintf("v%d = %s v%d, v%d", in.Dst, in.Op, in.A, in.B)
	}
}
