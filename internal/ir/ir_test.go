package ir_test

import (
	"strings"
	"testing"

	"github.com/dapper-sim/dapper/internal/ir"
	"github.com/dapper-sim/dapper/internal/lang"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := lang.Check(file)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Lower(file, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func TestLowerBasics(t *testing.T) {
	prog := lower(t, `
func add(a int, b int) int { return a + b; }
func main() {
	var x int;
	x = add(1, 2) + add(3, 4);
	printi(x);
}`)
	mainFn, ok := prog.FuncByName("main")
	if !ok {
		t.Fatal("no main")
	}
	// main must contain three calls (add, add, __printi) with distinct
	// site ids.
	sites := map[int]bool{}
	calls := 0
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				calls++
				if sites[in.Site] {
					t.Errorf("duplicate site id %d", in.Site)
				}
				sites[in.Site] = true
			}
		}
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3\n%s", calls, prog.Dump())
	}
	if _, ok := prog.FuncByName("_start"); !ok {
		t.Error("missing _start")
	}
	if _, ok := prog.FuncByName("__printi"); !ok {
		t.Error("missing __printi wrapper")
	}
}

// TestNoVRegLiveAcrossCall checks the key invariant: between the last
// spill/arg store and the call there is no vreg consumed after the call
// except the call result (verified structurally: the second add's left
// operand is reloaded from a temp slot after the first call).
func TestSpillAroundCalls(t *testing.T) {
	prog := lower(t, `
func f() int { return 1; }
func main() {
	var x int;
	x = f() + f();
	printi(x);
}`)
	mainFn, _ := prog.FuncByName("main")
	dump := prog.Dump()
	// The left f() result must be stored to a temp slot before the right
	// f() call and reloaded after.
	var sawSpill bool
	for _, b := range mainFn.Blocks {
		seenCalls := 0
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == "f" {
				seenCalls++
			}
			if in.Op == ir.OpStoreSlot && seenCalls == 1 {
				sawSpill = true
			}
		}
	}
	if !sawSpill {
		t.Errorf("no spill between calls:\n%s", dump)
	}
}

func TestCallSiteLiveness(t *testing.T) {
	prog := lower(t, `
func g(v int) int { return v; }
func main() {
	var a int;
	var b int;
	var dead int;
	a = 5;
	b = 6;
	dead = 7;
	a = g(a);     // b live across this call (used later); dead is not
	printi(a + b);
}`)
	mainFn, _ := prog.FuncByName("main")
	slotByName := map[string]int{}
	for _, s := range mainFn.Slots {
		slotByName[s.Name] = s.ID
	}
	var gLive []int
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == "g" {
				gLive = in.LiveSlots
			}
		}
	}
	if gLive == nil {
		t.Fatalf("no call to g:\n%s", prog.Dump())
	}
	has := func(id int) bool {
		for _, v := range gLive {
			if v == id {
				return true
			}
		}
		return false
	}
	if !has(slotByName["b"]) {
		t.Errorf("b (slot %d) not live at call: %v", slotByName["b"], gLive)
	}
	if has(slotByName["dead"]) {
		t.Errorf("dead (slot %d) wrongly live at call: %v", slotByName["dead"], gLive)
	}
}

func TestAddressTakenAlwaysLive(t *testing.T) {
	prog := lower(t, `
func use(p *int) { *p = 1; }
func main() {
	var buf[4] int;
	var x int;
	use(&buf[0]);
	x = buf[0];
	printi(x);
}`)
	mainFn, _ := prog.FuncByName("main")
	var bufSlot int = -1
	for _, s := range mainFn.Slots {
		if s.Name == "buf" {
			bufSlot = s.ID
			if s.Kind != ir.SlotArray || s.Size != 32 {
				t.Errorf("buf slot: %+v", s)
			}
		}
	}
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				found := false
				for _, v := range in.LiveSlots {
					if v == bufSlot {
						found = true
					}
				}
				if !found {
					t.Errorf("array slot %d not live at call %s: %v", bufSlot, in.Sym, in.LiveSlots)
				}
			}
		}
	}
}

func TestWrapperProperties(t *testing.T) {
	prog := lower(t, `func main() { }`)
	for name, wantBlocking := range map[string]bool{
		"__join": true, "__lock": true, "__recv": true,
		"__unlock": false, "__spawn": false, "__print": false,
	} {
		f, ok := prog.FuncByName(name)
		if !ok {
			t.Errorf("missing wrapper %s", name)
			continue
		}
		if f.Blocking != wantBlocking {
			t.Errorf("%s blocking = %v, want %v", name, f.Blocking, wantBlocking)
		}
		if !f.Wrapper {
			t.Errorf("%s not marked wrapper", name)
		}
	}
	// Lock must increment the TLS lock depth after the syscall; unlock
	// must decrement before it.
	lock, _ := prog.FuncByName("__lock")
	order := []ir.Op{}
	for _, in := range lock.Blocks[0].Instrs {
		if in.Op == ir.OpSyscall || in.Op == ir.OpTlsStore {
			order = append(order, in.Op)
		}
	}
	if len(order) != 2 || order[0] != ir.OpSyscall || order[1] != ir.OpTlsStore {
		t.Errorf("__lock op order = %v", order)
	}
	unlock, _ := prog.FuncByName("__unlock")
	order = order[:0]
	for _, in := range unlock.Blocks[0].Instrs {
		if in.Op == ir.OpSyscall || in.Op == ir.OpTlsStore {
			order = append(order, in.Op)
		}
	}
	if len(order) != 2 || order[0] != ir.OpTlsStore || order[1] != ir.OpSyscall {
		t.Errorf("__unlock op order = %v", order)
	}
}

func TestDeepExpression(t *testing.T) {
	// Deeply right-nested expression forces the emergency spill path.
	prog := lower(t, `
func main() {
	var x int;
	x = 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + 9)))))));
	printi(x);
}`)
	if prog == nil {
		t.Fatal("nil program")
	}
	// All vreg depths must stay within the emergency bound.
	mainFn, _ := prog.FuncByName("main")
	for v, d := range mainFn.VRegDepth {
		if int(d) > ir.MaxDepth+2 {
			t.Errorf("vreg %d depth %d exceeds bound", v, d)
		}
	}
}

func TestLogicalValueForm(t *testing.T) {
	prog := lower(t, `
func main() {
	var a int;
	var b int;
	a = 1;
	b = (a > 0) && (a < 10);
	printi(b);
}`)
	dump := prog.Dump()
	if !strings.Contains(dump, "br") {
		t.Errorf("expected branching for logical value:\n%s", dump)
	}
}

func TestStringPooling(t *testing.T) {
	prog := lower(t, `
func main() {
	print("hello");
	print("hello");
	print("other");
}`)
	if len(prog.Strings) != 2 {
		t.Errorf("strings = %d, want 2 (pooled)", len(prog.Strings))
	}
}

// TestSyscallArgDepthInvariant pins the contract the backends rely on:
// every OpSyscall argument vreg sits at evaluation depth equal to its
// argument index, so the reverse-order register moves cannot clobber each
// other.
func TestSyscallArgDepthInvariant(t *testing.T) {
	prog := lower(t, `func main() { }`)
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpSyscall {
					continue
				}
				for i, v := range in.Args {
					if int(f.VRegDepth[v]) != i {
						t.Errorf("%s: syscall arg %d at depth %d", f.Name, i, f.VRegDepth[v])
					}
				}
			}
		}
	}
}

// TestEntrySiteIsFirst: every function's entry site id precedes its call
// site ids (the lowering allocates them in order), which LiveUpdate's
// compatibility check depends on for stable matching.
func TestSiteIDsStable(t *testing.T) {
	prog := lower(t, `
func a(x int) int { return x + 1; }
func main() { printi(a(1) + a(2)); }`)
	seen := map[int]bool{}
	for _, f := range prog.Funcs {
		if f.EntrySiteID == 0 || seen[f.EntrySiteID] {
			t.Errorf("%s: bad entry site id %d", f.Name, f.EntrySiteID)
		}
		seen[f.EntrySiteID] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if in.Site == 0 || seen[in.Site] {
						t.Errorf("%s: bad call site id %d", f.Name, in.Site)
					}
					seen[in.Site] = true
				}
			}
		}
	}
}
