package ir

import "sort"

// ComputeLiveness fills Instr.LiveSlots for every OpCall in f with the set
// of slots whose values are needed after the call returns. This is the
// live-value record the paper's stack maps carry for call sites: during a
// checkpoint, every suspended caller frame is described by the record at
// its return address.
//
// Slots whose address is taken (arrays, &x, and anything passed by
// pointer) are conservatively live at every site — their contents can be
// reached through memory.
func ComputeLiveness(f *Func) {
	n := len(f.Blocks)
	addrTaken := make(map[int]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpSlotAddr {
				addrTaken[in.Slot] = true
			}
		}
	}
	// Arrays are only reachable through OpSlotAddr, but mark them anyway
	// for robustness.
	for _, s := range f.Slots {
		if s.Kind == SlotArray {
			addrTaken[s.ID] = true
		}
	}

	// Block-level gen/kill over scalar slots.
	gen := make([]map[int]bool, n)
	kill := make([]map[int]bool, n)
	succ := make([][]int, n)
	for i, b := range f.Blocks {
		g, k := map[int]bool{}, map[int]bool{}
		for _, in := range b.Instrs {
			for _, u := range instrSlotUses(in) {
				if !k[u] {
					g[u] = true
				}
			}
			if d, ok := instrSlotDef(in); ok {
				k[d] = true
			}
		}
		gen[i], kill[i] = g, k
		if len(b.Instrs) > 0 {
			last := b.Instrs[len(b.Instrs)-1]
			switch last.Op {
			case OpJmp:
				succ[i] = []int{last.T1}
			case OpBr:
				succ[i] = []int{last.T1, last.T2}
			}
		}
	}

	liveIn := make([]map[int]bool, n)
	liveOut := make([]map[int]bool, n)
	for i := range liveIn {
		liveIn[i] = map[int]bool{}
		liveOut[i] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := map[int]bool{}
			for _, s := range succ[i] {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			in := map[int]bool{}
			for v := range gen[i] {
				in[v] = true
			}
			for v := range out {
				if !kill[i][v] {
					in[v] = true
				}
			}
			if !sameSet(out, liveOut[i]) || !sameSet(in, liveIn[i]) {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
	}

	// Per-instruction backward walk recording live-out at each call.
	for i, b := range f.Blocks {
		live := map[int]bool{}
		for v := range liveOut[i] {
			live[v] = true
		}
		for j := len(b.Instrs) - 1; j >= 0; j-- {
			in := &b.Instrs[j]
			if in.Op == OpCall {
				set := make([]int, 0, len(live)+len(addrTaken))
				seen := map[int]bool{}
				for v := range live {
					if !seen[v] {
						set = append(set, v)
						seen[v] = true
					}
				}
				for v := range addrTaken {
					if !seen[v] {
						set = append(set, v)
						seen[v] = true
					}
				}
				sort.Ints(set)
				in.LiveSlots = set
			}
			if d, ok := instrSlotDef(*in); ok {
				delete(live, d)
			}
			for _, u := range instrSlotUses(*in) {
				live[u] = true
			}
		}
	}
}

// instrSlotUses returns the scalar slots read by in.
func instrSlotUses(in Instr) []int {
	switch in.Op {
	case OpLoadSlot:
		return []int{in.Slot}
	case OpCall:
		return in.ArgSlots
	default:
		return nil
	}
}

// instrSlotDef returns the slot written by in, if any.
func instrSlotDef(in Instr) (int, bool) {
	if in.Op == OpStoreSlot {
		return in.Slot, true
	}
	return 0, false
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
